#include "src/stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace affsched {
namespace {

TEST(SummaryTest, MeanAndVariance) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryTest, SingleSampleHasZeroVariance) {
  Summary s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.ConfidenceHalfWidth()));
}

TEST(SummaryTest, ConfidenceShrinksWithSamples) {
  Rng rng(5);
  Summary small;
  Summary large;
  for (int i = 0; i < 5; ++i) {
    small.Add(rng.NextNormal(10, 1));
  }
  for (int i = 0; i < 500; ++i) {
    large.Add(rng.NextNormal(10, 1));
  }
  EXPECT_GT(small.ConfidenceHalfWidth(0.95), large.ConfidenceHalfWidth(0.95));
}

TEST(StudentTTest, KnownCriticalValues) {
  // Standard t-table values, 95% two-sided.
  EXPECT_NEAR(StudentTCritical(1, 0.95), 12.706, 0.01);
  EXPECT_NEAR(StudentTCritical(2, 0.95), 4.303, 0.01);
  EXPECT_NEAR(StudentTCritical(5, 0.95), 2.571, 0.02);
  EXPECT_NEAR(StudentTCritical(10, 0.95), 2.228, 0.01);
  EXPECT_NEAR(StudentTCritical(30, 0.95), 2.042, 0.01);
  EXPECT_NEAR(StudentTCritical(120, 0.95), 1.980, 0.01);
}

TEST(StudentTTest, ApproachesNormalForLargeDf) {
  EXPECT_NEAR(StudentTCritical(100000, 0.95), 1.960, 0.005);
  EXPECT_NEAR(StudentTCritical(100000, 0.99), 2.576, 0.01);
}

TEST(StudentTTest, HigherConfidenceWidens) {
  EXPECT_GT(StudentTCritical(10, 0.99), StudentTCritical(10, 0.95));
  EXPECT_GT(StudentTCritical(10, 0.95), StudentTCritical(10, 0.90));
}

TEST(ReplicationControllerTest, StopsWhenPrecise) {
  ReplicationController ctl(0.01, 0.95, 3, 100);
  // Identical observations: precise immediately after the minimum.
  ctl.Add(10.0);
  EXPECT_FALSE(ctl.Done());
  ctl.Add(10.0);
  EXPECT_FALSE(ctl.Done());
  ctl.Add(10.0);
  EXPECT_TRUE(ctl.Done());
}

TEST(ReplicationControllerTest, KeepsGoingWhenNoisy) {
  ReplicationController ctl(0.001, 0.95, 2, 1000);
  Rng rng(3);
  ctl.Add(rng.NextNormal(10, 5));
  ctl.Add(rng.NextNormal(10, 5));
  ctl.Add(rng.NextNormal(10, 5));
  EXPECT_FALSE(ctl.Done());
}

TEST(ReplicationControllerTest, RespectsMaxCap) {
  ReplicationController ctl(1e-9, 0.95, 2, 5);
  Rng rng(3);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(ctl.Done());
    ctl.Add(rng.NextNormal(10, 5));
  }
  EXPECT_TRUE(ctl.Done());
}

TEST(ReplicationControllerTest, PaperStoppingRule) {
  // The paper's rule: 95% CI within 1% of the point estimate.
  ReplicationController ctl(0.01, 0.95, 3, 10000);
  Rng rng(11);
  size_t reps = 0;
  while (!ctl.Done()) {
    ctl.Add(rng.NextNormal(100.0, 1.0));
    ++reps;
  }
  const Summary& s = ctl.summary();
  EXPECT_LE(s.ConfidenceHalfWidth(0.95), 0.01 * s.mean());
  EXPECT_LT(reps, 100u);
}

}  // namespace
}  // namespace affsched
