#include "src/stats/histogram.h"

#include <gtest/gtest.h>

namespace affsched {
namespace {

TEST(WeightedHistogramTest, EmptyHistogram) {
  WeightedHistogram h(8);
  EXPECT_DOUBLE_EQ(h.TotalWeight(), 0.0);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(WeightedHistogramTest, FractionsSumToOne) {
  WeightedHistogram h(4);
  h.Add(1, 2.0);
  h.Add(2, 3.0);
  h.Add(4, 5.0);
  double total = 0;
  for (size_t i = 0; i <= 4; ++i) {
    total += h.Fraction(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.Fraction(2), 0.3);
}

TEST(WeightedHistogramTest, MeanIsWeighted) {
  WeightedHistogram h(10);
  h.Add(2, 1.0);
  h.Add(8, 3.0);
  EXPECT_DOUBLE_EQ(h.Mean(), (2.0 * 1 + 8.0 * 3) / 4.0);
}

TEST(WeightedHistogramTest, ClampsAboveMax) {
  WeightedHistogram h(4);
  h.Add(100, 1.0);
  EXPECT_DOUBLE_EQ(h.Fraction(4), 1.0);
}

TEST(WeightedHistogramTest, RenderMentionsLevelsAndMean) {
  WeightedHistogram h(4);
  h.Add(3, 1.0);
  const std::string out = h.Render("MVA");
  EXPECT_NE(out.find("MVA"), std::string::npos);
  EXPECT_NE(out.find("parallelism  3"), std::string::npos);
  EXPECT_NE(out.find("mean parallelism"), std::string::npos);
}

TEST(WeightedHistogramTest, OutOfRangeFractionIsZero) {
  WeightedHistogram h(4);
  h.Add(1, 1.0);
  EXPECT_DOUBLE_EQ(h.Fraction(99), 0.0);
}

}  // namespace
}  // namespace affsched
