#include "src/stats/histogram.h"

#include <gtest/gtest.h>

namespace affsched {
namespace {

TEST(WeightedHistogramTest, EmptyHistogram) {
  WeightedHistogram h(8);
  EXPECT_DOUBLE_EQ(h.TotalWeight(), 0.0);
  EXPECT_DOUBLE_EQ(h.Fraction(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(WeightedHistogramTest, FractionsSumToOne) {
  WeightedHistogram h(4);
  h.Add(1, 2.0);
  h.Add(2, 3.0);
  h.Add(4, 5.0);
  double total = 0;
  for (size_t i = 0; i <= 4; ++i) {
    total += h.Fraction(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(h.Fraction(2), 0.3);
}

TEST(WeightedHistogramTest, MeanIsWeighted) {
  WeightedHistogram h(10);
  h.Add(2, 1.0);
  h.Add(8, 3.0);
  EXPECT_DOUBLE_EQ(h.Mean(), (2.0 * 1 + 8.0 * 3) / 4.0);
}

TEST(WeightedHistogramTest, ClampsAboveMax) {
  WeightedHistogram h(4);
  h.Add(100, 1.0);
  EXPECT_DOUBLE_EQ(h.Fraction(4), 1.0);
}

TEST(WeightedHistogramTest, RenderMentionsLevelsAndMean) {
  WeightedHistogram h(4);
  h.Add(3, 1.0);
  const std::string out = h.Render("MVA");
  EXPECT_NE(out.find("MVA"), std::string::npos);
  EXPECT_NE(out.find("parallelism  3"), std::string::npos);
  EXPECT_NE(out.find("mean parallelism"), std::string::npos);
}

TEST(WeightedHistogramTest, OutOfRangeFractionIsZero) {
  WeightedHistogram h(4);
  h.Add(1, 1.0);
  EXPECT_DOUBLE_EQ(h.Fraction(99), 0.0);
}

TEST(WeightedHistogramTest, QuantileIsNearestRank) {
  WeightedHistogram h(8);
  h.Add(1, 50.0);
  h.Add(4, 30.0);
  h.Add(8, 20.0);
  // Cumulative weights: 50 at level 1, 80 at level 4, 100 at level 8.
  EXPECT_EQ(h.Quantile(0.0), 1u);  // lowest occupied level
  EXPECT_EQ(h.Quantile(0.5), 1u);  // cumulative 50 just reaches 0.5 * 100
  EXPECT_EQ(h.Quantile(0.51), 4u);
  EXPECT_EQ(h.Quantile(0.8), 4u);
  EXPECT_EQ(h.Percentile(95.0), 8u);
  EXPECT_EQ(h.Quantile(1.0), 8u);
}

TEST(WeightedHistogramTest, QuantileSkipsEmptyBuckets) {
  WeightedHistogram h(6);
  h.Add(3, 1.0);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 3u) << "q=" << q;
  }
}

TEST(WeightedHistogramTest, EmptyQuantileIsZero) {
  WeightedHistogram h(4);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Percentile(99.0), 0u);
}

TEST(ValueHistogramTest, EmptyHistogramReportsZeros) {
  ValueHistogram h(0.1);
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), 0.0);
}

TEST(ValueHistogramTest, SmallSampleQuantilesAreExact) {
  // One sample per unit bucket: the interpolated quantile lands exactly on
  // the bucket boundary carrying the target cumulative mass.
  ValueHistogram h(1.0);
  for (double v : {0.5, 1.5, 2.5, 3.5}) {
    h.Add(v);
  }
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.5);   // == Min()
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.Percentile(75.0), 3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 3.5);   // == Max()
}

TEST(ValueHistogramTest, InterpolatesWithinBucket) {
  // Ten samples uniform over one bucket: the median interpolates to the
  // bucket midpoint.
  ValueHistogram h(1.0);
  for (int i = 0; i < 10; ++i) {
    h.Add(0.1 * static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.Quantile(0.1), 0.1);
}

TEST(ValueHistogramTest, BoundaryQuantilesClampIntoSampleRange) {
  // All mass at one point inside a wide bucket: interpolation alone would
  // report bucket coordinates, but estimates clamp into [Min(), Max()].
  ValueHistogram h(1.0);
  for (int i = 0; i < 4; ++i) {
    h.Add(0.25);
  }
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 0.25) << "q=" << q;
  }
}

TEST(ValueHistogramTest, PercentileMatchesQuantile) {
  ValueHistogram h(0.05);
  for (int i = 1; i <= 100; ++i) {
    h.Add(0.01 * static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(h.Percentile(95.0), h.Quantile(0.95));
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), h.Quantile(0.5));
  EXPECT_GT(h.Percentile(99.0), h.Percentile(50.0));
}

TEST(ValueHistogramTest, BucketsGrowOnDemand) {
  ValueHistogram h(0.5);
  h.Add(0.1);
  EXPECT_EQ(h.num_buckets(), 1u);
  h.Add(10.25);
  EXPECT_EQ(h.num_buckets(), 21u);
  EXPECT_DOUBLE_EQ(h.Max(), 10.25);
}

TEST(ValueHistogramDeathTest, RejectsNegativeSample) {
  ValueHistogram h(1.0);
  EXPECT_DEATH(h.Add(-0.5), "value >= 0");
}

TEST(ValueHistogramDeathTest, RejectsOutOfRangeQuantile) {
  ValueHistogram h(1.0);
  h.Add(1.0);
  EXPECT_DEATH((void)h.Quantile(1.5), "q >= 0");
}

}  // namespace
}  // namespace affsched
