#include "src/stats/fairness.h"

#include <gtest/gtest.h>

#include <cmath>

namespace affsched {
namespace {

TEST(JainIndexTest, EqualSharesArePerfectlyFair) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({5, 5, 5, 5}), 1.0);
}

TEST(JainIndexTest, SingleHoarderApproachesOneOverN) {
  EXPECT_NEAR(JainFairnessIndex({10, 0, 0, 0}), 0.25, 1e-12);
}

TEST(JainIndexTest, IntermediateCase) {
  // Known value: (1+2+3)^2 / (3 * (1+4+9)) = 36/42.
  EXPECT_NEAR(JainFairnessIndex({1, 2, 3}), 36.0 / 42.0, 1e-12);
}

TEST(JainIndexTest, EmptyAndZeroInputs) {
  EXPECT_DOUBLE_EQ(JainFairnessIndex({}), 1.0);
  EXPECT_DOUBLE_EQ(JainFairnessIndex({0, 0}), 1.0);
}

TEST(JainIndexTest, ScaleInvariant) {
  const std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b;
  for (double x : a) {
    b.push_back(x * 1000);
  }
  EXPECT_NEAR(JainFairnessIndex(a), JainFairnessIndex(b), 1e-12);
}

TEST(MaxMinRatioTest, Basic) {
  EXPECT_DOUBLE_EQ(MaxMinRatio({2, 4, 8}), 4.0);
  EXPECT_DOUBLE_EQ(MaxMinRatio({3, 3, 3}), 1.0);
  EXPECT_DOUBLE_EQ(MaxMinRatio({}), 1.0);
  EXPECT_TRUE(std::isinf(MaxMinRatio({0, 1})));
}

TEST(CoefficientOfVariationTest, Basic) {
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({7, 7, 7}), 0.0);
  EXPECT_DOUBLE_EQ(CoefficientOfVariation({}), 0.0);
  // mean 2, variance ((1)^2+(1)^2)/2 = 1, cv = 1/2.
  EXPECT_NEAR(CoefficientOfVariation({1, 3}), 0.5, 1e-12);
}

TEST(FairnessDeathTest, NegativeValueAborts) {
  EXPECT_DEATH(JainFairnessIndex({-1.0}), "CHECK");
}

}  // namespace
}  // namespace affsched
