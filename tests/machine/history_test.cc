// Affinity history mechanics: per-processor task history (depth T) and
// per-worker processor history (depth P).

#include <gtest/gtest.h>

#include <memory>

#include "src/cache/footprint.h"
#include "src/machine/machine.h"
#include "src/workload/worker.h"

namespace affsched {
namespace {

TEST(ProcessorHistoryTest, DepthOneKeepsOnlyMostRecent) {
  Processor p(0, std::make_unique<FootprintCache>(4096.0, 2), 1);
  p.RecordDispatch(10);
  p.RecordDispatch(20);
  EXPECT_EQ(p.last_task(), 20u);
  EXPECT_EQ(p.recent_tasks().size(), 1u);
}

TEST(ProcessorHistoryTest, DeeperHistoryRemembersOrder) {
  Processor p(0, std::make_unique<FootprintCache>(4096.0, 2), 3);
  p.RecordDispatch(1);
  p.RecordDispatch(2);
  p.RecordDispatch(3);
  p.RecordDispatch(4);  // evicts 1
  ASSERT_EQ(p.recent_tasks().size(), 3u);
  EXPECT_EQ(p.recent_tasks()[0], 4u);
  EXPECT_EQ(p.recent_tasks()[1], 3u);
  EXPECT_EQ(p.recent_tasks()[2], 2u);
}

TEST(ProcessorHistoryTest, RedispatchMovesToFront) {
  Processor p(0, std::make_unique<FootprintCache>(4096.0, 2), 3);
  p.RecordDispatch(1);
  p.RecordDispatch(2);
  p.RecordDispatch(1);
  ASSERT_EQ(p.recent_tasks().size(), 2u);
  EXPECT_EQ(p.recent_tasks()[0], 1u);
  EXPECT_EQ(p.recent_tasks()[1], 2u);
}

TEST(ProcessorHistoryTest, EmptyHistoryReportsNoOwner) {
  Processor p(0, std::make_unique<FootprintCache>(4096.0, 2), 2);
  EXPECT_EQ(p.last_task(), kNoOwner);
  EXPECT_TRUE(p.recent_tasks().empty());
}

TEST(WorkerHistoryTest, DepthOneMatchesPaperSemantics) {
  Worker w;
  w.history_depth = 1;
  EXPECT_EQ(w.last_processor(), kNoProcessor);
  EXPECT_FALSE(w.HasAffinityFor(3));
  w.RecordPlacement(3);
  EXPECT_TRUE(w.HasAffinityFor(3));
  w.RecordPlacement(5);
  EXPECT_FALSE(w.HasAffinityFor(3));  // forgotten
  EXPECT_TRUE(w.HasAffinityFor(5));
  EXPECT_EQ(w.last_processor(), 5u);
}

TEST(WorkerHistoryTest, DeeperHistoryWidensAffinity) {
  Worker w;
  w.history_depth = 3;
  w.RecordPlacement(1);
  w.RecordPlacement(2);
  w.RecordPlacement(3);
  EXPECT_TRUE(w.HasAffinityFor(1));
  EXPECT_TRUE(w.HasAffinityFor(2));
  EXPECT_TRUE(w.HasAffinityFor(3));
  EXPECT_FALSE(w.HasAffinityFor(4));
  // Strict most-recent is still processor 3.
  EXPECT_TRUE(w.MostRecentProcessorIs(3));
  EXPECT_FALSE(w.MostRecentProcessorIs(1));
  w.RecordPlacement(4);  // evicts 1
  EXPECT_FALSE(w.HasAffinityFor(1));
}

TEST(WorkerHistoryTest, ReplacementRefreshesRecency) {
  Worker w;
  w.history_depth = 2;
  w.RecordPlacement(7);
  w.RecordPlacement(8);
  w.RecordPlacement(7);  // 7 back to front
  EXPECT_EQ(w.last_processor(), 7u);
  w.RecordPlacement(9);  // evicts 8
  EXPECT_TRUE(w.HasAffinityFor(7));
  EXPECT_FALSE(w.HasAffinityFor(8));
}

TEST(MachineHistoryTest, ConfigDepthPropagates) {
  MachineConfig config;
  config.num_processors = 2;
  config.task_history_depth = 4;
  Machine machine(config);
  for (CacheOwner t = 1; t <= 5; ++t) {
    machine.processor(0).RecordDispatch(t);
  }
  EXPECT_EQ(machine.processor(0).recent_tasks().size(), 4u);
  EXPECT_EQ(machine.processor(0).last_task(), 5u);
}

}  // namespace
}  // namespace affsched
