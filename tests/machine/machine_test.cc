#include "src/machine/machine.h"

#include <gtest/gtest.h>

#include <cmath>

namespace affsched {
namespace {

TEST(MachineConfigTest, SymmetryDefaults) {
  MachineConfig config;
  EXPECT_EQ(config.num_processors, 20u);
  EXPECT_DOUBLE_EQ(config.CapacityBlocks(), 4096.0);
  EXPECT_DOUBLE_EQ(config.MissServiceSeconds(), 0.75e-6);
  EXPECT_EQ(config.SwitchCost(), Microseconds(750));
}

TEST(MachineConfigTest, FullCacheFillMatchesPaper) {
  // Section 3: "(at least) 3.072 msec. would be required to fill entirely a
  // single cache of 4K 16-byte blocks."
  MachineConfig config;
  const double fill_s = config.CapacityBlocks() * config.MissServiceSeconds();
  EXPECT_NEAR(fill_s, 3.072e-3, 1e-9);
}

TEST(MachineConfigTest, FutureScalingFollowsFigure7) {
  MachineConfig config;
  config.processor_speed = 16.0;
  config.cache_size_factor = 4.0;
  // Computation scales linearly with speed.
  EXPECT_EQ(config.ComputeTime(Seconds(16)), Seconds(1));
  EXPECT_EQ(config.SwitchCost(), Microseconds(750) / 16);
  // Miss service improves only as sqrt(speed).
  EXPECT_NEAR(config.MissServiceSeconds(), 0.75e-6 / 4.0, 1e-12);
  // Cache capacity scales with the factor.
  EXPECT_DOUBLE_EQ(config.CapacityBlocks(), 4096.0 * 4.0);
}

TEST(MachineTest, ProcessorsHaveIndependentCaches) {
  MachineConfig config;
  config.num_processors = 2;
  Machine machine(config);
  const WorkingSetParams ws{.blocks = 1000.0, .buildup_tau_s = 0.01, .steady_miss_per_s = 0.0};
  machine.ExecuteChunk(0, 0, 1, ws, Milliseconds(100));
  EXPECT_GT(machine.processor(0).cache().Resident(1), 900.0);
  EXPECT_DOUBLE_EQ(machine.processor(1).cache().Resident(1), 0.0);
}

TEST(MachineTest, ChunkWallIncludesMissStalls) {
  MachineConfig config;
  Machine machine(config);
  const WorkingSetParams ws{.blocks = 2000.0, .buildup_tau_s = 0.001, .steady_miss_per_s = 0.0};
  const auto exec = machine.ExecuteChunk(0, 0, 1, ws, Milliseconds(10));
  // Cold start: the occupancy-capped working set reloads at 0.75 us/block.
  const double cap = machine.processor(0).cache().MaxResident(2000.0);
  EXPECT_NEAR(exec.reload_misses, cap, 1.0);
  EXPECT_NEAR(ToSeconds(exec.stall), cap * 0.75e-6, 1e-4);
  EXPECT_EQ(exec.wall, Milliseconds(10) + exec.stall);
}

TEST(MachineTest, WarmChunkRunsAtFullSpeed) {
  MachineConfig config;
  Machine machine(config);
  const WorkingSetParams ws{.blocks = 2000.0, .buildup_tau_s = 0.001, .steady_miss_per_s = 0.0};
  machine.ExecuteChunk(0, 0, 1, ws, Milliseconds(100));
  const auto exec = machine.ExecuteChunk(Milliseconds(100), 0, 1, ws, Milliseconds(10));
  EXPECT_NEAR(exec.reload_misses, 0.0, 1e-6);
  EXPECT_EQ(exec.wall, Milliseconds(10));
}

TEST(MachineTest, FasterMachineShortensCompute) {
  MachineConfig config;
  config.processor_speed = 4.0;
  Machine machine(config);
  const WorkingSetParams ws{.blocks = 0.0, .buildup_tau_s = 0.01, .steady_miss_per_s = 0.0};
  const auto exec = machine.ExecuteChunk(0, 0, 1, ws, Milliseconds(8));
  EXPECT_EQ(exec.wall, Milliseconds(2));
}

TEST(MachineTest, RecordDispatchUpdatesHistory) {
  MachineConfig config;
  Machine machine(config);
  EXPECT_EQ(machine.processor(3).last_task(), kNoOwner);
  machine.processor(3).RecordDispatch(42);
  EXPECT_EQ(machine.processor(3).last_task(), 42u);
  EXPECT_EQ(machine.processor(3).current_task(), 42u);
  machine.processor(3).SetCurrentTask(kNoOwner);
  EXPECT_EQ(machine.processor(3).last_task(), 42u);  // history survives idle
}

TEST(MachineTest, HeavyTrafficInflatesStalls) {
  MachineConfig config;
  Machine machine(config);
  const WorkingSetParams hot{.blocks = 4000.0, .buildup_tau_s = 0.0001,
                             .steady_miss_per_s = 500000.0};
  // Saturate the bus with traffic from other processors.
  SimTime now = 0;
  for (int i = 0; i < 50; ++i) {
    machine.ExecuteChunk(now, 1, 2, hot, Milliseconds(2));
    now += Milliseconds(2);
  }
  const WorkingSetParams ws{.blocks = 1000.0, .buildup_tau_s = 0.001, .steady_miss_per_s = 0.0};
  const auto contended = machine.ExecuteChunk(now, 0, 1, ws, Milliseconds(1));

  Machine quiet(config);
  const auto uncontended = quiet.ExecuteChunk(0, 0, 1, ws, Milliseconds(1));
  EXPECT_GT(contended.stall, uncontended.stall);
}

}  // namespace
}  // namespace affsched
