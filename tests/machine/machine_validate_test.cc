// MachineConfig::Validate: degenerate configurations fail with a clear error
// before any construction work happens, at every entry point (sweep parsers,
// simctl flags, direct construction).

#include <gtest/gtest.h>

#include <string>

#include "src/machine/machine.h"

namespace affsched {
namespace {

TEST(MachineValidateTest, DefaultConfigIsValid) {
  EXPECT_EQ(MachineConfig{}.Validate(), "");
}

TEST(MachineValidateTest, ZeroProcessorsIsRejected) {
  MachineConfig config;
  config.num_processors = 0;
  EXPECT_NE(config.Validate().find("procs=0"), std::string::npos);
}

TEST(MachineValidateTest, ZeroCapacityCacheLevelsAreRejected) {
  MachineConfig config;
  config.geometry.line_bytes = 0;
  EXPECT_FALSE(config.Validate().empty());

  config = MachineConfig{};
  config.geometry.total_bytes = 0;
  EXPECT_FALSE(config.Validate().empty());

  config = MachineConfig{};
  config.geometry.ways = 0;
  EXPECT_FALSE(config.Validate().empty());

  config = MachineConfig{};
  config.cache_size_factor = 0.0;
  EXPECT_FALSE(config.Validate().empty());
}

TEST(MachineValidateTest, NonPositiveSpeedIsRejected) {
  MachineConfig config;
  config.processor_speed = 0.0;
  EXPECT_FALSE(config.Validate().empty());
  config.processor_speed = -1.0;
  EXPECT_FALSE(config.Validate().empty());
}

TEST(MachineValidateTest, TopologyProblemsSurfaceThroughMachineValidate) {
  MachineConfig config;
  config.topology = CmpTopology();
  config.topology.llc_hit_factor = 0.0;
  EXPECT_NE(config.Validate().find("llc-factor"), std::string::npos);
}

TEST(MachineValidateTest, HierarchicalTopologyRequiresFootprintModel) {
  MachineConfig config;
  config.topology = CmpTopology();
  EXPECT_EQ(config.Validate(), "");
  config.cache_model = CacheModelKind::kExact;
  EXPECT_NE(config.Validate().find("footprint"), std::string::npos);
}

TEST(MachineValidateTest, ConstructorEnforcesValidation) {
  MachineConfig config;
  config.num_processors = 0;
  EXPECT_DEATH({ Machine machine(config); }, "procs=0");
}

TEST(MachineValidateTest, HierarchicalMachineBuilds) {
  MachineConfig config;
  config.topology = NumaTopology();
  config.num_processors = 32;
  Machine machine(config);
  EXPECT_EQ(machine.topology().num_nodes(), 4u);
  EXPECT_EQ(machine.topology().TierBetween(0, 8), 3u);
}

}  // namespace
}  // namespace affsched
