// Golden-trajectory regression tests: pinned sweep JSON, byte for byte.
//
// Each case parses the exact spec string the committed golden was generated
// with, runs the full sweep through SweepRunner, and requires ToJson() to
// match the file byte-identically. Two root seeds per preset guard against a
// change that happens to preserve one trajectory. Any intentional behaviour
// change must regenerate the goldens (simctl --sweep <spec> --json <file>)
// and justify the diff in review.

#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "src/runner/runner.h"
#include "src/runner/sweep.h"

#ifndef AFF_GOLDEN_DIR
#error "AFF_GOLDEN_DIR must point at tests/golden"
#endif

namespace affsched {
namespace {

std::string ReadGolden(const std::string& filename) {
  const std::string path = std::string(AFF_GOLDEN_DIR) + "/" + filename;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Reports the first differing byte with context, so a mismatch shows where
// the trajectories diverged instead of dumping two 10 kB strings.
void ExpectBytesIdentical(const std::string& actual, const std::string& golden) {
  if (actual == golden) {
    SUCCEED();
    return;
  }
  size_t i = 0;
  while (i < actual.size() && i < golden.size() && actual[i] == golden[i]) {
    ++i;
  }
  const size_t begin = i > 60 ? i - 60 : 0;
  ADD_FAILURE() << "sweep JSON diverges from golden at byte " << i
                << "\n  golden: ..." << golden.substr(begin, 120)
                << "\n  actual: ..." << actual.substr(begin, 120);
}

void RunGoldenCase(const std::string& spec_text, const std::string& filename) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec(spec_text, &spec, &error)) << error;
  SweepRunnerOptions options;
  options.jobs = 2;  // byte-identical at any worker count; exercise >1
  const SweepResult result = SweepRunner(options).Run(spec);
  // Goldens are produced by WriteJsonFile, which ends the file with "\n".
  ExpectBytesIdentical(result.ToJson() + "\n", ReadGolden(filename));
}

TEST(GoldenTrajectoryTest, SmokeSeed1000) { RunGoldenCase("smoke", "sweep_smoke_seed1000.json"); }

TEST(GoldenTrajectoryTest, SmokeSeed7777) {
  RunGoldenCase("smoke;seed=7777", "sweep_smoke_seed7777.json");
}

TEST(GoldenTrajectoryTest, Fig5Seed1000) {
  RunGoldenCase("fig5;mixes=2,5;reps=1", "sweep_fig5_seed1000.json");
}

TEST(GoldenTrajectoryTest, Fig5Seed7777) {
  RunGoldenCase("fig5;mixes=2,5;reps=1;seed=7777", "sweep_fig5_seed7777.json");
}

// The topology subsystem is a strict superset: selecting the symmetry-flat
// topology explicitly must reproduce the flat-machine trajectory byte for
// byte against the pre-topology golden.
TEST(GoldenTrajectoryTest, SymmetryFlatTopologyMatchesFlatGolden) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("smoke;topology=symmetry-flat", &spec, &error)) << error;
  // Overrides rewrite spec.name to the full provenance string; restore the
  // preset name so the JSON header matches the flat golden too.
  spec.name = "smoke";
  SweepRunnerOptions options;
  options.jobs = 2;
  const SweepResult result = SweepRunner(options).Run(spec);
  ExpectBytesIdentical(result.ToJson() + "\n", ReadGolden("sweep_smoke_seed1000.json"));
}

// And a hierarchical trajectory of its own, pinning the tiered cache model,
// the per-tier accounting and the topology JSON blocks.
TEST(GoldenTrajectoryTest, CmpTopologySmoke) {
  RunGoldenCase("smoke;topology=cmp-2x10", "sweep_smoke_cmp2x10.json");
}

// The MQMS preset: Equipartition plus every steal radius of the multi-queue
// family on a NUMA machine with 50 ms balance ticks. Pins the per-queue
// dispatch trajectory, the steal/balance counters and their JSON blocks.
TEST(GoldenTrajectoryTest, MqSeed1000) { RunGoldenCase("mq", "sweep_mq_seed1000.json"); }

// Worker-count invariance for the mq preset: five workers must reproduce the
// two-worker golden byte for byte (cell seeds come from DeriveCellSeed, so
// scheduling order cannot leak into the document).
TEST(GoldenTrajectoryTest, MqSeed1000AtFiveWorkers) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("mq", &spec, &error)) << error;
  SweepRunnerOptions options;
  options.jobs = 5;
  const SweepResult result = SweepRunner(options).Run(spec);
  ExpectBytesIdentical(result.ToJson() + "\n", ReadGolden("sweep_mq_seed1000.json"));
}

// The real-time preset: dyn-aff vs the static rt policies on the 8-color
// partitioned machine with the soft deadline mix. Pins the partitioned
// reload trajectory, the deadline/tardiness accounting and the schema-v3
// "rt" block.
TEST(GoldenTrajectoryTest, RtSeed1000) { RunGoldenCase("rt", "sweep_rt_seed1000.json"); }

// Worker-count invariance for the rt preset: the color reservations and the
// deadline stamp are derived from the spec, never from execution order.
TEST(GoldenTrajectoryTest, RtSeed1000AtFiveWorkers) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("rt", &spec, &error)) << error;
  SweepRunnerOptions options;
  options.jobs = 5;
  const SweepResult result = SweepRunner(options).Run(spec);
  ExpectBytesIdentical(result.ToJson() + "\n", ReadGolden("sweep_rt_seed1000.json"));
}

}  // namespace
}  // namespace affsched
