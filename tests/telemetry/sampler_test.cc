#include "src/telemetry/sampler.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/engine/engine.h"
#include "src/sched/factory.h"
#include "src/telemetry/json.h"

namespace affsched {
namespace {

AppProfile CachelessProfile(std::string name, size_t width, SimDuration work_per_thread) {
  AppProfile profile;
  profile.name = std::move(name);
  profile.working_set = WorkingSetParams{.blocks = 0.0, .buildup_tau_s = 0.01,
                                         .steady_miss_per_s = 0.0};
  profile.thread_overlap = 1.0;
  profile.max_parallelism = width;
  profile.build_graph = [width, work_per_thread](Rng&) {
    auto g = std::make_unique<ThreadGraph>();
    for (size_t i = 0; i < width; ++i) {
      g->AddNode(work_per_thread);
    }
    return g;
  };
  return profile;
}

TEST(Sampler, RecordsOneRowPerSampleInProbeOrder) {
  Sampler sampler(Milliseconds(1));
  double x = 1.0;
  sampler.AddProbe("x", [&] { return x; });
  sampler.AddProbe("twice_x", [&] { return 2.0 * x; });

  sampler.Sample(0);
  x = 5.0;
  sampler.Sample(Milliseconds(1));

  ASSERT_EQ(sampler.num_samples(), 2u);
  ASSERT_EQ(sampler.num_probes(), 2u);
  EXPECT_EQ(sampler.times()[0], 0);
  EXPECT_EQ(sampler.times()[1], Milliseconds(1));
  EXPECT_EQ(sampler.values()[0][0], 1.0);
  EXPECT_EQ(sampler.values()[0][1], 2.0);
  EXPECT_EQ(sampler.values()[1][0], 5.0);
  EXPECT_EQ(sampler.values()[1][1], 10.0);
}

TEST(Sampler, CsvHasHeaderAndOneRowPerSample) {
  Sampler sampler(Milliseconds(1));
  sampler.AddProbe("alloc", [] { return 3.0; });
  sampler.Sample(Microseconds(1500));

  const std::string csv = sampler.ToCsv();
  std::istringstream in(csv);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "t_us,alloc");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1500.000,3");
  EXPECT_FALSE(std::getline(in, line));
}

TEST(Sampler, JsonlRowsAreValidJson) {
  Sampler sampler(Milliseconds(1));
  sampler.AddProbe("util", [] { return 0.5; });
  sampler.Sample(0);
  sampler.Sample(Milliseconds(1));

  std::istringstream in(sampler.ToJsonl());
  std::string line;
  size_t rows = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(IsValidJson(line)) << line;
    ++rows;
  }
  EXPECT_EQ(rows, 2u);
}

TEST(Sampler, EngineDrivesSamplingOnCadence) {
  MachineConfig machine;
  machine.num_processors = 2;
  Engine engine(machine, MakePolicy(PolicyKind::kDynamic), 1);
  Sampler sampler(Milliseconds(10));
  engine.SetSampler(&sampler);
  engine.SubmitJob(CachelessProfile("solo", 1, Milliseconds(50)));
  const SimTime end = engine.Run();

  // One sample at t=0 plus one per cadence until completion; the engine stops
  // rescheduling once the last job finishes, so the count is bounded.
  ASSERT_GE(sampler.num_samples(), 2u);
  EXPECT_LE(sampler.num_samples(), static_cast<size_t>(end / Milliseconds(10)) + 2);
  for (size_t i = 1; i < sampler.num_samples(); ++i) {
    EXPECT_EQ(sampler.times()[i] - sampler.times()[i - 1], Milliseconds(10));
  }
  // The per-job allocation probe exists and saw the job running.
  const std::string csv = sampler.ToCsv();
  EXPECT_NE(csv.find("alloc.solo#0"), std::string::npos);
}

TEST(Sampler, SamplingDoesNotPerturbTheRun) {
  MachineConfig machine;
  machine.num_processors = 2;
  auto run = [&](bool with_sampler) {
    Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 7);
    Sampler sampler(Milliseconds(5));
    if (with_sampler) {
      engine.SetSampler(&sampler);
    }
    engine.SubmitJob(CachelessProfile("a", 2, Milliseconds(30)));
    engine.SubmitJob(CachelessProfile("b", 1, Milliseconds(20)));
    return engine.Run();
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Sampler, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/sampler_test_out.csv";
  Sampler sampler(Milliseconds(1));
  sampler.AddProbe("v", [] { return 1.0; });
  sampler.Sample(0);
  ASSERT_TRUE(Sampler::WriteFile(path, sampler.ToCsv()));

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), sampler.ToCsv());
  std::remove(path.c_str());
}

TEST(Sampler, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(Sampler::WriteFile("/nonexistent-dir/x/y.csv", "data"));
}

}  // namespace
}  // namespace affsched
