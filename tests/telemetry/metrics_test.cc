#include "src/telemetry/metrics.h"

#include <gtest/gtest.h>

#include "src/telemetry/cache_metrics.h"
#include "src/telemetry/json.h"

namespace affsched {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0.0);
  c.Add();
  c.Add();
  c.Add(2.5);
  EXPECT_EQ(c.value(), 4.5);
}

TEST(Gauge, SetOverwritesAddAccumulates) {
  Gauge g;
  g.Set(3.0);
  EXPECT_EQ(g.value(), 3.0);
  g.Set(1.0);
  EXPECT_EQ(g.value(), 1.0);
  g.Add(2.0);
  g.Add(-0.5);
  EXPECT_EQ(g.value(), 2.5);
}

TEST(FixedHistogram, BucketsObservationsByUpperBound) {
  FixedHistogram h({1.0, 10.0, 100.0});
  ASSERT_EQ(h.counts().size(), 4u);  // three bounds + overflow

  h.Observe(0.5);    // <= 1
  h.Observe(1.0);    // <= 1 (bounds are inclusive)
  h.Observe(5.0);    // <= 10
  h.Observe(100.0);  // <= 100
  h.Observe(1e6);    // overflow

  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[1], 1u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  EXPECT_DOUBLE_EQ(h.Mean(), h.sum() / 5.0);
}

TEST(FixedHistogram, EmptyHistogramHasZeroMean) {
  FixedHistogram h(DefaultLatencyBucketsUs());
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(DefaultLatencyBucketsUs, StrictlyIncreasing) {
  const std::vector<double> bounds = DefaultLatencyBucketsUs();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(MetricsRegistry, FindOrCreateIsIdempotentByName) {
  MetricsRegistry registry;
  Counter* a = registry.FindOrCreateCounter("engine.dispatches");
  Counter* b = registry.FindOrCreateCounter("engine.dispatches");
  EXPECT_EQ(a, b);
  a->Add(3.0);
  EXPECT_EQ(b->value(), 3.0);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricsRegistry, HandlesSurviveRegistryGrowth) {
  MetricsRegistry registry;
  Counter* first = registry.FindOrCreateCounter("m.0");
  for (int i = 1; i < 200; ++i) {
    registry.FindOrCreateCounter("m." + std::to_string(i));
  }
  first->Add(7.0);
  EXPECT_EQ(registry.FindCounter("m.0")->value(), 7.0);
}

TEST(MetricsRegistry, FindWithoutCreateReturnsNull) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.FindCounter("absent"), nullptr);
  EXPECT_EQ(registry.FindGauge("absent"), nullptr);
  EXPECT_EQ(registry.FindHistogram("absent"), nullptr);
  registry.FindOrCreateCounter("a.counter");
  // Present, but the wrong kind.
  EXPECT_EQ(registry.FindGauge("a.counter"), nullptr);
  EXPECT_NE(registry.FindCounter("a.counter"), nullptr);
}

TEST(MetricsRegistry, SnapshotIsSortedAndCoversHistograms) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter("z.count")->Add(2.0);
  registry.FindOrCreateGauge("a.gauge")->Set(1.5);
  FixedHistogram* h = registry.FindOrCreateHistogram("m.lat", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(20.0);

  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 5u);  // counter + gauge + 3 histogram pseudo-entries
  for (size_t i = 1; i < snapshot.size(); ++i) {
    EXPECT_LT(snapshot[i - 1].first, snapshot[i].first);
  }
  EXPECT_EQ(snapshot.front().first, "a.gauge");
  EXPECT_EQ(snapshot.back().first, "z.count");

  // Histogram pseudo-entries.
  bool saw_count = false;
  for (const auto& [name, value] : snapshot) {
    if (name == "m.lat.count") {
      saw_count = true;
      EXPECT_EQ(value, 2.0);
    }
  }
  EXPECT_TRUE(saw_count);
}

TEST(MetricsRegistry, RenderTextIsDeterministic) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter("b")->Add(1.0);
  registry.FindOrCreateCounter("a")->Add(2.0);
  const std::string text = registry.RenderText();
  EXPECT_EQ(text, registry.RenderText());
  EXPECT_LT(text.find("a "), text.find("b "));
}

TEST(MetricsRegistry, ToJsonIsValidJson) {
  MetricsRegistry registry;
  registry.FindOrCreateCounter("engine.dispatches")->Add(42.0);
  registry.FindOrCreateGauge("bus.utilization")->Set(0.25);
  FixedHistogram* h = registry.FindOrCreateHistogram("stall_us", DefaultLatencyBucketsUs());
  h->Observe(3.0);
  const std::string json = registry.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"engine.dispatches\""), std::string::npos);
  EXPECT_NE(json.find("\"stall_us.buckets\""), std::string::npos);
}

TEST(MetricsRegistry, EmptyRegistryStillRendersValidJson) {
  MetricsRegistry registry;
  EXPECT_TRUE(IsValidJson(registry.ToJson()));
}

TEST(CacheMetrics, ExactCacheCountersExport) {
  ExactCache cache(CacheGeometry{});
  cache.Access(1, 0);  // miss (cold)
  cache.Access(1, 0);  // hit
  cache.Access(2, 0);  // conflict: invalidates owner 1's line

  MetricsRegistry registry;
  ExportExactCacheMetrics(registry, "cache", cache);
  EXPECT_EQ(registry.FindCounter("cache.hits")->value(), static_cast<double>(cache.hits()));
  EXPECT_EQ(registry.FindCounter("cache.misses")->value(), static_cast<double>(cache.misses()));
  EXPECT_EQ(registry.FindCounter("cache.invalidated_lines")->value(),
            static_cast<double>(cache.invalidated_lines()));
  EXPECT_GE(cache.misses(), 2u);
  EXPECT_GE(cache.hits(), 1u);
}

TEST(CacheMetrics, CoherentCachesExportIncludesProtocolTotals) {
  CoherentCaches caches(2, CacheGeometry{});
  caches.Access(0, 1, 0, CoherentCaches::AccessType::kWrite);
  caches.Access(1, 1, 0, CoherentCaches::AccessType::kRead);  // remote dirty line

  MetricsRegistry registry;
  ExportCoherentCachesMetrics(registry, "coh", caches);
  ASSERT_NE(registry.FindCounter("coh.invalidations"), nullptr);
  ASSERT_NE(registry.FindCounter("coh.bus_transfers"), nullptr);
  ASSERT_NE(registry.FindCounter("coh.cache0.misses"), nullptr);
  ASSERT_NE(registry.FindCounter("coh.cache1.misses"), nullptr);
  EXPECT_EQ(registry.FindCounter("coh.bus_transfers")->value(),
            static_cast<double>(caches.total_bus_transfers()));
  EXPECT_TRUE(IsValidJson(registry.ToJson()));
}

}  // namespace
}  // namespace affsched
