// End-to-end check of the engine's metric instrumentation: counters must
// reconcile exactly with the JobStats accounting that the paper's
// response-time decomposition is built on, with or without cache behaviour,
// under both a static and an affinity policy.

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/measure/report.h"
#include "src/sched/factory.h"
#include "src/sched/metered.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/profile.h"

namespace affsched {
namespace {

class EngineMetricsTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(EngineMetricsTest, TotalsReconcileWithJobStats) {
  MachineConfig machine;
  machine.num_processors = 8;
  MetricsRegistry registry;
  Engine engine(machine, MakePolicy(GetParam()), 42);
  engine.SetMetrics(&registry);
  engine.SubmitJob(MakeSmallMvaProfile());
  engine.SubmitJob(MakeSmallGravityProfile());
  engine.Run();

  const MetricsReconciliation rec = ReconcileEngineMetrics(engine, registry);
  EXPECT_TRUE(rec.ok) << rec.report;

  // Per-job reallocation counters sum to the global dispatch counter.
  double per_job = 0.0;
  for (JobId id = 0; id < engine.job_count(); ++id) {
    const std::string name =
        "engine.job." + engine.job_name(id) + "#" + std::to_string(id) + ".reallocations";
    const Counter* c = registry.FindCounter(name);
    ASSERT_NE(c, nullptr) << name;
    per_job += c->value();
  }
  EXPECT_EQ(per_job, registry.FindCounter("engine.dispatches")->value());

  // Derived %affinity matches the JobStats-derived fraction exactly.
  double affine = 0.0;
  double dispatches = 0.0;
  for (JobId id = 0; id < engine.job_count(); ++id) {
    affine += static_cast<double>(engine.job_stats(id).affinity_dispatches);
    dispatches += static_cast<double>(engine.job_stats(id).reallocations);
  }
  EXPECT_EQ(registry.FindCounter("engine.dispatches_affine")->value(), affine);
  EXPECT_EQ(registry.FindCounter("engine.dispatches")->value(), dispatches);

  // The active-jobs gauge returned to zero when the run drained.
  const Gauge* active = registry.FindGauge("engine.active_jobs");
  ASSERT_NE(active, nullptr);
  EXPECT_EQ(active->value(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Policies, EngineMetricsTest,
                         ::testing::Values(PolicyKind::kEquipartition, PolicyKind::kDynamic,
                                           PolicyKind::kDynAff),
                         [](const ::testing::TestParamInfo<PolicyKind>& param) {
                           std::string name = PolicyKindName(param.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(MeteredPolicy, CountsDecisionsWithoutChangingThem) {
  MachineConfig machine;
  machine.num_processors = 8;
  auto run = [&](bool metered, MetricsRegistry* registry, ProfileSection* section) {
    std::unique_ptr<Policy> policy = MakePolicy(PolicyKind::kDynAff);
    if (metered) {
      auto wrapped = std::make_unique<MeteredPolicy>(std::move(policy));
      wrapped->AttachMetrics(registry);
      wrapped->AttachProfiler(section);
      policy = std::move(wrapped);
    }
    Engine engine(machine, std::move(policy), 42);
    engine.SubmitJob(MakeSmallMvaProfile());
    engine.SubmitJob(MakeSmallGravityProfile());
    return engine.Run();
  };

  MetricsRegistry registry;
  Profiler profiler;
  ProfileSection* section = profiler.Section("policy");
  const SimTime plain = run(false, nullptr, nullptr);
  const SimTime metered = run(true, &registry, section);
  EXPECT_EQ(plain, metered);  // the decorator must be behaviourally invisible

  EXPECT_EQ(registry.FindCounter("policy.on_arrival")->value(), 2.0);
  // The engine short-circuits the final departure (nothing left to allocate),
  // so only the first of the two departures consults the policy.
  EXPECT_EQ(registry.FindCounter("policy.on_departure")->value(), 1.0);
  EXPECT_GT(registry.FindCounter("policy.on_request")->value(), 0.0);
  EXPECT_GT(registry.FindCounter("policy.assignments")->value(), 0.0);
  EXPECT_GT(section->count(), 0u);
  // Every hook invocation got timed exactly once.
  const double hook_calls = registry.FindCounter("policy.on_arrival")->value() +
                            registry.FindCounter("policy.on_departure")->value() +
                            registry.FindCounter("policy.on_available")->value() +
                            registry.FindCounter("policy.on_request")->value() +
                            registry.FindCounter("policy.on_quantum")->value();
  EXPECT_EQ(static_cast<double>(section->count()), hook_calls);
}

TEST(EngineMetrics, AttachingMetricsDoesNotPerturbTheSimulation) {
  MachineConfig machine;
  machine.num_processors = 8;
  auto run = [&](bool with_metrics) {
    MetricsRegistry registry;
    Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 42);
    if (with_metrics) {
      engine.SetMetrics(&registry);
    }
    engine.SubmitJob(MakeSmallMvaProfile());
    engine.SubmitJob(MakeSmallGravityProfile());
    return engine.Run();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace affsched
