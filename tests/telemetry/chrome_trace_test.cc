#include "src/telemetry/chrome_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/sched/factory.h"
#include "src/telemetry/json.h"

namespace affsched {
namespace {

// Counts occurrences of `needle` in `haystack`.
size_t CountOf(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

std::vector<TraceEvent> TinyFixtureTrace() {
  return {
      {0, TraceEventKind::kJobArrival, SIZE_MAX, 0, kNoOwner, false},
      {Microseconds(10), TraceEventKind::kSwitchStart, 0, 0, 1, false},
      {Microseconds(760), TraceEventKind::kDispatch, 0, 0, 1, false},
      {Microseconds(2000), TraceEventKind::kThreadComplete, 0, 0, 1, false},
      {Microseconds(2000), TraceEventKind::kRelease, 0, 0, 1, false},
      {Microseconds(2000), TraceEventKind::kJobCompletion, SIZE_MAX, 0, kNoOwner, false},
  };
}

// Golden file for the tiny fixture: pins the exact serialisation (metadata
// tracks, span begin/end, allocation counter replay). Any intentional format
// change must update this string.
constexpr const char* kTinyFixtureGolden =
    R"({"displayTimeUnit":"ms","traceEvents":[)"
    R"({"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"processors"}},)"
    R"({"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"cpu0"}},)"
    R"({"name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"jobs"}},)"
    R"({"name":"thread_name","ph":"M","pid":2,"tid":0,"args":{"name":"solo#0"}},)"
    R"({"name":"solo#0","cat":"job","ph":"B","ts":0,"pid":2,"tid":0},)"
    R"({"name":"alloc solo#0","ph":"C","ts":0,"pid":2,"tid":0,"args":{"procs":0}},)"
    R"({"name":"switch","cat":"switch","ph":"B","ts":10,"pid":1,"tid":0},)"
    R"({"name":"alloc solo#0","ph":"C","ts":10,"pid":2,"tid":0,"args":{"procs":1}},)"
    R"({"ph":"E","ts":760,"pid":1,"tid":0},)"
    R"({"name":"solo#0","cat":"run","ph":"B","ts":760,"pid":1,"tid":0},)"
    R"({"name":"thread done solo#0","cat":"thread","ph":"i","s":"t","ts":2000,"pid":1,"tid":0},)"
    R"({"ph":"E","ts":2000,"pid":1,"tid":0},)"
    R"({"name":"alloc solo#0","ph":"C","ts":2000,"pid":2,"tid":0,"args":{"procs":0}},)"
    R"({"ph":"E","ts":2000,"pid":2,"tid":0},)"
    R"({"name":"alloc solo#0","ph":"C","ts":2000,"pid":2,"tid":0,"args":{"procs":0}}]})";

TEST(ChromeTraceWriter, TinyFixtureMatchesGolden) {
  ChromeTraceWriter writer;
  writer.AddEvents(TinyFixtureTrace());
  EXPECT_EQ(writer.ToJson(1, {"solo"}), kTinyFixtureGolden);
}

TEST(ChromeTraceWriter, GoldenIsValidJson) {
  EXPECT_TRUE(IsValidJson(kTinyFixtureGolden));
}

TEST(ChromeTraceWriter, EmptyTraceIsValidJson) {
  ChromeTraceWriter writer;
  const std::string json = writer.ToJson(2, {});
  EXPECT_TRUE(IsValidJson(json)) << json;
  // Metadata for processor tracks is still present.
  EXPECT_NE(json.find("\"processors\""), std::string::npos);
}

TEST(ChromeTraceWriter, FullEngineRunProducesBalancedSpans) {
  MachineConfig machine;
  machine.num_processors = 4;
  ChromeTraceWriter writer;
  Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 42);
  engine.SetTraceSink(&writer);
  engine.SubmitJob(MakeSmallMvaProfile());
  engine.SubmitJob(MakeSmallGravityProfile());
  engine.Run();

  std::vector<std::string> names;
  for (JobId id = 0; id < engine.job_count(); ++id) {
    names.push_back(engine.job_name(id));
  }
  const std::string json = writer.ToJson(machine.num_processors, names);
  EXPECT_TRUE(IsValidJson(json)) << "chrome trace output is not valid JSON";
  // Every "B" needs a matching "E"; the writer closes dangling spans itself.
  EXPECT_EQ(CountOf(json, "\"ph\":\"B\""), CountOf(json, "\"ph\":\"E\""));
  // Both process groups and at least one span per kind of track exist.
  EXPECT_GT(CountOf(json, "\"pid\":1"), 0u);
  EXPECT_GT(CountOf(json, "\"pid\":2"), 0u);
  EXPECT_GT(CountOf(json, "\"cat\":\"run\""), 0u);
  EXPECT_GT(CountOf(json, "\"cat\":\"switch\""), 0u);
}

TEST(ChromeTraceWriter, RecordAndAddEventsAgree) {
  ChromeTraceWriter recorded;
  ChromeTraceWriter bulk;
  const std::vector<TraceEvent> events = TinyFixtureTrace();
  for (const TraceEvent& e : events) {
    recorded.Record(e);
  }
  bulk.AddEvents(events);
  EXPECT_EQ(recorded.size(), bulk.size());
  EXPECT_EQ(recorded.ToJson(1, {"solo"}), bulk.ToJson(1, {"solo"}));
}

TEST(ChromeTraceWriter, WriteJsonFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/chrome_trace_test_out.json";
  ChromeTraceWriter writer;
  writer.AddEvents(TinyFixtureTrace());
  ASSERT_TRUE(writer.WriteJsonFile(path, 1, {"solo"}));

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), writer.ToJson(1, {"solo"}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace affsched
