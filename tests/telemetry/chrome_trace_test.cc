#include "src/telemetry/chrome_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/sched/factory.h"
#include "src/telemetry/json.h"

namespace affsched {
namespace {

// Counts occurrences of `needle` in `haystack`.
size_t CountOf(const std::string& haystack, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

std::vector<TraceEvent> TinyFixtureTrace() {
  return {
      {0, TraceEventKind::kJobArrival, SIZE_MAX, 0, kNoOwner, false},
      {Microseconds(10), TraceEventKind::kSwitchStart, 0, 0, 1, false},
      {Microseconds(760), TraceEventKind::kDispatch, 0, 0, 1, false},
      {Microseconds(2000), TraceEventKind::kThreadComplete, 0, 0, 1, false},
      {Microseconds(2000), TraceEventKind::kRelease, 0, 0, 1, false},
      {Microseconds(2000), TraceEventKind::kJobCompletion, SIZE_MAX, 0, kNoOwner, false},
  };
}

// Golden file for the tiny fixture: pins the exact serialisation (metadata
// tracks, span begin/end, allocation counter replay). Any intentional format
// change must update this string.
constexpr const char* kTinyFixtureGolden =
    R"({"displayTimeUnit":"ms","traceEvents":[)"
    R"({"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"processors"}},)"
    R"({"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"cpu0"}},)"
    R"({"name":"process_name","ph":"M","pid":2,"tid":0,"args":{"name":"jobs"}},)"
    R"({"name":"thread_name","ph":"M","pid":2,"tid":0,"args":{"name":"solo#0"}},)"
    R"({"name":"solo#0","cat":"job","ph":"B","ts":0,"pid":2,"tid":0},)"
    R"({"name":"alloc solo#0","ph":"C","ts":0,"pid":2,"tid":0,"args":{"procs":0}},)"
    R"({"name":"switch","cat":"switch","ph":"B","ts":10,"pid":1,"tid":0},)"
    R"({"name":"alloc solo#0","ph":"C","ts":10,"pid":2,"tid":0,"args":{"procs":1}},)"
    R"({"ph":"E","ts":760,"pid":1,"tid":0},)"
    R"({"name":"solo#0","cat":"run","ph":"B","ts":760,"pid":1,"tid":0},)"
    R"({"name":"thread done solo#0","cat":"thread","ph":"i","s":"t","ts":2000,"pid":1,"tid":0},)"
    R"({"ph":"E","ts":2000,"pid":1,"tid":0},)"
    R"({"name":"alloc solo#0","ph":"C","ts":2000,"pid":2,"tid":0,"args":{"procs":0}},)"
    R"({"ph":"E","ts":2000,"pid":2,"tid":0},)"
    R"({"name":"alloc solo#0","ph":"C","ts":2000,"pid":2,"tid":0,"args":{"procs":0}}]})";

TEST(ChromeTraceWriter, TinyFixtureMatchesGolden) {
  ChromeTraceWriter writer;
  writer.AddEvents(TinyFixtureTrace());
  EXPECT_EQ(writer.ToJson(1, {"solo"}), kTinyFixtureGolden);
}

TEST(ChromeTraceWriter, GoldenIsValidJson) {
  EXPECT_TRUE(IsValidJson(kTinyFixtureGolden));
}

TEST(ChromeTraceWriter, EmptyTraceIsValidJson) {
  ChromeTraceWriter writer;
  const std::string json = writer.ToJson(2, {});
  EXPECT_TRUE(IsValidJson(json)) << json;
  // Metadata for processor tracks is still present.
  EXPECT_NE(json.find("\"processors\""), std::string::npos);
}

TEST(ChromeTraceWriter, FullEngineRunProducesBalancedSpans) {
  MachineConfig machine;
  machine.num_processors = 4;
  ChromeTraceWriter writer;
  Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 42);
  engine.SetTraceSink(&writer);
  engine.SubmitJob(MakeSmallMvaProfile());
  engine.SubmitJob(MakeSmallGravityProfile());
  engine.Run();

  std::vector<std::string> names;
  for (JobId id = 0; id < engine.job_count(); ++id) {
    names.push_back(engine.job_name(id));
  }
  const std::string json = writer.ToJson(machine.num_processors, names);
  EXPECT_TRUE(IsValidJson(json)) << "chrome trace output is not valid JSON";
  // Every "B" needs a matching "E"; the writer closes dangling spans itself.
  EXPECT_EQ(CountOf(json, "\"ph\":\"B\""), CountOf(json, "\"ph\":\"E\""));
  // Both process groups and at least one span per kind of track exist.
  EXPECT_GT(CountOf(json, "\"pid\":1"), 0u);
  EXPECT_GT(CountOf(json, "\"pid\":2"), 0u);
  EXPECT_GT(CountOf(json, "\"cat\":\"run\""), 0u);
  EXPECT_GT(CountOf(json, "\"cat\":\"switch\""), 0u);
}

TEST(ChromeTraceWriter, RecordAndAddEventsAgree) {
  ChromeTraceWriter recorded;
  ChromeTraceWriter bulk;
  const std::vector<TraceEvent> events = TinyFixtureTrace();
  for (const TraceEvent& e : events) {
    recorded.Record(e);
  }
  bulk.AddEvents(events);
  EXPECT_EQ(recorded.size(), bulk.size());
  EXPECT_EQ(recorded.ToJson(1, {"solo"}), bulk.ToJson(1, {"solo"}));
}

TEST(ChromeTraceWriter, AttachedDecisionJoinsFlowToDispatch) {
  ChromeTraceWriter writer;
  writer.AddEvents(TinyFixtureTrace());

  // One decision placing job 0 on processor 0, made before the fixture's
  // dispatch at ts=760: the writer must join them with an s/f flow pair.
  DecisionRecord decision;
  decision.id = 41;
  decision.when = Microseconds(10);
  decision.site = DecisionSite::kRequest;
  decision.reason = DecisionReason::kFreeProcessor;
  decision.job = 0;
  decision.chosen_proc = 0;
  DecisionCandidate c;
  c.proc = 0;
  c.available = true;
  c.chosen = true;
  c.reload_cost_s = 0.002;
  c.footprint_blocks = 3;
  decision.candidates = {c};
  const std::vector<DecisionRecord> decisions = {decision};
  writer.AttachDecisions(&decisions);

  const std::string json = writer.ToJson(1, {"solo"});
  EXPECT_TRUE(IsValidJson(json)) << json;
  // pid-3 scheduler process with a per-processor decide track.
  EXPECT_NE(json.find("\"scheduler\""), std::string::npos);
  EXPECT_NE(json.find("\"decide cpu0\""), std::string::npos);
  // The decision slice carries the reason name and score breakdown.
  EXPECT_NE(json.find("\"free_processor\""), std::string::npos);
  EXPECT_NE(json.find("\"reload_cost_s\":0.002"), std::string::npos);
  // Flow start at the decision, flow finish (bp "e") at the dispatch.
  EXPECT_NE(json.find("\"ph\":\"s\",\"id\":41,\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\",\"bp\":\"e\",\"id\":41,\"ts\":760"), std::string::npos);
  // Detaching restores the plain golden output byte for byte.
  writer.AttachDecisions(nullptr);
  EXPECT_EQ(writer.ToJson(1, {"solo"}), kTinyFixtureGolden);
}

TEST(ChromeTraceWriter, FullEngineRunWithProvenanceStaysBalanced) {
  MachineConfig machine;
  machine.num_processors = 4;
  ChromeTraceWriter writer;
  DecisionTrace decisions;
  JobSpanCollector spans;
  Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 42);
  engine.SetTraceSink(&writer);
  engine.SetDecisionSink(&decisions);
  engine.SetSpanCollector(&spans);
  engine.SubmitJob(MakeSmallMvaProfile());
  engine.SubmitJob(MakeSmallGravityProfile());
  engine.Run();

  std::vector<std::string> names;
  for (JobId id = 0; id < engine.job_count(); ++id) {
    names.push_back(engine.job_name(id));
  }
  const std::vector<DecisionRecord> records = decisions.Records();
  ASSERT_GT(records.size(), 0u);
  writer.AttachDecisions(&records);
  writer.AttachLifecycles(&spans);

  const std::string json = writer.ToJson(machine.num_processors, names);
  EXPECT_TRUE(IsValidJson(json)) << "provenance trace output is not valid JSON";
  // The extra layers must not disturb the span balance.
  EXPECT_EQ(CountOf(json, "\"ph\":\"B\""), CountOf(json, "\"ph\":\"E\""));
  // One decision slice and one flow start per record with a placed processor.
  size_t placed = 0;
  for (const DecisionRecord& r : records) {
    placed += r.chosen_proc < machine.num_processors;
  }
  ASSERT_GT(placed, 0u);
  EXPECT_EQ(CountOf(json, "\"cat\":\"decision\",\"ph\":\"X\""), placed);
  EXPECT_EQ(CountOf(json, "\"ph\":\"s\""), placed);
  // Every flow finish consumes a start; a few starts may dangle (decisions
  // whose dispatch falls outside the recorded window), never the reverse.
  const size_t finishes = CountOf(json, "\"ph\":\"f\"");
  EXPECT_GT(finishes, 0u);
  EXPECT_LE(finishes, placed);
}

TEST(ChromeTraceWriter, WriteJsonFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/chrome_trace_test_out.json";
  ChromeTraceWriter writer;
  writer.AddEvents(TinyFixtureTrace());
  ASSERT_TRUE(writer.WriteJsonFile(path, 1, {"solo"}));

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), writer.ToJson(1, {"solo"}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace affsched
