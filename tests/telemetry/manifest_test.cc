#include "src/telemetry/manifest.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/telemetry/json.h"
#include "src/telemetry/profile.h"

namespace affsched {
namespace {

TEST(Json, EscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
}

TEST(Json, NumberFormatsIntegralsWithoutFraction) {
  EXPECT_EQ(JsonNumber(42.0), "42");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  EXPECT_EQ(JsonNumber(0.0), "0");
}

TEST(Json, NumberNeverEmitsNonFiniteLiterals) {
  EXPECT_EQ(JsonNumber(NAN), "null");
  EXPECT_EQ(JsonNumber(INFINITY), "null");
  EXPECT_EQ(JsonNumber(-INFINITY), "null");
  EXPECT_TRUE(IsValidJson(JsonNumber(0.1)));
}

TEST(Json, ValidityChecker) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("[1, 2.5, \"x\", true, null]"));
  EXPECT_TRUE(IsValidJson("{\"a\": {\"b\": [1]}}"));
  EXPECT_FALSE(IsValidJson(""));
  EXPECT_FALSE(IsValidJson("{"));
  EXPECT_FALSE(IsValidJson("{} extra"));
  EXPECT_FALSE(IsValidJson("{'single': 1}"));
  EXPECT_FALSE(IsValidJson("[1,]"));
  EXPECT_FALSE(IsValidJson("nan"));
}

TEST(Profiler, SectionsAccumulate) {
  Profiler profiler;
  ProfileSection* a = profiler.Section("alpha");
  EXPECT_EQ(profiler.Section("alpha"), a);
  a->Add(100);
  a->Add(300);
  EXPECT_EQ(a->total_ns(), 400u);
  EXPECT_EQ(a->count(), 2u);
  EXPECT_DOUBLE_EQ(a->MeanNs(), 200.0);
  EXPECT_TRUE(IsValidJson(profiler.ToJson()));
  EXPECT_NE(profiler.Report().find("alpha"), std::string::npos);
}

TEST(ScopedTimer, AccumulatesIntoSectionAndToleratesNull) {
  Profiler profiler;
  ProfileSection* s = profiler.Section("timed");
  {
    ScopedTimer t(s);
  }
  EXPECT_EQ(s->count(), 1u);
  {
    ScopedTimer t(nullptr);  // must be a no-op, not a crash
  }
}

TEST(RunManifest, IncludesBuildMetadataAndIsValidJson) {
  RunManifest manifest;
  const std::string json = manifest.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"build_type\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
  EXPECT_STRNE(RunManifest::GitSha(), "");
}

TEST(RunManifest, MembersAndMetricsEmbed) {
  RunManifest manifest;
  manifest.SetString("tool", "test \"quoted\"");
  manifest.SetNumber("seed", 42.0);
  MetricsRegistry registry;
  registry.FindOrCreateCounter("engine.dispatches")->Add(7.0);
  manifest.AddMetrics(registry);
  Profiler profiler;
  profiler.Section("run")->Add(1000);
  manifest.AddProfile(profiler);

  const std::string json = manifest.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"profile\""), std::string::npos);
  EXPECT_NE(json.find("engine.dispatches"), std::string::npos);
}

TEST(RunManifest, SetUintRoundTripsFull64BitRange) {
  // SetNumber goes through double, which silently rounds above 2^53; seeds
  // must survive exactly, so they go in as decimal integer text.
  RunManifest manifest;
  const uint64_t seed = 9223372036854775815ull;  // 2^63 + 7
  manifest.SetUint("seed", seed);
  const std::string json = manifest.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"seed\":9223372036854775815"), std::string::npos) << json;
}

TEST(RunManifest, SetProvenanceRecordsGitRevHostnameAndArgv) {
  RunManifest manifest;
  const char* argv[] = {"simctl", "--mix=5", "--policy=dyn-aff"};
  manifest.SetProvenance(3, argv);
  const std::string json = manifest.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"git_rev\":\"" + std::string(RunManifest::GitSha()) + "\""),
            std::string::npos);
  // Hostname is host-specific but must be present and non-empty.
  EXPECT_NE(json.find("\"hostname\":\""), std::string::npos);
  EXPECT_EQ(json.find("\"hostname\":\"\""), std::string::npos);
  // The command line round-trips verbatim as a JSON array.
  EXPECT_NE(json.find("\"argv\":[\"simctl\",\"--mix=5\",\"--policy=dyn-aff\"]"),
            std::string::npos);
}

TEST(RunManifest, WriteFileProducesParseableFile) {
  const std::string path = ::testing::TempDir() + "/manifest_test_out.json";
  RunManifest manifest;
  manifest.SetString("tool", "manifest_test");
  ASSERT_TRUE(manifest.WriteFile(path));

  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(IsValidJson(buffer.str()));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace affsched
