// Distance-aware affinity variants (Dyn-Aff-Cluster / Dyn-Aff-Node): the
// widened A.1/A.2 searches, and their exact reduction to the paper's Dyn-Aff
// at affinity_tier 0.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/sched/dynamic.h"
#include "src/sched/factory.h"
#include "src/topology/topology.h"
#include "tests/sched/fake_view.h"

namespace affsched {
namespace {

// FakeSchedView over a real Topology: pairs of processors per cluster, two
// clusters per node (so an 8-processor view exercises tiers 0 through 3).
class ClusteredView : public FakeSchedView {
 public:
  ClusteredView(size_t num_procs, size_t cores_per_cluster, size_t clusters_per_node)
      : FakeSchedView(num_procs), topology_(MakeSpec(cores_per_cluster, clusters_per_node),
                                            num_procs) {}

  size_t DistanceTier(size_t from, size_t to) const override {
    return topology_.TierBetween(from, to);
  }

 private:
  static TopologySpec MakeSpec(size_t cores_per_cluster, size_t clusters_per_node) {
    TopologySpec spec;
    spec.name = "test";
    spec.cores_per_cluster = cores_per_cluster;
    spec.clusters_per_node = clusters_per_node;
    return spec;
  }
  Topology topology_;
};

TEST(TopologyPolicyTest, NamesMatchTheVariants) {
  EXPECT_EQ((DynamicOptions{.use_affinity = true, .affinity_tier = 1}).PolicyName(),
            "Dyn-Aff-Cluster");
  EXPECT_EQ((DynamicOptions{.use_affinity = true, .affinity_tier = 2}).PolicyName(),
            "Dyn-Aff-Node");
  EXPECT_EQ(PolicyKindName(PolicyKind::kDynAffCluster), "Dyn-Aff-Cluster");
  EXPECT_EQ(PolicyKindName(PolicyKind::kDynAffNode), "Dyn-Aff-Node");
}

TEST(TopologyPolicyTest, CliNamesRoundTrip) {
  for (PolicyKind kind : {PolicyKind::kDynAffCluster, PolicyKind::kDynAffNode}) {
    PolicyKind parsed;
    ASSERT_TRUE(PolicyKindFromName(PolicyKindCliName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
}

TEST(TopologyPolicyTest, TopologyFamilyIncludesDistanceVariants) {
  const std::vector<PolicyKind> family = TopologyPolicyFamily();
  EXPECT_NE(std::find(family.begin(), family.end(), PolicyKind::kDynAffCluster), family.end());
  EXPECT_NE(std::find(family.begin(), family.end(), PolicyKind::kDynAffNode), family.end());
}

TEST(TopologyPolicyTest, DefaultViewTreatsOffCoreAsOneTier) {
  // The SchedView default keeps non-topology-aware views working: 0 on the
  // diagonal, 1 everywhere else.
  FakeSchedView view(3);
  EXPECT_EQ(view.DistanceTier(1, 1), 0u);
  EXPECT_EQ(view.DistanceTier(0, 2), 1u);
}

TEST(TopologyPolicyTest, TierZeroReducesToFlatRuleA1) {
  // A runnable task remembered on a same-cluster *neighbour* is invisible to
  // plain Dyn-Aff (affinity_tier 0 consults only the freed processor's own
  // history).
  ClusteredView view(4, 2, 0);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  view.procs[1].last_task = 42;  // proc 1 shares proc 0's cluster
  view.tasks[42] = {.job = a, .runnable = true};
  DynamicPolicy flat({.use_affinity = true});
  const auto decision = flat.OnProcessorAvailable(view, 0);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].prefer_task, kNoOwner);  // plain requester grant
}

TEST(TopologyPolicyTest, ClusterVariantReunitesAcrossTheCluster) {
  ClusteredView view(4, 2, 0);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  view.procs[1].last_task = 42;
  view.tasks[42] = {.job = a, .runnable = true};
  DynamicPolicy cluster({.use_affinity = true, .affinity_tier = 1});
  const auto decision = cluster.OnProcessorAvailable(view, 0);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].job, a);
  EXPECT_EQ(decision.assignments[0].prefer_task, 42u);
}

TEST(TopologyPolicyTest, ClusterVariantStopsAtTheClusterBoundary) {
  // The remembered task lives in the *other* cluster (tier 2 under a
  // single-node grouping): Dyn-Aff-Cluster must not reach it, Dyn-Aff-Node
  // must.
  ClusteredView view(4, 2, 0);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  view.procs[2].last_task = 42;
  view.tasks[42] = {.job = a, .runnable = true};

  DynamicPolicy cluster({.use_affinity = true, .affinity_tier = 1});
  const auto near = cluster.OnProcessorAvailable(view, 0);
  ASSERT_EQ(near.assignments.size(), 1u);
  EXPECT_EQ(near.assignments[0].prefer_task, kNoOwner);

  DynamicPolicy node({.use_affinity = true, .affinity_tier = 2});
  const auto wide = node.OnProcessorAvailable(view, 0);
  ASSERT_EQ(wide.assignments.size(), 1u);
  EXPECT_EQ(wide.assignments[0].prefer_task, 42u);
}

TEST(TopologyPolicyTest, OwnHistoryBeatsClusterPeers) {
  // Nearest surviving context wins: the freed processor's own history (tier
  // 0) is searched before any same-cluster peer (tier 1).
  ClusteredView view(4, 2, 0);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  const JobId b = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  view.procs[0].last_task = 7;
  view.tasks[7] = {.job = a, .runnable = true};
  view.procs[1].last_task = 9;
  view.tasks[9] = {.job = b, .runnable = true};
  DynamicPolicy cluster({.use_affinity = true, .affinity_tier = 1});
  const auto decision = cluster.OnProcessorAvailable(view, 0);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].prefer_task, 7u);
}

TEST(TopologyPolicyTest, RuleA2FallsOutwardToAClusterNeighbour) {
  // Desired processor 2 is actively held; its cluster mate 3 is free. Plain
  // Dyn-Aff gives up on affinity and takes the first free processor (0);
  // Dyn-Aff-Cluster lands next to the task's context instead.
  ClusteredView view(4, 2, 0);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1,
                               .desired = 2});
  const JobId b = view.AddJob({.allocation = 1, .max_parallelism = 8});
  view.procs[2].holder = b;  // active, not willing: A.2 never preempts

  DynamicPolicy flat({.use_affinity = true});
  const auto flat_decision = flat.OnRequest(view, a);
  ASSERT_EQ(flat_decision.assignments.size(), 1u);
  EXPECT_EQ(flat_decision.assignments[0].proc, 0u);

  DynamicPolicy cluster({.use_affinity = true, .affinity_tier = 1});
  const auto cluster_decision = cluster.OnRequest(view, a);
  ASSERT_EQ(cluster_decision.assignments.size(), 1u);
  EXPECT_EQ(cluster_decision.assignments[0].proc, 3u);
}

TEST(TopologyPolicyTest, RuleA2StillPrefersTheDesiredProcessorItself) {
  ClusteredView view(4, 2, 0);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1,
                               .desired = 2});
  // Both the desired processor and its neighbour are free: minimal tier wins.
  DynamicPolicy cluster({.use_affinity = true, .affinity_tier = 1});
  const auto decision = cluster.OnRequest(view, a);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].proc, 2u);
}

TEST(TopologyPolicyTest, NodeVariantRespectsNodeBoundaries) {
  // 8 procs, clusters of 2, nodes of 2 clusters: procs 4..7 are a different
  // node (tier 3) from the desired processor 0 — out of reach even for
  // Dyn-Aff-Node, which falls back to rule D.1's first free processor.
  ClusteredView view(8, 2, 2);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1,
                               .desired = 0});
  const JobId b = view.AddJob({.allocation = 4, .max_parallelism = 8});
  for (size_t p = 0; p < 4; ++p) {
    view.procs[p].holder = b;  // the whole home node is actively held
  }
  DynamicPolicy node({.use_affinity = true, .affinity_tier = 2});
  const auto decision = node.OnRequest(view, a);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].proc, 4u);  // D.1, not a tier-3 A.2 grant
}

TEST(TopologyPolicyTest, FactoryBuildsDistanceVariants) {
  EXPECT_EQ(MakePolicy(PolicyKind::kDynAffCluster)->name(), "Dyn-Aff-Cluster");
  EXPECT_EQ(MakePolicy(PolicyKind::kDynAffNode)->name(), "Dyn-Aff-Node");
}

}  // namespace
}  // namespace affsched
