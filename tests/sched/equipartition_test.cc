#include "src/sched/equipartition.h"

#include <gtest/gtest.h>

#include "tests/sched/fake_view.h"

namespace affsched {
namespace {

TEST(EquipartitionTest, SplitsEvenlyAmongUnboundedJobs) {
  FakeSchedView view(16);
  const JobId a = view.AddJob({.max_parallelism = 32});
  const JobId b = view.AddJob({.max_parallelism = 32});
  const auto targets = Equipartition::ComputeTargets(view);
  EXPECT_EQ(targets.at(a), 8u);
  EXPECT_EQ(targets.at(b), 8u);
}

TEST(EquipartitionTest, JobAtMaxParallelismDropsOut) {
  // The allocation-number algorithm: a job whose number reaches its maximum
  // parallelism drops out, and the rest keeps being distributed.
  FakeSchedView view(16);
  const JobId small = view.AddJob({.max_parallelism = 3});
  const JobId big = view.AddJob({.max_parallelism = 32});
  const auto targets = Equipartition::ComputeTargets(view);
  EXPECT_EQ(targets.at(small), 3u);
  EXPECT_EQ(targets.at(big), 13u);
}

TEST(EquipartitionTest, LeftoverProcessorsUnassignedWhenAllCapped) {
  FakeSchedView view(16);
  const JobId a = view.AddJob({.max_parallelism = 2});
  const JobId b = view.AddJob({.max_parallelism = 4});
  const auto targets = Equipartition::ComputeTargets(view);
  EXPECT_EQ(targets.at(a), 2u);
  EXPECT_EQ(targets.at(b), 4u);
}

TEST(EquipartitionTest, UnevenRemainderGoesToEarlierArrivals) {
  FakeSchedView view(16);
  const JobId a = view.AddJob({.max_parallelism = 32});
  const JobId b = view.AddJob({.max_parallelism = 32});
  const JobId c = view.AddJob({.max_parallelism = 32});
  const auto targets = Equipartition::ComputeTargets(view);
  EXPECT_EQ(targets.at(a), 6u);
  EXPECT_EQ(targets.at(b), 5u);
  EXPECT_EQ(targets.at(c), 5u);
}

TEST(EquipartitionTest, SingleJobGetsUpToItsMax) {
  FakeSchedView view(16);
  const JobId a = view.AddJob({.max_parallelism = 10});
  const auto targets = Equipartition::ComputeTargets(view);
  EXPECT_EQ(targets.at(a), 10u);
}

TEST(EquipartitionTest, ArrivalAndDepartureRepartition) {
  FakeSchedView view(16);
  const JobId a = view.AddJob({.max_parallelism = 32});
  Equipartition policy;
  const PolicyDecision on_arrival = policy.OnJobArrival(view, a);
  ASSERT_TRUE(on_arrival.targets.has_value());
  EXPECT_EQ(on_arrival.targets->at(a), 16u);
  const PolicyDecision on_departure = policy.OnJobDeparture(view, a);
  EXPECT_TRUE(on_departure.targets.has_value());
}

TEST(EquipartitionTest, IgnoresYieldsAndRequests) {
  // This is the policy's defining trade: no reallocation between arrivals,
  // whatever the instantaneous demands are.
  FakeSchedView view(16);
  const JobId a = view.AddJob({.allocation = 8, .max_parallelism = 32, .demand = 8});
  view.AddJob({.allocation = 8, .max_parallelism = 32});
  view.procs[0].holder = 1;
  view.procs[0].willing = true;
  Equipartition policy;
  EXPECT_TRUE(policy.OnProcessorAvailable(view, 0).assignments.empty());
  EXPECT_FALSE(policy.OnProcessorAvailable(view, 0).targets.has_value());
  EXPECT_TRUE(policy.OnRequest(view, a).assignments.empty());
}

TEST(EquipartitionTest, NoJobsMeansNoTargets) {
  FakeSchedView view(16);
  const auto targets = Equipartition::ComputeTargets(view);
  EXPECT_TRUE(targets.empty());
}

TEST(EquipartitionTest, MoreJobsThanProcessors) {
  FakeSchedView view(4);
  for (int i = 0; i < 6; ++i) {
    view.AddJob({.max_parallelism = 8});
  }
  const auto targets = Equipartition::ComputeTargets(view);
  size_t total = 0;
  for (const auto& [job, count] : targets) {
    total += count;
    EXPECT_LE(count, 1u);
  }
  EXPECT_EQ(total, 4u);
}

}  // namespace
}  // namespace affsched
