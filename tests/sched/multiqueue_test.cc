// The multi-queue (MQMS) family: queue homing, local-first dispatch,
// distance-tier-limited affinity-aware stealing, push placement, and the
// periodic balance tick.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "src/sched/factory.h"
#include "src/sched/multiqueue.h"
#include "src/topology/topology.h"
#include "tests/sched/fake_view.h"

namespace affsched {
namespace {

// FakeSchedView over a real Topology plus a programmable reload-cost table:
// 8 processors as clusters of 2, two clusters per node, exercises tiers 0-3.
class StealView : public FakeSchedView {
 public:
  StealView(size_t num_procs, size_t cores_per_cluster, size_t clusters_per_node)
      : FakeSchedView(num_procs),
        topology_(MakeSpec(cores_per_cluster, clusters_per_node), num_procs) {}

  size_t DistanceTier(size_t from, size_t to) const override {
    return topology_.TierBetween(from, to);
  }

  double ReloadCostSeconds(JobId job, size_t proc) const override {
    const auto it = reload_cost.find({job, proc});
    return it == reload_cost.end() ? 0.0 : it->second;
  }

  std::map<std::pair<JobId, size_t>, double> reload_cost;

 private:
  static TopologySpec MakeSpec(size_t cores_per_cluster, size_t clusters_per_node) {
    TopologySpec spec;
    spec.name = "test";
    spec.cores_per_cluster = cores_per_cluster;
    spec.clusters_per_node = clusters_per_node;
    return spec;
  }
  Topology topology_;
};

MultiQueuePolicy Mq(size_t steal_tier) {
  return MultiQueuePolicy(MultiQueueOptions{.steal_tier = steal_tier});
}

TEST(MultiQueueTest, NamesMatchTheStealRadii) {
  EXPECT_EQ(Mq(0).name(), "MQ-NoSteal");
  EXPECT_EQ(Mq(1).name(), "MQ-Steal-Sibling");
  EXPECT_EQ(Mq(2).name(), "MQ-Steal-Cluster");
  EXPECT_EQ(Mq(3).name(), "MQ-Steal-NUMA");
}

TEST(MultiQueueTest, CliNamesRoundTrip) {
  for (PolicyKind kind : MqPolicyFamily()) {
    PolicyKind parsed;
    ASSERT_TRUE(PolicyKindFromName(PolicyKindCliName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
    EXPECT_TRUE(IsMqPolicy(kind));
  }
  EXPECT_FALSE(IsMqPolicy(PolicyKind::kDynAff));
}

TEST(MultiQueueTest, StealNamesMapToTheFamily) {
  const std::vector<std::string> names = {"nosteal", "sibling", "cluster", "numa"};
  for (size_t i = 0; i < names.size(); ++i) {
    PolicyKind kind;
    ASSERT_TRUE(PolicyKindFromStealName(names[i], &kind)) << names[i];
    EXPECT_EQ(StealPolicyName(kind), names[i]);
  }
  PolicyKind kind;
  EXPECT_FALSE(PolicyKindFromStealName("everywhere", &kind));
}

TEST(MultiQueueTest, ArrivalsSpreadOverLeastLoadedQueues) {
  StealView view(4, 2, 0);
  MultiQueuePolicy policy = Mq(0);
  std::vector<JobId> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1}));
    policy.OnJobArrival(view, jobs.back());
  }
  // Least-loaded with lowest-index ties: one job per queue, in order.
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(policy.HomeOf(jobs[i]), i);
  }
  policy.OnJobDeparture(view, jobs[0]);
  EXPECT_EQ(policy.HomeOf(jobs[0]), kNoProcessor);
}

TEST(MultiQueueTest, LocalQueueServedBeforeAnySteal) {
  StealView view(4, 2, 0);
  MultiQueuePolicy policy = Mq(3);
  const JobId remote = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1,
                                    .priority = 5.0});
  const JobId local = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  policy.OnJobArrival(view, remote);  // homes at 0
  policy.OnJobArrival(view, local);   // homes at 1
  const auto decision = policy.OnProcessorAvailable(view, 1);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].job, local);
  EXPECT_EQ(decision.assignments[0].reason, DecisionReason::kLocalQueue);
  EXPECT_EQ(decision.assignments[0].steal_tier, kNoStealTier);
}

TEST(MultiQueueTest, NoStealBaselineLeavesRemoteWorkAlone) {
  StealView view(4, 2, 0);
  MultiQueuePolicy policy = Mq(0);
  const JobId job = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  policy.OnJobArrival(view, job);  // homes at 0
  EXPECT_TRUE(policy.OnProcessorAvailable(view, 1).assignments.empty());
  EXPECT_TRUE(policy.OnProcessorAvailable(view, 3).assignments.empty());
}

TEST(MultiQueueTest, StealStopsAtTheRadius) {
  // 8 procs, clusters of 2, 2 clusters per node: from proc 0 the victim's
  // home 2 is tier 2 (same node, other cluster) and 4 is tier 3.
  MultiQueuePolicy sibling = Mq(1);
  MultiQueuePolicy cluster = Mq(2);
  for (MultiQueuePolicy* policy : {&sibling, &cluster}) {
    StealView v(8, 2, 2);
    const JobId a = v.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
    const JobId b = v.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
    const JobId c = v.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
    policy->OnJobArrival(v, a);  // home 0
    policy->OnJobArrival(v, b);  // home 1
    policy->OnJobArrival(v, c);  // home 2
    // Occupy the tier-1 sibling's job so only the tier-2 victim remains.
    v.jobs[a].demand = 0;
    v.jobs[b].demand = 0;
    const auto decision = policy->OnProcessorAvailable(v, 0);
    if (policy == &sibling) {
      EXPECT_TRUE(decision.assignments.empty());  // tier 2 is out of range
    } else {
      ASSERT_EQ(decision.assignments.size(), 1u);
      EXPECT_EQ(decision.assignments[0].job, c);
      EXPECT_EQ(decision.assignments[0].reason, DecisionReason::kSteal);
      EXPECT_EQ(decision.assignments[0].steal_tier, 2u);
      EXPECT_EQ(policy->HomeOf(c), 0u);  // pull migration re-homes the victim
    }
  }
}

TEST(MultiQueueTest, NearerVictimBeatsCheaperFartherOne) {
  StealView view(8, 2, 2);
  MultiQueuePolicy policy = Mq(3);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 0});
  const JobId near = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  const JobId far = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  policy.OnJobArrival(view, a);     // home 0
  policy.OnJobArrival(view, near);  // home 1: tier 1 from proc 0
  policy.OnJobArrival(view, far);   // home 2: tier 2 from proc 0
  view.reload_cost[{near, 0}] = 10.0;
  view.reload_cost[{far, 0}] = 0.1;
  const auto decision = policy.OnProcessorAvailable(view, 0);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].job, near);
  EXPECT_EQ(decision.assignments[0].steal_tier, 1u);
}

TEST(MultiQueueTest, VictimWithSmallestReloadCostWinsWithinATier) {
  // Both victims are tier 3 from the thief (procs 4 and 6 seen from 0): the
  // one whose working set is cheaper to rebuild at the thief is stolen.
  StealView view(8, 2, 2);
  MultiQueuePolicy policy = Mq(3);
  std::vector<JobId> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 0}));
    policy.OnJobArrival(view, jobs.back());  // one job per queue
  }
  view.jobs[jobs[4]].demand = 1;
  view.jobs[jobs[6]].demand = 1;
  view.reload_cost[{jobs[4], 0}] = 3.0;
  view.reload_cost[{jobs[6], 0}] = 1.0;
  const auto decision = policy.OnProcessorAvailable(view, 0);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].job, jobs[6]);
  EXPECT_EQ(decision.assignments[0].steal_tier, 3u);
}

TEST(MultiQueueTest, RequestTakesTheNearestFreeProcessorFromHome) {
  StealView view(8, 2, 2);
  MultiQueuePolicy policy = Mq(0);
  const JobId job = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  policy.OnJobArrival(view, job);  // home 0
  const JobId other = view.AddJob({.allocation = 2, .max_parallelism = 8});
  view.procs[0].holder = other;
  view.procs[1].holder = other;
  // Free procs: 2 (tier 2 from home) and 4 (tier 3): the nearer one wins,
  // even under the no-steal policy — push placement ignores the radius.
  for (size_t p = 5; p < 8; ++p) {
    view.procs[p].holder = other;
  }
  const auto decision = policy.OnRequest(view, job);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].proc, 2u);
  EXPECT_EQ(decision.assignments[0].reason, DecisionReason::kFreeProcessor);
}

TEST(MultiQueueTest, RequestPrefersTheHomeQueueItself) {
  StealView view(4, 2, 0);
  MultiQueuePolicy policy = Mq(0);
  const JobId job = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  policy.OnJobArrival(view, job);  // home 0, and proc 0 is free
  const auto decision = policy.OnRequest(view, job);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].proc, 0u);
  EXPECT_EQ(decision.assignments[0].reason, DecisionReason::kLocalQueue);
}

TEST(MultiQueueTest, RequestFallsBackToNearestWillingYielder) {
  StealView view(4, 2, 0);
  MultiQueuePolicy policy = Mq(0);
  const JobId job = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  policy.OnJobArrival(view, job);  // home 0
  const JobId other = view.AddJob({.allocation = 4, .max_parallelism = 8});
  for (size_t p = 0; p < 4; ++p) {
    view.procs[p].holder = other;
  }
  view.procs[3].willing = true;
  const auto decision = policy.OnRequest(view, job);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].proc, 3u);
  EXPECT_EQ(decision.assignments[0].reason, DecisionReason::kYieldHandoff);
}

TEST(MultiQueueTest, BalanceTickMovesOneJobFromLongestToShortestQueue) {
  StealView view(2, 2, 0);
  MultiQueuePolicy policy = Mq(0);
  std::vector<JobId> jobs;
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1}));
    policy.OnJobArrival(view, jobs.back());  // homes alternate 0,1,0,1
  }
  // Drain queue 1: its two jobs depart, leaving loads {2, 0}.
  for (JobId j : {jobs[1], jobs[3]}) {
    policy.OnJobDeparture(view, j);
    view.order.erase(std::find(view.order.begin(), view.order.end(), j));
    view.jobs.erase(j);
  }
  // The mover is the source job with the smallest reload cost at queue 1.
  view.reload_cost[{jobs[0], 1}] = 5.0;
  view.reload_cost[{jobs[2], 1}] = 1.0;
  const auto decision = policy.OnBalanceTick(view);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].proc, 1u);
  EXPECT_EQ(decision.assignments[0].job, jobs[2]);
  EXPECT_EQ(decision.assignments[0].reason, DecisionReason::kBalanceMigrate);
  EXPECT_EQ(policy.HomeOf(jobs[2]), 1u);
  EXPECT_EQ(policy.HomeOf(jobs[0]), 0u);
}

TEST(MultiQueueTest, BalanceTickSkipsWhenMovingCannotHelp) {
  StealView view(2, 2, 0);
  MultiQueuePolicy policy = Mq(0);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  const JobId b = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  policy.OnJobArrival(view, a);
  policy.OnJobArrival(view, b);
  // Loads {1, 1}: perfectly balanced — and a 1-0 split would only swap the
  // imbalance, so both stay put.
  EXPECT_TRUE(policy.OnBalanceTick(view).assignments.empty());
  EXPECT_EQ(policy.HomeOf(a), 0u);
  EXPECT_EQ(policy.HomeOf(b), 1u);
}

TEST(MultiQueueTest, FactoryBuildsTheFamily) {
  EXPECT_EQ(MakePolicy(PolicyKind::kMqNoSteal)->name(), "MQ-NoSteal");
  EXPECT_EQ(MakePolicy(PolicyKind::kMqSibling)->name(), "MQ-Steal-Sibling");
  EXPECT_EQ(MakePolicy(PolicyKind::kMqCluster)->name(), "MQ-Steal-Cluster");
  EXPECT_EQ(MakePolicy(PolicyKind::kMqNuma)->name(), "MQ-Steal-NUMA");
  EXPECT_TRUE(MakePolicy(PolicyKind::kMqNuma)->UsesAffinity());
}

}  // namespace
}  // namespace affsched
