#include "src/sched/rt_static.h"

#include <gtest/gtest.h>

#include <map>

#include "src/cache/partitioned.h"
#include "src/sched/factory.h"
#include "tests/sched/fake_view.h"

namespace affsched {
namespace {

// FakeSchedView plus the per-job profile facts the rt planner reads.
class RtView : public FakeSchedView {
 public:
  using FakeSchedView::FakeSchedView;

  double WorkingSetBlocks(JobId job) const override { return Lookup(working_set, job); }
  double SharedWriteRate(JobId job) const override { return Lookup(write_rate, job); }
  double DeadlineSeconds(JobId job) const override { return Lookup(deadline, job); }
  size_t NumColors() const override { return colors; }

  std::map<JobId, double> working_set;
  std::map<JobId, double> write_rate;
  std::map<JobId, double> deadline;
  size_t colors = 0;

 private:
  static double Lookup(const std::map<JobId, double>& m, JobId job) {
    auto it = m.find(job);
    return it == m.end() ? 0.0 : it->second;
  }
};

TEST(RtPolicyTest, FactoryRoundTripsBothKinds) {
  for (PolicyKind kind : RtPolicyFamily()) {
    EXPECT_TRUE(IsRtPolicy(kind));
    PolicyKind parsed;
    ASSERT_TRUE(PolicyKindFromName(PolicyKindCliName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
    EXPECT_NE(MakePolicy(kind), nullptr);
  }
  EXPECT_EQ(PolicyKindCliName(PolicyKind::kRtStaticAffinity), "rt-static-affinity");
  EXPECT_EQ(PolicyKindCliName(PolicyKind::kRtColorIso), "rt-color-iso");
  EXPECT_EQ(MakePolicy(PolicyKind::kRtStaticAffinity)->name(), "RT-Static-Affinity");
  EXPECT_EQ(MakePolicy(PolicyKind::kRtColorIso)->name(), "RT-Color-Iso");
  EXPECT_FALSE(IsRtPolicy(PolicyKind::kDynAff));
  EXPECT_FALSE(IsRtPolicy(PolicyKind::kEquipartition));
}

TEST(RtPolicyTest, ArrivalPlansEquipartitionedSpans) {
  RtView view(4);
  const JobId a = view.AddJob({.demand = 4});
  const JobId b = view.AddJob({.demand = 4});
  view.deadline[a] = 1.0;
  view.deadline[b] = 2.0;

  RtStaticPolicy policy;
  EXPECT_TRUE(policy.UsesAffinity());
  const PolicyDecision decision = policy.OnJobArrival(view, b);
  ASSERT_TRUE(decision.targets.has_value());
  EXPECT_EQ(decision.targets->at(a), 2u);
  EXPECT_EQ(decision.targets->at(b), 2u);
  // Earliest deadline seeds first: a owns {0,1}, b owns {2,3}.
  EXPECT_EQ(policy.plan().proc_owner[0], a);
  EXPECT_EQ(policy.plan().proc_owner[1], a);
  EXPECT_EQ(policy.plan().proc_owner[2], b);
  EXPECT_EQ(policy.plan().proc_owner[3], b);
}

TEST(RtPolicyTest, SpanOnlyVariantReservesAllColors) {
  RtView view(4);
  view.colors = 8;
  const JobId a = view.AddJob({.demand = 2});
  view.deadline[a] = 1.0;
  RtStaticPolicy policy;  // rt-static-affinity: no color isolation
  policy.OnJobArrival(view, a);
  EXPECT_EQ(policy.ColorMask(view, a), ~0ull);
}

TEST(RtPolicyTest, ColorIsoCarvesDisjointSlices) {
  RtView view(4);
  view.colors = 8;
  const JobId a = view.AddJob({.demand = 2});
  const JobId b = view.AddJob({.demand = 2});
  view.deadline[a] = 1.0;
  view.deadline[b] = 2.0;
  view.working_set[a] = 3000.0;
  view.working_set[b] = 1000.0;

  RtStaticPolicy policy({.isolate_colors = true});
  policy.OnJobArrival(view, b);
  const uint64_t mask_a = policy.ColorMask(view, a);
  const uint64_t mask_b = policy.ColorMask(view, b);
  EXPECT_NE(mask_a, 0ull);
  EXPECT_NE(mask_b, 0ull);
  EXPECT_EQ(mask_a & mask_b, 0ull);
  EXPECT_EQ((mask_a | mask_b) & ~FullColorMask(8), 0ull);
  // A job the plan does not know falls back to every color.
  EXPECT_EQ(policy.ColorMask(view, 99), ~0ull);
}

TEST(RtPolicyTest, RequestGrantsOnlyInsideOwnSpan) {
  RtView view(4);
  const JobId a = view.AddJob({.demand = 2});
  const JobId b = view.AddJob({.demand = 2});
  view.deadline[a] = 1.0;
  view.deadline[b] = 2.0;
  RtStaticPolicy policy;
  policy.OnJobArrival(view, b);  // plan: a -> {0,1}, b -> {2,3}

  // All processors free: a is offered one of its own, never one of b's.
  const PolicyDecision grant = policy.OnRequest(view, a);
  ASSERT_EQ(grant.assignments.size(), 1u);
  EXPECT_EQ(grant.assignments[0].job, a);
  EXPECT_LT(grant.assignments[0].proc, 2u);

  // With its span fully occupied by itself, a gets nothing more even though
  // b's processors sit free.
  view.procs[0].holder = a;
  view.procs[1].holder = a;
  EXPECT_TRUE(policy.OnRequest(view, a).assignments.empty());
}

TEST(RtPolicyTest, AvailableProcessorReturnsToPlannedOwner) {
  RtView view(4);
  const JobId a = view.AddJob({.demand = 2});
  const JobId b = view.AddJob({.demand = 2});
  view.deadline[a] = 1.0;
  view.deadline[b] = 2.0;
  RtStaticPolicy policy;
  policy.OnJobArrival(view, b);

  // Processor 2 freed: it belongs to b's span and b wants it.
  const PolicyDecision give = policy.OnProcessorAvailable(view, 2);
  ASSERT_EQ(give.assignments.size(), 1u);
  EXPECT_EQ(give.assignments[0].job, b);
  EXPECT_EQ(give.assignments[0].proc, 2u);

  // Without demand the processor stays put rather than migrating.
  view.jobs[b].demand = 0;
  EXPECT_TRUE(policy.OnProcessorAvailable(view, 2).assignments.empty());
}

TEST(RtPolicyTest, DepartureReplansForTheSurvivors) {
  RtView view(4);
  const JobId a = view.AddJob({.demand = 4});
  const JobId b = view.AddJob({.demand = 4});
  view.deadline[a] = 1.0;
  view.deadline[b] = 2.0;
  RtStaticPolicy policy;
  policy.OnJobArrival(view, b);
  ASSERT_EQ(policy.plan().share.at(a), 2u);

  // b departs; the survivor's span widens to the whole machine.
  view.order = {a};
  view.jobs.erase(b);
  const PolicyDecision decision = policy.OnJobDeparture(view, b);
  ASSERT_TRUE(decision.targets.has_value());
  EXPECT_EQ(decision.targets->at(a), 4u);
  for (size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(policy.plan().proc_owner[p], a) << p;
  }
}

}  // namespace
}  // namespace affsched
