#include "src/sched/dynamic.h"

#include <gtest/gtest.h>

#include "src/sched/factory.h"
#include "tests/sched/fake_view.h"

namespace affsched {
namespace {

TEST(DynamicOptionsTest, NamesMatchThePaper) {
  EXPECT_EQ(DynamicOptions{}.PolicyName(), "Dynamic");
  EXPECT_EQ((DynamicOptions{.use_affinity = true}).PolicyName(), "Dyn-Aff");
  EXPECT_EQ((DynamicOptions{.use_affinity = true, .enforce_priority = false}).PolicyName(),
            "Dyn-Aff-NoPri");
  EXPECT_EQ((DynamicOptions{.use_affinity = true, .yield_delay = Milliseconds(20)}).PolicyName(),
            "Dyn-Aff-Delay");
}

TEST(DynamicPolicyTest, RuleD1TakesFreeProcessorFirst) {
  FakeSchedView view(4);
  const JobId a = view.AddJob({.allocation = 1, .max_parallelism = 8, .demand = 2});
  view.procs[0].holder = a;
  // Processors 1..3 free.
  DynamicPolicy policy({});
  const auto decision = policy.OnRequest(view, a);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].proc, 1u);
  EXPECT_EQ(decision.assignments[0].job, a);
}

TEST(DynamicPolicyTest, RuleD2TakesWillingToYield) {
  FakeSchedView view(2);
  const JobId a = view.AddJob({.allocation = 1, .max_parallelism = 8, .demand = 1});
  const JobId b = view.AddJob({.allocation = 1, .max_parallelism = 8});
  view.procs[0].holder = a;
  view.procs[1].holder = b;
  view.procs[1].willing = true;
  DynamicPolicy policy({});
  const auto decision = policy.OnRequest(view, a);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].proc, 1u);
}

TEST(DynamicPolicyTest, RuleD3PreemptsLargestJobWhenImbalanced) {
  FakeSchedView view(4);
  const JobId a = view.AddJob({.allocation = 1, .max_parallelism = 8, .demand = 1});
  const JobId b = view.AddJob({.allocation = 3, .max_parallelism = 8});
  view.procs[0].holder = a;
  view.procs[1].holder = b;
  view.procs[2].holder = b;
  view.procs[3].holder = b;
  DynamicPolicy policy({});
  const auto decision = policy.OnRequest(view, a);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(view.ProcessorJob(decision.assignments[0].proc), b);
  EXPECT_EQ(decision.assignments[0].job, a);
}

TEST(DynamicPolicyTest, RuleD3DoesNotThrashEqualAllocations) {
  FakeSchedView view(2);
  const JobId a = view.AddJob({.allocation = 1, .max_parallelism = 8, .demand = 1});
  const JobId b = view.AddJob({.allocation = 1, .max_parallelism = 8});
  view.procs[0].holder = a;
  view.procs[1].holder = b;
  DynamicPolicy policy({});
  EXPECT_TRUE(policy.OnRequest(view, a).assignments.empty());
}

TEST(DynamicPolicyTest, RuleD3SpendsPriorityCredit) {
  // A one-processor difference is preemptible when the requester has banked
  // credit (higher priority).
  FakeSchedView view(3);
  const JobId a = view.AddJob({.allocation = 1, .max_parallelism = 8, .demand = 1,
                               .priority = 5.0});
  const JobId b = view.AddJob({.allocation = 2, .max_parallelism = 8, .priority = -5.0});
  view.procs[0].holder = a;
  view.procs[1].holder = b;
  view.procs[2].holder = b;
  DynamicPolicy policy({});
  const auto decision = policy.OnRequest(view, a);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(view.ProcessorJob(decision.assignments[0].proc), b);
}

TEST(DynamicPolicyTest, NoPriDisablesD3Entirely) {
  FakeSchedView view(4);
  const JobId a = view.AddJob({.allocation = 1, .max_parallelism = 8, .demand = 1});
  const JobId b = view.AddJob({.allocation = 3, .max_parallelism = 8});
  view.procs[0].holder = a;
  for (size_t p = 1; p < 4; ++p) {
    view.procs[p].holder = b;
  }
  DynamicPolicy policy({.use_affinity = true, .enforce_priority = false});
  EXPECT_TRUE(policy.OnRequest(view, a).assignments.empty());
}

TEST(DynamicPolicyTest, AvailableProcessorGoesToHighestPriorityRequester) {
  FakeSchedView view(2);
  const JobId low = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1,
                                 .priority = -1.0});
  const JobId high = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1,
                                  .priority = 1.0});
  DynamicPolicy policy({});
  const auto decision = policy.OnProcessorAvailable(view, 0);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].job, high);
  (void)low;
}

TEST(DynamicPolicyTest, YieldingProcessorNotReturnedToYielder) {
  FakeSchedView view(2);
  const JobId a = view.AddJob({.allocation = 1, .max_parallelism = 8, .demand = 1});
  view.procs[0].holder = a;
  view.procs[0].willing = true;
  DynamicPolicy policy({});
  EXPECT_TRUE(policy.OnProcessorAvailable(view, 0).assignments.empty());
}

TEST(DynAffTest, RuleA1ReunitesLastTask) {
  FakeSchedView view(2);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  view.procs[0].last_task = 42;
  view.tasks[42] = {.job = a, .runnable = true};
  DynamicPolicy policy({.use_affinity = true});
  const auto decision = policy.OnProcessorAvailable(view, 0);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].job, a);
  EXPECT_EQ(decision.assignments[0].prefer_task, 42u);
}

TEST(DynAffTest, RuleA1YieldsToHigherPriorityRequester) {
  FakeSchedView view(2);
  const JobId affine = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1,
                                    .priority = -1.0});
  const JobId urgent = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1,
                                    .priority = 1.0});
  view.procs[0].last_task = 42;
  view.tasks[42] = {.job = affine, .runnable = true};
  DynamicPolicy policy({.use_affinity = true});
  const auto decision = policy.OnProcessorAvailable(view, 0);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].job, urgent);
}

TEST(DynAffNoPriTest, RuleA1IgnoresPriorities) {
  FakeSchedView view(2);
  const JobId affine = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1,
                                    .priority = -10.0});
  view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1, .priority = 10.0});
  view.procs[0].last_task = 42;
  view.tasks[42] = {.job = affine, .runnable = true};
  DynamicPolicy policy({.use_affinity = true, .enforce_priority = false});
  const auto decision = policy.OnProcessorAvailable(view, 0);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].job, affine);
}

TEST(DynAffTest, RuleA2HonoursDesiredProcessorWhenAvailable) {
  FakeSchedView view(3);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1,
                               .desired = 2});
  const JobId b = view.AddJob({.allocation = 1, .max_parallelism = 8});
  view.procs[2].holder = b;
  view.procs[2].willing = true;
  DynamicPolicy policy({.use_affinity = true});
  const auto decision = policy.OnRequest(view, a);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].proc, 2u);
}

TEST(DynAffTest, RuleA2NeverPreemptsActiveTaskForAffinity) {
  // "Such preemption is counterproductive, since an active task presumably
  // has greater affinity for the processor than the task we are attempting
  // to schedule."
  FakeSchedView view(3);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1,
                               .desired = 2});
  const JobId b = view.AddJob({.allocation = 1, .max_parallelism = 8});
  view.procs[2].holder = b;  // actively used, not willing
  DynamicPolicy policy({.use_affinity = true});
  const auto decision = policy.OnRequest(view, a);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_NE(decision.assignments[0].proc, 2u);  // falls back to a free one
}

TEST(DynAffTest, PrefersFreeProcessorWithOwnHistory) {
  FakeSchedView view(4);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  view.procs[2].last_task = 7;
  view.tasks[7] = {.job = a, .runnable = false};
  DynamicPolicy policy({.use_affinity = true});
  const auto decision = policy.OnRequest(view, a);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].proc, 2u);
}

TEST(DynamicPolicyTest, NoDemandMeansNoAssignment) {
  FakeSchedView view(2);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 0});
  DynamicPolicy policy({});
  EXPECT_TRUE(policy.OnRequest(view, a).assignments.empty());
}

TEST(DynamicPolicyTest, CreditSpendRequiresVictimAboveFairShare) {
  // Two jobs, fair share = 1 each on a 2-processor machine: even a large
  // priority gap must not let one raid the other below its fair share.
  FakeSchedView view(2);
  const JobId a = view.AddJob({.allocation = 1, .max_parallelism = 8, .demand = 1,
                               .priority = 100.0});
  const JobId b = view.AddJob({.allocation = 1, .max_parallelism = 8, .priority = -100.0});
  view.procs[0].holder = a;
  view.procs[1].holder = b;
  DynamicPolicy policy({});
  EXPECT_TRUE(policy.OnRequest(view, a).assignments.empty());
}

TEST(DynamicPolicyTest, CreditSpendRequiresPositiveCredit) {
  // Victim above fair share, requester with higher but non-positive priority:
  // no raid (only genuinely banked credit spends).
  FakeSchedView view(4);
  const JobId a = view.AddJob({.allocation = 2, .max_parallelism = 8, .demand = 1,
                               .priority = -1.0});
  const JobId b = view.AddJob({.allocation = 2, .max_parallelism = 8, .priority = -10.0});
  view.procs[0].holder = a;
  view.procs[1].holder = a;
  view.procs[2].holder = b;
  view.procs[3].holder = b;
  DynamicPolicy policy({});
  EXPECT_TRUE(policy.OnRequest(view, a).assignments.empty());
}

TEST(DynamicPolicyTest, CreditSpendTakesVictimAboveFairShare) {
  // 3 jobs on 9 procs (fair share 3): the requester with banked credit may
  // push the 4-processor victim down toward its fair share.
  FakeSchedView view(9);
  const JobId a = view.AddJob({.allocation = 3, .max_parallelism = 16, .demand = 4,
                               .priority = 50.0});
  const JobId b = view.AddJob({.allocation = 4, .max_parallelism = 16, .priority = -20.0});
  view.AddJob({.allocation = 2, .max_parallelism = 16, .priority = 0.0});
  for (size_t p = 0; p < 3; ++p) {
    view.procs[p].holder = a;
  }
  for (size_t p = 3; p < 7; ++p) {
    view.procs[p].holder = b;
  }
  for (size_t p = 7; p < 9; ++p) {
    view.procs[p].holder = 2;
  }
  DynamicPolicy policy({});
  const auto decision = policy.OnRequest(view, a);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(view.ProcessorJob(decision.assignments[0].proc), b);
}

TEST(DynamicPolicyTest, PreemptionSkipsPendingProcessors) {
  // A victim processor already committed to move must not be picked again.
  class PendingView : public FakeSchedView {
   public:
    using FakeSchedView::FakeSchedView;
    bool ReassignmentPending(size_t proc) const override { return proc == 3; }
  };
  PendingView view(4);
  const JobId a = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 2});
  const JobId b = view.AddJob({.allocation = 4, .max_parallelism = 8});
  for (size_t p = 0; p < 4; ++p) {
    view.procs[p].holder = b;
  }
  DynamicPolicy policy({});
  const auto decision = policy.OnRequest(view, a);
  ASSERT_EQ(decision.assignments.size(), 1u);
  // Highest-numbered non-pending processor: 2, not 3.
  EXPECT_EQ(decision.assignments[0].proc, 2u);
  (void)a;
}

TEST(FactoryTest, MakesAllKinds) {
  for (PolicyKind kind : {PolicyKind::kEquipartition, PolicyKind::kDynamic, PolicyKind::kDynAff,
                          PolicyKind::kDynAffNoPri, PolicyKind::kDynAffDelay,
                          PolicyKind::kTimeShare, PolicyKind::kTimeShareAff}) {
    EXPECT_NE(MakePolicy(kind), nullptr);
  }
  EXPECT_EQ(PolicyKindName(PolicyKind::kDynAffDelay), "Dyn-Aff-Delay");
}

TEST(FactoryTest, DelayVariantHasYieldDelay) {
  EXPECT_EQ(MakePolicy(PolicyKind::kDynAffDelay)->YieldDelay(), kDefaultYieldDelay);
  EXPECT_EQ(MakePolicy(PolicyKind::kDynamic)->YieldDelay(), 0);
}

TEST(FactoryTest, TimeShareHasQuantum) {
  EXPECT_EQ(MakePolicy(PolicyKind::kTimeShare)->Quantum(), Milliseconds(100));
  EXPECT_EQ(MakePolicy(PolicyKind::kDynamic)->Quantum(), 0);
}

}  // namespace
}  // namespace affsched
