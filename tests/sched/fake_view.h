// A hand-configurable SchedView for unit-testing policies in isolation.

#ifndef TESTS_SCHED_FAKE_VIEW_H_
#define TESTS_SCHED_FAKE_VIEW_H_

#include <map>
#include <vector>

#include "src/sched/policy.h"

namespace affsched {

class FakeSchedView : public SchedView {
 public:
  struct JobInfo {
    size_t allocation = 0;
    size_t max_parallelism = 16;
    size_t demand = 0;
    double priority = 0.0;
    size_t desired = kNoProcessor;
  };

  struct ProcInfo {
    JobId holder = kInvalidJobId;
    bool willing = false;
    CacheOwner last_task = kNoOwner;
  };

  struct TaskInfo {
    JobId job = kInvalidJobId;
    bool runnable = false;
  };

  explicit FakeSchedView(size_t num_procs) : procs(num_procs) {}

  JobId AddJob(JobInfo info) {
    const JobId id = static_cast<JobId>(order.size());
    order.push_back(id);
    jobs[id] = info;
    return id;
  }

  size_t NumProcessors() const override { return procs.size(); }
  std::vector<JobId> ActiveJobs() const override { return order; }
  size_t Allocation(JobId job) const override { return jobs.at(job).allocation; }
  size_t EffectiveAllocation(JobId job) const override { return jobs.at(job).allocation; }
  size_t MaxParallelism(JobId job) const override { return jobs.at(job).max_parallelism; }
  size_t PendingDemand(JobId job) const override { return jobs.at(job).demand; }
  JobId ProcessorJob(size_t proc) const override { return procs.at(proc).holder; }
  bool WillingToYield(size_t proc) const override { return procs.at(proc).willing; }
  bool ReassignmentPending(size_t /*proc*/) const override { return false; }
  CacheOwner LastTaskOn(size_t proc) const override { return procs.at(proc).last_task; }
  std::vector<CacheOwner> RecentTasksOn(size_t proc) const override {
    if (procs.at(proc).last_task == kNoOwner) {
      return {};
    }
    return {procs.at(proc).last_task};
  }
  bool TaskRunnable(CacheOwner task) const override {
    auto it = tasks.find(task);
    return it != tasks.end() && it->second.runnable;
  }
  JobId TaskJob(CacheOwner task) const override {
    auto it = tasks.find(task);
    return it == tasks.end() ? kInvalidJobId : it->second.job;
  }
  size_t DesiredProcessor(JobId job) const override { return jobs.at(job).desired; }
  double Priority(JobId job) const override { return jobs.at(job).priority; }

  std::vector<JobId> order;
  std::map<JobId, JobInfo> jobs;
  std::vector<ProcInfo> procs;
  std::map<CacheOwner, TaskInfo> tasks;
};

}  // namespace affsched

#endif  // TESTS_SCHED_FAKE_VIEW_H_
