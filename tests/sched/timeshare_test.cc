#include "src/sched/timeshare.h"

#include <gtest/gtest.h>

#include "tests/sched/fake_view.h"

namespace affsched {
namespace {

TEST(TimeShareTest, QuantumMatchesDynix) {
  TimeSharePolicy policy(TimeShareOptions{});
  EXPECT_EQ(policy.Quantum(), Milliseconds(100));
}

TEST(TimeShareTest, QuantumExpiryRotatesToDemandingJob) {
  FakeSchedView view(2);
  const JobId a = view.AddJob({.allocation = 2, .max_parallelism = 8});
  const JobId b = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 2});
  view.procs[0].holder = a;
  view.procs[1].holder = a;
  TimeSharePolicy policy(TimeShareOptions{});
  const auto decision = policy.OnQuantumExpiry(view, 0);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].job, b);
}

TEST(TimeShareTest, NoRotationWithSingleJob) {
  FakeSchedView view(2);
  const JobId a = view.AddJob({.allocation = 2, .max_parallelism = 8});
  view.procs[0].holder = a;
  TimeSharePolicy policy(TimeShareOptions{});
  EXPECT_TRUE(policy.OnQuantumExpiry(view, 0).assignments.empty());
}

TEST(TimeShareTest, NoRotationWhenNobodyElseWants) {
  FakeSchedView view(2);
  const JobId a = view.AddJob({.allocation = 2, .max_parallelism = 8});
  view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 0});
  view.procs[0].holder = a;
  TimeSharePolicy policy(TimeShareOptions{});
  EXPECT_TRUE(policy.OnQuantumExpiry(view, 0).assignments.empty());
}

TEST(TimeShareTest, RoundRobinCyclesThroughJobs) {
  FakeSchedView view(1);
  const JobId a = view.AddJob({.allocation = 1, .max_parallelism = 8, .demand = 1});
  const JobId b = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  const JobId c = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  view.procs[0].holder = a;
  TimeSharePolicy policy(TimeShareOptions{});
  auto d1 = policy.OnQuantumExpiry(view, 0);
  ASSERT_EQ(d1.assignments.size(), 1u);
  const JobId first = d1.assignments[0].job;
  view.procs[0].holder = first;
  auto d2 = policy.OnQuantumExpiry(view, 0);
  ASSERT_EQ(d2.assignments.size(), 1u);
  EXPECT_NE(d2.assignments[0].job, first);
  EXPECT_TRUE(d2.assignments[0].job == b || d2.assignments[0].job == c ||
              d2.assignments[0].job == a);
}

TEST(TimeShareAffTest, RotatesLikePlainTimeSharing) {
  // Quantum-driven fairness is preserved: the affinity variant still rotates.
  FakeSchedView view(1);
  const JobId a = view.AddJob({.allocation = 1, .max_parallelism = 8, .demand = 1});
  const JobId b = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  view.procs[0].holder = a;
  TimeSharePolicy policy(TimeShareOptions{.use_affinity = true});
  const auto decision = policy.OnQuantumExpiry(view, 0);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].job, b);
}

TEST(TimeShareAffTest, RotationCarriesAffineTaskHint) {
  FakeSchedView view(1);
  const JobId a = view.AddJob({.allocation = 1, .max_parallelism = 8, .demand = 1});
  const JobId b = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  view.procs[0].holder = a;
  view.procs[0].last_task = 9;
  view.tasks[9] = {.job = b, .runnable = true};
  TimeSharePolicy policy(TimeShareOptions{.use_affinity = true});
  const auto decision = policy.OnQuantumExpiry(view, 0);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].job, b);
  EXPECT_EQ(decision.assignments[0].prefer_task, 9u);
}

TEST(TimeShareTest, RequestsOnlyClaimFreeProcessors) {
  FakeSchedView view(2);
  const JobId a = view.AddJob({.allocation = 1, .max_parallelism = 8, .demand = 1});
  const JobId b = view.AddJob({.allocation = 1, .max_parallelism = 8});
  view.procs[0].holder = a;
  view.procs[1].holder = b;
  TimeSharePolicy policy(TimeShareOptions{});
  EXPECT_TRUE(policy.OnRequest(view, a).assignments.empty());
  view.procs[1].holder = kInvalidJobId;
  const auto decision = policy.OnRequest(view, a);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].proc, 1u);
}

TEST(TimeShareTest, AvailableProcessorGoesToLargestDemand) {
  FakeSchedView view(2);
  view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 1});
  const JobId big = view.AddJob({.allocation = 0, .max_parallelism = 8, .demand = 5});
  TimeSharePolicy policy(TimeShareOptions{});
  const auto decision = policy.OnProcessorAvailable(view, 0);
  ASSERT_EQ(decision.assignments.size(), 1u);
  EXPECT_EQ(decision.assignments[0].job, big);
}

}  // namespace
}  // namespace affsched
