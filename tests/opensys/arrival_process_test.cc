#include "src/opensys/arrival_process.h"

#include <gtest/gtest.h>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/sched/factory.h"

namespace affsched {
namespace {

TEST(ArrivalsTest, GeneratesRequestedCountSorted) {
  const auto plan = PoissonArrivals(50, Seconds(2), {1.0, 1.0, 1.0}, 9);
  ASSERT_EQ(plan.size(), 50u);
  for (size_t i = 1; i < plan.size(); ++i) {
    EXPECT_GE(plan[i].when, plan[i - 1].when);
  }
}

TEST(ArrivalsTest, MeanInterarrivalApproximatelyMatches) {
  const auto plan = PoissonArrivals(2000, Seconds(3), {1.0}, 10);
  const double mean = ToSeconds(plan.back().when) / static_cast<double>(plan.size());
  EXPECT_NEAR(mean, 3.0, 0.25);
}

TEST(ArrivalsTest, WeightsSteerAppMix) {
  const auto plan = PoissonArrivals(3000, Seconds(1), {8.0, 1.0, 1.0}, 11);
  size_t counts[3] = {0, 0, 0};
  for (const auto& entry : plan) {
    ASSERT_LT(entry.app_index, 3u);
    ++counts[entry.app_index];
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / 3000.0, 0.8, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 3000.0, 0.1, 0.03);
}

TEST(ArrivalsTest, DeterministicPerSeed) {
  const auto a = PoissonArrivals(20, Seconds(1), {1.0, 2.0}, 12);
  const auto b = PoissonArrivals(20, Seconds(1), {1.0, 2.0}, 12);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].when, b[i].when);
    EXPECT_EQ(a[i].app_index, b[i].app_index);
  }
}

TEST(ArrivalsTest, PlanDrivesEngineToCompletion) {
  MachineConfig machine;
  machine.num_processors = 4;
  const std::vector<AppProfile> apps = {MakeSmallMvaProfile(), MakeSmallGravityProfile()};
  const auto plan = PoissonArrivals(4, Seconds(1), {1.0, 1.0}, 13);
  Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 13);
  for (const auto& entry : plan) {
    engine.SubmitJob(apps[entry.app_index], entry.when);
  }
  const SimTime end = engine.Run();
  EXPECT_GT(end, plan.back().when);
  for (JobId id = 0; id < engine.job_count(); ++id) {
    EXPECT_GE(engine.job_stats(id).completion, 0);
  }
}

TEST(ArrivalsTest, HorizonBoundedGenerationStopsBeforeTEnd) {
  const SimTime t_end = Seconds(100);
  const auto plan = PoissonArrivalsUntil(t_end, Seconds(2), {1.0}, 14);
  ASSERT_FALSE(plan.empty());
  for (const auto& entry : plan) {
    EXPECT_LT(entry.when, t_end);
  }
  // ~50 expected; a wildly different count would mean the horizon is ignored.
  EXPECT_GT(plan.size(), 25u);
  EXPECT_LT(plan.size(), 90u);
}

TEST(ArrivalsTest, CountAndHorizonBoundsCompose) {
  PoissonProcess process(Seconds(1), {1.0});
  const auto by_count = GenerateArrivals(process, 15, /*max_count=*/10, /*t_end=*/0);
  EXPECT_EQ(by_count.size(), 10u);
  const auto both = GenerateArrivals(process, 15, /*max_count=*/10, Seconds(3));
  EXPECT_LE(both.size(), 10u);
  for (const auto& entry : both) {
    EXPECT_LT(entry.when, Seconds(3));
  }
}

TEST(ArrivalsTest, ResetReplaysIdenticalStream) {
  PoissonProcess process(Seconds(1), {1.0, 1.0});
  const auto a = GenerateArrivals(process, 77, 25, 0);
  const auto b = GenerateArrivals(process, 77, 25, 0);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].when, b[i].when);
    EXPECT_EQ(a[i].app_index, b[i].app_index);
  }
}

TEST(OnOffTest, LongRunRateMatchesConfiguredMean) {
  // On-phase rate 4x the target, on fraction 1/4: the long-run mean
  // inter-arrival should approach 2s.
  OnOffProcess::Params params;
  params.on_interarrival = Seconds(0.5);
  params.mean_on = Seconds(6);
  params.mean_off = Seconds(18);
  OnOffProcess process(params, {1.0});
  const auto plan = GenerateArrivals(process, 21, 8000, 0);
  const double mean = ToSeconds(plan.back().when) / static_cast<double>(plan.size());
  EXPECT_NEAR(mean, 2.0, 0.3);
}

TEST(OnOffTest, BurstierThanPoissonAtSameRate) {
  // Squared coefficient of variation of inter-arrival times: 1 for Poisson,
  // substantially above 1 for the on/off process.
  OnOffProcess::Params params;
  params.on_interarrival = Seconds(0.5);
  params.mean_on = Seconds(6);
  params.mean_off = Seconds(18);
  OnOffProcess process(params, {1.0});
  const auto plan = GenerateArrivals(process, 22, 6000, 0);
  double sum = 0.0;
  double sumsq = 0.0;
  SimTime prev = 0;
  for (const auto& entry : plan) {
    const double gap = ToSeconds(entry.when - prev);
    prev = entry.when;
    sum += gap;
    sumsq += gap * gap;
  }
  const double n = static_cast<double>(plan.size());
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_GT(var / (mean * mean), 1.5);
}

TEST(TraceTest, CsvParsesSkipsCommentsAndHeader) {
  const std::string csv =
      "# recorded arrivals\n"
      "t_s,app\n"
      "0.5, 0\n"
      "1.25,2\n"
      "\n"
      "3.0,1\n";
  std::vector<ArrivalPlanEntry> entries;
  std::string error;
  ASSERT_TRUE(ParseArrivalTraceCsv(csv, &entries, &error)) << error;
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].when, Seconds(0.5));
  EXPECT_EQ(entries[0].app_index, 0u);
  EXPECT_EQ(entries[1].app_index, 2u);
  EXPECT_EQ(entries[2].when, Seconds(3.0));
}

TEST(TraceTest, CsvRejectsOutOfOrderTimes) {
  std::vector<ArrivalPlanEntry> entries;
  std::string error;
  EXPECT_FALSE(ParseArrivalTraceCsv("1.0,0\n0.5,0\n", &entries, &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(TraceTest, CsvRejectsMalformedRow) {
  std::vector<ArrivalPlanEntry> entries;
  std::string error;
  EXPECT_FALSE(ParseArrivalTraceCsv("0.5,0\nnot-a-number,1\n", &entries, &error));
  EXPECT_FALSE(ParseArrivalTraceCsv("0.5,0\n1.0,1.5\n", &entries, &error));
  EXPECT_FALSE(ParseArrivalTraceCsv("-1.0,0\n", &entries, &error));
}

TEST(TraceTest, JsonlParses) {
  const std::string jsonl =
      "{\"t_s\":0.5,\"app\":0}\n"
      "{\"app\": 1, \"t_s\": 2.25}\n";
  std::vector<ArrivalPlanEntry> entries;
  std::string error;
  ASSERT_TRUE(ParseArrivalTraceJsonl(jsonl, &entries, &error)) << error;
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].when, Seconds(0.5));
  EXPECT_EQ(entries[1].when, Seconds(2.25));
  EXPECT_EQ(entries[1].app_index, 1u);
}

TEST(TraceTest, JsonlRejectsMissingField) {
  std::vector<ArrivalPlanEntry> entries;
  std::string error;
  EXPECT_FALSE(ParseArrivalTraceJsonl("{\"t_s\":0.5}\n", &entries, &error));
  EXPECT_NE(error.find("app"), std::string::npos);
}

TEST(TraceTest, TraceProcessReplaysAndExhausts) {
  std::vector<ArrivalPlanEntry> entries = {{0, Seconds(1)}, {1, Seconds(2)}};
  TraceArrivalProcess process(entries);
  const auto plan = GenerateArrivals(process, 0, 0, 0);  // finite: no bound needed
  ASSERT_EQ(plan.size(), 2u);
  ArrivalPlanEntry entry;
  process.Reset(0);
  EXPECT_TRUE(process.Next(&entry));
  EXPECT_TRUE(process.Next(&entry));
  EXPECT_FALSE(process.Next(&entry));
}

TEST(ArrivalsDeathTest, EmptyWeightsAbort) {
  EXPECT_DEATH(PoissonArrivals(1, Seconds(1), {}, 1), "empty");
}

TEST(ArrivalsDeathTest, NegativeWeightAborts) {
  EXPECT_DEATH(PoissonArrivals(1, Seconds(1), {1.0, -0.5}, 1), "negative");
}

TEST(ArrivalsDeathTest, AllZeroWeightsAbort) {
  EXPECT_DEATH(PoissonArrivals(1, Seconds(1), {0.0, 0.0}, 1), "zero");
}

TEST(ArrivalsDeathTest, UnboundedGenerationAborts) {
  PoissonProcess process(Seconds(1), {1.0});
  EXPECT_DEATH(GenerateArrivals(process, 1, 0, 0), "unbounded");
}

}  // namespace
}  // namespace affsched
