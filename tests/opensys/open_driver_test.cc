#include "src/opensys/driver.h"

#include <gtest/gtest.h>

#include "src/apps/apps.h"
#include "src/telemetry/metrics.h"

namespace affsched {
namespace {

std::vector<AppProfile> SmallApps() {
  return {MakeSmallMvaProfile(), MakeSmallGravityProfile()};
}

MachineConfig SmallMachine() {
  MachineConfig machine;
  machine.num_processors = 4;
  return machine;
}

// A burst of near-simultaneous arrivals, so MPL caps actually bite.
std::vector<ArrivalPlanEntry> BurstPlan(size_t count) {
  std::vector<ArrivalPlanEntry> plan;
  for (size_t i = 0; i < count; ++i) {
    plan.push_back(ArrivalPlanEntry{i % 2, Seconds(0.01 * static_cast<double>(i))});
  }
  return plan;
}

TEST(OpenDriverTest, UnboundedAdmissionRunsEveryArrival) {
  UnboundedAdmission admission;
  OpenSystemDriver driver(SmallMachine(), PolicyKind::kDynAff, SmallApps(), BurstPlan(6),
                          &admission, 42);
  const OpenSystemResult result = driver.Run();
  EXPECT_EQ(result.arrivals, 6u);
  EXPECT_EQ(result.admitted, 6u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.completed, 6u);
  EXPECT_DOUBLE_EQ(result.reject_rate, 0.0);
  // No admission queue: sojourn is pure in-service response.
  for (const OpenJobRecord& rec : result.jobs) {
    EXPECT_FALSE(rec.rejected);
    EXPECT_DOUBLE_EQ(rec.queue_wait_s, 0.0);
    EXPECT_EQ(rec.admitted, rec.arrival);
    EXPECT_GT(rec.sojourn_s, 0.0);
  }
  EXPECT_DOUBLE_EQ(result.mean_queue_len, 0.0);
  EXPECT_TRUE(result.littles.ok) << "rel_err=" << result.littles.relative_error;
  EXPECT_GT(result.mean_sojourn_s, 0.0);
  EXPECT_GE(result.p99_sojourn_s, result.p50_sojourn_s);
  EXPECT_GE(result.max_sojourn_s, result.p99_sojourn_s);
}

TEST(OpenDriverTest, MplCapQueuesAndAccountsWaitSeparately) {
  FixedMplAdmission admission(1);
  OpenSystemDriver driver(SmallMachine(), PolicyKind::kDynAff, SmallApps(), BurstPlan(4),
                          &admission, 42);
  const OpenSystemResult result = driver.Run();
  EXPECT_EQ(result.admitted, 4u);
  EXPECT_EQ(result.rejected, 0u);
  // The first job enters immediately; later ones must have queued behind it.
  EXPECT_DOUBLE_EQ(result.jobs[0].queue_wait_s, 0.0);
  EXPECT_GT(result.jobs[3].queue_wait_s, 0.0);
  EXPECT_GT(result.mean_queue_len, 0.0);
  EXPECT_GT(result.mean_queue_wait_s, 0.0);
  for (const OpenJobRecord& rec : result.jobs) {
    EXPECT_GE(rec.admitted, rec.arrival);
    // Sojourn decomposes into queue wait plus in-service response.
    const double in_service_s = ToSeconds(rec.completion - rec.admitted);
    EXPECT_NEAR(rec.sojourn_s, rec.queue_wait_s + in_service_s, 1e-9);
  }
  // Serialized through MPL 1: completions never overlap admissions.
  EXPECT_TRUE(result.littles.ok) << "rel_err=" << result.littles.relative_error;
}

TEST(OpenDriverTest, LoadSheddingRejectsExcessArrivals) {
  LoadSheddingAdmission admission(1, 0);
  OpenSystemDriver driver(SmallMachine(), PolicyKind::kDynAff, SmallApps(), BurstPlan(5),
                          &admission, 42);
  const OpenSystemResult result = driver.Run();
  EXPECT_GT(result.rejected, 0u);
  EXPECT_EQ(result.admitted + result.rejected, 5u);
  EXPECT_EQ(result.completed, result.admitted);
  EXPECT_GT(result.reject_rate, 0.0);
  for (const OpenJobRecord& rec : result.jobs) {
    if (rec.rejected) {
      EXPECT_EQ(rec.completion, -1);
      EXPECT_EQ(rec.admitted, -1);
    }
  }
  // Rejected jobs sit on neither side of L = lambda * W.
  EXPECT_TRUE(result.littles.ok) << "rel_err=" << result.littles.relative_error;
}

TEST(OpenDriverTest, DeterministicForAGivenSeed) {
  auto run = [] {
    UnboundedAdmission admission;
    OpenSystemDriver driver(SmallMachine(), PolicyKind::kDynamic, SmallApps(), BurstPlan(5),
                            &admission, 7);
    return driver.Run();
  };
  const OpenSystemResult a = run();
  const OpenSystemResult b = run();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].completion, b.jobs[i].completion);
    EXPECT_DOUBLE_EQ(a.jobs[i].sojourn_s, b.jobs[i].sojourn_s);
  }
  EXPECT_DOUBLE_EQ(a.mean_sojourn_s, b.mean_sojourn_s);
  EXPECT_DOUBLE_EQ(a.p95_sojourn_s, b.p95_sojourn_s);
}

TEST(OpenDriverTest, WarmupFractionTrimsReportedStatsOnly) {
  OpenSystemOptions options;
  options.warmup_fraction = 0.5;
  UnboundedAdmission admission;
  OpenSystemDriver driver(SmallMachine(), PolicyKind::kDynAff, SmallApps(), BurstPlan(6),
                          &admission, 42, options);
  const OpenSystemResult result = driver.Run();
  EXPECT_EQ(result.warmup_trimmed, 3u);
  // The Little's-law check still covers the full window.
  EXPECT_TRUE(result.littles.ok);
}

TEST(OpenDriverTest, SamplerGainsOpenSystemProbes) {
  Sampler sampler(Milliseconds(5));
  FixedMplAdmission admission(1);
  OpenSystemDriver driver(SmallMachine(), PolicyKind::kDynAff, SmallApps(), BurstPlan(4),
                          &admission, 42);
  driver.SetSampler(&sampler);
  driver.Run();
  ASSERT_GT(sampler.num_samples(), 0u);
  const std::string csv = sampler.ToCsv();
  EXPECT_NE(csv.find("open.queue_len"), std::string::npos);
  EXPECT_NE(csv.find("open.in_service"), std::string::npos);
}

TEST(OpenDriverTest, EmptyPlanDrainsImmediately) {
  UnboundedAdmission admission;
  OpenSystemDriver driver(SmallMachine(), PolicyKind::kDynAff, SmallApps(), {}, &admission, 42);
  const OpenSystemResult result = driver.Run();
  EXPECT_EQ(result.arrivals, 0u);
  EXPECT_EQ(result.completed, 0u);
  EXPECT_TRUE(result.littles.ok);
}

TEST(MserTest, FewSamplesReturnZero) {
  EXPECT_EQ(MserTruncationPoint({}), 0u);
  EXPECT_EQ(MserTruncationPoint({1.0, 2.0, 3.0}), 0u);
}

TEST(MserTest, TrimsInflatedTransientPrefix) {
  // A cold-start transient (large values) followed by a tight steady state:
  // truncating the prefix minimizes the standard error of the tail.
  std::vector<double> samples = {50.0, 40.0, 30.0};
  for (int i = 0; i < 40; ++i) {
    samples.push_back(5.0 + 0.01 * static_cast<double>(i % 3));
  }
  const size_t d = MserTruncationPoint(samples);
  EXPECT_GE(d, 3u);
  EXPECT_LE(d, samples.size() / 2);
}

TEST(MserTest, SteadySamplesNeedNoTrim) {
  std::vector<double> samples(50, 2.5);
  EXPECT_EQ(MserTruncationPoint(samples), 0u);
}

TEST(OpenDriverDeathTest, RunTwiceAborts) {
  UnboundedAdmission admission;
  OpenSystemDriver driver(SmallMachine(), PolicyKind::kDynAff, SmallApps(), BurstPlan(2),
                          &admission, 42);
  driver.Run();
  EXPECT_DEATH(driver.Run(), "at most once");
}

TEST(OpenDriverDeathTest, UnsortedPlanAborts) {
  UnboundedAdmission admission;
  std::vector<ArrivalPlanEntry> plan = {{0, Seconds(2)}, {0, Seconds(1)}};
  EXPECT_DEATH(OpenSystemDriver(SmallMachine(), PolicyKind::kDynAff, SmallApps(),
                                std::move(plan), &admission, 42),
               "sorted");
}

}  // namespace
}  // namespace affsched
