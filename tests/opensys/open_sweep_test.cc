#include "src/opensys/open_sweep.h"

#include <gtest/gtest.h>

#include "src/telemetry/json.h"

namespace affsched {
namespace {

// A deliberately tiny grid so the runner tests stay fast.
OpenSweepSpec TinySpec() {
  OpenSweepSpec spec;
  std::string error;
  EXPECT_TRUE(ParseOpenSweepSpec("opensys-smoke;policies=equi,dyn-aff;rhos=0.7;count=12",
                                 &spec, &error))
      << error;
  return spec;
}

TEST(OpenSweepSpecTest, PresetsParse) {
  OpenSweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseOpenSweepSpec("opensys", &spec, &error)) << error;
  EXPECT_EQ(spec.name, "opensys");
  EXPECT_EQ(spec.policies.size(), 3u);
  EXPECT_EQ(spec.arrivals.size(), 2u);
  EXPECT_EQ(spec.rhos.size(), 6u);
  EXPECT_EQ(spec.Cells(), 3u * 2u * 6u);

  ASSERT_TRUE(ParseOpenSweepSpec("opensys-smoke", &spec, &error)) << error;
  EXPECT_EQ(spec.policies.size(), 2u);
  EXPECT_EQ(spec.arrivals.size(), 1u);
}

TEST(OpenSweepSpecTest, OverridesApply) {
  OpenSweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseOpenSweepSpec(
                  "opensys;policies=dyn-aff;rhos=0.5,0.9;arrivals=onoff;count=20;reps=2;"
                  "seed=99;procs=8;mpl-cap=6;max-queue=10;warmup=0.1;burst=8",
                  &spec, &error))
      << error;
  EXPECT_EQ(spec.policies.size(), 1u);
  EXPECT_EQ(spec.rhos.size(), 2u);
  ASSERT_EQ(spec.arrivals.size(), 1u);
  EXPECT_EQ(spec.arrivals[0], ArrivalKind::kOnOff);
  EXPECT_EQ(spec.jobs_per_cell, 20u);
  EXPECT_EQ(spec.replications, 2u);
  EXPECT_EQ(spec.root_seed, 99u);
  EXPECT_EQ(spec.machine.num_processors, 8u);
  EXPECT_EQ(spec.mpl_cap, 6u);
  EXPECT_EQ(spec.max_queue, 10);
  EXPECT_DOUBLE_EQ(spec.open.warmup_fraction, 0.1);
  EXPECT_DOUBLE_EQ(spec.onoff_burst_factor, 8.0);
  ASSERT_TRUE(ParseOpenSweepSpec("opensys;warmup=mser", &spec, &error)) << error;
  EXPECT_EQ(spec.open.warmup_rule, WarmupRule::kMser);
}

TEST(OpenSweepSpecTest, TopologyKeyParsesAndValidates) {
  OpenSweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseOpenSweepSpec("opensys-smoke;topology=cmp-2x10", &spec, &error)) << error;
  EXPECT_EQ(spec.machine.topology.name, "cmp-2x10");
  EXPECT_FALSE(spec.machine.topology.IsFlat());
  EXPECT_FALSE(ParseOpenSweepSpec("opensys-smoke;topology=nosuch", &spec, &error));
  // Machine-level validation runs at the end of the parse.
  EXPECT_FALSE(ParseOpenSweepSpec("opensys-smoke;topology=cmp-2x10,llc-factor=0", &spec, &error));
}

TEST(OpenSweepSpecTest, MalformedSpecsRejected) {
  OpenSweepSpec spec;
  std::string error;
  EXPECT_FALSE(ParseOpenSweepSpec("", &spec, &error));
  EXPECT_FALSE(ParseOpenSweepSpec("nosuch", &spec, &error));
  EXPECT_FALSE(ParseOpenSweepSpec("opensys;bogus=1", &spec, &error));
  EXPECT_FALSE(ParseOpenSweepSpec("opensys;rhos=0", &spec, &error));
  EXPECT_FALSE(ParseOpenSweepSpec("opensys;rhos=2.0", &spec, &error));
  EXPECT_FALSE(ParseOpenSweepSpec("opensys;arrivals=weird", &spec, &error));
  EXPECT_FALSE(ParseOpenSweepSpec("opensys;warmup=1.5", &spec, &error));
  EXPECT_FALSE(ParseOpenSweepSpec("opensys;policies=", &spec, &error));
}

TEST(OpenSweepSpecTest, ArrivalKindNamesRoundTrip) {
  ArrivalKind kind;
  ASSERT_TRUE(ArrivalKindFromName("poisson", &kind));
  EXPECT_EQ(ArrivalKindName(kind), "poisson");
  ASSERT_TRUE(ArrivalKindFromName("onoff", &kind));
  EXPECT_EQ(ArrivalKindName(kind), "onoff");
  EXPECT_FALSE(ArrivalKindFromName("", &kind));
}

TEST(OpenSweepSpecTest, RhoPermilleIsExact) {
  EXPECT_EQ(RhoPermille(0.7), 700);
  EXPECT_EQ(RhoPermille(0.95), 950);
  EXPECT_EQ(RhoPermille(0.3), 300);
}

TEST(OpenSweepSpecTest, MeanDemandIsDeterministicAndPositive) {
  const OpenSweepSpec spec = TinySpec();
  const double a = MeanServiceDemandSeconds(spec.apps, spec.app_weights);
  const double b = MeanServiceDemandSeconds(spec.apps, spec.app_weights);
  EXPECT_GT(a, 0.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(OpenSweepRunnerTest, JsonByteIdenticalAtAnyWorkerCount) {
  const OpenSweepSpec spec = TinySpec();
  OpenSweepRunnerOptions serial;
  serial.jobs = 1;
  OpenSweepRunnerOptions parallel;
  parallel.jobs = 4;
  const std::string a = OpenSweepRunner(serial).Run(spec).ToJson();
  const std::string b = OpenSweepRunner(parallel).Run(spec).ToJson();
  EXPECT_EQ(a, b);
}

TEST(OpenSweepRunnerTest, EmitsSchemaV2OpenMode) {
  const OpenSweepResult result = OpenSweepRunner().Run(TinySpec());
  const std::string json = result.ToJson();
  EXPECT_TRUE(IsValidJson(json));
  EXPECT_NE(json.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"open\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_sojourn_s\""), std::string::npos);
  EXPECT_NE(json.find("\"littles_law\""), std::string::npos);
}

TEST(OpenSweepRunnerTest, LittlesLawHoldsInEveryCell) {
  const OpenSweepResult result = OpenSweepRunner().Run(TinySpec());
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_TRUE(result.AllLittlesLawOk());
  for (const OpenCellResult& cell : result.cells) {
    EXPECT_LT(cell.result.littles.relative_error, 0.05);
    EXPECT_EQ(cell.result.completed, cell.result.admitted);
    EXPECT_GT(cell.result.mean_sojourn_s, 0.0);
  }
}

TEST(OpenSweepRunnerTest, CommonRandomNumbersAcrossPolicies) {
  // Policies share the cell seed, so both see the identical arrival stream.
  const OpenSweepResult result = OpenSweepRunner().Run(TinySpec());
  const OpenCellResult* equi =
      result.Find(PolicyKind::kEquipartition, ArrivalKind::kPoisson, 700, 0);
  const OpenCellResult* dyn_aff =
      result.Find(PolicyKind::kDynAff, ArrivalKind::kPoisson, 700, 0);
  ASSERT_NE(equi, nullptr);
  ASSERT_NE(dyn_aff, nullptr);
  EXPECT_EQ(equi->seed, dyn_aff->seed);
  ASSERT_EQ(equi->result.jobs.size(), dyn_aff->result.jobs.size());
  for (size_t i = 0; i < equi->result.jobs.size(); ++i) {
    EXPECT_EQ(equi->result.jobs[i].arrival, dyn_aff->result.jobs[i].arrival);
    EXPECT_EQ(equi->result.jobs[i].app_index, dyn_aff->result.jobs[i].app_index);
  }
}

}  // namespace
}  // namespace affsched
