// Golden-trajectory regression test for the open-system sweep: one pinned
// cell (Poisson arrivals, rho = 0.7, Dyn-Aff vs Equipartition), schema v2
// JSON byte for byte. Regenerate with
//   simctl --open --preset "opensys-smoke;policies=equi,dyn-aff;rhos=0.7;count=12" \
//          --out tests/golden/open_smoke_rho700.json
// and justify the diff in review.

#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "src/opensys/open_sweep.h"

#ifndef AFF_GOLDEN_DIR
#error "AFF_GOLDEN_DIR must point at tests/golden"
#endif

namespace affsched {
namespace {

std::string ReadGolden(const std::string& filename) {
  const std::string path = std::string(AFF_GOLDEN_DIR) + "/" + filename;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void ExpectBytesIdentical(const std::string& actual, const std::string& golden) {
  if (actual == golden) {
    SUCCEED();
    return;
  }
  size_t i = 0;
  while (i < actual.size() && i < golden.size() && actual[i] == golden[i]) {
    ++i;
  }
  const size_t begin = i > 60 ? i - 60 : 0;
  ADD_FAILURE() << "open sweep JSON diverges from golden at byte " << i
                << "\n  golden: ..." << golden.substr(begin, 120)
                << "\n  actual: ..." << actual.substr(begin, 120);
}

TEST(OpenGoldenTest, SmokeRho700) {
  OpenSweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseOpenSweepSpec("opensys-smoke;policies=equi,dyn-aff;rhos=0.7;count=12",
                                 &spec, &error))
      << error;
  OpenSweepRunnerOptions options;
  options.jobs = 2;  // byte-identical at any worker count; exercise >1
  const OpenSweepResult result = OpenSweepRunner(options).Run(spec);
  ExpectBytesIdentical(result.ToJson() + "\n", ReadGolden("open_smoke_rho700.json"));
}

}  // namespace
}  // namespace affsched
