#include "src/opensys/littles_law.h"

#include <gtest/gtest.h>

namespace affsched {
namespace {

// Hand-computed M/M/1-style window: arrivals at t = 0, 1, 2, departures at
// t = 2, 3, 4, each with sojourn 2s. Over [0, 4]: n(t) is 1 on [0,1), 2 on
// [1,3), 1 on [3,4), so L = 6/4 = 1.5; lambda = 3/4; W = 2; lambda*W = 1.5.
TEST(LittlesLawTest, ExactOnHandComputedScenario) {
  LittlesLawChecker checker;
  checker.OnEnter(Seconds(0));
  checker.OnEnter(Seconds(1));
  checker.OnLeave(Seconds(2), 2.0);
  checker.OnEnter(Seconds(2));
  checker.OnLeave(Seconds(3), 2.0);
  checker.OnLeave(Seconds(4), 2.0);

  const LittlesLawResult r = checker.Result(Seconds(4), 1e-12);
  EXPECT_DOUBLE_EQ(r.mean_jobs_in_system, 1.5);
  EXPECT_DOUBLE_EQ(r.arrival_rate_per_s, 0.75);
  EXPECT_DOUBLE_EQ(r.mean_sojourn_s, 2.0);
  EXPECT_NEAR(r.relative_error, 0.0, 1e-12);
  EXPECT_TRUE(r.ok);
}

TEST(LittlesLawTest, IdentityHoldsForAnyWindowEnd) {
  // L and lambda both scale by 1/T, so the identity survives extending the
  // window past the last departure.
  LittlesLawChecker checker;
  checker.OnEnter(Seconds(1));
  checker.OnLeave(Seconds(4), 3.0);
  const LittlesLawResult r = checker.Result(Seconds(10), 1e-12);
  EXPECT_DOUBLE_EQ(r.mean_jobs_in_system, 0.3);
  EXPECT_DOUBLE_EQ(r.arrival_rate_per_s, 0.1);
  EXPECT_DOUBLE_EQ(r.mean_sojourn_s, 3.0);
  EXPECT_TRUE(r.ok);
}

TEST(LittlesLawTest, DetectsMisaccountedSojourn) {
  // A sojourn that disagrees with the enter/leave edges (as a double-counted
  // queue wait would) must trip the check.
  LittlesLawChecker checker;
  checker.OnEnter(Seconds(0));
  checker.OnLeave(Seconds(2), 5.0);  // edges say 2s in system, stats say 5s
  const LittlesLawResult r = checker.Result(Seconds(2), 0.05);
  EXPECT_FALSE(r.ok);
  EXPECT_GT(r.relative_error, 1.0);
}

TEST(LittlesLawTest, EmptyWindowIsVacuouslyOk) {
  LittlesLawChecker checker;
  const LittlesLawResult r = checker.Result(Seconds(10), 0.05);
  EXPECT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.mean_jobs_in_system, 0.0);
}

TEST(LittlesLawTest, TracksInSystemCount) {
  LittlesLawChecker checker;
  checker.OnEnter(Seconds(1));
  checker.OnEnter(Seconds(2));
  EXPECT_EQ(checker.in_system(), 2u);
  checker.OnLeave(Seconds(3), 2.0);
  EXPECT_EQ(checker.in_system(), 1u);
  EXPECT_EQ(checker.completed(), 1u);
}

TEST(LittlesLawDeathTest, LeaveWithoutEnterAborts) {
  LittlesLawChecker checker;
  EXPECT_DEATH(checker.OnLeave(Seconds(1), 1.0), "enter");
}

TEST(LittlesLawDeathTest, OutOfOrderEventsAbort) {
  LittlesLawChecker checker;
  checker.OnEnter(Seconds(5));
  EXPECT_DEATH(checker.OnEnter(Seconds(4)), "ordered");
}

}  // namespace
}  // namespace affsched
