#include "src/opensys/admission.h"

#include <gtest/gtest.h>

namespace affsched {
namespace {

TEST(AdmissionTest, UnboundedAdmitsEverything) {
  UnboundedAdmission admission;
  EXPECT_EQ(admission.OnArrival(0, 0), AdmissionVerdict::kAdmit);
  EXPECT_EQ(admission.OnArrival(1000, 1000), AdmissionVerdict::kAdmit);
  EXPECT_TRUE(admission.CanAdmitQueued(1000));
  EXPECT_EQ(admission.Name(), "unbounded");
}

TEST(AdmissionTest, FixedMplQueuesAtCap) {
  FixedMplAdmission admission(2);
  EXPECT_EQ(admission.OnArrival(0, 0), AdmissionVerdict::kAdmit);
  EXPECT_EQ(admission.OnArrival(1, 0), AdmissionVerdict::kAdmit);
  EXPECT_EQ(admission.OnArrival(2, 0), AdmissionVerdict::kQueue);
  EXPECT_EQ(admission.OnArrival(2, 50), AdmissionVerdict::kQueue);  // never rejects
  EXPECT_FALSE(admission.CanAdmitQueued(2));
  EXPECT_TRUE(admission.CanAdmitQueued(1));
  EXPECT_EQ(admission.Name(), "mpl-2");
}

TEST(AdmissionTest, LoadSheddingRejectsWhenQueueFull) {
  LoadSheddingAdmission admission(1, 2);
  EXPECT_EQ(admission.OnArrival(0, 0), AdmissionVerdict::kAdmit);
  EXPECT_EQ(admission.OnArrival(1, 0), AdmissionVerdict::kQueue);
  EXPECT_EQ(admission.OnArrival(1, 1), AdmissionVerdict::kQueue);
  EXPECT_EQ(admission.OnArrival(1, 2), AdmissionVerdict::kReject);
  EXPECT_EQ(admission.Name(), "shed-1-q2");
}

TEST(AdmissionTest, LoadSheddingWithZeroQueueRejectsImmediately) {
  LoadSheddingAdmission admission(1, 0);
  EXPECT_EQ(admission.OnArrival(0, 0), AdmissionVerdict::kAdmit);
  EXPECT_EQ(admission.OnArrival(1, 0), AdmissionVerdict::kReject);
}

TEST(AdmissionTest, FactorySelectsPolicyFromKnobs) {
  EXPECT_EQ(MakeAdmissionController(0, -1)->Name(), "unbounded");
  EXPECT_EQ(MakeAdmissionController(0, 5)->Name(), "unbounded");  // cap 0 wins
  EXPECT_EQ(MakeAdmissionController(4, -1)->Name(), "mpl-4");
  EXPECT_EQ(MakeAdmissionController(4, 8)->Name(), "shed-4-q8");
  EXPECT_EQ(MakeAdmissionController(4, 0)->Name(), "shed-4-q0");
}

TEST(AdmissionDeathTest, ZeroCapAborts) {
  EXPECT_DEATH(FixedMplAdmission(0), "positive");
  EXPECT_DEATH(LoadSheddingAdmission(0, 4), "positive");
}

}  // namespace
}  // namespace affsched
