#include "src/apps/apps.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/common/rng.h"

namespace affsched {
namespace {

TEST(AppsTest, DefaultProfilesAreTheThreePaperApps) {
  const auto profiles = DefaultProfiles();
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].name, "MVA");
  EXPECT_EQ(profiles[1].name, "MATRIX");
  EXPECT_EQ(profiles[2].name, "GRAVITY");
}

TEST(MvaTest, WavefrontParallelismGrowsThenShrinks) {
  // "Its precedence structure is representative of many wave front
  // computations, and exhibits parallelism that first slowly grows and then
  // slowly decreases."
  const AppProfile mva = MakeMvaProfile(MvaParams{.grid = 8});
  Rng rng(1);
  auto graph = mva.build_graph(rng);
  const auto widths = graph->LevelWidths();
  ASSERT_EQ(widths.size(), 15u);  // 2*8 - 1 anti-diagonals
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(widths[i], i + 1);
    EXPECT_EQ(widths[widths.size() - 1 - i], i + 1);
  }
  EXPECT_EQ(widths[7], 8u);
}

TEST(MvaTest, GridNodeCount) {
  const AppProfile mva = MakeMvaProfile(MvaParams{.grid = 5});
  Rng rng(2);
  auto graph = mva.build_graph(rng);
  EXPECT_EQ(graph->num_nodes(), 25u);
  EXPECT_EQ(mva.max_parallelism, 5u);
}

TEST(MvaTest, SingleInitialThread) {
  const AppProfile mva = MakeMvaProfile();
  Rng rng(3);
  auto graph = mva.build_graph(rng);
  graph->Start();
  EXPECT_EQ(graph->initial_ready().size(), 1u);
}

TEST(MatrixTest, AllThreadsIndependent) {
  // "massive and constant parallelism": every thread is ready at the start.
  const AppProfile matrix = MakeMatrixProfile(MatrixParams{.threads = 24});
  Rng rng(4);
  auto graph = matrix.build_graph(rng);
  graph->Start();
  EXPECT_EQ(graph->initial_ready().size(), 24u);
  EXPECT_EQ(matrix.max_parallelism, 24u);
}

TEST(MatrixTest, BlockedAlgorithmHasLowSteadyMissRate) {
  const auto profiles = DefaultProfiles();
  const AppProfile& matrix = profiles[1];
  EXPECT_LT(matrix.working_set.steady_miss_per_s, profiles[0].working_set.steady_miss_per_s);
  EXPECT_LT(matrix.working_set.steady_miss_per_s, profiles[2].working_set.steady_miss_per_s);
}

TEST(GravityTest, PhaseStructurePerTimestep) {
  GravityParams params;
  params.timesteps = 3;
  params.phase_threads = {8, 4, 4, 2};
  const AppProfile gravity = MakeGravityProfile(params);
  Rng rng(5);
  auto graph = gravity.build_graph(rng);
  // Per time step: 1 sequential + 8 + 4 + 4 + 2 = 19 nodes.
  EXPECT_EQ(graph->num_nodes(), 3u * 19u);
  // Level structure: seq, ph1, ph2, ph3, ph4 repeated per step.
  const auto widths = graph->LevelWidths();
  ASSERT_EQ(widths.size(), 15u);
  for (size_t step = 0; step < 3; ++step) {
    EXPECT_EQ(widths[step * 5 + 0], 1u);   // sequential phase
    EXPECT_EQ(widths[step * 5 + 1], 8u);
    EXPECT_EQ(widths[step * 5 + 2], 4u);
    EXPECT_EQ(widths[step * 5 + 3], 4u);
    EXPECT_EQ(widths[step * 5 + 4], 2u);
  }
}

TEST(GravityTest, BarrierBetweenPhases) {
  // The first phase-2 node must wait for every phase-1 node.
  GravityParams params;
  params.timesteps = 1;
  params.phase_threads = {3, 2, 2, 1};
  const AppProfile gravity = MakeGravityProfile(params);
  Rng rng(6);
  auto graph = gravity.build_graph(rng);
  graph->Start();
  ASSERT_EQ(graph->initial_ready().size(), 1u);  // only the sequential node
  const size_t seq = graph->initial_ready()[0];
  auto phase1 = graph->Complete(seq);
  ASSERT_EQ(phase1.size(), 3u);
  // Completing two of three phase-1 nodes releases nothing.
  EXPECT_TRUE(graph->Complete(phase1[0]).empty());
  EXPECT_TRUE(graph->Complete(phase1[1]).empty());
  // The last one releases all of phase 2.
  EXPECT_EQ(graph->Complete(phase1[2]).size(), 2u);
}

TEST(GravityTest, MaxParallelismIsWidestPhase) {
  const AppProfile gravity = MakeGravityProfile();
  EXPECT_EQ(gravity.max_parallelism, 32u);
}

TEST(AppsTest, WorkJitterIsSeedDependentButBounded) {
  const AppProfile matrix = MakeMatrixProfile(MatrixParams{.threads = 50,
                                                           .thread_work = Milliseconds(100),
                                                           .work_cv = 0.1});
  Rng rng_a(7);
  Rng rng_b(8);
  auto ga = matrix.build_graph(rng_a);
  auto gb = matrix.build_graph(rng_b);
  bool any_diff = false;
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_GT(ga->work(i), 0);
    EXPECT_LT(ga->work(i), Milliseconds(200));
    any_diff = any_diff || ga->work(i) != gb->work(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(AppsTest, CacheCalibrationOrdering) {
  // Table 1 fit: GRAVITY builds its working set slowest (smallest P^NA at
  // Q=25ms but among the largest at Q=400ms); MATRIX has the smallest
  // working set.
  const auto profiles = DefaultProfiles();
  const auto& mva = profiles[0].working_set;
  const auto& matrix = profiles[1].working_set;
  const auto& gravity = profiles[2].working_set;
  EXPECT_GT(gravity.buildup_tau_s, mva.buildup_tau_s);
  EXPECT_GT(gravity.buildup_tau_s, matrix.buildup_tau_s);
  EXPECT_LT(matrix.blocks, mva.blocks);
  EXPECT_LT(matrix.blocks, gravity.blocks);
}

TEST(AppsTest, TotalWorkMagnitudes) {
  // Sanity-check the calibration targets discussed in DESIGN.md: MATRIX is by
  // far the largest job; MVA the smallest.
  Rng rng(9);
  const auto profiles = DefaultProfiles();
  const double mva_work = ToSeconds(profiles[0].build_graph(rng)->TotalWork());
  const double matrix_work = ToSeconds(profiles[1].build_graph(rng)->TotalWork());
  const double gravity_work = ToSeconds(profiles[2].build_graph(rng)->TotalWork());
  EXPECT_NEAR(mva_work, 102.4, 10.0);
  EXPECT_NEAR(matrix_work, 758.4, 40.0);
  EXPECT_NEAR(gravity_work, 370.0, 30.0);
}

TEST(AppsTest, SmallProfilesAreActuallySmall) {
  Rng rng(10);
  for (const AppProfile& p :
       {MakeSmallMvaProfile(), MakeSmallMatrixProfile(), MakeSmallGravityProfile()}) {
    auto graph = p.build_graph(rng);
    EXPECT_LT(ToSeconds(graph->TotalWork()), 5.0) << p.name;
  }
}

}  // namespace
}  // namespace affsched
