#include "src/serve/result_cache.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "src/serve/jsonv.h"

namespace affsched {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/result_cache_test_" + name;
  fs::remove_all(dir);
  return dir;
}

// A result with every JobStats field populated with awkward values (bit-
// patterns that naive %g formatting would lose), so the round-trip test
// covers the whole encode/decode surface.
RunResult MakeResult(double salt) {
  RunResult result;
  result.makespan = 123456789012345 + static_cast<SimTime>(salt);
  result.events = 987654321;
  for (int j = 0; j < 2; ++j) {
    JobResult job;
    job.app = j == 0 ? "matrix" : "mva";
    job.stats.arrival = 1000 * j;
    job.stats.completion = 123456789012345 + j;
    job.stats.queue_wait_s = 0.1 + salt;
    job.stats.useful_work_s = 1.0 / 3.0 + salt;
    job.stats.reload_stall_s = 0.0625;
    job.stats.steady_stall_s = 1e-9 + salt;
    job.stats.switch_s = 0.30000000000000004;
    job.stats.waste_s = 2.5e-13;
    job.stats.alloc_integral_s = 12345.6789 + salt;
    job.stats.reallocations = 17 + static_cast<uint64_t>(j);
    job.stats.affinity_dispatches = 11;
    job.stats.migrations_same_core = 1;
    job.stats.migrations_same_cluster = 2;
    job.stats.migrations_same_node = 3;
    job.stats.migrations_cross_node = 4;
    result.jobs.push_back(job);
  }
  return result;
}

CellEntryMeta MakeMeta() {
  CellEntryMeta meta;
  meta.policy = "dyn-aff";
  meta.mix = 5;
  meta.replication = 2;
  meta.seed = 0xdeadbeefcafeull;
  return meta;
}

bool BitIdentical(const RunResult& a, const RunResult& b) {
  if (a.makespan != b.makespan || a.events != b.events || a.jobs.size() != b.jobs.size()) {
    return false;
  }
  for (size_t j = 0; j < a.jobs.size(); ++j) {
    if (a.jobs[j].app != b.jobs[j].app) {
      return false;
    }
    // Byte-compare the whole stats block: any drift (an exponent flip, a
    // lost low bit) must fail.
    if (std::memcmp(&a.jobs[j].stats, &b.jobs[j].stats, sizeof(JobStats)) != 0) {
      return false;
    }
  }
  return true;
}

TEST(ResultCacheTest, MissThenHitRoundTripsBitIdentically) {
  ResultCache cache({FreshDir("roundtrip"), 0});
  ASSERT_TRUE(cache.ok()) << cache.error();
  const RunResult original = MakeResult(0.0);

  RunResult out;
  EXPECT_FALSE(cache.Probe("00aa", &out));
  EXPECT_TRUE(cache.Store("00aa", MakeMeta(), original));
  CellEntryMeta meta;
  ASSERT_TRUE(cache.Probe("00aa", &out));
  EXPECT_TRUE(BitIdentical(original, out));
  EXPECT_TRUE(cache.Contains("00aa"));
  EXPECT_FALSE(cache.Contains("00ab"));

  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.stores, 1u);
  EXPECT_EQ(cache.EntryCount(), 1u);
  EXPECT_GT(cache.TotalBytes(), 0u);
}

TEST(ResultCacheTest, EntryCodecPreservesMeta) {
  const std::string text = ResultCache::EncodeEntry("k1", MakeMeta(), MakeResult(0.0));
  RunResult out;
  CellEntryMeta meta;
  ASSERT_TRUE(ResultCache::DecodeEntry(text, &out, &meta));
  EXPECT_EQ(meta.policy, "dyn-aff");
  EXPECT_EQ(meta.mix, 5);
  EXPECT_EQ(meta.replication, 2u);
  EXPECT_EQ(meta.seed, 0xdeadbeefcafeull);
}

TEST(ResultCacheTest, CorruptEntryIsDeletedAndMisses) {
  const std::string dir = FreshDir("corrupt");
  ResultCache cache({dir, 0});
  ASSERT_TRUE(cache.ok()) << cache.error();
  ASSERT_TRUE(cache.Store("feed", MakeMeta(), MakeResult(0.0)));

  // Truncate the entry as a SIGKILL mid-write (or a torn disk) would.
  const std::string path = dir + "/" + ResultCache::EntryFileName("feed");
  std::string text;
  {
    std::ifstream in(path);
    std::getline(in, text);
  }
  {
    std::ofstream out(path, std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  }

  RunResult out;
  EXPECT_FALSE(cache.Probe("feed", &out));       // corrupt -> miss
  EXPECT_FALSE(fs::exists(path));                // ...and the file is gone
  EXPECT_EQ(cache.stats().corrupt, 1u);
  // Re-simulate + re-store: the cell is whole again.
  EXPECT_TRUE(cache.Store("feed", MakeMeta(), MakeResult(0.0)));
  EXPECT_TRUE(cache.Probe("feed", &out));
}

TEST(ResultCacheTest, DecodeRejectsTamperedEntries) {
  RunResult out;
  EXPECT_FALSE(ResultCache::DecodeEntry("", &out));
  EXPECT_FALSE(ResultCache::DecodeEntry("{}", &out));
  EXPECT_FALSE(ResultCache::DecodeEntry("[1,2,3]", &out));
  const std::string good = ResultCache::EncodeEntry("k1", MakeMeta(), MakeResult(0.0));
  EXPECT_TRUE(ResultCache::DecodeEntry(good, &out));
  // Wrong schema version must be unreadable, not misread.
  std::string wrong_schema = good;
  const size_t at = wrong_schema.find("\"entry_schema\":2");
  ASSERT_NE(at, std::string::npos);
  wrong_schema.replace(at, 16, "\"entry_schema\":9");
  EXPECT_FALSE(ResultCache::DecodeEntry(wrong_schema, &out));
  // A missing required field must be unreadable too.
  std::string no_makespan = good;
  const size_t mk = no_makespan.find("\"makespan\"");
  ASSERT_NE(mk, std::string::npos);
  no_makespan.replace(mk, 10, "\"snakespam\"");
  EXPECT_FALSE(ResultCache::DecodeEntry(no_makespan, &out));
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedOverBudget) {
  const std::string dir = FreshDir("evict");
  // Budget fits roughly two entries; the third store must evict the LRU one.
  const std::string one_entry = ResultCache::EncodeEntry("k", MakeMeta(), MakeResult(0.0));
  ResultCache cache({dir, static_cast<uint64_t>(one_entry.size() * 5 / 2)});
  ASSERT_TRUE(cache.ok()) << cache.error();

  ASSERT_TRUE(cache.Store("aaaa", MakeMeta(), MakeResult(1.0)));
  ASSERT_TRUE(cache.Store("bbbb", MakeMeta(), MakeResult(2.0)));
  // Touch "aaaa" so "bbbb" is the least recently used...
  RunResult out;
  fs::last_write_time(dir + "/" + ResultCache::EntryFileName("bbbb"),
                      fs::file_time_type::clock::now() - std::chrono::hours(1));
  ASSERT_TRUE(cache.Probe("aaaa", &out));
  // ...and the next store evicts it, never the entry just written.
  ASSERT_TRUE(cache.Store("cccc", MakeMeta(), MakeResult(3.0)));
  EXPECT_TRUE(cache.Contains("cccc"));
  EXPECT_FALSE(cache.Contains("bbbb"));
  EXPECT_TRUE(cache.Contains("aaaa"));
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.TotalBytes(), one_entry.size() * 5 / 2);
}

TEST(ResultCacheTest, BadDirectoryIsANoOpMiss) {
  ResultCache cache({"/dev/null/not-a-dir", 0});
  EXPECT_FALSE(cache.ok());
  RunResult out;
  EXPECT_FALSE(cache.Probe("k", &out));
  EXPECT_FALSE(cache.Store("k", MakeMeta(), MakeResult(0.0)));
  EXPECT_FALSE(cache.Contains("k"));
}

TEST(ResultCacheTest, NanResultsAreNotCacheable) {
  ResultCache cache({FreshDir("nan"), 0});
  ASSERT_TRUE(cache.ok()) << cache.error();
  RunResult bad = MakeResult(0.0);
  bad.jobs[0].stats.useful_work_s = std::nan("");
  // ExactDouble renders NaN as null, which the strict decoder rejects: the
  // entry is either never written or never readable. Probe must miss.
  cache.Store("badc", MakeMeta(), bad);
  RunResult out;
  EXPECT_FALSE(cache.Probe("badc", &out));
}

}  // namespace
}  // namespace affsched
