#include "src/serve/jsonv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>

namespace affsched {
namespace {

JsonValue MustParse(const std::string& text) {
  JsonValue value;
  std::string error;
  EXPECT_TRUE(ParseJson(text, &value, &error)) << text << ": " << error;
  return value;
}

bool Fails(const std::string& text) {
  JsonValue value;
  std::string error;
  return !ParseJson(text, &value, &error);
}

TEST(JsonvTest, ParsesScalars) {
  EXPECT_TRUE(MustParse("null").IsNull());
  EXPECT_TRUE(MustParse("true").AsBool());
  EXPECT_FALSE(MustParse("false").AsBool(true));
  EXPECT_EQ(MustParse("42").AsInt64(), 42);
  EXPECT_EQ(MustParse("-17").AsInt64(), -17);
  EXPECT_DOUBLE_EQ(MustParse("2.5e3").AsDouble(), 2500.0);
  EXPECT_EQ(MustParse("\"hi\\n\\\"there\\\"\"").string_value, "hi\n\"there\"");
  EXPECT_EQ(MustParse("\"\\u0041\\u00e9\"").string_value, "A\xc3\xa9");
}

TEST(JsonvTest, ParsesContainersAndLookup) {
  const JsonValue doc = MustParse(
      "{\"op\":\"submit\",\"jobs\":4,\"nested\":{\"xs\":[1,2,3]},\"dup\":1,\"dup\":2}");
  ASSERT_TRUE(doc.IsObject());
  EXPECT_EQ(doc.Get("op")->string_value, "submit");
  EXPECT_EQ(doc.Get("jobs")->AsUint64(), 4u);
  const JsonValue* xs = doc.Get("nested")->Get("xs");
  ASSERT_TRUE(xs != nullptr && xs->IsArray());
  ASSERT_EQ(xs->array.size(), 3u);
  EXPECT_EQ(xs->array[2].AsInt64(), 3);
  EXPECT_EQ(doc.Get("dup")->AsInt64(), 2);  // duplicates keep the last
  EXPECT_EQ(doc.Get("absent"), nullptr);
}

TEST(JsonvTest, RejectsMalformedAndTruncatedInput) {
  // Truncation in every position a SIGKILL mid-write could leave behind.
  EXPECT_TRUE(Fails(""));
  EXPECT_TRUE(Fails("{"));
  EXPECT_TRUE(Fails("{\"a\":"));
  EXPECT_TRUE(Fails("{\"a\":1"));
  EXPECT_TRUE(Fails("{\"a\":1,"));
  EXPECT_TRUE(Fails("[1,2"));
  EXPECT_TRUE(Fails("\"unterminated"));
  EXPECT_TRUE(Fails("12."));
  // Outright garbage and trailing garbage.
  EXPECT_TRUE(Fails("nul"));
  EXPECT_TRUE(Fails("{} trailing"));
  EXPECT_TRUE(Fails("{\"a\" 1}"));
  EXPECT_TRUE(Fails("{'a':1}"));
  EXPECT_TRUE(Fails("[1,]"));
}

TEST(JsonvTest, ErrorsCarryByteOffsets) {
  JsonValue value;
  std::string error;
  EXPECT_FALSE(ParseJson("[1, x]", &value, &error));
  EXPECT_NE(error.find("4"), std::string::npos) << error;
}

TEST(JsonvTest, ExactDoubleRoundTripsBitIdentically) {
  const double cases[] = {0.0,
                          1.0,
                          -3.0,
                          0.1,
                          1.0 / 3.0,
                          123456789.123456789,
                          5e-324,  // min subnormal
                          std::numeric_limits<double>::max(),
                          9007199254740993.0};
  for (const double value : cases) {
    const std::string text = ExactDouble(value);
    const double back = MustParse(text).AsDouble();
    EXPECT_EQ(std::memcmp(&back, &value, sizeof value), 0)
        << value << " -> " << text << " -> " << back;
  }
  // Integral values render without an exponent or fraction (stable, compact).
  EXPECT_EQ(ExactDouble(42.0), "42");
  EXPECT_EQ(ExactDouble(-7.0), "-7");
  // Non-finite values are not representable; strict readers must reject.
  EXPECT_EQ(ExactDouble(std::nan("")), "null");
  EXPECT_EQ(ExactDouble(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonvTest, NumbersKeepSourceText) {
  const JsonValue value = MustParse("0.10000000000000001");
  EXPECT_EQ(value.number, "0.10000000000000001");
  EXPECT_EQ(value.AsDouble(), 0.1);
}

TEST(JsonvTest, DepthCapStopsRunawayNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) {
    deep += "[";
  }
  EXPECT_TRUE(Fails(deep));
}

}  // namespace
}  // namespace affsched
