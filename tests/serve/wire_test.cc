#include "src/serve/wire.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "src/serve/jsonv.h"

namespace affsched {
namespace {

TEST(WireTest, ParsesRequests) {
  WireRequest request;
  std::string error;
  ASSERT_TRUE(ParseWireRequest("{\"op\":\"submit\",\"spec\":\"smoke;reps=2\",\"jobs\":4}",
                               &request, &error));
  EXPECT_EQ(request.op, "submit");
  EXPECT_EQ(request.spec, "smoke;reps=2");
  EXPECT_EQ(request.jobs, 4u);

  ASSERT_TRUE(ParseWireRequest("{\"op\":\"ping\"}", &request, &error));
  EXPECT_EQ(request.op, "ping");
  EXPECT_EQ(request.spec, "");
  EXPECT_EQ(request.jobs, 0u);
}

TEST(WireTest, RejectsMalformedRequests) {
  WireRequest request;
  std::string error;
  EXPECT_FALSE(ParseWireRequest("", &request, &error));
  EXPECT_FALSE(ParseWireRequest("not json", &request, &error));
  EXPECT_FALSE(ParseWireRequest("[\"op\"]", &request, &error));
  EXPECT_FALSE(ParseWireRequest("{\"spec\":\"smoke\"}", &request, &error));
  EXPECT_FALSE(ParseWireRequest("{\"op\":42}", &request, &error));
  EXPECT_FALSE(ParseWireRequest("{\"op\":\"\"}", &request, &error));
}

TEST(WireTest, ErrorEventEscapes) {
  const std::string event = WireErrorEvent("bad \"spec\"\nline");
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(event, &doc, &error)) << event;
  EXPECT_EQ(doc.Get("event")->string_value, "error");
  EXPECT_EQ(doc.Get("message")->string_value, "bad \"spec\"\nline");
}

TEST(WireTest, LineChannelFramesAcrossPartialReads) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  LineChannel client(fds[0]);
  LineChannel server(fds[1]);

  // Two lines in one write, and one line split across two writes.
  ASSERT_TRUE(client.WriteLine("first"));
  ASSERT_EQ(::write(client.fd(), "sec", 3), 3);
  std::string line;
  ASSERT_TRUE(server.ReadLine(&line));
  EXPECT_EQ(line, "first");
  ASSERT_EQ(::write(client.fd(), "ond\nthird\n", 10), 10);
  ASSERT_TRUE(server.ReadLine(&line));
  EXPECT_EQ(line, "second");
  ASSERT_TRUE(server.ReadLine(&line));
  EXPECT_EQ(line, "third");
}

TEST(WireTest, LineChannelSurfacesUnterminatedTailThenEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  {
    LineChannel client(fds[0]);
    ASSERT_EQ(::write(client.fd(), "tail-no-newline", 15), 15);
  }  // destructor closes -> EOF on the server side
  LineChannel server(fds[1]);
  std::string line;
  ASSERT_TRUE(server.ReadLine(&line));
  EXPECT_EQ(line, "tail-no-newline");
  EXPECT_FALSE(server.ReadLine(&line));
}

TEST(WireTest, ListenAndConnectRoundTrip) {
  const std::string path = ::testing::TempDir() + "/wire_test.sock";
  std::string error;
  const int listen_fd = ListenUnix(path, &error);
  ASSERT_GE(listen_fd, 0) << error;
  // Binding over a stale socket file must work (daemon restart).
  std::thread server([&] {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    ASSERT_GE(fd, 0);
    LineChannel channel(fd);
    std::string line;
    ASSERT_TRUE(channel.ReadLine(&line));
    EXPECT_EQ(line, "hello");
    EXPECT_TRUE(channel.WriteLine("world"));
  });
  const int client_fd = ConnectUnix(path, &error);
  ASSERT_GE(client_fd, 0) << error;
  LineChannel channel(client_fd);
  ASSERT_TRUE(channel.WriteLine("hello"));
  std::string line;
  ASSERT_TRUE(channel.ReadLine(&line));
  EXPECT_EQ(line, "world");
  server.join();
  ::close(listen_fd);
  const int second = ListenUnix(path, &error);
  EXPECT_GE(second, 0) << error;
  ::close(second);
  ::unlink(path.c_str());
}

TEST(WireTest, ListenRejectsOverlongPaths) {
  std::string error;
  EXPECT_LT(ListenUnix(std::string(200, 'x'), &error), 0);
  EXPECT_FALSE(error.empty());
  EXPECT_LT(ConnectUnix("", &error), 0);
}

}  // namespace
}  // namespace affsched
