#include "src/serve/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/apps/apps.h"
#include "src/runner/runner.h"
#include "src/serve/jsonv.h"
#include "src/serve/spool.h"

namespace affsched {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/service_test_" + name;
  fs::remove_all(dir);
  return dir;
}

// Small profiles so unit-test submissions are fast. The spool/shard tests
// can't use this: workers reconstruct jobs from the spec-addressable fields,
// which always mean the full-size default profiles.
SweepSpec TinySpec() {
  SweepSpec spec;
  spec.name = "tiny";
  spec.machine.num_processors = 8;
  spec.apps = {MakeSmallMvaProfile(), MakeSmallMatrixProfile(), MakeSmallGravityProfile()};
  spec.policies = {PolicyKind::kEquipartition, PolicyKind::kDynAff};
  spec.mixes = {WorkloadMix{.number = 1, .mva = 2, .matrix = 0, .gravity = 0}};
  spec.replication.min_replications = 2;
  spec.replication.max_replications = 2;
  spec.root_seed = 7;
  return spec;
}

SweepServiceOptions TinyOptions(const std::string& cache_dir) {
  SweepServiceOptions options;
  options.cache_dir = cache_dir;
  options.jobs = 4;
  options.git_rev = "testrev";  // pinned so entries survive rebuilds of this test
  return options;
}

TEST(SweepServiceTest, SecondSubmissionServesEveryCellFromCache) {
  SweepService service(TinyOptions(FreshDir("twice")));
  ASSERT_TRUE(service.ok()) << service.error();

  SubmitOutcome first, second;
  std::string error;
  ASSERT_TRUE(service.Submit(TinySpec(), {}, &first, &error)) << error;
  EXPECT_EQ(first.cells, 4u);
  EXPECT_EQ(first.hits, 0u);
  EXPECT_EQ(first.executed, 4u);

  ASSERT_TRUE(service.Submit(TinySpec(), {}, &second, &error)) << error;
  EXPECT_EQ(second.cells, 4u);
  EXPECT_EQ(second.hits, 4u);
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(first.json, second.json);
  EXPECT_EQ(first.sweep_key, second.sweep_key);

  EXPECT_EQ(service.counters().submits.load(), 2u);
  EXPECT_EQ(service.counters().cache_hits.load(), 4u);
  EXPECT_EQ(service.counters().cells_executed.load(), 4u);

  JsonValue stats;
  ASSERT_TRUE(ParseJson(service.StatsJson(), &stats, &error)) << error;
  EXPECT_EQ(stats.Get("service")->Get("submits")->AsUint64(), 2u);
  EXPECT_EQ(stats.Get("cache")->Get("stores")->AsUint64(), 4u);
}

TEST(SweepServiceTest, ServedDocumentMatchesBatchRunnerByteForByte) {
  SweepService service(TinyOptions(FreshDir("batch")));
  ASSERT_TRUE(service.ok()) << service.error();
  SubmitOutcome outcome;
  std::string error;
  ASSERT_TRUE(service.Submit(TinySpec(), {}, &outcome, &error)) << error;

  const SweepResult batch = SweepRunner(SweepRunnerOptions{.jobs = 4}).Run(TinySpec());
  EXPECT_EQ(outcome.json, batch.ToJson() + "\n");
}

TEST(SweepServiceTest, ResumesFromPartialCache) {
  const std::string cache_dir = FreshDir("resume");
  SubmitOutcome full;
  std::string error;
  {
    SweepService service(TinyOptions(cache_dir));
    ASSERT_TRUE(service.Submit(TinySpec(), {}, &full, &error)) << error;
  }

  // Simulate a crash that lost two in-flight cells: remove two entries.
  std::vector<std::string> entries;
  for (const auto& entry : fs::directory_iterator(cache_dir)) {
    entries.push_back(entry.path().string());
  }
  ASSERT_EQ(entries.size(), 4u);
  std::sort(entries.begin(), entries.end());
  fs::remove(entries[0]);
  fs::remove(entries[1]);

  // A fresh service (the restarted daemon) re-simulates only the missing
  // cells and still produces the byte-identical document.
  SweepService service(TinyOptions(cache_dir));
  SubmitOutcome resumed;
  ASSERT_TRUE(service.Submit(TinySpec(), {}, &resumed, &error)) << error;
  EXPECT_EQ(resumed.cells, 4u);
  EXPECT_EQ(resumed.hits, 2u);
  EXPECT_EQ(resumed.executed, 2u);
  EXPECT_EQ(resumed.json, full.json);
}

TEST(SweepServiceTest, EquivalentSpecSpellingsShareCells) {
  const std::string cache_dir = FreshDir("canon");
  SweepService service(TinyOptions(cache_dir));
  SweepSpec a, b;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("smoke;mixes=1;policies=equi;reps=2;procs=8;speed=2.0", &a, &error))
      << error;
  ASSERT_TRUE(ParseSweepSpec("smoke;mixes=1;policies=equi;reps=2;speed=2;procs=8", &b, &error))
      << error;
  SubmitOutcome first, second;
  ASSERT_TRUE(service.Submit(a, {}, &first, &error)) << error;
  ASSERT_TRUE(service.Submit(b, {}, &second, &error)) << error;
  EXPECT_EQ(first.executed, first.cells);
  EXPECT_EQ(second.hits, second.cells) << "differently-spelled spec missed the cache";
  EXPECT_EQ(first.sweep_key, second.sweep_key);
  // The documents agree on everything but the verbatim spec string, which is
  // provenance by design (the result records what the user typed).
  const size_t pos_a = first.json.find("\"experiments\"");
  const size_t pos_b = second.json.find("\"experiments\"");
  ASSERT_NE(pos_a, std::string::npos);
  ASSERT_NE(pos_b, std::string::npos);
  EXPECT_EQ(first.json.substr(pos_a), second.json.substr(pos_b));
}

TEST(SweepServiceTest, StreamsPlannedCellsResultDone) {
  SweepService service(TinyOptions(FreshDir("events")));
  std::vector<std::string> lines;
  SubmitOutcome outcome;
  std::string error;
  ASSERT_TRUE(service.Submit(
      TinySpec(), [&](const std::string& line) { lines.push_back(line); }, &outcome, &error))
      << error;

  ASSERT_GE(lines.size(), 4u);
  size_t cells = 0, sim_cells = 0;
  JsonValue event;
  for (const std::string& line : lines) {
    ASSERT_TRUE(ParseJson(line, &event, &error)) << line << ": " << error;
    const std::string kind = event.Get("event")->string_value;
    if (kind == "cell") {
      ++cells;
      if (event.Get("source")->string_value == "sim") {
        ++sim_cells;
      }
    }
    if (kind == "result") {
      EXPECT_EQ(event.Get("json")->string_value, outcome.json);
      EXPECT_EQ(event.Get("cells")->AsUint64(), outcome.cells);
    }
  }
  JsonValue first_event, last_event;
  ASSERT_TRUE(ParseJson(lines.front(), &first_event, &error));
  ASSERT_TRUE(ParseJson(lines.back(), &last_event, &error));
  EXPECT_EQ(first_event.Get("event")->string_value, "planned");
  EXPECT_EQ(first_event.Get("cells_min")->AsUint64(), 4u);
  EXPECT_EQ(last_event.Get("event")->string_value, "done");
  EXPECT_EQ(cells, outcome.cells);
  EXPECT_EQ(sim_cells, outcome.cells);  // fresh cache: everything simulated

  // Resubmission streams the same cells, now all from cache.
  lines.clear();
  ASSERT_TRUE(service.Submit(
      TinySpec(), [&](const std::string& line) { lines.push_back(line); }, &outcome, &error));
  size_t cached_cells = 0;
  for (const std::string& line : lines) {
    ASSERT_TRUE(ParseJson(line, &event, &error));
    if (event.Get("event")->string_value == "cell" &&
        event.Get("source")->string_value == "cache") {
      ++cached_cells;
    }
  }
  EXPECT_EQ(cached_cells, outcome.cells);
}

TEST(SweepServiceTest, ShardWorkersResolveEveryCell) {
  // Full-size profiles: the worker rebuilds the cell's inputs from the task
  // file alone, which always means the default profiles — so keep the grid
  // minimal (1 policy x 1 mix x 2 reps).
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("smoke;mixes=1;policies=equi;reps=2", &spec, &error)) << error;

  // Unsharded golden document first, in its own cache.
  SubmitOutcome golden;
  {
    SweepService service(TinyOptions(FreshDir("shard-golden")));
    ASSERT_TRUE(service.Submit(spec, {}, &golden, &error)) << error;
  }

  SweepServiceOptions options = TinyOptions(FreshDir("shard-cache"));
  options.spool_dir = FreshDir("shard-spool");
  options.shard_local_execution = false;  // every cell must be resolved remotely
  SweepService service(options);
  ASSERT_TRUE(service.ok()) << service.error();

  // Two in-process "worker daemons" sharing the spool and cache.
  ResultCache worker_cache({options.cache_dir, 0});
  Spool worker_spool(options.spool_dir);
  SpoolWorkerOptions worker_options;
  worker_options.idle_timeout_s = 10.0;
  size_t executed_a = 0, executed_b = 0;
  std::thread worker_a([&] { executed_a = RunSpoolWorker(&worker_spool, &worker_cache,
                                                         worker_options); });
  std::thread worker_b([&] { executed_b = RunSpoolWorker(&worker_spool, &worker_cache,
                                                         worker_options); });

  SubmitOutcome outcome;
  ASSERT_TRUE(service.Submit(spec, {}, &outcome, &error)) << error;
  worker_spool.RequestStop();
  worker_a.join();
  worker_b.join();

  EXPECT_EQ(outcome.cells, 2u);
  EXPECT_EQ(outcome.remote, 2u);
  EXPECT_EQ(outcome.executed, 0u);
  EXPECT_EQ(executed_a + executed_b, 2u);
  EXPECT_EQ(outcome.json, golden.json);
  EXPECT_EQ(service.counters().cells_remote.load(), 2u);
  EXPECT_EQ(service.counters().cells_executed.load(), 0u);
}

TEST(SweepServiceTest, SpoolClaimsAreExactlyOnce) {
  const std::string dir = FreshDir("spool");
  Spool spool(dir);
  ASSERT_TRUE(spool.ok()) << spool.error();
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("smoke;mixes=1;policies=equi;reps=2", &spec, &error));

  SpoolTask task = Spool::MakeTask("aaaa", spec, PolicyKind::kEquipartition, 1, 0, 42);
  ASSERT_TRUE(spool.Offer(task));
  ASSERT_TRUE(spool.Offer(task));  // re-offer is a no-op
  EXPECT_EQ(spool.PendingCount(), 1u);

  EXPECT_TRUE(spool.TryClaimKey("aaaa"));   // first claim wins
  EXPECT_FALSE(spool.TryClaimKey("aaaa"));  // second loses
  EXPECT_EQ(spool.PendingCount(), 0u);
  SpoolTask claimed;
  EXPECT_FALSE(spool.ClaimNext(&claimed));  // nothing left to claim
  EXPECT_TRUE(spool.FinishKey("aaaa"));

  // A round-tripped task reconstructs the simulation inputs.
  ASSERT_TRUE(spool.Offer(task));
  ASSERT_TRUE(spool.ClaimNext(&claimed));
  EXPECT_EQ(claimed.key, "aaaa");
  MachineConfig machine;
  EngineOptions engine;
  PolicyKind policy;
  std::vector<AppProfile> jobs;
  ASSERT_TRUE(Spool::TaskInputs(claimed, &machine, &engine, &policy, &jobs, &error)) << error;
  EXPECT_EQ(machine.num_processors, spec.machine.num_processors);
  EXPECT_EQ(policy, PolicyKind::kEquipartition);
  EXPECT_FALSE(jobs.empty());

  EXPECT_FALSE(spool.StopRequested());
  EXPECT_TRUE(spool.RequestStop());
  EXPECT_TRUE(spool.StopRequested());
}

TEST(SweepServiceTest, BadCacheDirectoryFailsClosed) {
  SweepServiceOptions options;
  options.cache_dir = "/dev/null/not-a-dir";
  SweepService service(options);
  EXPECT_FALSE(service.ok());
  EXPECT_FALSE(service.error().empty());
}

}  // namespace
}  // namespace affsched
