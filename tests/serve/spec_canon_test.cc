#include "src/serve/spec_canon.h"

#include <gtest/gtest.h>

#include <string>

#include "src/runner/cell_seed.h"
#include "src/runner/sweep.h"

namespace affsched {
namespace {

SweepSpec MustParse(const std::string& text) {
  SweepSpec spec;
  std::string error;
  EXPECT_TRUE(ParseSweepSpec(text, &spec, &error)) << text << ": " << error;
  return spec;
}

TEST(SpecCanonTest, EquivalentSpecsCanonicalizeIdentically) {
  // The caching satellite's core claim: override order and float spelling
  // are provenance, not identity. These three parse to the same grid.
  const SweepSpec a = MustParse("smoke;procs=8;speed=2.0;seed=7");
  const SweepSpec b = MustParse("smoke;seed=7;speed=2;procs=8");
  const SweepSpec c = MustParse("smoke;speed=2.000;procs=8;seed=7");
  EXPECT_NE(a.name, b.name);  // provenance differs...
  EXPECT_EQ(CanonicalSpecText(a), CanonicalSpecText(b));  // ...identity does not
  EXPECT_EQ(CanonicalSpecText(b), CanonicalSpecText(c));
  EXPECT_EQ(SweepKey(a), SweepKey(b));
  EXPECT_EQ(SweepKey(b), SweepKey(c));
}

TEST(SpecCanonTest, DifferentGridsGetDifferentKeys) {
  const SweepSpec base = MustParse("smoke");
  EXPECT_NE(SweepKey(base), SweepKey(MustParse("smoke;procs=8")));
  EXPECT_NE(SweepKey(base), SweepKey(MustParse("smoke;seed=7")));
  EXPECT_NE(SweepKey(base), SweepKey(MustParse("smoke;mixes=1")));
  EXPECT_NE(SweepKey(base), SweepKey(MustParse("smoke;policies=equi")));
  EXPECT_NE(SweepKey(base), SweepKey(MustParse("smoke;observability=1")));
  EXPECT_NE(SweepKey(base), SweepKey(MustParse("smoke;balance-interval=10")));
  EXPECT_NE(SweepKey(base), SweepKey(MustParse("smoke;topology=cmp-2x10")));
  // Real-time fields are identity: the deadline stamp and the partitioned
  // substrate both change every cell's stats.
  EXPECT_NE(SweepKey(base), SweepKey(MustParse("smoke;rt=1")));
  EXPECT_NE(SweepKey(base), SweepKey(MustParse("smoke;colors=8")));
  EXPECT_NE(SweepKey(MustParse("smoke;rt=1")),
            SweepKey(MustParse("smoke;rt=1;deadline-mix=hard")));
  EXPECT_NE(SweepKey(MustParse("smoke;colors=8")), SweepKey(MustParse("smoke;colors=4")));
}

TEST(SpecCanonTest, CellKeyIgnoresGridShape) {
  // A cell is addressed by what its simulation consumes; which *other*
  // policies ran, the replication bounds, and the observability flag are
  // grid shape. Widening the sweep must reuse the narrow sweep's cells.
  const SweepSpec narrow = MustParse("smoke;policies=equi;reps=2");
  const SweepSpec wide = MustParse("smoke;policies=equi,dyn-aff;reps=2-8;observability=1");
  const uint64_t seed = DeriveCellSeed(narrow.root_seed, 1, 0);
  EXPECT_EQ(CellKeyWithRev(narrow, PolicyKind::kEquipartition, 1, 0, seed, "rev"),
            CellKeyWithRev(wide, PolicyKind::kEquipartition, 1, 0, seed, "rev"));
}

TEST(SpecCanonTest, CellKeyCoversSimulationInputs) {
  const SweepSpec spec = MustParse("smoke");
  const uint64_t seed = DeriveCellSeed(spec.root_seed, 1, 0);
  const std::string base = CellKeyWithRev(spec, PolicyKind::kEquipartition, 1, 0, seed, "rev");
  // Policy, coordinates, seed, build revision: all identity.
  EXPECT_NE(base, CellKeyWithRev(spec, PolicyKind::kDynAff, 1, 0, seed, "rev"));
  EXPECT_NE(base, CellKeyWithRev(spec, PolicyKind::kEquipartition, 5, 0, seed, "rev"));
  EXPECT_NE(base, CellKeyWithRev(spec, PolicyKind::kEquipartition, 1, 1, seed, "rev"));
  EXPECT_NE(base, CellKeyWithRev(spec, PolicyKind::kEquipartition, 1, 0, seed + 1, "rev"));
  EXPECT_NE(base, CellKeyWithRev(spec, PolicyKind::kEquipartition, 1, 0, seed, "rev2"));
  // Machine fields are identity too.
  EXPECT_NE(base, CellKeyWithRev(MustParse("smoke;procs=8"), PolicyKind::kEquipartition, 1, 0,
                                 seed, "rev"));
  EXPECT_NE(base, CellKeyWithRev(MustParse("smoke;cache=2"), PolicyKind::kEquipartition, 1, 0,
                                 seed, "rev"));
  // The rt stamp and the color budget feed the simulation, so they are cell
  // identity (unlike grid shape).
  EXPECT_NE(base, CellKeyWithRev(MustParse("smoke;rt=1"), PolicyKind::kEquipartition, 1, 0,
                                 seed, "rev"));
  EXPECT_NE(base, CellKeyWithRev(MustParse("smoke;colors=8"), PolicyKind::kEquipartition, 1, 0,
                                 seed, "rev"));
}

TEST(SpecCanonTest, KeysAreWellFormedHex) {
  const SweepSpec spec = MustParse("smoke");
  const std::string sweep_key = SweepKey(spec);
  EXPECT_EQ(sweep_key.size(), 16u);
  const std::string cell_key =
      CellKeyWithRev(spec, PolicyKind::kEquipartition, 1, 0, 123, "rev");
  EXPECT_EQ(cell_key.size(), 32u);
  for (const char c : cell_key) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << cell_key;
  }
}

TEST(SpecCanonTest, Fnv1aIsStable) {
  // Pin the digest so cache keys never drift silently across refactors
  // (entries written by older builds of the *same* git revision must stay
  // reachable).
  EXPECT_EQ(Fnv1a64(""), 14695981039346656037ull);
  EXPECT_EQ(Fnv1a64("a"), 12638187200555641996ull);
  EXPECT_EQ(HashHex(0), "0000000000000000");
  EXPECT_EQ(HashHex(0xdeadbeefull), "00000000deadbeef");
}

}  // namespace
}  // namespace affsched
