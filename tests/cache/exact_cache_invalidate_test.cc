// Block-level invalidation paths of the exact cache (used by the coherence
// layer).

#include <gtest/gtest.h>

#include "src/cache/exact_cache.h"

namespace affsched {
namespace {

CacheGeometry SmallGeometry() {
  return CacheGeometry{.line_bytes = 16, .total_bytes = 16 * 16, .ways = 2};
}

TEST(ExactCacheInvalidateTest, InvalidateResidentBlock) {
  ExactCache c(SmallGeometry());
  c.Access(1, 5);
  EXPECT_TRUE(c.InvalidateBlock(1, 5));
  EXPECT_FALSE(c.Contains(1, 5));
  EXPECT_EQ(c.ResidentLines(1), 0u);
  EXPECT_EQ(c.OccupiedLines(), 0u);
}

TEST(ExactCacheInvalidateTest, InvalidateAbsentBlockIsNoop) {
  ExactCache c(SmallGeometry());
  c.Access(1, 5);
  EXPECT_FALSE(c.InvalidateBlock(1, 6));
  EXPECT_FALSE(c.InvalidateBlock(2, 5));  // other owner's space
  EXPECT_EQ(c.ResidentLines(1), 1u);
}

TEST(ExactCacheInvalidateTest, InvalidatedWayIsReusedFirst) {
  ExactCache c(SmallGeometry());  // 8 sets x 2 ways
  c.Access(1, 0);
  c.Access(1, 8);  // set 0 now full
  c.InvalidateBlock(1, 0);
  // The next fill in set 0 must take the freed way, not evict block 8.
  const auto result = c.Access(1, 16);
  EXPECT_EQ(result.evicted_owner, kNoOwner);
  EXPECT_TRUE(c.Contains(1, 8));
  EXPECT_TRUE(c.Contains(1, 16));
}

TEST(ExactCacheInvalidateTest, EvictionReportsBlock) {
  ExactCache c(SmallGeometry());
  c.Access(1, 0);
  c.Access(1, 8);
  const auto result = c.Access(1, 16);  // evicts LRU (block 0)
  EXPECT_EQ(result.evicted_owner, 1u);
  EXPECT_EQ(result.evicted_block, 0u);
}

TEST(ExactCacheInvalidateTest, ReaccessAfterInvalidationMisses) {
  ExactCache c(SmallGeometry());
  c.Access(1, 3);
  c.InvalidateBlock(1, 3);
  EXPECT_FALSE(c.Access(1, 3).hit);
}

}  // namespace
}  // namespace affsched
