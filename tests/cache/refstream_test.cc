#include "src/cache/refstream.h"

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "src/cache/exact_cache.h"

namespace affsched {
namespace {

TEST(ReferenceStreamTest, ReferencesStayInWorkingSetWithoutStreaming) {
  ReferenceStreamParams params;
  params.working_set_blocks = 100;
  params.streaming_fraction = 0.0;
  ReferenceStream stream(params, 1);
  std::unordered_set<uint64_t> ws(stream.working_set().begin(), stream.working_set().end());
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(ws.count(stream.Next()) > 0);
  }
}

TEST(ReferenceStreamTest, BuildupFollowsExponentialCurve) {
  // Uniform sampling of W blocks: distinct touched after n refs is
  // W(1 - (1-1/W)^n). Check at n = W (one "time constant").
  ReferenceStreamParams params;
  params.working_set_blocks = 2000;
  ReferenceStream stream(params, 2);
  std::unordered_set<uint64_t> touched;
  for (size_t i = 0; i < params.working_set_blocks; ++i) {
    touched.insert(stream.Next());
  }
  const double expected = 2000.0 * (1.0 - std::exp(-1.0));
  EXPECT_NEAR(static_cast<double>(touched.size()), expected, 0.05 * expected);
}

TEST(ReferenceStreamTest, StreamingFractionCreatesFreshBlocks) {
  ReferenceStreamParams params;
  params.working_set_blocks = 100;
  params.streaming_fraction = 0.3;
  ReferenceStream stream(params, 3);
  std::unordered_set<uint64_t> ws(stream.working_set().begin(), stream.working_set().end());
  int fresh = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (ws.count(stream.Next()) == 0) {
      ++fresh;
    }
  }
  EXPECT_NEAR(static_cast<double>(fresh) / n, 0.3, 0.02);
}

TEST(ReferenceStreamTest, FreshBlocksNeverRepeat) {
  // Streaming references are compulsory misses in a cold cache: every one is
  // distinct.
  ReferenceStreamParams params;
  params.working_set_blocks = 10;
  params.streaming_fraction = 1.0;
  ReferenceStream stream(params, 4);
  std::unordered_set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    EXPECT_TRUE(seen.insert(stream.Next()).second);
  }
}

TEST(ReferenceStreamTest, TurnOverReplacesTail) {
  ReferenceStreamParams params;
  params.working_set_blocks = 1000;
  ReferenceStream stream(params, 5);
  const std::vector<uint64_t> before = stream.working_set();
  stream.TurnOver(0.7);
  const std::vector<uint64_t>& after = stream.working_set();
  size_t kept = 0;
  for (size_t i = 0; i < 700; ++i) {
    kept += before[i] == after[i] ? 1 : 0;
  }
  EXPECT_EQ(kept, 700u);
  size_t changed = 0;
  for (size_t i = 700; i < 1000; ++i) {
    changed += before[i] != after[i] ? 1 : 0;
  }
  EXPECT_GT(changed, 295u);  // random draws; collision with old value ~0
}

TEST(ReferenceStreamTest, DeterministicPerSeed) {
  ReferenceStreamParams params;
  params.working_set_blocks = 50;
  params.streaming_fraction = 0.1;
  ReferenceStream a(params, 7);
  ReferenceStream b(params, 7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(ReferenceStreamTest, SteadyStateMissRateDominatedByStreaming) {
  // Once the working set is resident, misses are the streaming references
  // (5% floor) plus the conflict misses those streams induce by displacing
  // working-set lines — a real cache effect, so the rate sits somewhat above
  // the floor but well below double it.
  ReferenceStreamParams params;
  params.working_set_blocks = 1000;
  params.streaming_fraction = 0.05;
  ReferenceStream stream(params, 8);
  ExactCache cache(CacheGeometry{});
  // Warm up.
  for (int i = 0; i < 20000; ++i) {
    cache.Access(1, stream.Next());
  }
  cache.ResetCounters();
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    cache.Access(1, stream.Next());
  }
  const double miss_rate = static_cast<double>(cache.misses()) / n;
  EXPECT_GE(miss_rate, 0.05 - 0.005);
  EXPECT_LT(miss_rate, 0.10);
}

}  // namespace
}  // namespace affsched
