// Parameterized property sweep over the footprint model: invariants that
// must hold for any (working set, tau, duration, interference) combination.

#include <gtest/gtest.h>

#include <cmath>

#include "src/cache/footprint.h"

namespace affsched {
namespace {

struct FootprintCase {
  double blocks;
  double tau_s;
  double steady;
};

class FootprintPropertyTest : public ::testing::TestWithParam<FootprintCase> {
 protected:
  static constexpr double kCapacity = 4096.0;
  WorkingSetParams Ws() const {
    const FootprintCase c = GetParam();
    return WorkingSetParams{.blocks = c.blocks, .buildup_tau_s = c.tau_s,
                            .steady_miss_per_s = c.steady};
  }
};

TEST_P(FootprintPropertyTest, ResidencyMonotoneUnderExecution) {
  FootprintCache cache(kCapacity);
  double prev = 0.0;
  for (int step = 0; step < 50; ++step) {
    cache.RunChunk(1, Ws(), 0.002);
    const double now = cache.Resident(1);
    EXPECT_GE(now + 1e-9, prev);
    prev = now;
  }
}

TEST_P(FootprintPropertyTest, ResidencyNeverExceedsCapOrCapacity) {
  FootprintCache cache(kCapacity);
  for (int step = 0; step < 100; ++step) {
    cache.RunChunk(1, Ws(), 0.01);
    EXPECT_LE(cache.Resident(1), cache.MaxResident(Ws().blocks) + 1e-6);
    EXPECT_LE(cache.Occupied(), kCapacity + 1e-6);
  }
}

TEST_P(FootprintPropertyTest, ChunkSplittingIsConsistent) {
  // Running 10 ms in one chunk or in five 2 ms chunks reaches the same
  // resident footprint (the exponential buildup composes).
  FootprintCache one(kCapacity);
  one.RunChunk(1, Ws(), 0.010);
  FootprintCache many(kCapacity);
  for (int i = 0; i < 5; ++i) {
    many.RunChunk(1, Ws(), 0.002);
  }
  EXPECT_NEAR(one.Resident(1), many.Resident(1), 1e-6 * kCapacity);
}

TEST_P(FootprintPropertyTest, ReloadMissesEqualFootprintGrowth) {
  FootprintCache cache(kCapacity);
  for (int step = 0; step < 20; ++step) {
    const double before = cache.Resident(1);
    const auto result = cache.RunChunk(1, Ws(), 0.005);
    const double after = cache.Resident(1);
    EXPECT_NEAR(result.reload_misses, after - before, 1e-6);
  }
}

TEST_P(FootprintPropertyTest, InterferenceOnlyShrinksOthers) {
  FootprintCache cache(kCapacity);
  cache.RunChunk(1, Ws(), 1.0);
  const double mine = cache.Resident(1);
  const WorkingSetParams other{.blocks = 2000.0, .buildup_tau_s = 0.01,
                               .steady_miss_per_s = 0.0};
  cache.RunChunk(2, other, 0.05);
  EXPECT_LE(cache.Resident(1), mine + 1e-9);
  EXPECT_GE(cache.Resident(2), 0.0);
  EXPECT_LE(cache.Occupied(), kCapacity + 1e-6);
}

TEST_P(FootprintPropertyTest, FlushResetsEverything) {
  FootprintCache cache(kCapacity);
  cache.RunChunk(1, Ws(), 0.5);
  cache.RunChunk(2, Ws(), 0.5);
  cache.Flush();
  EXPECT_DOUBLE_EQ(cache.Occupied(), 0.0);
  EXPECT_DOUBLE_EQ(cache.Resident(1), 0.0);
  EXPECT_DOUBLE_EQ(cache.Resident(2), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FootprintPropertyTest,
    ::testing::Values(FootprintCase{100.0, 0.001, 0.0},      // tiny, instant
                      FootprintCase{500.0, 0.02, 1000.0},    // small with streaming
                      FootprintCase{2000.0, 0.05, 0.0},      // mid
                      FootprintCase{2650.0, 0.035, 2000.0},  // MATRIX calibration
                      FootprintCase{4500.0, 0.052, 12000.0}, // MVA calibration
                      FootprintCase{5600.0, 0.125, 20000.0}, // GRAVITY calibration
                      FootprintCase{10000.0, 0.2, 50000.0}   // far beyond capacity
                      ),
    [](const ::testing::TestParamInfo<FootprintCase>& info) {
      return "W" + std::to_string(static_cast<int>(info.param.blocks)) + "_t" +
             std::to_string(static_cast<int>(info.param.tau_s * 1000));
    });

}  // namespace
}  // namespace affsched
