// Validates the FootprintCache ejection approximation against the exact
// set-associative cache: after task B streams its working set through a cache
// holding task A's context, both models should agree (to tolerance) on how
// much of A's footprint survives.

#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>
#include <vector>

#include "src/cache/exact_cache.h"
#include "src/cache/footprint.h"
#include "src/common/rng.h"

namespace affsched {
namespace {

// Draws `count` distinct block addresses from a large space so set placement
// is effectively random (as virtually-addressed working sets are).
std::vector<uint64_t> RandomBlocks(Rng& rng, size_t count) {
  std::unordered_set<uint64_t> chosen;
  std::vector<uint64_t> blocks;
  while (blocks.size() < count) {
    const uint64_t b = rng.NextBounded(1u << 24);
    if (chosen.insert(b).second) {
      blocks.push_back(b);
    }
  }
  return blocks;
}

// Touches every block a few times (the steady state of a task's execution).
void TouchAll(ExactCache& cache, CacheOwner owner, const std::vector<uint64_t>& blocks,
              int passes = 3) {
  for (int p = 0; p < passes; ++p) {
    for (uint64_t b : blocks) {
      cache.Access(owner, b);
    }
  }
}

struct SurvivalCase {
  size_t wa;  // task A working set, blocks
  size_t wb;  // intervening task B working set, blocks
};

class FootprintVsExactTest : public ::testing::TestWithParam<SurvivalCase> {};

TEST_P(FootprintVsExactTest, EjectionAgreesWithinTolerance) {
  const SurvivalCase c = GetParam();
  const CacheGeometry geometry{};  // Symmetry: 4096 lines, 2-way
  const double capacity = static_cast<double>(geometry.TotalLines());

  Rng rng(0xFEEDu + c.wa * 131 + c.wb);
  const auto blocks_a = RandomBlocks(rng, c.wa);
  const auto blocks_b = RandomBlocks(rng, c.wb);

  // Exact simulation.
  ExactCache exact(geometry);
  TouchAll(exact, 1, blocks_a);
  const double resident_before = static_cast<double>(exact.ResidentLines(1));
  TouchAll(exact, 2, blocks_b);
  const double exact_survivors = static_cast<double>(exact.ResidentLines(1));

  // Footprint model, driven to the same pre-interference state.
  FootprintCache model(capacity);
  model.SetResident(1, resident_before);
  const WorkingSetParams ws_b{.blocks = static_cast<double>(c.wb),
                              .buildup_tau_s = 0.01,
                              .steady_miss_per_s = 0.0};
  model.RunChunk(2, ws_b, 1.0);  // long enough to touch all of B's set
  const double model_survivors = model.Resident(1);

  // The exponential-ejection approximation should track the exact cache to
  // within 15% of total capacity across regimes.
  EXPECT_NEAR(model_survivors, exact_survivors, 0.15 * capacity)
      << "A=" << c.wa << " B=" << c.wb << " exact=" << exact_survivors
      << " model=" << model_survivors;

  // Directionality: light interference leaves most of A intact in both
  // models (set conflicts cost a little even below global capacity).
  if (resident_before + static_cast<double>(c.wb) < 0.5 * capacity) {
    EXPECT_GT(exact_survivors, 0.75 * resident_before);
    EXPECT_GT(model_survivors, 0.75 * resident_before);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SurvivalRegimes, FootprintVsExactTest,
    ::testing::Values(SurvivalCase{500, 500},    // both small: no interference
                      SurvivalCase{1000, 2000},  // fits together
                      SurvivalCase{2000, 2000},  // borderline
                      SurvivalCase{3000, 1500},  // partial ejection
                      SurvivalCase{3000, 3000},  // heavy ejection
                      SurvivalCase{3500, 3900}   // near-total ejection
                      ));

TEST(FootprintVsExactTest, ColdReloadCountsAgree) {
  // After a flush, both models reload exactly the working set.
  const CacheGeometry geometry{};
  Rng rng(77);
  const auto blocks = RandomBlocks(rng, 2500);

  ExactCache exact(geometry);
  TouchAll(exact, 1, blocks);
  exact.Flush();
  exact.ResetCounters();
  TouchAll(exact, 1, blocks, 1);
  const double exact_reloads = static_cast<double>(exact.misses());

  FootprintCache model(static_cast<double>(geometry.TotalLines()));
  const WorkingSetParams ws{.blocks = 2500.0, .buildup_tau_s = 0.01, .steady_miss_per_s = 0.0};
  model.RunChunk(1, ws, 1.0);
  model.Flush();
  const auto result = model.RunChunk(1, ws, 1.0);

  // The model reloads the occupancy-capped footprint (self-conflicting
  // blocks' repeated misses are the steady-state rate's job); the exact cache
  // sees the compulsory 2500 plus a few conflict misses.
  EXPECT_NEAR(result.reload_misses, model.MaxResident(2500.0), 1.0);
  EXPECT_GE(exact_reloads, 2500.0);
  EXPECT_LT(exact_reloads, 2500.0 * 1.2);
  // The two agree within the documented tolerance.
  EXPECT_NEAR(result.reload_misses, exact_reloads, 0.15 * 4096.0);
}

TEST(FootprintVsExactTest, OrderingPreservedAcrossInterferenceLevels) {
  // More interference must mean fewer survivors in both models.
  const CacheGeometry geometry{};
  const double capacity = static_cast<double>(geometry.TotalLines());
  Rng rng(99);
  const auto blocks_a = RandomBlocks(rng, 3000);

  double prev_exact = capacity;
  double prev_model = capacity;
  for (size_t wb : {500u, 1500u, 2500u, 3500u}) {
    Rng inner(1000 + wb);
    const auto blocks_b = RandomBlocks(inner, wb);
    ExactCache exact(geometry);
    TouchAll(exact, 1, blocks_a);
    const double before = static_cast<double>(exact.ResidentLines(1));
    TouchAll(exact, 2, blocks_b);
    const double exact_survivors = static_cast<double>(exact.ResidentLines(1));

    FootprintCache model(capacity);
    model.SetResident(1, before);
    const WorkingSetParams ws_b{.blocks = static_cast<double>(wb),
                                .buildup_tau_s = 0.01,
                                .steady_miss_per_s = 0.0};
    model.RunChunk(2, ws_b, 1.0);
    const double model_survivors = model.Resident(1);

    EXPECT_LE(exact_survivors, prev_exact + 1e-9);
    EXPECT_LE(model_survivors, prev_model + 1e-9);
    prev_exact = exact_survivors;
    prev_model = model_survivors;
  }
}

}  // namespace
}  // namespace affsched
