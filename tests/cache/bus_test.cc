#include "src/cache/bus.h"

#include <gtest/gtest.h>

namespace affsched {
namespace {

TEST(SharedBusTest, IdleBusHasNoInflation) {
  SharedBus bus;
  EXPECT_DOUBLE_EQ(bus.Utilization(0), 0.0);
  EXPECT_DOUBLE_EQ(bus.InflationFactor(Seconds(1)), 1.0);
}

TEST(SharedBusTest, TrafficRaisesUtilization) {
  SharedBus bus;
  bus.RecordTraffic(0, 10000.0);  // 10k transfers x 0.45 us = 4.5 ms busy
  EXPECT_GT(bus.Utilization(0), 0.0);
  EXPECT_GT(bus.InflationFactor(0), 1.0);
}

TEST(SharedBusTest, UtilizationDecaysOverTime) {
  SharedBus bus;
  bus.RecordTraffic(0, 10000.0);
  const double early = bus.Utilization(Milliseconds(1));
  const double late = bus.Utilization(Milliseconds(100));
  EXPECT_GT(early, late);
  EXPECT_NEAR(late, 0.0, 1e-3);
}

TEST(SharedBusTest, InflationIsCapped) {
  SharedBus::Config config;
  config.max_inflation = 3.0;
  SharedBus bus(config);
  bus.RecordTraffic(0, 1e9);  // absurd traffic
  EXPECT_LE(bus.InflationFactor(0), 3.0);
}

TEST(SharedBusTest, UtilizationNeverReachesOne) {
  SharedBus bus;
  bus.RecordTraffic(0, 1e9);
  EXPECT_LT(bus.Utilization(0), 1.0);
}

TEST(SharedBusTest, SteadyTrafficApproximatesRate) {
  // 16 processors missing at 2000/s each => 32k misses/s x 0.45us = 1.44%
  // utilisation.
  SharedBus bus;
  SimTime now = 0;
  for (int i = 0; i < 2000; ++i) {
    now += Milliseconds(1);
    bus.RecordTraffic(now, 32.0);  // 32 misses per ms
  }
  EXPECT_NEAR(bus.Utilization(now), 0.0144, 0.004);
}

TEST(SharedBusTest, ZeroTransferTimeMeansFreeBus) {
  SharedBus::Config config;
  config.transfer_seconds = 0.0;
  SharedBus bus(config);
  bus.RecordTraffic(0, 1e9);
  EXPECT_DOUBLE_EQ(bus.InflationFactor(0), 1.0);
}

}  // namespace
}  // namespace affsched
