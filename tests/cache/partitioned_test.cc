#include "src/cache/partitioned.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/cache/footprint.h"

namespace affsched {
namespace {

constexpr double kCapacity = 4096.0;

WorkingSetParams TestWs(double blocks = 2000.0, double tau = 0.05, double steady = 0.0) {
  return WorkingSetParams{.blocks = blocks, .buildup_tau_s = tau, .steady_miss_per_s = steady};
}

TEST(PartitionedCacheTest, FullColorMaskBasics) {
  EXPECT_EQ(FullColorMask(1), 0x1ull);
  EXPECT_EQ(FullColorMask(8), 0xFFull);
  EXPECT_EQ(FullColorMask(64), kAllColors);
}

TEST(PartitionedCacheTest, ReservationTrimsToMachineColors) {
  PartitionedCacheModel cache(kCapacity, 2, 4);
  cache.ReserveColors(1, kAllColors);
  EXPECT_EQ(cache.ReservedColors(1), FullColorMask(4));
  // Owners without an explicit reservation default to every color.
  EXPECT_EQ(cache.ReservedColors(2), FullColorMask(4));
}

// With all-ones masks the eviction algebra collapses term for term onto
// FootprintCache (n_sh == n_o == n_own, shared capacity == full capacity),
// so the partitioned substrate is a strict generalisation of the flat one.
TEST(PartitionedCacheTest, AllColorsReservedMatchesFootprintCache) {
  PartitionedCacheModel partitioned(kCapacity, 2, 8);
  FootprintCache flat(kCapacity, 2);
  const WorkingSetParams a = TestWs(2000.0, 0.05, 50.0);
  const WorkingSetParams b = TestWs(900.0, 0.03, 10.0);
  for (int round = 0; round < 5; ++round) {
    const auto pa = partitioned.RunChunk(1, a, 0.04);
    const auto fa = flat.RunChunk(1, a, 0.04);
    EXPECT_NEAR(pa.reload_misses, fa.reload_misses, 1e-9);
    EXPECT_NEAR(pa.steady_misses, fa.steady_misses, 1e-9);
    const auto pb = partitioned.RunChunk(2, b, 0.07);
    const auto fb = flat.RunChunk(2, b, 0.07);
    EXPECT_NEAR(pb.reload_misses, fb.reload_misses, 1e-9);
    EXPECT_NEAR(pb.steady_misses, fb.steady_misses, 1e-9);
  }
  EXPECT_NEAR(partitioned.Resident(1), flat.Resident(1), 1e-9);
  EXPECT_NEAR(partitioned.Resident(2), flat.Resident(2), 1e-9);
  EXPECT_NEAR(partitioned.Occupied(), flat.Occupied(), 1e-9);
}

TEST(PartitionedCacheTest, ZeroReservedColorsIsAlwaysCold) {
  PartitionedCacheModel cache(kCapacity, 2, 8);
  cache.ReserveColors(2, 0x0Full);
  cache.SetResident(2, 400.0);
  cache.ReserveColors(1, 0);

  const WorkingSetParams ws = TestWs(1000.0, 0.05);
  const auto first = cache.RunChunk(1, ws, 10.0);  // >> tau: full touch
  // Every distinct block misses; nothing becomes resident.
  EXPECT_NEAR(first.reload_misses, cache.MaxResident(1000.0), 1e-6);
  EXPECT_DOUBLE_EQ(cache.Resident(1), 0.0);
  // Running again pays the full reload again — no warmth accumulates.
  const auto second = cache.RunChunk(1, ws, 10.0);
  EXPECT_NEAR(second.reload_misses, first.reload_misses, 1e-9);
  // With nowhere to insert, no other owner is disturbed.
  EXPECT_DOUBLE_EQ(cache.Resident(2), 400.0);
  EXPECT_DOUBLE_EQ(cache.interference_evictions(), 0.0);
}

TEST(PartitionedCacheTest, ColorCountNeedNotDivideCapacity) {
  // 1000 blocks over 7 colors: slices are fractional but exact in aggregate.
  PartitionedCacheModel cache(1000.0, 2, 7);
  EXPECT_NEAR(cache.ColorCapacity(), 1000.0 / 7.0, 1e-12);
  EXPECT_NEAR(cache.ReservedCapacity(FullColorMask(7)), 1000.0, 1e-9);
  EXPECT_NEAR(cache.ReservedCapacity(0x7ull), 3000.0 / 7.0, 1e-9);

  cache.ReserveColors(1, 0x7ull);  // three of seven colors
  const auto result = cache.RunChunk(1, TestWs(5000.0, 0.05), 10.0);
  // A huge working set saturates the reservation, never the whole cache.
  const double reserved = cache.ReservedCapacity(0x7ull);
  EXPECT_LE(cache.Resident(1), reserved + 1e-9);
  EXPECT_GT(cache.Resident(1), 0.9 * reserved);
  EXPECT_GT(result.reload_misses, 0.0);
  // MaxResident scores against the full cache (reservation-independent).
  EXPECT_GT(cache.MaxResident(5000.0), reserved);
}

TEST(PartitionedCacheTest, DisjointReservationsAreIsolated) {
  PartitionedCacheModel cache(kCapacity, 2, 8);
  cache.ReserveColors(1, 0x03ull);  // colors {0,1}
  cache.ReserveColors(2, 0x0Cull);  // colors {2,3}
  cache.SetResident(2, 500.0);
  cache.RunChunk(1, TestWs(3000.0, 0.05, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(cache.Resident(2), 500.0);
  EXPECT_DOUBLE_EQ(cache.interference_evictions(), 0.0);
  EXPECT_DOUBLE_EQ(cache.InterferenceOn(2), 0.0);
}

// Hand-computed worst case: owner 1 (two colors) overlaps owner 2 (two
// colors) on exactly one color. Every term below follows the model comment
// in src/cache/partitioned.h.
TEST(PartitionedCacheTest, TwoJobSharedColorInterferenceMatchesHandComputation) {
  PartitionedCacheModel cache(kCapacity, 2, 8);
  const double color_capacity = kCapacity / 8.0;  // 512
  const ColorMask mask1 = 0x03ull;                // colors {0,1}
  const ColorMask mask2 = 0x06ull;                // colors {1,2}; shares color 1
  cache.ReserveColors(1, mask1);
  cache.ReserveColors(2, mask2);
  cache.SetResident(2, 300.0);

  const WorkingSetParams ws = TestWs(800.0, 0.05, 40.0);
  const double seconds = 0.1;
  const auto result = cache.RunChunk(1, ws, seconds);

  // Reload: buildup toward the reservation-capped working set from cold.
  const double w_eff = ExpectedMaxResident(cache.ReservedCapacity(mask1), 2, 800.0);
  const double touch = 1.0 - std::exp(-seconds / 0.05);
  const double expected_reload = w_eff * touch;
  EXPECT_NEAR(result.reload_misses, expected_reload, 1e-9);
  EXPECT_NEAR(result.steady_misses, 40.0 * seconds, 1e-12);

  // Interference: victim keeps half its footprint on the contested color
  // (n_sh/n_o = 1/2); half the insertions are directed there (n_sh/n_own =
  // 1/2); each sweeps the one-color slice.
  const double evicting = expected_reload + 40.0 * seconds;
  const double vulnerable = 300.0 * 0.5;
  const double directed = evicting * 0.5;
  const double survival = std::pow(1.0 - 1.0 / color_capacity, directed);
  const double expected_lost = vulnerable * (1.0 - survival);
  EXPECT_NEAR(cache.interference_evictions(), expected_lost, 1e-9);
  EXPECT_NEAR(cache.InterferenceOn(2), expected_lost, 1e-9);
  EXPECT_NEAR(cache.Resident(2), 300.0 - expected_lost, 1e-9);
  EXPECT_NEAR(cache.Occupied(), cache.Resident(1) + cache.Resident(2), 1e-9);
}

TEST(PartitionedCacheTest, RemoveOwnerDropsReservationAndFootprint) {
  PartitionedCacheModel cache(kCapacity, 2, 4);
  cache.ReserveColors(1, 0x1ull);
  cache.RunChunk(1, TestWs(500.0), 1.0);
  EXPECT_GT(cache.Resident(1), 0.0);
  cache.RemoveOwner(1);
  EXPECT_DOUBLE_EQ(cache.Resident(1), 0.0);
  EXPECT_EQ(cache.ReservedColors(1), FullColorMask(4));  // back to default
  EXPECT_DOUBLE_EQ(cache.Occupied(), 0.0);
}

}  // namespace
}  // namespace affsched
