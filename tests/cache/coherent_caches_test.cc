#include "src/cache/coherent_caches.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace affsched {
namespace {

constexpr CacheOwner kJob = 7;

CoherentCaches MakeCaches(size_t n = 4) { return CoherentCaches(n, CacheGeometry{}); }

TEST(CoherentCachesTest, ReadFillsLocalCacheOnly) {
  CoherentCaches caches = MakeCaches();
  const auto r = caches.Access(0, kJob, 100, CoherentCaches::AccessType::kRead);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(caches.ResidentIn(0, kJob, 100));
  EXPECT_FALSE(caches.ResidentIn(1, kJob, 100));
  EXPECT_EQ(caches.SharerCount(kJob, 100), 1u);
}

TEST(CoherentCachesTest, SecondReadHits) {
  CoherentCaches caches = MakeCaches();
  caches.Access(0, kJob, 100, CoherentCaches::AccessType::kRead);
  EXPECT_TRUE(caches.Access(0, kJob, 100, CoherentCaches::AccessType::kRead).hit);
}

TEST(CoherentCachesTest, LineMayBeSharedByManyReaders) {
  CoherentCaches caches = MakeCaches();
  for (size_t c = 0; c < 4; ++c) {
    caches.Access(c, kJob, 55, CoherentCaches::AccessType::kRead);
  }
  EXPECT_EQ(caches.SharerCount(kJob, 55), 4u);
  EXPECT_TRUE(caches.CheckConsistency());
}

TEST(CoherentCachesTest, WriteInvalidatesAllOtherCopies) {
  CoherentCaches caches = MakeCaches();
  for (size_t c = 0; c < 4; ++c) {
    caches.Access(c, kJob, 55, CoherentCaches::AccessType::kRead);
  }
  const auto w = caches.Access(0, kJob, 55, CoherentCaches::AccessType::kWrite);
  EXPECT_EQ(w.remote_invalidations, 3u);
  EXPECT_EQ(caches.SharerCount(kJob, 55), 1u);
  EXPECT_TRUE(caches.DirtyIn(0, kJob, 55));
  for (size_t c = 1; c < 4; ++c) {
    EXPECT_FALSE(caches.ResidentIn(c, kJob, 55));
  }
  EXPECT_TRUE(caches.CheckConsistency());
}

TEST(CoherentCachesTest, ReadAfterRemoteWriteIsDirtySupply) {
  CoherentCaches caches = MakeCaches();
  caches.Access(0, kJob, 9, CoherentCaches::AccessType::kWrite);
  const auto r = caches.Access(1, kJob, 9, CoherentCaches::AccessType::kRead);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.dirty_supply);
  // The line is now clean-shared in both caches.
  EXPECT_EQ(caches.SharerCount(kJob, 9), 2u);
  EXPECT_FALSE(caches.DirtyIn(0, kJob, 9));
  EXPECT_TRUE(caches.CheckConsistency());
}

TEST(CoherentCachesTest, WriteToSharedLineIsAnUpgrade) {
  CoherentCaches caches = MakeCaches();
  caches.Access(0, kJob, 3, CoherentCaches::AccessType::kRead);
  caches.Access(1, kJob, 3, CoherentCaches::AccessType::kRead);
  // Writing a shared (non-exclusive) local copy requires an invalidation
  // round: not a silent hit.
  const auto w = caches.Access(0, kJob, 3, CoherentCaches::AccessType::kWrite);
  EXPECT_FALSE(w.hit);
  EXPECT_EQ(w.remote_invalidations, 1u);
}

TEST(CoherentCachesTest, ExclusiveWriterHitsRepeatedly) {
  CoherentCaches caches = MakeCaches();
  caches.Access(0, kJob, 3, CoherentCaches::AccessType::kWrite);
  const auto w2 = caches.Access(0, kJob, 3, CoherentCaches::AccessType::kWrite);
  EXPECT_TRUE(w2.hit);
  EXPECT_EQ(w2.remote_invalidations, 0u);
}

TEST(CoherentCachesTest, PingPongWritesCountInvalidations) {
  // The classic coherence pathology: two processors alternately writing the
  // same line invalidate each other every time.
  CoherentCaches caches = MakeCaches(2);
  size_t invalidations = 0;
  for (int round = 0; round < 10; ++round) {
    invalidations += caches.Access(round % 2, kJob, 77,
                                   CoherentCaches::AccessType::kWrite).remote_invalidations;
  }
  EXPECT_EQ(invalidations, 9u);  // every write after the first invalidates
  EXPECT_TRUE(caches.CheckConsistency());
}

TEST(CoherentCachesTest, EvictionUpdatesDirectory) {
  // Fill one set past capacity and check the directory never goes stale.
  CoherentCaches caches = MakeCaches(2);
  const size_t sets = CacheGeometry{}.NumSets();
  // Three blocks mapping to set 0 in a 2-way cache: one gets evicted.
  caches.Access(0, kJob, 0 * sets, CoherentCaches::AccessType::kRead);
  caches.Access(0, kJob, 1 * sets, CoherentCaches::AccessType::kRead);
  caches.Access(0, kJob, 2 * sets, CoherentCaches::AccessType::kRead);
  EXPECT_TRUE(caches.CheckConsistency());
  EXPECT_EQ(caches.SharerCount(kJob, 0 * sets), 0u);  // LRU victim
}

TEST(CoherentCachesTest, DirtyEvictionIsACopyBack) {
  CoherentCaches caches = MakeCaches(1);
  const size_t sets = CacheGeometry{}.NumSets();
  caches.Access(0, kJob, 0 * sets, CoherentCaches::AccessType::kWrite);
  const uint64_t before = caches.total_bus_transfers();
  caches.Access(0, kJob, 1 * sets, CoherentCaches::AccessType::kRead);
  caches.Access(0, kJob, 2 * sets, CoherentCaches::AccessType::kRead);  // evicts dirty line
  // The eviction of the dirty line adds a copy-back transfer on top of the
  // fill itself.
  EXPECT_GE(caches.total_bus_transfers(), before + 3);
  EXPECT_TRUE(caches.CheckConsistency());
}

TEST(CoherentCachesTest, DistinctOwnersDoNotInterfere) {
  CoherentCaches caches = MakeCaches(2);
  caches.Access(0, 1, 42, CoherentCaches::AccessType::kWrite);
  const auto w = caches.Access(1, 2, 42, CoherentCaches::AccessType::kWrite);
  EXPECT_EQ(w.remote_invalidations, 0u);  // different address spaces
  EXPECT_TRUE(caches.ResidentIn(0, 1, 42));
  EXPECT_TRUE(caches.ResidentIn(1, 2, 42));
}

TEST(CoherentCachesTest, RandomSoakStaysConsistent) {
  CoherentCaches caches = MakeCaches(4);
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) {
    const size_t cache = rng.NextBounded(4);
    const CacheOwner owner = 1 + rng.NextBounded(2);
    const uint64_t block = rng.NextBounded(6000);
    const auto type = rng.NextBernoulli(0.3) ? CoherentCaches::AccessType::kWrite
                                             : CoherentCaches::AccessType::kRead;
    caches.Access(cache, owner, block, type);
  }
  EXPECT_TRUE(caches.CheckConsistency());
  EXPECT_GT(caches.total_invalidations(), 0u);
  EXPECT_GT(caches.total_dirty_supplies(), 0u);
}

}  // namespace
}  // namespace affsched
