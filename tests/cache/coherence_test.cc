// Coherence modelling: shared-data writes invalidate sibling workers' cached
// copies (the Symmetry's invalidation-based protocol).

#include <gtest/gtest.h>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/machine/machine.h"
#include "src/sched/factory.h"

namespace affsched {
namespace {

TEST(FootprintEjectBlocksTest, RemovesExactCount) {
  FootprintCache cache(4096.0);
  cache.SetResident(1, 1000.0);
  cache.EjectBlocks(1, 250.0);
  EXPECT_DOUBLE_EQ(cache.Resident(1), 750.0);
}

TEST(FootprintEjectBlocksTest, ClampsAtZero) {
  FootprintCache cache(4096.0);
  cache.SetResident(1, 100.0);
  cache.EjectBlocks(1, 1000.0);
  EXPECT_DOUBLE_EQ(cache.Resident(1), 0.0);
}

TEST(MachineCoherenceTest, SharedWritesErodeSiblingFootprints) {
  MachineConfig config;
  config.num_processors = 2;
  Machine machine(config);
  WorkingSetParams ws{.blocks = 2000.0, .buildup_tau_s = 0.005, .steady_miss_per_s = 0.0,
                      .shared_write_per_s = 10'000.0};

  // Warm worker 2 on processor 1.
  machine.ExecuteChunk(0, 1, 2, ws, Milliseconds(100));
  const double before = machine.processor(1).cache().Resident(2);
  ASSERT_GT(before, 1000.0);

  // Worker 1 runs on processor 0 writing shared data; worker 2 is a sibling.
  std::vector<Machine::SiblingPlacement> siblings = {{1, 2}};
  machine.ExecuteChunk(Milliseconds(100), 0, 1, ws, Milliseconds(100), &siblings);

  // 10k writes/s x 0.1 s = 1000 invalidations.
  EXPECT_NEAR(machine.processor(1).cache().Resident(2), before - 1000.0, 1.0);
}

TEST(MachineCoherenceTest, NoSharingMeansNoErosion) {
  MachineConfig config;
  config.num_processors = 2;
  Machine machine(config);
  WorkingSetParams ws{.blocks = 2000.0, .buildup_tau_s = 0.005, .steady_miss_per_s = 0.0,
                      .shared_write_per_s = 0.0};
  machine.ExecuteChunk(0, 1, 2, ws, Milliseconds(100));
  const double before = machine.processor(1).cache().Resident(2);
  std::vector<Machine::SiblingPlacement> siblings = {{1, 2}};
  machine.ExecuteChunk(Milliseconds(100), 0, 1, ws, Milliseconds(100), &siblings);
  EXPECT_DOUBLE_EQ(machine.processor(1).cache().Resident(2), before);
}

TEST(MachineCoherenceTest, SelfIsNotASibling) {
  MachineConfig config;
  config.num_processors = 1;
  Machine machine(config);
  WorkingSetParams ws{.blocks = 1000.0, .buildup_tau_s = 0.005, .steady_miss_per_s = 0.0,
                      .shared_write_per_s = 50'000.0};
  machine.ExecuteChunk(0, 0, 1, ws, Milliseconds(100));
  const double warm = machine.processor(0).cache().Resident(1);
  std::vector<Machine::SiblingPlacement> siblings = {{0, 1}};
  machine.ExecuteChunk(Milliseconds(100), 0, 1, ws, Milliseconds(100), &siblings);
  // Running again on the same processor must not invalidate itself.
  EXPECT_GE(machine.processor(0).cache().Resident(1), warm - 1.0);
}

TEST(EngineCoherenceTest, SharingIncreasesReloadStalls) {
  // Same parallel job, with and without shared-data writes: the sharing
  // version pays coherence-induced reload misses.
  auto make_app = [](double shared_rate) {
    AppProfile p;
    p.name = "shared";
    p.working_set = WorkingSetParams{.blocks = 2500.0, .buildup_tau_s = 0.01,
                                     .steady_miss_per_s = 0.0,
                                     .shared_write_per_s = shared_rate};
    p.thread_overlap = 1.0;
    p.max_parallelism = 4;
    p.build_graph = [](Rng&) {
      auto g = std::make_unique<ThreadGraph>();
      for (int i = 0; i < 4; ++i) {
        g->AddNode(Milliseconds(500));
      }
      return g;
    };
    return p;
  };
  MachineConfig machine;
  machine.num_processors = 4;

  auto reload_of = [&](double shared_rate) {
    Engine engine(machine, MakePolicy(PolicyKind::kDynamic), 3);
    const JobId id = engine.SubmitJob(make_app(shared_rate));
    engine.Run();
    return engine.job_stats(id).reload_stall_s;
  };
  EXPECT_GT(reload_of(20'000.0), reload_of(0.0) + 0.001);
}

TEST(AppsCoherenceTest, CalibrationOrdering) {
  // GRAVITY (tree mutation) shares most; MATRIX (private blocks) least.
  const auto profiles = DefaultProfiles();
  EXPECT_GT(profiles[2].working_set.shared_write_per_s,
            profiles[0].working_set.shared_write_per_s);
  EXPECT_GT(profiles[0].working_set.shared_write_per_s,
            profiles[1].working_set.shared_write_per_s);
}

}  // namespace
}  // namespace affsched
