#include "src/cache/exact_cache.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace affsched {
namespace {

CacheGeometry SmallGeometry() {
  // 8 sets x 2 ways = 16 lines.
  return CacheGeometry{.line_bytes = 16, .total_bytes = 16 * 16, .ways = 2};
}

TEST(CacheGeometryTest, SymmetryDefaults) {
  CacheGeometry g;
  EXPECT_EQ(g.TotalLines(), 4096u);
  EXPECT_EQ(g.NumSets(), 2048u);
}

TEST(ExactCacheTest, MissThenHit) {
  ExactCache c(SmallGeometry());
  EXPECT_FALSE(c.Access(1, 5).hit);
  EXPECT_TRUE(c.Access(1, 5).hit);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(ExactCacheTest, DistinctOwnersDoNotShareLines) {
  ExactCache c(SmallGeometry());
  c.Access(1, 5);
  EXPECT_FALSE(c.Access(2, 5).hit);  // same block, different address space
  EXPECT_TRUE(c.Contains(1, 5));
  EXPECT_TRUE(c.Contains(2, 5));
}

TEST(ExactCacheTest, LruEvictionWithinSet) {
  ExactCache c(SmallGeometry());  // 8 sets, 2 ways
  // Blocks 0, 8, 16 all map to set 0.
  c.Access(1, 0);
  c.Access(1, 8);
  c.Access(1, 0);   // 0 becomes MRU
  const auto result = c.Access(1, 16);  // evicts LRU = 8
  EXPECT_FALSE(result.hit);
  EXPECT_EQ(result.evicted_owner, 1u);
  EXPECT_TRUE(c.Contains(1, 0));
  EXPECT_FALSE(c.Contains(1, 8));
  EXPECT_TRUE(c.Contains(1, 16));
}

TEST(ExactCacheTest, ResidentLinesTracked) {
  ExactCache c(SmallGeometry());
  for (uint64_t b = 0; b < 8; ++b) {
    c.Access(7, b);
  }
  EXPECT_EQ(c.ResidentLines(7), 8u);
  EXPECT_EQ(c.OccupiedLines(), 8u);
}

TEST(ExactCacheTest, EvictionDecrementsVictimResidency) {
  ExactCache c(SmallGeometry());
  c.Access(1, 0);
  c.Access(1, 8);
  c.Access(2, 16);  // set 0 full; evicts one of owner 1's lines
  EXPECT_EQ(c.ResidentLines(1), 1u);
  EXPECT_EQ(c.ResidentLines(2), 1u);
}

TEST(ExactCacheTest, InvalidateOwnerRemovesAllLines) {
  ExactCache c(SmallGeometry());
  for (uint64_t b = 0; b < 6; ++b) {
    c.Access(3, b);
  }
  c.Access(4, 7);
  EXPECT_EQ(c.InvalidateOwner(3), 6u);
  EXPECT_EQ(c.ResidentLines(3), 0u);
  EXPECT_EQ(c.ResidentLines(4), 1u);
  EXPECT_EQ(c.OccupiedLines(), 1u);
}

TEST(ExactCacheTest, FlushEmptiesEverything) {
  ExactCache c(SmallGeometry());
  for (uint64_t b = 0; b < 10; ++b) {
    c.Access(1, b);
  }
  c.Flush();
  EXPECT_EQ(c.OccupiedLines(), 0u);
  EXPECT_EQ(c.ResidentLines(1), 0u);
  EXPECT_FALSE(c.Contains(1, 0));
}

TEST(ExactCacheTest, WorkingSetWithinCapacityHasNoSteadyMisses) {
  ExactCache c(SmallGeometry());
  // Working set of 8 blocks spread over distinct sets fits the 16-line cache.
  for (int pass = 0; pass < 10; ++pass) {
    for (uint64_t b = 0; b < 8; ++b) {
      c.Access(1, b);
    }
  }
  EXPECT_EQ(c.misses(), 8u);  // compulsory only
  EXPECT_EQ(c.hits(), 72u);
}

TEST(ExactCacheTest, ThrashingWorkingSetMissesEveryPass) {
  ExactCache c(SmallGeometry());
  // 3 blocks in the same set with 2 ways, accessed cyclically: always misses.
  c.ResetCounters();
  for (int pass = 0; pass < 10; ++pass) {
    c.Access(1, 0);
    c.Access(1, 8);
    c.Access(1, 16);
  }
  EXPECT_EQ(c.hits(), 0u);
  EXPECT_EQ(c.misses(), 30u);
}

TEST(ExactCacheTest, ResetCountersKeepsContents) {
  ExactCache c(SmallGeometry());
  c.Access(1, 3);
  c.ResetCounters();
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_TRUE(c.Access(1, 3).hit);
}

TEST(ExactCacheTest, FullSymmetryCacheFillsCompletely) {
  ExactCache c(CacheGeometry{});
  for (uint64_t b = 0; b < 4096; ++b) {
    c.Access(1, b);
  }
  EXPECT_EQ(c.ResidentLines(1), 4096u);
  EXPECT_EQ(c.OccupiedLines(), 4096u);
  // A full second pass hits everywhere.
  c.ResetCounters();
  for (uint64_t b = 0; b < 4096; ++b) {
    EXPECT_TRUE(c.Access(1, b).hit);
  }
}

TEST(ExactCacheDeathTest, ReservedOwnerRejected) {
  ExactCache c(SmallGeometry());
  EXPECT_DEATH(c.Access(kNoOwner, 0), "CHECK");
}

}  // namespace
}  // namespace affsched
