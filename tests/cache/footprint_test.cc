#include "src/cache/footprint.h"

#include <gtest/gtest.h>

#include <cmath>

namespace affsched {
namespace {

constexpr double kCapacity = 4096.0;

WorkingSetParams TestWs(double blocks = 2000.0, double tau = 0.05, double steady = 0.0) {
  return WorkingSetParams{.blocks = blocks, .buildup_tau_s = tau, .steady_miss_per_s = steady};
}

TEST(FootprintCacheTest, ColdStartReloadsPerWorkingSetCurve) {
  FootprintCache cache(kCapacity);
  const WorkingSetParams ws = TestWs(2000.0, 0.05);
  const auto result = cache.RunChunk(1, ws, 0.05);  // one time constant
  const double expected = cache.MaxResident(2000.0) * (1.0 - std::exp(-1.0));
  EXPECT_NEAR(result.reload_misses, expected, 1e-6);
  EXPECT_NEAR(cache.Resident(1), expected, 1e-6);
}

TEST(FootprintCacheTest, LongRunApproachesOccupancyCap) {
  FootprintCache cache(kCapacity);
  const WorkingSetParams ws = TestWs(2000.0, 0.05);
  cache.RunChunk(1, ws, 10.0);
  EXPECT_NEAR(cache.Resident(1), cache.MaxResident(2000.0), 1.0);
  // The 2-way occupancy cap: some of a random working set self-conflicts.
  EXPECT_LT(cache.MaxResident(2000.0), 2000.0);
  EXPECT_GT(cache.MaxResident(2000.0), 1700.0);
}

TEST(FootprintCacheTest, MaxResidentProperties) {
  FootprintCache cache(kCapacity);
  EXPECT_DOUBLE_EQ(cache.MaxResident(0.0), 0.0);
  // Monotone, below both W and capacity.
  double prev = 0.0;
  for (double w : {100.0, 1000.0, 2000.0, 4000.0, 8000.0, 100000.0}) {
    const double m = cache.MaxResident(w);
    EXPECT_GE(m, prev);
    EXPECT_LE(m, w);
    EXPECT_LE(m, kCapacity);
    prev = m;
  }
  // Tiny working sets almost never self-conflict.
  EXPECT_NEAR(cache.MaxResident(50.0), 50.0, 1.0);
  // A working set far beyond capacity saturates the whole cache.
  EXPECT_NEAR(cache.MaxResident(1e6), kCapacity, 1.0);
}

TEST(FootprintCacheTest, FullyAssociativeCapIsCapacity) {
  // With ways == capacity (fully associative), the only cap is capacity.
  FootprintCache cache(64.0, 64);
  EXPECT_NEAR(cache.MaxResident(32.0), 32.0, 1e-6);
  EXPECT_NEAR(cache.MaxResident(1000.0), 64.0, 0.5);
}

TEST(FootprintCacheTest, WarmTaskHasNoReloadMisses) {
  FootprintCache cache(kCapacity);
  const WorkingSetParams ws = TestWs();
  cache.RunChunk(1, ws, 10.0);  // warm up fully
  const auto result = cache.RunChunk(1, ws, 0.1);
  EXPECT_NEAR(result.reload_misses, 0.0, 1e-6);
}

TEST(FootprintCacheTest, SteadyMissesScaleWithTime) {
  FootprintCache cache(kCapacity);
  const WorkingSetParams ws = TestWs(100.0, 0.01, 5000.0);
  const auto result = cache.RunChunk(1, ws, 0.2);
  EXPECT_NEAR(result.steady_misses, 1000.0, 1e-6);
}

TEST(FootprintCacheTest, FlushForcesFullReload) {
  FootprintCache cache(kCapacity);
  const WorkingSetParams ws = TestWs(2000.0, 0.05);
  cache.RunChunk(1, ws, 10.0);
  cache.Flush();
  EXPECT_DOUBLE_EQ(cache.Resident(1), 0.0);
  const auto result = cache.RunChunk(1, ws, 10.0);
  EXPECT_NEAR(result.reload_misses, cache.MaxResident(2000.0), 1.0);
}

TEST(FootprintCacheTest, InterveningTaskEjectsOthersExponentially) {
  FootprintCache cache(kCapacity);
  const WorkingSetParams ws_a = TestWs(2000.0, 0.05);
  const WorkingSetParams ws_b = TestWs(3000.0, 0.05);
  cache.RunChunk(1, ws_a, 10.0);
  const double before = cache.Resident(1);
  // B inserts ~3000 blocks; free space is 4096-2000=2096, so ~904 evicting
  // insertions fall on residents.
  cache.RunChunk(2, ws_b, 10.0);
  const double after = cache.Resident(1);
  EXPECT_LT(after, before);
  EXPECT_GT(after, 0.0);
  // Total occupancy stays within capacity.
  EXPECT_LE(cache.Occupied(), kCapacity + 1e-6);
}

TEST(FootprintCacheTest, PenaltyGrowsWithInterferenceDuration) {
  // The Table 1 effect: the longer the intervening task runs, the more of the
  // returning task's context is ejected, so the larger the reload penalty.
  double reload_short = 0;
  double reload_long = 0;
  for (const bool long_run : {false, true}) {
    FootprintCache cache(kCapacity);
    const WorkingSetParams ws_a = TestWs(3000.0, 0.05);
    const WorkingSetParams ws_b = TestWs(3000.0, 0.05);
    cache.RunChunk(1, ws_a, 10.0);
    cache.RunChunk(2, ws_b, long_run ? 0.4 : 0.025);
    const auto back = cache.RunChunk(1, ws_a, 10.0);
    (long_run ? reload_long : reload_short) = back.reload_misses;
  }
  EXPECT_GT(reload_long, reload_short);
}

TEST(FootprintCacheTest, WorkingSetLargerThanCacheClamps) {
  FootprintCache cache(kCapacity);
  const WorkingSetParams ws = TestWs(10000.0, 0.05);
  cache.RunChunk(1, ws, 10.0);
  EXPECT_LE(cache.Resident(1), kCapacity + 1e-6);
}

TEST(FootprintCacheTest, EjectFraction) {
  FootprintCache cache(kCapacity);
  cache.SetResident(1, 1000.0);
  cache.EjectFraction(1, 0.25);
  EXPECT_DOUBLE_EQ(cache.Resident(1), 750.0);
  cache.EjectFraction(1, 1.0);
  EXPECT_DOUBLE_EQ(cache.Resident(1), 0.0);
}

TEST(FootprintCacheTest, ReplaceOwnerDataKeepsFraction) {
  FootprintCache cache(kCapacity);
  cache.SetResident(1, 1000.0);
  cache.ReplaceOwnerData(1, 0.7);
  EXPECT_DOUBLE_EQ(cache.Resident(1), 700.0);
}

TEST(FootprintCacheTest, RemoveOwnerFreesSpace) {
  FootprintCache cache(kCapacity);
  cache.SetResident(1, 1000.0);
  cache.SetResident(2, 500.0);
  cache.RemoveOwner(1);
  EXPECT_DOUBLE_EQ(cache.Resident(1), 0.0);
  EXPECT_DOUBLE_EQ(cache.Occupied(), 500.0);
}

TEST(FootprintCacheTest, ZeroDurationChunkIsFree) {
  FootprintCache cache(kCapacity);
  const auto result = cache.RunChunk(1, TestWs(), 0.0);
  EXPECT_DOUBLE_EQ(result.TotalMisses(), 0.0);
  EXPECT_DOUBLE_EQ(cache.Resident(1), 0.0);
}

TEST(FootprintCacheTest, ManyTasksStayWithinCapacity) {
  FootprintCache cache(kCapacity);
  const WorkingSetParams ws = TestWs(1500.0, 0.02);
  for (int round = 0; round < 20; ++round) {
    for (CacheOwner owner = 1; owner <= 6; ++owner) {
      cache.RunChunk(owner, ws, 0.05);
    }
    EXPECT_LE(cache.Occupied(), kCapacity + 1e-6);
  }
}

TEST(FootprintCacheTest, RunningTaskProtectedFromOwnEvictions) {
  FootprintCache cache(kCapacity);
  const WorkingSetParams ws = TestWs(3000.0, 0.02, 100000.0);
  cache.RunChunk(1, ws, 1.0);
  // Steady misses insert blocks but the running task's footprint holds.
  EXPECT_NEAR(cache.Resident(1), cache.MaxResident(3000.0), 1.0);
}

}  // namespace
}  // namespace affsched
