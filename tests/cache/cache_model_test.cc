// Tests for the CacheModel seam: both implementations must satisfy the same
// behavioural contract (buildup, warmth, ejection, turnover, removal), and
// the machine must run end-to-end on either substrate.

#include "src/cache/cache_model.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/cache/exact_model.h"
#include "src/cache/footprint.h"
#include "src/machine/machine.h"

namespace affsched {
namespace {

constexpr double kCapacityBlocks = 4096.0;  // 64 KB of 16-byte lines

WorkingSetParams TestWorkingSet() {
  WorkingSetParams ws;
  ws.blocks = 1000.0;
  ws.buildup_tau_s = 0.05;
  ws.steady_miss_per_s = 2000.0;
  return ws;
}

std::unique_ptr<CacheModel> MakeModel(bool exact) {
  if (exact) {
    return std::make_unique<ExactCacheModel>(CacheGeometry{}, /*seed=*/42);
  }
  return std::make_unique<FootprintCache>(kCapacityBlocks, /*ways=*/2);
}

class CacheModelContractTest : public ::testing::TestWithParam<bool> {};

TEST_P(CacheModelContractTest, FootprintBuildsUpTowardWorkingSet) {
  auto model = MakeModel(GetParam());
  const WorkingSetParams ws = TestWorkingSet();
  double prev = 0.0;
  for (int i = 0; i < 10; ++i) {
    model->RunChunk(1, ws, 0.02);
    const double now = model->Resident(1);
    EXPECT_GE(now, prev - 1.0);
    prev = now;
  }
  // After 0.2s (4 tau) the footprint should be close to its cap.
  EXPECT_GT(model->Resident(1), 0.8 * model->MaxResident(ws.blocks));
  EXPECT_LE(model->Resident(1), model->capacity() + 1e-9);
  EXPECT_GE(model->Occupied(), model->Resident(1));
}

TEST_P(CacheModelContractTest, WarmResumeCostsFewerReloadMisses) {
  auto model = MakeModel(GetParam());
  const WorkingSetParams ws = TestWorkingSet();
  const CacheChunkResult cold = model->RunChunk(1, ws, 0.1);
  const CacheChunkResult warm = model->RunChunk(1, ws, 0.1);
  EXPECT_LT(warm.reload_misses, 0.5 * cold.reload_misses);
}

TEST_P(CacheModelContractTest, FlushForcesFullReload) {
  auto model = MakeModel(GetParam());
  const WorkingSetParams ws = TestWorkingSet();
  model->RunChunk(1, ws, 0.2);
  model->Flush();
  EXPECT_DOUBLE_EQ(model->Resident(1), 0.0);
  EXPECT_DOUBLE_EQ(model->Occupied(), 0.0);
  const CacheChunkResult after = model->RunChunk(1, ws, 0.2);
  EXPECT_GT(after.reload_misses, 0.5 * model->MaxResident(ws.blocks));
}

TEST_P(CacheModelContractTest, EjectBlocksRemovesRequestedAmount) {
  auto model = MakeModel(GetParam());
  const WorkingSetParams ws = TestWorkingSet();
  model->RunChunk(1, ws, 0.2);
  const double before = model->Resident(1);
  ASSERT_GT(before, 200.0);
  model->EjectBlocks(1, 100.0);
  EXPECT_NEAR(model->Resident(1), before - 100.0, 1.0);
}

TEST_P(CacheModelContractTest, EjectFractionScalesResident) {
  auto model = MakeModel(GetParam());
  const WorkingSetParams ws = TestWorkingSet();
  model->RunChunk(1, ws, 0.2);
  const double before = model->Resident(1);
  model->EjectFraction(1, 0.5);
  EXPECT_NEAR(model->Resident(1), before * 0.5, 2.0);
}

TEST_P(CacheModelContractTest, ReplaceOwnerDataDropsDeadData) {
  auto model = MakeModel(GetParam());
  WorkingSetParams ws = TestWorkingSet();
  ws.steady_miss_per_s = 0.0;  // footprint is working-set lines only
  model->RunChunk(1, ws, 0.3);
  const double before = model->Resident(1);
  model->ReplaceOwnerData(1, 0.25);
  EXPECT_NEAR(model->Resident(1), before * 0.25, 0.1 * before);
}

TEST_P(CacheModelContractTest, RemoveOwnerClearsState) {
  auto model = MakeModel(GetParam());
  const WorkingSetParams ws = TestWorkingSet();
  model->RunChunk(1, ws, 0.2);
  model->RunChunk(2, ws, 0.2);
  model->RemoveOwner(1);
  EXPECT_DOUBLE_EQ(model->Resident(1), 0.0);
  EXPECT_GT(model->Resident(2), 0.0);
}

TEST_P(CacheModelContractTest, MaxResidentMatchesPoissonCap) {
  auto model = MakeModel(GetParam());
  EXPECT_DOUBLE_EQ(model->MaxResident(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model->MaxResident(2000.0),
                   ExpectedMaxResident(model->capacity(), 2, 2000.0));
  EXPECT_LT(model->MaxResident(2000.0), 2000.0);
}

INSTANTIATE_TEST_SUITE_P(BothModels, CacheModelContractTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Exact" : "Footprint";
                         });

TEST(ExpectedMaxResidentTest, SmallWorkingSetsFitEntirely) {
  EXPECT_NEAR(ExpectedMaxResident(4096.0, 2, 100.0), 100.0, 2.0);
}

TEST(ExpectedMaxResidentTest, CapIsBoundedByCapacity) {
  EXPECT_LE(ExpectedMaxResident(4096.0, 2, 1e9), 4096.0 + 1e-6);
}

TEST(ExactCacheModelTest, SteadyMissesExertEvictionPressure) {
  ExactCacheModel model(CacheGeometry{}, /*seed=*/7);
  WorkingSetParams quiet = TestWorkingSet();
  quiet.steady_miss_per_s = 0.0;
  model.RunChunk(1, quiet, 0.3);
  const double warm = model.Resident(1);
  WorkingSetParams streamer;
  streamer.blocks = 3000.0;
  streamer.buildup_tau_s = 0.01;
  streamer.steady_miss_per_s = 50000.0;
  model.RunChunk(2, streamer, 0.5);
  EXPECT_LT(model.Resident(1), warm);
}

TEST(ExactCacheModelTest, DeterministicAcrossInstances) {
  ExactCacheModel a(CacheGeometry{}, /*seed=*/11);
  ExactCacheModel b(CacheGeometry{}, /*seed=*/11);
  const WorkingSetParams ws = TestWorkingSet();
  for (int i = 0; i < 5; ++i) {
    const CacheChunkResult ra = a.RunChunk(3, ws, 0.017);
    const CacheChunkResult rb = b.RunChunk(3, ws, 0.017);
    EXPECT_DOUBLE_EQ(ra.reload_misses, rb.reload_misses);
    EXPECT_DOUBLE_EQ(ra.steady_misses, rb.steady_misses);
  }
  EXPECT_DOUBLE_EQ(a.Resident(3), b.Resident(3));
}

TEST(MachineCacheModelTest, MachineRunsOnExactSubstrate) {
  MachineConfig config;
  config.num_processors = 2;
  config.cache_model = CacheModelKind::kExact;
  config.cache_model_seed = 99;
  Machine machine(config);
  WorkingSetParams ws = TestWorkingSet();
  const Machine::ChunkExecution exec =
      machine.ExecuteChunk(0, 0, /*owner=*/1, ws, Milliseconds(100));
  EXPECT_GT(exec.reload_misses, 0.0);
  EXPECT_GT(exec.stall, 0);
  EXPECT_GT(machine.processor(0).cache().Resident(1), 0.0);
  EXPECT_DOUBLE_EQ(machine.processor(1).cache().Resident(1), 0.0);
}

TEST(MachineCacheModelTest, SubstratesAgreeOnColdBuildupMagnitude) {
  // The analytic model integrates what the exact model simulates; a cold
  // 100 ms chunk (2 tau) should produce reload-miss counts within ~15% of
  // each other.
  WorkingSetParams ws = TestWorkingSet();
  ws.steady_miss_per_s = 0.0;
  MachineConfig analytic;
  analytic.num_processors = 1;
  MachineConfig exact = analytic;
  exact.cache_model = CacheModelKind::kExact;
  exact.cache_model_seed = 5;
  Machine ma(analytic);
  Machine me(exact);
  const double ra = ma.ExecuteChunk(0, 0, 1, ws, Milliseconds(100)).reload_misses;
  const double re = me.ExecuteChunk(0, 0, 1, ws, Milliseconds(100)).reload_misses;
  EXPECT_NEAR(ra, re, 0.15 * ra);
}

}  // namespace
}  // namespace affsched
