#include "src/engine/allocator_protocol.h"

#include <map>

#include "gtest/gtest.h"
#include "src/common/time.h"
#include "src/telemetry/metrics.h"
#include "tests/engine/core_harness.h"

namespace affsched {
namespace {

void Drain(CoreHarness& h) {
  while (!h.core.queue.empty()) {
    h.core.queue.RunNext();
  }
}

// Runs events until `proc` is executing a chunk (or the queue runs dry).
void RunUntilRunning(CoreHarness& h, size_t proc) {
  while (h.core.procs[proc].running == kNoOwner && !h.core.queue.empty()) {
    h.core.queue.RunNext();
  }
}

TEST(AllocatorProtocolTest, StartSwitchChargesPathLengthThenDispatches) {
  CoreHarness h;
  const JobId id = h.AddActiveJob(1, Milliseconds(4));

  h.alloc.StartSwitch(0, id, kNoOwner);

  ProcState& ps = h.core.procs[0];
  JobState& js = h.core.job_state(id);
  EXPECT_EQ(ps.holder, id);
  EXPECT_TRUE(ps.switching);
  EXPECT_EQ(js.allocation, 1u);
  EXPECT_EQ(js.switching_in, 1u);
  EXPECT_DOUBLE_EQ(js.job->stats().switch_s,
                   ToSeconds(h.core.machine.config().SwitchCost()));

  RunUntilRunning(h, 0);
  EXPECT_FALSE(ps.switching);
  EXPECT_EQ(js.switching_in, 0u);
  ASSERT_NE(ps.running, kNoOwner);
  EXPECT_EQ(h.core.queue.now(), h.core.machine.config().SwitchCost());
}

TEST(AllocatorProtocolTest, SetPendingAndClearPendingKeepCommitmentCounts) {
  CoreHarness h;
  const JobId a = h.AddActiveJob(1, Milliseconds(4));
  const JobId b = h.AddActiveJob(1, Milliseconds(4));
  h.alloc.StartSwitch(0, a, kNoOwner);
  RunUntilRunning(h, 0);

  h.alloc.SetPending(0, b, kNoOwner);
  ProcState& ps = h.core.procs[0];
  EXPECT_TRUE(ps.pending_valid);
  EXPECT_EQ(ps.pending_job, b);
  EXPECT_FALSE(ps.willing);
  EXPECT_EQ(h.core.job_state(b).pending_incoming, 1u);
  EXPECT_EQ(h.core.job_state(a).pending_outgoing, 1u);
  // Committed reassignments shrink the source's effective allocation and do
  // not yet grow the target's.
  EXPECT_EQ(h.core.EffectiveAllocation(a), 0u);
  EXPECT_EQ(h.core.EffectiveAllocation(b), 1u);

  h.alloc.ClearPending(0);
  EXPECT_FALSE(ps.pending_valid);
  EXPECT_EQ(h.core.job_state(b).pending_incoming, 0u);
  EXPECT_EQ(h.core.job_state(a).pending_outgoing, 0u);
}

TEST(AllocatorProtocolTest, PendingReassignmentPreemptsAtChunkBoundary) {
  CoreHarness h;
  const JobId a = h.AddActiveJob(1, Milliseconds(10));
  const JobId b = h.AddActiveJob(1, Milliseconds(10));
  h.alloc.StartSwitch(0, a, kNoOwner);
  RunUntilRunning(h, 0);

  h.alloc.SetPending(0, b, kNoOwner);
  // Next chunk boundary: a's thread is preempted mid-flight and the processor
  // switches to b.
  while ((h.core.procs[0].holder != b || h.core.procs[0].running == kNoOwner) &&
         !h.core.queue.empty()) {
    h.core.queue.RunNext();
  }

  ProcState& ps = h.core.procs[0];
  EXPECT_EQ(ps.holder, b);
  EXPECT_EQ(h.core.worker(ps.running).job, b);
  JobState& ja = h.core.job_state(a);
  EXPECT_EQ(ja.allocation, 0u);
  EXPECT_EQ(ja.idle_workers.size(), 1u);
  // The preempted thread kept its progress: one 2 ms chunk of 10 ms ran.
  ASSERT_TRUE(ja.job->HasReadyThread());
  const ThreadRef t = ja.job->PopReadyThread();
  EXPECT_EQ(t.remaining, Milliseconds(8));
  EXPECT_EQ(ja.job->stats().reallocations, 1u);
}

TEST(AllocatorProtocolTest, RetargetDuringSwitchSwitchesAgain) {
  CoreHarness h;
  const JobId a = h.AddActiveJob(1, Milliseconds(4));
  const JobId b = h.AddActiveJob(1, Milliseconds(4));
  h.alloc.StartSwitch(0, a, kNoOwner);
  // Retarget while the first switch is still in flight.
  h.alloc.SetPending(0, b, kNoOwner);

  RunUntilRunning(h, 0);

  ProcState& ps = h.core.procs[0];
  EXPECT_EQ(ps.holder, b);
  EXPECT_EQ(h.core.job_state(a).allocation, 0u);
  EXPECT_EQ(h.core.job_state(b).allocation, 1u);
  // Two full path-length charges elapsed before work started.
  EXPECT_EQ(h.core.queue.now(), 2 * h.core.machine.config().SwitchCost());
  // a was charged for a switch that never dispatched (the paper's reallocation
  // overhead is paid on the way in).
  EXPECT_DOUBLE_EQ(h.core.job_state(a).job->stats().switch_s,
                   ToSeconds(h.core.machine.config().SwitchCost()));
}

TEST(AllocatorProtocolTest, HoldingProcessorYieldsThenReleaseAccountsWaste) {
  CoreHarness h;
  MetricsRegistry registry;
  h.acct.SetMetrics(&registry);
  const JobId id = h.AddActiveJob(1, Milliseconds(4));
  // No ready work: the dispatched worker holds the processor.
  h.core.job_state(id).job->PopReadyThread();
  h.alloc.StartSwitch(0, id, kNoOwner);
  Drain(h);

  ProcState& ps = h.core.procs[0];
  ASSERT_NE(ps.holding, kNoOwner);
  EXPECT_TRUE(ps.willing) << "zero yield delay advertises immediately";
  EXPECT_DOUBLE_EQ(h.acct.m.holds->value(), 1.0);
  EXPECT_DOUBLE_EQ(h.acct.m.yields->value(), 1.0);

  const SimTime hold_start = ps.hold_start;
  h.core.queue.ScheduleAfter(Milliseconds(3), [] {});
  h.core.queue.RunNext();
  h.alloc.ReleaseFromHolder(0);

  EXPECT_EQ(ps.holder, kInvalidJobId);
  EXPECT_EQ(ps.holding, kNoOwner);
  EXPECT_FALSE(ps.willing);
  JobState& js = h.core.job_state(id);
  EXPECT_EQ(js.allocation, 0u);
  EXPECT_EQ(js.idle_workers.size(), 1u);
  EXPECT_DOUBLE_EQ(js.job->stats().waste_s,
                   ToSeconds(h.core.queue.now() - hold_start));
  EXPECT_DOUBLE_EQ(h.acct.m.releases->value(), 1.0);
}

TEST(AllocatorProtocolTest, NotifyNewWorkResumesHoldersWithoutReallocation) {
  CoreHarness h;
  MetricsRegistry registry;
  h.acct.SetMetrics(&registry);
  const JobId a = h.AddActiveJob(1, Milliseconds(10));
  const JobId b = h.AddActiveJob(1, Milliseconds(10));
  // a gets both processors: proc 0 runs its only thread, proc 1 holds.
  h.alloc.StartSwitch(0, a, kNoOwner);
  h.alloc.StartSwitch(1, a, kNoOwner);
  RunUntilRunning(h, 0);
  while (h.core.procs[1].holding == kNoOwner && !h.core.queue.empty()) {
    h.core.queue.RunNext();
  }
  ASSERT_NE(h.core.procs[1].holding, kNoOwner);
  const uint64_t reallocs_before = h.core.job_state(a).job->stats().reallocations;

  // Preempt proc 0 toward b; the preempted thread becomes new work that the
  // holder on proc 1 absorbs with no reallocation cost.
  h.alloc.SetPending(0, b, kNoOwner);
  RunUntilRunning(h, 1);

  ProcState& p1 = h.core.procs[1];
  ASSERT_NE(p1.running, kNoOwner);
  EXPECT_EQ(h.core.worker(p1.running).job, a);
  EXPECT_EQ(p1.holding, kNoOwner);
  EXPECT_FALSE(p1.willing);
  EXPECT_DOUBLE_EQ(h.acct.m.resumes->value(), 1.0);
  EXPECT_EQ(h.core.job_state(a).job->stats().reallocations, reallocs_before)
      << "resuming a held processor is not a reallocation";
  EXPECT_EQ(h.core.procs[0].holder, b);
}

TEST(AllocatorProtocolTest, AssignProcessorRoutesByProcessorState) {
  CoreHarness h;
  const JobId a = h.AddActiveJob(2, Milliseconds(10));
  const JobId b = h.AddActiveJob(1, Milliseconds(10));

  // Free processor: assignment starts a switch immediately.
  h.alloc.AssignProcessor(Assignment{.proc = 0, .job = a});
  EXPECT_EQ(h.core.procs[0].holder, a);
  EXPECT_TRUE(h.core.procs[0].switching);

  // Busy processor: assignment becomes a pending reassignment.
  RunUntilRunning(h, 0);
  h.alloc.AssignProcessor(Assignment{.proc = 0, .job = b});
  EXPECT_TRUE(h.core.procs[0].pending_valid);
  EXPECT_EQ(h.core.procs[0].pending_job, b);

  // Re-assigning to the current holder rescinds the takeaway.
  h.alloc.AssignProcessor(Assignment{.proc = 0, .job = a});
  EXPECT_FALSE(h.core.procs[0].pending_valid);
  EXPECT_EQ(h.core.procs[0].holder, a);
}

TEST(AllocatorProtocolTest, AssignProcessorIgnoresInactiveJob) {
  CoreHarness h;
  const JobId a = h.AddActiveJob(1, Milliseconds(10));
  h.core.job_state(a).active = false;

  h.alloc.AssignProcessor(Assignment{.proc = 0, .job = a});

  EXPECT_EQ(h.core.procs[0].holder, kInvalidJobId);
  EXPECT_FALSE(h.core.procs[0].switching);
}

TEST(AllocatorProtocolTest, ReconcileReleasesHoldersBeforePreempting) {
  CoreHarness h(/*procs=*/3);
  const JobId a = h.AddActiveJob(2, Milliseconds(10));
  const JobId b = h.AddActiveJob(2, Milliseconds(10));
  // a holds all three processors: two running, one holding (only 2 threads).
  h.alloc.StartSwitch(0, a, kNoOwner);
  h.alloc.StartSwitch(1, a, kNoOwner);
  h.alloc.StartSwitch(2, a, kNoOwner);
  RunUntilRunning(h, 0);
  RunUntilRunning(h, 1);
  while (h.core.procs[2].holding == kNoOwner && !h.core.queue.empty()) {
    h.core.queue.RunNext();
  }
  ASSERT_NE(h.core.procs[2].holding, kNoOwner);

  h.alloc.Reconcile(std::map<JobId, size_t>{{a, 1}, {b, 2}});

  // The idle holder went first (free), then one running processor got a
  // pending reassignment; the second running processor stays with a.
  EXPECT_EQ(h.core.procs[2].holder, b) << "released holder reassigned to b";
  const bool p0_pending = h.core.procs[0].pending_valid;
  const bool p1_pending = h.core.procs[1].pending_valid;
  EXPECT_NE(p0_pending, p1_pending) << "exactly one running proc preempted";
  EXPECT_EQ(h.core.EffectiveAllocation(a), 1u);
  EXPECT_EQ(h.core.EffectiveAllocation(b), 2u);
}

TEST(AllocatorProtocolTest, JobCompletionFreesAllItsProcessors) {
  CoreHarness h;
  MetricsRegistry registry;
  h.acct.SetMetrics(&registry);
  const JobId a = h.AddActiveJob(2, Milliseconds(3));
  h.alloc.StartSwitch(0, a, kNoOwner);
  h.alloc.StartSwitch(1, a, kNoOwner);
  Drain(h);

  JobState& js = h.core.job_state(a);
  EXPECT_TRUE(js.job->Finished());
  EXPECT_FALSE(js.active);
  EXPECT_GT(js.job->stats().completion, 0);
  EXPECT_EQ(js.allocation, 0u);
  EXPECT_EQ(h.core.procs[0].holder, kInvalidJobId);
  EXPECT_EQ(h.core.procs[1].holder, kInvalidJobId);
  EXPECT_EQ(h.core.jobs_remaining, 0u);
  EXPECT_TRUE(h.core.active_jobs.empty());
  EXPECT_DOUBLE_EQ(h.acct.m.job_completions->value(), 1.0);
}

TEST(AllocatorProtocolTest, StalePendingTowardCompletedJobIsDropped) {
  CoreHarness h;
  const JobId a = h.AddActiveJob(1, Milliseconds(10));
  const JobId b = h.AddActiveJob(1, Milliseconds(10));
  h.alloc.StartSwitch(0, a, kNoOwner);
  RunUntilRunning(h, 0);
  h.alloc.SetPending(0, b, kNoOwner);
  // b completes before the chunk boundary.
  JobState& jb = h.core.job_state(b);
  jb.active = false;

  // Run to the next chunk boundary: the stale reassignment is dropped and a
  // keeps executing.
  const CacheOwner running = h.core.procs[0].running;
  h.core.queue.RunNext();

  EXPECT_FALSE(h.core.procs[0].pending_valid);
  EXPECT_EQ(h.core.procs[0].holder, a);
  EXPECT_EQ(h.core.procs[0].running, running);
}

}  // namespace
}  // namespace affsched
