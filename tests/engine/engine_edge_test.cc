// Edge-case engine tests: view semantics, priority credit dynamics, yield
// timers, quantum rotation mechanics, repartition on staggered arrivals.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/sched/factory.h"
#include "src/trace/trace.h"

namespace affsched {
namespace {

AppProfile FlatProfile(std::string name, size_t width, SimDuration work, size_t max_par = 0) {
  AppProfile profile;
  profile.name = std::move(name);
  profile.working_set =
      WorkingSetParams{.blocks = 0.0, .buildup_tau_s = 0.01, .steady_miss_per_s = 0.0};
  profile.thread_overlap = 1.0;
  profile.max_parallelism = max_par == 0 ? width : max_par;
  profile.build_graph = [width, work](Rng&) {
    auto g = std::make_unique<ThreadGraph>();
    for (size_t i = 0; i < width; ++i) {
      g->AddNode(work);
    }
    return g;
  };
  return profile;
}

MachineConfig TestMachine(size_t procs) {
  MachineConfig config;
  config.num_processors = procs;
  return config;
}

TEST(EngineViewTest, AllocationAndDemandLifecycle) {
  // Before Run() the view reports an empty system.
  Engine engine(TestMachine(4), MakePolicy(PolicyKind::kDynamic), 1);
  const JobId id = engine.SubmitJob(FlatProfile("x", 2, Milliseconds(10)));
  EXPECT_TRUE(engine.ActiveJobs().empty());
  EXPECT_EQ(engine.Allocation(id), 0u);
  EXPECT_EQ(engine.PendingDemand(id), 0u);  // not yet arrived
  engine.Run();
  EXPECT_TRUE(engine.ActiveJobs().empty());  // completed
  EXPECT_EQ(engine.EffectiveAllocation(id), 0u);
}

TEST(EngineViewTest, ProcessorsFreeAfterCompletion) {
  Engine engine(TestMachine(4), MakePolicy(PolicyKind::kDynamic), 1);
  engine.SubmitJob(FlatProfile("x", 4, Milliseconds(10)));
  engine.Run();
  for (size_t p = 0; p < 4; ++p) {
    EXPECT_EQ(engine.ProcessorJob(p), kInvalidJobId);
    EXPECT_FALSE(engine.WillingToYield(p));
    EXPECT_FALSE(engine.ReassignmentPending(p));
  }
}

TEST(EngineViewTest, ProcessorHistorySurvivesCompletion) {
  Engine engine(TestMachine(2), MakePolicy(PolicyKind::kDynamic), 1);
  engine.SubmitJob(FlatProfile("x", 2, Milliseconds(10)));
  engine.Run();
  // The last tasks remain in history for affinity decisions by later jobs.
  EXPECT_NE(engine.LastTaskOn(0), kNoOwner);
  EXPECT_EQ(engine.RecentTasksOn(0).size(), 1u);
}

TEST(EnginePriorityTest, UnderallocatedJobGainsPriority) {
  // Submit a wide job and a narrow one; after running, the narrow job (which
  // held fewer processors than its fair share) must have accrued positive
  // credit relative to the hog. We observe priorities mid-run via a policy
  // that snapshots them.
  struct SnoopPolicy : public Policy {
    std::string name() const override { return "snoop"; }
    PolicyDecision OnJobArrival(const SchedView&, JobId) override { return {}; }
    PolicyDecision OnJobDeparture(const SchedView&, JobId) override { return {}; }
    PolicyDecision OnProcessorAvailable(const SchedView& view, size_t proc) override {
      // Behave like Dynamic's basic rule so the workload progresses.
      PolicyDecision d;
      for (JobId j : view.ActiveJobs()) {
        if (view.PendingDemand(j) > 0 && j != view.ProcessorJob(proc)) {
          d.assignments.push_back(Assignment{proc, j, kNoOwner});
          break;
        }
      }
      return d;
    }
    PolicyDecision OnRequest(const SchedView& view, JobId job) override {
      if (view.ActiveJobs().size() == 2) {
        last_priority_gap = view.Priority(1) - view.Priority(0);
        ++snapshots;
      }
      PolicyDecision d;
      for (size_t p = 0; p < view.NumProcessors(); ++p) {
        if (view.ProcessorJob(p) == kInvalidJobId) {
          d.assignments.push_back(Assignment{p, job, kNoOwner});
          return d;
        }
      }
      return d;
    }
    double last_priority_gap = 0.0;
    size_t snapshots = 0;
  };

  auto policy = std::make_unique<SnoopPolicy>();
  SnoopPolicy* snoop = policy.get();
  Engine engine(TestMachine(4), std::move(policy), 1);
  // Job 0: hogs the machine with many threads. Job 1: a serial chain that can
  // use only one processor, repeatedly requesting as threads complete.
  engine.SubmitJob(FlatProfile("hog", 40, Milliseconds(50)));
  AppProfile chain = FlatProfile("chain", 0, 0, 4);
  chain.build_graph = [](Rng&) {
    auto g = std::make_unique<ThreadGraph>();
    size_t prev = g->AddNode(Milliseconds(30));
    for (int i = 0; i < 10; ++i) {
      const size_t next = g->AddNode(Milliseconds(30));
      g->AddEdge(prev, next);
      prev = next;
    }
    return g;
  };
  engine.SubmitJob(chain);
  engine.Run();
  EXPECT_GT(snoop->snapshots, 0u);
  // The chain (job 1, at 1 processor vs fair share 2) accrues credit over the
  // hog (at 3 processors).
  EXPECT_GT(snoop->last_priority_gap, 0.0);
}

TEST(EngineYieldTest, DelayTimerCancelledWhenWorkArrives) {
  // Under Dyn-Aff-Delay, a short inter-phase gap must not produce a yield
  // event at all: the timer is cancelled when new work lands.
  AppProfile two_phase = FlatProfile("p", 0, 0, 2);
  two_phase.build_graph = [](Rng&) {
    auto g = std::make_unique<ThreadGraph>();
    const size_t a = g->AddNode(Milliseconds(30));
    const size_t b = g->AddNode(Milliseconds(34));  // staggered finish
    const size_t c = g->AddNode(Milliseconds(30));
    g->AddEdge(a, c);
    g->AddEdge(b, c);
    return g;
  };
  RingTrace trace;
  Engine engine(TestMachine(2), MakePolicy(PolicyKind::kDynAffDelay), 1);
  engine.SetTraceSink(&trace);
  engine.SubmitJob(two_phase);
  engine.Run();
  size_t yields = 0;
  for (const TraceEvent& e : trace.Events()) {
    if (e.kind == TraceEventKind::kYield) {
      ++yields;
    }
  }
  // The 4 ms gap between a's completion and c's start is far below the 20 ms
  // yield delay: no willing-to-yield advertisement for that processor. The
  // job's final wind-down (nothing left to run) may still yield.
  EXPECT_LE(yields, 2u);
}

TEST(EngineQuantumTest, TimeShareAlternatesJobsOnOneProcessor) {
  RingTrace trace;
  Engine engine(TestMachine(1), MakePolicy(PolicyKind::kTimeShare), 1);
  engine.SetTraceSink(&trace);
  engine.SubmitJob(FlatProfile("a", 1, Milliseconds(450)));
  engine.SubmitJob(FlatProfile("b", 1, Milliseconds(450)));
  engine.Run();
  // With a 100 ms quantum and two 450 ms jobs, several rotations occur, and
  // dispatches alternate between the jobs.
  std::vector<JobId> dispatch_jobs;
  for (const TraceEvent& e : trace.Events()) {
    if (e.kind == TraceEventKind::kDispatch) {
      dispatch_jobs.push_back(e.job);
    }
  }
  ASSERT_GE(dispatch_jobs.size(), 6u);
  size_t alternations = 0;
  for (size_t i = 1; i < dispatch_jobs.size(); ++i) {
    alternations += dispatch_jobs[i] != dispatch_jobs[i - 1] ? 1 : 0;
  }
  EXPECT_EQ(alternations, dispatch_jobs.size() - 1);  // strict round-robin
}

TEST(EngineReconcileTest, LateArrivalPreemptsRunningEquipartition) {
  RingTrace trace;
  Engine engine(TestMachine(4), MakePolicy(PolicyKind::kEquipartition), 1);
  engine.SetTraceSink(&trace);
  engine.SubmitJob(FlatProfile("first", 8, Milliseconds(100)), 0);
  const JobId late = engine.SubmitJob(FlatProfile("late", 8, Milliseconds(100)), Milliseconds(30));
  engine.Run();
  // The late arrival forced preemptions of the first job's running workers.
  size_t preempts = 0;
  for (const TraceEvent& e : trace.Events()) {
    if (e.kind == TraceEventKind::kPreempt) {
      ++preempts;
    }
  }
  EXPECT_GE(preempts, 2u);
  EXPECT_NEAR(engine.job_stats(late).AverageAllocation(), 2.0, 0.3);
}

TEST(EngineReconcileTest, DepartureHandsProcessorsToSurvivor) {
  Engine engine(TestMachine(4), MakePolicy(PolicyKind::kEquipartition), 1);
  const JobId quick = engine.SubmitJob(FlatProfile("quick", 2, Milliseconds(20)));
  const JobId slow = engine.SubmitJob(FlatProfile("slow", 8, Milliseconds(100)));
  engine.Run();
  // After `quick` departs, `slow` gets the whole machine: its average
  // allocation exceeds the 2 processors it started with.
  EXPECT_GT(engine.job_stats(slow).AverageAllocation(), 2.5);
  EXPECT_LT(engine.job_stats(quick).ResponseSeconds(),
            engine.job_stats(slow).ResponseSeconds());
}

TEST(EngineMaxParallelismTest, AllocationNeverExceedsMaxParallelism) {
  AppProfile capped = FlatProfile("capped", 12, Milliseconds(30), /*max_par=*/3);
  Engine engine(TestMachine(8), MakePolicy(PolicyKind::kDynamic), 1);
  const JobId id = engine.SubmitJob(capped);
  engine.Run();
  EXPECT_LE(engine.job_stats(id).AverageAllocation(), 3.0 + 1e-9);
  // 12 threads x 30 ms at <= 3 wide: at least 120 ms.
  EXPECT_GE(engine.job_stats(id).ResponseSeconds(), 0.120);
}

TEST(EngineZeroCacheTest, CachelessJobsPayOnlyPathLength) {
  Engine engine(TestMachine(2), MakePolicy(PolicyKind::kDynamic), 1);
  const JobId id = engine.SubmitJob(FlatProfile("x", 2, Milliseconds(40)));
  engine.Run();
  const JobStats& s = engine.job_stats(id);
  EXPECT_DOUBLE_EQ(s.reload_stall_s, 0.0);
  EXPECT_DOUBLE_EQ(s.steady_stall_s, 0.0);
}

}  // namespace
}  // namespace affsched
