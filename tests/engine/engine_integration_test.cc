// Integration tests: the real (small) applications under every policy.

#include <gtest/gtest.h>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/sched/factory.h"

namespace affsched {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.num_processors = 8;
  return config;
}

class AllPoliciesTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(AllPoliciesTest, MixedSmallWorkloadCompletes) {
  Engine engine(SmallMachine(), MakePolicy(GetParam()), 99);
  const JobId mva = engine.SubmitJob(MakeSmallMvaProfile());
  const JobId mat = engine.SubmitJob(MakeSmallMatrixProfile());
  const JobId grav = engine.SubmitJob(MakeSmallGravityProfile());
  const SimTime end = engine.Run();
  EXPECT_GT(end, 0);
  for (JobId id : {mva, mat, grav}) {
    const JobStats& s = engine.job_stats(id);
    EXPECT_GE(s.completion, 0) << PolicyKindName(GetParam());
    EXPECT_GT(s.useful_work_s, 0.0);
    EXPECT_GT(s.reallocations, 0u);
    EXPECT_LE(s.affinity_dispatches, s.reallocations);
    EXPECT_GT(s.AverageAllocation(), 0.0);
  }
}

TEST_P(AllPoliciesTest, WorkConservedAcrossPolicies) {
  // Useful work executed must equal the graph's total work regardless of the
  // policy that scheduled it.
  Engine engine(SmallMachine(), MakePolicy(GetParam()), 1234);
  const JobId id = engine.SubmitJob(MakeSmallMvaProfile());
  engine.Run();
  // Total work of the small MVA at seed split: compare against a direct
  // rebuild with the same job RNG is awkward, so check the invariant loosely:
  // 36 nodes x 20 ms +/- jitter.
  EXPECT_NEAR(engine.job_stats(id).useful_work_s, 36 * 0.020, 36 * 0.020 * 0.25);
}

TEST_P(AllPoliciesTest, AccountingIdentityHolds) {
  Engine engine(SmallMachine(), MakePolicy(GetParam()), 7);
  const JobId a = engine.SubmitJob(MakeSmallGravityProfile());
  const JobId b = engine.SubmitJob(MakeSmallMatrixProfile());
  engine.Run();
  for (JobId id : {a, b}) {
    const JobStats& s = engine.job_stats(id);
    const double accounted =
        s.useful_work_s + s.reload_stall_s + s.steady_stall_s + s.switch_s + s.waste_s;
    EXPECT_NEAR(s.alloc_integral_s, accounted, 0.02 * accounted + 1e-3)
        << PolicyKindName(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, AllPoliciesTest,
    ::testing::Values(PolicyKind::kEquipartition, PolicyKind::kDynamic, PolicyKind::kDynAff,
                      PolicyKind::kDynAffNoPri, PolicyKind::kDynAffDelay, PolicyKind::kTimeShare,
                      PolicyKind::kTimeShareAff),
    [](const ::testing::TestParamInfo<PolicyKind>& info) {
      std::string name = PolicyKindName(info.param);
      for (char& c : name) {
        if (c == '-') {
          c = '_';
        }
      }
      return name;
    });

TEST(EngineIntegrationTest, AffinityPoliciesRaiseAffinityFraction) {
  // Table 3's key observation: Dyn-Aff dispatches tasks to their previous
  // processors far more often than oblivious Dynamic.
  // Two barrier-heavy jobs on a small machine force processors to bounce
  // between jobs, which is where affinity placement matters.
  GravityParams params;
  params.timesteps = 4;
  params.sequential_work = Milliseconds(10);
  params.phase_threads = {8, 4, 4, 2};
  params.phase_work = {Milliseconds(400), Milliseconds(120), Milliseconds(100), Milliseconds(50)};
  params.phase_cv = {0.2, 0.1, 0.1, 0.45};
  MachineConfig machine;
  machine.num_processors = 4;
  auto affinity_of = [&](PolicyKind kind) {
    Engine engine(machine, MakePolicy(kind), 31);
    engine.SubmitJob(MakeGravityProfile(params));
    engine.SubmitJob(MakeGravityProfile(params));
    engine.Run();
    uint64_t realloc = 0;
    uint64_t affine = 0;
    for (JobId id = 0; id < engine.job_count(); ++id) {
      realloc += engine.job_stats(id).reallocations;
      affine += engine.job_stats(id).affinity_dispatches;
    }
    return static_cast<double>(affine) / static_cast<double>(realloc);
  };
  EXPECT_GT(affinity_of(PolicyKind::kDynAff), affinity_of(PolicyKind::kDynamic));
}

TEST(EngineIntegrationTest, YieldDelayReducesReallocations) {
  auto reallocs_of = [](PolicyKind kind) {
    Engine engine(SmallMachine(), MakePolicy(kind), 13);
    engine.SubmitJob(MakeSmallGravityProfile());
    engine.SubmitJob(MakeSmallGravityProfile());
    engine.Run();
    uint64_t total = 0;
    for (JobId id = 0; id < engine.job_count(); ++id) {
      total += engine.job_stats(id).reallocations;
    }
    return total;
  };
  EXPECT_LT(reallocs_of(PolicyKind::kDynAffDelay), reallocs_of(PolicyKind::kDynAff));
}

TEST(EngineIntegrationTest, EquipartitionMinimisesReallocations) {
  auto reallocs_of = [](PolicyKind kind) {
    Engine engine(SmallMachine(), MakePolicy(kind), 17);
    engine.SubmitJob(MakeSmallGravityProfile());
    engine.SubmitJob(MakeSmallMatrixProfile());
    engine.Run();
    uint64_t total = 0;
    for (JobId id = 0; id < engine.job_count(); ++id) {
      total += engine.job_stats(id).reallocations;
    }
    return total;
  };
  const uint64_t equi = reallocs_of(PolicyKind::kEquipartition);
  const uint64_t dynamic = reallocs_of(PolicyKind::kDynamic);
  EXPECT_LT(equi, dynamic);
}

TEST(EngineIntegrationTest, TimeShareForcesInvoluntarySwitches) {
  // Under quantum rotation with two competing jobs, reallocations abound even
  // for a job that never yields voluntarily.
  Engine engine(SmallMachine(), MakePolicy(PolicyKind::kTimeShare), 23);
  const JobId a = engine.SubmitJob(MakeSmallMatrixProfile());
  engine.SubmitJob(MakeSmallMatrixProfile());
  engine.Run();
  EXPECT_GT(engine.job_stats(a).reallocations, 10u);
}

}  // namespace
}  // namespace affsched
