#include "src/engine/accounting.h"

#include <memory>

#include "gtest/gtest.h"
#include "src/common/time.h"
#include "src/stats/histogram.h"
#include "src/telemetry/metrics.h"
#include "tests/engine/core_harness.h"

namespace affsched {
namespace {

// Advances the harness clock by scheduling and draining a no-op event.
void AdvanceTo(CoreHarness& h, SimTime when) {
  h.core.queue.ScheduleAt(when, [] {});
  while (h.core.queue.now() < when) {
    ASSERT_TRUE(h.core.queue.RunNext());
  }
}

TEST(AccountingTest, ChargeChunkAccumulatesWorkAndStallSplit) {
  CoreHarness h;
  MetricsRegistry registry;
  h.acct.SetMetrics(&registry);
  const JobId id = h.AddActiveJob(1, Milliseconds(10));
  JobState& js = h.core.job_state(id);

  h.acct.ChargeChunk(js, Milliseconds(2), Microseconds(100), Microseconds(50));
  h.acct.ChargeChunk(js, Milliseconds(1), 0, 0);

  const JobStats& st = js.job->stats();
  const double expected_work =
      ToSeconds(h.core.machine.config().ComputeTime(Milliseconds(3)));
  EXPECT_NEAR(st.useful_work_s, expected_work, 1e-12);
  EXPECT_DOUBLE_EQ(st.reload_stall_s, ToSeconds(Microseconds(100)));
  EXPECT_DOUBLE_EQ(st.steady_stall_s, ToSeconds(Microseconds(50)));
  EXPECT_DOUBLE_EQ(h.acct.m.chunks->value(), 2.0);
  EXPECT_DOUBLE_EQ(h.acct.m.reload_stall_ns->value(),
                   static_cast<double>(Microseconds(100)));
  EXPECT_DOUBLE_EQ(h.acct.m.steady_stall_ns->value(),
                   static_cast<double>(Microseconds(50)));
}

TEST(AccountingTest, ChargeSwitchAddsOneKernelPathLength) {
  CoreHarness h;
  MetricsRegistry registry;
  h.acct.SetMetrics(&registry);
  const JobId id = h.AddActiveJob(1, Milliseconds(10));
  JobState& js = h.core.job_state(id);

  h.acct.ChargeSwitch(js);
  h.acct.ChargeSwitch(js);

  EXPECT_DOUBLE_EQ(js.job->stats().switch_s,
                   2.0 * ToSeconds(h.core.machine.config().SwitchCost()));
  EXPECT_DOUBLE_EQ(h.acct.m.switches->value(), 2.0);
}

TEST(AccountingTest, ChargeWasteAccumulatesHeldTime) {
  CoreHarness h;
  const JobId id = h.AddActiveJob(1, Milliseconds(10));
  JobState& js = h.core.job_state(id);

  h.acct.ChargeWaste(js, Milliseconds(3));
  h.acct.ChargeWaste(js, Microseconds(500));

  EXPECT_DOUBLE_EQ(js.job->stats().waste_s, ToSeconds(Microseconds(3500)));
}

TEST(AccountingTest, RecordDispatchTracksAffinityFraction) {
  CoreHarness h;
  MetricsRegistry registry;
  h.acct.SetMetrics(&registry);
  const JobId id = h.AddActiveJob(1, Milliseconds(10));
  JobState& js = h.core.job_state(id);

  h.acct.RecordDispatch(js, /*proc=*/0, /*affine=*/false);
  h.acct.RecordDispatch(js, /*proc=*/0, /*affine=*/true);
  h.acct.RecordDispatch(js, /*proc=*/0, /*affine=*/false);
  h.acct.RecordDispatch(js, /*proc=*/0, /*affine=*/true);

  const JobStats& st = js.job->stats();
  EXPECT_EQ(st.reallocations, 4u);
  EXPECT_EQ(st.affinity_dispatches, 2u);
  EXPECT_DOUBLE_EQ(st.AffinityFraction(), 0.5);
  EXPECT_DOUBLE_EQ(h.acct.m.dispatches->value(), 4.0);
  EXPECT_DOUBLE_EQ(h.acct.m.dispatches_affine->value(), 2.0);
}

TEST(AccountingTest, ChangeAllocationIntegratesProcessorSeconds) {
  CoreHarness h;
  const JobId id = h.AddActiveJob(1, Milliseconds(10));
  JobState& js = h.core.job_state(id);

  h.acct.ChangeAllocation(id, +2);
  AdvanceTo(h, Milliseconds(1000));
  h.acct.ChangeAllocation(id, -1);
  AdvanceTo(h, Milliseconds(1500));
  h.acct.UpdateAllocIntegral(id);

  // 2 processors for 1 s, then 1 processor for 0.5 s.
  EXPECT_NEAR(js.job->stats().alloc_integral_s, 2.5, 1e-9);
  EXPECT_EQ(js.allocation, 1u);
}

TEST(AccountingTest, AllocIntegralFreezesAtCompletion) {
  CoreHarness h;
  const JobId id = h.AddActiveJob(1, Milliseconds(10));
  JobState& js = h.core.job_state(id);

  h.acct.ChangeAllocation(id, +1);
  AdvanceTo(h, Milliseconds(1000));
  js.job->stats().completion = h.core.queue.now();
  AdvanceTo(h, Milliseconds(2000));
  h.acct.UpdateAllocIntegral(id);

  EXPECT_NEAR(js.job->stats().alloc_integral_s, 0.0, 1e-12)
      << "integral updates after completion must be no-ops";
}

TEST(AccountingTest, PriorityFavoursJobsBelowFairShare) {
  CoreHarness h(/*procs=*/4);
  const JobId starved = h.AddActiveJob(4, Milliseconds(10));
  const JobId greedy = h.AddActiveJob(4, Milliseconds(10));

  // Fair share is 2; give one job everything.
  h.acct.ChangeAllocation(greedy, +4);
  AdvanceTo(h, Milliseconds(500));

  EXPECT_GT(h.core.Priority(starved), 0.0);
  EXPECT_LT(h.core.Priority(greedy), 0.0);
  EXPECT_GT(h.core.Priority(starved), h.core.Priority(greedy));
}

TEST(AccountingTest, UpdateCreditBanksAccruedPriority) {
  CoreHarness h(/*procs=*/4);
  const JobId id = h.AddActiveJob(4, Milliseconds(10));
  AdvanceTo(h, Milliseconds(1000));

  const double before = h.core.Priority(id);
  h.acct.UpdateCredit(id);
  JobState& js = h.core.job_state(id);
  EXPECT_DOUBLE_EQ(js.credit, before);
  EXPECT_EQ(js.credit_update, h.core.queue.now());
  // Banking is transparent at the instant it happens.
  EXPECT_DOUBLE_EQ(h.core.Priority(id), before);
}

TEST(AccountingTest, RunningWorkerTransitionsFeedParallelismHistogram) {
  CoreHarness h;
  const JobId id = h.AddActiveJob(2, Milliseconds(10));
  JobState& js = h.core.job_state(id);
  js.par_hist = std::make_unique<WeightedHistogram>(h.core.procs.size());

  h.acct.SetRunningWorkers(id, +1);
  AdvanceTo(h, Milliseconds(1000));
  h.acct.SetRunningWorkers(id, +1);
  AdvanceTo(h, Milliseconds(1500));
  h.acct.SetRunningWorkers(id, -2);

  // 1 worker for 1 s, 2 workers for 0.5 s.
  EXPECT_NEAR(js.par_hist->TotalWeight(), 1.5, 1e-9);
  EXPECT_NEAR(js.par_hist->Fraction(1), 1.0 / 1.5, 1e-9);
  EXPECT_NEAR(js.par_hist->Fraction(2), 0.5 / 1.5, 1e-9);
  EXPECT_EQ(js.running_workers, 0u);
}

TEST(AccountingTest, SetMetricsNullptrDetachesAllHandles) {
  CoreHarness h;
  MetricsRegistry registry;
  h.acct.SetMetrics(&registry);
  ASSERT_NE(h.acct.m.dispatches, nullptr);
  h.acct.SetMetrics(nullptr);
  EXPECT_EQ(h.acct.m.dispatches, nullptr);
  EXPECT_EQ(h.acct.m.active_jobs, nullptr);

  // Charges must still be safe with metrics detached.
  const JobId id = h.AddActiveJob(1, Milliseconds(10));
  h.acct.ChargeChunk(h.core.job_state(id), Milliseconds(1), 0, 0);
  h.acct.RecordDispatch(h.core.job_state(id), /*proc=*/0, true);
}

}  // namespace
}  // namespace affsched
