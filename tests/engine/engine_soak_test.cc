// Soak test: many randomized configurations (policies x seeds x staggered
// arrivals x machine sizes) must all run to completion with invariants
// intact. This is the catch-all net for scheduling deadlocks and accounting
// leaks under combinations no targeted test enumerates.

#include <gtest/gtest.h>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/opensys/arrival_process.h"
#include "src/sched/factory.h"

namespace affsched {
namespace {

const PolicyKind kAllPolicies[] = {
    PolicyKind::kEquipartition, PolicyKind::kDynamic,      PolicyKind::kDynAff,
    PolicyKind::kDynAffNoPri,   PolicyKind::kDynAffDelay,  PolicyKind::kTimeShare,
    PolicyKind::kTimeShareAff,
};

TEST(EngineSoakTest, RandomizedConfigurationsComplete) {
  const std::vector<AppProfile> apps = {MakeSmallMvaProfile(), MakeSmallMatrixProfile(),
                                        MakeSmallGravityProfile()};
  Rng meta(0x50AD5EED);  // seed source for configuration draws
  for (int round = 0; round < 30; ++round) {
    const PolicyKind policy = kAllPolicies[meta.NextBounded(std::size(kAllPolicies))];
    MachineConfig machine;
    machine.num_processors = 1 + meta.NextBounded(12);
    Engine::Options options;
    options.chunk_quantum = Milliseconds(1 + meta.NextBounded(4));
    options.processor_history_depth = 1 + meta.NextBounded(3);
    Engine engine(machine, MakePolicy(policy), meta.NextU64(), options);

    const size_t job_count = 1 + meta.NextBounded(4);
    const auto plan =
        PoissonArrivals(job_count, Milliseconds(200 + meta.NextBounded(800)),
                        {1.0, 1.0, 1.0}, meta.NextU64());
    for (const ArrivalPlanEntry& a : plan) {
      engine.SubmitJob(apps[a.app_index], a.when);
    }
    const SimTime end = engine.Run();
    ASSERT_GT(end, 0) << "round " << round << " policy " << PolicyKindName(policy);

    for (JobId id = 0; id < engine.job_count(); ++id) {
      const JobStats& s = engine.job_stats(id);
      ASSERT_GE(s.completion, s.arrival);
      ASSERT_LE(s.affinity_dispatches, s.reallocations);
      const double accounted =
          s.useful_work_s + s.reload_stall_s + s.steady_stall_s + s.switch_s + s.waste_s;
      ASSERT_NEAR(s.alloc_integral_s, accounted, 0.02 * accounted + 1e-3)
          << "round " << round << " policy " << PolicyKindName(policy) << " job " << id;
    }
  }
}

}  // namespace
}  // namespace affsched
