#include "src/engine/dispatcher.h"

#include <algorithm>

#include "gtest/gtest.h"
#include "src/common/time.h"
#include "tests/engine/core_harness.h"

namespace affsched {
namespace {

// Creates a worker for `id` and parks it on the job's idle list.
CacheOwner MakeIdleWorker(CoreHarness& h, JobId id) {
  const CacheOwner wid = h.core.CreateWorker(id);
  h.dispatcher.ParkWorker(h.core.job_state(id), h.core.worker(wid));
  return wid;
}

TEST(DispatcherTest, ParkWorkerOrdersMostRecentlyIdledFirst) {
  CoreHarness h;
  const JobId id = h.AddActiveJob(2, Milliseconds(10));
  const CacheOwner w1 = MakeIdleWorker(h, id);
  const CacheOwner w2 = MakeIdleWorker(h, id);

  const JobState& js = h.core.job_state(id);
  ASSERT_EQ(js.idle_workers.size(), 2u);
  EXPECT_EQ(js.idle_workers[0], w2);
  EXPECT_EQ(js.idle_workers[1], w1);
  EXPECT_EQ(h.core.worker(w1).state, Worker::State::kIdle);
  EXPECT_EQ(h.core.worker(w1).processor, kNoProcessor);
}

TEST(DispatcherTest, SelectWorkerHonoursPreferredIdleWorker) {
  CoreHarness h;
  const JobId id = h.AddActiveJob(2, Milliseconds(10));
  const CacheOwner w1 = MakeIdleWorker(h, id);
  const CacheOwner w2 = MakeIdleWorker(h, id);

  EXPECT_EQ(h.dispatcher.SelectWorker(id, /*proc=*/0, /*prefer=*/w1), w1);
  const JobState& js = h.core.job_state(id);
  EXPECT_EQ(js.idle_workers.size(), 1u);
  EXPECT_EQ(js.idle_workers[0], w2);
}

TEST(DispatcherTest, SelectWorkerIgnoresPreferenceForBusyWorker) {
  CoreHarness h;
  const JobId id = h.AddActiveJob(2, Milliseconds(10));
  const CacheOwner busy = h.core.CreateWorker(id);
  h.core.worker(busy).state = Worker::State::kRunning;
  const CacheOwner idle = MakeIdleWorker(h, id);

  EXPECT_EQ(h.dispatcher.SelectWorker(id, /*proc=*/0, /*prefer=*/busy), idle);
}

TEST(DispatcherTest, AffinityRuntimePrefersWorkerWithContextOnProcessor) {
  CoreHarness h(/*procs=*/2, /*uses_affinity=*/true);
  const JobId id = h.AddActiveJob(2, Milliseconds(10));
  const CacheOwner affine = h.core.CreateWorker(id);
  h.core.worker(affine).RecordPlacement(1);
  h.dispatcher.ParkWorker(h.core.job_state(id), h.core.worker(affine));
  const CacheOwner fresh = MakeIdleWorker(h, id);

  // `fresh` is most recently idled, but `affine` has its cache context on
  // processor 1 and must win there.
  EXPECT_EQ(h.dispatcher.SelectWorker(id, /*proc=*/1, kNoOwner), affine);
  // On a processor neither remembers, the warmest (most recently idled) wins.
  const JobState& js = h.core.job_state(id);
  ASSERT_EQ(js.idle_workers.size(), 1u);
  EXPECT_EQ(h.dispatcher.SelectWorker(id, /*proc=*/0, kNoOwner), fresh);
}

TEST(DispatcherTest, ObliviousRuntimePicksSomeIdleWorker) {
  CoreHarness h(/*procs=*/2, /*uses_affinity=*/false);
  const JobId id = h.AddActiveJob(4, Milliseconds(10));
  const CacheOwner w1 = MakeIdleWorker(h, id);
  const CacheOwner w2 = MakeIdleWorker(h, id);
  const CacheOwner w3 = MakeIdleWorker(h, id);

  const CacheOwner picked = h.dispatcher.SelectWorker(id, /*proc=*/0, kNoOwner);
  EXPECT_TRUE(picked == w1 || picked == w2 || picked == w3);
  const JobState& js = h.core.job_state(id);
  EXPECT_EQ(js.idle_workers.size(), 2u);
  EXPECT_EQ(std::find(js.idle_workers.begin(), js.idle_workers.end(), picked),
            js.idle_workers.end());
}

TEST(DispatcherTest, SelectWorkerCreatesWhenPoolIsEmpty) {
  CoreHarness h;
  const JobId id = h.AddActiveJob(2, Milliseconds(10));

  const CacheOwner wid = h.dispatcher.SelectWorker(id, /*proc=*/0, kNoOwner);
  ASSERT_TRUE(h.core.HasWorker(wid));
  EXPECT_EQ(h.core.worker(wid).job, id);
  EXPECT_EQ(h.core.worker(wid).state, Worker::State::kIdle);
  EXPECT_TRUE(h.core.job_state(id).idle_workers.empty());
}

TEST(DispatcherTest, DispatchWorkerRunsReadyThreadAndRecordsPlacement) {
  CoreHarness h;
  const JobId id = h.AddActiveJob(1, Milliseconds(1));
  ProcState& ps = h.core.procs[0];
  ps.holder = id;
  h.core.job_state(id).allocation = 1;

  h.dispatcher.DispatchWorker(0);

  ASSERT_NE(ps.running, kNoOwner);
  const Worker& w = h.core.worker(ps.running);
  EXPECT_EQ(w.state, Worker::State::kRunning);
  EXPECT_EQ(w.processor, 0u);
  EXPECT_EQ(w.last_processor(), 0u);
  EXPECT_EQ(h.core.job_state(id).running_workers, 1u);
  EXPECT_EQ(h.core.job_state(id).job->stats().reallocations, 1u);
  // The chunk-completion event is in flight.
  EXPECT_FALSE(h.core.queue.empty());
}

TEST(DispatcherTest, ChunkedExecutionSplitsLongThreads) {
  CoreHarness h;
  // 5 ms of work against a 2 ms chunk quantum: 3 chunks.
  const JobId id = h.AddActiveJob(1, Milliseconds(5));
  ProcState& ps = h.core.procs[0];
  ps.holder = id;
  h.core.job_state(id).allocation = 1;
  MetricsRegistry registry;
  h.acct.SetMetrics(&registry);

  h.dispatcher.DispatchWorker(0);
  while (!h.core.queue.empty()) {
    h.core.queue.RunNext();
  }

  EXPECT_DOUBLE_EQ(h.acct.m.chunks->value(), 3.0);
  EXPECT_DOUBLE_EQ(h.acct.m.thread_completions->value(), 1.0);
  EXPECT_TRUE(h.core.job_state(id).job->Finished());
  // The lone thread's completion finished the job; the processor was freed.
  EXPECT_EQ(ps.holder, kInvalidJobId);
  EXPECT_EQ(ps.running, kNoOwner);
  EXPECT_EQ(h.core.jobs_remaining, 0u);
}

TEST(DispatcherTest, SameWorkerContinuesOntoNextThreadWithoutReallocation) {
  CoreHarness h;
  const JobId id = h.AddActiveJob(2, Milliseconds(1));
  ProcState& ps = h.core.procs[0];
  ps.holder = id;
  h.core.job_state(id).allocation = 1;

  h.dispatcher.DispatchWorker(0);
  while (!h.core.queue.empty()) {
    h.core.queue.RunNext();
  }

  // Both threads ran on the same processor, but only the initial placement
  // counts as a reallocation.
  EXPECT_TRUE(h.core.job_state(id).job->Finished());
  EXPECT_EQ(h.core.job_state(id).job->stats().reallocations, 1u);
}

TEST(DispatcherTest, DispatchWithoutReadyThreadEntersHolding) {
  CoreHarness h;
  const JobId id = h.AddActiveJob(1, Milliseconds(1));
  // Drain the only ready thread so the dispatch finds nothing to run.
  h.core.job_state(id).job->PopReadyThread();
  ProcState& ps = h.core.procs[0];
  ps.holder = id;
  h.core.job_state(id).allocation = 1;

  h.dispatcher.DispatchWorker(0);

  EXPECT_EQ(ps.running, kNoOwner);
  ASSERT_NE(ps.holding, kNoOwner);
  EXPECT_EQ(h.core.worker(ps.holding).state, Worker::State::kHolding);
  // Zero yield delay: the processor is already advertised.
  EXPECT_TRUE(ps.willing);
}

}  // namespace
}  // namespace affsched
