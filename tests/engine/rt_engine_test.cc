// Deadline accounting end to end: the engine must reproduce a hand-computed
// static schedule's tardiness, reconcile the engine.deadline_* metrics with
// per-job stats, and emit the deadline_miss trace event.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/rt/deadline_mix.h"
#include "src/sched/factory.h"
#include "src/telemetry/metrics.h"
#include "src/trace/trace.h"
#include "src/workload/thread_graph.h"

namespace affsched {
namespace {

class CollectingSink : public TraceSink {
 public:
  void Record(const TraceEvent& event) override { events.push_back(event); }
  std::vector<TraceEvent> events;
};

// One serial thread of exactly `work_s` seconds, no cache footprint, no
// jitter: its completion time is a static schedule computable by hand.
AppProfile SerialProfile(double work_s, double deadline_s, bool hard = true) {
  AppProfile profile;
  profile.name = "serial";
  profile.working_set =
      WorkingSetParams{.blocks = 0.0, .buildup_tau_s = 0.01, .steady_miss_per_s = 0.0};
  profile.thread_overlap = 1.0;
  profile.max_parallelism = 1;
  profile.expected_work_s = work_s;
  profile.rt.deadline_s = deadline_s;
  profile.rt.wcet_s = work_s;
  profile.rt.period_s = deadline_s;
  profile.rt.hard = hard;
  profile.build_graph = [work_s](Rng&) {
    auto graph = std::make_unique<ThreadGraph>();
    graph->AddNode(Seconds(work_s));
    return graph;
  };
  return profile;
}

MachineConfig OneProcessor() {
  MachineConfig config;
  config.num_processors = 1;
  return config;
}

TEST(RtEngineTest, MissedDeadlineMatchesHandComputedTardiness) {
  MetricsRegistry registry;
  Engine engine(OneProcessor(), MakePolicy(PolicyKind::kEquipartition), 1);
  engine.SetMetrics(&registry);
  // 1 s of serial work against a 0.4 s deadline: the miss is structural.
  const JobId id = engine.SubmitJob(SerialProfile(1.0, 0.4));
  engine.Run();

  const JobStats& st = engine.job_stats(id);
  ASSERT_EQ(st.deadline_misses, 1u);
  // The schedule is static: completion = arrival + work (+ the one dispatch
  // switch), so tardiness is exactly response minus the relative deadline.
  EXPECT_GE(st.ResponseSeconds(), 1.0);
  EXPECT_NEAR(st.tardiness_s, st.ResponseSeconds() - 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(st.worst_reload_s, 0.0);  // no cache footprint, no reloads

  EXPECT_DOUBLE_EQ(registry.FindOrCreateCounter("engine.deadline_misses")->value(), 1.0);
  EXPECT_NEAR(registry.FindOrCreateCounter("engine.tardiness_ns")->value(),
              st.tardiness_s * 1e9, 1.0);
}

TEST(RtEngineTest, MetDeadlineLeavesRtTermsZero) {
  MetricsRegistry registry;
  Engine engine(OneProcessor(), MakePolicy(PolicyKind::kEquipartition), 1);
  engine.SetMetrics(&registry);
  const JobId id = engine.SubmitJob(SerialProfile(1.0, 100.0, /*hard=*/false));
  engine.Run();

  const JobStats& st = engine.job_stats(id);
  EXPECT_EQ(st.deadline_misses, 0u);
  EXPECT_DOUBLE_EQ(st.tardiness_s, 0.0);
  EXPECT_DOUBLE_EQ(registry.FindOrCreateCounter("engine.deadline_misses")->value(), 0.0);
  EXPECT_DOUBLE_EQ(registry.FindOrCreateCounter("engine.tardiness_ns")->value(), 0.0);
}

TEST(RtEngineTest, BestEffortJobsNeverTouchRtAccounting) {
  MetricsRegistry registry;
  Engine engine(OneProcessor(), MakePolicy(PolicyKind::kEquipartition), 1);
  engine.SetMetrics(&registry);
  AppProfile profile = SerialProfile(1.0, 0.0);  // deadline 0 = inactive
  ASSERT_FALSE(profile.rt.Active());
  const JobId id = engine.SubmitJob(profile);
  engine.Run();
  EXPECT_EQ(engine.job_stats(id).deadline_misses, 0u);
  EXPECT_DOUBLE_EQ(registry.FindOrCreateCounter("engine.deadline_misses")->value(), 0.0);
}

TEST(RtEngineTest, MissEmitsDeadlineMissTraceEvent) {
  CollectingSink sink;
  Engine engine(OneProcessor(), MakePolicy(PolicyKind::kEquipartition), 1);
  engine.SetTraceSink(&sink);
  const JobId id = engine.SubmitJob(SerialProfile(1.0, 0.4));
  engine.Run();

  size_t misses = 0;
  for (const TraceEvent& event : sink.events) {
    if (event.kind != TraceEventKind::kDeadlineMiss) {
      continue;
    }
    ++misses;
    EXPECT_EQ(event.job, id);
    EXPECT_EQ(event.when, engine.job_stats(id).completion);
  }
  EXPECT_EQ(misses, 1u);

  // A met deadline must not emit one.
  CollectingSink quiet;
  Engine ok(OneProcessor(), MakePolicy(PolicyKind::kEquipartition), 1);
  ok.SetTraceSink(&quiet);
  ok.SubmitJob(SerialProfile(1.0, 100.0));
  ok.Run();
  for (const TraceEvent& event : quiet.events) {
    EXPECT_NE(event.kind, TraceEventKind::kDeadlineMiss);
  }
}

// The tight mix is infeasible by construction (deadline = half the ideal
// makespan), so under any policy every stamped job must miss, and the global
// counters must reconcile with the per-job stats.
TEST(RtEngineTest, TightMixMissesEverywhereAndCountersReconcile) {
  std::vector<AppProfile> profiles = {MakeSmallMvaProfile(), MakeSmallMatrixProfile()};
  MachineConfig machine;
  machine.num_processors = 8;
  ASSERT_TRUE(ApplyDeadlineMix("tight", machine.num_processors, &profiles));

  MetricsRegistry registry;
  Engine engine(machine, MakePolicy(PolicyKind::kRtStaticAffinity), 42);
  engine.SetMetrics(&registry);
  for (const AppProfile& profile : profiles) {
    ASSERT_TRUE(profile.rt.Active());
    engine.SubmitJob(profile);
  }
  engine.Run();

  uint64_t misses = 0;
  double tardiness = 0.0;
  for (JobId id = 0; id < engine.job_count(); ++id) {
    const JobStats& st = engine.job_stats(id);
    EXPECT_EQ(st.deadline_misses, 1u) << engine.job_name(id);
    EXPECT_GT(st.tardiness_s, 0.0);
    misses += st.deadline_misses;
    tardiness += st.tardiness_s;
  }
  EXPECT_DOUBLE_EQ(registry.FindOrCreateCounter("engine.deadline_misses")->value(),
                   static_cast<double>(misses));
  EXPECT_NEAR(registry.FindOrCreateCounter("engine.tardiness_ns")->value(), tardiness * 1e9,
              misses * 1.0);
}

// Reload accounting feeds the rt layer's headline number: a job with a real
// footprint observes a positive worst-case reload bounded by its total stall.
TEST(RtEngineTest, WorstReloadIsObservedAndBounded) {
  MachineConfig machine;
  machine.num_processors = 4;
  Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 7);
  const JobId a = engine.SubmitJob(MakeSmallGravityProfile());
  const JobId b = engine.SubmitJob(MakeSmallMatrixProfile());
  engine.Run();
  for (JobId id : {a, b}) {
    const JobStats& st = engine.job_stats(id);
    EXPECT_GT(st.worst_reload_s, 0.0);
    EXPECT_LE(st.worst_reload_s, st.reload_stall_s);
  }
}

}  // namespace
}  // namespace affsched
