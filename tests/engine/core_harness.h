// Test harness for the engine's components: builds an EngineCore wired to
// Accounting/Dispatcher/AllocatorProtocol exactly as Engine does, but with an
// inert policy, so each component's mechanics can be driven directly.

#ifndef TESTS_ENGINE_CORE_HARNESS_H_
#define TESTS_ENGINE_CORE_HARNESS_H_

#include <memory>
#include <string>
#include <utility>

#include "src/engine/accounting.h"
#include "src/engine/allocator_protocol.h"
#include "src/engine/dispatcher.h"
#include "src/engine/engine_core.h"
#include "src/workload/thread_graph.h"
#include "tests/sched/fake_view.h"

namespace affsched {

// A policy that never places anything: component tests drive the mechanics
// themselves and must not be second-guessed by policy callbacks.
class InertPolicy : public Policy {
 public:
  explicit InertPolicy(bool uses_affinity = false) : uses_affinity_(uses_affinity) {}
  std::string name() const override { return "inert"; }
  PolicyDecision OnJobArrival(const SchedView&, JobId) override { return {}; }
  PolicyDecision OnJobDeparture(const SchedView&, JobId) override { return {}; }
  PolicyDecision OnProcessorAvailable(const SchedView&, size_t) override { return {}; }
  PolicyDecision OnRequest(const SchedView&, JobId) override { return {}; }
  bool UsesAffinity() const override { return uses_affinity_; }

 private:
  bool uses_affinity_;
};

struct CoreHarness {
  explicit CoreHarness(size_t procs = 2, bool uses_affinity = false,
                       EngineOptions options = EngineOptions())
      : core(MachineFor(procs), std::make_unique<InertPolicy>(uses_affinity), /*seed=*/1,
             options),
        view(procs),
        acct(core),
        dispatcher(core, acct),
        alloc(core, acct) {
    core.view = &view;
    dispatcher.Connect(&alloc);
    alloc.Connect(&dispatcher);
  }

  static MachineConfig MachineFor(size_t procs) {
    MachineConfig config;
    config.num_processors = procs;
    return config;
  }

  // Mirrors Engine::SubmitJob + OnJobArrival for a cacheless `width`-thread
  // job: the job is active immediately with all threads ready.
  JobId AddActiveJob(size_t width, SimDuration work_per_thread) {
    const JobId id = static_cast<JobId>(core.jobs.size());
    JobState js;
    js.profile = std::make_unique<AppProfile>();
    js.profile->name = "job" + std::to_string(id);
    js.profile->working_set =
        WorkingSetParams{.blocks = 0.0, .buildup_tau_s = 0.01, .steady_miss_per_s = 0.0};
    js.profile->thread_overlap = 1.0;
    js.profile->max_parallelism = width;
    auto graph = std::make_unique<ThreadGraph>();
    for (size_t i = 0; i < width; ++i) {
      graph->AddNode(work_per_thread);
    }
    js.job = std::make_unique<Job>(id, *js.profile, std::move(graph), /*arrival=*/0);
    js.active = true;
    core.jobs.push_back(std::move(js));
    ++core.jobs_remaining;
    core.active_jobs.push_back(id);
    return id;
  }

  EngineCore core;
  FakeSchedView view;
  Accounting acct;
  Dispatcher dispatcher;
  AllocatorProtocol alloc;
};

}  // namespace affsched

#endif  // TESTS_ENGINE_CORE_HARNESS_H_
