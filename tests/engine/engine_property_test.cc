// Property tests: invariants that must hold for ANY (policy, workload, seed)
// combination. Each property is swept over a parameter grid with randomized
// small workloads.

#include <gtest/gtest.h>

#include <memory>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/sched/factory.h"

namespace affsched {
namespace {

struct PropertyCase {
  PolicyKind policy;
  uint64_t seed;
  size_t procs;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  std::string name = PolicyKindName(info.param.policy);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name + "_seed" + std::to_string(info.param.seed) + "_p" +
         std::to_string(info.param.procs);
}

// A randomized workload: 2-3 jobs with random structure drawn from the seed.
std::vector<AppProfile> RandomJobs(uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  std::vector<AppProfile> jobs;
  const size_t count = 2 + rng.NextBounded(2);
  for (size_t i = 0; i < count; ++i) {
    switch (rng.NextBounded(3)) {
      case 0: {
        MvaParams params;
        params.grid = 4 + rng.NextBounded(4);
        params.node_work = Milliseconds(10 + rng.NextBounded(30));
        jobs.push_back(MakeMvaProfile(params));
        break;
      }
      case 1: {
        MatrixParams params;
        params.threads = 6 + rng.NextBounded(12);
        params.thread_work = Milliseconds(40 + rng.NextBounded(120));
        jobs.push_back(MakeMatrixProfile(params));
        break;
      }
      default: {
        GravityParams params;
        params.timesteps = 1 + rng.NextBounded(3);
        params.sequential_work = Milliseconds(5 + rng.NextBounded(20));
        params.phase_threads = {4 + rng.NextBounded(6), 3, 3, 2};
        params.phase_work = {Milliseconds(200 + rng.NextBounded(300)), Milliseconds(80),
                             Milliseconds(60), Milliseconds(40)};
        params.phase_cv = {0.2, 0.1, 0.1, 0.4};
        jobs.push_back(MakeGravityProfile(params));
        break;
      }
    }
  }
  return jobs;
}

class EnginePropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  struct Expected {
    double total_work_s = 0.0;
  };

  // Builds and runs the engine; returns it for inspection.
  std::unique_ptr<Engine> RunCase(Expected* expected) {
    const PropertyCase c = GetParam();
    MachineConfig machine;
    machine.num_processors = c.procs;
    auto engine = std::make_unique<Engine>(machine, MakePolicy(c.policy), c.seed);
    for (const AppProfile& job : RandomJobs(c.seed)) {
      engine->SubmitJob(job);
    }
    // Total work must equal the sum of the generated graphs. Rebuild them
    // with the same derived RNG stream the engine used: not accessible, so
    // derive the invariant from the engine's own reporting instead.
    engine->Run();
    if (expected != nullptr) {
      for (JobId id = 0; id < engine->job_count(); ++id) {
        expected->total_work_s += engine->job(id).graph().TotalWork() > 0
                                      ? ToSeconds(engine->job(id).graph().TotalWork())
                                      : 0.0;
      }
    }
    return engine;
  }
};

TEST_P(EnginePropertyTest, AllJobsComplete) {
  auto engine = RunCase(nullptr);
  for (JobId id = 0; id < engine->job_count(); ++id) {
    EXPECT_GE(engine->job_stats(id).completion, 0);
    EXPECT_TRUE(engine->job(id).Finished());
  }
}

TEST_P(EnginePropertyTest, WorkIsConserved) {
  // Useful work executed equals the thread graph's total work, regardless of
  // policy, preemptions, or migrations.
  Expected expected;
  auto engine = RunCase(&expected);
  double executed = 0.0;
  for (JobId id = 0; id < engine->job_count(); ++id) {
    executed += engine->job_stats(id).useful_work_s;
  }
  EXPECT_NEAR(executed, expected.total_work_s, 1e-6 * expected.total_work_s + 1e-9);
}

TEST_P(EnginePropertyTest, AllocationIntegralIdentity) {
  // Every processor-second a job holds is accounted as work, stall, switch
  // path, or waste.
  auto engine = RunCase(nullptr);
  for (JobId id = 0; id < engine->job_count(); ++id) {
    const JobStats& s = engine->job_stats(id);
    const double accounted =
        s.useful_work_s + s.reload_stall_s + s.steady_stall_s + s.switch_s + s.waste_s;
    EXPECT_NEAR(s.alloc_integral_s, accounted, 0.02 * accounted + 1e-3);
  }
}

TEST_P(EnginePropertyTest, StatisticsAreSane) {
  auto engine = RunCase(nullptr);
  for (JobId id = 0; id < engine->job_count(); ++id) {
    const JobStats& s = engine->job_stats(id);
    EXPECT_LE(s.affinity_dispatches, s.reallocations);
    EXPECT_GE(s.reallocations, 1u);  // at least the first dispatch
    EXPECT_GE(s.ResponseSeconds(), 0.0);
    EXPECT_GT(s.AverageAllocation(), 0.0);
    EXPECT_LE(s.AverageAllocation(),
              static_cast<double>(engine->machine().config().num_processors) + 1e-9);
    EXPECT_GE(s.waste_s, 0.0);
    EXPECT_GE(s.reload_stall_s, 0.0);
    // The switch path length is charged at least once per reallocation
    // (aborted switches — e.g. a retarget while the path cost was being
    // paid — charge without producing a dispatch).
    EXPECT_GE(s.switch_s + 1e-12, 750e-6 * static_cast<double>(s.reallocations));
  }
}

TEST_P(EnginePropertyTest, DeterministicReplay) {
  const PropertyCase c = GetParam();
  MachineConfig machine;
  machine.num_processors = c.procs;
  auto run_once = [&]() {
    Engine engine(machine, MakePolicy(c.policy), c.seed);
    for (const AppProfile& job : RandomJobs(c.seed)) {
      engine.SubmitJob(job);
    }
    engine.Run();
    std::vector<double> rts;
    for (JobId id = 0; id < engine.job_count(); ++id) {
      rts.push_back(engine.job_stats(id).ResponseSeconds());
    }
    return rts;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_P(EnginePropertyTest, ResponseBoundedBelowByCriticalWork) {
  // A job can never finish faster than its total work spread over the whole
  // machine (ignoring the even stricter critical-path bound).
  auto engine = RunCase(nullptr);
  const double procs = static_cast<double>(engine->machine().config().num_processors);
  for (JobId id = 0; id < engine->job_count(); ++id) {
    const JobStats& s = engine->job_stats(id);
    EXPECT_GE(s.ResponseSeconds() + 1e-9, s.useful_work_s / procs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EnginePropertyTest,
    ::testing::Values(
        PropertyCase{PolicyKind::kEquipartition, 1, 4}, PropertyCase{PolicyKind::kDynamic, 1, 4},
        PropertyCase{PolicyKind::kDynAff, 1, 4}, PropertyCase{PolicyKind::kDynAffNoPri, 1, 4},
        PropertyCase{PolicyKind::kDynAffDelay, 1, 4}, PropertyCase{PolicyKind::kTimeShare, 1, 4},
        PropertyCase{PolicyKind::kEquipartition, 2, 8}, PropertyCase{PolicyKind::kDynamic, 2, 8},
        PropertyCase{PolicyKind::kDynAff, 2, 8}, PropertyCase{PolicyKind::kDynAffDelay, 3, 8},
        PropertyCase{PolicyKind::kDynamic, 3, 2}, PropertyCase{PolicyKind::kDynAff, 4, 2},
        PropertyCase{PolicyKind::kTimeShareAff, 4, 4}, PropertyCase{PolicyKind::kDynamic, 5, 16},
        PropertyCase{PolicyKind::kDynAffNoPri, 5, 3}, PropertyCase{PolicyKind::kDynAff, 6, 5}),
    CaseName);

}  // namespace
}  // namespace affsched
