// Engine integration for the multi-queue family: steal/balance accounting
// mechanics via the core harness, tier-limited steal counters in full runs,
// and the no-steal baseline against the centralized Dyn-Aff on a flat
// machine.

#include <gtest/gtest.h>

#include <vector>

#include "src/apps/apps.h"
#include "src/common/check.h"
#include "src/common/time.h"
#include "src/measure/experiment.h"
#include "src/measure/mixes.h"
#include "src/topology/topology.h"
#include "tests/engine/core_harness.h"

namespace affsched {
namespace {

TEST(MultiQueueEngineTest, RealisedStealAssignmentBumpsTheTierCounter) {
  CoreHarness h(2);
  const JobId a = h.AddActiveJob(1, Milliseconds(4));

  PolicyDecision decision;
  decision.assignments.push_back(
      Assignment{0, a, kNoOwner, DecisionReason::kSteal, /*steal_tier=*/1});
  h.alloc.ApplyDecision(decision, DecisionSite::kProcessorAvailable);

  const JobStats& stats = h.core.job_state(a).job->stats();
  EXPECT_EQ(stats.steals_same_cluster, 1u);
  EXPECT_EQ(stats.steals_same_node, 0u);
  EXPECT_EQ(stats.steals_cross_node, 0u);
  EXPECT_EQ(stats.TotalSteals(), 1u);

  // Re-granting the processor to its current holder is a no-op and must not
  // double-count the steal.
  h.alloc.ApplyDecision(decision, DecisionSite::kProcessorAvailable);
  EXPECT_EQ(stats.steals_same_cluster, 1u);
}

TEST(MultiQueueEngineTest, BalanceMigrateAssignmentBumpsTheBalanceCounter) {
  CoreHarness h(2);
  const JobId a = h.AddActiveJob(1, Milliseconds(4));

  PolicyDecision decision;
  decision.assignments.push_back(
      Assignment{1, a, kNoOwner, DecisionReason::kBalanceMigrate});
  h.alloc.ApplyDecision(decision, DecisionSite::kBalanceTick);

  const JobStats& stats = h.core.job_state(a).job->stats();
  EXPECT_EQ(stats.balance_migrations, 1u);
  EXPECT_EQ(stats.TotalSteals(), 0u);
}

MachineConfig NumaMachine() {
  MachineConfig machine = PaperMachineConfig();
  std::string error;
  AFF_CHECK_MSG(ParseTopologySpec("numa-4x8,cores-per-cluster=4,clusters-per-node=2",
                                  &machine.topology, &error),
                error.c_str());
  return machine;
}

uint64_t TotalStealsAcrossJobs(const RunResult& run, size_t tier) {
  uint64_t total = 0;
  for (const JobResult& job : run.jobs) {
    switch (tier) {
      case 1:
        total += job.stats.steals_same_cluster;
        break;
      case 2:
        total += job.stats.steals_same_node;
        break;
      default:
        total += job.stats.steals_cross_node;
        break;
    }
  }
  return total;
}

TEST(MultiQueueEngineTest, StealCountersStayWithinTheRadius) {
  const MachineConfig machine = NumaMachine();
  const std::vector<AppProfile> jobs = PaperMixes()[4].Expand(DefaultProfiles());

  const RunResult sibling = RunOnce(machine, PolicyKind::kMqSibling, jobs, /*seed=*/42);
  EXPECT_GT(TotalStealsAcrossJobs(sibling, 1), 0u);
  EXPECT_EQ(TotalStealsAcrossJobs(sibling, 2), 0u);
  EXPECT_EQ(TotalStealsAcrossJobs(sibling, 3), 0u);

  const RunResult numa = RunOnce(machine, PolicyKind::kMqNuma, jobs, /*seed=*/42);
  EXPECT_GT(TotalStealsAcrossJobs(numa, 3), 0u);
}

TEST(MultiQueueEngineTest, NoStealBaselineNeverSteals) {
  const std::vector<AppProfile> jobs = PaperMixes()[4].Expand(DefaultProfiles());
  const RunResult run = RunOnce(NumaMachine(), PolicyKind::kMqNoSteal, jobs, /*seed=*/42);
  for (const JobResult& job : run.jobs) {
    EXPECT_EQ(job.stats.TotalSteals(), 0u);
    EXPECT_EQ(job.stats.balance_migrations, 0u);
  }
}

TEST(MultiQueueEngineTest, NoStealTracksDynAffOnTheFlatMachine) {
  // Same workload draw (common random numbers: graphs come from the engine
  // RNG at submission, which depends only on the seed and submission order),
  // so useful work is identical and responses stay comparable — per-queue
  // scheduling reshuffles waiting, not work.
  const MachineConfig machine = PaperMachineConfig();
  const std::vector<AppProfile> jobs = PaperMixes()[4].Expand(DefaultProfiles());
  const RunResult mq = RunOnce(machine, PolicyKind::kMqNoSteal, jobs, /*seed=*/42);
  const RunResult dyn = RunOnce(machine, PolicyKind::kDynAff, jobs, /*seed=*/42);
  ASSERT_EQ(mq.jobs.size(), dyn.jobs.size());
  for (size_t j = 0; j < mq.jobs.size(); ++j) {
    EXPECT_NEAR(mq.jobs[j].stats.useful_work_s, dyn.jobs[j].stats.useful_work_s, 1e-6);
    const double ratio =
        mq.jobs[j].stats.ResponseSeconds() / dyn.jobs[j].stats.ResponseSeconds();
    EXPECT_GT(ratio, 1.0 / 3.0) << mq.jobs[j].app;
    EXPECT_LT(ratio, 3.0) << mq.jobs[j].app;
    EXPECT_EQ(mq.jobs[j].stats.TotalSteals(), 0u);
  }
}

TEST(MultiQueueEngineTest, BalanceIntervalOverrideDrivesTheTick) {
  // With a 5 ms engine-level override the balance tick runs even though the
  // policy's own interval is 0; with neither, it never fires. The tick is a
  // no-op on balanced queues, so both runs stay byte-identical in stats —
  // this pins that an idle balance tick does not perturb the trajectory.
  const std::vector<AppProfile> jobs = PaperMixes()[4].Expand(DefaultProfiles());
  EngineOptions with_tick;
  with_tick.balance_interval = Milliseconds(5);
  const RunResult ticked =
      RunOnce(PaperMachineConfig(), PolicyKind::kMqNoSteal, jobs, /*seed=*/42, with_tick);
  const RunResult plain =
      RunOnce(PaperMachineConfig(), PolicyKind::kMqNoSteal, jobs, /*seed=*/42);
  ASSERT_EQ(ticked.jobs.size(), plain.jobs.size());
  for (size_t j = 0; j < ticked.jobs.size(); ++j) {
    EXPECT_DOUBLE_EQ(ticked.jobs[j].stats.ResponseSeconds(),
                     plain.jobs[j].stats.ResponseSeconds());
    EXPECT_EQ(ticked.jobs[j].stats.balance_migrations, 0u);
  }
}

}  // namespace
}  // namespace affsched
