#include "src/engine/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sched/factory.h"

namespace affsched {
namespace {

// A profile with no cache behaviour, for timing-exact tests.
AppProfile CachelessProfile(std::string name, size_t width, SimDuration work_per_thread,
                            size_t max_par = 0) {
  AppProfile profile;
  profile.name = std::move(name);
  profile.working_set = WorkingSetParams{.blocks = 0.0, .buildup_tau_s = 0.01,
                                         .steady_miss_per_s = 0.0};
  profile.thread_overlap = 1.0;
  profile.max_parallelism = max_par == 0 ? width : max_par;
  profile.build_graph = [width, work_per_thread](Rng&) {
    auto g = std::make_unique<ThreadGraph>();
    for (size_t i = 0; i < width; ++i) {
      g->AddNode(work_per_thread);
    }
    return g;
  };
  return profile;
}

AppProfile CachedProfile(std::string name, size_t width, SimDuration work_per_thread,
                         double blocks) {
  AppProfile profile = CachelessProfile(std::move(name), width, work_per_thread);
  profile.working_set.blocks = blocks;
  profile.working_set.buildup_tau_s = 0.005;
  return profile;
}

MachineConfig TestMachine(size_t procs = 4) {
  MachineConfig config;
  config.num_processors = procs;
  return config;
}

TEST(EngineTest, SingleThreadJobRunsToCompletion) {
  Engine engine(TestMachine(), MakePolicy(PolicyKind::kDynamic), 1);
  const JobId id = engine.SubmitJob(CachelessProfile("solo", 1, Milliseconds(50)));
  const SimTime end = engine.Run();
  const JobStats& stats = engine.job_stats(id);
  // Response = one switch (dispatch) + 50 ms of work.
  EXPECT_EQ(end, Microseconds(750) + Milliseconds(50));
  EXPECT_DOUBLE_EQ(stats.useful_work_s, 0.050);
  EXPECT_EQ(stats.reallocations, 1u);
  EXPECT_NEAR(stats.ResponseSeconds(), 0.05075, 1e-9);
}

TEST(EngineTest, ParallelJobUsesAllProcessors) {
  Engine engine(TestMachine(4), MakePolicy(PolicyKind::kDynamic), 1);
  const JobId id = engine.SubmitJob(CachelessProfile("wide", 4, Milliseconds(40)));
  engine.Run();
  const JobStats& stats = engine.job_stats(id);
  EXPECT_DOUBLE_EQ(stats.useful_work_s, 0.160);
  // All four threads ran concurrently: response is near 40 ms, far below the
  // 160 ms serial time.
  EXPECT_LT(stats.ResponseSeconds(), 0.060);
  EXPECT_NEAR(stats.AverageAllocation(), 4.0, 0.5);
}

TEST(EngineTest, SerialChainRespectsDependencies) {
  AppProfile chain = CachelessProfile("chain", 0, 0);
  chain.max_parallelism = 4;
  chain.build_graph = [](Rng&) {
    auto g = std::make_unique<ThreadGraph>();
    const size_t a = g->AddNode(Milliseconds(10));
    const size_t b = g->AddNode(Milliseconds(10));
    const size_t c = g->AddNode(Milliseconds(10));
    g->AddEdge(a, b);
    g->AddEdge(b, c);
    return g;
  };
  Engine engine(TestMachine(4), MakePolicy(PolicyKind::kDynamic), 1);
  const JobId id = engine.SubmitJob(chain);
  engine.Run();
  // 30 ms of serial work; only one processor ever used at a time.
  EXPECT_GE(engine.job_stats(id).ResponseSeconds(), 0.030);
  EXPECT_LE(engine.job_stats(id).AverageAllocation(), 1.1);
}

TEST(EngineTest, TwoJobsShareUnderDynamic) {
  Engine engine(TestMachine(4), MakePolicy(PolicyKind::kDynamic), 1);
  const JobId a = engine.SubmitJob(CachelessProfile("a", 8, Milliseconds(30)));
  const JobId b = engine.SubmitJob(CachelessProfile("b", 8, Milliseconds(30)));
  engine.Run();
  // Both jobs complete, and each got roughly half the machine.
  EXPECT_NEAR(engine.job_stats(a).AverageAllocation(), 2.0, 1.0);
  EXPECT_NEAR(engine.job_stats(b).AverageAllocation(), 2.0, 1.0);
}

TEST(EngineTest, EquipartitionWastesHeldProcessors) {
  // A 1-wide job under Equipartition receives extra processors (up to its
  // max parallelism) and wastes them.
  AppProfile narrow = CachelessProfile("narrow", 1, Milliseconds(100));
  narrow.max_parallelism = 4;
  Engine engine(TestMachine(4), MakePolicy(PolicyKind::kEquipartition), 1);
  const JobId id = engine.SubmitJob(narrow);
  engine.Run();
  const JobStats& stats = engine.job_stats(id);
  // Three held-but-idle processors for ~100 ms.
  EXPECT_NEAR(stats.waste_s, 0.3, 0.05);
}

TEST(EngineTest, DynamicDoesNotHoardIdleProcessors) {
  AppProfile narrow = CachelessProfile("narrow", 1, Milliseconds(100));
  narrow.max_parallelism = 4;
  Engine engine(TestMachine(4), MakePolicy(PolicyKind::kDynamic), 1);
  const JobId id = engine.SubmitJob(narrow);
  engine.Run();
  EXPECT_LT(engine.job_stats(id).waste_s, 0.01);
}

TEST(EngineTest, ReloadStallsAppearAfterMigration) {
  // Two cache-heavy jobs on one processor (forced interleaving) incur reload
  // stalls; a solo job does not.
  MachineConfig single = TestMachine(1);
  Engine solo(single, MakePolicy(PolicyKind::kTimeShare), 1);
  const JobId s = solo.SubmitJob(CachedProfile("solo", 1, Milliseconds(400), 2000.0));
  solo.Run();
  const double solo_reload = solo.job_stats(s).reload_stall_s;

  Engine shared(single, MakePolicy(PolicyKind::kTimeShare), 1);
  const JobId a = shared.SubmitJob(CachedProfile("a", 1, Milliseconds(400), 2000.0));
  shared.SubmitJob(CachedProfile("b", 1, Milliseconds(400), 2000.0));
  shared.Run();
  EXPECT_GT(shared.job_stats(a).reload_stall_s, solo_reload);
}

TEST(EngineTest, DeterministicForSameSeed) {
  // A profile whose thread lengths are drawn from the job RNG, so the seed
  // actually matters.
  AppProfile jittered = CachedProfile("a", 6, Milliseconds(20), 500.0);
  jittered.build_graph = [](Rng& rng) {
    auto g = std::make_unique<ThreadGraph>();
    for (size_t i = 0; i < 6; ++i) {
      g->AddNode(Milliseconds(rng.NextUniform(10.0, 30.0)));
    }
    return g;
  };
  auto run = [&jittered](uint64_t seed) {
    Engine engine(TestMachine(4), MakePolicy(PolicyKind::kDynAff), seed);
    engine.SubmitJob(jittered);
    engine.SubmitJob(jittered);
    engine.Run();
    return std::pair(engine.job_stats(0).ResponseSeconds(),
                     engine.job_stats(1).ResponseSeconds());
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(EngineTest, AffinityFractionTrackedPerDispatch) {
  Engine engine(TestMachine(2), MakePolicy(PolicyKind::kDynAff), 1);
  const JobId id = engine.SubmitJob(CachelessProfile("x", 4, Milliseconds(20)));
  engine.Run();
  const JobStats& stats = engine.job_stats(id);
  EXPECT_GE(stats.reallocations, 2u);
  EXPECT_LE(stats.affinity_dispatches, stats.reallocations);
}

TEST(EngineTest, SwitchCostsChargedPerReallocation) {
  Engine engine(TestMachine(2), MakePolicy(PolicyKind::kDynamic), 1);
  const JobId id = engine.SubmitJob(CachelessProfile("x", 2, Milliseconds(20)));
  engine.Run();
  const JobStats& stats = engine.job_stats(id);
  EXPECT_NEAR(stats.switch_s, 750e-6 * static_cast<double>(stats.reallocations), 1e-9);
}

TEST(EngineTest, AllocationIntegralAccountsEverything) {
  // Processor-seconds held = work + stalls + switch + waste.
  Engine engine(TestMachine(4), MakePolicy(PolicyKind::kEquipartition), 1);
  const JobId id = engine.SubmitJob(CachedProfile("x", 6, Milliseconds(30), 1000.0));
  engine.Run();
  const JobStats& s = engine.job_stats(id);
  const double accounted =
      s.useful_work_s + s.reload_stall_s + s.steady_stall_s + s.switch_s + s.waste_s;
  EXPECT_NEAR(s.alloc_integral_s, accounted, 0.01 * accounted + 1e-6);
}

TEST(EngineTest, ParallelismHistogramRecordsProfile) {
  Engine::Options options;
  options.record_parallelism = true;
  Engine engine(TestMachine(4), MakePolicy(PolicyKind::kDynamic), 1, options);
  const JobId id = engine.SubmitJob(CachelessProfile("x", 4, Milliseconds(50)));
  engine.Run();
  const WeightedHistogram* hist = engine.parallelism_histogram(id);
  ASSERT_NE(hist, nullptr);
  EXPECT_GT(hist->TotalWeight(), 0.0);
  EXPECT_GT(hist->Mean(), 2.0);  // mostly ran 4-wide
}

TEST(EngineTest, StaggeredArrivalsRepartition) {
  Engine engine(TestMachine(4), MakePolicy(PolicyKind::kEquipartition), 1);
  const JobId a = engine.SubmitJob(CachelessProfile("a", 8, Milliseconds(50)), 0);
  const JobId b = engine.SubmitJob(CachelessProfile("b", 8, Milliseconds(50)), Milliseconds(20));
  engine.Run();
  EXPECT_GE(engine.job_stats(b).ResponseSeconds(), 0.05);
  // Job a started with all 4 processors, then dropped to 2.
  EXPECT_GT(engine.job_stats(a).AverageAllocation(), 2.0);
}

TEST(EngineTest, YieldDelayKeepsProcessorThroughShortGaps) {
  // A two-phase job with a gap shorter than the yield delay: under
  // Dyn-Aff-Delay the second phase restarts without a new reallocation on
  // the held processor.
  AppProfile phased = CachelessProfile("phased", 0, 0);
  phased.max_parallelism = 2;
  phased.build_graph = [](Rng&) {
    auto g = std::make_unique<ThreadGraph>();
    const size_t a = g->AddNode(Milliseconds(30));
    const size_t b = g->AddNode(Milliseconds(30));
    const size_t c = g->AddNode(Milliseconds(30));
    g->AddEdge(a, c);
    g->AddEdge(b, c);  // join: one worker idles while the other finishes
    return g;
  };
  Engine delay_engine(TestMachine(2), MakePolicy(PolicyKind::kDynAffDelay), 7);
  const JobId id = delay_engine.SubmitJob(phased);
  delay_engine.Run();
  // Two initial dispatches only; the join thread reuses a held processor.
  EXPECT_EQ(delay_engine.job_stats(id).reallocations, 2u);
}

TEST(EngineTest, MakespanIsMaxCompletion) {
  Engine engine(TestMachine(2), MakePolicy(PolicyKind::kDynamic), 1);
  engine.SubmitJob(CachelessProfile("short", 1, Milliseconds(10)));
  engine.SubmitJob(CachelessProfile("long", 1, Milliseconds(90)));
  const SimTime end = engine.Run();
  EXPECT_GE(end, Milliseconds(90));
  EXPECT_EQ(end, std::max(engine.job_stats(0).completion, engine.job_stats(1).completion));
}

TEST(EngineDeathTest, SubmitAfterRunAborts) {
  Engine engine(TestMachine(2), MakePolicy(PolicyKind::kDynamic), 1);
  engine.SubmitJob(CachelessProfile("x", 1, Milliseconds(1)));
  engine.Run();
  EXPECT_DEATH(engine.SubmitJob(CachelessProfile("y", 1, Milliseconds(1))), "before Run");
}

}  // namespace
}  // namespace affsched
