#include "src/workload/job.h"

#include <gtest/gtest.h>

#include <memory>

namespace affsched {
namespace {

AppProfile ChainProfile(size_t length, SimDuration work) {
  AppProfile profile;
  profile.name = "chain";
  profile.max_parallelism = 1;
  profile.build_graph = [length, work](Rng&) {
    auto g = std::make_unique<ThreadGraph>();
    size_t prev = SIZE_MAX;
    for (size_t i = 0; i < length; ++i) {
      const size_t n = g->AddNode(work);
      if (prev != SIZE_MAX) {
        g->AddEdge(prev, n);
      }
      prev = n;
    }
    return g;
  };
  return profile;
}

AppProfile ParallelProfile(size_t width, SimDuration work) {
  AppProfile profile;
  profile.name = "par";
  profile.max_parallelism = width;
  profile.build_graph = [width, work](Rng&) {
    auto g = std::make_unique<ThreadGraph>();
    for (size_t i = 0; i < width; ++i) {
      g->AddNode(work);
    }
    return g;
  };
  return profile;
}

std::unique_ptr<Job> MakeJob(const AppProfile& profile, JobId id = 0) {
  Rng rng(1);
  return std::make_unique<Job>(id, profile, profile.build_graph(rng), 0);
}

TEST(JobTest, InitialReadyThreadsQueued) {
  const AppProfile profile = ParallelProfile(4, Milliseconds(5));
  auto job = MakeJob(profile);
  EXPECT_TRUE(job->HasReadyThread());
  EXPECT_EQ(job->ReadyCount(), 4u);
}

TEST(JobTest, PopReturnsThreadWithFullWork) {
  const AppProfile profile = ParallelProfile(2, Milliseconds(5));
  auto job = MakeJob(profile);
  const ThreadRef t = job->PopReadyThread();
  EXPECT_EQ(t.remaining, Milliseconds(5));
  EXPECT_EQ(job->ReadyCount(), 1u);
}

TEST(JobTest, CompleteThreadEnablesSuccessors) {
  const AppProfile profile = ChainProfile(3, Milliseconds(1));
  auto job = MakeJob(profile);
  EXPECT_EQ(job->ReadyCount(), 1u);
  ThreadRef t = job->PopReadyThread();
  EXPECT_EQ(job->CompleteThread(t.node), 1u);
  EXPECT_EQ(job->ReadyCount(), 1u);
  t = job->PopReadyThread();
  job->CompleteThread(t.node);
  t = job->PopReadyThread();
  EXPECT_EQ(job->CompleteThread(t.node), 0u);
  EXPECT_TRUE(job->Finished());
}

TEST(JobTest, PreemptedThreadResumesFirst) {
  const AppProfile profile = ParallelProfile(3, Milliseconds(10));
  auto job = MakeJob(profile);
  ThreadRef t = job->PopReadyThread();
  t.remaining = Milliseconds(4);  // partially executed
  job->PushPreemptedThread(t);
  const ThreadRef resumed = job->PopReadyThread();
  EXPECT_EQ(resumed.node, t.node);
  EXPECT_EQ(resumed.remaining, Milliseconds(4));
}

TEST(JobTest, StatsDeriveResponseAndAllocation) {
  JobStats stats;
  stats.arrival = Seconds(1);
  stats.completion = Seconds(21);
  stats.alloc_integral_s = 100.0;
  EXPECT_DOUBLE_EQ(stats.ResponseSeconds(), 20.0);
  EXPECT_DOUBLE_EQ(stats.AverageAllocation(), 5.0);
}

TEST(JobTest, StatsAffinityFraction) {
  JobStats stats;
  EXPECT_DOUBLE_EQ(stats.AffinityFraction(), 0.0);
  stats.reallocations = 100;
  stats.affinity_dispatches = 83;
  EXPECT_DOUBLE_EQ(stats.AffinityFraction(), 0.83);
}

TEST(JobTest, ReallocationIntervalUsesAllocation) {
  // Table 3 reports the per-processor interval: RT x avg-alloc / #reallocs.
  JobStats stats;
  stats.arrival = 0;
  stats.completion = Seconds(87.5);
  stats.alloc_integral_s = 87.5 * 8.27;
  stats.reallocations = 2469;
  EXPECT_NEAR(stats.ReallocationIntervalSeconds(), 0.293, 0.001);
}

TEST(JobStatsDeathTest, ResponseBeforeCompletionAborts) {
  JobStats stats;
  EXPECT_DEATH(stats.ResponseSeconds(), "not completed");
}

TEST(JobTest, NameComesFromProfile) {
  const AppProfile profile = ParallelProfile(1, 1);
  auto job = MakeJob(profile, 7);
  EXPECT_EQ(job->name(), "par");
  EXPECT_EQ(job->id(), 7u);
  EXPECT_EQ(job->max_parallelism(), 1u);
}

}  // namespace
}  // namespace affsched
