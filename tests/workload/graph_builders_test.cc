#include "src/workload/graph_builders.h"

#include <gtest/gtest.h>

#include <numeric>

namespace affsched {
namespace {

TEST(GraphBuildersTest, ForkIsFlat) {
  ThreadGraph g;
  const auto nodes = AddFork(g, 5, ConstantWork(Milliseconds(10)));
  g.Start();
  EXPECT_EQ(nodes.size(), 5u);
  EXPECT_EQ(g.initial_ready().size(), 5u);
  EXPECT_EQ(g.TotalWork(), Milliseconds(50));
}

TEST(GraphBuildersTest, ChainIsSerial) {
  ThreadGraph g;
  const auto nodes = AddChain(g, 4, ConstantWork(Milliseconds(1)));
  const auto widths = g.LevelWidths();
  EXPECT_EQ(widths, (std::vector<size_t>{1, 1, 1, 1}));
  g.Start();
  ASSERT_EQ(g.initial_ready().size(), 1u);
  EXPECT_EQ(g.initial_ready()[0], nodes[0]);
}

TEST(GraphBuildersTest, BarrierPhaseWaitsForAll) {
  ThreadGraph g;
  const auto phase1 = AddFork(g, 3, ConstantWork(1));
  const auto phase2 = AddBarrierPhase(g, phase1, 2, ConstantWork(1));
  g.Start();
  EXPECT_TRUE(g.Complete(phase1[0]).empty());
  EXPECT_TRUE(g.Complete(phase1[1]).empty());
  const auto released = g.Complete(phase1[2]);
  EXPECT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0], phase2[0]);
}

TEST(GraphBuildersTest, WavefrontMatchesAppShape) {
  ThreadGraph g;
  AddWavefront(g, 4, 4, ConstantWork(1));
  const auto widths = g.LevelWidths();
  EXPECT_EQ(widths, (std::vector<size_t>{1, 2, 3, 4, 3, 2, 1}));
}

TEST(GraphBuildersTest, RectangularWavefront) {
  ThreadGraph g;
  AddWavefront(g, 2, 5, ConstantWork(1));
  const auto widths = g.LevelWidths();
  // Diagonal widths of a 2x5 grid: 1,2,2,2,2,1.
  EXPECT_EQ(widths, (std::vector<size_t>{1, 2, 2, 2, 2, 1}));
}

TEST(GraphBuildersTest, PipelineSteadyStateWidth) {
  ThreadGraph g;
  AddPipeline(g, 3, 6, ConstantWork(1));
  const auto widths = g.LevelWidths();
  // A (stages x items) pipeline levelises like a wavefront of that shape.
  EXPECT_EQ(widths.size(), 3u + 6u - 1u);
  size_t peak = 0;
  for (size_t w : widths) {
    peak = std::max(peak, w);
  }
  EXPECT_EQ(peak, 3u);  // bounded by stage count
}

TEST(GraphBuildersTest, PipelineOrdering) {
  ThreadGraph g;
  const auto nodes = AddPipeline(g, 2, 2, ConstantWork(1));
  g.Start();
  // Only (0,0) is initially ready.
  ASSERT_EQ(g.initial_ready().size(), 1u);
  EXPECT_EQ(g.initial_ready()[0], nodes[0]);
  // Completing (0,0) readies (0,1) and (1,0).
  EXPECT_EQ(g.Complete(nodes[0]).size(), 2u);
}

TEST(GraphBuildersTest, ReductionTreeHalvesParallelism) {
  ThreadGraph g;
  const auto nodes = AddReductionTree(g, 8, ConstantWork(1));
  // 8 leaves + 4 + 2 + 1 = 15 nodes.
  EXPECT_EQ(nodes.size(), 15u);
  const auto widths = g.LevelWidths();
  EXPECT_EQ(widths, (std::vector<size_t>{8, 4, 2, 1}));
}

TEST(GraphBuildersTest, ReductionTreeOddLeaves) {
  ThreadGraph g;
  const auto nodes = AddReductionTree(g, 5, ConstantWork(1));
  // 5 -> 3 -> 2 -> 1: 11 nodes, executable to completion.
  EXPECT_EQ(nodes.size(), 11u);
  g.Start();
  // Run it: complete everything in topological order via the ready set.
  std::vector<size_t> ready(g.initial_ready().begin(), g.initial_ready().end());
  size_t completed = 0;
  while (!ready.empty()) {
    const size_t node = ready.back();
    ready.pop_back();
    for (size_t n : g.Complete(node)) {
      ready.push_back(n);
    }
    ++completed;
  }
  EXPECT_EQ(completed, 11u);
  EXPECT_TRUE(g.Finished());
}

TEST(GraphBuildersTest, ComposedStructures) {
  // A fork-join followed by a wavefront, glued with a barrier phase.
  ThreadGraph g;
  const auto fork = AddFork(g, 4, ConstantWork(1));
  const auto join = AddBarrierPhase(g, fork, 1, ConstantWork(1));
  const auto wave = AddWavefront(g, 3, 3, ConstantWork(1));
  g.AddEdge(join[0], wave[0]);
  g.Start();
  EXPECT_EQ(g.num_nodes(), 4u + 1u + 9u);
  // Initially ready: the fork (the wavefront corner waits on the join).
  EXPECT_EQ(g.initial_ready().size(), 4u);
}

TEST(GraphBuildersTest, WorkFnReceivesIndices) {
  ThreadGraph g;
  std::vector<size_t> seen;
  AddFork(g, 3, [&](size_t i) {
    seen.push_back(i);
    return Milliseconds(1);
  });
  EXPECT_EQ(seen, (std::vector<size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace affsched
