#include "src/workload/thread_graph.h"

#include <gtest/gtest.h>

#include <numeric>

namespace affsched {
namespace {

TEST(ThreadGraphTest, IndependentNodesAllInitiallyReady) {
  ThreadGraph g;
  for (int i = 0; i < 5; ++i) {
    g.AddNode(Milliseconds(10));
  }
  g.Start();
  EXPECT_EQ(g.initial_ready().size(), 5u);
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_FALSE(g.Finished());
}

TEST(ThreadGraphTest, ChainEnablesOneAtATime) {
  ThreadGraph g;
  const size_t a = g.AddNode(1);
  const size_t b = g.AddNode(1);
  const size_t c = g.AddNode(1);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.Start();
  ASSERT_EQ(g.initial_ready().size(), 1u);
  EXPECT_EQ(g.initial_ready()[0], a);
  auto ready = g.Complete(a);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], b);
  ready = g.Complete(b);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], c);
  EXPECT_TRUE(g.Complete(c).empty());
  EXPECT_TRUE(g.Finished());
}

TEST(ThreadGraphTest, JoinWaitsForAllPredecessors) {
  ThreadGraph g;
  const size_t a = g.AddNode(1);
  const size_t b = g.AddNode(1);
  const size_t join = g.AddNode(1);
  g.AddEdge(a, join);
  g.AddEdge(b, join);
  g.Start();
  EXPECT_TRUE(g.Complete(a).empty());
  const auto ready = g.Complete(b);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], join);
}

TEST(ThreadGraphTest, ForkEnablesAllDependents) {
  ThreadGraph g;
  const size_t root = g.AddNode(1);
  for (int i = 0; i < 4; ++i) {
    const size_t child = g.AddNode(1);
    g.AddEdge(root, child);
  }
  g.Start();
  EXPECT_EQ(g.Complete(root).size(), 4u);
}

TEST(ThreadGraphTest, TotalWorkSums) {
  ThreadGraph g;
  g.AddNode(Milliseconds(10));
  g.AddNode(Milliseconds(20));
  g.AddNode(Milliseconds(30));
  EXPECT_EQ(g.TotalWork(), Milliseconds(60));
}

TEST(ThreadGraphTest, RemainingCountsDown) {
  ThreadGraph g;
  const size_t a = g.AddNode(1);
  const size_t b = g.AddNode(1);
  g.Start();
  EXPECT_EQ(g.remaining(), 2u);
  g.Complete(a);
  EXPECT_EQ(g.remaining(), 1u);
  g.Complete(b);
  EXPECT_EQ(g.remaining(), 0u);
  EXPECT_TRUE(g.Finished());
}

TEST(ThreadGraphTest, WavefrontLevelWidths) {
  // 3x3 wavefront grid: widths along anti-diagonals are 1,2,3,2,1.
  ThreadGraph g;
  const size_t n = 3;
  for (size_t i = 0; i < n * n; ++i) {
    g.AddNode(1);
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i + 1 < n) {
        g.AddEdge(i * n + j, (i + 1) * n + j);
      }
      if (j + 1 < n) {
        g.AddEdge(i * n + j, i * n + j + 1);
      }
    }
  }
  const auto widths = g.LevelWidths();
  EXPECT_EQ(widths, (std::vector<size_t>{1, 2, 3, 2, 1}));
}

TEST(ThreadGraphTest, LevelWidthsCoverAllNodes) {
  ThreadGraph g;
  const size_t a = g.AddNode(1);
  const size_t b = g.AddNode(1);
  const size_t c = g.AddNode(1);
  g.AddEdge(a, c);
  g.AddEdge(b, c);
  const auto widths = g.LevelWidths();
  EXPECT_EQ(std::accumulate(widths.begin(), widths.end(), size_t{0}), 3u);
}

TEST(ThreadGraphDeathTest, DoubleCompleteAborts) {
  ThreadGraph g;
  const size_t a = g.AddNode(1);
  g.Start();
  g.Complete(a);
  EXPECT_DEATH(g.Complete(a), "twice");
}

TEST(ThreadGraphDeathTest, SelfEdgeAborts) {
  ThreadGraph g;
  const size_t a = g.AddNode(1);
  EXPECT_DEATH(g.AddEdge(a, a), "CHECK");
}

TEST(ThreadGraphDeathTest, EdgeAfterStartAborts) {
  ThreadGraph g;
  const size_t a = g.AddNode(1);
  const size_t b = g.AddNode(1);
  g.Start();
  EXPECT_DEATH(g.AddEdge(a, b), "CHECK");
}

}  // namespace
}  // namespace affsched
