// End-to-end: hierarchical topologies flow from the sweep spec through the
// machine, engine and accounting into per-tier JobStats counters and the
// sweep JSON — and flat sweeps are untouched by any of it.

#include <gtest/gtest.h>

#include <string>

#include "src/runner/runner.h"
#include "src/runner/sweep.h"
#include "src/topology/topology.h"

namespace affsched {
namespace {

SweepResult RunSpec(const std::string& spec_text) {
  SweepSpec spec;
  std::string error;
  EXPECT_TRUE(ParseSweepSpec(spec_text, &spec, &error)) << error;
  SweepRunnerOptions options;
  options.jobs = 2;
  return SweepRunner(options).Run(spec);
}

// Sums one uint64 JobStats field across every job of every experiment.
template <typename Field>
uint64_t SumStat(const SweepResult& result, Field field) {
  uint64_t total = 0;
  for (const ExperimentResult& experiment : result.experiments) {
    for (const JobStats& stats : experiment.replicated.mean_stats) {
      total += stats.*field;
    }
  }
  return total;
}

template <typename Field>
double SumStatD(const SweepResult& result, Field field) {
  double total = 0.0;
  for (const ExperimentResult& experiment : result.experiments) {
    for (const JobStats& stats : experiment.replicated.mean_stats) {
      total += stats.*field;
    }
  }
  return total;
}

TEST(TopologySweepTest, CmpSweepAttributesClusterMigrationsAndLlcReloads) {
  const SweepResult result =
      RunSpec("smoke;reps=1;mixes=5;policies=dyn-aff;topology=cmp-2x10");
  // Under cmp-2x10 a move is same-cluster (tier 1) or cross-cluster
  // (tier 2, the single shared node); both occur in a mix-5 run.
  EXPECT_GT(SumStat(result, &JobStats::migrations_same_cluster), 0u);
  EXPECT_GT(SumStat(result, &JobStats::migrations_same_node), 0u);
  EXPECT_EQ(SumStat(result, &JobStats::migrations_cross_node), 0u);  // one node
  // Same-cluster moves refill from the shared LLC.
  EXPECT_GT(SumStatD(result, &JobStats::reload_llc_s), 0.0);
  EXPECT_DOUBLE_EQ(SumStatD(result, &JobStats::reload_remote_s), 0.0);

  const std::string json = result.ToJson();
  EXPECT_NE(json.find("\"topology\":\"name=cmp-2x10"), std::string::npos);
  EXPECT_NE(json.find("\"migrations\":{\"same_core\":"), std::string::npos);
  EXPECT_NE(json.find("\"reload_llc_s\":"), std::string::npos);
}

TEST(TopologySweepTest, NumaSweepPaysRemoteFills) {
  const SweepResult result =
      RunSpec("smoke;reps=1;mixes=5;policies=dyn-aff;procs=32;topology=numa-4x8");
  EXPECT_GT(SumStat(result, &JobStats::migrations_cross_node), 0u);
  EXPECT_GT(SumStatD(result, &JobStats::reload_remote_s), 0.0);
}

TEST(TopologySweepTest, FlatSweepJsonCarriesNoTopologyBlocks) {
  const SweepResult result = RunSpec("smoke;reps=1;mixes=1;policies=dyn-aff");
  const std::string json = result.ToJson();
  EXPECT_EQ(json.find("\"topology\""), std::string::npos);
  EXPECT_EQ(json.find("\"migrations\""), std::string::npos);
  EXPECT_EQ(json.find("\"reload_llc_s\""), std::string::npos);
}

TEST(TopologySweepTest, CellSeedsIgnoreTheTopologyAxis) {
  // Common random numbers: the same cell coordinates draw the same seeds on
  // every topology, so topology comparisons are paired.
  const SweepResult flat = RunSpec("smoke;reps=1;mixes=5;policies=dyn-aff");
  const SweepResult cmp = RunSpec("smoke;reps=1;mixes=5;policies=dyn-aff;topology=cmp-2x10");
  ASSERT_EQ(flat.experiments.size(), cmp.experiments.size());
  for (size_t e = 0; e < flat.experiments.size(); ++e) {
    ASSERT_EQ(flat.experiments[e].cells.size(), cmp.experiments[e].cells.size());
    for (size_t c = 0; c < flat.experiments[e].cells.size(); ++c) {
      EXPECT_EQ(flat.experiments[e].cells[c].seed, cmp.experiments[e].cells[c].seed);
    }
  }
}

TEST(TopologySweepTest, DistanceAwarePoliciesRunOnHierarchies) {
  const SweepResult result = RunSpec(
      "smoke;reps=1;mixes=5;policies=dyn-aff-cluster,dyn-aff-node;topology=numa-4x8;procs=32");
  ASSERT_EQ(result.experiments.size(), 2u);
  for (const ExperimentResult& experiment : result.experiments) {
    for (size_t j = 0; j < experiment.replicated.app.size(); ++j) {
      EXPECT_GT(experiment.replicated.MeanResponse(j), 0.0);
    }
  }
}

TEST(TopologySweepTest, ParseRejectsInvalidTopologies) {
  SweepSpec spec;
  std::string error;
  EXPECT_FALSE(ParseSweepSpec("smoke;topology=no-such-preset", &spec, &error));
  EXPECT_NE(error.find("unknown topology preset"), std::string::npos);
  // Machine-level validation runs at the end of the parse.
  EXPECT_FALSE(ParseSweepSpec("smoke;topology=cmp-2x10,llc-factor=0", &spec, &error));
  EXPECT_NE(error.find("llc-factor"), std::string::npos);
}

}  // namespace
}  // namespace affsched
