#include "src/topology/topology.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace affsched {
namespace {

TEST(TopologySpecTest, FlatPresetIsFlat) {
  const TopologySpec flat = SymmetryFlatTopology();
  EXPECT_EQ(flat.name, "symmetry-flat");
  EXPECT_TRUE(flat.IsFlat());
  EXPECT_TRUE(flat.SingleNode());
}

TEST(TopologySpecTest, HierarchicalPresetsAreNotFlat) {
  EXPECT_FALSE(CmpTopology().IsFlat());
  EXPECT_TRUE(CmpTopology().SingleNode());  // one memory: no remote tier
  EXPECT_FALSE(NumaTopology().IsFlat());
  EXPECT_FALSE(NumaTopology().SingleNode());
}

TEST(TopologySpecTest, PresetLookupFindsAllPresets) {
  for (const TopologySpec& preset : TopologyPresets()) {
    TopologySpec found;
    EXPECT_TRUE(TopologyPresetFromName(preset.name, &found));
    EXPECT_EQ(found.name, preset.name);
  }
  TopologySpec spec;
  EXPECT_FALSE(TopologyPresetFromName("no-such-topology", &spec));
}

TEST(TopologySpecTest, LlcCapacityBlocks) {
  const TopologySpec cmp = CmpTopology();  // 512 KB, 64 B lines
  EXPECT_DOUBLE_EQ(cmp.LlcCapacityBlocks(64), 512.0 * 1024.0 / 64.0);
}

TEST(TopologySpecTest, SpecStringRoundTrips) {
  for (const TopologySpec& preset : TopologyPresets()) {
    TopologySpec parsed;
    std::string error;
    ASSERT_TRUE(ParseTopologySpec(preset.ToSpecString(), &parsed, &error)) << error;
    EXPECT_EQ(parsed.name, preset.name);
    EXPECT_EQ(parsed.cores_per_cluster, preset.cores_per_cluster);
    EXPECT_EQ(parsed.clusters_per_node, preset.clusters_per_node);
    EXPECT_EQ(parsed.llc_kb, preset.llc_kb);
    EXPECT_EQ(parsed.llc_line_bytes, preset.llc_line_bytes);
    EXPECT_EQ(parsed.llc_ways, preset.llc_ways);
    EXPECT_DOUBLE_EQ(parsed.llc_hit_factor, preset.llc_hit_factor);
    EXPECT_DOUBLE_EQ(parsed.remote_multiplier, preset.remote_multiplier);
    // And the canonical form itself is a fixed point.
    EXPECT_EQ(parsed.ToSpecString(), preset.ToSpecString());
  }
}

TEST(TopologySpecTest, ParseAppliesOverridesOnPreset) {
  TopologySpec spec;
  std::string error;
  ASSERT_TRUE(ParseTopologySpec("cmp-2x10,llc-kb=1024,remote=2.5", &spec, &error)) << error;
  EXPECT_EQ(spec.name, "cmp-2x10");
  EXPECT_EQ(spec.llc_kb, 1024u);
  EXPECT_DOUBLE_EQ(spec.remote_multiplier, 2.5);
  EXPECT_EQ(spec.cores_per_cluster, 10u);  // untouched preset field
}

TEST(TopologySpecTest, ParseWithoutPresetStartsFlat) {
  TopologySpec spec;
  std::string error;
  ASSERT_TRUE(ParseTopologySpec("cores-per-cluster=4,llc-kb=256", &spec, &error)) << error;
  EXPECT_EQ(spec.name, "custom");
  EXPECT_EQ(spec.cores_per_cluster, 4u);
  EXPECT_EQ(spec.llc_kb, 256u);
}

TEST(TopologySpecTest, ParseRejectsGarbage) {
  TopologySpec spec;
  std::string error;
  EXPECT_FALSE(ParseTopologySpec("", &spec, &error));
  EXPECT_FALSE(ParseTopologySpec("no-such-preset", &spec, &error));
  EXPECT_NE(error.find("unknown topology preset"), std::string::npos);
  EXPECT_FALSE(ParseTopologySpec("cmp-2x10,bogus-key=1", &spec, &error));
  EXPECT_NE(error.find("unknown topology spec key"), std::string::npos);
  EXPECT_FALSE(ParseTopologySpec("cmp-2x10,notakeyvalue", &spec, &error));
}

TEST(TopologySpecTest, ValidateCatchesDegenerateLevels) {
  EXPECT_NE(SymmetryFlatTopology().Validate(0).find("procs=0"), std::string::npos);
  EXPECT_TRUE(SymmetryFlatTopology().Validate(1).empty());

  TopologySpec spec = CmpTopology();
  spec.llc_line_bytes = 0;
  EXPECT_FALSE(spec.Validate(20).empty());

  spec = CmpTopology();
  spec.llc_ways = 0;
  EXPECT_FALSE(spec.Validate(20).empty());

  spec = CmpTopology();
  spec.llc_kb = 0;  // disables the LLC tier entirely: valid again
  EXPECT_TRUE(spec.Validate(20).empty());

  // An "enabled" LLC smaller than one line is a zero-capacity level.
  spec = CmpTopology();
  spec.llc_kb = 1;
  spec.llc_line_bytes = 4096;
  EXPECT_NE(spec.Validate(20).find("zero-capacity"), std::string::npos);

  spec = CmpTopology();
  spec.llc_hit_factor = 0.0;
  EXPECT_FALSE(spec.Validate(20).empty());

  spec = NumaTopology();
  spec.remote_multiplier = 0.5;
  EXPECT_FALSE(spec.Validate(20).empty());
}

TEST(TopologySpecTest, RenderTopologyListNamesEveryPreset) {
  const std::string listing = RenderTopologyList();
  for (const TopologySpec& preset : TopologyPresets()) {
    EXPECT_NE(listing.find(preset.name), std::string::npos) << listing;
  }
  EXPECT_NE(listing.find("--topology"), std::string::npos);
}

TEST(TopologyTest, DistanceTierNames) {
  EXPECT_STREQ(DistanceTierName(0), "same_core");
  EXPECT_STREQ(DistanceTierName(1), "same_cluster");
  EXPECT_STREQ(DistanceTierName(2), "same_node");
  EXPECT_STREQ(DistanceTierName(3), "cross_node");
}

TEST(TopologyTest, FlatGroupsEverythingTogether) {
  const Topology topo(SymmetryFlatTopology(), 20);
  EXPECT_EQ(topo.num_processors(), 20u);
  EXPECT_EQ(topo.num_clusters(), 1u);
  EXPECT_EQ(topo.num_nodes(), 1u);
  EXPECT_EQ(topo.TierBetween(0, 0), 0u);
  EXPECT_EQ(topo.TierBetween(0, 19), 1u);  // off-core is at most same-cluster
}

TEST(TopologyTest, CmpGrouping) {
  const Topology topo(CmpTopology(), 20);
  EXPECT_EQ(topo.num_clusters(), 2u);
  EXPECT_EQ(topo.num_nodes(), 1u);
  EXPECT_EQ(topo.ClusterOf(0), 0u);
  EXPECT_EQ(topo.ClusterOf(9), 0u);
  EXPECT_EQ(topo.ClusterOf(10), 1u);
  EXPECT_EQ(topo.TierBetween(0, 9), 1u);    // same cluster
  EXPECT_EQ(topo.TierBetween(0, 10), 2u);   // other cluster, same (only) node
}

TEST(TopologyTest, NumaGrouping) {
  const Topology topo(NumaTopology(), 32);
  EXPECT_EQ(topo.num_clusters(), 4u);
  EXPECT_EQ(topo.num_nodes(), 4u);
  EXPECT_EQ(topo.NodeOf(0), 0u);
  EXPECT_EQ(topo.NodeOf(31), 3u);
  EXPECT_EQ(topo.TierBetween(0, 7), 1u);   // same cluster/node
  EXPECT_EQ(topo.TierBetween(0, 8), 3u);   // different node
}

// The matrix properties the accounting layer relies on: symmetric, zero
// diagonal, and triangle inequality (the tiers form an ultrametric).
TEST(TopologyTest, MatrixSymmetryDiagonalAndTriangleOnAllPresets) {
  const size_t procs[] = {1, 7, 20, 32};
  for (const TopologySpec& preset : TopologyPresets()) {
    for (size_t n : procs) {
      const Topology topo(preset, n);
      for (size_t a = 0; a < n; ++a) {
        EXPECT_EQ(topo.TierBetween(a, a), 0u);
        for (size_t b = 0; b < n; ++b) {
          EXPECT_EQ(topo.TierBetween(a, b), topo.TierBetween(b, a));
          EXPECT_LT(topo.TierBetween(a, b), kNumDistanceTiers);
          for (size_t c = 0; c < n; ++c) {
            EXPECT_LE(topo.TierBetween(a, c),
                      topo.TierBetween(a, b) + topo.TierBetween(b, c))
                << preset.name << " n=" << n << " a=" << a << " b=" << b << " c=" << c;
          }
        }
      }
    }
  }
}

TEST(TopologyTest, RaggedTailGoesInPartialGroups) {
  // 20 processors under numa-4x8: clusters of 8, 8, 4.
  const Topology topo(NumaTopology(), 20);
  EXPECT_EQ(topo.num_clusters(), 3u);
  EXPECT_EQ(topo.num_nodes(), 3u);
  EXPECT_EQ(topo.ClusterOf(16), 2u);
  EXPECT_EQ(topo.ClusterOf(19), 2u);
}

}  // namespace
}  // namespace affsched
