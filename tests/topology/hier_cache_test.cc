#include "src/topology/hier_cache.h"

#include <gtest/gtest.h>

#include "src/topology/topology.h"

namespace affsched {
namespace {

constexpr double kL1Capacity = 4096.0;
constexpr size_t kL1Ways = 2;

WorkingSetParams TestWs(double blocks = 2000.0) {
  return WorkingSetParams{.blocks = blocks, .buildup_tau_s = 0.05};
}

// A harness owning the shared state plus one model per processor, the way
// the Machine wires them.
struct Harness {
  Harness(const TopologySpec& spec, size_t procs)
      : topology(spec, procs),
        state(topology, spec.llc_kb > 0 ? spec.LlcCapacityBlocks(spec.llc_line_bytes) : 0.0,
              spec.llc_ways) {
    for (size_t p = 0; p < procs; ++p) {
      models.emplace_back(kL1Capacity, kL1Ways, topology, &state, p);
    }
  }
  Topology topology;
  TopologyCacheState state;
  std::vector<HierarchicalCacheModel> models;
};

TEST(HierarchicalCacheTest, FirstChunkClassifiesNothing) {
  Harness h(CmpTopology(), 20);
  const CacheChunkResult r = h.models[0].RunChunk(1, TestWs(), 1.0);
  EXPECT_GT(r.reload_misses, 0.0);
  // Cold machine: nothing in the LLC yet, no previous node on record.
  EXPECT_DOUBLE_EQ(r.reload_llc_hits, 0.0);
  EXPECT_DOUBLE_EQ(r.reload_remote, 0.0);
}

TEST(HierarchicalCacheTest, SameClusterMigrationRefillsFromLlc) {
  Harness h(CmpTopology(), 20);
  h.models[0].RunChunk(1, TestWs(), 10.0);  // warm proc 0 and the cluster LLC
  // Move within cluster 0 (procs 0-9 under cmp-2x10): the task's footprint
  // is still resident in the shared LLC, so the L1 rebuild hits there.
  const CacheChunkResult r = h.models[5].RunChunk(1, TestWs(), 1.0);
  EXPECT_GT(r.reload_misses, 0.0);
  EXPECT_GT(r.reload_llc_hits, 0.0);
  EXPECT_LE(r.reload_llc_hits, r.reload_misses + 1e-9);
  EXPECT_DOUBLE_EQ(r.reload_remote, 0.0);  // single node: never remote
}

TEST(HierarchicalCacheTest, CrossClusterMigrationMissesTheLlc) {
  Harness h(CmpTopology(), 20);
  h.models[0].RunChunk(1, TestWs(), 10.0);
  // Cluster 1's LLC never saw this task.
  const CacheChunkResult r = h.models[15].RunChunk(1, TestWs(), 1.0);
  EXPECT_GT(r.reload_misses, 0.0);
  EXPECT_DOUBLE_EQ(r.reload_llc_hits, 0.0);
}

TEST(HierarchicalCacheTest, CrossNodeMigrationPaysRemoteFills) {
  Harness h(NumaTopology(), 32);
  h.models[0].RunChunk(1, TestWs(), 10.0);  // task lives on node 0
  // Proc 8 is node 1 under numa-4x8: the refill crosses the interconnect.
  const CacheChunkResult r = h.models[8].RunChunk(1, TestWs(), 1.0);
  EXPECT_GT(r.reload_misses, 0.0);
  EXPECT_GT(r.reload_remote, 0.0);
  EXPECT_LE(r.reload_llc_hits + r.reload_remote, r.reload_misses + 1e-9);
  // Once it has run here, the task's home is node 1: re-running locally
  // stops being remote.
  const CacheChunkResult again = h.models[8].RunChunk(1, TestWs(), 1.0);
  EXPECT_DOUBLE_EQ(again.reload_remote, 0.0);
}

TEST(HierarchicalCacheTest, LlcHitsOffsetRemoteFills) {
  Harness h(NumaTopology(), 32);
  h.models[0].RunChunk(1, TestWs(), 10.0);
  h.models[8].RunChunk(1, TestWs(), 10.0);  // warm node 1's LLC with the task
  h.models[0].RunChunk(1, TestWs(), 10.0);  // move home back to node 0
  // Return to node 1: the move is cross-node, but node 1's LLC still holds
  // part of the footprint, so only the LLC-miss remainder is remote.
  const CacheChunkResult r = h.models[9].RunChunk(1, TestWs(), 1.0);
  EXPECT_GT(r.reload_llc_hits, 0.0);
  EXPECT_LE(r.reload_llc_hits + r.reload_remote, r.reload_misses + 1e-9);
}

TEST(HierarchicalCacheTest, DelegatesL1Queries) {
  Harness h(CmpTopology(), 20);
  EXPECT_DOUBLE_EQ(h.models[0].capacity(), kL1Capacity);
  h.models[0].RunChunk(1, TestWs(), 10.0);
  EXPECT_GT(h.models[0].Resident(1), 0.0);
  EXPECT_GT(h.models[0].Occupied(), 0.0);
  EXPECT_DOUBLE_EQ(h.models[1].Resident(1), 0.0);  // private caches stay private
}

TEST(HierarchicalCacheTest, RemoveOwnerClearsAllLevels) {
  Harness h(CmpTopology(), 20);
  h.models[0].RunChunk(1, TestWs(), 10.0);
  ASSERT_GT(h.state.llc(0)->Resident(1), 0.0);
  h.models[0].RemoveOwner(1);
  EXPECT_DOUBLE_EQ(h.models[0].Resident(1), 0.0);
  EXPECT_DOUBLE_EQ(h.state.llc(0)->Resident(1), 0.0);
  EXPECT_EQ(h.state.LastNode(1), TopologyCacheState::kNoNode);
}

TEST(HierarchicalCacheTest, EjectBlocksErodesLlcCopy) {
  Harness h(CmpTopology(), 20);
  h.models[0].RunChunk(1, TestWs(), 10.0);
  const double before = h.state.llc(0)->Resident(1);
  h.models[0].EjectBlocks(1, 100.0);
  EXPECT_LT(h.state.llc(0)->Resident(1), before);
}

TEST(HierarchicalCacheTest, FlushOnlyClearsThePrivateCache) {
  Harness h(CmpTopology(), 20);
  h.models[0].RunChunk(1, TestWs(), 10.0);
  h.models[0].Flush();
  EXPECT_DOUBLE_EQ(h.models[0].Resident(1), 0.0);
  EXPECT_GT(h.state.llc(0)->Resident(1), 0.0);
}

TEST(HierarchicalCacheTest, NoLlcStateStillTracksNodes) {
  // LLC disabled: reload misses can still be remote.
  TopologySpec spec = NumaTopology();
  spec.llc_kb = 0;
  Harness h(spec, 32);
  EXPECT_EQ(h.state.llc(0), nullptr);
  h.models[0].RunChunk(1, TestWs(), 10.0);
  const CacheChunkResult r = h.models[8].RunChunk(1, TestWs(), 1.0);
  EXPECT_DOUBLE_EQ(r.reload_llc_hits, 0.0);
  EXPECT_NEAR(r.reload_remote, r.reload_misses, 1e-9);
}

}  // namespace
}  // namespace affsched
