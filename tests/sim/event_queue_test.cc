#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace affsched {
namespace {

TEST(EventQueueTest, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0);
  EXPECT_EQ(q.PeekTime(), kTimeInfinite);
  EXPECT_FALSE(q.RunNext());
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(Milliseconds(30), [&] { order.push_back(3); });
  q.ScheduleAt(Milliseconds(10), [&] { order.push_back(1); });
  q.ScheduleAt(Milliseconds(20), [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Milliseconds(30));
}

TEST(EventQueueTest, TiesRunInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime seen = -1;
  q.ScheduleAt(Milliseconds(10), [&] {
    q.ScheduleAfter(Milliseconds(5), [&] { seen = q.now(); });
  });
  q.RunAll();
  EXPECT_EQ(seen, Milliseconds(15));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.ScheduleAt(Milliseconds(1), [&] { ran = true; });
  EXPECT_TRUE(q.IsPending(id));
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.IsPending(id));
  EXPECT_FALSE(q.Cancel(id));  // double-cancel reports false
  q.RunAll();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelledEventsDoNotBlockPeek) {
  EventQueue q;
  const EventId early = q.ScheduleAt(Milliseconds(1), [] {});
  q.ScheduleAt(Milliseconds(7), [] {});
  q.Cancel(early);
  EXPECT_EQ(q.PeekTime(), Milliseconds(7));
}

TEST(EventQueueTest, HandlerMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) {
      q.ScheduleAfter(Milliseconds(1), chain);
    }
  };
  q.ScheduleAt(0, chain);
  q.RunAll();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), Milliseconds(4));
}

TEST(EventQueueTest, HandlerMayCancelAnotherPendingEvent) {
  EventQueue q;
  bool second_ran = false;
  EventId second = kInvalidEventId;
  q.ScheduleAt(Milliseconds(1), [&] { q.Cancel(second); });
  second = q.ScheduleAt(Milliseconds(2), [&] { second_ran = true; });
  q.RunAll();
  EXPECT_FALSE(second_ran);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int ran = 0;
  for (int i = 1; i <= 10; ++i) {
    q.ScheduleAt(Milliseconds(i), [&] { ++ran; });
  }
  EXPECT_EQ(q.RunUntil(Milliseconds(4)), 4u);
  EXPECT_EQ(ran, 4);
  EXPECT_EQ(q.now(), Milliseconds(4));
  EXPECT_EQ(q.pending_count(), 6u);
}

TEST(EventQueueTest, RunUntilAdvancesClockToDeadlineWhenIdle) {
  EventQueue q;
  EXPECT_EQ(q.RunUntil(Milliseconds(100)), 0u);
  EXPECT_EQ(q.now(), Milliseconds(100));
}

TEST(EventQueueTest, PendingCountTracksScheduleAndCancel) {
  EventQueue q;
  const EventId a = q.ScheduleAt(1, [] {});
  q.ScheduleAt(2, [] {});
  EXPECT_EQ(q.pending_count(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.pending_count(), 1u);
}

TEST(EventQueueDeathTest, SchedulingInThePastAborts) {
  EventQueue q;
  q.ScheduleAt(Milliseconds(10), [] {});
  q.RunAll();
  EXPECT_DEATH(q.ScheduleAt(Milliseconds(5), [] {}), "past");
}

}  // namespace
}  // namespace affsched
