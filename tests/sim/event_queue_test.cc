#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace affsched {
namespace {

TEST(EventQueueTest, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0);
  EXPECT_EQ(q.PeekTime(), kTimeInfinite);
  EXPECT_FALSE(q.RunNext());
}

TEST(EventQueueTest, RunsEventsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(Milliseconds(30), [&] { order.push_back(3); });
  q.ScheduleAt(Milliseconds(10), [&] { order.push_back(1); });
  q.ScheduleAt(Milliseconds(20), [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Milliseconds(30));
}

TEST(EventQueueTest, TiesRunInSchedulingOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
  EventQueue q;
  SimTime seen = -1;
  q.ScheduleAt(Milliseconds(10), [&] {
    q.ScheduleAfter(Milliseconds(5), [&] { seen = q.now(); });
  });
  q.RunAll();
  EXPECT_EQ(seen, Milliseconds(15));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.ScheduleAt(Milliseconds(1), [&] { ran = true; });
  EXPECT_TRUE(q.IsPending(id));
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.IsPending(id));
  EXPECT_FALSE(q.Cancel(id));  // double-cancel reports false
  q.RunAll();
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelledEventsDoNotBlockPeek) {
  EventQueue q;
  const EventId early = q.ScheduleAt(Milliseconds(1), [] {});
  q.ScheduleAt(Milliseconds(7), [] {});
  q.Cancel(early);
  EXPECT_EQ(q.PeekTime(), Milliseconds(7));
}

// A self-rescheduling handler: pooled records hold trivially-copyable
// callables, so the chain is a struct functor rather than a std::function.
struct ChainEvent {
  EventQueue* q;
  int* count;
  void operator()() const {
    if (++*count < 5) {
      q->ScheduleAfter(Milliseconds(1), ChainEvent{q, count});
    }
  }
};

TEST(EventQueueTest, HandlerMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  q.ScheduleAt(0, ChainEvent{&q, &count});
  q.RunAll();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), Milliseconds(4));
}

TEST(EventQueueTest, HandlerMayCancelAnotherPendingEvent) {
  EventQueue q;
  bool second_ran = false;
  EventId second = kInvalidEventId;
  q.ScheduleAt(Milliseconds(1), [&] { q.Cancel(second); });
  second = q.ScheduleAt(Milliseconds(2), [&] { second_ran = true; });
  q.RunAll();
  EXPECT_FALSE(second_ran);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int ran = 0;
  for (int i = 1; i <= 10; ++i) {
    q.ScheduleAt(Milliseconds(i), [&] { ++ran; });
  }
  EXPECT_EQ(q.RunUntil(Milliseconds(4)), 4u);
  EXPECT_EQ(ran, 4);
  EXPECT_EQ(q.now(), Milliseconds(4));
  EXPECT_EQ(q.pending_count(), 6u);
}

TEST(EventQueueTest, RunUntilAdvancesClockToDeadlineWhenIdle) {
  EventQueue q;
  EXPECT_EQ(q.RunUntil(Milliseconds(100)), 0u);
  EXPECT_EQ(q.now(), Milliseconds(100));
}

TEST(EventQueueTest, PendingCountTracksScheduleAndCancel) {
  EventQueue q;
  const EventId a = q.ScheduleAt(1, [] {});
  q.ScheduleAt(2, [] {});
  EXPECT_EQ(q.pending_count(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.pending_count(), 1u);
}

TEST(EventQueueTest, StaleIdDoesNotCancelRecycledSlot) {
  EventQueue q;
  bool a_ran = false;
  bool b_ran = false;
  const EventId a = q.ScheduleAt(Milliseconds(1), [&] { a_ran = true; });
  ASSERT_TRUE(q.Cancel(a));
  // B reuses A's pooled record; A's generation-tagged id must not touch it.
  const EventId b = q.ScheduleAt(Milliseconds(2), [&] { b_ran = true; });
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_FALSE(q.IsPending(a));
  EXPECT_TRUE(q.IsPending(b));
  q.RunAll();
  EXPECT_FALSE(a_ran);
  EXPECT_TRUE(b_ran);
}

TEST(EventQueueTest, RunEventIdIsNoLongerPending) {
  EventQueue q;
  const EventId id = q.ScheduleAt(Milliseconds(1), [] {});
  q.RunAll();
  EXPECT_FALSE(q.IsPending(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, MalformedIdsAreRejected) {
  EventQueue q;
  q.ScheduleAt(Milliseconds(1), [] {});
  EXPECT_FALSE(q.IsPending(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  // Slot index far past the pool.
  EXPECT_FALSE(q.IsPending(static_cast<EventId>(1234) << 32 | 1));
  EXPECT_FALSE(q.Cancel(static_cast<EventId>(1234) << 32 | 1));
}

TEST(EventQueueTest, PoolRecyclingKeepsHighWaterMarkBounded) {
  EventQueue q;
  int ran = 0;
  // Interleave schedule/run so at most two events are ever pending: the pool
  // must recycle records rather than grow per event.
  q.ScheduleAt(0, [&] { ++ran; });
  for (int i = 1; i <= 1000; ++i) {
    q.ScheduleAt(Milliseconds(i), [&] { ++ran; });
    EXPECT_TRUE(q.RunNext());
  }
  q.RunAll();
  EXPECT_EQ(ran, 1001);
  EXPECT_EQ(q.stats().scheduled, 1001u);
  EXPECT_EQ(q.stats().run, 1001u);
  EXPECT_LE(q.stats().pool_high_water, 2u);
}

TEST(EventQueueTest, StatsCountScheduleRunCancel) {
  EventQueue q;
  const EventId a = q.ScheduleAt(Milliseconds(1), [] {});
  q.ScheduleAt(Milliseconds(2), [] {});
  q.ScheduleAt(Milliseconds(3), [] {});
  q.Cancel(a);
  q.RunAll();
  EXPECT_EQ(q.stats().scheduled, 3u);
  EXPECT_EQ(q.stats().cancelled, 1u);
  EXPECT_EQ(q.stats().run, 2u);
  EXPECT_EQ(q.stats().pool_high_water, 3u);
}

TEST(EventQueueDeathTest, SchedulingInThePastAborts) {
  EventQueue q;
  q.ScheduleAt(Milliseconds(10), [] {});
  q.RunAll();
  EXPECT_DEATH(q.ScheduleAt(Milliseconds(5), [] {}), "past");
}

}  // namespace
}  // namespace affsched
