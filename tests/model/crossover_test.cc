#include "src/model/crossover.h"

#include <gtest/gtest.h>

namespace affsched {
namespace {

// A Dynamic-like job: many reallocations, low %affinity, no waste.
ModelParams DynamicLike() {
  ModelParams p;
  p.work_s = 700.0;
  p.waste_s = 5.0;
  p.reallocations = 2000.0;
  p.pct_affinity = 0.15;
  p.pa_s = 737e-6;
  p.pna_s = 1679e-6;
  p.average_allocation = 8.0;
  return p;
}

// An Equipartition-like job: almost no reallocations, lots of waste.
ModelParams EquiLike() {
  ModelParams p = DynamicLike();
  p.reallocations = 20.0;
  p.waste_s = 80.0;
  p.pct_affinity = 0.95;
  return p;
}

TEST(CrossoverTest, RelativeAtProductOneMatchesBaseModel) {
  const ModelParams dyn = DynamicLike();
  const ModelParams equi = EquiLike();
  EXPECT_NEAR(RelativeResponseAtProduct(dyn, equi, 1.0),
              ModelResponseTime(dyn) / ModelResponseTime(equi), 1e-12);
}

TEST(CrossoverTest, DynamicEventuallyCrosses) {
  // Dynamic starts ahead (less waste) but its reallocation penalties grow
  // with the product; a crossover exists and bisection finds it.
  const ModelParams dyn = DynamicLike();
  const ModelParams equi = EquiLike();
  ASSERT_LT(RelativeResponseAtProduct(dyn, equi, 1.0), 1.0);
  const double crossover = CrossoverProduct(dyn, equi);
  ASSERT_GT(crossover, 1.0);
  // At the crossover the ratio is ~1.
  EXPECT_NEAR(RelativeResponseAtProduct(dyn, equi, crossover), 1.0, 0.01);
  // Just before it, still ahead.
  EXPECT_LT(RelativeResponseAtProduct(dyn, equi, crossover * 0.8), 1.0);
}

TEST(CrossoverTest, AffinityPolicyCrossesLaterOrNever) {
  const ModelParams equi = EquiLike();
  ModelParams dyn = DynamicLike();
  ModelParams dyn_aff = DynamicLike();
  dyn_aff.pct_affinity = 0.95;  // same decisions, affine placement
  const double oblivious = CrossoverProduct(dyn, equi);
  const double affine = CrossoverProduct(dyn_aff, equi);
  ASSERT_GT(oblivious, 1.0);
  // The affinity variant either never crosses or crosses much later.
  if (affine > 0.0) {
    EXPECT_GT(affine, oblivious * 10.0);
  }
}

TEST(CrossoverTest, AlreadyBehindReturnsOne) {
  ModelParams bad = DynamicLike();
  bad.waste_s = 500.0;  // worse than Equipartition from the start
  EXPECT_DOUBLE_EQ(CrossoverProduct(bad, EquiLike()), 1.0);
}

TEST(CrossoverTest, NoCrossoverReturnsNegative) {
  ModelParams good = DynamicLike();
  good.reallocations = 20.0;  // as few reallocations as Equipartition,
  good.pct_affinity = 0.95;   // placed affinely,
  good.waste_s = 5.0;         // and far less waste: never crosses
  EXPECT_LT(CrossoverProduct(good, EquiLike()), 0.0);
}

}  // namespace
}  // namespace affsched
