#include "src/model/future_sweep.h"

#include <gtest/gtest.h>

#include "src/apps/apps.h"

namespace affsched {
namespace {

std::vector<AppProfile> SmallApps() {
  return {MakeSmallMvaProfile(), MakeSmallMatrixProfile(), MakeSmallGravityProfile()};
}

MachineConfig SmallMachine() {
  MachineConfig config;
  config.num_processors = 8;
  return config;
}

FutureSweepOptions FastOptions() {
  FutureSweepOptions options;
  options.products = {1, 64, 4096};
  options.replication.min_replications = 2;
  options.replication.max_replications = 2;
  return options;
}

TEST(PenaltyTableTest, PaperValuesAtQ400) {
  const PenaltyTable table = PaperPenaltyTable();
  EXPECT_DOUBLE_EQ(table.pna_us.at("MATRIX"), 1679.0);
  EXPECT_DOUBLE_EQ(table.pna_us.at("MVA"), 2330.0);
  EXPECT_DOUBLE_EQ(table.pna_us.at("GRAVITY"), 2349.0);
  EXPECT_DOUBLE_EQ(table.pa_us.at("MATRIX"), 737.0);
  EXPECT_DOUBLE_EQ(table.pa_us.at("MVA"), 1061.0);
  EXPECT_DOUBLE_EQ(table.pa_us.at("GRAVITY"), 1719.0);
}

TEST(FutureSweepTest, ProducesCurvePerPolicyPerJob) {
  const WorkloadMix mix{.number = 5, .matrix = 1, .gravity = 1};
  const FutureSweepResult result = SweepFutureMachines(
      SmallMachine(), mix, SmallApps(), PaperPenaltyTable(), 3, FastOptions());
  // 3 policies x 2 jobs.
  EXPECT_EQ(result.curves.size(), 6u);
  for (const FutureCurve& curve : result.curves) {
    EXPECT_EQ(curve.relative_rt.size(), result.products.size());
    for (double r : curve.relative_rt) {
      EXPECT_GT(r, 0.0);
      EXPECT_LT(r, 10.0);
    }
  }
}

TEST(FutureSweepTest, CurrentTechnologyRatiosNearOrBelowOne) {
  // At product = 1 (today's machine) the dynamic policies beat or match
  // Equipartition — Figure 5's result.
  const WorkloadMix mix{.number = 2, .mva = 1, .matrix = 1};
  const FutureSweepResult result = SweepFutureMachines(
      SmallMachine(), mix, SmallApps(), PaperPenaltyTable(), 3, FastOptions());
  for (const FutureCurve& curve : result.curves) {
    EXPECT_LT(curve.relative_rt.front(), 1.15) << curve.app;
  }
}

TEST(FutureSweepTest, ObliviousDynamicDegradesFasterThanAffinity) {
  // Figures 8-13: Dynamic's curve rises above Dyn-Aff's as the speed x cache
  // product grows, because Dynamic's %affinity is low.
  const WorkloadMix mix{.number = 1, .mva = 2};
  const FutureSweepResult result = SweepFutureMachines(
      SmallMachine(), mix, SmallApps(), PaperPenaltyTable(), 3, FastOptions());
  double dynamic_last = 0.0;
  double dynaff_last = 0.0;
  for (const FutureCurve& curve : result.curves) {
    if (curve.job_index != 0) {
      continue;
    }
    if (curve.policy == PolicyKind::kDynamic) {
      dynamic_last = curve.relative_rt.back();
    }
    if (curve.policy == PolicyKind::kDynAff) {
      dynaff_last = curve.relative_rt.back();
    }
  }
  ASSERT_GT(dynamic_last, 0.0);
  ASSERT_GT(dynaff_last, 0.0);
  EXPECT_LE(dynaff_last, dynamic_last * 1.05);
}

TEST(FutureSweepTest, ProductsEchoedInResult) {
  const WorkloadMix mix{.number = 4, .gravity = 2};
  FutureSweepOptions options = FastOptions();
  options.products = {1, 16};
  const FutureSweepResult result = SweepFutureMachines(
      SmallMachine(), mix, SmallApps(), PaperPenaltyTable(), 3, options);
  EXPECT_EQ(result.products, (std::vector<double>{1, 16}));
}

}  // namespace
}  // namespace affsched
