#include "src/model/response_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace affsched {
namespace {

ModelParams BaseParams() {
  ModelParams p;
  p.work_s = 700.0;
  p.waste_s = 20.0;
  p.reallocations = 2469.0;
  p.realloc_time_s = 750e-6;
  p.pct_affinity = 0.21;
  p.pa_s = 737e-6;
  p.pna_s = 1679e-6;
  p.average_allocation = 8.27;
  return p;
}

TEST(ResponseModelTest, CachePenaltyIsWeightedMix) {
  const ModelParams p = BaseParams();
  const double expected = 0.21 * 737e-6 + 0.79 * 1679e-6;
  EXPECT_NEAR(CachePenaltySeconds(p), expected, 1e-12);
}

TEST(ResponseModelTest, EquationOneArithmetic) {
  const ModelParams p = BaseParams();
  const double penalty = CachePenaltySeconds(p);
  const double expected = (700.0 + 20.0 + 2469.0 * (750e-6 + penalty)) / 8.27;
  EXPECT_NEAR(ModelResponseTime(p), expected, 1e-9);
}

TEST(ResponseModelTest, FullAffinityUsesOnlyPA) {
  ModelParams p = BaseParams();
  p.pct_affinity = 1.0;
  EXPECT_DOUBLE_EQ(CachePenaltySeconds(p), p.pa_s);
}

TEST(ResponseModelTest, FutureReducesToCurrentAtUnityScaling) {
  const ModelParams p = BaseParams();
  EXPECT_NEAR(FutureResponseTime(p, 1.0, 1.0), ModelResponseTime(p), 1e-9);
}

TEST(ResponseModelTest, FasterProcessorShrinksComputeLinearly) {
  ModelParams p = BaseParams();
  p.reallocations = 0.0;  // isolate the compute terms
  const double rt1 = FutureResponseTime(p, 1.0, 1.0);
  const double rt16 = FutureResponseTime(p, 16.0, 1.0);
  EXPECT_NEAR(rt16, rt1 / 16.0, 1e-9);
}

TEST(ResponseModelTest, CachePenaltyShrinksOnlyAsSqrtSpeed) {
  // Figure 7: the penalty term divides by sqrt(speed), so reallocation costs
  // grow in *relative* importance on faster machines.
  ModelParams p = BaseParams();
  p.work_s = 0.0;
  p.waste_s = 0.0;
  p.realloc_time_s = 0.0;
  const double rt1 = FutureResponseTime(p, 1.0, 1.0);
  const double rt16 = FutureResponseTime(p, 16.0, 1.0);
  EXPECT_NEAR(rt16, rt1 / 4.0, 1e-9);
}

TEST(ResponseModelTest, LargerCacheHelpsAffineSwitchesHurtsColdOnes) {
  ModelParams p = BaseParams();
  p.work_s = 0.0;
  p.waste_s = 0.0;
  p.realloc_time_s = 0.0;

  p.pct_affinity = 1.0;  // only P^A: penalty / cache-size
  const double affine_small = FutureResponseTime(p, 1.0, 1.0);
  const double affine_big = FutureResponseTime(p, 1.0, 16.0);
  EXPECT_NEAR(affine_big, affine_small / 16.0, 1e-9);

  p.pct_affinity = 0.0;  // only P^NA: penalty x sqrt(cache-size)
  const double cold_small = FutureResponseTime(p, 1.0, 1.0);
  const double cold_big = FutureResponseTime(p, 1.0, 16.0);
  EXPECT_NEAR(cold_big, cold_small * 4.0, 1e-9);
}

TEST(ResponseModelTest, AffinitySchedulingWinsOnFutureMachines) {
  // The paper's qualitative conclusion: with many reallocations, a policy
  // that keeps %affinity high scales much better in speed x cache.
  ModelParams oblivious = BaseParams();
  oblivious.pct_affinity = 0.21;
  ModelParams affine = BaseParams();
  affine.pct_affinity = 0.83;
  const double product = 1024.0;
  const double s = std::sqrt(product);
  const double rt_oblivious = FutureResponseTime(oblivious, s, s);
  const double rt_affine = FutureResponseTime(affine, s, s);
  EXPECT_LT(rt_affine, rt_oblivious);
}

TEST(ResponseModelTest, ExtractFromJobStats) {
  JobStats stats;
  stats.arrival = 0;
  stats.completion = Seconds(87.5);
  stats.useful_work_s = 690.0;
  stats.steady_stall_s = 10.0;
  stats.reload_stall_s = 2.0;
  stats.waste_s = 20.0;
  stats.alloc_integral_s = 87.5 * 8.27;
  stats.reallocations = 2469;
  stats.affinity_dispatches = 518;

  const ModelParams p = ExtractModelParams(stats, 737.0, 1679.0);
  EXPECT_DOUBLE_EQ(p.work_s, 700.0);  // useful + steady stalls
  EXPECT_DOUBLE_EQ(p.waste_s, 20.0);
  EXPECT_DOUBLE_EQ(p.reallocations, 2469.0);
  EXPECT_NEAR(p.pct_affinity, 518.0 / 2469.0, 1e-12);
  EXPECT_NEAR(p.pa_s, 737e-6, 1e-12);
  EXPECT_NEAR(p.pna_s, 1679e-6, 1e-12);
  EXPECT_NEAR(p.average_allocation, 8.27, 1e-9);
  EXPECT_DOUBLE_EQ(p.realloc_time_s, 750e-6);
}

TEST(ResponseModelTest, ModelPredictsSimulatedResponseOrder) {
  // With realistic magnitudes, the model's RT should be in the ballpark of
  // the measured RT (they share the accounting identity).
  const ModelParams p = BaseParams();
  const double rt = ModelResponseTime(p);
  EXPECT_GT(rt, 80.0);
  EXPECT_LT(rt, 95.0);
}

}  // namespace
}  // namespace affsched
