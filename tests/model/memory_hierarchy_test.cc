#include "src/model/memory_hierarchy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace affsched {
namespace {

TEST(MemoryHierarchyTest, EffectiveAccessTimeArithmetic) {
  HierarchyParams p;
  p.l1_hit = 0.9;
  p.l2_hit = 0.5;
  p.l1_time_s = 10e-9;
  p.l2_time_s = 100e-9;
  p.memory_time_s = 1000e-9;
  // 0.9*10 + 0.1*(0.5*100 + 0.5*1000) = 9 + 55 = 64 ns.
  EXPECT_NEAR(EffectiveAccessTime(p), 64e-9, 1e-15);
  EXPECT_NEAR(MissComponent(p), 55e-9, 1e-15);
}

TEST(MemoryHierarchyTest, PerfectL1NeedsNoMemorySpeedup) {
  HierarchyParams p;
  p.l1_hit = 1.0;
  EXPECT_DOUBLE_EQ(MissComponent(p), 0.0);
  EXPECT_DOUBLE_EQ(RequiredMemorySpeedup(p, 16.0, 0.0), 1.0);
}

TEST(MemoryHierarchyTest, SpeedOneNeedsNothing) {
  HierarchyParams p;
  EXPECT_DOUBLE_EQ(RequiredMemorySpeedup(p, 1.0, 0.0), 1.0);
}

TEST(MemoryHierarchyTest, RequiredSpeedupGrowsWithProcessorSpeed) {
  HierarchyParams p;  // defaults: h1=0.95, high-but-not-perfect
  double prev = 1.0;
  for (double s : {2.0, 4.0, 16.0, 64.0}) {
    const double req = RequiredMemorySpeedup(p, s, 0.0);
    EXPECT_GT(req, prev);
    prev = req;
  }
}

TEST(MemoryHierarchyTest, WithoutBetterCachingMemoryMustTrackProcessor) {
  // With hit rates fixed, the miss component must shrink by exactly `speed`.
  HierarchyParams p;
  const double req = RequiredMemorySpeedup(p, 16.0, 0.0);
  EXPECT_NEAR(req, 16.0, 0.5);
}

TEST(MemoryHierarchyTest, BetterCachingReducesButDoesNotRemoveTheNeed) {
  // The paper's Section 7.2 finding: plausible hit-rate improvements cannot
  // obviate faster miss resolution. Removing even half of all L1 misses
  // still leaves a required memory speedup well above sqrt(speed).
  HierarchyParams p;
  const double speed = 16.0;
  const double with_half = RequiredMemorySpeedup(p, speed, 0.5);
  const double without = RequiredMemorySpeedup(p, speed, 0.0);
  EXPECT_LT(with_half, without);
  EXPECT_GT(with_half, std::sqrt(speed));
}

TEST(MemoryHierarchyTest, MissReductionToAvoidFasterMemoryIsImplausible) {
  // Section 7.2: "hit rates could not be increased enough to obviate the
  // need for faster miss resolution". Keeping a 16x processor busy on a
  // fixed-speed memory would require removing ~95% of the remaining misses
  // (a 20x miss-rate cut), and the requirement approaches 100% with speed.
  HierarchyParams p;
  const double r16 = MissReductionToAvoidFasterMemory(p, 16.0);
  const double r256 = MissReductionToAvoidFasterMemory(p, 256.0);
  EXPECT_GT(r16, 0.90);
  EXPECT_GT(r256, r16);
  EXPECT_LT(r256, 1.0 + 1e-9);
}

TEST(MemoryHierarchyTest, ModestSpeedupMayBeCoverable) {
  // For a tiny speed bump the needed miss reduction is feasible (< 1).
  HierarchyParams p;
  const double r = MissReductionToAvoidFasterMemory(p, 1.05);
  EXPECT_GT(r, 0.0);
  EXPECT_LT(r, 1.0);
}

TEST(MemoryHierarchyTest, InfiniteWhenL1AloneExceedsBudget) {
  HierarchyParams p;
  p.l1_hit = 0.5;  // huge miss component
  p.l1_time_s = 60e-9;
  p.l2_hit = 0.0;
  p.memory_time_s = 10000e-9;
  // At extreme speeds the (reduced) L1 term alone can exceed EAT/speed when
  // miss_reduction converts misses into L1 hits; check we report infinity
  // rather than a negative speedup in such corners.
  const double req = RequiredMemorySpeedup(p, 1000.0, 0.99);
  EXPECT_TRUE(std::isinf(req) || req >= 1.0);
}

TEST(MemoryHierarchyDeathTest, InvalidParamsAbort) {
  HierarchyParams p;
  p.l1_hit = 1.5;
  EXPECT_DEATH(EffectiveAccessTime(p), "CHECK");
}

}  // namespace
}  // namespace affsched
