#include "src/runner/runner.h"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/runner/cell_seed.h"
#include "src/telemetry/json.h"

namespace affsched {
namespace {

// A grid small enough for unit tests: scaled-down app profiles on an
// 8-processor machine, 2 policies x 2 mixes x 2 fixed replications.
SweepSpec TinySpec() {
  SweepSpec spec;
  spec.name = "tiny";
  spec.machine.num_processors = 8;
  spec.apps = {MakeSmallMvaProfile(), MakeSmallMatrixProfile(), MakeSmallGravityProfile()};
  spec.policies = {PolicyKind::kEquipartition, PolicyKind::kDynAff};
  spec.mixes = {WorkloadMix{.number = 1, .mva = 2, .matrix = 0, .gravity = 0},
                WorkloadMix{.number = 5, .mva = 0, .matrix = 1, .gravity = 1}};
  spec.replication.min_replications = 2;
  spec.replication.max_replications = 2;
  spec.root_seed = 7;
  return spec;
}

TEST(SweepRunnerTest, RunsEveryExperimentInGridOrder) {
  SweepRunner runner;
  const SweepResult result = runner.Run(TinySpec());
  ASSERT_EQ(result.experiments.size(), 4u);  // mix-major, then policy
  EXPECT_EQ(result.experiments[0].mix.number, 1);
  EXPECT_EQ(result.experiments[0].policy, PolicyKind::kEquipartition);
  EXPECT_EQ(result.experiments[1].mix.number, 1);
  EXPECT_EQ(result.experiments[1].policy, PolicyKind::kDynAff);
  EXPECT_EQ(result.experiments[2].mix.number, 5);
  EXPECT_EQ(result.experiments[3].mix.number, 5);
  for (const ExperimentResult& experiment : result.experiments) {
    EXPECT_EQ(experiment.replicated.replications, 2u);
    ASSERT_EQ(experiment.cells.size(), 2u);
    for (size_t j = 0; j < experiment.replicated.app.size(); ++j) {
      EXPECT_GT(experiment.replicated.MeanResponse(j), 0.0);
    }
  }
}

TEST(SweepRunnerTest, ParallelAndSerialJsonAreByteIdentical) {
  SweepRunnerOptions serial;
  serial.jobs = 1;
  SweepRunnerOptions parallel;
  parallel.jobs = 8;
  const SweepResult a = SweepRunner(serial).Run(TinySpec());
  const SweepResult b = SweepRunner(parallel).Run(TinySpec());
  const std::string ja = a.ToJson();
  const std::string jb = b.ToJson();
  EXPECT_TRUE(IsValidJson(ja));
  EXPECT_EQ(ja, jb);  // bit-identical results at any worker count
}

TEST(SweepRunnerTest, CellSeedsAreDerivedNotSequential) {
  const SweepSpec spec = TinySpec();
  const SweepResult result = SweepRunner().Run(spec);
  for (const ExperimentResult& experiment : result.experiments) {
    for (const CellResult& cell : experiment.cells) {
      EXPECT_EQ(cell.seed,
                DeriveCellSeed(spec.root_seed, experiment.mix.number, cell.replication));
    }
  }
}

// The paper compares policies under common random numbers: both policies'
// cells for a given (mix, replication) must use the same seed, so policy
// choice never perturbs the workload draw.
TEST(SweepRunnerTest, PoliciesShareSeedsWithinAMix) {
  const SweepResult result = SweepRunner().Run(TinySpec());
  const ExperimentResult* equi = result.Find(PolicyKind::kEquipartition, 1);
  const ExperimentResult* aff = result.Find(PolicyKind::kDynAff, 1);
  ASSERT_NE(equi, nullptr);
  ASSERT_NE(aff, nullptr);
  ASSERT_EQ(equi->cells.size(), aff->cells.size());
  for (size_t c = 0; c < equi->cells.size(); ++c) {
    EXPECT_EQ(equi->cells[c].seed, aff->cells[c].seed);
  }
}

TEST(SweepRunnerTest, MatchesSerialReplicationFolding) {
  // The runner's aggregate for one experiment must equal folding the same
  // cells through the serial ReplicationFolder — same seeds, same order.
  const SweepSpec spec = TinySpec();
  const SweepResult result = SweepRunner().Run(spec);
  const ExperimentResult* experiment = result.Find(PolicyKind::kDynAff, 5);
  ASSERT_NE(experiment, nullptr);
  const std::vector<AppProfile> jobs = spec.mixes[1].Expand(spec.apps);
  ReplicationFolder folder(jobs.size());
  for (size_t rep = 0; rep < 2; ++rep) {
    folder.Fold(RunOnce(spec.machine, PolicyKind::kDynAff, jobs,
                        DeriveCellSeed(spec.root_seed, 5, rep), spec.engine));
  }
  const ReplicatedResult expected = folder.Finish();
  for (size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_DOUBLE_EQ(experiment->replicated.MeanResponse(j), expected.MeanResponse(j));
    EXPECT_EQ(experiment->replicated.mean_stats[j].reallocations,
              expected.mean_stats[j].reallocations);
  }
}

TEST(SweepRunnerTest, AdaptiveReplicationStaysWithinBounds) {
  SweepSpec spec = TinySpec();
  spec.replication.min_replications = 2;
  spec.replication.max_replications = 4;
  spec.replication.relative_precision = 1e-9;  // unreachable: drives to the cap
  const SweepResult result = SweepRunner().Run(spec);
  for (const ExperimentResult& experiment : result.experiments) {
    EXPECT_EQ(experiment.replicated.replications, 4u);
    EXPECT_EQ(experiment.cells.size(), 4u);
  }
}

TEST(SweepRunnerTest, RecordCellsFalseKeepsAggregatesOnly) {
  SweepRunnerOptions options;
  options.record_cells = false;
  const SweepResult result = SweepRunner(options).Run(TinySpec());
  for (const ExperimentResult& experiment : result.experiments) {
    EXPECT_TRUE(experiment.cells.empty());
    EXPECT_EQ(experiment.replicated.replications, 2u);
  }
  EXPECT_TRUE(IsValidJson(result.ToJson()));
}

TEST(SweepRunnerTest, ThrowingCellPropagatesAfterCleanShutdown) {
  SweepRunnerOptions options;
  options.jobs = 4;
  options.run_cell = [](const SweepCellRef&, const MachineConfig& machine, PolicyKind policy,
                        const std::vector<AppProfile>& jobs, uint64_t seed,
                        const EngineOptions& engine_options) -> RunResult {
    if (policy == PolicyKind::kDynAff) {
      throw std::runtime_error("injected cell failure");
    }
    return RunOnce(machine, policy, jobs, seed, engine_options);
  };
  SweepRunner runner(options);
  // Every in-flight cell finishes, the pool joins, and the exception
  // surfaces — no hang, no abort.
  EXPECT_THROW(runner.Run(TinySpec()), std::runtime_error);
}

TEST(SweepRunnerTest, ProgressReportsMonotonicCompletion) {
  SweepRunnerOptions options;
  options.jobs = 2;
  std::vector<size_t> completions;
  options.progress = [&completions](size_t completed, size_t) {
    completions.push_back(completed);
  };
  SweepRunner(options).Run(TinySpec());
  ASSERT_FALSE(completions.empty());
  for (size_t i = 1; i < completions.size(); ++i) {
    EXPECT_GE(completions[i], completions[i - 1]);
  }
  EXPECT_EQ(completions.back(), 8u);  // 2 policies x 2 mixes x 2 reps
}

TEST(SweepRunnerTest, JsonCarriesSchemaAndRatios) {
  const SweepResult result = SweepRunner().Run(TinySpec());
  const std::string json = result.ToJson();
  EXPECT_TRUE(IsValidJson(json));
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(json.find("\"relative_response\":["), std::string::npos);  // equi in grid
  EXPECT_NE(json.find("\"policy\":\"dyn-aff\""), std::string::npos);
}

TEST(SweepRunnerTest, ObservabilityOptInEmitsSchema3Block) {
  SweepSpec spec = TinySpec();
  spec.observability = true;
  const std::string json = SweepRunner().Run(spec).ToJson();
  EXPECT_TRUE(IsValidJson(json));
  EXPECT_NE(json.find("\"schema_version\":3"), std::string::npos);
  EXPECT_NE(json.find("\"observability\":{"), std::string::npos);
  EXPECT_NE(json.find("\"reload_transient_fraction\""), std::string::npos);
  EXPECT_NE(json.find("\"affine_fraction\""), std::string::npos);
  EXPECT_NE(json.find("\"migrations\""), std::string::npos);

  // Off by default: the plain document stays schema 1 with no block, so the
  // golden baselines remain byte-identical.
  const std::string plain = SweepRunner().Run(TinySpec()).ToJson();
  EXPECT_NE(plain.find("\"schema_version\":1"), std::string::npos);
  EXPECT_EQ(plain.find("\"observability\""), std::string::npos);
}

TEST(SweepRunnerTest, ProbeHitsSkipSimulationWithoutChangingResults) {
  // First pass: run everything, recording each cell's result by identity.
  std::map<std::string, RunResult> recorded;
  std::mutex mu;
  SweepRunnerOptions record;
  record.jobs = 4;
  record.store_cell = [&](const SweepCellRef& ref, const RunResult& result) {
    std::lock_guard<std::mutex> lock(mu);
    recorded[std::to_string(ref.mix_number) + "/" + PolicyKindCliName(ref.policy) + "/" +
             std::to_string(ref.replication)] = result;
  };
  const std::string baseline = SweepRunner(record).Run(TinySpec()).ToJson();
  EXPECT_EQ(recorded.size(), 8u);

  // Second pass: every cell is answered by the probe; run_cell must never be
  // called, and the folded document must be byte-identical.
  size_t probes = 0;
  SweepRunnerOptions cached;
  cached.jobs = 4;
  cached.probe_cell = [&](const SweepCellRef& ref, RunResult* out) {
    ++probes;
    *out = recorded.at(std::to_string(ref.mix_number) + "/" + PolicyKindCliName(ref.policy) +
                       "/" + std::to_string(ref.replication));
    return true;
  };
  cached.run_cell = [](const SweepCellRef&, const MachineConfig&, PolicyKind,
                       const std::vector<AppProfile>&, uint64_t,
                       const EngineOptions&) -> RunResult {
    ADD_FAILURE() << "run_cell called despite universal probe hits";
    return RunResult{};
  };
  EXPECT_EQ(SweepRunner(cached).Run(TinySpec()).ToJson(), baseline);
  EXPECT_EQ(probes, 8u);
}

TEST(SweepRunnerTest, OnCellStreamsInDeterministicFoldOrder) {
  // A partial cache: mix 1 hits, mix 5 misses. The stream must arrive in
  // fold order (mix-major, then policy, then replication) regardless, with
  // from_cache telling the two sources apart.
  std::map<std::string, RunResult> recorded;
  std::mutex mu;
  SweepRunnerOptions record;
  record.jobs = 4;
  record.store_cell = [&](const SweepCellRef& ref, const RunResult& result) {
    std::lock_guard<std::mutex> lock(mu);
    recorded[std::to_string(ref.mix_number) + "/" + PolicyKindCliName(ref.policy) + "/" +
             std::to_string(ref.replication)] = result;
  };
  SweepRunner(record).Run(TinySpec());

  std::vector<std::string> stream;
  size_t cache_hits = 0;
  SweepRunnerOptions partial;
  partial.jobs = 4;
  partial.probe_cell = [&](const SweepCellRef& ref, RunResult* out) {
    if (ref.mix_number != 1) {
      return false;
    }
    *out = recorded.at("1/" + std::string(PolicyKindCliName(ref.policy)) + "/" +
                       std::to_string(ref.replication));
    return true;
  };
  partial.on_cell = [&](const SweepCellRef& ref, const RunResult&, bool from_cache) {
    stream.push_back(std::to_string(ref.mix_number) + "/" + PolicyKindCliName(ref.policy) +
                     "/" + std::to_string(ref.replication));
    EXPECT_EQ(from_cache, ref.mix_number == 1);
    cache_hits += from_cache ? 1 : 0;
  };
  SweepRunner(partial).Run(TinySpec());
  const std::vector<std::string> want = {"1/equi/0",    "1/equi/1",    "1/dyn-aff/0",
                                         "1/dyn-aff/1", "5/equi/0",    "5/equi/1",
                                         "5/dyn-aff/0", "5/dyn-aff/1"};
  EXPECT_EQ(stream, want);
  EXPECT_EQ(cache_hits, 4u);
}

TEST(SweepRunnerTest, StoreCellNeverFiresForProbeHits) {
  std::mutex mu;
  size_t stores = 0;
  SweepRunnerOptions options;
  options.jobs = 4;
  options.probe_cell = [](const SweepCellRef& ref, RunResult* out) {
    if (ref.mix_number != 1) {
      return false;
    }
    *out = RunResult{};  // a synthetic-but-valid result is fine for the fold
    out->jobs.resize(2);
    for (JobResult& job : out->jobs) {
      job.stats.completion = 1000000000;  // folders require completed jobs
    }
    out->makespan = 1000000000;
    return true;
  };
  options.store_cell = [&](const SweepCellRef& ref, const RunResult&) {
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_NE(ref.mix_number, 1);  // hits checkpoint nothing
    ++stores;
  };
  SweepRunner(options).Run(TinySpec());
  EXPECT_EQ(stores, 4u);  // only mix 5's simulated cells
}

}  // namespace
}  // namespace affsched
