// The rt sweep preset and its spec keys, plus the headline acceptance check:
// the static rt policies must not observe a worse worst-case reload than
// dynamic affinity on the rt preset.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/runner/runner.h"
#include "src/runner/sweep.h"

namespace affsched {
namespace {

TEST(RtSweepSpecTest, RtPresetParses) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("rt", &spec, &error)) << error;
  EXPECT_EQ(spec.name, "rt");
  EXPECT_TRUE(spec.rt);
  EXPECT_EQ(spec.deadline_mix, "soft");
  EXPECT_EQ(spec.root_seed, 1000u);
  EXPECT_EQ(spec.machine.cache_model, CacheModelKind::kPartitioned);
  EXPECT_EQ(spec.machine.num_colors, 8u);
  ASSERT_EQ(spec.policies.size(), 3u);
  EXPECT_EQ(spec.policies[0], PolicyKind::kDynAff);
  EXPECT_EQ(spec.policies[1], PolicyKind::kRtStaticAffinity);
  EXPECT_EQ(spec.policies[2], PolicyKind::kRtColorIso);
  ASSERT_EQ(spec.mixes.size(), 2u);
  EXPECT_EQ(spec.mixes[0].number, 1);
  EXPECT_EQ(spec.mixes[1].number, 5);
}

TEST(RtSweepSpecTest, ColorsKeySelectsThePartitionedSubstrate) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("smoke;colors=4", &spec, &error)) << error;
  EXPECT_EQ(spec.machine.cache_model, CacheModelKind::kPartitioned);
  EXPECT_EQ(spec.machine.num_colors, 4u);
  // colors=0 restores the footprint model.
  ASSERT_TRUE(ParseSweepSpec("smoke;colors=4;colors=0", &spec, &error)) << error;
  EXPECT_EQ(spec.machine.cache_model, CacheModelKind::kFootprint);
  EXPECT_EQ(spec.machine.num_colors, 0u);
  EXPECT_FALSE(ParseSweepSpec("smoke;colors=65", &spec, &error));
}

TEST(RtSweepSpecTest, RtAndDeadlineMixKeysParse) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("smoke;rt=1;deadline-mix=hard", &spec, &error)) << error;
  EXPECT_TRUE(spec.rt);
  EXPECT_EQ(spec.deadline_mix, "hard");
  ASSERT_TRUE(ParseSweepSpec("smoke;rt=on;rt=off", &spec, &error)) << error;
  EXPECT_FALSE(spec.rt);
  EXPECT_FALSE(ParseSweepSpec("smoke;rt=2", &spec, &error));
  EXPECT_FALSE(ParseSweepSpec("smoke;deadline-mix=bogus", &spec, &error));
  EXPECT_NE(error.find("soft|hard|mixed|tight"), std::string::npos);
}

TEST(RtSweepSpecTest, NonRtDocumentsCarryNoRtFields) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("smoke;reps=1;mixes=1", &spec, &error)) << error;
  SweepRunnerOptions options;
  options.jobs = 2;
  const std::string json = SweepRunner(options).Run(spec).ToJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos);
  EXPECT_EQ(json.find("\"rt\""), std::string::npos);
  EXPECT_EQ(json.find("deadline"), std::string::npos);
  EXPECT_EQ(json.find("worst_reload_s"), std::string::npos);
  EXPECT_EQ(json.find("\"colors\""), std::string::npos);
}

// One full run of the rt preset backs the remaining assertions (the golden
// test already pins the exact bytes; here we check the semantics).
class RtPresetRunTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SweepSpec spec;
    std::string error;
    ASSERT_TRUE(ParseSweepSpec("rt", &spec, &error)) << error;
    SweepRunnerOptions options;
    options.jobs = 2;
    result_ = new SweepResult(SweepRunner(options).Run(spec));
  }
  static void TearDownTestSuite() {
    delete result_;
    result_ = nullptr;
  }

  // Worst single-chunk reload any job of any replication observed under
  // (policy, mix) — the number the static plans exist to bound.
  static double WorstReload(PolicyKind policy, int mix) {
    const ExperimentResult* experiment = result_->Find(policy, mix);
    EXPECT_NE(experiment, nullptr);
    double worst = 0.0;
    for (const JobStats& stats : experiment->replicated.mean_stats) {
      worst = std::max(worst, stats.worst_reload_s);
    }
    return worst;
  }

  static SweepResult* result_;
};

SweepResult* RtPresetRunTest::result_ = nullptr;

TEST_F(RtPresetRunTest, DocumentIsSchemaV3WithRtBlock) {
  const std::string json = result_->ToJson();
  EXPECT_NE(json.find("\"schema_version\":3"), std::string::npos);
  EXPECT_NE(json.find("\"colors\":8"), std::string::npos);
  EXPECT_NE(json.find("\"rt\":true"), std::string::npos);
  EXPECT_NE(json.find("\"deadline_mix\":\"soft\""), std::string::npos);
  EXPECT_NE(json.find("\"rt\":{\"deadline_mix\":\"soft\",\"experiments\":["),
            std::string::npos);
  EXPECT_NE(json.find("\"deadline_miss_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"p99_tardiness_s\""), std::string::npos);
  EXPECT_NE(json.find("\"worst_reload_s\""), std::string::npos);
}

TEST_F(RtPresetRunTest, SoftMixIsFeasible) {
  // The soft mix leaves 60% slack over the ideal makespan; every policy in
  // the preset meets every deadline, so the preset doubles as a regression
  // guard on deadline accounting (a spurious miss fails here).
  for (const ExperimentResult& experiment : result_->experiments) {
    for (const JobStats& stats : experiment.replicated.mean_stats) {
      EXPECT_EQ(stats.deadline_misses, 0u);
      EXPECT_DOUBLE_EQ(stats.tardiness_s, 0.0);
    }
  }
}

// The acceptance criterion of the rt subsystem: planning affinity statically
// must bound the worst-case-observed reload transient at or below what
// dynamic affinity produces, on both mixes of the preset.
TEST_F(RtPresetRunTest, StaticAffinityBoundsWorstCaseReload) {
  for (int mix : {1, 5}) {
    const double dynamic = WorstReload(PolicyKind::kDynAff, mix);
    const double rt_static = WorstReload(PolicyKind::kRtStaticAffinity, mix);
    const double color_iso = WorstReload(PolicyKind::kRtColorIso, mix);
    ASSERT_GT(dynamic, 0.0);
    EXPECT_LE(rt_static, dynamic) << "mix " << mix;
    // Color isolation shields the footprint from cross-job evictions too,
    // so it must do at least as well as span planning alone.
    EXPECT_LE(color_iso, rt_static) << "mix " << mix;
  }
}

}  // namespace
}  // namespace affsched
