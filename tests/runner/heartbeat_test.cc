#include "src/runner/heartbeat.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/runner/runner.h"
#include "src/telemetry/json.h"

namespace affsched {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

// Same tiny grid the sweep-runner tests use: 2 policies x 2 mixes x 2 reps.
SweepSpec TinySpec() {
  SweepSpec spec;
  spec.name = "tiny";
  spec.machine.num_processors = 8;
  spec.apps = {MakeSmallMvaProfile(), MakeSmallMatrixProfile(), MakeSmallGravityProfile()};
  spec.policies = {PolicyKind::kEquipartition, PolicyKind::kDynAff};
  spec.mixes = {WorkloadMix{.number = 1, .mva = 2, .matrix = 0, .gravity = 0},
                WorkloadMix{.number = 5, .mva = 0, .matrix = 1, .gravity = 1}};
  spec.replication.min_replications = 2;
  spec.replication.max_replications = 2;
  spec.root_seed = 7;
  return spec;
}

TEST(HeartbeatWriterTest, EmitsOneValidJsonLinePerEvent) {
  const std::string path = ::testing::TempDir() + "/heartbeat_test_out.jsonl";
  {
    HeartbeatWriter hb(path);
    ASSERT_TRUE(hb.ok());
    hb.Start("tiny", 8);
    SweepRoundStats stats;
    stats.round = 1;
    stats.round_cells = 4;
    stats.completed = 4;
    stats.scheduled = 8;
    stats.round_wall_s = 0.5;
    stats.total_wall_s = 0.5;
    stats.round_events = 20000;
    stats.round_deadline_misses = 3;
    hb.OnRound(stats);
    hb.OnProgress(6, 8);
    hb.Finish(8, 1.25);
  }

  const auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 4u);
  for (const std::string& line : lines) {
    EXPECT_TRUE(IsValidJson(line)) << line;
  }
  EXPECT_NE(lines[0].find("\"kind\":\"start\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(lines[0].find("\"name\":\"tiny\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"cells_min\":8"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"round\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"completed\":4"), std::string::npos);
  EXPECT_NE(lines[1].find("\"events_per_s\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"eta_s\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"deadline_misses\":3"), std::string::npos);
  EXPECT_NE(lines[2].find("\"kind\":\"progress\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"kind\":\"done\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"completed\":8"), std::string::npos);
  std::remove(path.c_str());
}

TEST(HeartbeatWriterTest, UnopenablePathIsInertNotFatal) {
  HeartbeatWriter hb("/nonexistent-affsched-dir/heartbeat.jsonl");
  EXPECT_FALSE(hb.ok());
  // Every call must be a silent no-op.
  hb.Start("x", 1);
  hb.OnRound(SweepRoundStats{});
  hb.OnProgress(0, 1);
  hb.Finish(1, 0.0);
}

TEST(SweepRunnerRoundStatsTest, RoundStatsReportEveryCellAndRealWork) {
  SweepRunnerOptions options;
  options.jobs = 2;
  std::vector<SweepRoundStats> rounds;
  options.round_stats = [&rounds](const SweepRoundStats& stats) { rounds.push_back(stats); };
  SweepRunner(options).Run(TinySpec());

  ASSERT_FALSE(rounds.empty());
  size_t cells = 0;
  uint64_t events = 0;
  for (size_t i = 0; i < rounds.size(); ++i) {
    EXPECT_EQ(rounds[i].round, i + 1);  // 1-based, consecutive
    EXPECT_GE(rounds[i].round_wall_s, 0.0);
    EXPECT_GE(rounds[i].total_wall_s, rounds[i].round_wall_s);
    EXPECT_LE(rounds[i].completed, rounds[i].scheduled);
    if (i > 0) {
      EXPECT_GE(rounds[i].completed, rounds[i - 1].completed);
    }
    cells += rounds[i].round_cells;
    events += rounds[i].round_events;
    // The tiny grid stamps no deadlines, so the rt counter must stay zero.
    EXPECT_EQ(rounds[i].round_deadline_misses, 0u);
  }
  EXPECT_EQ(cells, 8u);  // 2 policies x 2 mixes x 2 reps, all reported
  EXPECT_EQ(rounds.back().completed, 8u);
  // The simulation's event count flows through RunResult into the stats.
  EXPECT_GT(events, 0u);
}

}  // namespace
}  // namespace affsched
