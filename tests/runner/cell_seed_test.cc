#include "src/runner/cell_seed.h"

#include <gtest/gtest.h>

#include <set>

namespace affsched {
namespace {

TEST(CellSeedTest, DeterministicAcrossCalls) {
  EXPECT_EQ(DeriveSeed(1000, {5, 0}), DeriveSeed(1000, {5, 0}));
  EXPECT_EQ(DeriveCellSeed(1000, 5, 0), DeriveCellSeed(1000, 5, 0));
}

TEST(CellSeedTest, CellSeedMatchesGenericDerivation) {
  EXPECT_EQ(DeriveCellSeed(42, 3, 7), DeriveSeed(42, {3, 7}));
}

TEST(CellSeedTest, SensitiveToEveryInput) {
  const uint64_t base = DeriveCellSeed(1000, 5, 0);
  EXPECT_NE(base, DeriveCellSeed(1001, 5, 0));  // root
  EXPECT_NE(base, DeriveCellSeed(1000, 4, 0));  // mix
  EXPECT_NE(base, DeriveCellSeed(1000, 5, 1));  // replication
}

TEST(CellSeedTest, SensitiveToCoordinateOrder) {
  EXPECT_NE(DeriveSeed(9, {1, 2}), DeriveSeed(9, {2, 1}));
}

TEST(CellSeedTest, SensitiveToCoordinateCount) {
  EXPECT_NE(DeriveSeed(9, {1}), DeriveSeed(9, {1, 0}));
  EXPECT_NE(DeriveSeed(9, {}), DeriveSeed(9, {0}));
}

// Baselines rely on cell seeds never moving: grid edits (new policies, wider
// replication axes) must not reseed existing cells, and neither may an
// innocent-looking refactor of the hash. Golden values pin the function.
TEST(CellSeedTest, GoldenValuesPinTheHash) {
  const uint64_t a = DeriveCellSeed(1000, 1, 0);
  const uint64_t b = DeriveCellSeed(1000, 1, 1);
  const uint64_t c = DeriveCellSeed(555, 5, 0);
  EXPECT_EQ(a, DeriveCellSeed(1000, 1, 0));
  EXPECT_EQ(DeriveCellSeed(1000, 1, 0), 0x92c3208d443555acull);
  EXPECT_EQ(DeriveCellSeed(1000, 1, 1), 0x98518b6a9e2d1271ull);
  EXPECT_EQ(DeriveCellSeed(555, 5, 0), 0xe040abdecfc8d9feull);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(CellSeedTest, SeedsRoundTripThroughDecimalText) {
  // Seeds above 2^53 are exactly the ones a double would corrupt; the
  // decimal-text path must carry all 64 bits.
  const uint64_t cases[] = {0, 1, (uint64_t{1} << 53) + 1, UINT64_MAX,
                            DeriveCellSeed(1000, 5, 0)};
  for (uint64_t seed : cases) {
    EXPECT_EQ(SeedFromDecimal(SeedToDecimal(seed)), seed);
  }
  EXPECT_EQ(SeedToDecimal(18446744073709551615ull), "18446744073709551615");
}

TEST(CellSeedDeathTest, ZeroMixNumberViolatesCoordinateConvention) {
  EXPECT_DEATH(DeriveCellSeed(1000, 0, 0), "1-based");
}

TEST(CellSeedTest, NoCollisionsAcrossRealisticGrid) {
  std::set<uint64_t> seeds;
  for (uint64_t root : {1000ull, 555ull, 8000ull}) {
    for (int mix = 1; mix <= 6; ++mix) {
      for (size_t rep = 0; rep < 32; ++rep) {
        seeds.insert(DeriveCellSeed(root, mix, rep));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 3u * 6u * 32u);
}

}  // namespace
}  // namespace affsched
