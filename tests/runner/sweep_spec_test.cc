#include "src/runner/sweep.h"

#include <gtest/gtest.h>

namespace affsched {
namespace {

TEST(SweepSpecTest, PolicyCliNamesRoundTrip) {
  for (PolicyKind kind :
       {PolicyKind::kEquipartition, PolicyKind::kDynamic, PolicyKind::kDynAff,
        PolicyKind::kDynAffNoPri, PolicyKind::kDynAffDelay, PolicyKind::kTimeShare,
        PolicyKind::kTimeShareAff}) {
    PolicyKind parsed;
    ASSERT_TRUE(PolicyKindFromName(PolicyKindCliName(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  PolicyKind unused;
  EXPECT_FALSE(PolicyKindFromName("no-such-policy", &unused));
}

TEST(SweepSpecTest, PresetsParse) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("fig5", &spec, &error)) << error;
  EXPECT_EQ(spec.name, "fig5");
  EXPECT_EQ(spec.policies.size(), 4u);
  EXPECT_EQ(spec.mixes.size(), 6u);
  EXPECT_EQ(spec.root_seed, 1000u);

  ASSERT_TRUE(ParseSweepSpec("table3", &spec, &error)) << error;
  EXPECT_EQ(spec.policies.size(), 3u);
  ASSERT_EQ(spec.mixes.size(), 1u);
  EXPECT_EQ(spec.mixes[0].number, 5);
  EXPECT_EQ(spec.root_seed, 555u);

  ASSERT_TRUE(ParseSweepSpec("smoke", &spec, &error)) << error;
  EXPECT_EQ(spec.replication.min_replications, 2u);
  EXPECT_EQ(spec.replication.max_replications, 2u);
}

TEST(SweepSpecTest, PresetWithOverrides) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("fig5;reps=2;procs=8;seed=77", &spec, &error)) << error;
  EXPECT_EQ(spec.name, "fig5;reps=2;procs=8;seed=77");  // provenance
  EXPECT_EQ(spec.replication.min_replications, 2u);
  EXPECT_EQ(spec.replication.max_replications, 2u);
  EXPECT_EQ(spec.machine.num_processors, 8u);
  EXPECT_EQ(spec.root_seed, 77u);
}

TEST(SweepSpecTest, CustomSpecParses) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(
      ParseSweepSpec("policies=equi,dyn-aff;mixes=1,5;reps=3-5;precision=0.01", &spec, &error))
      << error;
  ASSERT_EQ(spec.policies.size(), 2u);
  EXPECT_EQ(spec.policies[0], PolicyKind::kEquipartition);
  EXPECT_EQ(spec.policies[1], PolicyKind::kDynAff);
  ASSERT_EQ(spec.mixes.size(), 2u);
  EXPECT_EQ(spec.mixes[0].number, 1);
  EXPECT_EQ(spec.mixes[1].number, 5);
  EXPECT_EQ(spec.replication.min_replications, 3u);
  EXPECT_EQ(spec.replication.max_replications, 5u);
  EXPECT_DOUBLE_EQ(spec.replication.relative_precision, 0.01);
}

TEST(SweepSpecTest, SixtyFourBitSeedsParseExactly) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("smoke;seed=9223372036854775815", &spec, &error)) << error;
  EXPECT_EQ(spec.root_seed, 9223372036854775815ull);  // 2^63 + 7: survives parsing
}

TEST(SweepSpecTest, RejectsMalformedSpecs) {
  SweepSpec spec;
  std::string error;
  EXPECT_FALSE(ParseSweepSpec("", &spec, &error));
  EXPECT_FALSE(ParseSweepSpec("nonsense", &spec, &error));
  EXPECT_FALSE(ParseSweepSpec("policies=warp-drive", &spec, &error));
  EXPECT_FALSE(ParseSweepSpec("mixes=7", &spec, &error));
  EXPECT_FALSE(ParseSweepSpec("reps=0", &spec, &error));
  EXPECT_FALSE(ParseSweepSpec("reps=5-3", &spec, &error));
  EXPECT_FALSE(ParseSweepSpec("smoke;frobnicate=1", &spec, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SweepSpecTest, ObservabilityKeyParsesAndDefaultsOff) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("smoke", &spec, &error)) << error;
  EXPECT_FALSE(spec.observability);
  for (const char* on : {"smoke;observability=1", "smoke;observability=true",
                         "smoke;observability=on"}) {
    ASSERT_TRUE(ParseSweepSpec(on, &spec, &error)) << on << ": " << error;
    EXPECT_TRUE(spec.observability) << on;
  }
  for (const char* off : {"smoke;observability=0", "smoke;observability=false",
                          "smoke;observability=off"}) {
    ASSERT_TRUE(ParseSweepSpec(off, &spec, &error)) << off << ": " << error;
    EXPECT_FALSE(spec.observability) << off;
  }
  EXPECT_FALSE(ParseSweepSpec("smoke;observability=maybe", &spec, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SweepSpecTest, MinCellsCountsTheGrid) {
  SweepSpec spec;
  std::string error;
  ASSERT_TRUE(ParseSweepSpec("smoke", &spec, &error)) << error;
  EXPECT_EQ(spec.MinCells(), 3u * 2u * 2u);  // policies x mixes x min reps
}

}  // namespace
}  // namespace affsched
