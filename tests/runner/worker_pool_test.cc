#include "src/runner/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace affsched {
namespace {

TEST(WorkerPoolTest, RunsEverySubmittedTask) {
  WorkerPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&count] { count.fetch_add(1); }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(WorkerPoolTest, ZeroThreadsClampsToOne) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(WorkerPoolTest, ParallelForCoversEveryIndexOnce) {
  WorkerPool pool(8);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerPoolTest, ParallelForWithManyMoreTasksThanThreads) {
  WorkerPool pool(2);
  std::atomic<long> sum{0};
  pool.ParallelFor(1000, [&sum](size_t i) { sum.fetch_add(static_cast<long>(i)); });
  EXPECT_EQ(sum.load(), 999L * 1000L / 2);
}

TEST(WorkerPoolTest, TaskExceptionLandsInFutureNotOnWorker) {
  WorkerPool pool(2);
  auto future = pool.Submit([] { throw std::runtime_error("cell failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The worker survived; the pool still executes work.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(WorkerPoolTest, ParallelForFinishesAllWorkBeforeRethrowing) {
  WorkerPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.ParallelFor(64, [&completed](size_t i) {
      if (i == 13) {
        throw std::runtime_error("boom");
      }
      completed.fetch_add(1);
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // Every non-throwing iteration ran to completion before the rethrow: no
  // cancelled stragglers, pool quiescent.
  EXPECT_EQ(completed.load(), 63);
}

TEST(WorkerPoolTest, RethrowsLowestIndexException) {
  WorkerPool pool(4);
  for (int attempt = 0; attempt < 8; ++attempt) {
    try {
      pool.ParallelFor(32, [](size_t i) {
        if (i == 5) {
          throw std::runtime_error("five");
        }
        if (i == 20) {
          throw std::logic_error("twenty");
        }
      });
      FAIL() << "expected ParallelFor to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "five");  // deterministic pick regardless of timing
    } catch (const std::logic_error&) {
      FAIL() << "rethrew the higher-index exception";
    }
  }
}

TEST(WorkerPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    WorkerPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    // Destructor must complete all 50 before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace affsched
