#include "src/measure/arrivals.h"

#include <gtest/gtest.h>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/sched/factory.h"

namespace affsched {
namespace {

TEST(ArrivalsTest, GeneratesRequestedCountSorted) {
  const auto plan = PoissonArrivals(50, Seconds(2), {1.0, 1.0, 1.0}, 9);
  ASSERT_EQ(plan.size(), 50u);
  for (size_t i = 1; i < plan.size(); ++i) {
    EXPECT_GE(plan[i].when, plan[i - 1].when);
  }
}

TEST(ArrivalsTest, MeanInterarrivalApproximatelyMatches) {
  const auto plan = PoissonArrivals(2000, Seconds(3), {1.0}, 10);
  const double mean = ToSeconds(plan.back().when) / static_cast<double>(plan.size());
  EXPECT_NEAR(mean, 3.0, 0.25);
}

TEST(ArrivalsTest, WeightsSteerAppMix) {
  const auto plan = PoissonArrivals(3000, Seconds(1), {8.0, 1.0, 1.0}, 11);
  size_t counts[3] = {0, 0, 0};
  for (const auto& entry : plan) {
    ASSERT_LT(entry.app_index, 3u);
    ++counts[entry.app_index];
  }
  EXPECT_NEAR(static_cast<double>(counts[0]) / 3000.0, 0.8, 0.03);
  EXPECT_NEAR(static_cast<double>(counts[1]) / 3000.0, 0.1, 0.03);
}

TEST(ArrivalsTest, DeterministicPerSeed) {
  const auto a = PoissonArrivals(20, Seconds(1), {1.0, 2.0}, 12);
  const auto b = PoissonArrivals(20, Seconds(1), {1.0, 2.0}, 12);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].when, b[i].when);
    EXPECT_EQ(a[i].app_index, b[i].app_index);
  }
}

TEST(ArrivalsTest, PlanDrivesEngineToCompletion) {
  MachineConfig machine;
  machine.num_processors = 4;
  const std::vector<AppProfile> apps = {MakeSmallMvaProfile(), MakeSmallGravityProfile()};
  const auto plan = PoissonArrivals(4, Seconds(1), {1.0, 1.0}, 13);
  Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 13);
  for (const auto& entry : plan) {
    engine.SubmitJob(apps[entry.app_index], entry.when);
  }
  const SimTime end = engine.Run();
  EXPECT_GT(end, plan.back().when);
  for (JobId id = 0; id < engine.job_count(); ++id) {
    EXPECT_GE(engine.job_stats(id).completion, 0);
  }
}

TEST(ArrivalsDeathTest, EmptyWeightsAbort) {
  EXPECT_DEATH(PoissonArrivals(1, Seconds(1), {}, 1), "CHECK");
}

}  // namespace
}  // namespace affsched
