#include "src/measure/section4_exact.h"

#include <gtest/gtest.h>

#include "src/apps/apps.h"

namespace affsched {
namespace {

Section4ExactOptions FastOptions(double q_ms) {
  Section4ExactOptions options;
  options.q = Milliseconds(q_ms);
  options.run_length = Seconds(1.5);
  options.thread_length = Milliseconds(300);
  return options;
}

TEST(Section4ExactTest, ReferenceRateMatchesBuildupConstant) {
  // rate = W / tau for each calibrated application.
  for (const AppProfile& app : DefaultProfiles()) {
    const double rate = DeriveReferenceRate(app);
    EXPECT_NEAR(rate * app.working_set.buildup_tau_s, app.working_set.blocks, 1e-6);
  }
}

TEST(Section4ExactTest, PenaltiesPositiveAndOrdered) {
  const MachineConfig machine;
  const AppProfile app = MakeSmallMatrixProfile();
  const CachePenalties p =
      MeasureCachePenaltiesExact(machine, app, app, FastOptions(25.0), 1);
  EXPECT_GT(p.pna_us, 0.0);
  EXPECT_GT(p.pa_us, 0.0);
  EXPECT_GT(p.pna_us, p.pa_us);
}

TEST(Section4ExactTest, PenaltyGrowsWithQ) {
  const MachineConfig machine;
  const AppProfile app = DefaultProfiles()[1];  // MATRIX
  const CachePenalties q25 = MeasureCachePenaltiesExact(machine, app, app, FastOptions(25.0), 1);
  const CachePenalties q100 =
      MeasureCachePenaltiesExact(machine, app, app, FastOptions(100.0), 1);
  EXPECT_GT(q100.pna_us, q25.pna_us);
}

TEST(Section4ExactTest, PenaltyBoundedByFullFill) {
  const MachineConfig machine;
  const AppProfile app = DefaultProfiles()[0];  // MVA
  const CachePenalties p =
      MeasureCachePenaltiesExact(machine, app, app, FastOptions(100.0), 1);
  EXPECT_LT(p.pna_us, ToMicroseconds(kSymmetryFullFill) * 1.3);
}

TEST(Section4ExactTest, AgreesWithFootprintHarness) {
  // The two independent substrates should land within a factor of ~1.7 of
  // each other for the no-affinity penalty.
  const MachineConfig machine;
  const AppProfile app = DefaultProfiles()[1];  // MATRIX: fastest to run
  Section4Options fp_options;
  fp_options.q = Milliseconds(100);
  const CachePenalties fp = MeasureCachePenalties(machine, app, app, fp_options, 1);
  const CachePenalties ex =
      MeasureCachePenaltiesExact(machine, app, app, FastOptions(100.0), 1);
  EXPECT_GT(ex.pna_us, fp.pna_us / 1.7);
  EXPECT_LT(ex.pna_us, fp.pna_us * 1.7);
}

}  // namespace
}  // namespace affsched
