#include "src/measure/section4.h"

#include <gtest/gtest.h>

#include "src/apps/apps.h"

namespace affsched {
namespace {

MachineConfig BaseMachine() { return MachineConfig{}; }

AppProfile SmallApp() {
  // A compact cache-heavy app so the harness runs quickly.
  AppProfile p = MakeSmallMatrixProfile();
  return p;
}

TEST(Section4Test, StationaryCountsSwitches) {
  const Section4Options options{.q = Milliseconds(25)};
  const Section4Result r = RunSection4(BaseMachine(), SmallApp(),
                                       Section4Treatment::kStationary, nullptr, options, 1);
  EXPECT_GT(r.switches, 0u);
  EXPECT_GT(r.response_s, 1.0);  // ~1.44 s of work plus overheads
}

TEST(Section4Test, MigratingCostsMoreThanStationary) {
  const Section4Options options{.q = Milliseconds(25)};
  const Section4Result stat = RunSection4(BaseMachine(), SmallApp(),
                                          Section4Treatment::kStationary, nullptr, options, 1);
  const Section4Result mig = RunSection4(BaseMachine(), SmallApp(),
                                         Section4Treatment::kMigrating, nullptr, options, 1);
  EXPECT_GT(mig.response_s, stat.response_s);
}

TEST(Section4Test, MultiprogBetweenStationaryAndMigrating) {
  // Affinity with an intervening task: some of the context survives, so the
  // penalty is positive but below the full-flush penalty.
  const Section4Options options{.q = Milliseconds(25)};
  const AppProfile app = SmallApp();
  const AppProfile other = MakeSmallGravityProfile();
  const Section4Result stat =
      RunSection4(BaseMachine(), app, Section4Treatment::kStationary, nullptr, options, 1);
  const Section4Result mig =
      RunSection4(BaseMachine(), app, Section4Treatment::kMigrating, nullptr, options, 1);
  const Section4Result multi =
      RunSection4(BaseMachine(), app, Section4Treatment::kMultiprog, &other, options, 1);
  EXPECT_GT(multi.response_s, stat.response_s);
  EXPECT_LT(multi.response_s, mig.response_s);
}

TEST(Section4Test, PenaltiesArePositiveAndOrdered) {
  const Section4Options options{.q = Milliseconds(25)};
  const CachePenalties p = MeasureCachePenalties(BaseMachine(), SmallApp(),
                                                 MakeSmallGravityProfile(), options, 1);
  EXPECT_GT(p.pna_us, 0.0);
  EXPECT_GT(p.pa_us, 0.0);
  EXPECT_GT(p.pna_us, p.pa_us);  // no affinity costs more than partial loss
}

TEST(Section4Test, PenaltyGrowsWithQ) {
  // The central Table 1 trend: both penalties increase with the
  // rescheduling interval.
  const AppProfile app = SmallApp();
  const AppProfile other = MakeSmallGravityProfile();
  CachePenalties prev{};
  bool first = true;
  for (double q_ms : {25.0, 100.0, 400.0}) {
    const Section4Options options{.q = Milliseconds(q_ms)};
    const CachePenalties p = MeasureCachePenalties(BaseMachine(), app, other, options, 1);
    if (!first) {
      EXPECT_GE(p.pna_us, prev.pna_us * 0.95) << "Q=" << q_ms;
      EXPECT_GE(p.pa_us, prev.pa_us * 0.95) << "Q=" << q_ms;
    }
    prev = p;
    first = false;
  }
}

TEST(Section4Test, PenaltyBoundedByFullCacheFill) {
  // P^NA can never exceed one full cache reload per switch (~3.072 ms).
  const Section4Options options{.q = Milliseconds(400)};
  const CachePenalties p = MeasureCachePenalties(BaseMachine(), SmallApp(),
                                                 MakeSmallGravityProfile(), options, 1);
  EXPECT_LT(p.pna_us, ToMicroseconds(kSymmetryFullFill) * 1.25);
}

TEST(Section4Test, SwitchCountsConsistentAcrossTreatments) {
  const Section4Options options{.q = Milliseconds(50)};
  const Section4Result stat = RunSection4(BaseMachine(), SmallApp(),
                                          Section4Treatment::kStationary, nullptr, options, 1);
  const Section4Result mig = RunSection4(BaseMachine(), SmallApp(),
                                         Section4Treatment::kMigrating, nullptr, options, 1);
  // The migrating run takes more wall time per window but the same schedule
  // of Q-driven switches within a similar total: counts should be close.
  const double ratio =
      static_cast<double>(mig.switches) / static_cast<double>(std::max<uint64_t>(1, stat.switches));
  EXPECT_GT(ratio, 0.8);
  EXPECT_LT(ratio, 1.5);
}

TEST(Section4DeathTest, MultiprogNeedsIntervening) {
  const Section4Options options{.q = Milliseconds(25)};
  EXPECT_DEATH(RunSection4(BaseMachine(), SmallApp(), Section4Treatment::kMultiprog, nullptr,
                           options, 1),
               "intervening");
}

}  // namespace
}  // namespace affsched
