#include "src/measure/mixes.h"

#include <gtest/gtest.h>

#include "src/apps/apps.h"

namespace affsched {
namespace {

TEST(MixesTest, PaperTableTwoContents) {
  const auto mixes = PaperMixes();
  ASSERT_EQ(mixes.size(), 6u);
  // Row-by-row from Table 2.
  EXPECT_EQ(mixes[0].mva, 2u);
  EXPECT_EQ(mixes[0].matrix, 0u);
  EXPECT_EQ(mixes[0].gravity, 0u);
  EXPECT_EQ(mixes[1].mva, 1u);
  EXPECT_EQ(mixes[1].matrix, 1u);
  EXPECT_EQ(mixes[2].mva, 1u);
  EXPECT_EQ(mixes[2].gravity, 1u);
  EXPECT_EQ(mixes[3].gravity, 2u);
  EXPECT_EQ(mixes[4].matrix, 1u);
  EXPECT_EQ(mixes[4].gravity, 1u);
  EXPECT_EQ(mixes[5].mva, 1u);
  EXPECT_EQ(mixes[5].matrix, 1u);
  EXPECT_EQ(mixes[5].gravity, 1u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(mixes[i].number, static_cast<int>(i + 1));
  }
}

TEST(MixesTest, HomogeneousMixesAreOneAndFour) {
  const auto mixes = PaperMixes();
  EXPECT_TRUE(IsHomogeneous(mixes[0]));
  EXPECT_FALSE(IsHomogeneous(mixes[1]));
  EXPECT_FALSE(IsHomogeneous(mixes[2]));
  EXPECT_TRUE(IsHomogeneous(mixes[3]));
  EXPECT_FALSE(IsHomogeneous(mixes[4]));
  EXPECT_FALSE(IsHomogeneous(mixes[5]));
}

TEST(MixesTest, ExpandProducesJobsInOrder) {
  const auto apps = DefaultProfiles();
  const WorkloadMix mix{.number = 6, .mva = 1, .matrix = 1, .gravity = 1};
  const auto jobs = mix.Expand(apps);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].name, "MVA");
  EXPECT_EQ(jobs[1].name, "MATRIX");
  EXPECT_EQ(jobs[2].name, "GRAVITY");
}

TEST(MixesTest, ExpandRepeatsCopies) {
  const auto apps = DefaultProfiles();
  const WorkloadMix mix{.number = 1, .mva = 2};
  const auto jobs = mix.Expand(apps);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].name, "MVA");
  EXPECT_EQ(jobs[1].name, "MVA");
}

TEST(MixesTest, LabelsAreDescriptive) {
  const WorkloadMix mix{.number = 5, .matrix = 1, .gravity = 1};
  EXPECT_EQ(mix.Label(), "#5 (1 MATRIX + 1 GRAVITY)");
  EXPECT_EQ(mix.TotalJobs(), 2u);
}

}  // namespace
}  // namespace affsched
