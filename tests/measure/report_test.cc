#include "src/measure/report.h"

#include <gtest/gtest.h>

#include "src/apps/apps.h"

namespace affsched {
namespace {

MachineConfig SmallMachine() {
  MachineConfig config;
  config.num_processors = 4;
  return config;
}

TEST(ReportTest, HeaderColumns) {
  const auto header = JobReportHeader();
  ASSERT_EQ(header.size(), 8u);
  EXPECT_EQ(header.front(), "policy");
  EXPECT_EQ(header.back(), "avg alloc");
}

TEST(ReportTest, EngineReportHasRowPerJob) {
  Engine engine(SmallMachine(), MakePolicy(PolicyKind::kDynamic), 1);
  engine.SubmitJob(MakeSmallMvaProfile());
  engine.SubmitJob(MakeSmallMatrixProfile());
  engine.Run();
  TextTable table;
  table.SetHeader(JobReportHeader());
  AppendJobReport(table, "Dynamic", engine);
  EXPECT_EQ(table.num_rows(), 2u);
  const std::string out = table.Render();
  EXPECT_NE(out.find("MVA"), std::string::npos);
  EXPECT_NE(out.find("MATRIX"), std::string::npos);
  EXPECT_NE(out.find("Dynamic"), std::string::npos);
}

TEST(ReportTest, ReplicatedReportUsesMeans) {
  ReplicationOptions rep;
  rep.min_replications = 2;
  rep.max_replications = 2;
  const ReplicatedResult result = RunReplicated(
      SmallMachine(), PolicyKind::kDynAff, {MakeSmallGravityProfile()}, 1, rep);
  TextTable table;
  table.SetHeader(JobReportHeader());
  AppendJobReport(table, "Dyn-Aff", result);
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_NE(table.Render().find("GRAVITY"), std::string::npos);
}

TEST(ReportTest, ComparePoliciesRendersAllPolicies) {
  const std::string out =
      ComparePolicies(SmallMachine(), {PolicyKind::kEquipartition, PolicyKind::kDynamic},
                      {MakeSmallMatrixProfile()}, 7);
  EXPECT_NE(out.find("Equipartition"), std::string::npos);
  EXPECT_NE(out.find("Dynamic"), std::string::npos);
}

}  // namespace
}  // namespace affsched
