#include "src/measure/experiment.h"

#include <gtest/gtest.h>

#include "src/apps/apps.h"

namespace affsched {
namespace {

std::vector<AppProfile> SmallMixJobs() {
  return {MakeSmallMvaProfile(), MakeSmallGravityProfile()};
}

MachineConfig SmallMachine() {
  MachineConfig config;
  config.num_processors = 8;
  return config;
}

TEST(ExperimentTest, PaperMachineIsSixteenProcessors) {
  const MachineConfig config = PaperMachineConfig();
  EXPECT_EQ(config.num_processors, 16u);
  EXPECT_DOUBLE_EQ(config.CapacityBlocks(), 4096.0);
}

TEST(ExperimentTest, RunOnceReportsAllJobs) {
  const RunResult result =
      RunOnce(SmallMachine(), PolicyKind::kDynamic, SmallMixJobs(), 1);
  ASSERT_EQ(result.jobs.size(), 2u);
  EXPECT_EQ(result.jobs[0].app, "MVA");
  EXPECT_EQ(result.jobs[1].app, "GRAVITY");
  EXPECT_GT(result.makespan, 0);
  for (const JobResult& j : result.jobs) {
    EXPECT_GT(j.stats.ResponseSeconds(), 0.0);
  }
}

TEST(ExperimentTest, RunOnceIsDeterministicPerSeed) {
  const RunResult a = RunOnce(SmallMachine(), PolicyKind::kDynAff, SmallMixJobs(), 5);
  const RunResult b = RunOnce(SmallMachine(), PolicyKind::kDynAff, SmallMixJobs(), 5);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].stats.ResponseSeconds(), b.jobs[i].stats.ResponseSeconds());
  }
}

TEST(ExperimentTest, ReplicationRunsAtLeastMinimum) {
  ReplicationOptions rep;
  rep.min_replications = 3;
  rep.max_replications = 4;
  const ReplicatedResult result =
      RunReplicated(SmallMachine(), PolicyKind::kDynamic, SmallMixJobs(), 1, rep);
  EXPECT_GE(result.replications, 3u);
  EXPECT_LE(result.replications, 4u);
  ASSERT_EQ(result.response.size(), 2u);
  EXPECT_EQ(result.response[0].count(), result.replications);
}

TEST(ExperimentTest, MeanStatsAveragedAcrossReplications) {
  ReplicationOptions rep;
  rep.min_replications = 3;
  rep.max_replications = 3;
  const ReplicatedResult result =
      RunReplicated(SmallMachine(), PolicyKind::kDynamic, SmallMixJobs(), 1, rep);
  for (size_t j = 0; j < result.mean_stats.size(); ++j) {
    const JobStats& s = result.mean_stats[j];
    EXPECT_GT(s.useful_work_s, 0.0);
    EXPECT_GT(s.reallocations, 0u);
    EXPECT_NEAR(ToSeconds(s.completion), result.response[j].mean(),
                0.05 * result.response[j].mean());
  }
}

TEST(ExperimentTest, AppNamesStableAcrossReplications) {
  ReplicationOptions rep;
  rep.min_replications = 2;
  rep.max_replications = 2;
  const ReplicatedResult result =
      RunReplicated(SmallMachine(), PolicyKind::kEquipartition, SmallMixJobs(), 1, rep);
  ASSERT_EQ(result.app.size(), 2u);
  EXPECT_EQ(result.app[0], "MVA");
  EXPECT_EQ(result.app[1], "GRAVITY");
}

}  // namespace
}  // namespace affsched
