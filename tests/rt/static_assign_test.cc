#include "src/rt/static_assign.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/cache/partitioned.h"

namespace affsched {
namespace {

RtJobInfo Job(JobId id, size_t max_par, double ws = 0.0, double writes = 0.0,
              double deadline = 0.0) {
  RtJobInfo info;
  info.job = id;
  info.max_parallelism = max_par;
  info.working_set_blocks = ws;
  info.shared_write_per_s = writes;
  info.deadline_s = deadline;
  return info;
}

// Flat-machine tier function: same processor or not.
size_t FlatTier(size_t from, size_t to) { return from == to ? 0 : 1; }

TEST(StaticAssignTest, CommunicationMatrixIsDiagonal) {
  const std::vector<RtJobInfo> jobs = {Job(0, 4, 0.0, 100.0), Job(1, 2, 0.0, 50.0)};
  const auto matrix = BuildCommunicationMatrix(jobs);
  ASSERT_EQ(matrix.size(), 2u);
  EXPECT_DOUBLE_EQ(matrix[0][0], 100.0 * 4);
  EXPECT_DOUBLE_EQ(matrix[1][1], 50.0 * 2);
  EXPECT_DOUBLE_EQ(matrix[0][1], 0.0);
  EXPECT_DOUBLE_EQ(matrix[1][0], 0.0);
}

TEST(StaticAssignTest, SpansCoverTheMachineAndStayDisjoint) {
  const std::vector<RtJobInfo> jobs = {Job(0, 16), Job(1, 16), Job(2, 16)};
  const RtAssignment plan = ComputeStaticAssignment(jobs, 8, 0, false, FlatTier);
  ASSERT_EQ(plan.proc_owner.size(), 8u);
  size_t total = 0;
  for (const auto& [job, share] : plan.share) {
    total += share;
  }
  EXPECT_EQ(total, 8u);
  // Every processor is owned (demand exceeds supply) and ownership counts
  // match the planned shares.
  std::map<JobId, size_t> counted;
  for (JobId owner : plan.proc_owner) {
    ASSERT_NE(owner, kInvalidJobId);
    ++counted[owner];
  }
  EXPECT_EQ(counted, plan.share);
}

TEST(StaticAssignTest, DeadlineJobsArePlannedFirst) {
  // Two processors, three hungry jobs: only the two most urgent get one.
  // Job 2 is best-effort with huge communication intensity; urgency must
  // still beat intensity.
  const std::vector<RtJobInfo> jobs = {
      Job(0, 4, 0.0, 0.0, 2.0), Job(1, 4, 0.0, 0.0, 1.0), Job(2, 4, 0.0, 1e9)};
  const RtAssignment plan = ComputeStaticAssignment(jobs, 2, 0, false, FlatTier);
  EXPECT_EQ(plan.share.at(1), 1u);  // earliest deadline seeds first
  EXPECT_EQ(plan.share.at(0), 1u);
  EXPECT_EQ(plan.share.at(2), 0u);
  EXPECT_EQ(plan.proc_owner[0], 1);
  EXPECT_EQ(plan.proc_owner[1], 0);
}

TEST(StaticAssignTest, SpanSizeCappedByParallelism) {
  const std::vector<RtJobInfo> jobs = {Job(7, 2)};
  const RtAssignment plan = ComputeStaticAssignment(jobs, 8, 0, false, FlatTier);
  EXPECT_EQ(plan.share.at(7), 2u);
  EXPECT_EQ(plan.proc_owner[0], 7);
  EXPECT_EQ(plan.proc_owner[1], 7);
  for (size_t p = 2; p < 8; ++p) {
    EXPECT_EQ(plan.proc_owner[p], kInvalidJobId) << p;
  }
}

TEST(StaticAssignTest, SpanGrowsTowardNearestTier) {
  // Processor 2 is one tier from the seed, processors 1 and 3 are two; a span
  // of two must take {0, 2}, not the contiguous {0, 1}.
  const auto tier = [](size_t from, size_t to) -> size_t {
    if (from == to) {
      return 0;
    }
    return (from == 0 && to == 2) || (from == 2 && to == 0) ? 1 : 2;
  };
  const std::vector<RtJobInfo> jobs = {Job(0, 2)};
  const RtAssignment plan = ComputeStaticAssignment(jobs, 4, 0, false, tier);
  EXPECT_EQ(plan.proc_owner[0], 0);
  EXPECT_EQ(plan.proc_owner[2], 0);
  EXPECT_EQ(plan.proc_owner[1], kInvalidJobId);
  EXPECT_EQ(plan.proc_owner[3], kInvalidJobId);
}

TEST(StaticAssignTest, MoreJobsThanColorsWrapOntoSingleColors) {
  const std::vector<RtJobInfo> jobs = {
      Job(0, 1, 0.0, 0.0, 1.0), Job(1, 1, 0.0, 0.0, 2.0), Job(2, 1, 0.0, 0.0, 3.0)};
  const RtAssignment plan = ComputeStaticAssignment(jobs, 4, 2, true, FlatTier);
  // Planning order is ascending deadline, colors assigned round-robin.
  EXPECT_EQ(plan.color_mask.at(0), 0x1ull);
  EXPECT_EQ(plan.color_mask.at(1), 0x2ull);
  EXPECT_EQ(plan.color_mask.at(2), 0x1ull);  // wraps
}

// Hand-computed proportional slices: working sets 3000 vs 1000 over eight
// colors. Both start with one color; job 0's ideal is 8*3000/4000 = 6 so it
// gains five extras, job 1's ideal is 2 so it gains one. Slices are
// contiguous, disjoint, and cover all eight colors.
TEST(StaticAssignTest, FewerJobsGetProportionalContiguousSlices) {
  const std::vector<RtJobInfo> jobs = {
      Job(0, 4, 3000.0, 0.0, 1.0), Job(1, 4, 1000.0, 0.0, 2.0)};
  const RtAssignment plan = ComputeStaticAssignment(jobs, 8, 8, true, FlatTier);
  EXPECT_EQ(plan.color_mask.at(0), FullColorMask(6));         // colors 0-5
  EXPECT_EQ(plan.color_mask.at(1), FullColorMask(2) << 6);    // colors 6-7
  EXPECT_EQ(plan.color_mask.at(0) & plan.color_mask.at(1), 0ull);
  EXPECT_EQ(plan.color_mask.at(0) | plan.color_mask.at(1), FullColorMask(8));
}

TEST(StaticAssignTest, NoColorSlicesWithoutIsolation) {
  const std::vector<RtJobInfo> jobs = {Job(0, 4), Job(1, 4)};
  const RtAssignment plan = ComputeStaticAssignment(jobs, 4, 8, false, FlatTier);
  EXPECT_TRUE(plan.color_mask.empty());
}

TEST(StaticAssignTest, DeterministicForIdenticalInput) {
  const std::vector<RtJobInfo> jobs = {
      Job(3, 4, 900.0, 10.0, 1.5), Job(1, 8, 2000.0, 5.0), Job(2, 2, 100.0, 20.0, 0.5)};
  const RtAssignment a = ComputeStaticAssignment(jobs, 10, 8, true, FlatTier);
  const RtAssignment b = ComputeStaticAssignment(jobs, 10, 8, true, FlatTier);
  EXPECT_EQ(a.proc_owner, b.proc_owner);
  EXPECT_EQ(a.share, b.share);
  EXPECT_EQ(a.color_mask, b.color_mask);
}

TEST(StaticAssignTest, EmptyInputsYieldEmptyPlan) {
  const RtAssignment none = ComputeStaticAssignment({}, 4, 8, true, FlatTier);
  EXPECT_TRUE(none.share.empty());
  const RtAssignment no_procs =
      ComputeStaticAssignment({Job(0, 4)}, 0, 8, true, FlatTier);
  EXPECT_TRUE(no_procs.proc_owner.empty());
}

}  // namespace
}  // namespace affsched
