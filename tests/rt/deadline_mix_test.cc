#include "src/rt/deadline_mix.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace affsched {
namespace {

AppProfile TestProfile(const std::string& name, double work_s, size_t max_par) {
  AppProfile profile;
  profile.name = name;
  profile.expected_work_s = work_s;
  profile.max_parallelism = max_par;
  return profile;
}

TEST(DeadlineMixTest, NamesRoundTrip) {
  const std::vector<std::string> names = DeadlineMixNames();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "soft");
  EXPECT_EQ(names[1], "hard");
  EXPECT_EQ(names[2], "mixed");
  EXPECT_EQ(names[3], "tight");
  for (const std::string& name : names) {
    EXPECT_TRUE(IsDeadlineMix(name)) << name;
  }
  EXPECT_FALSE(IsDeadlineMix("loose"));
  EXPECT_FALSE(IsDeadlineMix(""));
}

TEST(DeadlineMixTest, UnknownMixReportsError) {
  std::vector<AppProfile> profiles = {TestProfile("a", 1.0, 2)};
  std::string error;
  EXPECT_FALSE(ApplyDeadlineMix("bogus", 8, &profiles, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos);
  EXPECT_NE(error.find("soft|hard|mixed|tight"), std::string::npos);
  // The failed call must not have stamped anything.
  EXPECT_FALSE(profiles[0].rt.Active());
}

// Hand-computed soft stamp: 20 processors over two jobs gives each a share of
// 10, capped by parallelism 4, so the ideal makespan is 12/4 = 3 s and the
// deadline 1.6 x 3 = 4.8 s.
TEST(DeadlineMixTest, SoftMixMatchesHandComputation) {
  std::vector<AppProfile> profiles = {TestProfile("a", 12.0, 4), TestProfile("b", 12.0, 4)};
  ASSERT_TRUE(ApplyDeadlineMix("soft", 20, &profiles));
  for (const AppProfile& profile : profiles) {
    EXPECT_TRUE(profile.rt.Active());
    EXPECT_DOUBLE_EQ(profile.rt.wcet_s, 3.0);
    EXPECT_DOUBLE_EQ(profile.rt.deadline_s, 4.8);
    EXPECT_DOUBLE_EQ(profile.rt.period_s, 4.8);
    EXPECT_FALSE(profile.rt.hard);
  }
}

// The equipartition share caps the width before parallelism does: four jobs
// on four processors leaves each job one processor, so the ideal makespan is
// the full serial work.
TEST(DeadlineMixTest, ShareCapsWidth) {
  std::vector<AppProfile> profiles = {
      TestProfile("a", 6.0, 8), TestProfile("b", 6.0, 8),
      TestProfile("c", 6.0, 8), TestProfile("d", 6.0, 8)};
  ASSERT_TRUE(ApplyDeadlineMix("hard", 4, &profiles));
  for (const AppProfile& profile : profiles) {
    EXPECT_DOUBLE_EQ(profile.rt.wcet_s, 6.0);
    EXPECT_DOUBLE_EQ(profile.rt.deadline_s, 1.25 * 6.0);
    EXPECT_TRUE(profile.rt.hard);
  }
}

TEST(DeadlineMixTest, MixedAlternatesByIndexParity) {
  std::vector<AppProfile> profiles = {
      TestProfile("a", 4.0, 1), TestProfile("b", 4.0, 1), TestProfile("c", 4.0, 1)};
  ASSERT_TRUE(ApplyDeadlineMix("mixed", 3, &profiles));
  // Even indices: hard with slack 1.25; odd indices: soft with slack 1.6.
  EXPECT_TRUE(profiles[0].rt.hard);
  EXPECT_DOUBLE_EQ(profiles[0].rt.deadline_s, 1.25 * 4.0);
  EXPECT_FALSE(profiles[1].rt.hard);
  EXPECT_DOUBLE_EQ(profiles[1].rt.deadline_s, 1.6 * 4.0);
  EXPECT_TRUE(profiles[2].rt.hard);
  EXPECT_DOUBLE_EQ(profiles[2].rt.deadline_s, 1.25 * 4.0);
}

// The guaranteed-miss fixture: tight stamps deadlines at half the ideal
// makespan, which no schedule can meet.
TEST(DeadlineMixTest, TightIsInfeasibleByConstruction) {
  std::vector<AppProfile> profiles = {TestProfile("a", 10.0, 2)};
  ASSERT_TRUE(ApplyDeadlineMix("tight", 2, &profiles));
  EXPECT_DOUBLE_EQ(profiles[0].rt.wcet_s, 5.0);
  EXPECT_DOUBLE_EQ(profiles[0].rt.deadline_s, 2.5);
  EXPECT_LT(profiles[0].rt.deadline_s, profiles[0].rt.wcet_s);
  EXPECT_TRUE(profiles[0].rt.hard);
}

TEST(DeadlineMixTest, UncalibratedProfileStaysBestEffort) {
  std::vector<AppProfile> profiles = {TestProfile("a", 0.0, 4), TestProfile("b", 2.0, 4)};
  ASSERT_TRUE(ApplyDeadlineMix("soft", 8, &profiles));
  EXPECT_FALSE(profiles[0].rt.Active());
  EXPECT_TRUE(profiles[1].rt.Active());
}

TEST(DeadlineMixTest, EmptyProfileListIsFine) {
  std::vector<AppProfile> profiles;
  EXPECT_TRUE(ApplyDeadlineMix("soft", 8, &profiles));
  EXPECT_TRUE(ApplyDeadlineMix("soft", 8, nullptr));
}

}  // namespace
}  // namespace affsched
