#include "src/common/time.h"

#include <gtest/gtest.h>

namespace affsched {
namespace {

TEST(TimeTest, UnitRelationships) {
  EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
}

TEST(TimeTest, ConstructorsRoundTrip) {
  EXPECT_DOUBLE_EQ(ToMicroseconds(Microseconds(750)), 750.0);
  EXPECT_DOUBLE_EQ(ToMilliseconds(Milliseconds(25)), 25.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(87.5)), 87.5);
}

TEST(TimeTest, FractionalConstruction) {
  EXPECT_EQ(Microseconds(0.75), 750);
  EXPECT_EQ(Milliseconds(0.5), 500 * kMicrosecond);
}

TEST(TimeTest, CrossUnitConversions) {
  EXPECT_DOUBLE_EQ(ToMilliseconds(Seconds(1.5)), 1500.0);
  EXPECT_DOUBLE_EQ(ToSeconds(Milliseconds(250)), 0.25);
}

TEST(TimeTest, FormatDurationPicksUnits) {
  EXPECT_EQ(FormatDuration(Microseconds(750)), "750.000 us");
  EXPECT_EQ(FormatDuration(Milliseconds(3.072)), "3.072 ms");
  EXPECT_EQ(FormatDuration(Seconds(51.4)), "51.400 s");
  EXPECT_EQ(FormatDuration(500), "500 ns");
}

TEST(TimeTest, SymmetryConstantsRelate) {
  // Full cache fill: 4096 blocks x 0.75 us = 3.072 ms, as Section 3 states.
  EXPECT_EQ(4096 * Microseconds(0.75), Milliseconds(3.072));
}

}  // namespace
}  // namespace affsched
