#include "src/common/flags.h"

#include <gtest/gtest.h>

namespace affsched {
namespace {

FlagSet MakeSet() {
  FlagSet flags("test program");
  flags.AddInt("procs", 16, "number of processors");
  flags.AddDouble("precision", 0.02, "CI precision");
  flags.AddBool("verbose", false, "chatty output");
  flags.AddString("policy", "dyn-aff", "policy name");
  return flags;
}

bool ParseArgs(FlagSet& flags, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return flags.Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, DefaultsApplyWithoutArgs) {
  FlagSet flags = MakeSet();
  EXPECT_TRUE(ParseArgs(flags, {}));
  EXPECT_EQ(flags.GetInt("procs"), 16);
  EXPECT_DOUBLE_EQ(flags.GetDouble("precision"), 0.02);
  EXPECT_FALSE(flags.GetBool("verbose"));
  EXPECT_EQ(flags.GetString("policy"), "dyn-aff");
}

TEST(FlagsTest, EqualsSyntax) {
  FlagSet flags = MakeSet();
  EXPECT_TRUE(ParseArgs(flags, {"--procs=8", "--precision=0.01", "--policy=equi"}));
  EXPECT_EQ(flags.GetInt("procs"), 8);
  EXPECT_DOUBLE_EQ(flags.GetDouble("precision"), 0.01);
  EXPECT_EQ(flags.GetString("policy"), "equi");
}

TEST(FlagsTest, SpaceSyntax) {
  FlagSet flags = MakeSet();
  EXPECT_TRUE(ParseArgs(flags, {"--procs", "4"}));
  EXPECT_EQ(flags.GetInt("procs"), 4);
}

TEST(FlagsTest, BareBoolean) {
  FlagSet flags = MakeSet();
  EXPECT_TRUE(ParseArgs(flags, {"--verbose"}));
  EXPECT_TRUE(flags.GetBool("verbose"));
}

TEST(FlagsTest, ExplicitBooleanValues) {
  FlagSet flags = MakeSet();
  EXPECT_TRUE(ParseArgs(flags, {"--verbose=true"}));
  EXPECT_TRUE(flags.GetBool("verbose"));
  FlagSet flags2 = MakeSet();
  EXPECT_TRUE(ParseArgs(flags2, {"--verbose=0"}));
  EXPECT_FALSE(flags2.GetBool("verbose"));
}

TEST(FlagsTest, HelpRequested) {
  FlagSet flags = MakeSet();
  EXPECT_FALSE(ParseArgs(flags, {"--help"}));
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.Help().find("--procs"), std::string::npos);
  EXPECT_NE(flags.Help().find("number of processors"), std::string::npos);
}

TEST(FlagsTest, UnknownFlagFails) {
  FlagSet flags = MakeSet();
  EXPECT_FALSE(ParseArgs(flags, {"--bogus=1"}));
  EXPECT_NE(flags.error().find("unknown flag"), std::string::npos);
}

TEST(FlagsTest, BadIntegerFails) {
  FlagSet flags = MakeSet();
  EXPECT_FALSE(ParseArgs(flags, {"--procs=abc"}));
  EXPECT_NE(flags.error().find("expects an integer"), std::string::npos);
}

TEST(FlagsTest, BadBooleanFails) {
  FlagSet flags = MakeSet();
  EXPECT_FALSE(ParseArgs(flags, {"--verbose=maybe"}));
}

TEST(FlagsTest, MissingValueFails) {
  FlagSet flags = MakeSet();
  EXPECT_FALSE(ParseArgs(flags, {"--procs"}));
  EXPECT_NE(flags.error().find("missing a value"), std::string::npos);
}

TEST(FlagsTest, PositionalArgumentFails) {
  FlagSet flags = MakeSet();
  EXPECT_FALSE(ParseArgs(flags, {"stray"}));
}

TEST(FlagsDeathTest, WrongTypeAccessAborts) {
  FlagSet flags = MakeSet();
  ParseArgs(flags, {});
  EXPECT_DEATH(flags.GetInt("policy"), "wrong type");
  EXPECT_DEATH(flags.GetBool("never-registered"), "never registered");
}

}  // namespace
}  // namespace affsched
