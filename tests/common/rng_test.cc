#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace affsched {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBoundedRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextUniform(2.0, 6.0);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(3.0);
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  double sum = 0;
  double sumsq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextNormal(10.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatches) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(29);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
  EXPECT_FALSE(rng.NextBernoulli(-1.0));
  EXPECT_TRUE(rng.NextBernoulli(2.0));
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SplitMix64IsDeterministic) {
  uint64_t s1 = 5;
  uint64_t s2 = 5;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace affsched
