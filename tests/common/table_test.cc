#include "src/common/table.h"

#include <gtest/gtest.h>

namespace affsched {
namespace {

TEST(TextTableTest, RendersHeaderAndRows) {
  TextTable t;
  t.SetHeader({"policy", "rt"});
  t.AddRow({"Dynamic", "87.5"});
  t.AddRow({"Equipartition", "95.0"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("policy"), std::string::npos);
  EXPECT_NE(out.find("Dynamic"), std::string::npos);
  EXPECT_NE(out.find("Equipartition"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t;
  t.SetHeader({"a", "b"});
  t.AddRow({"xxxx", "1"});
  t.AddRow({"y", "2"});
  const std::string out = t.Render();
  // Both data rows should place column b at the same offset.
  const size_t line1 = out.find("xxxx");
  const size_t pos1 = out.find('1', line1) - line1;
  const size_t line2 = out.find("y\n") != std::string::npos ? out.find("y ") : out.find('y', line1);
  const size_t pos2 = out.find('2', line2) - line2;
  EXPECT_EQ(pos1, pos2);
}

TEST(TextTableTest, CountsRows) {
  TextTable t;
  t.SetHeader({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTableDeathTest, MismatchedRowAborts) {
  TextTable t;
  t.SetHeader({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "CHECK");
}

TEST(FormatHelpersTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(FormatHelpersTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.83), "83%");
  EXPECT_EQ(FormatPercent(0.215, 1), "21.5%");
  EXPECT_EQ(FormatPercent(1.0), "100%");
}

}  // namespace
}  // namespace affsched
