#include "src/common/log.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace affsched {
namespace {

// Restores the level a test changed so ordering never leaks between tests.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GlobalLogLevel(); }
  void TearDown() override { SetGlobalLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST_F(LogTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kError), static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn), static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo), static_cast<int>(LogLevel::kDebug));
}

TEST_F(LogTest, EnabledFollowsGlobalLevel) {
  SetGlobalLogLevel(LogLevel::kWarn);
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));

  SetGlobalLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(LogEnabled(LogLevel::kDebug));

  SetGlobalLogLevel(LogLevel::kError);
  EXPECT_FALSE(LogEnabled(LogLevel::kWarn));
}

TEST_F(LogTest, LogfAtDisabledLevelIsSilentlyDropped) {
  SetGlobalLogLevel(LogLevel::kError);
  // Nothing to assert on stderr here; the point is it must not crash and must
  // evaluate cheaply when disabled.
  Logf(LogLevel::kDebug, "dropped %d", 42);
  Logf(LogLevel::kError, "emitted %s", "once");
}

TEST_F(LogTest, GlobalLogStreamIsNeverNull) {
  EXPECT_NE(GlobalLogStream(), nullptr);
}

TEST_F(LogTest, SetGlobalLogStreamRedirectsAndRestores) {
  // SetGlobalLogStream is the programmatic face of AFFSCHED_LOG_FILE: both
  // route Logf output through GlobalLogStream(), so capturing through a
  // tmpfile exercises the same path the env var configures.
  FILE* capture = std::tmpfile();
  ASSERT_NE(capture, nullptr);
  SetGlobalLogStream(capture);
  SetGlobalLogLevel(LogLevel::kInfo);
  EXPECT_EQ(GlobalLogStream(), capture);
  Logf(LogLevel::kInfo, "captured %d", 7);
  Logf(LogLevel::kDebug, "still dropped");  // below level: must not appear
  SetGlobalLogStream(nullptr);              // restore the default destination
  EXPECT_NE(GlobalLogStream(), capture);

  std::rewind(capture);
  char buf[256] = {0};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, capture);
  std::fclose(capture);
  const std::string text(buf, n);
  EXPECT_EQ(text, "[affsched info] captured 7\n");
}

}  // namespace
}  // namespace affsched
