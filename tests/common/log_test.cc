#include "src/common/log.h"

#include <gtest/gtest.h>

namespace affsched {
namespace {

// Restores the level a test changed so ordering never leaks between tests.
class LogTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = GlobalLogLevel(); }
  void TearDown() override { SetGlobalLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST_F(LogTest, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kError), static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn), static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo), static_cast<int>(LogLevel::kDebug));
}

TEST_F(LogTest, EnabledFollowsGlobalLevel) {
  SetGlobalLogLevel(LogLevel::kWarn);
  EXPECT_TRUE(LogEnabled(LogLevel::kError));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarn));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));

  SetGlobalLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(LogEnabled(LogLevel::kDebug));

  SetGlobalLogLevel(LogLevel::kError);
  EXPECT_FALSE(LogEnabled(LogLevel::kWarn));
}

TEST_F(LogTest, LogfAtDisabledLevelIsSilentlyDropped) {
  SetGlobalLogLevel(LogLevel::kError);
  // Nothing to assert on stderr here; the point is it must not crash and must
  // evaluate cheaply when disabled.
  Logf(LogLevel::kDebug, "dropped %d", 42);
  Logf(LogLevel::kError, "emitted %s", "once");
}

}  // namespace
}  // namespace affsched
