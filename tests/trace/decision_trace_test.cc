#include "src/trace/decision_trace.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/sched/factory.h"
#include "src/telemetry/json.h"

namespace affsched {
namespace {

DecisionRecord Rec(uint64_t id, SimTime when = 0) {
  DecisionRecord r;
  r.id = id;
  r.when = when;
  r.site = DecisionSite::kRequest;
  r.reason = DecisionReason::kFreeProcessor;
  r.job = 0;
  r.chosen_proc = 0;
  return r;
}

TEST(DecisionTraceTest, ReasonAndSiteNamesAreNamedAndDistinct) {
  std::set<std::string> reasons;
  for (size_t i = 0; i < kNumDecisionReasons; ++i) {
    const char* name = DecisionReasonName(static_cast<DecisionReason>(i));
    ASSERT_STRNE(name, "unknown") << "reason " << i << " has no name";
    reasons.insert(name);
  }
  EXPECT_EQ(reasons.size(), kNumDecisionReasons);

  std::set<std::string> sites;
  for (size_t i = 0; i < kNumDecisionSites; ++i) {
    sites.insert(DecisionSiteName(static_cast<DecisionSite>(i)));
  }
  EXPECT_EQ(sites.size(), kNumDecisionSites);
}

TEST(DecisionTraceTest, RecordJsonCarriesCandidateBreakdown) {
  DecisionRecord r = Rec(7, Microseconds(1500));
  r.site = DecisionSite::kJobArrival;
  r.reason = DecisionReason::kAffinityReunite;
  r.job = 3;
  r.chosen_proc = 2;
  r.prefer_task = 11;
  DecisionCandidate lost;
  lost.proc = 0;
  lost.tier = 1;
  lost.footprint_blocks = 12.5;
  lost.reload_cost_s = 0.004;
  lost.available = true;
  DecisionCandidate won = lost;
  won.proc = 2;
  won.chosen = true;
  r.candidates = {lost, won};

  const std::string json = r.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"t_us\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"site\":\"job_arrival\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"affinity_reunite\""), std::string::npos);
  EXPECT_NE(json.find("\"job\":3"), std::string::npos);
  EXPECT_NE(json.find("\"proc\":2"), std::string::npos);
  EXPECT_NE(json.find("\"prefer_task\":11"), std::string::npos);
  EXPECT_NE(json.find("\"footprint_blocks\":12.5"), std::string::npos);
  EXPECT_NE(json.find("\"reload_cost_s\":0.004"), std::string::npos);
  EXPECT_NE(json.find("\"chosen\":true"), std::string::npos);
}

TEST(DecisionTraceTest, UnplacedIndicesSerializeAsMinusOne) {
  DecisionRecord r;  // all defaults: no job, no proc, no preferred task
  const std::string json = r.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"job\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"proc\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"prefer_task\":-1"), std::string::npos);
  EXPECT_EQ(json.find("\"candidates\""), std::string::npos);  // empty = omitted
}

TEST(DecisionTraceTest, RingKeepsNewestAndCountsDropped) {
  DecisionTrace trace(4);
  for (uint64_t i = 1; i <= 10; ++i) {
    trace.Record(Rec(i, Microseconds(static_cast<int64_t>(i))));
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  const auto records = trace.Records();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first eviction: the survivors are the newest four, oldest first.
  EXPECT_EQ(records[0].id, 7u);
  EXPECT_EQ(records[1].id, 8u);
  EXPECT_EQ(records[2].id, 9u);
  EXPECT_EQ(records[3].id, 10u);
}

TEST(DecisionTraceTest, JsonlEndsWithDroppedMarkerAcrossMultipleWraps) {
  DecisionTrace trace(3);
  for (uint64_t i = 1; i <= 11; ++i) {  // wraps the capacity-3 ring 3+ times
    trace.Record(Rec(i));
  }
  const std::string jsonl = trace.ToJsonl();
  const std::string tail = "{\"dropped\":8}\n";
  ASSERT_GE(jsonl.size(), tail.size());
  EXPECT_EQ(jsonl.substr(jsonl.size() - tail.size()), tail);
  // Exactly one marker, and only after the retained records.
  EXPECT_EQ(jsonl.find("{\"dropped\""), jsonl.size() - tail.size());
}

TEST(DecisionTraceTest, JsonlWithoutOverflowHasNoMarker) {
  DecisionTrace trace(8);
  trace.Record(Rec(1));
  trace.Record(Rec(2));
  const std::string jsonl = trace.ToJsonl();
  EXPECT_EQ(jsonl.find("\"dropped\""), std::string::npos);
  // One record per line.
  size_t lines = 0;
  for (char c : jsonl) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, 2u);
}

TEST(DecisionTraceTest, EngineStreamsWellFormedDecisions) {
  MachineConfig machine;
  machine.num_processors = 4;
  DecisionTrace trace;
  Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 5);
  engine.SetDecisionSink(&trace);
  engine.SubmitJob(MakeSmallMvaProfile());
  engine.SubmitJob(MakeSmallMatrixProfile());
  engine.Run();

  const auto records = trace.Records();
  ASSERT_GT(records.size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
  uint64_t last_id = 0;
  SimTime last_when = 0;
  size_t annotated = 0;
  for (const DecisionRecord& r : records) {
    EXPECT_GT(r.id, last_id);  // ids strictly increase
    last_id = r.id;
    EXPECT_GE(r.when, last_when);  // chronological
    last_when = r.when;
    EXPECT_LT(static_cast<size_t>(r.site), kNumDecisionSites);
    EXPECT_LT(static_cast<size_t>(r.reason), kNumDecisionReasons);
    annotated += r.reason != DecisionReason::kUnspecified;
    if (r.chosen_proc != SIZE_MAX && !r.candidates.empty()) {
      // Exactly one candidate is the chosen processor.
      size_t chosen = 0;
      for (const DecisionCandidate& c : r.candidates) {
        if (c.chosen) {
          ++chosen;
          EXPECT_EQ(c.proc, r.chosen_proc);
        }
      }
      EXPECT_EQ(chosen, 1u);
    }
  }
  // The dyn-aff policy annotates its assignments with Section-5 rule codes.
  EXPECT_GT(annotated, 0u);
}

TEST(DecisionTraceTest, NoSinkRunMatchesSinkedRunByteForByte) {
  // The decision sink must observe, never perturb: an instrumented run and a
  // bare run must produce identical simulations.
  auto run = [](DecisionSink* sink) {
    MachineConfig machine;
    machine.num_processors = 4;
    Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 5);
    if (sink != nullptr) {
      engine.SetDecisionSink(sink);
    }
    engine.SubmitJob(MakeSmallGravityProfile());
    engine.SubmitJob(MakeSmallMvaProfile());
    return engine.Run();
  };
  DecisionTrace trace;
  EXPECT_EQ(run(nullptr), run(&trace));
  EXPECT_GT(trace.total_recorded(), 0u);
}

}  // namespace
}  // namespace affsched
