#include "src/trace/trace.h"

#include <gtest/gtest.h>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/sched/factory.h"

namespace affsched {
namespace {

TraceEvent Ev(SimTime when, TraceEventKind kind, size_t proc = 0, JobId job = 0) {
  return TraceEvent{.when = when, .kind = kind, .proc = proc, .job = job};
}

TEST(RingTraceTest, RecordsInOrder) {
  RingTrace trace(16);
  trace.Record(Ev(1, TraceEventKind::kDispatch));
  trace.Record(Ev(2, TraceEventKind::kPreempt));
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].when, 1);
  EXPECT_EQ(events[1].kind, TraceEventKind::kPreempt);
}

TEST(RingTraceTest, RingDropsOldest) {
  RingTrace trace(4);
  for (SimTime t = 0; t < 10; ++t) {
    trace.Record(Ev(t, TraceEventKind::kDispatch));
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.total_recorded(), 10u);
  EXPECT_EQ(trace.dropped(), 6u);
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().when, 6);
  EXPECT_EQ(events.back().when, 9);
}

TEST(RingTraceTest, KindNamesAreDistinct) {
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kDispatch), "dispatch");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kYield), "yield");
  EXPECT_STREQ(TraceEventKindName(TraceEventKind::kJobCompletion), "job_completion");
}

TEST(RingTraceTest, CsvHasHeaderAndRows) {
  RingTrace trace(8);
  trace.Record(Ev(Microseconds(750), TraceEventKind::kSwitchStart, 3, 1));
  const std::string csv = trace.ToCsv();
  EXPECT_NE(csv.find("time_us,kind,proc,job,worker,affine"), std::string::npos);
  EXPECT_NE(csv.find("750.000,switch_start,3,1"), std::string::npos);
  // No events were dropped, so no truncation marker.
  EXPECT_EQ(csv.find("# dropped="), std::string::npos);
}

TEST(RingTraceTest, CsvMarksDroppedEventsOnOverflow) {
  RingTrace trace(4);
  for (SimTime t = 0; t < 10; ++t) {
    trace.Record(Ev(t, TraceEventKind::kDispatch));
  }
  const std::string csv = trace.ToCsv();
  // Header first, truncation marker as the final line.
  EXPECT_EQ(csv.rfind("time_us,kind,proc,job,worker,affine\n", 0), 0u);
  const std::string tail = "# dropped=6\n";
  ASSERT_GE(csv.size(), tail.size());
  EXPECT_EQ(csv.substr(csv.size() - tail.size()), tail);
}

TEST(RingTraceTest, CsvDroppedTrailerStaysExactAcrossMultipleWraps) {
  RingTrace trace(4);
  for (SimTime t = 0; t < 13; ++t) {  // wraps the capacity-4 ring three times
    trace.Record(Ev(t, TraceEventKind::kDispatch));
  }
  EXPECT_EQ(trace.dropped(), 9u);
  const std::string csv = trace.ToCsv();
  const std::string tail = "# dropped=9\n";
  ASSERT_GE(csv.size(), tail.size());
  EXPECT_EQ(csv.substr(csv.size() - tail.size()), tail);
  // Exactly one marker in the whole document.
  EXPECT_EQ(csv.find("# dropped="), csv.rfind("# dropped="));
}

TEST(RingTraceTest, OverflowEvictsOldestFirstAtEveryFillLevel) {
  // Eviction must always discard the oldest event, whether the ring has
  // wrapped once or many times over.
  for (SimTime total : {5, 7, 12, 23}) {
    RingTrace trace(4);
    for (SimTime t = 0; t < total; ++t) {
      trace.Record(Ev(t, TraceEventKind::kDispatch));
    }
    const auto events = trace.Events();
    ASSERT_EQ(events.size(), 4u) << "total=" << total;
    for (SimTime i = 0; i < 4; ++i) {
      EXPECT_EQ(events[static_cast<size_t>(i)].when, total - 4 + i) << "total=" << total;
    }
  }
}

TEST(RingTraceTest, KindNamesRoundTripThroughFromName) {
  for (size_t i = 0; i < kNumTraceEventKinds; ++i) {
    const TraceEventKind kind = static_cast<TraceEventKind>(i);
    const char* name = TraceEventKindName(kind);
    ASSERT_STRNE(name, "unknown") << "kind " << i << " has no name";
    TraceEventKind parsed = TraceEventKind::kDispatch;
    ASSERT_TRUE(TraceEventKindFromName(name, &parsed)) << name;
    EXPECT_EQ(parsed, kind) << name;
  }
}

TEST(RingTraceTest, FromNameRejectsUnknownAndLeavesOutputUntouched) {
  TraceEventKind kind = TraceEventKind::kYield;
  EXPECT_FALSE(TraceEventKindFromName("not_a_kind", &kind));
  EXPECT_EQ(kind, TraceEventKind::kYield);
  EXPECT_FALSE(TraceEventKindFromName("", &kind));
  EXPECT_FALSE(TraceEventKindFromName("Dispatch", &kind));  // case-sensitive
}

TEST(RingTraceTest, GanttShowsOccupancy) {
  RingTrace trace(64);
  trace.Record(Ev(0, TraceEventKind::kDispatch, 0, 1));
  trace.Record(Ev(Milliseconds(50), TraceEventKind::kPreempt, 0, 1));
  const std::string gantt = trace.RenderGantt(2, 0, Milliseconds(100), 10);
  // Processor 0 runs job 1 for the first half, then goes free.
  EXPECT_NE(gantt.find("p00 11111....."), std::string::npos);
  EXPECT_NE(gantt.find("p01 .........."), std::string::npos);
}

TEST(RingTraceTest, GanttOnEmptyTraceShowsAllFree) {
  RingTrace trace(8);
  const std::string gantt = trace.RenderGantt(2, 0, Milliseconds(10), 10);
  EXPECT_NE(gantt.find("p00 .........."), std::string::npos);
  EXPECT_NE(gantt.find("p01 .........."), std::string::npos);
}

TEST(RingTraceTest, GanttWithSingleEventFillsToWindowEnd) {
  RingTrace trace(8);
  trace.Record(Ev(0, TraceEventKind::kDispatch, 0, 2));
  const std::string gantt = trace.RenderGantt(1, 0, Milliseconds(10), 10);
  EXPECT_NE(gantt.find("p00 2222222222"), std::string::npos);
}

TEST(RingTraceTest, GanttWindowOutsideRecordedRangeIsAllFree) {
  RingTrace trace(8);
  trace.Record(Ev(Milliseconds(1), TraceEventKind::kDispatch, 0, 1));
  trace.Record(Ev(Milliseconds(2), TraceEventKind::kPreempt, 0, 1));
  // Window entirely after the recorded events: events before `start` are
  // skipped and the processor renders as free.
  const std::string gantt = trace.RenderGantt(1, Milliseconds(50), Milliseconds(60), 10);
  EXPECT_NE(gantt.find("p00 .........."), std::string::npos);
}

TEST(RingTraceTest, GanttIgnoresProcessorsBeyondRowCount) {
  RingTrace trace(8);
  trace.Record(Ev(0, TraceEventKind::kDispatch, 7, 1));  // proc outside grid
  const std::string gantt = trace.RenderGantt(2, 0, Milliseconds(10), 10);
  EXPECT_NE(gantt.find("p00 .........."), std::string::npos);
  EXPECT_NE(gantt.find("p01 .........."), std::string::npos);
}

TEST(EngineTraceTest, EngineEmitsLifecycleEvents) {
  MachineConfig machine;
  machine.num_processors = 4;
  RingTrace trace;
  Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 5);
  engine.SetTraceSink(&trace);
  engine.SubmitJob(MakeSmallMvaProfile());
  engine.SubmitJob(MakeSmallMatrixProfile());
  engine.Run();

  size_t arrivals = 0;
  size_t completions = 0;
  size_t dispatches = 0;
  size_t switches = 0;
  size_t thread_completions = 0;
  SimTime last = 0;
  for (const TraceEvent& e : trace.Events()) {
    EXPECT_GE(e.when, last);  // chronological
    last = e.when;
    switch (e.kind) {
      case TraceEventKind::kJobArrival:
        ++arrivals;
        break;
      case TraceEventKind::kJobCompletion:
        ++completions;
        break;
      case TraceEventKind::kDispatch:
        ++dispatches;
        break;
      case TraceEventKind::kSwitchStart:
        ++switches;
        break;
      case TraceEventKind::kThreadComplete:
        ++thread_completions;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(arrivals, 2u);
  EXPECT_EQ(completions, 2u);
  EXPECT_GT(dispatches, 0u);
  // Every dispatch is preceded by a switch (path-length cost).
  EXPECT_EQ(dispatches, switches);
  // All user-level threads completed: 36 MVA nodes + 12 MATRIX threads.
  EXPECT_EQ(thread_completions, 48u);
}

TEST(EngineTraceTest, DispatchAffinityFlagMatchesStats) {
  MachineConfig machine;
  machine.num_processors = 4;
  RingTrace trace;
  Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 5);
  engine.SetTraceSink(&trace);
  engine.SubmitJob(MakeSmallGravityProfile());
  engine.SubmitJob(MakeSmallGravityProfile());
  engine.Run();

  uint64_t affine_events = 0;
  uint64_t dispatch_events = 0;
  for (const TraceEvent& e : trace.Events()) {
    if (e.kind == TraceEventKind::kDispatch) {
      ++dispatch_events;
      if (e.affine) {
        ++affine_events;
      }
    }
  }
  uint64_t affine_stats = 0;
  uint64_t realloc_stats = 0;
  for (JobId id = 0; id < engine.job_count(); ++id) {
    affine_stats += engine.job_stats(id).affinity_dispatches;
    realloc_stats += engine.job_stats(id).reallocations;
  }
  EXPECT_EQ(affine_events, affine_stats);
  EXPECT_EQ(dispatch_events, realloc_stats);
}

TEST(EngineTraceTest, NoSinkMeansNoCrash) {
  MachineConfig machine;
  machine.num_processors = 2;
  Engine engine(machine, MakePolicy(PolicyKind::kDynamic), 5);
  engine.SubmitJob(MakeSmallMatrixProfile());
  EXPECT_GT(engine.Run(), 0);
}

}  // namespace
}  // namespace affsched
