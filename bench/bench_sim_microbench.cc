// Google-benchmark microbenchmarks of the simulator substrate itself:
// event-queue throughput, cache-model chunk cost, and end-to-end simulated
// seconds per wall second. These guard the regeneration benches' runtimes.

#include <benchmark/benchmark.h>

#include "src/apps/apps.h"
#include "src/cache/exact_cache.h"
#include "src/cache/footprint.h"
#include "src/engine/engine.h"
#include "src/sched/factory.h"
#include "src/sim/event_queue.h"

namespace affsched {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      q.ScheduleAt(i, [&sink] { ++sink; });
    }
    q.RunAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_FootprintChunk(benchmark::State& state) {
  FootprintCache cache(4096.0);
  const WorkingSetParams ws{.blocks = 3000.0, .buildup_tau_s = 0.05,
                            .steady_miss_per_s = 10000.0};
  CacheOwner owner = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.RunChunk(owner, ws, 0.002));
    owner = (owner % 4) + 1;  // rotate owners to keep eviction paths busy
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FootprintChunk);

void BM_ExactCacheAccess(benchmark::State& state) {
  ExactCache cache(CacheGeometry{});
  uint64_t block = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(1, block));
    block = (block * 2862933555777941757ULL + 3037000493ULL) % (1 << 14);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactCacheAccess);

void BM_EndToEndSmallMix(benchmark::State& state) {
  MachineConfig machine;
  machine.num_processors = 8;
  double simulated_seconds = 0.0;
  for (auto _ : state) {
    Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 42);
    engine.SubmitJob(MakeSmallMvaProfile());
    engine.SubmitJob(MakeSmallGravityProfile());
    const SimTime end = engine.Run();
    simulated_seconds += ToSeconds(end);
    benchmark::DoNotOptimize(end);
  }
  state.counters["sim_s_per_iter"] = simulated_seconds / static_cast<double>(state.iterations());
}
BENCHMARK(BM_EndToEndSmallMix);

}  // namespace
}  // namespace affsched

BENCHMARK_MAIN();
