// Google-benchmark microbenchmarks of the simulator substrate itself:
// event-queue throughput, cache-model chunk cost, and end-to-end simulated
// seconds per wall second. These guard the regeneration benches' runtimes.
//
// Exits through a custom main that writes run_manifest.json (build/git
// metadata plus the wall-clock attribution profile) next to the working
// directory, so CI can trace any reported number back to its build.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <utility>

#include "src/apps/apps.h"
#include "src/cache/exact_cache.h"
#include "src/cache/footprint.h"
#include "src/engine/engine.h"
#include "src/sched/factory.h"
#include "src/sched/metered.h"
#include "src/sim/event_queue.h"
#include "src/telemetry/manifest.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/profile.h"

namespace affsched {
namespace {

// Shared across benchmarks; dumped into run_manifest.json by main().
Profiler& GlobalProfiler() {
  static Profiler profiler;
  return profiler;
}

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      q.ScheduleAt(i, [&sink] { ++sink; });
    }
    q.RunAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_FootprintChunk(benchmark::State& state) {
  FootprintCache cache(4096.0);
  const WorkingSetParams ws{.blocks = 3000.0, .buildup_tau_s = 0.05,
                            .steady_miss_per_s = 10000.0};
  CacheOwner owner = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.RunChunk(owner, ws, 0.002));
    owner = (owner % 4) + 1;  // rotate owners to keep eviction paths busy
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FootprintChunk);

void BM_ExactCacheAccess(benchmark::State& state) {
  ExactCache cache(CacheGeometry{});
  uint64_t block = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Access(1, block));
    block = (block * 2862933555777941757ULL + 3037000493ULL) % (1 << 14);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactCacheAccess);

void BM_EndToEndSmallMix(benchmark::State& state) {
  MachineConfig machine;
  machine.num_processors = 8;
  double simulated_seconds = 0.0;
  for (auto _ : state) {
    Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 42);
    engine.SubmitJob(MakeSmallMvaProfile());
    engine.SubmitJob(MakeSmallGravityProfile());
    const SimTime end = engine.Run();
    simulated_seconds += ToSeconds(end);
    benchmark::DoNotOptimize(end);
  }
  state.counters["sim_s_per_iter"] = simulated_seconds / static_cast<double>(state.iterations());
}
BENCHMARK(BM_EndToEndSmallMix);

// Same run with a MetricsRegistry attached. Comparing against
// BM_EndToEndSmallMix measures the cost of the counter bumps; with no
// registry attached the handles stay null and the instrumentation reduces to
// one branch per site, so the two should be within noise of each other.
void BM_EndToEndSmallMixMetrics(benchmark::State& state) {
  MachineConfig machine;
  machine.num_processors = 8;
  for (auto _ : state) {
    MetricsRegistry registry;
    Engine engine(machine, MakePolicy(PolicyKind::kDynAff), 42);
    engine.SetMetrics(&registry);
    engine.SubmitJob(MakeSmallMvaProfile());
    engine.SubmitJob(MakeSmallGravityProfile());
    const SimTime end = engine.Run();
    benchmark::DoNotOptimize(end);
    benchmark::DoNotOptimize(registry.FindCounter("engine.dispatches"));
  }
}
BENCHMARK(BM_EndToEndSmallMixMetrics);

// Wall-clock attribution: time each substrate component under a ScopedTimer
// so the manifest's "profile" member shows where simulator time goes (event
// queue churn vs. cache model vs. full engine runs).
void BM_ProfiledComponents(benchmark::State& state) {
  Profiler& profiler = GlobalProfiler();
  ProfileSection* queue_section = profiler.Section("event_queue");
  ProfileSection* footprint_section = profiler.Section("footprint_model");
  ProfileSection* exact_section = profiler.Section("exact_cache");
  ProfileSection* engine_section = profiler.Section("engine_run");
  ProfileSection* policy_section = profiler.Section("policy_decisions");

  MachineConfig machine;
  machine.num_processors = 8;
  FootprintCache fp_cache(4096.0);
  const WorkingSetParams ws{.blocks = 3000.0, .buildup_tau_s = 0.05,
                            .steady_miss_per_s = 10000.0};
  ExactCache exact(CacheGeometry{});

  for (auto _ : state) {
    {
      ScopedTimer t(queue_section);
      EventQueue q;
      int sink = 0;
      for (int i = 0; i < 1000; ++i) {
        q.ScheduleAt(i, [&sink] { ++sink; });
      }
      q.RunAll();
      benchmark::DoNotOptimize(sink);
    }
    {
      ScopedTimer t(footprint_section);
      CacheOwner owner = 1;
      for (int i = 0; i < 1000; ++i) {
        benchmark::DoNotOptimize(fp_cache.RunChunk(owner, ws, 0.002));
        owner = (owner % 4) + 1;
      }
    }
    {
      ScopedTimer t(exact_section);
      uint64_t block = 0;
      for (int i = 0; i < 1000; ++i) {
        benchmark::DoNotOptimize(exact.Access(1, block));
        block = (block * 2862933555777941757ULL + 3037000493ULL) % (1 << 14);
      }
    }
    {
      // "policy_decisions" nests inside "engine_run": sections are
      // independent accumulators, so the manifest shows both the total and
      // the slice the policy accounts for.
      ScopedTimer t(engine_section);
      auto metered = std::make_unique<MeteredPolicy>(MakePolicy(PolicyKind::kDynAff));
      metered->AttachProfiler(policy_section);
      Engine engine(machine, std::move(metered), 42);
      engine.SubmitJob(MakeSmallMvaProfile());
      engine.SubmitJob(MakeSmallGravityProfile());
      benchmark::DoNotOptimize(engine.Run());
    }
  }
}
BENCHMARK(BM_ProfiledComponents);

}  // namespace
}  // namespace affsched

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  affsched::RunManifest manifest;
  manifest.SetString("tool", "bench_sim_microbench");
  manifest.AddProfile(affsched::GlobalProfiler());
  manifest.WriteFile("run_manifest.json");
  std::printf("wrote run_manifest.json (git %s)\n", affsched::RunManifest::GitSha());
  return 0;
}
