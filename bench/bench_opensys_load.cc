// Load benchmark for the open-system subsystem: whole open cells — arrival
// generation, admission control, the engine run, and percentile accounting —
// measured in completed jobs per wall second. These are the numbers the
// "microbench_opensys" floors in bench/baseline.json gate
// (tools/bench_compare.py --microbench --floors-key microbench_opensys), so
// a regression in the open-system hot path (arrival ticks, completion hooks,
// FIFO admission, histogram inserts) shows up as a throughput drop here.
//
// Every measured run also feeds the built-in Little's-law self-check; main()
// records the verdict in run_manifest.json so an accounting bug cannot hide
// behind a healthy throughput number.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/opensys/open_sweep.h"
#include "src/telemetry/manifest.h"

namespace affsched {
namespace {

// Sticky across all benchmarks; dumped into run_manifest.json by main().
bool g_littles_ok = true;

OpenSweepSpec CellSpec(const std::string& overrides) {
  OpenSweepSpec spec;
  std::string error;
  const std::string text = "opensys-smoke;" + overrides;
  if (!ParseOpenSweepSpec(text, &spec, &error)) {
    std::fprintf(stderr, "bench_opensys_load: bad spec %s: %s\n", text.c_str(), error.c_str());
    std::abort();
  }
  return spec;
}

// Runs the grid single-threaded (the benchmark measures the cell, not the
// worker pool) and returns completed jobs, folding the Little's-law verdict
// into the sticky flag.
size_t RunSpec(const OpenSweepSpec& spec) {
  OpenSweepRunnerOptions options;
  options.jobs = 1;
  const OpenSweepResult result = OpenSweepRunner(options).Run(spec);
  g_littles_ok = g_littles_ok && result.AllLittlesLawOk();
  size_t completed = 0;
  for (const OpenCellResult& cell : result.cells) {
    completed += cell.result.completed;
  }
  return completed;
}

// One moderate-load Poisson cell under the affinity policy: the steady-state
// configuration the open sweeps spend most of their time in.
void BM_OpenLoadPoissonRho800(benchmark::State& state) {
  const OpenSweepSpec spec = CellSpec("policies=dyn-aff;arrivals=poisson;rhos=0.8;count=60");
  size_t completed = 0;
  for (auto _ : state) {
    completed += RunSpec(spec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(completed));
}
BENCHMARK(BM_OpenLoadPoissonRho800)->UseRealTime();

// Same load through the bursty on/off process: deeper transient queues, so
// the admission FIFO and queue-length accounting paths run hot.
void BM_OpenLoadOnOffRho800(benchmark::State& state) {
  const OpenSweepSpec spec = CellSpec("policies=dyn-aff;arrivals=onoff;rhos=0.8;count=60");
  size_t completed = 0;
  for (auto _ : state) {
    completed += RunSpec(spec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(completed));
}
BENCHMARK(BM_OpenLoadOnOffRho800)->UseRealTime();

// Near saturation with a bounded multiprogramming level: exercises the
// queue-then-admit path on nearly every arrival.
void BM_OpenLoadMplCapRho950(benchmark::State& state) {
  const OpenSweepSpec spec =
      CellSpec("policies=dyn-aff;arrivals=poisson;rhos=0.95;count=60;mpl-cap=6");
  size_t completed = 0;
  for (auto _ : state) {
    completed += RunSpec(spec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(completed));
}
BENCHMARK(BM_OpenLoadMplCapRho950)->UseRealTime();

// The full smoke grid (2 policies x 2 rhos x poisson), end to end: what the
// CI smoke sweep and the golden test actually run.
void BM_OpenSmokeSweep(benchmark::State& state) {
  const OpenSweepSpec spec = OpenSysSmokeSpec();
  size_t completed = 0;
  for (auto _ : state) {
    completed += RunSpec(spec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(completed));
}
BENCHMARK(BM_OpenSmokeSweep)->UseRealTime();

}  // namespace
}  // namespace affsched

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  affsched::RunManifest manifest;
  manifest.SetString("tool", "bench_opensys_load");
  manifest.SetBool("littles_law_ok", affsched::g_littles_ok);
  manifest.WriteFile("run_manifest.json");
  std::printf("wrote run_manifest.json (git %s, littles_law_ok=%s)\n",
              affsched::RunManifest::GitSha(), affsched::g_littles_ok ? "true" : "false");
  return affsched::g_littles_ok ? 0 : 1;
}
