// Regenerates Table 3: the influence of affinity on scheduling for workload
// #5 (1 MATRIX + 1 GRAVITY) — %affinity, #reallocations, mean reallocation
// interval, and response time per job under Dynamic, Dyn-Aff and
// Dyn-Aff-Delay.
//
// Paper values:
//                     Dynamic        Dyn-Aff        Dyn-Aff-Delay
//                     MAT    GRAV    MAT    GRAV    MAT    GRAV
//   %affinity         21%    31%     83%    54%     86%    59%
//   #reallocations    2469   1745    2409   1780    1611   1139
//   Realloc interval  293ms  222ms   300ms  218ms   445ms  340ms
//   Response (s)      87.5   51.4    87.0   51.5    86.3   51.4
//
// Shape to reproduce: the affinity variants raise %affinity dramatically;
// Dyn-Aff-Delay cuts #reallocations; response times stay basically equal —
// on this-era hardware the cache penalty per switch is tiny compared to the
// time between switches.
//
// The three policies' replications run on the parallel sweep runner
// (--jobs); Table 3 compares policies under common random numbers, which
// the runner's per-cell seeds preserve (seeds depend on mix + replication,
// never on policy).

#include <cstdio>

#include "src/apps/apps.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/runner/runner.h"
#include "src/runner/sweep.h"

using namespace affsched;

int main(int argc, char** argv) {
  FlagSet flags("Regenerates Table 3 of Vaswani & Zahorjan 1991.");
  flags.AddInt("seed", 555, "root random seed (per-cell seeds are derived)");
  flags.AddInt("jobs", 0, "worker threads (0 = hardware concurrency)");
  flags.AddString("out", "", "write sweep results JSON here");
  if (!flags.Parse(argc, argv)) {
    std::printf("%s\n", flags.help_requested() ? flags.Help().c_str() : flags.error().c_str());
    return flags.help_requested() ? 0 : 1;
  }

  SweepSpec spec = Table3Spec();
  spec.root_seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::printf("=== Table 3: influence of affinity on scheduling (workload #5) ===\n\n");

  SweepRunnerOptions runner_options;
  runner_options.jobs = static_cast<size_t>(flags.GetInt("jobs"));
  SweepRunner runner(runner_options);
  const SweepResult result = runner.Run(spec);

  std::vector<const ReplicatedResult*> results;
  std::vector<std::string> names;
  for (PolicyKind kind : DynamicFamily()) {
    results.push_back(&result.Find(kind, spec.mixes[0].number)->replicated);
    names.push_back(PolicyKindName(kind));
  }

  TextTable table;
  std::vector<std::string> header = {"metric"};
  for (const std::string& name : names) {
    header.push_back(name + " MAT");
    header.push_back(name + " GRAV");
  }
  table.SetHeader(header);

  auto add_metric = [&](const char* label, auto get) {
    std::vector<std::string> row = {label};
    for (const ReplicatedResult* r : results) {
      for (size_t j = 0; j < 2; ++j) {
        row.push_back(get(*r, j));
      }
    }
    table.AddRow(row);
  };

  add_metric("%affinity", [](const ReplicatedResult& r, size_t j) {
    return FormatPercent(r.mean_stats[j].AffinityFraction());
  });
  add_metric("#reallocations", [](const ReplicatedResult& r, size_t j) {
    return std::to_string(r.mean_stats[j].reallocations);
  });
  add_metric("realloc interval (ms)", [](const ReplicatedResult& r, size_t j) {
    return FormatDouble(r.mean_stats[j].ReallocationIntervalSeconds() * 1e3, 0);
  });
  add_metric("response time (s)", [](const ReplicatedResult& r, size_t j) {
    return FormatDouble(r.MeanResponse(j), 1);
  });

  std::printf("%s\n", table.Render().c_str());
  std::printf("grid: %zu experiments in %.2fs wall\n", result.experiments.size(),
              result.wall_seconds);
  std::printf(
      "Shape checks vs the paper: %%affinity rises sharply under the affinity\n"
      "variants; Dyn-Aff-Delay reduces #reallocations and lengthens the\n"
      "reallocation interval; response times are essentially unchanged.\n");

  if (!flags.GetString("out").empty() && result.WriteJsonFile(flags.GetString("out"))) {
    std::printf("wrote sweep results to %s\n", flags.GetString("out").c_str());
  }
  return 0;
}
