// Regenerates Table 1: the per-switch cache penalties P^A and P^NA (in us)
// for MVA, MATRIX and GRAVITY at rescheduling intervals Q = 25, 100, 400 ms,
// measured with the Section 4 single-processor harness.
//
// Paper values for comparison (Table 1):
//               Q=25ms                  Q=100ms                 Q=400ms
//          P^NA  P^A(M/V/G)        P^NA  P^A(M/V/G)        P^NA  P^A(M/V/G)
//   MAT    882   120/177/165       1076  171/419/374       1679  737/1166/815
//   MVA    914   107/166/194       1267  164/330/221       2330  627/1061/1103
//   GRAV   364   154/301/210       1576  415/740/353       2349  1793/2080/1719
//
// The paper's context: the switch path length alone is 750 us, so cache
// effects can exceed the direct cost of the switch; both penalties grow
// with Q.

#include <cstdio>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/measure/section4.h"

using namespace affsched;

int main() {
  const MachineConfig machine;  // single-processor use inside the harness
  const std::vector<AppProfile> apps = DefaultProfiles();

  std::printf("=== Table 1: P^A and P^NA (usec) for all applications ===\n");
  std::printf("(path-length cost of a context switch: 750 usec)\n\n");

  for (const double q_ms : {25.0, 100.0, 400.0}) {
    Section4Options options;
    options.q = Milliseconds(q_ms);
    std::printf("--- Q = %.0f msec ---\n", q_ms);
    TextTable table;
    table.SetHeader({"measured", "P^NA", "P^A vs MAT", "P^A vs MVA", "P^A vs GRAV"});
    for (const AppProfile& measured : apps) {
      const Section4Result stationary = RunSection4(
          machine, measured, Section4Treatment::kStationary, nullptr, options, 1);
      const Section4Result migrating = RunSection4(
          machine, measured, Section4Treatment::kMigrating, nullptr, options, 1);
      const double pna =
          (migrating.response_s - stationary.response_s) /
          static_cast<double>(migrating.switches > 0 ? migrating.switches : 1) * 1e6;

      std::vector<std::string> row = {measured.name, FormatDouble(pna, 0)};
      // Column order in the paper: intervening MAT, MVA, GRAV.
      for (const AppProfile* intervening : {&apps[1], &apps[0], &apps[2]}) {
        const Section4Result multiprog = RunSection4(
            machine, measured, Section4Treatment::kMultiprog, intervening, options, 1);
        const double pa =
            (multiprog.response_s - stationary.response_s) /
            static_cast<double>(multiprog.switches > 0 ? multiprog.switches : 1) * 1e6;
        row.push_back(FormatDouble(pa, 0));
      }
      table.AddRow(row);
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf(
      "Shape checks vs the paper: P^NA > P^A everywhere; both grow with Q;\n"
      "GRAVITY has the smallest P^NA at Q=25ms (slow working-set buildup)\n"
      "but among the largest at Q=400ms.\n");
  return 0;
}
