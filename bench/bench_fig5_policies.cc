// Regenerates Figure 5 (and prints Table 2): mean response time of each job
// in each of the six workload mixes under Dynamic, Dyn-Aff and Dyn-Aff-Delay,
// relative to Equipartition, on the 16-processor current-technology machine.
//
// Paper result: all relative response times are < 1 (aggressive reallocation
// beats static equipartition), and the three dynamic variants are basically
// identical — affinity scheduling provides little benefit on 1991 hardware
// because cache penalties (Table 1) are small relative to the time between
// reallocations (~300 ms).
//
// The (policy x mix x replication) grid runs on the parallel sweep runner:
// --jobs controls the worker count (results are bit-identical at any value),
// and --out writes the machine-readable SweepResult JSON that CI diffs
// against bench/baseline.json.

#include <cstdio>
#include <cstdlib>

#include "src/apps/apps.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/runner/runner.h"
#include "src/runner/sweep.h"

using namespace affsched;

int main(int argc, char** argv) {
  FlagSet flags("Regenerates Table 2 and Figure 5 of Vaswani & Zahorjan 1991.");
  flags.AddInt("procs", 16, "number of processors");
  flags.AddInt("seed", 1000, "root random seed (per-cell seeds are derived)");
  flags.AddInt("min-reps", 3, "minimum replications per experiment");
  flags.AddInt("max-reps", 5, "maximum replications per experiment");
  flags.AddDouble("precision", 0.02, "target relative CI half-width (paper: 0.01)");
  flags.AddInt("jobs", 0, "worker threads (0 = hardware concurrency)");
  flags.AddString("out", "", "write sweep results JSON here");
  if (!flags.Parse(argc, argv)) {
    std::printf("%s\n", flags.help_requested() ? flags.Help().c_str() : flags.error().c_str());
    return flags.help_requested() ? 0 : 1;
  }

  SweepSpec spec = Fig5Spec();
  spec.machine.num_processors = static_cast<size_t>(flags.GetInt("procs"));
  spec.root_seed = static_cast<uint64_t>(flags.GetInt("seed"));
  spec.replication.min_replications = static_cast<size_t>(flags.GetInt("min-reps"));
  spec.replication.max_replications = static_cast<size_t>(flags.GetInt("max-reps"));
  spec.replication.relative_precision = flags.GetDouble("precision");

  // Table 2: the workload mixes.
  std::printf("=== Table 2: #copies of each program in each mix ===\n");
  TextTable mix_table;
  mix_table.SetHeader({"", "#1", "#2", "#3", "#4", "#5", "#6"});
  auto mix_row = [&](const char* name, auto get) {
    std::vector<std::string> row = {name};
    for (const WorkloadMix& mix : spec.mixes) {
      row.push_back(std::to_string(get(mix)));
    }
    mix_table.AddRow(row);
  };
  mix_row("MVA", [](const WorkloadMix& m) { return m.mva; });
  mix_row("MATRIX", [](const WorkloadMix& m) { return m.matrix; });
  mix_row("GRAVITY", [](const WorkloadMix& m) { return m.gravity; });
  std::printf("%s\n", mix_table.Render().c_str());

  std::printf("=== Figure 5: response times relative to Equipartition ===\n\n");

  SweepRunnerOptions runner_options;
  runner_options.jobs = static_cast<size_t>(flags.GetInt("jobs"));
  SweepRunner runner(runner_options);
  const SweepResult result = runner.Run(spec);

  TextTable table;
  table.SetHeader({"mix", "job", "Equi RT (s)", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"});
  for (const WorkloadMix& mix : spec.mixes) {
    const ExperimentResult* equi = result.Find(PolicyKind::kEquipartition, mix.number);
    for (size_t j = 0; j < equi->replicated.app.size(); ++j) {
      std::vector<std::string> row = {
          mix.Label(), equi->replicated.app[j] + " (job " + std::to_string(j) + ")",
          FormatDouble(equi->replicated.MeanResponse(j), 1)};
      for (PolicyKind kind : DynamicFamily()) {
        const ExperimentResult* run = result.Find(kind, mix.number);
        row.push_back(
            FormatDouble(run->replicated.MeanResponse(j) / equi->replicated.MeanResponse(j), 3));
      }
      table.AddRow(row);
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("grid: %zu experiments in %.2fs wall\n", result.experiments.size(),
              result.wall_seconds);
  std::printf(
      "Shape checks vs the paper: relative response times at or below ~1.0\n"
      "for every job, and the three dynamic columns nearly identical.\n");

  if (!flags.GetString("out").empty()) {
    if (!result.WriteJsonFile(flags.GetString("out"))) {
      std::printf("failed to write %s\n", flags.GetString("out").c_str());
      return 1;
    }
    std::printf("wrote sweep results to %s\n", flags.GetString("out").c_str());
  }
  return 0;
}
