// Regenerates Figure 5 (and prints Table 2): mean response time of each job
// in each of the six workload mixes under Dynamic, Dyn-Aff and Dyn-Aff-Delay,
// relative to Equipartition, on the 16-processor current-technology machine.
//
// Paper result: all relative response times are < 1 (aggressive reallocation
// beats static equipartition), and the three dynamic variants are basically
// identical — affinity scheduling provides little benefit on 1991 hardware
// because cache penalties (Table 1) are small relative to the time between
// reallocations (~300 ms).

#include <cstdio>
#include <cstdlib>

#include "src/apps/apps.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/measure/experiment.h"

using namespace affsched;

int main(int argc, char** argv) {
  FlagSet flags("Regenerates Table 2 and Figure 5 of Vaswani & Zahorjan 1991.");
  flags.AddInt("procs", 16, "number of processors");
  flags.AddInt("seed", 1000, "base random seed");
  flags.AddInt("min-reps", 3, "minimum replications per experiment");
  flags.AddInt("max-reps", 5, "maximum replications per experiment");
  flags.AddDouble("precision", 0.02, "target relative CI half-width (paper: 0.01)");
  if (!flags.Parse(argc, argv)) {
    std::printf("%s\n", flags.help_requested() ? flags.Help().c_str() : flags.error().c_str());
    return flags.help_requested() ? 0 : 1;
  }

  MachineConfig machine = PaperMachineConfig();
  machine.num_processors = static_cast<size_t>(flags.GetInt("procs"));
  const std::vector<AppProfile> apps = DefaultProfiles();

  // Table 2: the workload mixes.
  std::printf("=== Table 2: #copies of each program in each mix ===\n");
  TextTable mix_table;
  mix_table.SetHeader({"", "#1", "#2", "#3", "#4", "#5", "#6"});
  const auto mixes = PaperMixes();
  auto mix_row = [&](const char* name, auto get) {
    std::vector<std::string> row = {name};
    for (const WorkloadMix& mix : mixes) {
      row.push_back(std::to_string(get(mix)));
    }
    mix_table.AddRow(row);
  };
  mix_row("MVA", [](const WorkloadMix& m) { return m.mva; });
  mix_row("MATRIX", [](const WorkloadMix& m) { return m.matrix; });
  mix_row("GRAVITY", [](const WorkloadMix& m) { return m.gravity; });
  std::printf("%s\n", mix_table.Render().c_str());

  std::printf("=== Figure 5: response times relative to Equipartition ===\n\n");

  ReplicationOptions rep;
  rep.min_replications = static_cast<size_t>(flags.GetInt("min-reps"));
  rep.max_replications = static_cast<size_t>(flags.GetInt("max-reps"));
  rep.relative_precision = flags.GetDouble("precision");

  TextTable table;
  table.SetHeader({"mix", "job", "Equi RT (s)", "Dynamic", "Dyn-Aff", "Dyn-Aff-Delay"});

  for (const WorkloadMix& mix : mixes) {
    const std::vector<AppProfile> jobs = mix.Expand(apps);
    const ReplicatedResult equi =
        RunReplicated(machine, PolicyKind::kEquipartition, jobs,
                      static_cast<uint64_t>(flags.GetInt("seed")) + mix.number, rep);
    std::vector<ReplicatedResult> results;
    for (PolicyKind kind : DynamicFamily()) {
      results.push_back(RunReplicated(
          machine, kind, jobs, static_cast<uint64_t>(flags.GetInt("seed")) + mix.number, rep));
    }
    for (size_t j = 0; j < jobs.size(); ++j) {
      std::vector<std::string> row = {mix.Label(), equi.app[j] + " (job " + std::to_string(j) + ")",
                                      FormatDouble(equi.MeanResponse(j), 1)};
      for (const ReplicatedResult& r : results) {
        row.push_back(FormatDouble(r.MeanResponse(j) / equi.MeanResponse(j), 3));
      }
      table.AddRow(row);
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape checks vs the paper: relative response times at or below ~1.0\n"
      "for every job, and the three dynamic columns nearly identical.\n");
  return 0;
}
