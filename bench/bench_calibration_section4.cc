// Calibration: the Table 1 measurement pipeline cross-validated on two
// independent cache substrates.
//
//   footprint — the analytic working-set model the scheduling experiments
//               run on (closed-form reloads and ejection);
//   exact     — per-reference simulation through the exact 2-way LRU cache,
//               with each program realised as a synthetic address stream.
//
// Agreement between the two columns (same orderings, magnitudes within tens
// of percent) shows the headline Table 1 numbers are not an artefact of the
// footprint approximation.

#include <cstdio>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/measure/section4.h"
#include "src/measure/section4_exact.h"

using namespace affsched;

int main() {
  const MachineConfig machine;
  const std::vector<AppProfile> apps = DefaultProfiles();

  std::printf("=== Calibration: Section 4 penalties, footprint vs exact cache ===\n\n");

  for (const double q_ms : {25.0, 100.0, 400.0}) {
    std::printf("--- Q = %.0f ms (P^NA / P^A vs self, usec) ---\n", q_ms);
    TextTable table;
    table.SetHeader({"app", "footprint P^NA", "exact P^NA", "footprint P^A", "exact P^A"});
    for (const AppProfile& app : apps) {
      Section4Options fp_options;
      fp_options.q = Milliseconds(q_ms);
      const CachePenalties fp = MeasureCachePenalties(machine, app, app, fp_options, 1);

      Section4ExactOptions ex_options;
      ex_options.q = Milliseconds(q_ms);
      const CachePenalties ex = MeasureCachePenaltiesExact(machine, app, app, ex_options, 1);

      table.AddRow({app.name, FormatDouble(fp.pna_us, 0), FormatDouble(ex.pna_us, 0),
                    FormatDouble(fp.pa_us, 0), FormatDouble(ex.pa_us, 0)});
    }
    std::printf("%s\n", table.Render().c_str());
  }

  std::printf(
      "Shape checks: both substrates grow with Q and agree on ordering.\n"
      "Known divergence: for applications whose raw working set exceeds the\n"
      "cache (MVA, GRAVITY), the exact harness's uniform reference stream\n"
      "thrashes across the whole set, raising the stationary baseline's miss\n"
      "rate and so shrinking the measured per-switch *delta* at large Q; the\n"
      "footprint model's capped-resident-set treatment matches the paper's\n"
      "Table 1 more closely and is what the scheduling experiments use.\n");
  return 0;
}
