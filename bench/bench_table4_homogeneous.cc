// Regenerates Table 4: average job response time for the homogeneous
// workloads (#1: 2 MVA, #4: 2 GRAVITY) under Dyn-Aff and Dyn-Aff-NoPri.
//
// Paper values:
//                              Dyn-Aff    Dyn-Aff-NoPri
//   Workload #1 (2 MVA jobs)   20.22      20.13
//   Workload #4 (2 GRAV jobs)  50.07      53.07
//
// Shape to reproduce: sacrificing the priority scheme for affinity buys a
// negligible improvement at best (workload 1) and a degradation at worst
// (workload 4) — not worth the gross unfairness Figure 6 shows.

#include <cstdio>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/measure/experiment.h"

using namespace affsched;

int main() {
  const MachineConfig machine = PaperMachineConfig();
  const std::vector<AppProfile> apps = DefaultProfiles();

  ReplicationOptions rep;
  rep.min_replications = 4;
  rep.max_replications = 8;

  std::printf("=== Table 4: mean job response time, homogeneous workloads ===\n\n");

  TextTable table;
  table.SetHeader({"workload", "Dyn-Aff (s)", "Dyn-Aff-NoPri (s)"});

  for (const WorkloadMix& mix : PaperMixes()) {
    if (!IsHomogeneous(mix)) {
      continue;
    }
    const std::vector<AppProfile> jobs = mix.Expand(apps);
    auto mean_rt = [&](PolicyKind kind) {
      const ReplicatedResult r = RunReplicated(machine, kind, jobs, 4000 + mix.number, rep);
      double total = 0.0;
      for (size_t j = 0; j < jobs.size(); ++j) {
        total += r.MeanResponse(j);
      }
      return total / static_cast<double>(jobs.size());
    };
    table.AddRow({mix.Label(), FormatDouble(mean_rt(PolicyKind::kDynAff), 2),
                  FormatDouble(mean_rt(PolicyKind::kDynAffNoPri), 2)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape check vs the paper: the two columns differ by only a few\n"
      "percent — abandoning fairness buys essentially nothing on average.\n");
  return 0;
}
