// Ablation: sensitivity of Dyn-Aff-Delay to the yield-delay length (DESIGN.md
// design-choice index). The paper fixes one delay; here we sweep it on
// workload #5 and report the waste / #reallocations trade it buys —
// the "balancing #reallocations and waste" degree of freedom from Section 2.
//
// Expected shape: longer delays monotonically cut #reallocations and add
// waste; response time is flat across sane delays on current technology
// (the reason Dyn-Aff-Delay "costs nothing" today), with degradation only at
// extreme delays where the added waste dominates.

#include <cstdio>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/measure/experiment.h"
#include "src/sched/dynamic.h"

using namespace affsched;

namespace {

// Local factory so we can sweep the delay (the public factory fixes it).
class DelayPolicyRunner {
 public:
  static ReplicatedResult Run(const MachineConfig& machine, const std::vector<AppProfile>& jobs,
                              SimDuration delay, uint64_t seed, const ReplicationOptions& rep) {
    ReplicatedResult result;
    result.response.resize(jobs.size());
    result.mean_stats.resize(jobs.size());
    std::vector<JobStats> accum(jobs.size());
    size_t reps = 0;
    while (reps < rep.max_replications) {
      DynamicOptions options;
      options.use_affinity = true;
      options.yield_delay = delay;
      Engine engine(machine, std::make_unique<DynamicPolicy>(options), seed + reps);
      for (const AppProfile& p : jobs) {
        engine.SubmitJob(p, 0);
      }
      engine.Run();
      for (JobId id = 0; id < engine.job_count(); ++id) {
        const JobStats& s = engine.job_stats(id);
        if (reps == 0 && result.app.size() < jobs.size()) {
          result.app.push_back(engine.job_name(id));
        }
        result.response[id].Add(s.ResponseSeconds());
        accum[id].waste_s += s.waste_s;
        accum[id].reallocations += s.reallocations;
        accum[id].reload_stall_s += s.reload_stall_s;
      }
      ++reps;
      if (reps >= rep.min_replications) {
        break;
      }
    }
    for (size_t j = 0; j < jobs.size(); ++j) {
      accum[j].waste_s /= static_cast<double>(reps);
      accum[j].reload_stall_s /= static_cast<double>(reps);
      accum[j].reallocations =
          static_cast<uint64_t>(static_cast<double>(accum[j].reallocations) / reps);
      result.mean_stats[j] = accum[j];
    }
    result.replications = reps;
    return result;
  }
};

}  // namespace

int main() {
  const MachineConfig machine = PaperMachineConfig();
  const std::vector<AppProfile> apps = DefaultProfiles();
  const WorkloadMix mix{.number = 5, .mva = 0, .matrix = 1, .gravity = 1};
  const std::vector<AppProfile> jobs = mix.Expand(apps);

  ReplicationOptions rep;
  rep.min_replications = 3;
  rep.max_replications = 3;

  std::printf("=== Ablation: yield-delay sweep (workload #5, Dyn-Aff-Delay) ===\n\n");

  TextTable table;
  table.SetHeader({"delay (ms)", "mean RT (s)", "total #realloc", "total waste (s)",
                   "total reload stall (s)"});

  for (const double delay_ms : {0.0, 5.0, 20.0, 50.0, 200.0, 1000.0}) {
    const ReplicatedResult r =
        DelayPolicyRunner::Run(machine, jobs, Milliseconds(delay_ms), 777, rep);
    double rt = 0.0;
    double waste = 0.0;
    double reload = 0.0;
    uint64_t realloc = 0;
    for (size_t j = 0; j < jobs.size(); ++j) {
      rt += r.response[j].mean();
      waste += r.mean_stats[j].waste_s;
      reload += r.mean_stats[j].reload_stall_s;
      realloc += r.mean_stats[j].reallocations;
    }
    table.AddRow({FormatDouble(delay_ms, 0), FormatDouble(rt / 2.0, 2),
                  std::to_string(realloc), FormatDouble(waste, 1), FormatDouble(reload, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape check: #reallocations falls and waste rises with the delay;\n"
      "response time stays flat until the delay gets extreme.\n");
  return 0;
}
