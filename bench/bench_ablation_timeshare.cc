// Ablation for Section 8: why earlier affinity-scheduling work (which studied
// time sharing) reached opposite conclusions from this paper (which studies
// space sharing).
//
// We run workload #5 under quantum-driven time sharing with and without
// affinity-aware task placement, across quantum lengths, and under
// space-sharing Dynamic / Dyn-Aff, comparing the cache-reload stall time and
// response times.
//
// Expected results:
//   * Time sharing induces an order of magnitude more (involuntary) switches
//     than space sharing, and correspondingly larger total reload stalls.
//   * Affinity placement removes a large fraction of those stalls under time
//     sharing; under space sharing there is much less to remove.
//   * The effect strengthens as the quantum shrinks (more switches per unit
//     time) — consistent with [Squillante & Lazowska 89] studying small
//     quanta, and with [Gupta et al. 91]'s footnote that with large quanta
//     affinity had "a positive but small effect".

#include <cstdio>
#include <memory>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/engine/engine.h"
#include "src/measure/experiment.h"
#include "src/sched/timeshare.h"

using namespace affsched;

namespace {

struct Row {
  std::string label;
  double rt[2] = {0, 0};
  double reload[2] = {0, 0};
  uint64_t reallocs = 0;
};

Row RunTimeShare(const MachineConfig& machine, const std::vector<AppProfile>& jobs,
                 SimDuration quantum, bool affinity, uint64_t seed) {
  TimeShareOptions options;
  options.quantum = quantum;
  options.use_affinity = affinity;
  Engine engine(machine, std::make_unique<TimeSharePolicy>(options), seed);
  for (const AppProfile& p : jobs) {
    engine.SubmitJob(p, 0);
  }
  engine.Run();
  Row row;
  char label[64];
  std::snprintf(label, sizeof(label), "TimeShare%s Q=%.0fms", affinity ? "-Aff" : "",
                ToMilliseconds(quantum));
  row.label = label;
  for (JobId id = 0; id < engine.job_count(); ++id) {
    row.rt[id] = engine.job_stats(id).ResponseSeconds();
    row.reload[id] = engine.job_stats(id).reload_stall_s;
    row.reallocs += engine.job_stats(id).reallocations;
  }
  return row;
}

Row RunSpaceShare(const MachineConfig& machine, const std::vector<AppProfile>& jobs,
                  PolicyKind kind, uint64_t seed) {
  const RunResult result = RunOnce(machine, kind, jobs, seed);
  Row row;
  row.label = PolicyKindName(kind);
  for (size_t j = 0; j < result.jobs.size(); ++j) {
    row.rt[j] = result.jobs[j].stats.ResponseSeconds();
    row.reload[j] = result.jobs[j].stats.reload_stall_s;
    row.reallocs += result.jobs[j].stats.reallocations;
  }
  return row;
}

}  // namespace

int main() {
  const MachineConfig machine = PaperMachineConfig();
  const std::vector<AppProfile> apps = DefaultProfiles();
  const WorkloadMix mix{.number = 5, .mva = 0, .matrix = 1, .gravity = 1};
  const std::vector<AppProfile> jobs = mix.Expand(apps);

  std::printf("=== Ablation: affinity under time sharing vs space sharing ===\n");
  std::printf("(workload #5: 1 MATRIX + 1 GRAVITY, 16 processors)\n\n");

  std::vector<Row> rows;
  for (const double q_ms : {100.0, 25.0, 10.0}) {
    rows.push_back(RunTimeShare(machine, jobs, Milliseconds(q_ms), false, 1234));
    rows.push_back(RunTimeShare(machine, jobs, Milliseconds(q_ms), true, 1234));
  }
  rows.push_back(RunSpaceShare(machine, jobs, PolicyKind::kDynamic, 1234));
  rows.push_back(RunSpaceShare(machine, jobs, PolicyKind::kDynAff, 1234));

  TextTable table;
  table.SetHeader({"policy", "RT MAT (s)", "RT GRAV (s)", "reload MAT (s)", "reload GRAV (s)",
                   "#realloc"});
  for (const Row& row : rows) {
    table.AddRow({row.label, FormatDouble(row.rt[0], 1), FormatDouble(row.rt[1], 1),
                  FormatDouble(row.reload[0], 2), FormatDouble(row.reload[1], 2),
                  std::to_string(row.reallocs)});
  }
  std::printf("%s\n", table.Render().c_str());

  auto reload_saving = [&](size_t plain, size_t aff) {
    const double before = rows[plain].reload[0] + rows[plain].reload[1];
    const double after = rows[aff].reload[0] + rows[aff].reload[1];
    return before > 0 ? 100.0 * (before - after) / before : 0.0;
  };
  std::printf("reload-stall saved by affinity, time sharing Q=100ms: %.0f%%\n",
              reload_saving(0, 1));
  std::printf("reload-stall saved by affinity, time sharing Q=25ms:  %.0f%%\n",
              reload_saving(2, 3));
  std::printf("reload-stall saved by affinity, time sharing Q=10ms:  %.0f%%\n",
              reload_saving(4, 5));
  std::printf("reload-stall saved by affinity, space sharing:        %.0f%%\n",
              reload_saving(6, 7));
  std::printf(
      "\nShape checks vs Section 8: time sharing has far more reallocations\n"
      "and reload stall than space sharing; affinity placement recovers a\n"
      "large share of it there, while under space sharing the total at stake\n"
      "is small — hence the paper's different conclusion from prior work.\n");
  return 0;
}
