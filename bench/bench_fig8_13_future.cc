// Regenerates Figures 8-13: response times of the dynamic policies relative
// to Equipartition on future machines, per workload mix, as the product of
// processor-speed and cache-size grows.
//
// Method (Section 7): run each mix on the current-technology simulator,
// extract the response-time-model parameters per job (work, waste,
// #reallocations, %affinity, average allocation), combine with per-switch
// penalties P^A / P^NA (Table 1 values at Q = 400 ms), and evaluate the
// extended model of Figure 7 across the sweep.
//
// Shape to reproduce:
//   * the best dynamic policy stays at or below Equipartition everywhere
//     (any crossover is far in the future);
//   * Dynamic (oblivious) degrades relative to Dyn-Aff as the product grows
//     (visible most clearly for workload 1);
//   * Dyn-Aff-Delay separates from Dyn-Aff at high products (workload 5).

#include <cstdio>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/model/crossover.h"
#include "src/model/future_sweep.h"

using namespace affsched;

int main() {
  const MachineConfig machine = PaperMachineConfig();
  const std::vector<AppProfile> apps = DefaultProfiles();
  const PenaltyTable penalties = PaperPenaltyTable();

  FutureSweepOptions options;
  options.products = {1, 4, 16, 64, 256, 1024, 4096, 16384};
  options.replication.min_replications = 3;
  options.replication.max_replications = 4;

  std::printf("=== Figures 8-13: relative response times on future machines ===\n");
  std::printf("(X axis: processor-speed x cache-size product; values are\n");
  std::printf(" policy RT / Equipartition RT from the Figure-7 model)\n\n");

  for (const WorkloadMix& mix : PaperMixes()) {
    std::printf("--- Figure %d: workload %s ---\n", 7 + mix.number, mix.Label().c_str());
    const FutureSweepResult result =
        SweepFutureMachines(machine, mix, apps, penalties, 8000 + mix.number, options);

    TextTable table;
    std::vector<std::string> header = {"policy", "job"};
    for (double p : result.products) {
      header.push_back("x" + std::to_string(static_cast<long>(p)));
    }
    table.SetHeader(header);
    for (const FutureCurve& curve : result.curves) {
      std::vector<std::string> row = {PolicyKindName(curve.policy),
                                      curve.app + " (job " + std::to_string(curve.job_index) + ")"};
      for (double r : curve.relative_rt) {
        row.push_back(FormatDouble(r, 3));
      }
      table.AddRow(row);
    }
    std::printf("%s\n", table.Render().c_str());
  }

  // Crossover quantification: the product at which each policy's model curve
  // reaches Equipartition (the paper: "the crossover point is quite far in
  // the future").
  std::printf("--- crossover products (policy RT reaches Equipartition RT) ---\n");
  TextTable crossover_table;
  crossover_table.SetHeader({"mix", "policy", "job", "crossover product"});
  FutureSweepOptions cross_options = options;
  cross_options.products = {1};  // current-tech run only; model handles the sweep
  for (const WorkloadMix& mix : PaperMixes()) {
    const std::vector<AppProfile> jobs = mix.Expand(apps);
    const ReplicatedResult equi = RunReplicated(machine, PolicyKind::kEquipartition, jobs,
                                                8000 + mix.number, options.replication);
    for (PolicyKind policy : options.policies) {
      const ReplicatedResult run =
          RunReplicated(machine, policy, jobs, 8000 + mix.number, options.replication);
      for (size_t j = 0; j < jobs.size(); ++j) {
        const ModelParams params = ExtractModelParams(run.mean_stats[j],
                                                      penalties.pa_us.at(run.app[j]),
                                                      penalties.pna_us.at(run.app[j]));
        const ModelParams equi_params = ExtractModelParams(equi.mean_stats[j],
                                                           penalties.pa_us.at(equi.app[j]),
                                                           penalties.pna_us.at(equi.app[j]));
        const double crossover = CrossoverProduct(params, equi_params, 1e9);
        std::string label;
        if (crossover < 0.0) {
          label = "never (within 1e9)";
        } else if (crossover <= 1.0) {
          label = "<= 1 (already behind)";
        } else {
          label = FormatDouble(crossover, 0);
        }
        crossover_table.AddRow({mix.Label(), PolicyKindName(policy), run.app[j], label});
      }
    }
  }
  std::printf("%s\n", crossover_table.Render().c_str());

  std::printf(
      "Shape checks vs the paper: Dynamic's curves rise with the product\n"
      "while Dyn-Aff / Dyn-Aff-Delay stay flat or rise much more slowly; the\n"
      "dynamic family remains at or below Equipartition until far-future\n"
      "machines (crossovers orders of magnitude beyond current technology).\n");
  return 0;
}
