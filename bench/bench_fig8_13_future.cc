// Regenerates Figures 8-13: response times of the dynamic policies relative
// to Equipartition on future machines, per workload mix, as the product of
// processor-speed and cache-size grows.
//
// Method (Section 7): run each mix on the current-technology simulator,
// extract the response-time-model parameters per job (work, waste,
// #reallocations, %affinity, average allocation), combine with per-switch
// penalties P^A / P^NA (Table 1 values at Q = 400 ms), and evaluate the
// extended model of Figure 7 across the sweep.
//
// Shape to reproduce:
//   * the best dynamic policy stays at or below Equipartition everywhere
//     (any crossover is far in the future);
//   * Dynamic (oblivious) degrades relative to Dyn-Aff as the product grows
//     (visible most clearly for workload 1);
//   * Dyn-Aff-Delay separates from Dyn-Aff at high products (workload 5).
//
// All current-technology simulations — the expensive part — run as one grid
// on the parallel sweep runner; the model extrapolation and the crossover
// table below both reuse those results instead of re-simulating.

#include <cstdio>

#include "src/apps/apps.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/model/crossover.h"
#include "src/model/future_sweep.h"
#include "src/runner/runner.h"
#include "src/runner/sweep.h"

using namespace affsched;

int main(int argc, char** argv) {
  FlagSet flags("Regenerates Figures 8-13 of Vaswani & Zahorjan 1991.");
  flags.AddInt("seed", 8000, "root random seed (per-cell seeds are derived)");
  flags.AddInt("jobs", 0, "worker threads (0 = hardware concurrency)");
  flags.AddString("out", "", "write sweep results JSON here");
  if (!flags.Parse(argc, argv)) {
    std::printf("%s\n", flags.help_requested() ? flags.Help().c_str() : flags.error().c_str());
    return flags.help_requested() ? 0 : 1;
  }

  const PenaltyTable penalties = PaperPenaltyTable();
  FutureSweepOptions options;
  options.products = {1, 4, 16, 64, 256, 1024, 4096, 16384};

  SweepSpec spec = FutureSpec();
  spec.root_seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.replication = spec.replication;

  SweepRunnerOptions runner_options;
  runner_options.jobs = static_cast<size_t>(flags.GetInt("jobs"));
  SweepRunner runner(runner_options);
  const SweepResult grid = runner.Run(spec);

  std::printf("=== Figures 8-13: relative response times on future machines ===\n");
  std::printf("(X axis: processor-speed x cache-size product; values are\n");
  std::printf(" policy RT / Equipartition RT from the Figure-7 model)\n");
  std::printf("(current-technology grid: %zu experiments in %.2fs wall)\n\n",
              grid.experiments.size(), grid.wall_seconds);

  for (const WorkloadMix& mix : spec.mixes) {
    std::printf("--- Figure %d: workload %s ---\n", 7 + mix.number, mix.Label().c_str());
    const ReplicatedResult& equi =
        grid.Find(PolicyKind::kEquipartition, mix.number)->replicated;
    std::vector<std::pair<PolicyKind, const ReplicatedResult*>> runs;
    for (PolicyKind policy : options.policies) {
      runs.emplace_back(policy, &grid.Find(policy, mix.number)->replicated);
    }
    const FutureSweepResult result = FutureSweepFromRuns(equi, runs, penalties, options);

    TextTable table;
    std::vector<std::string> header = {"policy", "job"};
    for (double p : result.products) {
      header.push_back("x" + std::to_string(static_cast<long>(p)));
    }
    table.SetHeader(header);
    for (const FutureCurve& curve : result.curves) {
      std::vector<std::string> row = {PolicyKindName(curve.policy),
                                      curve.app + " (job " + std::to_string(curve.job_index) + ")"};
      for (double r : curve.relative_rt) {
        row.push_back(FormatDouble(r, 3));
      }
      table.AddRow(row);
    }
    std::printf("%s\n", table.Render().c_str());
  }

  // Crossover quantification: the product at which each policy's model curve
  // reaches Equipartition (the paper: "the crossover point is quite far in
  // the future"). Reuses the grid's replicated results directly.
  std::printf("--- crossover products (policy RT reaches Equipartition RT) ---\n");
  TextTable crossover_table;
  crossover_table.SetHeader({"mix", "policy", "job", "crossover product"});
  for (const WorkloadMix& mix : spec.mixes) {
    const ReplicatedResult& equi =
        grid.Find(PolicyKind::kEquipartition, mix.number)->replicated;
    for (PolicyKind policy : options.policies) {
      const ReplicatedResult& run = grid.Find(policy, mix.number)->replicated;
      for (size_t j = 0; j < run.app.size(); ++j) {
        const ModelParams params = ExtractModelParams(run.mean_stats[j],
                                                      penalties.pa_us.at(run.app[j]),
                                                      penalties.pna_us.at(run.app[j]));
        const ModelParams equi_params = ExtractModelParams(equi.mean_stats[j],
                                                           penalties.pa_us.at(equi.app[j]),
                                                           penalties.pna_us.at(equi.app[j]));
        const double crossover = CrossoverProduct(params, equi_params, 1e9);
        std::string label;
        if (crossover < 0.0) {
          label = "never (within 1e9)";
        } else if (crossover <= 1.0) {
          label = "<= 1 (already behind)";
        } else {
          label = FormatDouble(crossover, 0);
        }
        crossover_table.AddRow({mix.Label(), PolicyKindName(policy), run.app[j], label});
      }
    }
  }
  std::printf("%s\n", crossover_table.Render().c_str());

  std::printf(
      "Shape checks vs the paper: Dynamic's curves rise with the product\n"
      "while Dyn-Aff / Dyn-Aff-Delay stay flat or rise much more slowly; the\n"
      "dynamic family remains at or below Equipartition until far-future\n"
      "machines (crossovers orders of magnitude beyond current technology).\n");

  if (!flags.GetString("out").empty() && grid.WriteJsonFile(flags.GetString("out"))) {
    std::printf("wrote sweep results to %s\n", flags.GetString("out").c_str());
  }
  return 0;
}
