// Real-time benchmark: whole closed sweeps of the rt preset's policies on
// the 8-color partitioned machine, measured in simulated jobs per wall
// second. These are the numbers the "microbench_rt" floors in
// bench/baseline.json gate (tools/bench_compare.py --microbench --floors-key
// microbench_rt), so a regression in the partitioned-cache hot path (per-
// color interference accounting, reservation-capped reload buildup) or in
// the static planner (ComputeStaticAssignment on every arrival/departure)
// shows up as a throughput drop against the dyn-aff baseline benchmark.
//
// main() additionally prints the rt preset's deadline/tardiness/worst-reload
// comparison across its policy line-up — the source of the measured excerpt
// in EXPERIMENTS.md — and writes run_manifest.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/table.h"
#include "src/runner/runner.h"
#include "src/runner/sweep.h"
#include "src/sched/factory.h"
#include "src/telemetry/manifest.h"

namespace affsched {
namespace {

SweepSpec BenchSpec(const std::string& spec_text) {
  SweepSpec spec;
  std::string error;
  if (!ParseSweepSpec(spec_text, &spec, &error)) {
    std::fprintf(stderr, "bench_rt_deadlines: bad spec %s: %s\n", spec_text.c_str(),
                 error.c_str());
    std::abort();
  }
  return spec;
}

// Runs the grid single-threaded (the benchmark measures the simulation, not
// the worker pool) and returns the number of jobs simulated.
size_t RunSpec(const SweepSpec& spec) {
  SweepRunnerOptions options;
  options.jobs = 1;
  const SweepResult result = SweepRunner(options).Run(spec);
  size_t jobs = 0;
  for (const ExperimentResult& experiment : result.experiments) {
    for (const CellResult& cell : experiment.cells) {
      jobs += cell.run.jobs.size();
    }
  }
  return jobs;
}

// One rt-preset cell per policy: the 8-color machine, mix 5, one rep. The
// dyn-aff run pays the partitioned substrate without static planning, so the
// spread against it prices the planner; color-iso additionally pays the
// per-slice interference bookkeeping.
constexpr const char* kBenchCell = "rt;reps=1;mixes=5;policies=";

void BM_RtDynAff(benchmark::State& state) {
  const SweepSpec spec = BenchSpec(std::string(kBenchCell) + "dyn-aff");
  size_t jobs = 0;
  for (auto _ : state) {
    jobs += RunSpec(spec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
}
BENCHMARK(BM_RtDynAff)->UseRealTime();

void BM_RtStaticAffinity(benchmark::State& state) {
  const SweepSpec spec = BenchSpec(std::string(kBenchCell) + "rt-static-affinity");
  size_t jobs = 0;
  for (auto _ : state) {
    jobs += RunSpec(spec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
}
BENCHMARK(BM_RtStaticAffinity)->UseRealTime();

void BM_RtColorIso(benchmark::State& state) {
  const SweepSpec spec = BenchSpec(std::string(kBenchCell) + "rt-color-iso");
  size_t jobs = 0;
  for (auto _ : state) {
    jobs += RunSpec(spec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
}
BENCHMARK(BM_RtColorIso)->UseRealTime();

// Prints the rt preset's line-up: deadline misses, mean tardiness and the
// worst-case-observed reload per (policy, mix) — the quantity the static
// plans exist to bound.
void PrintRtComparison() {
  const SweepSpec spec = BenchSpec("rt");
  SweepRunnerOptions options;
  options.jobs = 0;  // report quality, not wall time: use every core
  const SweepResult result = SweepRunner(options).Run(spec);
  TextTable table;
  table.SetHeader({"mix", "policy", "misses", "tardiness (s)", "worst reload (s)"});
  for (const ExperimentResult& experiment : result.experiments) {
    uint64_t misses = 0;
    double tardiness = 0.0;
    double worst_reload = 0.0;
    for (const JobStats& stats : experiment.replicated.mean_stats) {
      misses += stats.deadline_misses;
      tardiness += stats.tardiness_s;
      worst_reload = std::max(worst_reload, stats.worst_reload_s);
    }
    table.AddRow({std::to_string(experiment.mix.number),
                  PolicyKindCliName(experiment.policy), std::to_string(misses),
                  FormatDouble(tardiness, 4), FormatDouble(worst_reload, 9)});
  }
  std::printf("\nrt policy line-up on the rt preset (seed %llu, %s deadline mix):\n%s",
              static_cast<unsigned long long>(spec.root_seed), spec.deadline_mix.c_str(),
              table.Render().c_str());
}

}  // namespace
}  // namespace affsched

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  affsched::PrintRtComparison();

  affsched::RunManifest manifest;
  manifest.SetString("tool", "bench_rt_deadlines");
  manifest.WriteFile("run_manifest.json");
  std::printf("\nwrote run_manifest.json (git %s)\n", affsched::RunManifest::GitSha());
  return 0;
}
