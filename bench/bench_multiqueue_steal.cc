// Multi-queue benchmark: whole closed sweeps under the MQMS steal family,
// measured in simulated jobs per wall second. These are the numbers the
// "microbench_multiqueue" floors in bench/baseline.json gate
// (tools/bench_compare.py --microbench --floors-key microbench_multiqueue),
// so a regression in the per-queue hot path (queue homing, tier-scoped
// victim scans, ReloadCostSeconds scoring, steal accounting) shows up as a
// throughput drop against the no-steal baseline benchmark.
//
// main() additionally prints a Fig-5-style policy comparison for the whole
// steal family on the mq preset machine — response time relative to
// Equipartition plus the per-tier steal counters — the source of the
// measured excerpt in EXPERIMENTS.md — and writes run_manifest.json.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/runner/runner.h"
#include "src/runner/sweep.h"
#include "src/sched/factory.h"
#include "src/telemetry/manifest.h"

namespace affsched {
namespace {

SweepSpec BenchSpec(const std::string& spec_text) {
  SweepSpec spec;
  std::string error;
  if (!ParseSweepSpec(spec_text, &spec, &error)) {
    std::fprintf(stderr, "bench_multiqueue_steal: bad spec %s: %s\n", spec_text.c_str(),
                 error.c_str());
    std::abort();
  }
  return spec;
}

// Runs the grid single-threaded (the benchmark measures the simulation, not
// the worker pool) and returns the number of jobs simulated.
size_t RunSpec(const SweepSpec& spec) {
  SweepRunnerOptions options;
  options.jobs = 1;
  const SweepResult result = SweepRunner(options).Run(spec);
  size_t jobs = 0;
  for (const ExperimentResult& experiment : result.experiments) {
    for (const CellResult& cell : experiment.cells) {
      jobs += cell.run.jobs.size();
    }
  }
  return jobs;
}

// One mq-preset cell per steal radius: the NUMA machine, mix 5, one rep.
// The spread between nosteal and numa is the price of the widest victim
// scan; nosteal vs the topology benches is the price of per-queue dispatch.
constexpr const char* kBenchCell = "mq;reps=1;mixes=5;steal=";

void BM_MultiQueueNoSteal(benchmark::State& state) {
  const SweepSpec spec = BenchSpec(std::string(kBenchCell) + "nosteal");
  size_t jobs = 0;
  for (auto _ : state) {
    jobs += RunSpec(spec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
}
BENCHMARK(BM_MultiQueueNoSteal)->UseRealTime();

void BM_MultiQueueStealCluster(benchmark::State& state) {
  const SweepSpec spec = BenchSpec(std::string(kBenchCell) + "cluster");
  size_t jobs = 0;
  for (auto _ : state) {
    jobs += RunSpec(spec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
}
BENCHMARK(BM_MultiQueueStealCluster)->UseRealTime();

void BM_MultiQueueStealNuma(benchmark::State& state) {
  const SweepSpec spec = BenchSpec(std::string(kBenchCell) + "numa");
  size_t jobs = 0;
  for (auto _ : state) {
    jobs += RunSpec(spec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
}
BENCHMARK(BM_MultiQueueStealNuma)->UseRealTime();

// Prints the steal family against Equipartition on the mq preset machine:
// the Fig-5 relative-response column plus the per-tier steal and balance
// counters the centralized policies never exercise.
void PrintPolicyComparison() {
  const SweepSpec spec = BenchSpec("mq");
  SweepRunnerOptions options;
  options.jobs = 0;  // report quality, not wall time: use every core
  const SweepResult result = SweepRunner(options).Run(spec);
  TextTable table;
  table.SetHeader({"mix", "policy", "job", "mean RT (s)", "vs equi", "steals c/n/x",
                   "balance"});
  for (const ExperimentResult& experiment : result.experiments) {
    const ExperimentResult* equi = result.Find(PolicyKind::kEquipartition,
                                               experiment.mix.number);
    for (size_t j = 0; j < experiment.replicated.app.size(); ++j) {
      const JobStats& stats = experiment.replicated.mean_stats[j];
      std::string ratio = "-";
      if (equi != nullptr && experiment.policy != PolicyKind::kEquipartition) {
        ratio = FormatDouble(
            experiment.replicated.MeanResponse(j) / equi->replicated.MeanResponse(j), 3);
      }
      table.AddRow({std::to_string(experiment.mix.number),
                    PolicyKindCliName(experiment.policy), experiment.replicated.app[j],
                    FormatDouble(experiment.replicated.MeanResponse(j), 2), ratio,
                    std::to_string(stats.steals_same_cluster) + "/" +
                        std::to_string(stats.steals_same_node) + "/" +
                        std::to_string(stats.steals_cross_node),
                    std::to_string(stats.balance_migrations)});
    }
  }
  std::printf("\nsteal family on the mq preset (seed %llu):\n%s",
              static_cast<unsigned long long>(spec.root_seed), table.Render().c_str());
}

}  // namespace
}  // namespace affsched

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  affsched::PrintPolicyComparison();

  affsched::RunManifest manifest;
  manifest.SetString("tool", "bench_multiqueue_steal");
  manifest.WriteFile("run_manifest.json");
  std::printf("\nwrote run_manifest.json (git %s)\n", affsched::RunManifest::GitSha());
  return 0;
}
