// Regenerates the Section 7.2 side analysis: a two-level cache hierarchy over
// a single central memory, asking whether hit-rate improvements alone could
// let future processors avoid faster miss resolution.
//
// Paper: "We found that because multiprocessor hit rates may already be
// expected to be quite high, there was little room for improvement: hit rates
// could not be increased enough to obviate the need for faster miss
// resolution. For this reason, the model assumes that (effective) memory
// speed must increase as sqrt(processor-speed)."

#include <cmath>
#include <cstdio>

#include "src/common/table.h"
#include "src/model/memory_hierarchy.h"

using namespace affsched;

int main() {
  HierarchyParams base;  // h1=0.95, h2=0.80, L1 1 cycle, L2 200ns, mem 750ns

  std::printf("=== Section 7.2: two-level hierarchy vs faster processors ===\n\n");
  std::printf("base hierarchy: L1 hit %.0f%% @ %.1f ns, L2 hit %.0f%% @ %.0f ns, "
              "memory %.0f ns\n",
              base.l1_hit * 100, base.l1_time_s * 1e9, base.l2_hit * 100, base.l2_time_s * 1e9,
              base.memory_time_s * 1e9);
  std::printf("effective access time: %.1f ns (miss component %.1f ns)\n\n",
              EffectiveAccessTime(base) * 1e9, MissComponent(base) * 1e9);

  std::printf("--- required below-L1 (miss resolution) speedup ---\n");
  TextTable table;
  table.SetHeader({"processor speed", "no better caching", "half the misses removed",
                   "90% removed", "sqrt(speed) assumption"});
  for (const double speed : {4.0, 16.0, 64.0, 256.0}) {
    auto fmt = [&](double miss_reduction) {
      const double req = RequiredMemorySpeedup(base, speed, miss_reduction);
      return std::isinf(req) ? std::string("impossible") : FormatDouble(req, 1) + "x";
    };
    table.AddRow({FormatDouble(speed, 0) + "x", fmt(0.0), fmt(0.5), fmt(0.9),
                  FormatDouble(std::sqrt(speed), 1) + "x"});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("--- miss reduction needed to avoid ANY memory speedup ---\n");
  TextTable table2;
  table2.SetHeader({"processor speed", "required miss reduction", "implied miss-rate cut"});
  for (const double speed : {2.0, 4.0, 16.0, 64.0}) {
    const double r = MissReductionToAvoidFasterMemory(base, speed);
    table2.AddRow({FormatDouble(speed, 0) + "x", FormatPercent(r, 1),
                   FormatDouble(1.0 / (1.0 - r), 0) + "x"});
  }
  std::printf("%s\n", table2.Render().c_str());

  std::printf(
      "Shape checks vs the paper: with hit rates already high, plausible\n"
      "caching improvements leave the required miss-resolution speedup well\n"
      "above sqrt(speed); avoiding faster memory entirely would need\n"
      "implausible (10-100x) cuts in miss rate — hence Figure 7's\n"
      "sqrt(processor-speed) scaling for miss service.\n");
  return 0;
}
