// Regenerates Figures 2-4: per-application characterisation — the percentage
// of time spent at each level of physical parallelism, the total elapsed
// time, and the average processor demand, each application run in isolation
// on 16 processors (exactly the measurement setup the paper describes).
//
// Shape to reproduce:
//   MVA     — parallelism slowly grows then slowly decreases (wavefront).
//   MATRIX  — massive, constant parallelism (time concentrated at 16).
//   GRAVITY — five phases per time step (one sequential), parallelism
//             repeatedly collapsing to 1 at barriers.

#include <cstdio>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/measure/experiment.h"
#include "src/sched/factory.h"

using namespace affsched;

int main() {
  const MachineConfig machine = PaperMachineConfig();

  std::printf("=== Figures 2-4: application characteristics (16 processors) ===\n\n");
  for (const AppProfile& app : DefaultProfiles()) {
    Engine::Options options;
    options.record_parallelism = true;
    Engine engine(machine, MakePolicy(PolicyKind::kDynamic), 7, options);
    const JobId id = engine.SubmitJob(app);
    engine.Run();

    const JobStats& stats = engine.job_stats(id);
    const WeightedHistogram* hist = engine.parallelism_histogram(id);
    std::printf("--- %s ---\n", app.name.c_str());
    std::printf("%s", hist->Render("time at each parallelism level:").c_str());
    std::printf("  total execution time: %.2f s\n", stats.ResponseSeconds());
    std::printf("  average processor demand: %.2f\n",
                (stats.useful_work_s + stats.steady_stall_s + stats.reload_stall_s) /
                    stats.ResponseSeconds());
    std::printf("  total useful work: %.1f processor-seconds\n\n", stats.useful_work_s);
  }

  std::printf(
      "Shape checks vs the paper: MVA ramps up and down; MATRIX sits at the\n"
      "full machine; GRAVITY oscillates between 1 (sequential phase/barriers)\n"
      "and wide parallel phases.\n");
  return 0;
}
