// Topology benchmark: whole closed sweeps through the hierarchical cache
// model, measured in simulated jobs per wall second. These are the numbers
// the "microbench_topology" floors in bench/baseline.json gate
// (tools/bench_compare.py --microbench --floors-key microbench_topology), so
// a regression in the tiered hot path (per-cluster LLC chunks, last-node
// directory lookups, per-tier accounting) shows up as a throughput drop
// relative to the flat baseline benchmark.
//
// main() additionally prints a Figure-5-style policy comparison per topology
// (response time relative to Equipartition for the whole distance-aware
// family) — the source of the measured excerpt in EXPERIMENTS.md — and
// writes run_manifest.json.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/runner/runner.h"
#include "src/runner/sweep.h"
#include "src/sched/factory.h"
#include "src/telemetry/manifest.h"

namespace affsched {
namespace {

SweepSpec BenchSpec(const std::string& spec_text) {
  SweepSpec spec;
  std::string error;
  if (!ParseSweepSpec(spec_text, &spec, &error)) {
    std::fprintf(stderr, "bench_topology_sweep: bad spec %s: %s\n", spec_text.c_str(),
                 error.c_str());
    std::abort();
  }
  return spec;
}

// Runs the grid single-threaded (the benchmark measures the simulation, not
// the worker pool) and returns the number of jobs simulated.
size_t RunSpec(const SweepSpec& spec) {
  SweepRunnerOptions options;
  options.jobs = 1;
  const SweepResult result = SweepRunner(options).Run(spec);
  size_t jobs = 0;
  for (const ExperimentResult& experiment : result.experiments) {
    for (const CellResult& cell : experiment.cells) {
      jobs += cell.run.jobs.size();
    }
  }
  return jobs;
}

constexpr const char* kBenchCell = "smoke;reps=1;mixes=5;policies=dyn-aff";

// The flat baseline: same grid, no hierarchy. The gap between this and the
// topology benchmarks is the price of the tiered model itself.
void BM_TopologySweepFlat(benchmark::State& state) {
  const SweepSpec spec = BenchSpec(kBenchCell);
  size_t jobs = 0;
  for (auto _ : state) {
    jobs += RunSpec(spec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
}
BENCHMARK(BM_TopologySweepFlat)->UseRealTime();

// Two clusters sharing LLCs: every chunk also evolves the cluster LLC, and
// every reload is classified against it.
void BM_TopologySweepCmp(benchmark::State& state) {
  const SweepSpec spec = BenchSpec(std::string(kBenchCell) + ";topology=cmp-2x10");
  size_t jobs = 0;
  for (auto _ : state) {
    jobs += RunSpec(spec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
}
BENCHMARK(BM_TopologySweepCmp)->UseRealTime();

// Four NUMA nodes: LLC classification plus the last-node directory and
// remote-fill pricing on every migration.
void BM_TopologySweepNuma(benchmark::State& state) {
  const SweepSpec spec = BenchSpec(std::string(kBenchCell) + ";topology=numa-4x8");
  size_t jobs = 0;
  for (auto _ : state) {
    jobs += RunSpec(spec);
  }
  state.SetItemsProcessed(static_cast<int64_t>(jobs));
}
BENCHMARK(BM_TopologySweepNuma)->UseRealTime();

// Prints response times relative to Equipartition for the distance-aware
// policy family on each topology (the Fig-5 quantities, one table per
// machine). Run after the benchmarks so the numbers land in the same log.
void PrintPolicyComparison() {
  const std::vector<std::string> topologies = {"symmetry-flat", "cmp-2x10", "numa-4x8"};
  std::string policies;
  for (PolicyKind kind : TopologyPolicyFamily()) {
    policies += (policies.empty() ? "" : ",") + PolicyKindCliName(kind);
  }
  for (const std::string& topology : topologies) {
    const SweepSpec spec = BenchSpec("smoke;reps=2;mixes=6;policies=" + policies +
                                     ";topology=" + topology);
    SweepRunnerOptions options;
    options.jobs = 0;  // report quality, not wall time: use every core
    const SweepResult result = SweepRunner(options).Run(spec);
    TextTable table;
    table.SetHeader({"policy", "job", "mean RT (s)", "vs equi"});
    const ExperimentResult* equi = result.Find(PolicyKind::kEquipartition, 6);
    for (const ExperimentResult& experiment : result.experiments) {
      for (size_t j = 0; j < experiment.replicated.app.size(); ++j) {
        std::string ratio = "-";
        if (equi != nullptr && experiment.policy != PolicyKind::kEquipartition) {
          ratio = FormatDouble(
              experiment.replicated.MeanResponse(j) / equi->replicated.MeanResponse(j), 3);
        }
        table.AddRow({PolicyKindCliName(experiment.policy), experiment.replicated.app[j],
                      FormatDouble(experiment.replicated.MeanResponse(j), 2), ratio});
      }
    }
    std::printf("\npolicy comparison on %s (mix 6, seed %llu):\n%s", topology.c_str(),
                static_cast<unsigned long long>(spec.root_seed), table.Render().c_str());
  }
}

}  // namespace
}  // namespace affsched

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  affsched::PrintPolicyComparison();

  affsched::RunManifest manifest;
  manifest.SetString("tool", "bench_topology_sweep");
  manifest.WriteFile("run_manifest.json");
  std::printf("\nwrote run_manifest.json (git %s)\n", affsched::RunManifest::GitSha());
  return 0;
}
