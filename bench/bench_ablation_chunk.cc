// Methodology robustness: sensitivity of the headline results to the
// engine's execution-chunk quantum (the granularity at which preemption can
// take effect and cache state is updated).
//
// The simulator's conclusions should not depend on this numerical knob: the
// Figure 5 ratios for workload #5 must be stable across chunk sizes spanning
// an order of magnitude.

#include <cstdio>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/measure/experiment.h"

using namespace affsched;

int main() {
  const MachineConfig machine = PaperMachineConfig();
  const std::vector<AppProfile> apps = DefaultProfiles();
  const WorkloadMix mix{.number = 5, .mva = 0, .matrix = 1, .gravity = 1};
  const std::vector<AppProfile> jobs = mix.Expand(apps);

  std::printf("=== Methodology: chunk-quantum sensitivity (workload #5) ===\n\n");

  TextTable table;
  table.SetHeader({"chunk (ms)", "Equi MAT (s)", "Equi GRAV (s)", "Dyn/Equi MAT",
                   "Dyn/Equi GRAV"});

  for (const double chunk_ms : {0.5, 1.0, 2.0, 5.0}) {
    Engine::Options options;
    options.chunk_quantum = Milliseconds(chunk_ms);
    const RunResult equi = RunOnce(machine, PolicyKind::kEquipartition, jobs, 777, options);
    const RunResult dyn = RunOnce(machine, PolicyKind::kDynamic, jobs, 777, options);
    table.AddRow({FormatDouble(chunk_ms, 1),
                  FormatDouble(equi.jobs[0].stats.ResponseSeconds(), 2),
                  FormatDouble(equi.jobs[1].stats.ResponseSeconds(), 2),
                  FormatDouble(dyn.jobs[0].stats.ResponseSeconds() /
                                   equi.jobs[0].stats.ResponseSeconds(), 3),
                  FormatDouble(dyn.jobs[1].stats.ResponseSeconds() /
                                   equi.jobs[1].stats.ResponseSeconds(), 3)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape check: relative response times move by well under 2%% across a\n"
      "10x range of chunk quanta — the conclusions are not an artefact of\n"
      "the discretisation.\n");
  return 0;
}
