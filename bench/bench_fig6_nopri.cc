// Regenerates Figure 6: response times under Dyn-Aff-NoPri relative to
// Equipartition for every job in every mix.
//
// Paper result: in contrast to the well-behaved dynamic policies (Figure 5),
// Dyn-Aff-NoPri's relative response times are *extremely variable* across
// jobs — sacrificing the priority/fairness scheme for affinity lets some jobs
// hoard processors while others starve. This is why the paper calls it an
// artificial policy and eliminates it from consideration.

#include <algorithm>
#include <cstdio>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/measure/experiment.h"

using namespace affsched;

int main() {
  const MachineConfig machine = PaperMachineConfig();
  const std::vector<AppProfile> apps = DefaultProfiles();

  ReplicationOptions rep;
  rep.min_replications = 3;
  rep.max_replications = 5;

  std::printf("=== Figure 6: Dyn-Aff-NoPri relative to Equipartition ===\n\n");

  TextTable table;
  table.SetHeader({"mix", "job", "Equi RT (s)", "Dyn-Aff-NoPri rel."});

  double min_rel = 1e9;
  double max_rel = 0.0;
  double min_rel_fig5 = 1e9;
  double max_rel_fig5 = 0.0;

  for (const WorkloadMix& mix : PaperMixes()) {
    const std::vector<AppProfile> jobs = mix.Expand(apps);
    const ReplicatedResult equi =
        RunReplicated(machine, PolicyKind::kEquipartition, jobs, 2000 + mix.number, rep);
    const ReplicatedResult nopri =
        RunReplicated(machine, PolicyKind::kDynAffNoPri, jobs, 2000 + mix.number, rep);
    const ReplicatedResult dynaff =
        RunReplicated(machine, PolicyKind::kDynAff, jobs, 2000 + mix.number, rep);
    for (size_t j = 0; j < jobs.size(); ++j) {
      const double rel = nopri.MeanResponse(j) / equi.MeanResponse(j);
      min_rel = std::min(min_rel, rel);
      max_rel = std::max(max_rel, rel);
      const double rel5 = dynaff.MeanResponse(j) / equi.MeanResponse(j);
      min_rel_fig5 = std::min(min_rel_fig5, rel5);
      max_rel_fig5 = std::max(max_rel_fig5, rel5);
      table.AddRow({mix.Label(), equi.app[j] + " (job " + std::to_string(j) + ")",
                    FormatDouble(equi.MeanResponse(j), 1), FormatDouble(rel, 3)});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Dyn-Aff-NoPri relative-RT spread: [%.3f, %.3f] (width %.3f)\n", min_rel, max_rel,
              max_rel - min_rel);
  std::printf("Dyn-Aff       relative-RT spread: [%.3f, %.3f] (width %.3f)\n", min_rel_fig5,
              max_rel_fig5, max_rel_fig5 - min_rel_fig5);
  std::printf(
      "\nShape check vs the paper: without enforced fairness the spread of\n"
      "relative response times is much wider than under Dyn-Aff — some jobs\n"
      "win big by hoarding, others are starved.\n");
  return 0;
}
