// Ablation: history depth. Section 5.3 defines per-processor and per-task
// histories of length T and P and then evaluates only T = P = 1. This bench
// sweeps deeper histories under Dyn-Aff on workload #5 and reports what they
// buy.
//
// Expected shape: deeper histories raise the chance of *some* affine
// placement slightly, but because a cache realistically holds only ~1-2
// tasks' contexts (Table 1: a single intervening task already ejects much of
// a footprint), the extra matches carry little surviving context — %affinity
// (strict, most-recent) and response times barely move. T = P = 1 captures
// nearly all the value, which is why the paper stops there.

#include <cstdio>
#include <memory>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/engine/engine.h"
#include "src/measure/experiment.h"
#include "src/sched/dynamic.h"

using namespace affsched;

int main() {
  MachineConfig machine = PaperMachineConfig();
  const std::vector<AppProfile> apps = DefaultProfiles();
  const WorkloadMix mix{.number = 5, .mva = 0, .matrix = 1, .gravity = 1};
  const std::vector<AppProfile> jobs = mix.Expand(apps);

  std::printf("=== Ablation: affinity history depth (T = P), workload #5 ===\n\n");

  TextTable table;
  table.SetHeader({"history depth", "RT MAT (s)", "RT GRAV (s)", "%affinity MAT",
                   "%affinity GRAV", "reload stall total (s)"});

  for (const size_t depth : {1u, 2u, 4u, 8u}) {
    machine.task_history_depth = depth;
    Engine::Options options;
    options.processor_history_depth = depth;
    DynamicOptions dyn;
    dyn.use_affinity = true;
    Engine engine(machine, std::make_unique<DynamicPolicy>(dyn), 321, options);
    for (const AppProfile& job : jobs) {
      engine.SubmitJob(job);
    }
    engine.Run();
    const JobStats& mat = engine.job_stats(0);
    const JobStats& grav = engine.job_stats(1);
    table.AddRow({std::to_string(depth), FormatDouble(mat.ResponseSeconds(), 2),
                  FormatDouble(grav.ResponseSeconds(), 2),
                  FormatPercent(mat.AffinityFraction()), FormatPercent(grav.AffinityFraction()),
                  FormatDouble(mat.reload_stall_s + grav.reload_stall_s, 2)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape check: deeper histories change response times by well under 1%%\n"
      "— consistent with the paper's choice to evaluate only T = P = 1.\n");
  return 0;
}
