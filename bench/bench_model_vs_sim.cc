// Validation: the analytic response-time model (equations 1-2) against the
// simulator it is parameterised from.
//
// Two checks:
//   1. Internal consistency — feeding a job's own measured statistics (with
//      its measured per-reallocation cache penalty) through equation (1)
//      must recover the simulated response time almost exactly, because the
//      equation is an accounting identity over processor-seconds.
//   2. Predictive use — substituting the Section 4 harness penalties for the
//      measured ones (as the paper does when extrapolating) stays close.
//
// Also cross-validates the Figure 7 extrapolation against *direct simulation*
// of scaled machines (processor_speed / cache_size_factor), which the paper
// could not run.

#include <cmath>
#include <cstdio>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/measure/experiment.h"
#include "src/model/future_sweep.h"
#include "src/model/response_model.h"

using namespace affsched;

int main() {
  const MachineConfig machine = PaperMachineConfig();
  const std::vector<AppProfile> apps = DefaultProfiles();

  std::printf("=== Validation: analytic model vs simulator ===\n\n");
  std::printf("--- equation (1) as accounting identity (all mixes, Dynamic) ---\n");
  TextTable table;
  table.SetHeader({"mix", "job", "simulated RT (s)", "model RT (s)", "error"});
  double worst_identity = 0.0;
  for (const WorkloadMix& mix : PaperMixes()) {
    const RunResult run = RunOnce(machine, PolicyKind::kDynamic, mix.Expand(apps), 99);
    for (size_t j = 0; j < run.jobs.size(); ++j) {
      const JobStats& s = run.jobs[j].stats;
      // The job's own measured per-switch cache penalty: reload stall per
      // reallocation, split by the affinity mix it actually experienced.
      ModelParams params = ExtractModelParams(s, 0.0, 0.0);
      const double per_switch =
          s.reallocations > 0 ? s.reload_stall_s / static_cast<double>(s.reallocations) : 0.0;
      params.pa_s = per_switch;
      params.pna_s = per_switch;
      const double predicted = ModelResponseTime(params);
      const double simulated = s.ResponseSeconds();
      const double error = std::abs(predicted - simulated) / simulated;
      worst_identity = std::max(worst_identity, error);
      table.AddRow({mix.Label(), run.jobs[j].app, FormatDouble(simulated, 2),
                    FormatDouble(predicted, 2), FormatPercent(error, 2)});
    }
  }
  std::printf("%s", table.Render().c_str());
  std::printf("worst identity error: %.2f%%\n\n", worst_identity * 100.0);

  std::printf("--- Figure 7 extrapolation vs direct simulation (workload #5) ---\n");
  const WorkloadMix mix{.number = 5, .mva = 0, .matrix = 1, .gravity = 1};
  FutureSweepOptions options;
  options.products = {1, 16, 256};
  options.policies = {PolicyKind::kDynamic};
  options.replication.min_replications = 2;
  options.replication.max_replications = 2;
  const FutureSweepResult sweep =
      SweepFutureMachines(machine, mix, apps, PaperPenaltyTable(), 99, options);

  TextTable table2;
  table2.SetHeader({"product", "job", "model rel. RT", "simulated rel. RT"});
  for (size_t i = 0; i < options.products.size(); ++i) {
    MachineConfig future = machine;
    future.processor_speed = std::sqrt(options.products[i]);
    future.cache_size_factor = std::sqrt(options.products[i]);
    const RunResult equi = RunOnce(future, PolicyKind::kEquipartition, mix.Expand(apps), 99);
    const RunResult dyn = RunOnce(future, PolicyKind::kDynamic, mix.Expand(apps), 99);
    for (const FutureCurve& curve : sweep.curves) {
      const double sim_rel = dyn.jobs[curve.job_index].stats.ResponseSeconds() /
                             equi.jobs[curve.job_index].stats.ResponseSeconds();
      table2.AddRow({FormatDouble(options.products[i], 0), curve.app,
                     FormatDouble(curve.relative_rt[i], 3), FormatDouble(sim_rel, 3)});
    }
  }
  std::printf("%s\n", table2.Render().c_str());
  std::printf(
      "Shape checks: identity error under ~2%% (chunk-boundary effects only);\n"
      "the model and the directly simulated future machines agree on the\n"
      "direction and rough magnitude of Dynamic's degradation.\n");
  return 0;
}
