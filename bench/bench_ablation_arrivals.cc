// Ablation: an open(ish) system — jobs arriving over time rather than all at
// t = 0 (the paper's experiments start all jobs together; its policies,
// however, are explicitly designed around arrivals and departures).
//
// A staggered stream of MVA / GRAVITY / MATRIX jobs arrives over the first
// minute; we compare mean response time and fairness across policies.
// Expected: the dynamic policies' advantage persists (or grows) under churn,
// because every arrival/departure forces Equipartition to repartition wholesale
// while Dynamic adapts incrementally; fairness (Jain index over response
// times of identical jobs) stays high for priority-respecting policies.

#include <cstdio>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/engine/engine.h"
#include "src/opensys/arrival_process.h"
#include "src/sched/factory.h"
#include "src/stats/fairness.h"

using namespace affsched;

int main() {
  MachineConfig machine;
  machine.num_processors = 16;
  const std::vector<AppProfile> apps = DefaultProfiles();

  // Poisson arrivals: mostly MVA (short) with occasional GRAVITY and MATRIX,
  // plus a couple of fixed early arrivals so the system is never trivially
  // empty at the start.
  std::vector<ArrivalPlanEntry> plan = {{0, Seconds(0)}, {2, Seconds(2)}};
  for (const ArrivalPlanEntry& e : PoissonArrivals(5, Seconds(9), {3.0, 1.0, 1.0}, 2026)) {
    plan.push_back(ArrivalPlanEntry{e.app_index, e.when + Seconds(5)});
  }

  std::printf("=== Ablation: staggered arrivals (open-system behaviour) ===\n\n");
  TextTable table;
  table.SetHeader({"policy", "mean RT (s)", "mean MVA RT (s)", "Jain index (MVA jobs)",
                   "total #realloc"});

  for (PolicyKind kind : {PolicyKind::kEquipartition, PolicyKind::kDynamic, PolicyKind::kDynAff,
                          PolicyKind::kDynAffDelay}) {
    Engine engine(machine, MakePolicy(kind), 4242);
    for (const ArrivalPlanEntry& a : plan) {
      engine.SubmitJob(apps[a.app_index], a.when);
    }
    engine.Run();

    double total_rt = 0.0;
    std::vector<double> mva_rts;
    uint64_t reallocs = 0;
    for (JobId id = 0; id < engine.job_count(); ++id) {
      const double rt = engine.job_stats(id).ResponseSeconds();
      total_rt += rt;
      if (engine.job_name(id) == "MVA") {
        mva_rts.push_back(rt);
      }
      reallocs += engine.job_stats(id).reallocations;
    }
    double mva_mean = 0.0;
    for (double rt : mva_rts) {
      mva_mean += rt;
    }
    mva_mean /= static_cast<double>(mva_rts.size());

    table.AddRow({PolicyKindName(kind),
                  FormatDouble(total_rt / static_cast<double>(engine.job_count()), 2),
                  FormatDouble(mva_mean, 2), FormatDouble(JainFairnessIndex(mva_rts), 3),
                  std::to_string(reallocs)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Shape checks: dynamic policies at or below Equipartition's mean\n"
      "response time under churn; identical (MVA) jobs receive comparable\n"
      "treatment (Jain index near 1) under the priority-respecting policies.\n");
  return 0;
}
