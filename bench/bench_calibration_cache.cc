// Calibration report: the footprint cache model versus the exact
// set-associative cache, across working-set and interference regimes.
// This is the evidence behind DESIGN.md's claim that the footprint
// approximation is faithful enough to carry the scheduling experiments.

#include <cstdio>

#include <unordered_set>
#include <vector>

#include "src/cache/exact_cache.h"
#include "src/cache/footprint.h"
#include "src/common/rng.h"
#include "src/common/table.h"

using namespace affsched;

namespace {

std::vector<uint64_t> RandomBlocks(Rng& rng, size_t count) {
  std::unordered_set<uint64_t> chosen;
  std::vector<uint64_t> blocks;
  while (blocks.size() < count) {
    const uint64_t b = rng.NextBounded(1u << 24);
    if (chosen.insert(b).second) {
      blocks.push_back(b);
    }
  }
  return blocks;
}

void TouchAll(ExactCache& cache, CacheOwner owner, const std::vector<uint64_t>& blocks,
              int passes = 3) {
  for (int p = 0; p < passes; ++p) {
    for (uint64_t b : blocks) {
      cache.Access(owner, b);
    }
  }
}

}  // namespace

int main() {
  const CacheGeometry geometry{};  // Symmetry: 64 KB, 2-way, 16 B lines
  const double capacity = static_cast<double>(geometry.TotalLines());

  std::printf("=== Calibration: footprint model vs exact 2-way LRU cache ===\n");
  std::printf("(Symmetry geometry: %zu lines, %zu-way)\n\n", geometry.TotalLines(),
              geometry.ways);

  // Part 1: self-conflict occupancy cap.
  std::printf("--- occupancy cap: resident lines of a W-block working set ---\n");
  TextTable cap_table;
  cap_table.SetHeader({"W (blocks)", "exact resident", "model MaxResident", "error (% cap)"});
  FootprintCache probe(capacity, geometry.ways);
  for (size_t w : {500u, 1000u, 2000u, 3000u, 3500u, 4000u, 5000u, 6000u}) {
    Rng rng(17 + w);
    ExactCache exact(geometry);
    TouchAll(exact, 1, RandomBlocks(rng, w));
    const double exact_resident = static_cast<double>(exact.ResidentLines(1));
    const double model_resident = probe.MaxResident(static_cast<double>(w));
    cap_table.AddRow({std::to_string(w), FormatDouble(exact_resident, 0),
                      FormatDouble(model_resident, 0),
                      FormatDouble(100.0 * (model_resident - exact_resident) / capacity, 1)});
  }
  std::printf("%s\n", cap_table.Render().c_str());

  // Part 2: ejection by an intervening task.
  std::printf("--- ejection: survivors of A's footprint after B streams through ---\n");
  TextTable ej_table;
  ej_table.SetHeader({"W_A", "W_B", "exact survivors", "model survivors", "error (% cap)"});
  double worst = 0.0;
  for (const auto& [wa, wb] : std::vector<std::pair<size_t, size_t>>{
           {500, 500}, {1000, 2000}, {2000, 2000}, {3000, 1500}, {3000, 3000}, {3500, 3900}}) {
    Rng rng(0xFEEDu + wa * 131 + wb);
    const auto blocks_a = RandomBlocks(rng, wa);
    const auto blocks_b = RandomBlocks(rng, wb);
    ExactCache exact(geometry);
    TouchAll(exact, 1, blocks_a);
    const double before = static_cast<double>(exact.ResidentLines(1));
    TouchAll(exact, 2, blocks_b);
    const double exact_survivors = static_cast<double>(exact.ResidentLines(1));

    FootprintCache model(capacity, geometry.ways);
    model.SetResident(1, before);
    const WorkingSetParams ws_b{.blocks = static_cast<double>(wb),
                                .buildup_tau_s = 0.01,
                                .steady_miss_per_s = 0.0};
    model.RunChunk(2, ws_b, 1.0);
    const double model_survivors = model.Resident(1);
    const double err = 100.0 * (model_survivors - exact_survivors) / capacity;
    worst = std::max(worst, std::abs(err));
    ej_table.AddRow({std::to_string(wa), std::to_string(wb), FormatDouble(exact_survivors, 0),
                     FormatDouble(model_survivors, 0), FormatDouble(err, 1)});
  }
  std::printf("%s\n", ej_table.Render().c_str());
  std::printf("worst-case ejection error: %.1f%% of capacity (tested bound: 15%%)\n", worst);
  return 0;
}
