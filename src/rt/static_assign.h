// Static (up-front) affinity assignment for real-time workloads.
//
// Dynamic affinity policies react to where a task's footprint happens to be;
// a real-time scheduler cannot afford the resulting worst-case reload
// transient. Following the static mapping heuristics surveyed for
// communication-aware schedulers (arXiv:1312.4509), ComputeStaticAssignment
// plans once, from job profiles alone:
//
//   1. builds a communication-affinity matrix (in this workload model jobs
//      share no data, so the matrix is diagonal: a job's intra-job coherence
//      intensity — shared writes x parallelism);
//   2. orders jobs by urgency (ascending deadline, then descending
//      communication intensity) and sizes each job's processor span
//      equipartition-style, capped by its parallelism;
//   3. places each span greedily so communicating workers land on processors
//      sharing an LLC (minimum distance tier from the span seed);
//   4. optionally carves the cache colors into disjoint per-job slices sized
//      by working-set weight (>= 1 color each while colors last).
//
// The result is consumed by the rt-static-affinity / rt-color-iso policies
// (src/sched/rt_static.h).

#ifndef SRC_RT_STATIC_ASSIGN_H_
#define SRC_RT_STATIC_ASSIGN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/workload/job.h"

namespace affsched {

// Per-job facts the planner needs, extracted from SchedView or profiles.
struct RtJobInfo {
  JobId job = kInvalidJobId;
  size_t max_parallelism = 1;
  double working_set_blocks = 0.0;
  double shared_write_per_s = 0.0;
  double deadline_s = 0.0;  // 0 = best-effort
};

struct RtAssignment {
  // proc_owner[p] = job planned to own processor p (kInvalidJobId = spare).
  std::vector<JobId> proc_owner;
  // Span size per job (the policy's repartition targets).
  std::map<JobId, size_t> share;
  // Per-job color reservation; disjoint slices when colors were isolated,
  // absent entries mean "all colors".
  std::map<JobId, uint64_t> color_mask;
};

// Distance tier between two processors (SchedView::DistanceTier).
using DistanceTierFn = std::function<size_t(size_t, size_t)>;

// Symmetric communication-affinity matrix over `jobs` (indexed by position).
// Diagonal entries carry intra-job coherence intensity; off-diagonal entries
// are zero in the current workload model but kept explicit so the clustering
// below survives a cross-job communication term unchanged.
std::vector<std::vector<double>> BuildCommunicationMatrix(const std::vector<RtJobInfo>& jobs);

// Plans spans (and color slices when `isolate_colors` and num_colors > 0) for
// `jobs` on `num_processors` processors. Deterministic for a given input.
RtAssignment ComputeStaticAssignment(const std::vector<RtJobInfo>& jobs, size_t num_processors,
                                     size_t num_colors, bool isolate_colors,
                                     const DistanceTierFn& tier);

}  // namespace affsched

#endif  // SRC_RT_STATIC_ASSIGN_H_
