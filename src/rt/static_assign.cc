#include "src/rt/static_assign.h"

#include <algorithm>
#include <numeric>

#include "src/cache/partitioned.h"
#include "src/common/check.h"

namespace affsched {

std::vector<std::vector<double>> BuildCommunicationMatrix(const std::vector<RtJobInfo>& jobs) {
  const size_t n = jobs.size();
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    matrix[i][i] = jobs[i].shared_write_per_s * static_cast<double>(jobs[i].max_parallelism);
  }
  return matrix;
}

namespace {

// Planning order: urgent (deadline-bearing) jobs first by ascending deadline,
// then best-effort jobs by descending communication intensity; JobId breaks
// ties so the plan is deterministic.
std::vector<size_t> PlanningOrder(const std::vector<RtJobInfo>& jobs,
                                  const std::vector<std::vector<double>>& comm) {
  std::vector<size_t> order(jobs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const bool a_rt = jobs[a].deadline_s > 0.0;
    const bool b_rt = jobs[b].deadline_s > 0.0;
    if (a_rt != b_rt) {
      return a_rt;
    }
    if (a_rt && jobs[a].deadline_s != jobs[b].deadline_s) {
      return jobs[a].deadline_s < jobs[b].deadline_s;
    }
    if (comm[a][a] != comm[b][b]) {
      return comm[a][a] > comm[b][b];
    }
    return jobs[a].job < jobs[b].job;
  });
  return order;
}

// Equipartition-style span sizes in planning order: one processor per round,
// capped by each job's parallelism, until processors run out.
std::vector<size_t> SpanSizes(const std::vector<RtJobInfo>& jobs,
                              const std::vector<size_t>& order, size_t num_processors) {
  std::vector<size_t> span(jobs.size(), 0);
  size_t remaining = num_processors;
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (size_t idx : order) {
      if (remaining == 0) {
        break;
      }
      if (span[idx] < std::max<size_t>(1, jobs[idx].max_parallelism)) {
        ++span[idx];
        --remaining;
        progress = true;
      }
    }
  }
  return span;
}

// Disjoint color slices sized by working-set weight, >= 1 color per job while
// colors last; with more jobs than colors, jobs wrap onto single colors.
void SliceColors(const std::vector<RtJobInfo>& jobs, const std::vector<size_t>& order,
                 size_t num_colors, RtAssignment* out) {
  const size_t n = jobs.size();
  if (n >= num_colors) {
    size_t position = 0;
    for (size_t idx : order) {
      out->color_mask[jobs[idx].job] = 1ull << (position % num_colors);
      ++position;
    }
    return;
  }
  double total_weight = 0.0;
  for (const RtJobInfo& job : jobs) {
    total_weight += job.working_set_blocks > 0.0 ? job.working_set_blocks : 1.0;
  }
  std::vector<size_t> quota(n, 1);
  size_t used = n;
  for (size_t idx : order) {
    const double weight =
        jobs[idx].working_set_blocks > 0.0 ? jobs[idx].working_set_blocks : 1.0;
    const auto ideal = static_cast<size_t>(static_cast<double>(num_colors) * weight /
                                           total_weight);
    if (ideal > 1) {
      const size_t extra = std::min(ideal - 1, num_colors - used);
      quota[idx] += extra;
      used += extra;
    }
  }
  // Leftover colors (flooring) go one at a time in planning order.
  for (size_t idx : order) {
    if (used >= num_colors) {
      break;
    }
    ++quota[idx];
    ++used;
  }
  size_t next_color = 0;
  for (size_t idx : order) {
    out->color_mask[jobs[idx].job] =
        (FullColorMask(quota[idx])) << next_color;
    next_color += quota[idx];
  }
}

}  // namespace

RtAssignment ComputeStaticAssignment(const std::vector<RtJobInfo>& jobs, size_t num_processors,
                                     size_t num_colors, bool isolate_colors,
                                     const DistanceTierFn& tier) {
  RtAssignment out;
  out.proc_owner.assign(num_processors, kInvalidJobId);
  if (jobs.empty() || num_processors == 0) {
    return out;
  }

  const std::vector<std::vector<double>> comm = BuildCommunicationMatrix(jobs);
  const std::vector<size_t> order = PlanningOrder(jobs, comm);
  const std::vector<size_t> span = SpanSizes(jobs, order, num_processors);

  // Greedy placement: seed each span on the first spare processor, then grow
  // it one processor at a time toward the nearest spare (minimum distance
  // tier from the seed), so a span stays within one LLC cluster when the
  // topology has one big enough. On flat machines this degrades to
  // contiguous index ranges.
  std::vector<bool> taken(num_processors, false);
  for (size_t idx : order) {
    out.share[jobs[idx].job] = span[idx];
    if (span[idx] == 0) {
      continue;
    }
    size_t seed = num_processors;
    for (size_t p = 0; p < num_processors; ++p) {
      if (!taken[p]) {
        seed = p;
        break;
      }
    }
    if (seed == num_processors) {
      break;  // machine exhausted
    }
    taken[seed] = true;
    out.proc_owner[seed] = jobs[idx].job;
    for (size_t placed = 1; placed < span[idx]; ++placed) {
      size_t best = num_processors;
      size_t best_tier = static_cast<size_t>(-1);
      for (size_t p = 0; p < num_processors; ++p) {
        if (taken[p]) {
          continue;
        }
        const size_t t = tier ? tier(seed, p) : (seed == p ? 0 : 1);
        if (t < best_tier) {
          best_tier = t;
          best = p;
        }
      }
      if (best == num_processors) {
        break;
      }
      taken[best] = true;
      out.proc_owner[best] = jobs[idx].job;
    }
  }

  if (isolate_colors && num_colors > 0) {
    SliceColors(jobs, order, num_colors, &out);
  }
  return out;
}

}  // namespace affsched
