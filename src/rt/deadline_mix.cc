#include "src/rt/deadline_mix.h"

#include <algorithm>

namespace affsched {

namespace {

struct MixEntry {
  const char* name;
  // Slack factors applied alternately (index parity); equal for pure mixes.
  double slack_even;
  double slack_odd;
  bool hard_even;
  bool hard_odd;
};

// Soft mixes leave headroom for scheduling noise, hard mixes little; the
// tight mix is infeasible by construction (slack < 1 of the *ideal* makespan)
// so every completion is tardy.
constexpr MixEntry kMixes[] = {
    {"soft", 1.6, 1.6, false, false},
    {"hard", 1.25, 1.25, true, true},
    {"mixed", 1.25, 1.6, true, false},
    {"tight", 0.5, 0.5, true, true},
};

const MixEntry* FindMix(const std::string& name) {
  for (const MixEntry& entry : kMixes) {
    if (name == entry.name) {
      return &entry;
    }
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> DeadlineMixNames() {
  std::vector<std::string> names;
  for (const MixEntry& entry : kMixes) {
    names.emplace_back(entry.name);
  }
  return names;
}

bool IsDeadlineMix(const std::string& name) { return FindMix(name) != nullptr; }

bool ApplyDeadlineMix(const std::string& mix, size_t num_processors,
                      std::vector<AppProfile>* profiles, std::string* error) {
  const MixEntry* entry = FindMix(mix);
  if (entry == nullptr) {
    if (error != nullptr) {
      *error = "unknown deadline mix '" + mix + "' (expected soft|hard|mixed|tight)";
    }
    return false;
  }
  if (profiles == nullptr || profiles->empty()) {
    return true;
  }
  // The share each job can count on under an equipartition-style policy.
  const size_t share = std::max<size_t>(1, num_processors / profiles->size());
  for (size_t i = 0; i < profiles->size(); ++i) {
    AppProfile& profile = (*profiles)[i];
    if (profile.expected_work_s <= 0.0) {
      continue;  // no work estimate, stays best-effort
    }
    const size_t width = std::max<size_t>(1, std::min(profile.max_parallelism, share));
    const double ideal_s = profile.expected_work_s / static_cast<double>(width);
    const bool odd = (i % 2) != 0;
    const double slack = odd ? entry->slack_odd : entry->slack_even;
    profile.rt.wcet_s = ideal_s;
    profile.rt.deadline_s = slack * ideal_s;
    profile.rt.period_s = profile.rt.deadline_s;
    profile.rt.hard = odd ? entry->hard_odd : entry->hard_even;
  }
  return true;
}

}  // namespace affsched
