// Named deadline mixes: how an rt sweep turns a plain application mix into a
// deadline-bearing one.
//
// A mix stamps RtParams onto every profile from two machine-level facts — the
// job's expected useful work and the processor share it can count on — so the
// same application set can be run as soft, hard, or mixed real-time load
// without new workload definitions. The "tight" mix (slack < 1) is a
// guaranteed-miss fixture for exercising the miss-accounting path.

#ifndef SRC_RT_DEADLINE_MIX_H_
#define SRC_RT_DEADLINE_MIX_H_

#include <string>
#include <vector>

#include "src/workload/app_profile.h"

namespace affsched {

// The mixes ApplyDeadlineMix accepts: "soft", "hard", "mixed", "tight".
std::vector<std::string> DeadlineMixNames();

bool IsDeadlineMix(const std::string& name);

// Stamps RtParams onto every profile in `profiles`. The relative deadline is
// slack x the job's ideal makespan on its equipartition share of
// `num_processors` (soft 1.6, hard 1.25, mixed alternating, tight 0.5); the
// WCET estimate is that ideal makespan and the period equals the deadline.
// Profiles with no expected_work_s estimate are left best-effort. Returns
// false (and sets *error when non-null) on an unknown mix name.
bool ApplyDeadlineMix(const std::string& mix, size_t num_processors,
                      std::vector<AppProfile>* profiles, std::string* error = nullptr);

}  // namespace affsched

#endif  // SRC_RT_DEADLINE_MIX_H_
