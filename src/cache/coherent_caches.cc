#include "src/cache/coherent_caches.h"

#include "src/common/check.h"

namespace affsched {

CoherentCaches::CoherentCaches(size_t num_caches, const CacheGeometry& geometry)
    : geometry_(geometry) {
  AFF_CHECK(num_caches >= 1);
  AFF_CHECK(num_caches <= 64);  // sharer bitmask width
  caches_.reserve(num_caches);
  for (size_t i = 0; i < num_caches; ++i) {
    caches_.push_back(std::make_unique<ExactCache>(geometry));
  }
}

void CoherentCaches::NoteEviction(size_t cache_index, CacheOwner owner, uint64_t block) {
  auto it = directory_.find(Key{owner, block});
  if (it == directory_.end()) {
    return;
  }
  LineState& state = it->second;
  state.sharers &= ~(1ull << cache_index);
  if (state.dirty_cache == static_cast<int>(cache_index)) {
    // Copy-back of the dirty line to memory.
    state.dirty_cache = -1;
    ++total_bus_transfers_;
  }
  if (state.sharers == 0) {
    directory_.erase(it);
  }
}

CoherentCaches::AccessResult CoherentCaches::Access(size_t cache_index, CacheOwner owner,
                                                    uint64_t block, AccessType type) {
  AFF_CHECK(cache_index < caches_.size());
  AccessResult result;
  LineState& state = directory_[Key{owner, block}];
  const uint64_t self_bit = 1ull << cache_index;

  const bool locally_resident = (state.sharers & self_bit) != 0;
  result.hit = locally_resident && (type == AccessType::kRead ||
                                    state.dirty_cache == static_cast<int>(cache_index) ||
                                    state.sharers == self_bit);

  if (type == AccessType::kWrite) {
    // Invalidate every other sharer.
    for (size_t c = 0; c < caches_.size(); ++c) {
      if (c == cache_index || (state.sharers & (1ull << c)) == 0) {
        continue;
      }
      const bool was_resident = caches_[c]->InvalidateBlock(owner, block);
      AFF_CHECK(was_resident);
      state.sharers &= ~(1ull << c);
      ++result.remote_invalidations;
      ++total_invalidations_;
    }
    state.dirty_cache = static_cast<int>(cache_index);
  } else if (state.dirty_cache >= 0 && state.dirty_cache != static_cast<int>(cache_index)) {
    // Another cache holds the only valid copy: it supplies the data and the
    // line becomes clean-shared.
    result.dirty_supply = true;
    ++total_dirty_supplies_;
    ++total_bus_transfers_;
    state.dirty_cache = -1;
  }

  if (!locally_resident) {
    // Fill the local cache; the fill may evict another line, which must be
    // reflected in the directory.
    const ExactCache::AccessResult fill = caches_[cache_index]->Access(owner, block);
    AFF_CHECK(!fill.hit);
    ++total_bus_transfers_;
    if (fill.evicted_owner != kNoOwner) {
      NoteEviction(cache_index, fill.evicted_owner, fill.evicted_block);
    }
    state.sharers = directory_[Key{owner, block}].sharers | self_bit;
    directory_[Key{owner, block}].sharers = state.sharers;
    if (type == AccessType::kWrite) {
      directory_[Key{owner, block}].dirty_cache = static_cast<int>(cache_index);
    }
  } else {
    // Refresh LRU recency in the local cache.
    const ExactCache::AccessResult touch = caches_[cache_index]->Access(owner, block);
    AFF_CHECK(touch.hit);
  }
  return result;
}

bool CoherentCaches::ResidentIn(size_t cache_index, CacheOwner owner, uint64_t block) const {
  AFF_CHECK(cache_index < caches_.size());
  return caches_[cache_index]->Contains(owner, block);
}

size_t CoherentCaches::SharerCount(CacheOwner owner, uint64_t block) const {
  auto it = directory_.find(Key{owner, block});
  if (it == directory_.end()) {
    return 0;
  }
  size_t count = 0;
  for (uint64_t mask = it->second.sharers; mask != 0; mask &= mask - 1) {
    ++count;
  }
  return count;
}

bool CoherentCaches::DirtyIn(size_t cache_index, CacheOwner owner, uint64_t block) const {
  auto it = directory_.find(Key{owner, block});
  return it != directory_.end() && it->second.dirty_cache == static_cast<int>(cache_index);
}

bool CoherentCaches::CheckConsistency() const {
  for (const auto& [key, state] : directory_) {
    for (size_t c = 0; c < caches_.size(); ++c) {
      const bool directory_says = (state.sharers & (1ull << c)) != 0;
      const bool cache_says = caches_[c]->Contains(key.first, key.second);
      if (directory_says != cache_says) {
        return false;
      }
    }
    if (state.dirty_cache >= 0 &&
        (state.sharers & (1ull << static_cast<size_t>(state.dirty_cache))) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace affsched
