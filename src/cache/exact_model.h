// CacheModel backed by the exact per-line set-associative simulation.
//
// Realises the same statistical workload model the analytic FootprintCache
// integrates in closed form, but reference by reference against ExactCache:
//
//   * Working-set references are drawn uniformly from each owner's working
//     set of W blocks at rate W / tau per second of useful execution — the
//     rate at which the analytic buildup curve u(d) = W(1 - exp(-d/tau))
//     touches distinct blocks. Misses among them are reload misses.
//   * Steady-state misses are realised as accesses to a never-reused
//     sequential block region (compulsory misses), steady_miss_per_s per
//     second. They occupy lines, so they exert the same eviction pressure on
//     other owners that the footprint model's decay term approximates.
//
// Reference streams are per owner, seeded deterministically from the model
// seed and the owner id, so trajectories are reproducible regardless of the
// order owners first appear. This model is orders of magnitude slower than
// FootprintCache; it exists so scheduling experiments can be cross-checked
// on the exact substrate (tests/cache/cache_model_test.cc, and
// MachineConfig::cache_model = CacheModelKind::kExact).

#ifndef SRC_CACHE_EXACT_MODEL_H_
#define SRC_CACHE_EXACT_MODEL_H_

#include <cstdint>
#include <unordered_map>

#include "src/cache/cache_model.h"
#include "src/cache/geometry.h"
#include "src/cache/refstream.h"

namespace affsched {

class ExactCacheModel final : public CacheModel {
 public:
  ExactCacheModel(const CacheGeometry& geometry, uint64_t seed);

  CacheChunkResult RunChunk(CacheOwner owner, const WorkingSetParams& ws,
                            double seconds) override;
  double Resident(CacheOwner owner) const override;
  double Occupied() const override;
  double capacity() const override;
  double MaxResident(double blocks) const override;
  void Flush() override;
  void EjectFraction(CacheOwner owner, double fraction) override;
  void EjectBlocks(CacheOwner owner, double blocks) override;
  void ReplaceOwnerData(CacheOwner owner, double keep_fraction) override;
  void RemoveOwner(CacheOwner owner) override;

  const ExactCache& exact_cache() const { return cache_; }

 private:
  struct OwnerState {
    ReferenceStream stream;
    // Fractional references carried across chunks so non-integral per-chunk
    // reference counts do not bias long-run rates.
    double ws_ref_debt = 0.0;
    double stream_debt = 0.0;
    uint64_t next_fresh_block = 0;
  };

  OwnerState& StateFor(CacheOwner owner, const WorkingSetParams& ws);

  // Invalidates up to `target` of `owner`'s resident lines, walking its
  // working set (then its streaming region is left to natural eviction).
  void InvalidateSome(CacheOwner owner, size_t target);

  CacheGeometry geometry_;
  uint64_t seed_;
  ExactCache cache_;
  std::unordered_map<CacheOwner, OwnerState> owners_;
};

}  // namespace affsched

#endif  // SRC_CACHE_EXACT_MODEL_H_
