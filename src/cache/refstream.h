// Synthetic memory-reference streams.
//
// Drives the exact set-associative cache with per-reference address streams
// that realise the same statistical model the footprint cache uses
// analytically:
//   * a working set of W distinct blocks, each reference drawn uniformly
//     from it — so the number of distinct blocks touched in n references is
//     W(1 - (1 - 1/W)^n) ~ W(1 - e^(-n/W)): the exponential working-set
//     buildup curve, with time constant tau = W / rate;
//   * a streaming component: with probability `streaming_fraction` a
//     reference goes to a fresh block outside the working set (compulsory
//     miss), realising the steady-state miss rate;
//   * thread turnover: TurnOver(keep) replaces (1-keep) of the working set,
//     modelling a worker picking up its next user-level thread.
//
// Used by the Section 4 "exact" harness (src/measure/section4_exact.h) to
// cross-validate the footprint-based Table 1 measurements reference by
// reference.

#ifndef SRC_CACHE_REFSTREAM_H_
#define SRC_CACHE_REFSTREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace affsched {

struct ReferenceStreamParams {
  // Working-set size, in cache blocks.
  size_t working_set_blocks = 2000;
  // Probability that a reference streams to a fresh, never-reused block.
  double streaming_fraction = 0.0;
  // Size of the block address space fresh blocks are drawn from.
  uint64_t address_space_blocks = 1ull << 40;
};

class ReferenceStream {
 public:
  ReferenceStream(const ReferenceStreamParams& params, uint64_t seed);

  // Next block address to reference.
  uint64_t Next();

  // Replaces (1 - keep_fraction) of the working set with fresh blocks.
  void TurnOver(double keep_fraction);

  const std::vector<uint64_t>& working_set() const { return working_set_; }

 private:
  uint64_t RandomWorkingBlock();
  uint64_t FreshBlock();

  ReferenceStreamParams params_;
  Rng rng_;
  std::vector<uint64_t> working_set_;
  uint64_t next_fresh_ = 0;  // sequential region for streaming references
};

}  // namespace affsched

#endif  // SRC_CACHE_REFSTREAM_H_
