#include "src/cache/exact_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace affsched {
namespace {

// Streaming (steady-state miss) references go to a per-owner sequential
// region far above any working-set address, so they never collide with
// working-set blocks and are compulsory misses by construction.
constexpr uint64_t kFreshRegionBase = 1ull << 62;

ReferenceStreamParams StreamParams(const WorkingSetParams& ws) {
  ReferenceStreamParams params;
  params.working_set_blocks = static_cast<size_t>(std::llround(std::max(1.0, ws.blocks)));
  params.streaming_fraction = 0.0;  // steady misses are realised separately
  return params;
}

}  // namespace

ExactCacheModel::ExactCacheModel(const CacheGeometry& geometry, uint64_t seed)
    : geometry_(geometry), seed_(seed), cache_(geometry) {}

ExactCacheModel::OwnerState& ExactCacheModel::StateFor(CacheOwner owner,
                                                       const WorkingSetParams& ws) {
  auto it = owners_.find(owner);
  if (it == owners_.end()) {
    // Seed from (model seed, owner) so the stream is independent of the order
    // in which owners first run — deterministic across scheduling policies.
    uint64_t state = seed_ ^ owner * 0x9e3779b97f4a7c15ull;
    const uint64_t stream_seed = SplitMix64(state);
    it = owners_
             .emplace(owner, OwnerState{ReferenceStream(StreamParams(ws), stream_seed),
                                        0.0, 0.0, 0})
             .first;
  }
  return it->second;
}

CacheChunkResult ExactCacheModel::RunChunk(CacheOwner owner, const WorkingSetParams& ws,
                                           double seconds) {
  AFF_CHECK(owner != kNoOwner);
  AFF_CHECK(seconds >= 0.0);
  CacheChunkResult result;
  if (seconds == 0.0) {
    return result;
  }
  OwnerState& state = StateFor(owner, ws);

  // u(d) = W(1 - exp(-d/tau)) is the distinct-block count of n = W d / tau
  // uniform draws from the working set, so the reference rate is W / tau.
  const double ws_rate =
      ws.buildup_tau_s > 0.0 ? ws.blocks / ws.buildup_tau_s : 0.0;
  state.ws_ref_debt += ws_rate * seconds;
  auto refs = static_cast<uint64_t>(state.ws_ref_debt);
  state.ws_ref_debt -= static_cast<double>(refs);
  for (uint64_t i = 0; i < refs; ++i) {
    if (!cache_.Access(owner, state.stream.Next()).hit) {
      result.reload_misses += 1.0;
    }
  }

  state.stream_debt += ws.steady_miss_per_s * seconds;
  auto fresh = static_cast<uint64_t>(state.stream_debt);
  state.stream_debt -= static_cast<double>(fresh);
  for (uint64_t i = 0; i < fresh; ++i) {
    cache_.Access(owner, kFreshRegionBase + state.next_fresh_block++);
    result.steady_misses += 1.0;
  }
  return result;
}

double ExactCacheModel::Resident(CacheOwner owner) const {
  return static_cast<double>(cache_.ResidentLines(owner));
}

double ExactCacheModel::Occupied() const {
  return static_cast<double>(cache_.OccupiedLines());
}

double ExactCacheModel::capacity() const {
  return static_cast<double>(geometry_.TotalLines());
}

double ExactCacheModel::MaxResident(double blocks) const {
  return ExpectedMaxResident(capacity(), geometry_.ways, blocks);
}

void ExactCacheModel::Flush() { cache_.Flush(); }

void ExactCacheModel::InvalidateSome(CacheOwner owner, size_t target) {
  if (target == 0) {
    return;
  }
  auto it = owners_.find(owner);
  if (it == owners_.end()) {
    return;
  }
  size_t removed = 0;
  for (const uint64_t block : it->second.stream.working_set()) {
    if (removed >= target) {
      return;
    }
    if (cache_.InvalidateBlock(owner, block)) {
      ++removed;
    }
  }
  // Remaining invalidations fall on the streaming region (most recent first,
  // as those are the lines still likely resident).
  uint64_t fresh = it->second.next_fresh_block;
  while (removed < target && fresh > 0) {
    --fresh;
    if (cache_.InvalidateBlock(owner, kFreshRegionBase + fresh)) {
      ++removed;
    }
  }
}

void ExactCacheModel::EjectFraction(CacheOwner owner, double fraction) {
  AFF_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const double resident = Resident(owner);
  InvalidateSome(owner, static_cast<size_t>(std::llround(resident * fraction)));
}

void ExactCacheModel::EjectBlocks(CacheOwner owner, double blocks) {
  AFF_CHECK(blocks >= 0.0);
  const double resident = Resident(owner);
  InvalidateSome(owner,
                 static_cast<size_t>(std::llround(std::min(blocks, resident))));
}

void ExactCacheModel::ReplaceOwnerData(CacheOwner owner, double keep_fraction) {
  AFF_CHECK(keep_fraction >= 0.0 && keep_fraction <= 1.0);
  auto it = owners_.find(owner);
  if (it == owners_.end()) {
    return;
  }
  // The next thread reuses keep_fraction of the working set; replaced blocks
  // are dead data, so invalidate any of their lines still resident.
  std::vector<uint64_t> before = it->second.stream.working_set();
  it->second.stream.TurnOver(keep_fraction);
  const std::vector<uint64_t>& ws = it->second.stream.working_set();
  const std::unordered_set<uint64_t> kept(ws.begin(), ws.end());
  for (const uint64_t block : before) {
    if (kept.find(block) == kept.end()) {
      cache_.InvalidateBlock(owner, block);
    }
  }
}

void ExactCacheModel::RemoveOwner(CacheOwner owner) {
  cache_.InvalidateOwner(owner);
  owners_.erase(owner);
}

}  // namespace affsched
