// Shared-bus contention model.
//
// The Symmetry's processors share a single bus to memory; heavy miss traffic
// from any processor lengthens everyone's miss service time. We track bus
// busy time in an exponentially-decaying window and inflate miss service by a
// capped M/M/1-style factor 1/(1-U). Section 2 of the paper notes that
// contention folds into the `work` term of the response-time model — in our
// simulator it folds in the same way, by lengthening chunk wall time.

#ifndef SRC_CACHE_BUS_H_
#define SRC_CACHE_BUS_H_

#include "src/common/time.h"

namespace affsched {

class SharedBus {
 public:
  struct Config {
    // Bus occupancy per block transfer (part of the 0.75 us miss service).
    double transfer_seconds = 0.45e-6;
    // Averaging window for utilisation.
    double window_seconds = 10e-3;
    // Cap on the service-time inflation factor.
    double max_inflation = 4.0;
  };

  explicit SharedBus(const Config& config);
  SharedBus() : SharedBus(Config{}) {}

  // Records `misses` block transfers occurring around time `now`.
  void RecordTraffic(SimTime now, double misses);

  // Estimated bus utilisation in [0, 1).
  double Utilization(SimTime now);

  // Read-only utilisation estimate at `now` (>= last update). Used by
  // telemetry probes: unlike Utilization it does not advance the decay
  // state, so sampling cannot perturb the simulated trajectory.
  double UtilizationAt(SimTime now) const;

  // Multiplier applied to the uncontended miss service time.
  double InflationFactor(SimTime now);

  const Config& config() const { return config_; }

  // Lifetime contention counters (never decayed): block transfers recorded,
  // and the highest utilisation seen at any RecordTraffic call. Exported to
  // the metrics registry by the engine at end of run.
  double total_transfers() const { return total_transfers_; }
  double peak_utilization() const { return peak_utilization_; }

 private:
  void DecayTo(SimTime now);

  Config config_;
  SimTime last_update_ = 0;
  // Accumulated busy seconds, exponentially decayed with the window constant.
  double window_busy_seconds_ = 0.0;
  double total_transfers_ = 0.0;
  double peak_utilization_ = 0.0;
};

}  // namespace affsched

#endif  // SRC_CACHE_BUS_H_
