// Partitioned (colored) cache model — the third substrate behind the
// CacheModel seam, alongside the analytic footprint model and the exact
// per-line simulation.
//
// The cache is divided into `num_colors` equal page-color slices (1..64) and
// every owner carries a reservation mask of the colors it may occupy. The
// working-set dynamics inside a reservation are exactly FootprintCache's —
// buildup curve, set-associative residency cap, random-replacement ejection —
// but evaluated against the *reserved* capacity only:
//
//   * An owner's effective working set is capped by the capacity of its
//     reserved colors, so a tight reservation trades steady-state capacity
//     misses for reload isolation.
//   * Insertions evict only on the colors the insertion can land in. Owners
//     whose reservations are disjoint from the running owner's are untouched
//     — that is the isolation guarantee the rt-color-iso policy buys — while
//     owners sharing colors are charged *interference evictions* explicitly,
//     proportional to the share of their footprint sitting on the contested
//     colors.
//   * A reservation of zero colors is legal and models a job scheduled with
//     no cache allocation at all: every touched block misses (always-cold),
//     nothing becomes resident, and no other owner is disturbed.
//
// With one color and all-ones masks the model reduces term-for-term to
// FootprintCache (pinned by tests/cache/partitioned_test.cc), so the
// partitioned substrate is a strict generalisation of the flat one.

#ifndef SRC_CACHE_PARTITIONED_H_
#define SRC_CACHE_PARTITIONED_H_

#include <cstdint>
#include <unordered_map>

#include "src/cache/cache_model.h"

namespace affsched {

// A set of reserved cache colors, one bit per color (bit i = color i).
using ColorMask = uint64_t;

inline constexpr ColorMask kAllColors = ~0ull;

// The mask of the first `num_colors` colors.
constexpr ColorMask FullColorMask(size_t num_colors) {
  return num_colors >= 64 ? kAllColors : ((1ull << num_colors) - 1);
}

class PartitionedCacheModel final : public CacheModel {
 public:
  PartitionedCacheModel(double capacity_blocks, size_t ways, size_t num_colors);

  // --- Color reservations ---------------------------------------------------

  // Reserves the colors in `mask` (trimmed to the machine's color count) for
  // `owner`. Owners without an explicit reservation default to all colors,
  // which makes the substrate behave like a (coarser-grained) FootprintCache.
  void ReserveColors(CacheOwner owner, ColorMask mask);

  ColorMask ReservedColors(CacheOwner owner) const;

  size_t num_colors() const { return num_colors_; }

  // Capacity of one color slice, in blocks.
  double ColorCapacity() const { return capacity_ / static_cast<double>(num_colors_); }

  // Capacity of a reservation, in blocks.
  double ReservedCapacity(ColorMask mask) const;

  // --- Interference accounting ---------------------------------------------

  // Total blocks evicted from owners *other* than the running one by chunk
  // insertions on shared colors, since construction — the quantity color
  // isolation drives to zero.
  double interference_evictions() const { return interference_evictions_; }

  // Interference evictions suffered by one owner.
  double InterferenceOn(CacheOwner owner) const;

  // --- CacheModel -----------------------------------------------------------

  CacheChunkResult RunChunk(CacheOwner owner, const WorkingSetParams& ws,
                            double seconds) override;
  double Resident(CacheOwner owner) const override;
  double Occupied() const override { return occupied_; }
  double capacity() const override { return capacity_; }
  // Full-cache residency cap (reservation-independent), so policy-side reload
  // scoring is comparable across owners with different reservations.
  double MaxResident(double blocks) const override;
  void Flush() override;
  void EjectFraction(CacheOwner owner, double fraction) override;
  void EjectBlocks(CacheOwner owner, double blocks) override;
  void ReplaceOwnerData(CacheOwner owner, double keep_fraction) override;
  void RemoveOwner(CacheOwner owner) override;

  // Test hook: force a resident footprint.
  void SetResident(CacheOwner owner, double blocks);

 private:
  void SetResidentInternal(CacheOwner owner, double blocks);

  double capacity_;
  size_t ways_;
  size_t num_colors_;
  double occupied_ = 0.0;
  double interference_evictions_ = 0.0;
  std::unordered_map<CacheOwner, double> resident_;
  std::unordered_map<CacheOwner, ColorMask> reserved_;
  std::unordered_map<CacheOwner, double> interference_on_;
};

}  // namespace affsched

#endif  // SRC_CACHE_PARTITIONED_H_
