// Exact set-associative cache simulation.
//
// Each line is tagged with (owner, block). "Owner" identifies a task's address
// space, so two tasks never hit on each other's lines — the behaviour of a
// multiprogrammed machine with per-process virtual addressing. LRU replacement
// within each set.
//
// This model is reference-accurate but too slow to drive multi-second
// scheduling experiments; the experiments use FootprintCache (footprint.h),
// whose ejection dynamics are validated against this class in tests and in
// bench_calibration_cache.

#ifndef SRC_CACHE_EXACT_CACHE_H_
#define SRC_CACHE_EXACT_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cache/geometry.h"

namespace affsched {

// Identifies the address space a cache line belongs to.
using CacheOwner = uint64_t;
inline constexpr CacheOwner kNoOwner = 0;

class ExactCache {
 public:
  explicit ExactCache(const CacheGeometry& geometry);

  struct AccessResult {
    bool hit = false;
    // Line evicted to make room (owner == kNoOwner if none was).
    CacheOwner evicted_owner = kNoOwner;
    uint64_t evicted_block = 0;
  };

  // Accesses block `block` of `owner`'s address space; fills on miss.
  AccessResult Access(CacheOwner owner, uint64_t block);

  // True if the block is currently resident (no state change).
  bool Contains(CacheOwner owner, uint64_t block) const;

  // Invalidates one specific line if present (a remote write under an
  // invalidation-based coherency protocol). Returns true if it was resident.
  bool InvalidateBlock(CacheOwner owner, uint64_t block);

  // Invalidates every line belonging to `owner`. Returns lines invalidated.
  size_t InvalidateOwner(CacheOwner owner);

  // Invalidates the whole cache.
  void Flush();

  // Number of lines currently held by `owner` (maintained incrementally).
  size_t ResidentLines(CacheOwner owner) const;

  size_t OccupiedLines() const { return occupied_; }
  const CacheGeometry& geometry() const { return geometry_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  // Lines removed by InvalidateBlock/InvalidateOwner/Flush — the cache's
  // share of invalidation traffic (exported via telemetry/cache_metrics).
  uint64_t invalidated_lines() const { return invalidated_lines_; }
  void ResetCounters();

 private:
  struct Line {
    CacheOwner owner = kNoOwner;
    uint64_t block = 0;
    uint64_t lru_stamp = 0;  // larger = more recently used
  };

  size_t SetIndex(uint64_t block) const { return block % geometry_.NumSets(); }
  Line* FindLine(CacheOwner owner, uint64_t block);
  const Line* FindLine(CacheOwner owner, uint64_t block) const;

  CacheGeometry geometry_;
  // lines_[set * ways + way]
  std::vector<Line> lines_;
  std::unordered_map<CacheOwner, size_t> resident_;
  size_t occupied_ = 0;
  uint64_t stamp_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t invalidated_lines_ = 0;
};

}  // namespace affsched

#endif  // SRC_CACHE_EXACT_CACHE_H_
