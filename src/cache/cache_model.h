// CacheModel: the seam between the simulated machine and its per-processor
// cache substrate.
//
// The scheduling experiments only ever talk to a cache through this
// interface: run a chunk of useful execution and report reload vs.
// steady-state misses, query/erode a task's resident footprint, and model
// thread turnover. Two interchangeable implementations exist:
//
//   * FootprintCache (footprint.h) — the analytic working-set model the
//     paper-scale experiments run on (closed-form buildup/ejection, O(#owners)
//     per chunk);
//   * ExactCacheModel (exact_model.h) — the exact per-line set-associative
//     simulation driven by synthetic reference streams, used to validate the
//     analytic model end-to-end on the same machine plumbing.
//
// MachineConfig::cache_model selects the implementation per run.

#ifndef SRC_CACHE_CACHE_MODEL_H_
#define SRC_CACHE_CACHE_MODEL_H_

#include <cstddef>

#include "src/cache/exact_cache.h"

namespace affsched {

// Cache-behaviour parameters of one task (one worker of an application).
struct WorkingSetParams {
  // Maximum working set, in cache blocks.
  double blocks = 0.0;
  // Time constant (seconds) of working-set buildup: u(d) = W(1-exp(-d/theta)).
  double buildup_tau_s = 0.05;
  // Steady-state miss rate, misses per second of useful execution.
  double steady_miss_per_s = 0.0;
  // Writes per second to data shared with sibling workers of the same job.
  // Under the Symmetry's invalidation-based coherency protocol each such
  // write invalidates the line in every other cache holding it, eroding
  // sibling workers' footprints (and later costing them reload misses).
  double shared_write_per_s = 0.0;
};

// Misses incurred by one chunk of useful execution, split into the paper's
// two categories: reload misses (rebuilding a footprint that was ejected or
// left on another processor — the affinity penalty) and steady-state misses
// (the application's own capacity/conflict/coherence misses).
struct CacheChunkResult {
  double reload_misses = 0.0;
  double steady_misses = 0.0;
  // Hierarchical topologies further classify the reload misses by source
  // (src/topology/hier_cache.h); flat models leave both at zero.
  //   * reload_llc_hits: served by the cluster-shared LLC (cheap refill)
  //   * reload_remote: fetched across the node interconnect (costly refill)
  // Invariant: reload_llc_hits + reload_remote <= reload_misses; the
  // remainder fills from local memory at the flat machine's cost.
  double reload_llc_hits = 0.0;
  double reload_remote = 0.0;
  double TotalMisses() const { return reload_misses + steady_misses; }
};

// Expected maximum resident footprint of a working set of `blocks` distinct
// blocks in a cache of `capacity_blocks` lines organised `ways`-associative:
// with random set placement the number of the task's blocks mapping to one
// set is ~Poisson(blocks/sets) and at most `ways` can be resident, so the cap
// is sets x E[min(K, ways)]. Shared by both cache models.
double ExpectedMaxResident(double capacity_blocks, size_t ways, double blocks);

class CacheModel {
 public:
  virtual ~CacheModel() = default;

  // Evolves the cache as `owner` executes for `seconds` of useful time.
  virtual CacheChunkResult RunChunk(CacheOwner owner, const WorkingSetParams& ws,
                                    double seconds) = 0;

  // Current resident footprint of `owner`, in blocks.
  virtual double Resident(CacheOwner owner) const = 0;

  // Total resident blocks across owners.
  virtual double Occupied() const = 0;

  virtual double capacity() const = 0;

  // Maximum resident footprint a working set of `blocks` can achieve here
  // (set-associative self-conflict cap).
  virtual double MaxResident(double blocks) const = 0;

  // Invalidates the entire cache (the Section 4 "migrating" treatment).
  virtual void Flush() = 0;

  // Removes `fraction` (in [0,1]) of `owner`'s footprint.
  virtual void EjectFraction(CacheOwner owner, double fraction) = 0;

  // Removes up to `blocks` of `owner`'s footprint (coherence invalidations
  // arriving from another processor's cache).
  virtual void EjectBlocks(CacheOwner owner, double blocks) = 0;

  // Models thread turnover within a worker: the next thread reuses only
  // `keep_fraction` of the worker's current data; the rest is dead and its
  // lines are released.
  virtual void ReplaceOwnerData(CacheOwner owner, double keep_fraction) = 0;

  // Removes all state for `owner` (task exit).
  virtual void RemoveOwner(CacheOwner owner) = 0;
};

}  // namespace affsched

#endif  // SRC_CACHE_CACHE_MODEL_H_
