#include "src/cache/footprint.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace affsched {

FootprintCache::FootprintCache(double capacity_blocks, size_t ways)
    : capacity_(capacity_blocks), ways_(ways) {
  AFF_CHECK(capacity_ > 0.0);
  AFF_CHECK(ways_ >= 1);
}

double FootprintCache::MaxResident(double blocks) const {
  return ExpectedMaxResident(capacity_, ways_, blocks);
}

double FootprintCache::Resident(CacheOwner owner) const {
  auto it = resident_.find(owner);
  return it == resident_.end() ? 0.0 : it->second;
}

void FootprintCache::SetResidentInternal(CacheOwner owner, double blocks) {
  auto it = resident_.find(owner);
  const double old = it == resident_.end() ? 0.0 : it->second;
  occupied_ += blocks - old;
  if (blocks <= 0.0) {
    if (it != resident_.end()) {
      resident_.erase(it);
    }
  } else if (it == resident_.end()) {
    resident_.emplace(owner, blocks);
  } else {
    it->second = blocks;
  }
}

void FootprintCache::SetResident(CacheOwner owner, double blocks) {
  AFF_CHECK(blocks >= 0.0 && blocks <= capacity_);
  SetResidentInternal(owner, blocks);
}

FootprintCache::ChunkResult FootprintCache::RunChunk(CacheOwner owner,
                                                     const WorkingSetParams& ws,
                                                     double seconds) {
  AFF_CHECK(owner != kNoOwner);
  AFF_CHECK(seconds >= 0.0);
  ChunkResult result;
  if (seconds == 0.0) {
    return result;
  }

  const double w_eff = MaxResident(ws.blocks);
  const double f = Resident(owner);
  const double touch_fraction =
      ws.buildup_tau_s > 0.0 ? 1.0 - std::exp(-seconds / ws.buildup_tau_s) : 1.0;
  result.reload_misses = std::max(0.0, (w_eff - f) * touch_fraction);
  result.steady_misses = ws.steady_miss_per_s * seconds;

  // Every insertion lands in a (set-associatively constrained) location that
  // may hold another task's line, so other owners' footprints decay by
  // (1 - 1/C) per insertion even when the cache is not globally full. This
  // random-replacement approximation tracks the exact 2-way LRU cache far
  // better than a "fill free lines first" model, which both under-ejects in
  // mid regimes (set conflicts evict despite global free space) and
  // over-ejects in saturated ones (a streaming task also evicts its own
  // lines). Validated in tests/cache/footprint_vs_exact_test.cc. The running
  // task's own recent blocks are MRU and modelled as protected.
  const double new_self = std::min(w_eff, f + result.reload_misses);
  const double evicting = result.reload_misses + result.steady_misses;
  if (evicting > 0.0 && !resident_.empty()) {
    const double survival = std::pow(1.0 - 1.0 / capacity_, evicting);
    double others = 0.0;
    for (auto it = resident_.begin(); it != resident_.end();) {
      if (it->first == owner) {
        ++it;
        continue;
      }
      it->second *= survival;
      if (it->second < 1e-9) {
        occupied_ -= it->second;
        it = resident_.erase(it);
      } else {
        others += it->second;
        ++it;
      }
    }
    occupied_ = others + Resident(owner);
  }
  SetResidentInternal(owner, new_self);

  // Numerical safety: keep total occupancy within capacity by squeezing the
  // owners other than the one that just ran.
  if (occupied_ > capacity_) {
    const double excess = occupied_ - capacity_;
    double others = occupied_ - new_self;
    if (others > 0.0) {
      const double scale = std::max(0.0, (others - excess) / others);
      for (auto& [o, blocks] : resident_) {
        if (o != owner) {
          blocks *= scale;
        }
      }
      occupied_ = new_self + others * scale;
    } else {
      SetResidentInternal(owner, capacity_);
    }
  }
  return result;
}

void FootprintCache::Flush() {
  resident_.clear();
  occupied_ = 0.0;
}

void FootprintCache::EjectFraction(CacheOwner owner, double fraction) {
  AFF_CHECK(fraction >= 0.0 && fraction <= 1.0);
  SetResidentInternal(owner, Resident(owner) * (1.0 - fraction));
}

void FootprintCache::EjectBlocks(CacheOwner owner, double blocks) {
  AFF_CHECK(blocks >= 0.0);
  SetResidentInternal(owner, std::max(0.0, Resident(owner) - blocks));
}

void FootprintCache::ReplaceOwnerData(CacheOwner owner, double keep_fraction) {
  AFF_CHECK(keep_fraction >= 0.0 && keep_fraction <= 1.0);
  SetResidentInternal(owner, Resident(owner) * keep_fraction);
}

void FootprintCache::RemoveOwner(CacheOwner owner) { SetResidentInternal(owner, 0.0); }

}  // namespace affsched
