#include "src/cache/partitioned.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "src/common/check.h"

namespace affsched {

namespace {

size_t PopCount(ColorMask mask) { return static_cast<size_t>(std::popcount(mask)); }

}  // namespace

PartitionedCacheModel::PartitionedCacheModel(double capacity_blocks, size_t ways,
                                             size_t num_colors)
    : capacity_(capacity_blocks), ways_(ways), num_colors_(num_colors) {
  AFF_CHECK(capacity_ > 0.0);
  AFF_CHECK(ways_ >= 1);
  AFF_CHECK_MSG(num_colors_ >= 1 && num_colors_ <= 64, "num_colors must be in 1..64");
}

void PartitionedCacheModel::ReserveColors(CacheOwner owner, ColorMask mask) {
  AFF_CHECK(owner != kNoOwner);
  reserved_[owner] = mask & FullColorMask(num_colors_);
}

ColorMask PartitionedCacheModel::ReservedColors(CacheOwner owner) const {
  auto it = reserved_.find(owner);
  return it == reserved_.end() ? FullColorMask(num_colors_) : it->second;
}

double PartitionedCacheModel::ReservedCapacity(ColorMask mask) const {
  return ColorCapacity() * static_cast<double>(PopCount(mask & FullColorMask(num_colors_)));
}

double PartitionedCacheModel::InterferenceOn(CacheOwner owner) const {
  auto it = interference_on_.find(owner);
  return it == interference_on_.end() ? 0.0 : it->second;
}

double PartitionedCacheModel::MaxResident(double blocks) const {
  return ExpectedMaxResident(capacity_, ways_, blocks);
}

double PartitionedCacheModel::Resident(CacheOwner owner) const {
  auto it = resident_.find(owner);
  return it == resident_.end() ? 0.0 : it->second;
}

void PartitionedCacheModel::SetResidentInternal(CacheOwner owner, double blocks) {
  auto it = resident_.find(owner);
  const double old = it == resident_.end() ? 0.0 : it->second;
  occupied_ += blocks - old;
  if (blocks <= 0.0) {
    if (it != resident_.end()) {
      resident_.erase(it);
    }
  } else if (it == resident_.end()) {
    resident_.emplace(owner, blocks);
  } else {
    it->second = blocks;
  }
}

void PartitionedCacheModel::SetResident(CacheOwner owner, double blocks) {
  AFF_CHECK(blocks >= 0.0 && blocks <= capacity_);
  SetResidentInternal(owner, blocks);
}

CacheChunkResult PartitionedCacheModel::RunChunk(CacheOwner owner, const WorkingSetParams& ws,
                                                 double seconds) {
  AFF_CHECK(owner != kNoOwner);
  AFF_CHECK(seconds >= 0.0);
  CacheChunkResult result;
  if (seconds == 0.0) {
    return result;
  }

  const ColorMask mask = ReservedColors(owner);
  const double touch_fraction =
      ws.buildup_tau_s > 0.0 ? 1.0 - std::exp(-seconds / ws.buildup_tau_s) : 1.0;
  result.steady_misses = ws.steady_miss_per_s * seconds;

  // Zero reserved colors: always-cold. Every distinct block the chunk touches
  // misses, nothing survives, and — with nowhere to insert — no other owner's
  // footprint is disturbed.
  if (mask == 0) {
    result.reload_misses = MaxResident(ws.blocks) * touch_fraction;
    SetResidentInternal(owner, 0.0);
    return result;
  }

  const size_t n_own = PopCount(mask);
  const double own_capacity = ReservedCapacity(mask);
  const double w_eff = ExpectedMaxResident(own_capacity, ways_, ws.blocks);
  const double f = Resident(owner);
  result.reload_misses = std::max(0.0, (w_eff - f) * touch_fraction);

  // FootprintCache's random-replacement ejection, restricted to the colors an
  // insertion can actually land in. The running owner's insertions spread
  // uniformly over its n_own reserved colors; a victim with footprint r on
  // n_o colors keeps r * n_sh / n_o blocks on the n_sh contested colors, and
  // each of the evicting insertions directed at those colors (a n_sh / n_own
  // share) sweeps a slice of capacity C_shared. Disjoint reservations are
  // untouched: the isolation guarantee.
  const double new_self = std::min(w_eff, f + result.reload_misses);
  const double evicting = result.reload_misses + result.steady_misses;
  if (evicting > 0.0 && !resident_.empty()) {
    double others = 0.0;
    for (auto it = resident_.begin(); it != resident_.end();) {
      if (it->first == owner) {
        ++it;
        continue;
      }
      const ColorMask victim_mask = ReservedColors(it->first);
      const ColorMask shared = victim_mask & mask;
      if (shared != 0 && victim_mask != 0) {
        const size_t n_sh = PopCount(shared);
        const size_t n_o = PopCount(victim_mask);
        const double vulnerable =
            it->second * static_cast<double>(n_sh) / static_cast<double>(n_o);
        const double shared_capacity = ColorCapacity() * static_cast<double>(n_sh);
        const double directed =
            evicting * static_cast<double>(n_sh) / static_cast<double>(n_own);
        const double survival = std::pow(1.0 - 1.0 / shared_capacity, directed);
        const double lost = vulnerable * (1.0 - survival);
        it->second -= lost;
        interference_evictions_ += lost;
        interference_on_[it->first] += lost;
      }
      if (it->second < 1e-9) {
        it = resident_.erase(it);
      } else {
        others += it->second;
        ++it;
      }
    }
    occupied_ = others + Resident(owner);
  }
  SetResidentInternal(owner, new_self);

  // Numerical safety: keep total occupancy within capacity by squeezing the
  // owners other than the one that just ran.
  if (occupied_ > capacity_) {
    const double excess = occupied_ - capacity_;
    double others = occupied_ - new_self;
    if (others > 0.0) {
      const double scale = std::max(0.0, (others - excess) / others);
      for (auto& [o, blocks] : resident_) {
        if (o != owner) {
          blocks *= scale;
        }
      }
      occupied_ = new_self + others * scale;
    } else {
      SetResidentInternal(owner, std::min(capacity_, new_self));
    }
  }
  return result;
}

void PartitionedCacheModel::Flush() {
  resident_.clear();
  occupied_ = 0.0;
}

void PartitionedCacheModel::EjectFraction(CacheOwner owner, double fraction) {
  AFF_CHECK(fraction >= 0.0 && fraction <= 1.0);
  SetResidentInternal(owner, Resident(owner) * (1.0 - fraction));
}

void PartitionedCacheModel::EjectBlocks(CacheOwner owner, double blocks) {
  AFF_CHECK(blocks >= 0.0);
  SetResidentInternal(owner, std::max(0.0, Resident(owner) - blocks));
}

void PartitionedCacheModel::ReplaceOwnerData(CacheOwner owner, double keep_fraction) {
  AFF_CHECK(keep_fraction >= 0.0 && keep_fraction <= 1.0);
  SetResidentInternal(owner, Resident(owner) * keep_fraction);
}

void PartitionedCacheModel::RemoveOwner(CacheOwner owner) {
  SetResidentInternal(owner, 0.0);
  reserved_.erase(owner);
}

}  // namespace affsched
