// Invalidation-based cache coherence over a set of exact caches.
//
// The Sequent Symmetry Model B "uses a copy-back, invalidation-based
// coherency protocol" (Section 3). This class coordinates one ExactCache per
// processor under a simplified MSI discipline:
//   * reads fill the local cache; if another cache holds the line dirty, the
//     data is supplied over the bus (counted as a bus transfer) and the line
//     becomes shared/clean;
//   * writes invalidate every other cache's copy (counted per invalidation)
//     and mark the local line dirty;
//   * evictions and explicit invalidations keep the sharing directory in
//     sync.
//
// Within this layer, `owner` identifies a *sharing domain* (a job's address
// space), so the same (owner, block) line may be resident in several caches —
// unlike the raw ExactCache, whose owners never share.
//
// This is the mechanistic ground truth behind the footprint model's
// `shared_write_per_s` erosion term (validated in tests/cache/
// coherent_caches_test.cc).

#ifndef SRC_CACHE_COHERENT_CACHES_H_
#define SRC_CACHE_COHERENT_CACHES_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/cache/exact_cache.h"

namespace affsched {

class CoherentCaches {
 public:
  CoherentCaches(size_t num_caches, const CacheGeometry& geometry);

  enum class AccessType { kRead, kWrite };

  struct AccessResult {
    bool hit = false;
    // Copies invalidated in other caches (writes only).
    size_t remote_invalidations = 0;
    // Data supplied by another cache that held the line dirty.
    bool dirty_supply = false;
  };

  AccessResult Access(size_t cache_index, CacheOwner owner, uint64_t block, AccessType type);

  // State inspection.
  bool ResidentIn(size_t cache_index, CacheOwner owner, uint64_t block) const;
  size_t SharerCount(CacheOwner owner, uint64_t block) const;
  bool DirtyIn(size_t cache_index, CacheOwner owner, uint64_t block) const;

  const ExactCache& cache(size_t index) const { return *caches_[index]; }
  size_t num_caches() const { return caches_.size(); }

  // Protocol counters.
  uint64_t total_invalidations() const { return total_invalidations_; }
  uint64_t total_dirty_supplies() const { return total_dirty_supplies_; }
  uint64_t total_bus_transfers() const { return total_bus_transfers_; }

  // Directory/cache consistency check for tests: every directory entry's
  // sharers actually hold the line, and vice versa.
  bool CheckConsistency() const;

 private:
  struct LineState {
    uint64_t sharers = 0;  // bitmask over caches
    int dirty_cache = -1;  // index holding the line dirty; -1 if clean
  };

  using Key = std::pair<CacheOwner, uint64_t>;

  // Reconciles the directory after `cache_index` evicted a line.
  void NoteEviction(size_t cache_index, CacheOwner owner, uint64_t block);

  CacheGeometry geometry_;
  std::vector<std::unique_ptr<ExactCache>> caches_;
  std::map<Key, LineState> directory_;
  uint64_t total_invalidations_ = 0;
  uint64_t total_dirty_supplies_ = 0;
  uint64_t total_bus_transfers_ = 0;
};

}  // namespace affsched

#endif  // SRC_CACHE_COHERENT_CACHES_H_
