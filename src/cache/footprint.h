// Working-set "footprint" cache model.
//
// This is the cache substrate the scheduling experiments run on. Instead of
// simulating each memory reference, it tracks — per processor cache — how many
// blocks of each task's working set are resident, and evolves those footprints
// when a task executes:
//
//   * A task's references follow a working-set curve: in `d` seconds of useful
//     execution it touches u(d) = W * (1 - exp(-d / theta)) distinct blocks
//     of its working set of W blocks. If a fraction of the working set is not
//     resident (the task migrated, or an intervening task ejected its data),
//     the touched-but-absent blocks are *reload misses*:
//         reload(d) = (W_eff - f) * (1 - exp(-d / theta)),
//     where f is the current resident footprint and W_eff = min(W, capacity).
//   * W_eff = MaxResident(W): set-associative self-conflict caps how much of
//     a working set can be resident at once (Poisson occupancy per set).
//   * Independent of reloads, the task incurs *steady-state misses* at rate m
//     per second (capacity/conflict/coherence misses of its own algorithm;
//     near zero for cache-blocked MATRIX).
//   * Every insertion lands in a set that may hold another task's line, so
//     other owners' footprints decay by (1 - 1/C) per insertion — even when
//     the cache is not globally full. The running task's own recent blocks
//     are most-recently-used and modelled as protected.
//
// These dynamics reproduce the paper's Table 1 phenomenology: the penalty for
// resuming without affinity grows with rescheduling interval Q (more blocks
// touched per interval => more to reload), and the penalty *with* affinity
// also grows with Q (the intervening task runs longer and ejects more).
// The exponential-ejection approximation is validated against ExactCache in
// tests/cache/footprint_vs_exact_test.cc and bench/bench_calibration_cache.cc.

#ifndef SRC_CACHE_FOOTPRINT_H_
#define SRC_CACHE_FOOTPRINT_H_

#include <unordered_map>

#include "src/cache/cache_model.h"

namespace affsched {

class FootprintCache final : public CacheModel {
 public:
  explicit FootprintCache(double capacity_blocks, size_t ways = 2);

  // Compatibility alias: chunk results predate the CacheModel interface.
  using ChunkResult = CacheChunkResult;

  // Maximum resident footprint a working set of `blocks` distinct blocks can
  // achieve in this cache (ExpectedMaxResident: Poisson set occupancy).
  // Matches the exact 2-way cache's self-conflict behaviour (validated in
  // tests).
  double MaxResident(double blocks) const override;

  // Evolves the cache as `owner` executes for `seconds` of useful time.
  CacheChunkResult RunChunk(CacheOwner owner, const WorkingSetParams& ws,
                            double seconds) override;

  // Current resident footprint of `owner`, in blocks.
  double Resident(CacheOwner owner) const override;

  // Total resident blocks across owners.
  double Occupied() const override { return occupied_; }

  double capacity() const override { return capacity_; }

  // Invalidates the entire cache (the Section 4 "migrating" treatment).
  void Flush() override;

  // Removes `fraction` (in [0,1]) of `owner`'s footprint.
  void EjectFraction(CacheOwner owner, double fraction) override;

  // Removes up to `blocks` of `owner`'s footprint (coherence invalidations
  // arriving from another processor's cache).
  void EjectBlocks(CacheOwner owner, double blocks) override;

  // Models thread turnover within a worker: the next thread reuses only
  // `keep_fraction` of the worker's current data; the rest is dead and its
  // lines are released.
  void ReplaceOwnerData(CacheOwner owner, double keep_fraction) override;

  // Removes all state for `owner` (task exit).
  void RemoveOwner(CacheOwner owner) override;

  // Test hook: force a resident footprint.
  void SetResident(CacheOwner owner, double blocks);

 private:
  void SetResidentInternal(CacheOwner owner, double blocks);

  double capacity_;
  size_t ways_;
  double occupied_ = 0.0;
  std::unordered_map<CacheOwner, double> resident_;
};

}  // namespace affsched

#endif  // SRC_CACHE_FOOTPRINT_H_
