// Working-set "footprint" cache model.
//
// This is the cache substrate the scheduling experiments run on. Instead of
// simulating each memory reference, it tracks — per processor cache — how many
// blocks of each task's working set are resident, and evolves those footprints
// when a task executes:
//
//   * A task's references follow a working-set curve: in `d` seconds of useful
//     execution it touches u(d) = W * (1 - exp(-d / theta)) distinct blocks
//     of its working set of W blocks. If a fraction of the working set is not
//     resident (the task migrated, or an intervening task ejected its data),
//     the touched-but-absent blocks are *reload misses*:
//         reload(d) = (W_eff - f) * (1 - exp(-d / theta)),
//     where f is the current resident footprint and W_eff = min(W, capacity).
//   * W_eff = MaxResident(W): set-associative self-conflict caps how much of
//     a working set can be resident at once (Poisson occupancy per set).
//   * Independent of reloads, the task incurs *steady-state misses* at rate m
//     per second (capacity/conflict/coherence misses of its own algorithm;
//     near zero for cache-blocked MATRIX).
//   * Every insertion lands in a set that may hold another task's line, so
//     other owners' footprints decay by (1 - 1/C) per insertion — even when
//     the cache is not globally full. The running task's own recent blocks
//     are most-recently-used and modelled as protected.
//
// These dynamics reproduce the paper's Table 1 phenomenology: the penalty for
// resuming without affinity grows with rescheduling interval Q (more blocks
// touched per interval => more to reload), and the penalty *with* affinity
// also grows with Q (the intervening task runs longer and ejects more).
// The exponential-ejection approximation is validated against ExactCache in
// tests/cache/footprint_vs_exact_test.cc and bench/bench_calibration_cache.cc.

#ifndef SRC_CACHE_FOOTPRINT_H_
#define SRC_CACHE_FOOTPRINT_H_

#include <unordered_map>

#include "src/cache/exact_cache.h"

namespace affsched {

// Cache-behaviour parameters of one task (one worker of an application).
struct WorkingSetParams {
  // Maximum working set, in cache blocks.
  double blocks = 0.0;
  // Time constant (seconds) of working-set buildup: u(d) = W(1-exp(-d/theta)).
  double buildup_tau_s = 0.05;
  // Steady-state miss rate, misses per second of useful execution.
  double steady_miss_per_s = 0.0;
  // Writes per second to data shared with sibling workers of the same job.
  // Under the Symmetry's invalidation-based coherency protocol each such
  // write invalidates the line in every other cache holding it, eroding
  // sibling workers' footprints (and later costing them reload misses).
  double shared_write_per_s = 0.0;
};

class FootprintCache {
 public:
  explicit FootprintCache(double capacity_blocks, size_t ways = 2);

  // Maximum resident footprint a working set of `blocks` distinct blocks can
  // achieve in this cache: with random set placement the number of a task's
  // blocks mapping to one set is ~Poisson(blocks/sets), and at most `ways` of
  // them can be resident, so the cap is sets x E[min(K, ways)]. Matches the
  // exact 2-way cache's self-conflict behaviour (validated in tests).
  double MaxResident(double blocks) const;

  struct ChunkResult {
    double reload_misses = 0.0;
    double steady_misses = 0.0;
    double TotalMisses() const { return reload_misses + steady_misses; }
  };

  // Evolves the cache as `owner` executes for `seconds` of useful time.
  ChunkResult RunChunk(CacheOwner owner, const WorkingSetParams& ws, double seconds);

  // Current resident footprint of `owner`, in blocks.
  double Resident(CacheOwner owner) const;

  // Total resident blocks across owners.
  double Occupied() const { return occupied_; }

  double capacity() const { return capacity_; }

  // Invalidates the entire cache (the Section 4 "migrating" treatment).
  void Flush();

  // Removes `fraction` (in [0,1]) of `owner`'s footprint.
  void EjectFraction(CacheOwner owner, double fraction);

  // Removes up to `blocks` of `owner`'s footprint (coherence invalidations
  // arriving from another processor's cache).
  void EjectBlocks(CacheOwner owner, double blocks);

  // Models thread turnover within a worker: the next thread reuses only
  // `keep_fraction` of the worker's current data; the rest is dead and its
  // lines are released.
  void ReplaceOwnerData(CacheOwner owner, double keep_fraction);

  // Removes all state for `owner` (task exit).
  void RemoveOwner(CacheOwner owner);

  // Test hook: force a resident footprint.
  void SetResident(CacheOwner owner, double blocks);

 private:
  void SetResidentInternal(CacheOwner owner, double blocks);

  double capacity_;
  size_t ways_;
  double occupied_ = 0.0;
  std::unordered_map<CacheOwner, double> resident_;
};

}  // namespace affsched

#endif  // SRC_CACHE_FOOTPRINT_H_
