// Cache geometry description.
//
// Defaults model the Sequent Symmetry Model B: each processor has a 64-Kbyte
// 2-way set-associative cache with 16-byte lines (4096 lines, 2048 sets), and
// fetching one block from main memory takes 0.75 us in the absence of bus
// contention, so a full cache fill costs 4096 x 0.75 us = 3.072 ms.

#ifndef SRC_CACHE_GEOMETRY_H_
#define SRC_CACHE_GEOMETRY_H_

#include <cstddef>
#include <cstdint>

#include "src/common/check.h"
#include "src/common/time.h"

namespace affsched {

struct CacheGeometry {
  size_t line_bytes = 16;
  size_t total_bytes = 64 * 1024;
  size_t ways = 2;

  size_t TotalLines() const { return total_bytes / line_bytes; }
  size_t NumSets() const {
    AFF_CHECK(TotalLines() % ways == 0);
    return TotalLines() / ways;
  }
};

// Per-block miss service time on the Symmetry (uncontended).
inline constexpr SimDuration kSymmetryMissService = Microseconds(0.75);

// Kernel path-length cost of a processor reallocation (context switch).
inline constexpr SimDuration kSymmetrySwitchCost = Microseconds(750);

// Time to entirely fill a Symmetry cache: 4096 blocks x 0.75 us.
inline constexpr SimDuration kSymmetryFullFill = 4096 * kSymmetryMissService;

}  // namespace affsched

#endif  // SRC_CACHE_GEOMETRY_H_
