#include "src/cache/exact_cache.h"

#include <algorithm>

#include "src/common/check.h"

namespace affsched {

ExactCache::ExactCache(const CacheGeometry& geometry) : geometry_(geometry) {
  AFF_CHECK(geometry_.ways >= 1);
  AFF_CHECK(geometry_.TotalLines() >= geometry_.ways);
  lines_.resize(geometry_.TotalLines());
}

ExactCache::Line* ExactCache::FindLine(CacheOwner owner, uint64_t block) {
  const size_t set = SetIndex(block);
  Line* base = &lines_[set * geometry_.ways];
  for (size_t w = 0; w < geometry_.ways; ++w) {
    if (base[w].owner == owner && base[w].block == block && owner != kNoOwner) {
      return &base[w];
    }
  }
  return nullptr;
}

const ExactCache::Line* ExactCache::FindLine(CacheOwner owner, uint64_t block) const {
  return const_cast<ExactCache*>(this)->FindLine(owner, block);
}

ExactCache::AccessResult ExactCache::Access(CacheOwner owner, uint64_t block) {
  AFF_CHECK(owner != kNoOwner);
  ++stamp_;
  if (Line* line = FindLine(owner, block)) {
    line->lru_stamp = stamp_;
    ++hits_;
    return AccessResult{.hit = true};
  }
  ++misses_;
  // Choose a victim: an empty way if available, else the LRU way.
  const size_t set = SetIndex(block);
  Line* base = &lines_[set * geometry_.ways];
  Line* victim = &base[0];
  for (size_t w = 0; w < geometry_.ways; ++w) {
    if (base[w].owner == kNoOwner) {
      victim = &base[w];
      break;
    }
    if (base[w].lru_stamp < victim->lru_stamp) {
      victim = &base[w];
    }
  }
  AccessResult result;
  if (victim->owner != kNoOwner) {
    result.evicted_owner = victim->owner;
    result.evicted_block = victim->block;
    auto it = resident_.find(victim->owner);
    AFF_CHECK(it != resident_.end() && it->second > 0);
    if (--it->second == 0) {
      resident_.erase(it);
    }
  } else {
    ++occupied_;
  }
  victim->owner = owner;
  victim->block = block;
  victim->lru_stamp = stamp_;
  ++resident_[owner];
  return result;
}

bool ExactCache::Contains(CacheOwner owner, uint64_t block) const {
  return FindLine(owner, block) != nullptr;
}

bool ExactCache::InvalidateBlock(CacheOwner owner, uint64_t block) {
  Line* line = FindLine(owner, block);
  if (line == nullptr) {
    return false;
  }
  auto it = resident_.find(owner);
  AFF_CHECK(it != resident_.end() && it->second > 0);
  if (--it->second == 0) {
    resident_.erase(it);
  }
  --occupied_;
  ++invalidated_lines_;
  *line = Line{};
  return true;
}

size_t ExactCache::InvalidateOwner(CacheOwner owner) {
  size_t invalidated = 0;
  for (auto& line : lines_) {
    if (line.owner == owner) {
      line = Line{};
      ++invalidated;
    }
  }
  if (invalidated > 0) {
    occupied_ -= invalidated;
    invalidated_lines_ += invalidated;
    resident_.erase(owner);
  }
  return invalidated;
}

void ExactCache::Flush() {
  std::fill(lines_.begin(), lines_.end(), Line{});
  resident_.clear();
  invalidated_lines_ += occupied_;
  occupied_ = 0;
}

size_t ExactCache::ResidentLines(CacheOwner owner) const {
  auto it = resident_.find(owner);
  return it == resident_.end() ? 0 : it->second;
}

void ExactCache::ResetCounters() {
  hits_ = 0;
  misses_ = 0;
  invalidated_lines_ = 0;
}

}  // namespace affsched
