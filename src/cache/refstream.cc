#include "src/cache/refstream.h"

#include "src/common/check.h"

namespace affsched {

ReferenceStream::ReferenceStream(const ReferenceStreamParams& params, uint64_t seed)
    : params_(params), rng_(seed) {
  AFF_CHECK(params_.working_set_blocks > 0);
  AFF_CHECK(params_.streaming_fraction >= 0.0 && params_.streaming_fraction <= 1.0);
  AFF_CHECK(params_.address_space_blocks > params_.working_set_blocks);
  working_set_.reserve(params_.working_set_blocks);
  for (size_t i = 0; i < params_.working_set_blocks; ++i) {
    working_set_.push_back(RandomWorkingBlock());
  }
}

uint64_t ReferenceStream::RandomWorkingBlock() {
  // Working-set blocks are random draws from the lower half of the address
  // space: random set placement, like a virtually-addressed working set.
  // (Collisions are vanishingly rare in a 2^39-block region and harmless.)
  return rng_.NextBounded(params_.address_space_blocks / 2);
}

uint64_t ReferenceStream::FreshBlock() {
  // Streaming references walk a private sequential region in the upper half
  // of the address space, so they never re-hit anything.
  const uint64_t base = params_.address_space_blocks / 2;
  return base + next_fresh_++;
}

uint64_t ReferenceStream::Next() {
  if (params_.streaming_fraction > 0.0 && rng_.NextBernoulli(params_.streaming_fraction)) {
    return FreshBlock() % params_.address_space_blocks;
  }
  return working_set_[rng_.NextBounded(working_set_.size())];
}

void ReferenceStream::TurnOver(double keep_fraction) {
  AFF_CHECK(keep_fraction >= 0.0 && keep_fraction <= 1.0);
  const size_t keep = static_cast<size_t>(keep_fraction *
                                          static_cast<double>(working_set_.size()));
  for (size_t i = keep; i < working_set_.size(); ++i) {
    working_set_[i] = RandomWorkingBlock();
  }
}

}  // namespace affsched
