#include "src/cache/cache_model.h"

#include <algorithm>
#include <cmath>

namespace affsched {

double ExpectedMaxResident(double capacity_blocks, size_t ways, double blocks) {
  if (blocks <= 0.0) {
    return 0.0;
  }
  const double sets = capacity_blocks / static_cast<double>(ways);
  const double lambda = blocks / sets;
  // E[min(K, ways)] for K ~ Poisson(lambda):
  //   sum_{k < ways} k p_k + ways * (1 - sum_{k < ways} p_k).
  double p = std::exp(-lambda);  // P(K = 0)
  double cdf = p;
  double partial_mean = 0.0;
  for (size_t k = 1; k < ways; ++k) {
    p *= lambda / static_cast<double>(k);
    cdf += p;
    partial_mean += static_cast<double>(k) * p;
  }
  const double expected = partial_mean + static_cast<double>(ways) * (1.0 - cdf);
  return std::min(blocks, sets * expected);
}

}  // namespace affsched
