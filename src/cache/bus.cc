#include "src/cache/bus.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace affsched {

SharedBus::SharedBus(const Config& config) : config_(config) {
  AFF_CHECK(config_.transfer_seconds >= 0.0);
  AFF_CHECK(config_.window_seconds > 0.0);
  AFF_CHECK(config_.max_inflation >= 1.0);
}

void SharedBus::DecayTo(SimTime now) {
  if (now <= last_update_) {
    return;
  }
  const double elapsed = ToSeconds(now - last_update_);
  window_busy_seconds_ *= std::exp(-elapsed / config_.window_seconds);
  last_update_ = now;
}

void SharedBus::RecordTraffic(SimTime now, double misses) {
  AFF_CHECK(misses >= 0.0);
  DecayTo(now);
  window_busy_seconds_ += misses * config_.transfer_seconds;
  total_transfers_ += misses;
  peak_utilization_ =
      std::max(peak_utilization_, std::min(0.99, window_busy_seconds_ / config_.window_seconds));
}

double SharedBus::Utilization(SimTime now) {
  DecayTo(now);
  // Busy time accumulated over an exponential window of mean `window_seconds`
  // approximates (busy time)/(elapsed time) when divided by the window length.
  return std::min(0.99, window_busy_seconds_ / config_.window_seconds);
}

double SharedBus::UtilizationAt(SimTime now) const {
  double busy = window_busy_seconds_;
  if (now > last_update_) {
    busy *= std::exp(-ToSeconds(now - last_update_) / config_.window_seconds);
  }
  return std::min(0.99, busy / config_.window_seconds);
}

double SharedBus::InflationFactor(SimTime now) {
  const double u = Utilization(now);
  return std::min(config_.max_inflation, 1.0 / (1.0 - u));
}

}  // namespace affsched
