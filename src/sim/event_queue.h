// Discrete-event simulation core: a time-ordered event queue with support for
// event cancellation, plus the simulation clock.
//
// Determinism: events at the same timestamp run in scheduling order (FIFO by
// sequence number), so a given seed always produces the same trajectory.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"

namespace affsched {

using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `when` (>= now). Returns a handle
  // usable with Cancel().
  EventId ScheduleAt(SimTime when, std::function<void()> fn);

  // Schedules `fn` to run `delay` (>= 0) after the current time.
  EventId ScheduleAfter(SimDuration delay, std::function<void()> fn);

  // Cancels a pending event. Returns true if the event was pending (i.e. had
  // not yet run and had not already been cancelled).
  bool Cancel(EventId id);

  // True if an event with this id is still pending.
  bool IsPending(EventId id) const;

  // Runs the earliest pending event, advancing the clock to its timestamp.
  // Returns false if no events remain.
  bool RunNext();

  // Runs events until the queue empties or the clock would pass `deadline`;
  // the clock is left at min(deadline, last event time). Returns the number
  // of events run.
  size_t RunUntil(SimTime deadline);

  // Runs all events. Guards against runaway simulations with a hard cap.
  size_t RunAll(size_t max_events = 500'000'000);

  SimTime now() const { return now_; }
  bool empty() const { return handlers_.empty(); }
  size_t pending_count() const { return handlers_.size(); }

  // Timestamp of the earliest pending event; kTimeInfinite if none.
  SimTime PeekTime();

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    EventId id;
    bool operator>(const Entry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  // Drops cancelled entries from the head of the heap.
  void SkimCancelled();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_map<EventId, std::function<void()>> handlers_;
};

}  // namespace affsched

#endif  // SRC_SIM_EVENT_QUEUE_H_
