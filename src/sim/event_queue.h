// Discrete-event simulation core: a time-ordered event queue with support for
// event cancellation, plus the simulation clock.
//
// Determinism: events at the same timestamp run in scheduling order (FIFO by
// sequence number), so a given seed always produces the same trajectory.
//
// Storage model (the hot path of every simulation): events live in a pool of
// fixed-size records recycled through an intrusive free list, so steady-state
// scheduling allocates nothing. The callable is copied into the record's
// inline buffer and invoked through a typed trampoline — callables must be
// trivially copyable (captures of pointers, references and scalars; no
// std::function, no owning captures). EventIds are generation-tagged
// (slot | generation), which makes Cancel() and IsPending() O(1) array
// lookups: a recycled slot bumps its generation, so stale ids and stale heap
// entries are recognised without any hash map.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <queue>
#include <type_traits>
#include <vector>

#include "src/common/check.h"
#include "src/common/time.h"

namespace affsched {

// Generation-tagged event handle: (slot + 1) in the high 32 bits, the slot's
// generation at scheduling time in the low 32. Never 0 for a live event.
using EventId = uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  // Inline storage for the scheduled callable. Sized for the engine's largest
  // handler capture (this + four 64-bit scalars) with headroom.
  static constexpr size_t kInlineCallableBytes = 48;

  // Counters describing queue churn, for `simctl --engine-stats` and the
  // microbenchmark regression gate.
  struct Stats {
    uint64_t scheduled = 0;  // total events ever scheduled
    uint64_t cancelled = 0;  // of those, cancelled before running
    uint64_t run = 0;        // of those, executed
    // Most events simultaneously pending — the pool's high-water mark (the
    // pool never shrinks, so this is also its allocated size).
    size_t pool_high_water = 0;
  };

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run at absolute time `when` (>= now). Returns a handle
  // usable with Cancel(). `fn` must be trivially copyable and fit the inline
  // record buffer (enforced at compile time).
  template <typename F>
  EventId ScheduleAt(SimTime when, F fn) {
    static_assert(std::is_trivially_copyable_v<F>,
                  "event callables are memcpy'd into pooled records: capture "
                  "only pointers, references and scalars");
    static_assert(std::is_trivially_destructible_v<F>,
                  "pooled event records are recycled without destructor calls");
    static_assert(sizeof(F) <= kInlineCallableBytes,
                  "callable too large for the inline event record");
    AFF_CHECK_MSG(when >= now_, "event scheduled in the past");
    const uint32_t slot = AllocateSlot();
    Record& r = pool_[slot];
    ::new (static_cast<void*>(r.storage)) F(fn);
    r.invoke = [](void* storage) { (*static_cast<F*>(storage))(); };
    r.pending = true;
    heap_.push(HeapEntry{when, next_seq_++, slot, r.gen});
    ++live_;
    ++stats_.scheduled;
    if (live_ > stats_.pool_high_water) {
      stats_.pool_high_water = live_;
    }
    return MakeId(slot, r.gen);
  }

  // Schedules `fn` to run `delay` (>= 0) after the current time.
  template <typename F>
  EventId ScheduleAfter(SimDuration delay, F fn) {
    AFF_CHECK(delay >= 0);
    return ScheduleAt(now_ + delay, fn);
  }

  // Cancels a pending event. Returns true if the event was pending (i.e. had
  // not yet run and had not already been cancelled). O(1).
  bool Cancel(EventId id);

  // True if an event with this id is still pending. O(1).
  bool IsPending(EventId id) const;

  // Runs the earliest pending event, advancing the clock to its timestamp.
  // Returns false if no events remain.
  bool RunNext();

  // Runs events until the queue empties or the clock would pass `deadline`;
  // the clock is left at min(deadline, last event time). Returns the number
  // of events run.
  size_t RunUntil(SimTime deadline);

  // Runs all events. Guards against runaway simulations with a hard cap.
  size_t RunAll(size_t max_events = 500'000'000);

  SimTime now() const { return now_; }
  bool empty() const { return live_ == 0; }
  size_t pending_count() const { return live_; }

  // Timestamp of the earliest pending event; kTimeInfinite if none.
  SimTime PeekTime();

  const Stats& stats() const { return stats_; }

 private:
  static constexpr uint32_t kNoFreeSlot = UINT32_MAX;

  using Invoker = void (*)(void* storage);

  // One pooled event. `gen` is bumped every time the slot is recycled, so
  // handles and heap entries carrying an older generation are recognisably
  // stale.
  struct Record {
    alignas(alignof(std::max_align_t)) unsigned char storage[kInlineCallableBytes];
    Invoker invoke = nullptr;
    uint32_t gen = 1;
    uint32_t next_free = kNoFreeSlot;
    bool pending = false;
  };

  struct HeapEntry {
    SimTime when;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
    bool operator>(const HeapEntry& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<uint64_t>(slot) + 1) << 32 | gen;
  }

  // Allocates a record slot from the free list, growing the pool if empty.
  uint32_t AllocateSlot();

  // Recycles a slot: bumps its generation (invalidating outstanding ids and
  // heap entries) and pushes it on the free list.
  void FreeSlot(uint32_t slot);

  // Resolves an id to its slot iff it names a currently-pending event.
  bool ResolvePending(EventId id, uint32_t* slot) const;

  // Drops heap entries whose record was cancelled (stale generation).
  void SkimCancelled();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  std::vector<Record> pool_;
  uint32_t free_head_ = kNoFreeSlot;
  size_t live_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  Stats stats_;
};

}  // namespace affsched

#endif  // SRC_SIM_EVENT_QUEUE_H_
