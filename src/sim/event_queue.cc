#include "src/sim/event_queue.h"

namespace affsched {

uint32_t EventQueue::AllocateSlot() {
  if (free_head_ != kNoFreeSlot) {
    const uint32_t slot = free_head_;
    free_head_ = pool_[slot].next_free;
    pool_[slot].next_free = kNoFreeSlot;
    return slot;
  }
  AFF_CHECK_MSG(pool_.size() < static_cast<size_t>(UINT32_MAX),
                "event pool exhausted");
  pool_.emplace_back();
  return static_cast<uint32_t>(pool_.size() - 1);
}

void EventQueue::FreeSlot(uint32_t slot) {
  Record& r = pool_[slot];
  r.pending = false;
  r.invoke = nullptr;
  ++r.gen;
  r.next_free = free_head_;
  free_head_ = slot;
  AFF_CHECK(live_ > 0);
  --live_;
}

bool EventQueue::ResolvePending(EventId id, uint32_t* slot) const {
  if (id == kInvalidEventId) {
    return false;
  }
  const uint64_t slot_plus_one = id >> 32;
  const uint32_t gen = static_cast<uint32_t>(id);
  if (slot_plus_one == 0 || slot_plus_one > pool_.size()) {
    return false;
  }
  const uint32_t s = static_cast<uint32_t>(slot_plus_one - 1);
  if (!pool_[s].pending || pool_[s].gen != gen) {
    return false;
  }
  *slot = s;
  return true;
}

bool EventQueue::Cancel(EventId id) {
  uint32_t slot = 0;
  if (!ResolvePending(id, &slot)) {
    return false;
  }
  FreeSlot(slot);  // the stale heap entry is skimmed lazily
  ++stats_.cancelled;
  return true;
}

bool EventQueue::IsPending(EventId id) const {
  uint32_t slot = 0;
  return ResolvePending(id, &slot);
}

void EventQueue::SkimCancelled() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.top();
    if (pool_[top.slot].pending && pool_[top.slot].gen == top.gen) {
      return;
    }
    heap_.pop();
  }
}

SimTime EventQueue::PeekTime() {
  SkimCancelled();
  return heap_.empty() ? kTimeInfinite : heap_.top().when;
}

bool EventQueue::RunNext() {
  SkimCancelled();
  if (heap_.empty()) {
    return false;
  }
  const HeapEntry entry = heap_.top();
  heap_.pop();
  Record& r = pool_[entry.slot];
  // Copy the handler out before running: the handler may schedule or cancel
  // other events (and re-entrantly grow or recycle the pool).
  alignas(alignof(std::max_align_t)) unsigned char local[kInlineCallableBytes];
  std::memcpy(local, r.storage, kInlineCallableBytes);
  const Invoker invoke = r.invoke;
  FreeSlot(entry.slot);
  AFF_CHECK(entry.when >= now_);
  now_ = entry.when;
  ++stats_.run;
  invoke(local);
  return true;
}

size_t EventQueue::RunUntil(SimTime deadline) {
  size_t ran = 0;
  while (true) {
    const SimTime next = PeekTime();
    if (next == kTimeInfinite || next > deadline) {
      break;
    }
    RunNext();
    ++ran;
  }
  if (now_ < deadline && deadline != kTimeInfinite) {
    now_ = deadline;
  }
  return ran;
}

size_t EventQueue::RunAll(size_t max_events) {
  size_t ran = 0;
  while (RunNext()) {
    ++ran;
    AFF_CHECK_MSG(ran < max_events, "event cap exceeded: likely a runaway simulation");
  }
  return ran;
}

}  // namespace affsched
