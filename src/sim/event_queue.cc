#include "src/sim/event_queue.h"

#include <utility>

#include "src/common/check.h"

namespace affsched {

EventId EventQueue::ScheduleAt(SimTime when, std::function<void()> fn) {
  AFF_CHECK_MSG(when >= now_, "event scheduled in the past");
  const EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id});
  handlers_.emplace(id, std::move(fn));
  return id;
}

EventId EventQueue::ScheduleAfter(SimDuration delay, std::function<void()> fn) {
  AFF_CHECK(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool EventQueue::Cancel(EventId id) { return handlers_.erase(id) > 0; }

bool EventQueue::IsPending(EventId id) const { return handlers_.count(id) > 0; }

void EventQueue::SkimCancelled() {
  while (!heap_.empty() && handlers_.find(heap_.top().id) == handlers_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::PeekTime() {
  SkimCancelled();
  return heap_.empty() ? kTimeInfinite : heap_.top().when;
}

bool EventQueue::RunNext() {
  SkimCancelled();
  if (heap_.empty()) {
    return false;
  }
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = handlers_.find(entry.id);
  AFF_CHECK(it != handlers_.end());
  // Move the handler out before running: the handler may schedule or cancel
  // other events (and re-entrantly touch the map).
  std::function<void()> fn = std::move(it->second);
  handlers_.erase(it);
  AFF_CHECK(entry.when >= now_);
  now_ = entry.when;
  fn();
  return true;
}

size_t EventQueue::RunUntil(SimTime deadline) {
  size_t ran = 0;
  while (true) {
    const SimTime next = PeekTime();
    if (next == kTimeInfinite || next > deadline) {
      break;
    }
    RunNext();
    ++ran;
  }
  if (now_ < deadline && deadline != kTimeInfinite) {
    now_ = deadline;
  }
  return ran;
}

size_t EventQueue::RunAll(size_t max_events) {
  size_t ran = 0;
  while (RunNext()) {
    ++ran;
    AFF_CHECK_MSG(ran < max_events, "event cap exceeded: likely a runaway simulation");
  }
  return ran;
}

}  // namespace affsched
