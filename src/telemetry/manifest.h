// Run manifests: a machine-readable record of one benchmark or simulation
// run — seed, configuration, build/git metadata, end-of-run metric totals,
// and optionally a wall-clock profile — written as a single JSON object.
// CI benches archive these next to their output so any number in a report
// can be traced back to the exact build and parameters that produced it.

#ifndef SRC_TELEMETRY_MANIFEST_H_
#define SRC_TELEMETRY_MANIFEST_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/telemetry/metrics.h"
#include "src/telemetry/profile.h"

namespace affsched {

class RunManifest {
 public:
  // Pre-populates build metadata: git_sha, git_dirty, build_type, compiler.
  RunManifest();

  void SetString(const std::string& key, const std::string& value);
  void SetNumber(const std::string& key, double value);
  // Emits the exact decimal digits. Use for 64-bit seeds and counters:
  // SetNumber would round-trip them through double and corrupt anything
  // above 2^53.
  void SetUint(const std::string& key, uint64_t value);
  // Emits a JSON boolean (true/false).
  void SetBool(const std::string& key, bool value);
  // Attaches a pre-rendered JSON value (object/array) under `key`.
  void SetJson(const std::string& key, const std::string& json);

  // Records invocation provenance: "git_rev" (the built-from commit),
  // "hostname" (the executing machine), and "argv" (the exact command line,
  // as a JSON array). Pass main()'s arguments through unchanged.
  void SetProvenance(int argc, const char* const* argv);

  // Embeds the registry's totals as the "metrics" member.
  void AddMetrics(const MetricsRegistry& registry);
  // Embeds the profiler's sections as the "profile" member.
  void AddProfile(const Profiler& profiler);

  // One JSON object, keys sorted.
  std::string ToJson() const;
  bool WriteFile(const std::string& path) const;

  // Commit this binary was built from ("unknown" outside a git checkout).
  static const char* GitSha();

 private:
  // Values stored pre-rendered as JSON text.
  std::map<std::string, std::string> members_;
};

}  // namespace affsched

#endif  // SRC_TELEMETRY_MANIFEST_H_
