// First-class metrics for the simulator: named counters, gauges, and
// fixed-bucket histograms collected in a MetricsRegistry.
//
// Design constraints, in order:
//   * Zero cost when disabled. Instrumented code holds raw handle pointers
//     that are nullptr when no registry is attached; the per-event cost is
//     one branch. The engine's hot path must not pay for observability it
//     is not using (acceptance: < 2% on bench_sim_microbench).
//   * Exact reconciliation. Counters count the same increments the JobStats
//     accounting does, so end-of-run totals can be cross-checked against the
//     paper's response-time terms. Durations accumulate in integer
//     nanoseconds (exactly representable in a double far beyond any run
//     length) rather than floating seconds.
//   * Deterministic output. Rendering iterates names in sorted order, so two
//     identical runs produce byte-identical metric dumps a CI bench can diff.
//
// The registry owns its metrics; handles returned by FindOrCreate* stay valid
// for the registry's lifetime (deque storage, no reallocation).

#ifndef SRC_TELEMETRY_METRICS_H_
#define SRC_TELEMETRY_METRICS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace affsched {

// A monotonically increasing total (events, nanoseconds, bus transfers).
class Counter {
 public:
  void Add(double delta = 1.0) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// A point-in-time value (allocation, bus utilisation, queue depth).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// A histogram over fixed bucket upper bounds (last bucket is +inf).
// Bounds are chosen at creation; Observe is O(#buckets) linear scan, which
// beats binary search for the short bucket lists latency metrics use.
class FixedHistogram {
 public:
  explicit FixedHistogram(std::vector<double> bucket_bounds);

  void Observe(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }
  // Upper bounds, excluding the implicit +inf bucket.
  const std::vector<double>& bounds() const { return bounds_; }
  // counts()[i] is the number of observations <= bounds()[i]; the final entry
  // counts observations above every bound. size() == bounds().size() + 1.
  const std::vector<uint64_t>& counts() const { return counts_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

// Default bucket bounds for microsecond-scale latency histograms: 1 us to
// ~100 ms in roughly 1-2-5 steps.
std::vector<double> DefaultLatencyBucketsUs();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Idempotent by name: a second call with the same name returns the same
  // handle. A name registered as one kind must not be re-requested as
  // another (checked).
  Counter* FindOrCreateCounter(const std::string& name);
  Gauge* FindOrCreateGauge(const std::string& name);
  FixedHistogram* FindOrCreateHistogram(const std::string& name,
                                        std::vector<double> bucket_bounds);

  // Lookup without creation; nullptr if absent (or a different kind).
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const FixedHistogram* FindHistogram(const std::string& name) const;

  size_t size() const { return entries_.size(); }

  // Sorted (name, value) pairs for counters and gauges; histograms report
  // "<name>.count", "<name>.sum", and "<name>.mean" pseudo-entries.
  std::vector<std::pair<std::string, double>> Snapshot() const;

  // One "name value" line per Snapshot entry, sorted by name.
  std::string RenderText() const;

  // A flat JSON object {"name": value, ...}, sorted by name. Histograms
  // additionally emit "<name>.buckets" as an array of [bound, count] pairs.
  std::string ToJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    FixedHistogram* histogram = nullptr;
  };

  std::map<std::string, Entry> entries_;
  // Stable storage: deques never move elements on growth.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<FixedHistogram> histograms_;
};

}  // namespace affsched

#endif  // SRC_TELEMETRY_METRICS_H_
