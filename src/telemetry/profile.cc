#include "src/telemetry/profile.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

#include "src/telemetry/json.h"

namespace affsched {

ProfileSection* Profiler::Section(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    return it->second;
  }
  sections_.emplace_back();
  ProfileSection* s = &sections_.back();
  by_name_.emplace(name, s);
  return s;
}

std::string Profiler::Report() const {
  std::vector<std::pair<std::string, const ProfileSection*>> rows(by_name_.begin(),
                                                                  by_name_.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second->total_ns() > b.second->total_ns();
  });
  uint64_t grand_total = 0;
  for (const auto& [name, s] : rows) {
    grand_total += s->total_ns();
  }
  std::ostringstream out;
  out << "profile (wall clock):\n";
  for (const auto& [name, s] : rows) {
    const double share = grand_total > 0 ? 100.0 * static_cast<double>(s->total_ns()) /
                                               static_cast<double>(grand_total)
                                         : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line), "  %-24s %10.3f ms  x%-10llu %8.2f us/call  %5.1f%%\n",
                  name.c_str(), static_cast<double>(s->total_ns()) / 1e6,
                  static_cast<unsigned long long>(s->count()), s->MeanNs() / 1e3, share);
    out << line;
  }
  return out.str();
}

std::string Profiler::ToJson() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [name, s] : by_name_) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << JsonEscape(name) << "\":{\"total_ns\":" << s->total_ns()
        << ",\"count\":" << s->count() << "}";
  }
  out << "}";
  return out.str();
}

}  // namespace affsched
