#include "src/telemetry/cache_metrics.h"

namespace affsched {

void ExportExactCacheMetrics(MetricsRegistry& registry, const std::string& prefix,
                             const ExactCache& cache) {
  registry.FindOrCreateCounter(prefix + ".hits")->Add(static_cast<double>(cache.hits()));
  registry.FindOrCreateCounter(prefix + ".misses")->Add(static_cast<double>(cache.misses()));
  registry.FindOrCreateCounter(prefix + ".invalidated_lines")
      ->Add(static_cast<double>(cache.invalidated_lines()));
}

void ExportCoherentCachesMetrics(MetricsRegistry& registry, const std::string& prefix,
                                 const CoherentCaches& caches) {
  for (size_t i = 0; i < caches.num_caches(); ++i) {
    ExportExactCacheMetrics(registry, prefix + ".cache" + std::to_string(i), caches.cache(i));
  }
  registry.FindOrCreateCounter(prefix + ".invalidations")
      ->Add(static_cast<double>(caches.total_invalidations()));
  registry.FindOrCreateCounter(prefix + ".dirty_supplies")
      ->Add(static_cast<double>(caches.total_dirty_supplies()));
  registry.FindOrCreateCounter(prefix + ".bus_transfers")
      ->Add(static_cast<double>(caches.total_bus_transfers()));
}

}  // namespace affsched
