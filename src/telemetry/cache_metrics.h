// Exports the exact-cache layer's counters (hits, misses, invalidation
// traffic) into a MetricsRegistry. Lives in telemetry rather than cache to
// keep the dependency arrow pointing one way: the cache models stay free of
// observability concerns and just maintain cheap integer counters.

#ifndef SRC_TELEMETRY_CACHE_METRICS_H_
#define SRC_TELEMETRY_CACHE_METRICS_H_

#include <string>

#include "src/cache/coherent_caches.h"
#include "src/cache/exact_cache.h"
#include "src/telemetry/metrics.h"

namespace affsched {

// Sets "<prefix>.hits", "<prefix>.misses", "<prefix>.invalidated_lines".
void ExportExactCacheMetrics(MetricsRegistry& registry, const std::string& prefix,
                             const ExactCache& cache);

// Per-cache exact counters plus protocol totals: "<prefix>.invalidations",
// "<prefix>.dirty_supplies", "<prefix>.bus_transfers".
void ExportCoherentCachesMetrics(MetricsRegistry& registry, const std::string& prefix,
                                 const CoherentCaches& caches);

}  // namespace affsched

#endif  // SRC_TELEMETRY_CACHE_METRICS_H_
