// Minimal JSON utilities for the telemetry exporters: string escaping, number
// formatting that always yields valid JSON (no "nan"/"inf" literals), and a
// dependency-free validity checker used by tests and by the exporters' own
// self-checks. This is a writer's toolkit, not a parser — nothing here builds
// a DOM.

#ifndef SRC_TELEMETRY_JSON_H_
#define SRC_TELEMETRY_JSON_H_

#include <string>

namespace affsched {

// Escapes `s` for inclusion inside a JSON string literal (quotes not added).
std::string JsonEscape(const std::string& s);

// Formats a double as a JSON number. Non-finite values (which JSON cannot
// represent) become null. Integral values print without a fraction so counter
// totals stay exactly comparable across runs.
std::string JsonNumber(double value);

// True if `text` is one complete, syntactically valid JSON value (object,
// array, string, number, true/false/null) with no trailing garbage.
bool IsValidJson(const std::string& text);

}  // namespace affsched

#endif  // SRC_TELEMETRY_JSON_H_
