#include "src/telemetry/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace affsched {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  char buf[40];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      std::fabs(value) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  return buf;
}

namespace {

// Recursive-descent validity check. `p` advances past the parsed value;
// returns false on any syntax error. Depth-capped to bound recursion.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text.c_str()), end_(s_ + text.size()) {}

  bool CheckDocument() {
    SkipWs();
    if (!CheckValue(0)) {
      return false;
    }
    SkipWs();
    return s_ == end_;
  }

 private:
  static constexpr int kMaxDepth = 200;

  void SkipWs() {
    while (s_ < end_ && (*s_ == ' ' || *s_ == '\t' || *s_ == '\n' || *s_ == '\r')) {
      ++s_;
    }
  }

  bool Literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (static_cast<size_t>(end_ - s_) < n || std::strncmp(s_, lit, n) != 0) {
      return false;
    }
    s_ += n;
    return true;
  }

  bool CheckString() {
    if (s_ >= end_ || *s_ != '"') {
      return false;
    }
    ++s_;
    while (s_ < end_) {
      const unsigned char c = static_cast<unsigned char>(*s_);
      if (c == '"') {
        ++s_;
        return true;
      }
      if (c < 0x20) {
        return false;  // raw control character
      }
      if (c == '\\') {
        ++s_;
        if (s_ >= end_) {
          return false;
        }
        const char e = *s_;
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++s_;
            if (s_ >= end_ || !std::isxdigit(static_cast<unsigned char>(*s_))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
      ++s_;
    }
    return false;  // unterminated
  }

  bool CheckNumber() {
    const char* start = s_;
    if (s_ < end_ && *s_ == '-') {
      ++s_;
    }
    if (s_ >= end_ || !std::isdigit(static_cast<unsigned char>(*s_))) {
      return false;
    }
    if (*s_ == '0') {
      ++s_;
    } else {
      while (s_ < end_ && std::isdigit(static_cast<unsigned char>(*s_))) {
        ++s_;
      }
    }
    if (s_ < end_ && *s_ == '.') {
      ++s_;
      if (s_ >= end_ || !std::isdigit(static_cast<unsigned char>(*s_))) {
        return false;
      }
      while (s_ < end_ && std::isdigit(static_cast<unsigned char>(*s_))) {
        ++s_;
      }
    }
    if (s_ < end_ && (*s_ == 'e' || *s_ == 'E')) {
      ++s_;
      if (s_ < end_ && (*s_ == '+' || *s_ == '-')) {
        ++s_;
      }
      if (s_ >= end_ || !std::isdigit(static_cast<unsigned char>(*s_))) {
        return false;
      }
      while (s_ < end_ && std::isdigit(static_cast<unsigned char>(*s_))) {
        ++s_;
      }
    }
    return s_ > start;
  }

  bool CheckValue(int depth) {
    if (depth > kMaxDepth || s_ >= end_) {
      return false;
    }
    switch (*s_) {
      case '{': {
        ++s_;
        SkipWs();
        if (s_ < end_ && *s_ == '}') {
          ++s_;
          return true;
        }
        while (true) {
          SkipWs();
          if (!CheckString()) {
            return false;
          }
          SkipWs();
          if (s_ >= end_ || *s_ != ':') {
            return false;
          }
          ++s_;
          SkipWs();
          if (!CheckValue(depth + 1)) {
            return false;
          }
          SkipWs();
          if (s_ < end_ && *s_ == ',') {
            ++s_;
            continue;
          }
          if (s_ < end_ && *s_ == '}') {
            ++s_;
            return true;
          }
          return false;
        }
      }
      case '[': {
        ++s_;
        SkipWs();
        if (s_ < end_ && *s_ == ']') {
          ++s_;
          return true;
        }
        while (true) {
          SkipWs();
          if (!CheckValue(depth + 1)) {
            return false;
          }
          SkipWs();
          if (s_ < end_ && *s_ == ',') {
            ++s_;
            continue;
          }
          if (s_ < end_ && *s_ == ']') {
            ++s_;
            return true;
          }
          return false;
        }
      }
      case '"':
        return CheckString();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return CheckNumber();
    }
  }

  const char* s_;
  const char* end_;
};

}  // namespace

bool IsValidJson(const std::string& text) { return JsonChecker(text).CheckDocument(); }

}  // namespace affsched
