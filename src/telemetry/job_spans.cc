#include "src/telemetry/job_spans.h"

#include <sstream>

#include "src/common/check.h"
#include "src/telemetry/json.h"

namespace affsched {

JobLifecycle& JobSpanCollector::Slot(JobId job) {
  AFF_CHECK(job != kInvalidJobId);
  if (job >= jobs_.size()) {
    jobs_.resize(job + 1);
  }
  JobLifecycle& lc = jobs_[job];
  lc.job = job;
  return lc;
}

void JobSpanCollector::OnArrival(JobId job, SimTime arrival, double queue_wait_s) {
  JobLifecycle& lc = Slot(job);
  lc.arrival = arrival;
  lc.queued_since = arrival - Seconds(queue_wait_s);
}

void JobSpanCollector::OnDispatch(JobId job, size_t proc, SimTime when, size_t tier,
                                  bool affine) {
  JobLifecycle& lc = Slot(job);
  if (lc.first_dispatch < 0) {
    lc.first_dispatch = when;
  }
  ++lc.dispatches;
  if (affine) {
    ++lc.affine_dispatches;
  }
  if (tier != SIZE_MAX) {
    AFF_CHECK(tier < kNumDistanceTiers);
    ++lc.migrations_by_tier[tier];
    if (lc.migrations.size() < kMaxRecordedMigrations) {
      lc.migrations.push_back(JobMigration{when, proc, tier});
    }
  }
}

void JobSpanCollector::OnCompletion(JobId job, SimTime when) {
  Slot(job).completion = when;
}

const JobLifecycle* JobSpanCollector::Find(JobId job) const {
  if (job >= jobs_.size() || jobs_[job].job == kInvalidJobId) {
    return nullptr;
  }
  return &jobs_[job];
}

std::string JobSpanCollector::ToJsonl() const {
  std::ostringstream out;
  for (const JobLifecycle& lc : jobs_) {
    if (lc.job == kInvalidJobId) {
      continue;
    }
    out << "{\"job\":" << lc.job << ",\"queued_since_us\":"
        << JsonNumber(lc.queued_since >= 0 ? ToMicroseconds(lc.queued_since) : -1.0)
        << ",\"arrival_us\":"
        << JsonNumber(lc.arrival >= 0 ? ToMicroseconds(lc.arrival) : -1.0)
        << ",\"first_dispatch_us\":"
        << JsonNumber(lc.first_dispatch >= 0 ? ToMicroseconds(lc.first_dispatch) : -1.0)
        << ",\"completion_us\":"
        << JsonNumber(lc.completion >= 0 ? ToMicroseconds(lc.completion) : -1.0)
        << ",\"dispatches\":" << lc.dispatches
        << ",\"affine_dispatches\":" << lc.affine_dispatches << ",\"migrations\":{";
    for (size_t tier = 0; tier < kNumDistanceTiers; ++tier) {
      out << (tier > 0 ? "," : "") << "\"" << DistanceTierName(tier)
          << "\":" << lc.migrations_by_tier[tier];
    }
    out << "}}\n";
  }
  return out.str();
}

}  // namespace affsched
