#include "src/telemetry/metrics.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"
#include "src/telemetry/json.h"

namespace affsched {

FixedHistogram::FixedHistogram(std::vector<double> bucket_bounds)
    : bounds_(std::move(bucket_bounds)), counts_(bounds_.size() + 1, 0) {
  AFF_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bucket bounds must be sorted");
}

void FixedHistogram::Observe(double value) {
  size_t i = 0;
  while (i < bounds_.size() && value > bounds_[i]) {
    ++i;
  }
  ++counts_[i];
  ++count_;
  sum_ += value;
}

std::vector<double> DefaultLatencyBucketsUs() {
  return {1,    2,    5,     10,    20,    50,    100,   200,    500,
          1000, 2000, 5000,  10000, 20000, 50000, 100000};
}

Counter* MetricsRegistry::FindOrCreateCounter(const std::string& name) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    AFF_CHECK_MSG(it->second.kind == Kind::kCounter, "metric re-registered as another kind");
    return it->second.counter;
  }
  counters_.emplace_back();
  Entry e;
  e.kind = Kind::kCounter;
  e.counter = &counters_.back();
  entries_.emplace(name, e);
  return e.counter;
}

Gauge* MetricsRegistry::FindOrCreateGauge(const std::string& name) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    AFF_CHECK_MSG(it->second.kind == Kind::kGauge, "metric re-registered as another kind");
    return it->second.gauge;
  }
  gauges_.emplace_back();
  Entry e;
  e.kind = Kind::kGauge;
  e.gauge = &gauges_.back();
  entries_.emplace(name, e);
  return e.gauge;
}

FixedHistogram* MetricsRegistry::FindOrCreateHistogram(const std::string& name,
                                                       std::vector<double> bucket_bounds) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    AFF_CHECK_MSG(it->second.kind == Kind::kHistogram, "metric re-registered as another kind");
    return it->second.histogram;
  }
  histograms_.emplace_back(std::move(bucket_bounds));
  Entry e;
  e.kind = Kind::kHistogram;
  e.histogram = &histograms_.back();
  entries_.emplace(name, e);
  return e.histogram;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kCounter ? it->second.counter : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kGauge ? it->second.gauge : nullptr;
}

const FixedHistogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.kind == Kind::kHistogram ? it->second.histogram
                                                                    : nullptr;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Snapshot() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    switch (e.kind) {
      case Kind::kCounter:
        out.emplace_back(name, e.counter->value());
        break;
      case Kind::kGauge:
        out.emplace_back(name, e.gauge->value());
        break;
      case Kind::kHistogram:
        out.emplace_back(name + ".count", static_cast<double>(e.histogram->count()));
        out.emplace_back(name + ".mean", e.histogram->Mean());
        out.emplace_back(name + ".sum", e.histogram->sum());
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::RenderText() const {
  std::ostringstream out;
  for (const auto& [name, value] : Snapshot()) {
    out << name << " " << JsonNumber(value) << "\n";
  }
  return out.str();
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  auto comma = [&] {
    if (!first) {
      out << ",";
    }
    first = false;
  };
  for (const auto& [name, value] : Snapshot()) {
    comma();
    out << "\"" << JsonEscape(name) << "\":" << JsonNumber(value);
  }
  for (const auto& [name, e] : entries_) {
    if (e.kind != Kind::kHistogram) {
      continue;
    }
    comma();
    out << "\"" << JsonEscape(name) << ".buckets\":[";
    const auto& bounds = e.histogram->bounds();
    const auto& counts = e.histogram->counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) {
        out << ",";
      }
      const std::string bound =
          i < bounds.size() ? JsonNumber(bounds[i]) : std::string("null");  // +inf bucket
      out << "[" << bound << "," << counts[i] << "]";
    }
    out << "]";
  }
  out << "}";
  return out.str();
}

}  // namespace affsched
