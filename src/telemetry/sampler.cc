#include "src/telemetry/sampler.h"

#include <cstdio>
#include <sstream>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/telemetry/json.h"

namespace affsched {

Sampler::Sampler(SimDuration cadence) : cadence_(cadence) { AFF_CHECK(cadence_ > 0); }

void Sampler::AddProbe(const std::string& name, std::function<double()> probe) {
  AFF_CHECK_MSG(!started_, "probes must be registered before the first sample");
  AFF_CHECK(probe != nullptr);
  probes_.push_back(Probe{name, std::move(probe)});
}

void Sampler::Sample(SimTime now) {
  started_ = true;
  times_.push_back(now);
  std::vector<double> row;
  row.reserve(probes_.size());
  for (const Probe& p : probes_) {
    row.push_back(p.fn());
  }
  values_.push_back(std::move(row));
}

std::string Sampler::ToCsv() const {
  std::ostringstream out;
  out << "t_us";
  for (const Probe& p : probes_) {
    out << "," << p.name;
  }
  out << "\n";
  for (size_t i = 0; i < times_.size(); ++i) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "%.3f", ToMicroseconds(times_[i]));
    out << stamp;
    for (const double v : values_[i]) {
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.6g", v);
      out << "," << cell;
    }
    out << "\n";
  }
  return out.str();
}

std::string Sampler::ToJsonl() const {
  std::ostringstream out;
  for (size_t i = 0; i < times_.size(); ++i) {
    out << "{\"t_us\":" << JsonNumber(ToMicroseconds(times_[i]));
    for (size_t j = 0; j < probes_.size(); ++j) {
      out << ",\"" << JsonEscape(probes_[j].name) << "\":" << JsonNumber(values_[i][j]);
    }
    out << "}\n";
  }
  return out.str();
}

bool Sampler::WriteFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    Logf(LogLevel::kWarn, "cannot open %s for writing", path.c_str());
    return false;
  }
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = std::fclose(f) == 0 && written == text.size();
  if (!ok) {
    Logf(LogLevel::kWarn, "short write to %s", path.c_str());
  }
  return ok;
}

}  // namespace affsched
