// Time-series sampling of simulator state on a fixed sim-time cadence.
//
// A Sampler holds named probes — closures returning the current value of some
// quantity (a job's allocation, bus utilisation, a rolling %affinity window).
// The engine drives Sample() from a recurring event while the simulation
// runs; each call evaluates every probe once and appends one row. Rows are
// in-memory until exported as CSV (one column per probe) or JSONL (one object
// per sample), the two formats CI benches diff and plotting scripts ingest.
//
// Probes run in registration order within a row, and sampling happens at
// deterministic sim times, so a given seed produces byte-identical exports.

#ifndef SRC_TELEMETRY_SAMPLER_H_
#define SRC_TELEMETRY_SAMPLER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/time.h"

namespace affsched {

class Sampler {
 public:
  // `cadence` is the sim-time interval between samples (> 0).
  explicit Sampler(SimDuration cadence);

  // Registers a probe. Must be called before the first Sample(); the column
  // set is fixed once sampling starts.
  void AddProbe(const std::string& name, std::function<double()> probe);

  // Evaluates every probe and appends a row stamped `now`. Called by the
  // engine's sampling event; safe to call manually in tests.
  void Sample(SimTime now);

  SimDuration cadence() const { return cadence_; }
  size_t num_probes() const { return probes_.size(); }
  size_t num_samples() const { return times_.size(); }

  const std::vector<SimTime>& times() const { return times_; }
  // Row-major sample matrix: values()[row][probe].
  const std::vector<std::vector<double>>& values() const { return values_; }

  // "t_us,<probe>,<probe>,...\n" header plus one row per sample.
  std::string ToCsv() const;

  // One JSON object per line: {"t_us":..., "<probe>":..., ...}.
  std::string ToJsonl() const;

  // Writes `text` produced by an exporter to `path`. Returns false (and logs
  // at warn level) on I/O failure.
  static bool WriteFile(const std::string& path, const std::string& text);

 private:
  struct Probe {
    std::string name;
    std::function<double()> fn;
  };

  SimDuration cadence_;
  std::vector<Probe> probes_;
  std::vector<SimTime> times_;
  std::vector<std::vector<double>> values_;
  bool started_ = false;
};

}  // namespace affsched

#endif  // SRC_TELEMETRY_SAMPLER_H_
