// Per-job lifecycle spans: arrival -> queue wait -> dispatch chunks ->
// per-tier migrations -> completion, assembled by the engine's Accounting
// component as the run proceeds.
//
// The collector is the span-side companion of the decision trace
// (src/trace/decision_trace.h): decisions say why a placement happened,
// lifecycles say what it cost the job end to end. ChromeTraceWriter renders
// collected lifecycles as extra spans and instants on the per-job tracks;
// the derived affinity-efficiency numbers (reload-transient fraction,
// migration matrix) land in MetricsRegistry via Accounting::FinalizeMetrics.

#ifndef SRC_TELEMETRY_JOB_SPANS_H_
#define SRC_TELEMETRY_JOB_SPANS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/time.h"
#include "src/topology/topology.h"
#include "src/workload/job.h"

namespace affsched {

// One cross-processor move of a job's worker (first placements excluded).
struct JobMigration {
  SimTime when = 0;
  size_t proc = SIZE_MAX;
  size_t tier = 0;  // distance tier of the move (see DistanceTierName)
};

struct JobLifecycle {
  JobId job = kInvalidJobId;
  SimTime queued_since = -1;   // admission-queue entry (== arrival when unqueued)
  SimTime arrival = -1;        // entered service
  SimTime first_dispatch = -1; // first worker placed (-1 if never dispatched)
  SimTime completion = -1;     // -1 while running
  uint64_t dispatches = 0;
  uint64_t affine_dispatches = 0;
  uint64_t migrations_by_tier[kNumDistanceTiers] = {0, 0, 0, 0};
  // Individual moves, capped at kMaxRecordedMigrations per job so dispatch-
  // heavy runs stay bounded; the per-tier counters above are always exact.
  std::vector<JobMigration> migrations;

  double QueueWaitSeconds() const {
    return arrival >= 0 && queued_since >= 0 ? ToSeconds(arrival - queued_since) : 0.0;
  }
  double DispatchLatencySeconds() const {
    return first_dispatch >= 0 && arrival >= 0 ? ToSeconds(first_dispatch - arrival) : 0.0;
  }
};

// Receives lifecycle notifications from Accounting. Attach with
// Engine::SetSpanCollector; must outlive the engine.
class JobSpanCollector {
 public:
  static constexpr size_t kMaxRecordedMigrations = 4096;

  void OnArrival(JobId job, SimTime arrival, double queue_wait_s);
  // `tier` is SIZE_MAX for a first placement (nothing migrated).
  void OnDispatch(JobId job, size_t proc, SimTime when, size_t tier, bool affine);
  void OnCompletion(JobId job, SimTime when);

  const std::vector<JobLifecycle>& jobs() const { return jobs_; }
  // Lifecycle for `job`; nullptr if the job never arrived.
  const JobLifecycle* Find(JobId job) const;

  // One JSON object per lifecycle, one per line (summary fields plus the
  // per-tier migration counts; individual moves are trace-only).
  std::string ToJsonl() const;

 private:
  JobLifecycle& Slot(JobId job);

  std::vector<JobLifecycle> jobs_;  // indexed by JobId
};

}  // namespace affsched

#endif  // SRC_TELEMETRY_JOB_SPANS_H_
