#include "src/telemetry/chrome_trace.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <utility>

#include "src/telemetry/json.h"
#include "src/telemetry/sampler.h"

namespace affsched {

namespace {

constexpr int kProcessorsPid = 1;
constexpr int kJobsPid = 2;
constexpr int kSchedulerPid = 3;

std::string NameForJob(JobId job, const std::vector<std::string>& job_names) {
  if (job == kInvalidJobId) {
    return "?";
  }
  std::string label = job < job_names.size() ? job_names[job] : "job";
  label += "#" + std::to_string(job);
  return label;
}

// Serialises trace events one JSON object at a time, tracking the open span
// per processor track so every "B" gets a matching "E".
class Emitter {
 public:
  Emitter(std::ostringstream& out, const std::vector<std::string>& job_names)
      : out_(out), job_names_(job_names) {}

  void Meta(int pid, const std::string& process_name) {
    Comma();
    out_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"name\":\"" << JsonEscape(process_name) << "\"}}";
  }

  void ThreadMeta(int pid, int tid, const std::string& thread_name) {
    Comma();
    out_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"args\":{\"name\":\"" << JsonEscape(thread_name) << "\"}}";
  }

  void Begin(int pid, int tid, SimTime ts, const std::string& name, const std::string& cat) {
    Comma();
    out_ << "{\"name\":\"" << JsonEscape(name) << "\",\"cat\":\"" << cat
         << "\",\"ph\":\"B\",\"ts\":" << JsonNumber(ToMicroseconds(ts)) << ",\"pid\":" << pid
         << ",\"tid\":" << tid << "}";
  }

  void End(int pid, int tid, SimTime ts) {
    Comma();
    out_ << "{\"ph\":\"E\",\"ts\":" << JsonNumber(ToMicroseconds(ts)) << ",\"pid\":" << pid
         << ",\"tid\":" << tid << "}";
  }

  void Instant(int pid, int tid, SimTime ts, const std::string& name, const std::string& cat) {
    Comma();
    out_ << "{\"name\":\"" << JsonEscape(name) << "\",\"cat\":\"" << cat
         << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << JsonNumber(ToMicroseconds(ts))
         << ",\"pid\":" << pid << ",\"tid\":" << tid << "}";
  }

  void Count(int pid, int tid, SimTime ts, const std::string& name, double value) {
    Comma();
    out_ << "{\"name\":\"" << JsonEscape(name) << "\",\"ph\":\"C\",\"ts\":"
         << JsonNumber(ToMicroseconds(ts)) << ",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"args\":{\"procs\":" << JsonNumber(value) << "}}";
  }

  // Complete ("X") slice; `args_json` is a pre-rendered JSON object or empty.
  void Complete(int pid, int tid, SimTime ts, double dur_us, const std::string& name,
                const std::string& cat, const std::string& args_json = std::string()) {
    Comma();
    out_ << "{\"name\":\"" << JsonEscape(name) << "\",\"cat\":\"" << cat
         << "\",\"ph\":\"X\",\"ts\":" << JsonNumber(ToMicroseconds(ts))
         << ",\"dur\":" << JsonNumber(dur_us) << ",\"pid\":" << pid << ",\"tid\":" << tid;
    if (!args_json.empty()) {
      out_ << ",\"args\":" << args_json;
    }
    out_ << "}";
  }

  // Flow start ("s"): binds to the slice enclosing (pid, tid, ts).
  void FlowStart(int pid, int tid, SimTime ts, uint64_t id, const std::string& name) {
    Comma();
    out_ << "{\"name\":\"" << JsonEscape(name)
         << "\",\"cat\":\"decision\",\"ph\":\"s\",\"id\":" << id
         << ",\"ts\":" << JsonNumber(ToMicroseconds(ts)) << ",\"pid\":" << pid
         << ",\"tid\":" << tid << "}";
  }

  // Flow finish ("f", binding point "e" = enclosing slice).
  void FlowFinish(int pid, int tid, SimTime ts, uint64_t id, const std::string& name) {
    Comma();
    out_ << "{\"name\":\"" << JsonEscape(name)
         << "\",\"cat\":\"decision\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << id
         << ",\"ts\":" << JsonNumber(ToMicroseconds(ts)) << ",\"pid\":" << pid
         << ",\"tid\":" << tid << "}";
  }

  const std::string& JobName(JobId job) {
    auto it = name_cache_.find(job);
    if (it == name_cache_.end()) {
      it = name_cache_.emplace(job, NameForJob(job, job_names_)).first;
    }
    return it->second;
  }

 private:
  void Comma() {
    if (!first_) {
      out_ << ",";
    }
    first_ = false;
  }

  std::ostringstream& out_;
  const std::vector<std::string>& job_names_;
  std::map<JobId, std::string> name_cache_;
  bool first_ = true;
};

}  // namespace

void ChromeTraceWriter::Record(const TraceEvent& event) { events_.push_back(event); }

void ChromeTraceWriter::AddEvents(const std::vector<TraceEvent>& events) {
  events_.insert(events_.end(), events.begin(), events.end());
}

std::string ChromeTraceWriter::ToJson(size_t num_procs,
                                      const std::vector<std::string>& job_names) const {
  std::vector<TraceEvent> events = events_;
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.when < b.when; });
  const SimTime final_ts = events.empty() ? 0 : events.back().when;

  std::ostringstream body;
  Emitter emit(body, job_names);

  emit.Meta(kProcessorsPid, "processors");
  for (size_t p = 0; p < num_procs; ++p) {
    emit.ThreadMeta(kProcessorsPid, static_cast<int>(p), "cpu" + std::to_string(p));
  }
  emit.Meta(kJobsPid, "jobs");

  // Decision provenance: a pid-3 slice per decision plus a flow arrow to the
  // dispatch it caused. Flows are joined here at export time — each decision
  // for (proc, job) matches the first dispatch of that job on that processor
  // at or after the decision — so the simulation hot path never threads ids.
  struct FlowQueue {
    std::vector<std::pair<SimTime, uint64_t>> pending;  // (decision when, id)
    size_t next = 0;
  };
  std::map<std::pair<size_t, JobId>, FlowQueue> flows;
  if (decisions_ != nullptr && !decisions_->empty()) {
    emit.Meta(kSchedulerPid, "scheduler");
    for (size_t p = 0; p < num_procs; ++p) {
      emit.ThreadMeta(kSchedulerPid, static_cast<int>(p), "decide cpu" + std::to_string(p));
    }
    for (const DecisionRecord& d : *decisions_) {
      if (d.chosen_proc >= num_procs) {
        continue;
      }
      const int tid = static_cast<int>(d.chosen_proc);
      std::string args = "{\"site\":\"";
      args += DecisionSiteName(d.site);
      args += "\",\"job\":\"" + JsonEscape(emit.JobName(d.job)) + "\"";
      args += ",\"candidates\":" + std::to_string(d.candidates.size());
      for (const DecisionCandidate& c : d.candidates) {
        if (!c.chosen) {
          continue;
        }
        args += ",\"reload_cost_s\":" + JsonNumber(c.reload_cost_s);
        args += ",\"footprint_blocks\":" + JsonNumber(static_cast<double>(c.footprint_blocks));
        if (c.tier != SIZE_MAX) {
          args += ",\"tier\":" + std::to_string(c.tier);
        }
        break;
      }
      args += "}";
      emit.Complete(kSchedulerPid, tid, d.when, 0.0, DecisionReasonName(d.reason), "decision",
                    args);
      emit.FlowStart(kSchedulerPid, tid, d.when, d.id, "sched");
      flows[{d.chosen_proc, d.job}].pending.emplace_back(d.when, d.id);
    }
  }

  // Per-processor open span: what the track is currently showing.
  enum class Open { kNone, kSwitch, kRun, kHold };
  std::vector<Open> open(num_procs, Open::kNone);
  // Per-job replay state.
  std::map<JobId, int> allocation;
  std::map<JobId, bool> job_span_open;

  auto close_proc = [&](size_t p, SimTime ts) {
    if (open[p] != Open::kNone) {
      emit.End(kProcessorsPid, static_cast<int>(p), ts);
      open[p] = Open::kNone;
    }
  };
  auto begin_proc = [&](size_t p, SimTime ts, Open kind, const std::string& name,
                        const std::string& cat) {
    close_proc(p, ts);
    emit.Begin(kProcessorsPid, static_cast<int>(p), ts, name, cat);
    open[p] = kind;
  };
  auto count_alloc = [&](JobId job, SimTime ts, int delta) {
    if (job == kInvalidJobId) {
      return;
    }
    allocation[job] += delta;
    emit.Count(kJobsPid, static_cast<int>(job), ts, "alloc " + emit.JobName(job),
               allocation[job]);
  };

  for (const TraceEvent& e : events) {
    const bool on_proc = e.proc < num_procs;
    switch (e.kind) {
      case TraceEventKind::kJobArrival:
        if (e.job != kInvalidJobId && !job_span_open[e.job]) {
          emit.ThreadMeta(kJobsPid, static_cast<int>(e.job), emit.JobName(e.job));
          emit.Begin(kJobsPid, static_cast<int>(e.job), e.when, emit.JobName(e.job), "job");
          job_span_open[e.job] = true;
          count_alloc(e.job, e.when, 0);
        }
        break;
      case TraceEventKind::kJobCompletion:
        if (e.job != kInvalidJobId && job_span_open[e.job]) {
          emit.End(kJobsPid, static_cast<int>(e.job), e.when);
          job_span_open[e.job] = false;
          allocation[e.job] = 0;
          emit.Count(kJobsPid, static_cast<int>(e.job), e.when, "alloc " + emit.JobName(e.job),
                     0);
        }
        break;
      case TraceEventKind::kSwitchStart:
        if (on_proc) {
          begin_proc(e.proc, e.when, Open::kSwitch, "switch", "switch");
        }
        count_alloc(e.job, e.when, +1);
        break;
      case TraceEventKind::kDispatch:
      case TraceEventKind::kResume:
        if (on_proc) {
          begin_proc(e.proc, e.when, Open::kRun,
                     emit.JobName(e.job) + (e.affine ? " (affine)" : ""), "run");
          if (e.kind == TraceEventKind::kDispatch) {
            auto it = flows.find({e.proc, e.job});
            if (it != flows.end() && it->second.next < it->second.pending.size() &&
                it->second.pending[it->second.next].first <= e.when) {
              emit.FlowFinish(kProcessorsPid, static_cast<int>(e.proc), e.when,
                              it->second.pending[it->second.next].second, "sched");
              ++it->second.next;
            }
          }
        }
        break;
      case TraceEventKind::kHold:
        if (on_proc) {
          begin_proc(e.proc, e.when, Open::kHold, "hold " + emit.JobName(e.job), "hold");
        }
        break;
      case TraceEventKind::kYield:
        if (on_proc) {
          emit.Instant(kProcessorsPid, static_cast<int>(e.proc), e.when, "yield", "yield");
        }
        break;
      case TraceEventKind::kPreempt:
        if (on_proc) {
          close_proc(e.proc, e.when);
        }
        count_alloc(e.job, e.when, -1);
        break;
      case TraceEventKind::kRelease:
        if (on_proc) {
          close_proc(e.proc, e.when);
        }
        count_alloc(e.job, e.when, -1);
        break;
      case TraceEventKind::kThreadComplete:
        if (on_proc) {
          emit.Instant(kProcessorsPid, static_cast<int>(e.proc), e.when,
                       "thread done " + emit.JobName(e.job), "thread");
        }
        break;
      case TraceEventKind::kDeadlineMiss:
        // On the job's own track, so the miss pairs with its lifecycle span.
        if (e.job != kInvalidJobId) {
          emit.Instant(kJobsPid, static_cast<int>(e.job), e.when,
                       "deadline miss " + emit.JobName(e.job), "rt");
        }
        break;
    }
  }

  // Close anything still open so begin/end events balance.
  for (size_t p = 0; p < num_procs; ++p) {
    close_proc(p, final_ts);
  }
  for (const auto& [job, is_open] : job_span_open) {
    if (is_open) {
      emit.End(kJobsPid, static_cast<int>(job), final_ts);
    }
  }

  // Lifecycle annotations on the job tracks: admission-queue wait slices and
  // per-tier migration instants. X slices are self-contained, so these never
  // disturb the B/E balance above.
  if (spans_ != nullptr) {
    for (const JobLifecycle& lc : spans_->jobs()) {
      if (lc.arrival < 0) {
        continue;
      }
      const int tid = static_cast<int>(lc.job);
      if (lc.queued_since >= 0 && lc.queued_since < lc.arrival) {
        emit.Complete(kJobsPid, tid, lc.queued_since,
                      ToMicroseconds(lc.arrival - lc.queued_since),
                      "queued " + emit.JobName(lc.job), "queue");
      }
      for (const JobMigration& m : lc.migrations) {
        emit.Instant(kJobsPid, tid, m.when,
                     std::string("migrate:") + DistanceTierName(m.tier), "migration");
      }
    }
  }

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[" << body.str() << "]}";
  return out.str();
}

bool ChromeTraceWriter::WriteJsonFile(const std::string& path, size_t num_procs,
                                      const std::vector<std::string>& job_names) const {
  return Sampler::WriteFile(path, ToJson(num_procs, job_names));
}

}  // namespace affsched
