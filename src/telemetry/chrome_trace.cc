#include "src/telemetry/chrome_trace.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/telemetry/json.h"
#include "src/telemetry/sampler.h"

namespace affsched {

namespace {

constexpr int kProcessorsPid = 1;
constexpr int kJobsPid = 2;

std::string NameForJob(JobId job, const std::vector<std::string>& job_names) {
  if (job == kInvalidJobId) {
    return "?";
  }
  std::string label = job < job_names.size() ? job_names[job] : "job";
  label += "#" + std::to_string(job);
  return label;
}

// Serialises trace events one JSON object at a time, tracking the open span
// per processor track so every "B" gets a matching "E".
class Emitter {
 public:
  Emitter(std::ostringstream& out, const std::vector<std::string>& job_names)
      : out_(out), job_names_(job_names) {}

  void Meta(int pid, const std::string& process_name) {
    Comma();
    out_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
         << ",\"tid\":0,\"args\":{\"name\":\"" << JsonEscape(process_name) << "\"}}";
  }

  void ThreadMeta(int pid, int tid, const std::string& thread_name) {
    Comma();
    out_ << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"args\":{\"name\":\"" << JsonEscape(thread_name) << "\"}}";
  }

  void Begin(int pid, int tid, SimTime ts, const std::string& name, const std::string& cat) {
    Comma();
    out_ << "{\"name\":\"" << JsonEscape(name) << "\",\"cat\":\"" << cat
         << "\",\"ph\":\"B\",\"ts\":" << JsonNumber(ToMicroseconds(ts)) << ",\"pid\":" << pid
         << ",\"tid\":" << tid << "}";
  }

  void End(int pid, int tid, SimTime ts) {
    Comma();
    out_ << "{\"ph\":\"E\",\"ts\":" << JsonNumber(ToMicroseconds(ts)) << ",\"pid\":" << pid
         << ",\"tid\":" << tid << "}";
  }

  void Instant(int pid, int tid, SimTime ts, const std::string& name, const std::string& cat) {
    Comma();
    out_ << "{\"name\":\"" << JsonEscape(name) << "\",\"cat\":\"" << cat
         << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << JsonNumber(ToMicroseconds(ts))
         << ",\"pid\":" << pid << ",\"tid\":" << tid << "}";
  }

  void Count(int pid, int tid, SimTime ts, const std::string& name, double value) {
    Comma();
    out_ << "{\"name\":\"" << JsonEscape(name) << "\",\"ph\":\"C\",\"ts\":"
         << JsonNumber(ToMicroseconds(ts)) << ",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"args\":{\"procs\":" << JsonNumber(value) << "}}";
  }

  const std::string& JobName(JobId job) {
    auto it = name_cache_.find(job);
    if (it == name_cache_.end()) {
      it = name_cache_.emplace(job, NameForJob(job, job_names_)).first;
    }
    return it->second;
  }

 private:
  void Comma() {
    if (!first_) {
      out_ << ",";
    }
    first_ = false;
  }

  std::ostringstream& out_;
  const std::vector<std::string>& job_names_;
  std::map<JobId, std::string> name_cache_;
  bool first_ = true;
};

}  // namespace

void ChromeTraceWriter::Record(const TraceEvent& event) { events_.push_back(event); }

void ChromeTraceWriter::AddEvents(const std::vector<TraceEvent>& events) {
  events_.insert(events_.end(), events.begin(), events.end());
}

std::string ChromeTraceWriter::ToJson(size_t num_procs,
                                      const std::vector<std::string>& job_names) const {
  std::vector<TraceEvent> events = events_;
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.when < b.when; });
  const SimTime final_ts = events.empty() ? 0 : events.back().when;

  std::ostringstream body;
  Emitter emit(body, job_names);

  emit.Meta(kProcessorsPid, "processors");
  for (size_t p = 0; p < num_procs; ++p) {
    emit.ThreadMeta(kProcessorsPid, static_cast<int>(p), "cpu" + std::to_string(p));
  }
  emit.Meta(kJobsPid, "jobs");

  // Per-processor open span: what the track is currently showing.
  enum class Open { kNone, kSwitch, kRun, kHold };
  std::vector<Open> open(num_procs, Open::kNone);
  // Per-job replay state.
  std::map<JobId, int> allocation;
  std::map<JobId, bool> job_span_open;

  auto close_proc = [&](size_t p, SimTime ts) {
    if (open[p] != Open::kNone) {
      emit.End(kProcessorsPid, static_cast<int>(p), ts);
      open[p] = Open::kNone;
    }
  };
  auto begin_proc = [&](size_t p, SimTime ts, Open kind, const std::string& name,
                        const std::string& cat) {
    close_proc(p, ts);
    emit.Begin(kProcessorsPid, static_cast<int>(p), ts, name, cat);
    open[p] = kind;
  };
  auto count_alloc = [&](JobId job, SimTime ts, int delta) {
    if (job == kInvalidJobId) {
      return;
    }
    allocation[job] += delta;
    emit.Count(kJobsPid, static_cast<int>(job), ts, "alloc " + emit.JobName(job),
               allocation[job]);
  };

  for (const TraceEvent& e : events) {
    const bool on_proc = e.proc < num_procs;
    switch (e.kind) {
      case TraceEventKind::kJobArrival:
        if (e.job != kInvalidJobId && !job_span_open[e.job]) {
          emit.ThreadMeta(kJobsPid, static_cast<int>(e.job), emit.JobName(e.job));
          emit.Begin(kJobsPid, static_cast<int>(e.job), e.when, emit.JobName(e.job), "job");
          job_span_open[e.job] = true;
          count_alloc(e.job, e.when, 0);
        }
        break;
      case TraceEventKind::kJobCompletion:
        if (e.job != kInvalidJobId && job_span_open[e.job]) {
          emit.End(kJobsPid, static_cast<int>(e.job), e.when);
          job_span_open[e.job] = false;
          allocation[e.job] = 0;
          emit.Count(kJobsPid, static_cast<int>(e.job), e.when, "alloc " + emit.JobName(e.job),
                     0);
        }
        break;
      case TraceEventKind::kSwitchStart:
        if (on_proc) {
          begin_proc(e.proc, e.when, Open::kSwitch, "switch", "switch");
        }
        count_alloc(e.job, e.when, +1);
        break;
      case TraceEventKind::kDispatch:
      case TraceEventKind::kResume:
        if (on_proc) {
          begin_proc(e.proc, e.when, Open::kRun,
                     emit.JobName(e.job) + (e.affine ? " (affine)" : ""), "run");
        }
        break;
      case TraceEventKind::kHold:
        if (on_proc) {
          begin_proc(e.proc, e.when, Open::kHold, "hold " + emit.JobName(e.job), "hold");
        }
        break;
      case TraceEventKind::kYield:
        if (on_proc) {
          emit.Instant(kProcessorsPid, static_cast<int>(e.proc), e.when, "yield", "yield");
        }
        break;
      case TraceEventKind::kPreempt:
        if (on_proc) {
          close_proc(e.proc, e.when);
        }
        count_alloc(e.job, e.when, -1);
        break;
      case TraceEventKind::kRelease:
        if (on_proc) {
          close_proc(e.proc, e.when);
        }
        count_alloc(e.job, e.when, -1);
        break;
      case TraceEventKind::kThreadComplete:
        if (on_proc) {
          emit.Instant(kProcessorsPid, static_cast<int>(e.proc), e.when,
                       "thread done " + emit.JobName(e.job), "thread");
        }
        break;
    }
  }

  // Close anything still open so begin/end events balance.
  for (size_t p = 0; p < num_procs; ++p) {
    close_proc(p, final_ts);
  }
  for (const auto& [job, is_open] : job_span_open) {
    if (is_open) {
      emit.End(kJobsPid, static_cast<int>(job), final_ts);
    }
  }

  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[" << body.str() << "]}";
  return out.str();
}

bool ChromeTraceWriter::WriteJsonFile(const std::string& path, size_t num_procs,
                                      const std::vector<std::string>& job_names) const {
  return Sampler::WriteFile(path, ToJson(num_procs, job_names));
}

}  // namespace affsched
