// Lightweight wall-clock self-profiling: attribute where the *simulator*
// (not the simulated machine) spends its time — event-queue churn vs. cache
// model vs. policy decisions — so bench_sim_microbench can report a
// breakdown instead of a single end-to-end number.
//
// A Profiler owns named ProfileSections; a ScopedTimer accumulates the
// wall-clock duration of its scope into one section (steady_clock, ~20 ns per
// start/stop pair). Sections nest freely but are independent accumulators —
// no call-tree is built.

#ifndef SRC_TELEMETRY_PROFILE_H_
#define SRC_TELEMETRY_PROFILE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

namespace affsched {

class ProfileSection {
 public:
  void Add(uint64_t nanos) {
    total_ns_ += nanos;
    ++count_;
  }

  uint64_t total_ns() const { return total_ns_; }
  uint64_t count() const { return count_; }
  double MeanNs() const {
    return count_ > 0 ? static_cast<double>(total_ns_) / static_cast<double>(count_) : 0.0;
  }

 private:
  uint64_t total_ns_ = 0;
  uint64_t count_ = 0;
};

class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Stable for the profiler's lifetime.
  ProfileSection* Section(const std::string& name);

  // "section total_ms count mean_us share" rows, sorted by total descending.
  std::string Report() const;

  // {"<section>": {"total_ns":..., "count":...}, ...}
  std::string ToJson() const;

 private:
  std::map<std::string, ProfileSection*> by_name_;
  std::deque<ProfileSection> sections_;
};

// Accumulates the lifetime of the scope into `section`. A null section makes
// the timer a no-op, so call sites need no branches of their own.
class ScopedTimer {
 public:
  explicit ScopedTimer(ProfileSection* section)
      : section_(section),
        start_(section ? std::chrono::steady_clock::now()
                       : std::chrono::steady_clock::time_point{}) {}

  ~ScopedTimer() {
    if (section_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      section_->Add(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ProfileSection* section_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace affsched

#endif  // SRC_TELEMETRY_PROFILE_H_
