// Chrome trace-event export: converts the engine's scheduling event stream
// into the JSON format chrome://tracing and Perfetto load natively.
//
// The writer is itself a TraceSink, so it can be attached to the engine
// directly, or fed after the fact from any recorded event list (e.g.
// RingTrace::Events()). The ASCII Gantt remains the quick-look tool; this is
// the deep-zoom one.
//
// Track layout:
//   * pid 1 "processors": one thread per processor. Begin/end ("B"/"E")
//     spans show what occupies the processor — a named job chunk, the
//     reallocation path-length cost ("switch"), or an idle hold ("hold").
//     Thread completions appear as instant events.
//   * pid 2 "jobs": one thread per job, spanning arrival to completion, plus
//     a per-job "allocation" counter track ("C" events) replaying processors
//     held over time. With AttachLifecycles, admission-queue waits render as
//     "queued" slices and per-tier migrations as instant events.
//   * pid 3 "scheduler" (with AttachDecisions): one thread per processor
//     carrying a slice per scheduling decision — reason code, site, and the
//     candidate scoring in args — linked by a flow arrow ("s"/"f") to the
//     dispatch it caused on the matching pid-1 processor track.
//
// Every "B" is closed by a matching "E" on the same track — spans left open
// by the end of the recorded window (or by a silent processor release) are
// closed at the final event timestamp, so the output always validates.

#ifndef SRC_TELEMETRY_CHROME_TRACE_H_
#define SRC_TELEMETRY_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "src/telemetry/job_spans.h"
#include "src/trace/decision_trace.h"
#include "src/trace/trace.h"

namespace affsched {

class ChromeTraceWriter : public TraceSink {
 public:
  ChromeTraceWriter() = default;

  // TraceSink: appends one event to the stream.
  void Record(const TraceEvent& event) override;

  // Bulk append (e.g. from RingTrace::Events()).
  void AddEvents(const std::vector<TraceEvent>& events);

  size_t size() const { return events_.size(); }

  // Attaches decision-provenance records (e.g. DecisionTrace::Records());
  // nullptr detaches. ToJson then renders the pid-3 "scheduler" process and
  // joins each decision to the dispatch it produced with flow events. The
  // records must stay alive until after ToJson and be in chronological order.
  void AttachDecisions(const std::vector<DecisionRecord>* decisions) { decisions_ = decisions; }

  // Attaches per-job lifecycle spans; nullptr detaches. ToJson then adds
  // admission-queue slices and migration instants to the pid-2 job tracks.
  // The collector must stay alive until after ToJson.
  void AttachLifecycles(const JobSpanCollector* spans) { spans_ = spans; }

  // Renders the accumulated stream. `num_procs` fixes the processor track
  // count; `job_names[id]` labels job tracks and spans (ids beyond the vector
  // fall back to "job<id>"). Events are replayed in timestamp order.
  std::string ToJson(size_t num_procs, const std::vector<std::string>& job_names) const;

  // Convenience: render and write to `path`; false (with a warning logged) on
  // I/O failure.
  bool WriteJsonFile(const std::string& path, size_t num_procs,
                     const std::vector<std::string>& job_names) const;

 private:
  std::vector<TraceEvent> events_;
  const std::vector<DecisionRecord>* decisions_ = nullptr;
  const JobSpanCollector* spans_ = nullptr;
};

}  // namespace affsched

#endif  // SRC_TELEMETRY_CHROME_TRACE_H_
