#include "src/telemetry/manifest.h"

#include <sstream>

#if defined(_WIN32)
// No gethostname without winsock initialisation; provenance falls back.
#else
#include <unistd.h>
#endif

#include "src/telemetry/json.h"
#include "src/telemetry/sampler.h"

namespace affsched {

namespace {

#ifndef AFFSCHED_GIT_SHA
#define AFFSCHED_GIT_SHA "unknown"
#endif
#ifndef AFFSCHED_BUILD_TYPE
#define AFFSCHED_BUILD_TYPE "unknown"
#endif

const char* CompilerId() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

}  // namespace

const char* RunManifest::GitSha() { return AFFSCHED_GIT_SHA; }

RunManifest::RunManifest() {
  SetString("git_sha", GitSha());
  SetString("build_type", AFFSCHED_BUILD_TYPE);
  SetString("compiler", CompilerId());
}

void RunManifest::SetString(const std::string& key, const std::string& value) {
  members_[key] = "\"" + JsonEscape(value) + "\"";
}

void RunManifest::SetNumber(const std::string& key, double value) {
  members_[key] = JsonNumber(value);
}

void RunManifest::SetUint(const std::string& key, uint64_t value) {
  members_[key] = std::to_string(value);
}

void RunManifest::SetBool(const std::string& key, bool value) {
  members_[key] = value ? "true" : "false";
}

void RunManifest::SetJson(const std::string& key, const std::string& json) {
  members_[key] = json;
}

void RunManifest::SetProvenance(int argc, const char* const* argv) {
  SetString("git_rev", GitSha());
  std::string host = "unknown";
#if !defined(_WIN32)
  char buffer[256];
  if (gethostname(buffer, sizeof(buffer)) == 0) {
    buffer[sizeof(buffer) - 1] = '\0';
    host = buffer;
  }
#endif
  SetString("hostname", host);
  std::string args = "[";
  for (int i = 0; i < argc; ++i) {
    if (i > 0) {
      args += ",";
    }
    args += "\"" + JsonEscape(argv[i] != nullptr ? argv[i] : "") + "\"";
  }
  args += "]";
  SetJson("argv", args);
}

void RunManifest::AddMetrics(const MetricsRegistry& registry) {
  SetJson("metrics", registry.ToJson());
}

void RunManifest::AddProfile(const Profiler& profiler) { SetJson("profile", profiler.ToJson()); }

std::string RunManifest::ToJson() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& [key, value] : members_) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\"" << JsonEscape(key) << "\":" << value;
  }
  out << "}";
  return out.str();
}

bool RunManifest::WriteFile(const std::string& path) const {
  return Sampler::WriteFile(path, ToJson() + "\n");
}

}  // namespace affsched
