#include "src/machine/machine.h"

#include <algorithm>
#include <utility>

#include "src/cache/exact_model.h"
#include "src/cache/footprint.h"
#include "src/cache/partitioned.h"
#include "src/common/check.h"
#include "src/common/rng.h"

namespace affsched {

std::string MachineConfig::Validate() const {
  if (num_processors == 0) {
    return "machine requires at least one processor (procs=0)";
  }
  if (geometry.line_bytes == 0 || geometry.total_bytes == 0 || geometry.TotalLines() == 0) {
    return "cache geometry has zero capacity (line_bytes/total_bytes)";
  }
  if (geometry.ways == 0) {
    return "cache geometry needs at least one way";
  }
  if (processor_speed <= 0.0) {
    return "processor_speed must be > 0";
  }
  if (cache_size_factor <= 0.0) {
    return "cache_size_factor must be > 0";
  }
  if (!topology.IsFlat() && cache_model != CacheModelKind::kFootprint) {
    return "hierarchical topologies require the footprint cache model "
           "(the exact per-line model has no LLC tier)";
  }
  if (cache_model == CacheModelKind::kPartitioned) {
    if (num_colors < 1 || num_colors > 64) {
      return "partitioned cache model requires colors in 1..64";
    }
  } else if (num_colors != 0) {
    return "colors is only meaningful with the partitioned cache model";
  }
  return topology.Validate(num_processors);
}

namespace {

std::unique_ptr<CacheModel> BuildCacheModel(const MachineConfig& config, size_t proc,
                                            const Topology& topology,
                                            TopologyCacheState* topo_state) {
  switch (config.cache_model) {
    case CacheModelKind::kFootprint:
      if (topo_state != nullptr) {
        return std::make_unique<HierarchicalCacheModel>(
            config.CapacityBlocks(), config.geometry.ways, topology, topo_state, proc);
      }
      return std::make_unique<FootprintCache>(config.CapacityBlocks(),
                                              config.geometry.ways);
    case CacheModelKind::kPartitioned:
      return std::make_unique<PartitionedCacheModel>(config.CapacityBlocks(),
                                                     config.geometry.ways, config.num_colors);
    case CacheModelKind::kExact: {
      // The exact model's capacity is set by its geometry, so the future-
      // machine cache-size factor scales the byte size directly.
      CacheGeometry geometry = config.geometry;
      geometry.total_bytes = static_cast<size_t>(
          static_cast<double>(geometry.total_bytes) * config.cache_size_factor);
      // Per-processor stream seed, derived so processors are decorrelated.
      uint64_t state = config.cache_model_seed + proc;
      return std::make_unique<ExactCacheModel>(geometry, SplitMix64(state));
    }
  }
  AFF_CHECK_MSG(false, "unknown cache model kind");
  return nullptr;
}

}  // namespace

Machine::Machine(const MachineConfig& config)
    : config_(config),
      topology_(config.topology, config.num_processors),
      bus_(config.bus) {
  const std::string problem = config_.Validate();
  AFF_CHECK_MSG(problem.empty(), problem.c_str());
  if (!config_.topology.IsFlat()) {
    topo_state_ = std::make_unique<TopologyCacheState>(
        topology_, config_.topology.LlcCapacityBlocks(config_.geometry.line_bytes),
        config_.topology.llc_ways);
  }
  processors_.reserve(config_.num_processors);
  for (size_t i = 0; i < config_.num_processors; ++i) {
    processors_.emplace_back(i, BuildCacheModel(config_, i, topology_, topo_state_.get()),
                             config_.task_history_depth);
  }
}

Processor& Machine::processor(size_t i) {
  AFF_CHECK(i < processors_.size());
  return processors_[i];
}

Machine::ChunkExecution Machine::ExecuteChunk(SimTime now, size_t proc, CacheOwner owner,
                                              const WorkingSetParams& ws, SimDuration work,
                                              const std::vector<SiblingPlacement>* siblings) {
  AFF_CHECK(work >= 0);
  Processor& p = processor(proc);
  // Footprint evolution is driven by the *work* performed (same blocks get
  // touched for the same amount of computation regardless of clock rate).
  const CacheChunkResult misses = p.cache().RunChunk(owner, ws, ToSeconds(work));

  // Coherence: writes to shared data invalidate sibling workers' copies in
  // their caches. The invalidations travel over the shared bus.
  double invalidations = 0.0;
  if (ws.shared_write_per_s > 0.0 && siblings != nullptr && !siblings->empty()) {
    const double per_sibling = ws.shared_write_per_s * ToSeconds(work);
    for (const SiblingPlacement& sibling : *siblings) {
      if (sibling.proc == proc) {
        continue;
      }
      CacheModel& cache = processor(sibling.proc).cache();
      const double eject = std::min(per_sibling, cache.Resident(sibling.owner));
      cache.EjectBlocks(sibling.owner, eject);
      invalidations += eject;
    }
  }

  const double inflation = bus_.InflationFactor(now);
  ChunkExecution exec;
  exec.reload_misses = misses.reload_misses;
  exec.steady_misses = misses.steady_misses;
  if (topo_state_ != nullptr) {
    // Hierarchical pricing: LLC hits refill at a fraction of a memory fill,
    // cross-node fetches pay the interconnect multiplier, and LLC hits stay
    // off the shared bus (they are cluster-local traffic).
    const double mss = config_.MissServiceSeconds();
    const double local_fills =
        misses.reload_misses - misses.reload_llc_hits - misses.reload_remote;
    const double llc_seconds =
        misses.reload_llc_hits * mss * config_.topology.llc_hit_factor * inflation;
    const double remote_seconds =
        misses.reload_remote * mss * config_.topology.remote_multiplier * inflation;
    const double reload_seconds = llc_seconds + remote_seconds + local_fills * mss * inflation;
    const double steady_seconds = misses.steady_misses * mss * inflation;
    bus_.RecordTraffic(now, misses.TotalMisses() - misses.reload_llc_hits + invalidations);
    exec.tiered = true;
    exec.reload_stall = Seconds(reload_seconds);
    exec.steady_stall = Seconds(steady_seconds);
    exec.reload_llc = Seconds(llc_seconds);
    exec.reload_remote = Seconds(remote_seconds);
    exec.stall = exec.reload_stall + exec.steady_stall;
  } else {
    const double stall_seconds = misses.TotalMisses() * config_.MissServiceSeconds() * inflation;
    bus_.RecordTraffic(now, misses.TotalMisses() + invalidations);
    exec.stall = Seconds(stall_seconds);
  }
  exec.wall = config_.ComputeTime(work) + exec.stall;
  return exec;
}

}  // namespace affsched
