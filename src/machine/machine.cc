#include "src/machine/machine.h"

#include <algorithm>

#include "src/common/check.h"

namespace affsched {

Machine::Machine(const MachineConfig& config) : config_(config), bus_(config.bus) {
  AFF_CHECK(config_.num_processors >= 1);
  AFF_CHECK(config_.processor_speed > 0.0);
  AFF_CHECK(config_.cache_size_factor > 0.0);
  processors_.reserve(config_.num_processors);
  for (size_t i = 0; i < config_.num_processors; ++i) {
    processors_.emplace_back(i, config_.CapacityBlocks(), config_.geometry.ways,
                             config_.task_history_depth);
  }
}

Processor& Machine::processor(size_t i) {
  AFF_CHECK(i < processors_.size());
  return processors_[i];
}

Machine::ChunkExecution Machine::ExecuteChunk(SimTime now, size_t proc, CacheOwner owner,
                                              const WorkingSetParams& ws, SimDuration work,
                                              const std::vector<SiblingPlacement>* siblings) {
  AFF_CHECK(work >= 0);
  Processor& p = processor(proc);
  // Footprint evolution is driven by the *work* performed (same blocks get
  // touched for the same amount of computation regardless of clock rate).
  const FootprintCache::ChunkResult misses = p.cache().RunChunk(owner, ws, ToSeconds(work));

  // Coherence: writes to shared data invalidate sibling workers' copies in
  // their caches. The invalidations travel over the shared bus.
  double invalidations = 0.0;
  if (ws.shared_write_per_s > 0.0 && siblings != nullptr && !siblings->empty()) {
    const double per_sibling = ws.shared_write_per_s * ToSeconds(work);
    for (const SiblingPlacement& sibling : *siblings) {
      if (sibling.proc == proc) {
        continue;
      }
      FootprintCache& cache = processor(sibling.proc).cache();
      const double eject = std::min(per_sibling, cache.Resident(sibling.owner));
      cache.EjectBlocks(sibling.owner, eject);
      invalidations += eject;
    }
  }

  const double inflation = bus_.InflationFactor(now);
  const double stall_seconds = misses.TotalMisses() * config_.MissServiceSeconds() * inflation;
  bus_.RecordTraffic(now, misses.TotalMisses() + invalidations);

  ChunkExecution exec;
  exec.reload_misses = misses.reload_misses;
  exec.steady_misses = misses.steady_misses;
  exec.stall = Seconds(stall_seconds);
  exec.wall = config_.ComputeTime(work) + exec.stall;
  return exec;
}

}  // namespace affsched
