#include "src/machine/machine.h"

#include <algorithm>
#include <utility>

#include "src/cache/exact_model.h"
#include "src/cache/footprint.h"
#include "src/common/check.h"
#include "src/common/rng.h"

namespace affsched {
namespace {

std::unique_ptr<CacheModel> BuildCacheModel(const MachineConfig& config, size_t proc) {
  switch (config.cache_model) {
    case CacheModelKind::kFootprint:
      return std::make_unique<FootprintCache>(config.CapacityBlocks(),
                                              config.geometry.ways);
    case CacheModelKind::kExact: {
      // The exact model's capacity is set by its geometry, so the future-
      // machine cache-size factor scales the byte size directly.
      CacheGeometry geometry = config.geometry;
      geometry.total_bytes = static_cast<size_t>(
          static_cast<double>(geometry.total_bytes) * config.cache_size_factor);
      // Per-processor stream seed, derived so processors are decorrelated.
      uint64_t state = config.cache_model_seed + proc;
      return std::make_unique<ExactCacheModel>(geometry, SplitMix64(state));
    }
  }
  AFF_CHECK_MSG(false, "unknown cache model kind");
  return nullptr;
}

}  // namespace

Machine::Machine(const MachineConfig& config) : config_(config), bus_(config.bus) {
  AFF_CHECK(config_.num_processors >= 1);
  AFF_CHECK(config_.processor_speed > 0.0);
  AFF_CHECK(config_.cache_size_factor > 0.0);
  processors_.reserve(config_.num_processors);
  for (size_t i = 0; i < config_.num_processors; ++i) {
    processors_.emplace_back(i, BuildCacheModel(config_, i), config_.task_history_depth);
  }
}

Processor& Machine::processor(size_t i) {
  AFF_CHECK(i < processors_.size());
  return processors_[i];
}

Machine::ChunkExecution Machine::ExecuteChunk(SimTime now, size_t proc, CacheOwner owner,
                                              const WorkingSetParams& ws, SimDuration work,
                                              const std::vector<SiblingPlacement>* siblings) {
  AFF_CHECK(work >= 0);
  Processor& p = processor(proc);
  // Footprint evolution is driven by the *work* performed (same blocks get
  // touched for the same amount of computation regardless of clock rate).
  const CacheChunkResult misses = p.cache().RunChunk(owner, ws, ToSeconds(work));

  // Coherence: writes to shared data invalidate sibling workers' copies in
  // their caches. The invalidations travel over the shared bus.
  double invalidations = 0.0;
  if (ws.shared_write_per_s > 0.0 && siblings != nullptr && !siblings->empty()) {
    const double per_sibling = ws.shared_write_per_s * ToSeconds(work);
    for (const SiblingPlacement& sibling : *siblings) {
      if (sibling.proc == proc) {
        continue;
      }
      CacheModel& cache = processor(sibling.proc).cache();
      const double eject = std::min(per_sibling, cache.Resident(sibling.owner));
      cache.EjectBlocks(sibling.owner, eject);
      invalidations += eject;
    }
  }

  const double inflation = bus_.InflationFactor(now);
  const double stall_seconds = misses.TotalMisses() * config_.MissServiceSeconds() * inflation;
  bus_.RecordTraffic(now, misses.TotalMisses() + invalidations);

  ChunkExecution exec;
  exec.reload_misses = misses.reload_misses;
  exec.steady_misses = misses.steady_misses;
  exec.stall = Seconds(stall_seconds);
  exec.wall = config_.ComputeTime(work) + exec.stall;
  return exec;
}

}  // namespace affsched
