// The simulated multiprocessor: processors with private footprint caches, a
// shared bus, and machine-wide configuration.
//
// Defaults model the paper's Sequent Symmetry Model B (20 processors, 64 KB
// 2-way caches, 0.75 us per block fill, 750 us reallocation path length).
// `processor_speed` and `cache_size_factor` scale the machine into the future
// exactly as Section 7 of the paper does: computation scales linearly with
// processor speed, miss service improves only as sqrt(speed), and cache
// capacity scales with the cache-size factor — so the simulator can *run*
// the future-machine experiments that the paper could only model analytically.

#ifndef SRC_MACHINE_MACHINE_H_
#define SRC_MACHINE_MACHINE_H_

#include <cmath>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/bus.h"
#include "src/cache/cache_model.h"
#include "src/cache/geometry.h"
#include "src/topology/hier_cache.h"
#include "src/topology/topology.h"

namespace affsched {

// Which CacheModel implementation each processor's private cache uses.
enum class CacheModelKind {
  kFootprint,    // analytic working-set model (the experiments' default)
  kExact,        // per-line set-associative simulation driven by refstreams
  kPartitioned,  // colored/partitioned analytic model (rt workloads)
};

struct MachineConfig {
  size_t num_processors = 20;
  // Depth of the per-processor task history (T of Section 5.3).
  size_t task_history_depth = 1;
  CacheGeometry geometry;
  CacheModelKind cache_model = CacheModelKind::kFootprint;
  // Seeds the exact model's per-owner reference streams (unused by the
  // analytic model).
  uint64_t cache_model_seed = 0;
  // Uncontended per-block miss service time on the base machine.
  SimDuration miss_service = kSymmetryMissService;
  // Kernel path-length cost of a reallocation on the base machine.
  SimDuration switch_cost = kSymmetrySwitchCost;
  // Number of page colors the partitioned cache model divides each cache
  // into (1..64). Only meaningful — and only validated — when cache_model is
  // kPartitioned; 0 otherwise.
  size_t num_colors = 0;
  // Speed of this machine's processors relative to the base Symmetry.
  double processor_speed = 1.0;
  // Cache size relative to the base Symmetry.
  double cache_size_factor = 1.0;
  SharedBus::Config bus;
  // Machine hierarchy (clusters, nodes, shared LLCs). The default
  // symmetry-flat spec reproduces the paper's bus machine byte-identically.
  TopologySpec topology;

  // Returns an empty string if the configuration is buildable, else a
  // human-readable error (zero processors, zero-capacity cache levels, ...).
  // Machine's constructor enforces this; parsers surface it as a clean error.
  std::string Validate() const;

  double CapacityBlocks() const {
    return static_cast<double>(geometry.TotalLines()) * cache_size_factor;
  }

  // Miss service shrinks as sqrt(processor_speed): memory keeps up with the
  // processor only partially (Section 7.1.3).
  double MissServiceSeconds() const {
    return ToSeconds(miss_service) / std::sqrt(processor_speed);
  }

  // Wall time to execute `work` (expressed in base-machine processor-seconds).
  SimDuration ComputeTime(SimDuration work) const {
    return static_cast<SimDuration>(static_cast<double>(work) / processor_speed);
  }

  SimDuration SwitchCost() const { return ComputeTime(switch_cost); }
};

// One processor: a private cache plus affinity history — an ordered list of
// the last T tasks to have run here (Section 5.3; the paper evaluates T = 1
// and notes deeper histories as a variation).
class Processor {
 public:
  Processor(size_t id, std::unique_ptr<CacheModel> cache, size_t history_depth = 1)
      : id_(id), history_depth_(history_depth), cache_(std::move(cache)) {}

  size_t id() const { return id_; }
  CacheModel& cache() { return *cache_; }
  const CacheModel& cache() const { return *cache_; }

  // Task currently dispatched here (kNoOwner when idle).
  CacheOwner current_task() const { return current_task_; }
  void SetCurrentTask(CacheOwner task) { current_task_ = task; }

  // History: the last task to have run on this processor.
  CacheOwner last_task() const { return history_.empty() ? kNoOwner : history_.front(); }

  // Most-recent-first list of the last T distinct tasks to have run here.
  const std::deque<CacheOwner>& recent_tasks() const { return history_; }

  void RecordDispatch(CacheOwner task) {
    current_task_ = task;
    // Move-to-front semantics: re-dispatching a remembered task refreshes it.
    for (auto it = history_.begin(); it != history_.end(); ++it) {
      if (*it == task) {
        history_.erase(it);
        break;
      }
    }
    history_.push_front(task);
    while (history_.size() > history_depth_) {
      history_.pop_back();
    }
  }

 private:
  size_t id_;
  size_t history_depth_;
  std::unique_ptr<CacheModel> cache_;
  CacheOwner current_task_ = kNoOwner;
  std::deque<CacheOwner> history_;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  const MachineConfig& config() const { return config_; }
  size_t num_processors() const { return processors_.size(); }
  Processor& processor(size_t i);
  SharedBus& bus() { return bus_; }
  const Topology& topology() const { return topology_; }

  struct ChunkExecution {
    SimDuration wall = 0;        // total wall time including miss stalls
    SimDuration stall = 0;       // portion spent waiting on misses
    double reload_misses = 0.0;  // affinity-related misses
    double steady_misses = 0.0;
    // Hierarchical topologies price reload misses by source, so the
    // reload/steady split is computed here rather than pro-rated from miss
    // counts downstream. When `tiered` is set the dispatcher uses these
    // spans directly; flat machines leave it false (and the flat arithmetic
    // byte-identical to the pre-topology code).
    bool tiered = false;
    SimDuration reload_stall = 0;
    SimDuration steady_stall = 0;
    SimDuration reload_llc = 0;     // portion of reload_stall filled from the LLC
    SimDuration reload_remote = 0;  // portion filled across the interconnect
  };

  // A sibling worker's placement, for coherence modelling.
  struct SiblingPlacement {
    size_t proc = 0;
    CacheOwner owner = kNoOwner;
  };

  // Executes `work` (base-machine processor-seconds) of `owner` on processor
  // `proc` starting at time `now`, evolving the cache and bus state. If the
  // task writes shared data (ws.shared_write_per_s > 0) and `siblings` lists
  // the same job's workers active on other processors, invalidations erode
  // their footprints and add bus traffic (the Symmetry's invalidation-based
  // protocol).
  ChunkExecution ExecuteChunk(SimTime now, size_t proc, CacheOwner owner,
                              const WorkingSetParams& ws, SimDuration work,
                              const std::vector<SiblingPlacement>* siblings = nullptr);

 private:
  MachineConfig config_;
  Topology topology_;
  // Shared LLC + last-node directory; non-null only for hierarchical
  // topologies (flat machines build plain FootprintCaches, untouched).
  std::unique_ptr<TopologyCacheState> topo_state_;
  std::vector<Processor> processors_;
  SharedBus bus_;
};

}  // namespace affsched

#endif  // SRC_MACHINE_MACHINE_H_
