#include "src/measure/section4_exact.h"

#include <algorithm>

#include "src/cache/refstream.h"
#include "src/common/check.h"

namespace affsched {

double DeriveReferenceRate(const AppProfile& profile) {
  const WorkingSetParams& ws = profile.working_set;
  AFF_CHECK(ws.buildup_tau_s > 0.0);
  AFF_CHECK(ws.blocks > 0.0);
  return ws.blocks / ws.buildup_tau_s;
}

namespace {

ReferenceStreamParams StreamParamsFor(const AppProfile& profile, double rate) {
  ReferenceStreamParams params;
  params.working_set_blocks = static_cast<size_t>(profile.working_set.blocks);
  // The streaming component realises the steady miss rate: a fraction
  // m / rate of references go to fresh blocks.
  params.streaming_fraction =
      std::min(0.5, profile.working_set.steady_miss_per_s / rate);
  return params;
}

// One program as a reference generator with turnover bookkeeping.
class StreamedProgram {
 public:
  StreamedProgram(const AppProfile& profile, const Section4ExactOptions& options, uint64_t seed)
      : profile_(profile),
        rate_(DeriveReferenceRate(profile)),
        stream_(StreamParamsFor(profile, rate_), seed),
        turnover_refs_(static_cast<uint64_t>(rate_ * ToSeconds(options.thread_length))) {}

  double rate() const { return rate_; }

  // Runs `refs` references through `cache` as `owner`; returns misses.
  uint64_t Run(ExactCache& cache, CacheOwner owner, uint64_t refs) {
    uint64_t misses = 0;
    for (uint64_t i = 0; i < refs; ++i) {
      if (!cache.Access(owner, stream_.Next()).hit) {
        ++misses;
      }
      if (turnover_refs_ > 0 && ++since_turnover_ >= turnover_refs_) {
        since_turnover_ = 0;
        stream_.TurnOver(profile_.thread_overlap);
      }
    }
    return misses;
  }

 private:
  const AppProfile& profile_;
  double rate_;
  ReferenceStream stream_;
  uint64_t turnover_refs_;
  uint64_t since_turnover_ = 0;
};

// Response time (seconds of the measured program's own schedule) for one
// treatment, plus the switch count.
Section4Result RunExact(const MachineConfig& machine, const AppProfile& measured,
                        Section4Treatment treatment, const AppProfile* intervening,
                        const Section4ExactOptions& options, uint64_t seed) {
  ExactCache cache(machine.geometry);
  StreamedProgram program(measured, options, seed);
  // The intervening program keeps its own persistent stream across windows.
  std::unique_ptr<StreamedProgram> other;
  if (intervening != nullptr) {
    other = std::make_unique<StreamedProgram>(*intervening, options, seed ^ 0x9E3779B9u);
  }

  constexpr CacheOwner kMeasured = 1;
  constexpr CacheOwner kIntervening = 2;
  const double service = machine.MissServiceSeconds();

  Section4Result result;
  const uint64_t total_windows = static_cast<uint64_t>(
      ToSeconds(options.run_length) / ToSeconds(options.q));
  const uint64_t refs_per_window =
      static_cast<uint64_t>(program.rate() * ToSeconds(options.q));
  const uint64_t other_refs_per_window =
      other != nullptr ? static_cast<uint64_t>(other->rate() * ToSeconds(options.q)) : 0;

  for (uint64_t window = 0; window < total_windows; ++window) {
    const uint64_t misses = program.Run(cache, kMeasured, refs_per_window);
    result.response_s += ToSeconds(options.q) + static_cast<double>(misses) * service;
    if (window + 1 == total_windows) {
      break;  // the program "completes"; no trailing switch
    }
    ++result.switches;
    result.response_s += ToSeconds(machine.SwitchCost());
    switch (treatment) {
      case Section4Treatment::kStationary:
        break;
      case Section4Treatment::kMigrating:
        cache.Flush();
        break;
      case Section4Treatment::kMultiprog:
        AFF_CHECK(other != nullptr);
        other->Run(cache, kIntervening, other_refs_per_window);
        break;
    }
  }
  return result;
}

}  // namespace

CachePenalties MeasureCachePenaltiesExact(const MachineConfig& machine,
                                          const AppProfile& measured,
                                          const AppProfile& intervening,
                                          const Section4ExactOptions& options, uint64_t seed) {
  const Section4Result stationary =
      RunExact(machine, measured, Section4Treatment::kStationary, nullptr, options, seed);
  const Section4Result migrating =
      RunExact(machine, measured, Section4Treatment::kMigrating, nullptr, options, seed);
  const Section4Result multiprog =
      RunExact(machine, measured, Section4Treatment::kMultiprog, &intervening, options, seed);

  CachePenalties penalties;
  if (migrating.switches > 0) {
    penalties.pna_us = (migrating.response_s - stationary.response_s) /
                       static_cast<double>(migrating.switches) * 1e6;
  }
  if (multiprog.switches > 0) {
    penalties.pa_us = (multiprog.response_s - stationary.response_s) /
                      static_cast<double>(multiprog.switches) * 1e6;
  }
  return penalties;
}

}  // namespace affsched
