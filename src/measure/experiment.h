// Experiment drivers: run workload mixes under policies with replication
// control, as Section 6 of the paper does ("enough replications of each
// experiment so that the 95% confidence interval is within 1% of the point
// estimate of the mean" — we default to a slightly looser 2% bound with a
// replication cap to keep regeneration times reasonable; both knobs are
// configurable).

#ifndef SRC_MEASURE_EXPERIMENT_H_
#define SRC_MEASURE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/measure/mixes.h"
#include "src/sched/factory.h"
#include "src/stats/summary.h"

namespace affsched {

// The machine the paper's experiments used: 16 of the Symmetry's processors.
MachineConfig PaperMachineConfig();

struct JobResult {
  std::string app;
  JobStats stats;
};

struct RunResult {
  std::vector<JobResult> jobs;  // in submission order
  SimTime makespan = 0;
  // Simulation events executed by the run's EventQueue — a deterministic
  // proxy for how much work the cell was, used by live-progress reporting
  // (events/sec). Not part of any serialized result.
  uint64_t events = 0;
};

// Runs one replication of `jobs` (all arriving at t = 0) under `policy_kind`.
RunResult RunOnce(const MachineConfig& machine, PolicyKind policy_kind,
                  const std::vector<AppProfile>& jobs, uint64_t seed,
                  const Engine::Options& options = Engine::Options());

struct ReplicationOptions {
  double relative_precision = 0.02;
  double confidence = 0.95;
  size_t min_replications = 3;
  size_t max_replications = 15;
};

struct ReplicatedResult {
  std::vector<std::string> app;        // per job index
  std::vector<Summary> response;       // per job index, seconds
  std::vector<JobStats> mean_stats;    // per job index, fields averaged
  size_t replications = 0;

  double MeanResponse(size_t job) const { return response[job].mean(); }
};

// Incrementally folds per-replication RunResults into a ReplicatedResult.
// Shared by the serial RunReplicated loop and the parallel sweep runner so
// that both aggregate bit-identically: Fold() must be called in replication
// order, and Finish() computes the same means the serial path always has.
class ReplicationFolder {
 public:
  explicit ReplicationFolder(size_t num_jobs);

  // Folds one replication's results (call in replication order).
  void Fold(const RunResult& run);

  size_t replications() const { return reps_; }

  // True once every job's response-time CI meets the precision bound.
  // Meaningless before the first Fold().
  bool Precise(const ReplicationOptions& options) const;

  // True when the serial stopping rule would stop: the minimum replication
  // count has been reached and either the precision bound holds or the cap
  // has been hit.
  bool Done(const ReplicationOptions& options) const;

  // Finalizes per-job means. May be called repeatedly as folds accumulate.
  ReplicatedResult Finish() const;

 private:
  size_t num_jobs_;
  size_t reps_ = 0;
  ReplicatedResult result_;
  std::vector<JobStats> accum_;
};

// Replicates RunOnce with seeds base_seed, base_seed+1, ... until every job's
// response-time CI satisfies the precision bound (or the cap is reached).
ReplicatedResult RunReplicated(const MachineConfig& machine, PolicyKind policy_kind,
                               const std::vector<AppProfile>& jobs, uint64_t base_seed,
                               const ReplicationOptions& rep_options = {},
                               const Engine::Options& engine_options = Engine::Options());

}  // namespace affsched

#endif  // SRC_MEASURE_EXPERIMENT_H_
