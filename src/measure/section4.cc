#include "src/measure/section4.h"

#include <algorithm>
#include <deque>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace affsched {

namespace {

// Sequential executor of a thread graph on one simulated processor.
class SequentialProgram {
 public:
  SequentialProgram(const AppProfile& profile, CacheOwner owner, uint64_t seed)
      : profile_(profile), owner_(owner) {
    Rng rng(seed);
    graph_ = profile.build_graph(rng);
    graph_->Start();
    for (size_t node : graph_->initial_ready()) {
      ready_.push_back(node);
    }
    if (!ready_.empty()) {
      current_node_ = ready_.front();
      ready_.pop_front();
      remaining_ = graph_->work(current_node_);
    }
  }

  bool Finished() const { return graph_->Finished(); }
  CacheOwner owner() const { return owner_; }
  const WorkingSetParams& working_set() const { return profile_.working_set; }

  // Executes up to `max_work` of useful work on `machine`/processor 0 at
  // `now`; returns the wall time consumed. Advances through the thread graph,
  // applying the footprint-overlap turnover at thread boundaries.
  SimDuration Step(Machine& machine, SimTime now, SimDuration max_work) {
    AFF_CHECK(!Finished());
    AFF_CHECK(remaining_ > 0);
    const SimDuration work = std::min(max_work, remaining_);
    const Machine::ChunkExecution exec =
        machine.ExecuteChunk(now, 0, owner_, profile_.working_set, work);
    remaining_ -= work;
    if (remaining_ == 0) {
      for (size_t n : graph_->Complete(current_node_)) {
        ready_.push_back(n);
      }
      machine.processor(0).cache().ReplaceOwnerData(owner_, profile_.thread_overlap);
      if (!ready_.empty()) {
        current_node_ = ready_.front();
        ready_.pop_front();
        remaining_ = graph_->work(current_node_);
      }
    }
    return exec.wall;
  }

 private:
  const AppProfile& profile_;
  CacheOwner owner_;
  std::unique_ptr<ThreadGraph> graph_;
  std::deque<size_t> ready_;
  size_t current_node_ = 0;
  SimDuration remaining_ = 0;
};

}  // namespace

Section4Result RunSection4(const MachineConfig& machine_config, const AppProfile& measured,
                           Section4Treatment treatment, const AppProfile* intervening,
                           const Section4Options& options, uint64_t seed) {
  AFF_CHECK(options.q > 0);
  AFF_CHECK(options.chunk > 0);
  if (treatment == Section4Treatment::kMultiprog) {
    AFF_CHECK_MSG(intervening != nullptr, "multiprog treatment needs an intervening program");
  }

  MachineConfig single = machine_config;
  single.num_processors = 1;
  Machine machine(single);

  constexpr CacheOwner kMeasuredOwner = 1;
  constexpr CacheOwner kInterveningOwner = 2;
  SequentialProgram program(measured, kMeasuredOwner, seed);

  // The intervening "program" never completes; only its cache behaviour
  // matters, so it is modelled as an endless worker with the intervening
  // application's working-set parameters.
  const WorkingSetParams* intervening_ws =
      intervening != nullptr ? &intervening->working_set : nullptr;

  Section4Result result;
  SimTime now = 0;  // wall clock of the simulated processor

  while (!program.Finished()) {
    // One scheduling window: run the measured program for Q of wall time
    // (or until it completes).
    SimDuration window_left = options.q;
    while (window_left > 0 && !program.Finished()) {
      const SimDuration wall = program.Step(machine, now, options.chunk);
      now += wall;
      result.response_s += ToSeconds(wall);
      window_left -= wall;
    }
    if (program.Finished()) {
      break;
    }

    // Rescheduling point: the switch path length is paid in every treatment.
    ++result.switches;
    now += single.SwitchCost();
    result.response_s += ToSeconds(single.SwitchCost());

    switch (treatment) {
      case Section4Treatment::kStationary:
        break;
      case Section4Treatment::kMigrating:
        machine.processor(0).cache().Flush();
        break;
      case Section4Treatment::kMultiprog: {
        // The intervening task runs for Q of wall time; that time is not part
        // of the measured program's response.
        SimDuration other_left = options.q;
        while (other_left > 0) {
          const Machine::ChunkExecution exec = machine.ExecuteChunk(
              now, 0, kInterveningOwner, *intervening_ws,
              std::min<SimDuration>(options.chunk, other_left));
          now += exec.wall;
          other_left -= exec.wall;
        }
        break;
      }
    }
  }
  return result;
}

CachePenalties MeasureCachePenalties(const MachineConfig& machine, const AppProfile& measured,
                                     const AppProfile& intervening,
                                     const Section4Options& options, uint64_t seed) {
  const Section4Result stationary =
      RunSection4(machine, measured, Section4Treatment::kStationary, nullptr, options, seed);
  const Section4Result migrating =
      RunSection4(machine, measured, Section4Treatment::kMigrating, nullptr, options, seed);
  const Section4Result multiprog =
      RunSection4(machine, measured, Section4Treatment::kMultiprog, &intervening, options, seed);

  CachePenalties penalties;
  if (migrating.switches > 0) {
    penalties.pna_us = (migrating.response_s - stationary.response_s) /
                       static_cast<double>(migrating.switches) * 1e6;
  }
  if (multiprog.switches > 0) {
    penalties.pa_us = (multiprog.response_s - stationary.response_s) /
                      static_cast<double>(multiprog.switches) * 1e6;
  }
  return penalties;
}

}  // namespace affsched
