#include "src/measure/experiment.h"

#include "src/common/check.h"

namespace affsched {

MachineConfig PaperMachineConfig() {
  MachineConfig config;
  config.num_processors = 16;
  return config;
}

RunResult RunOnce(const MachineConfig& machine, PolicyKind policy_kind,
                  const std::vector<AppProfile>& jobs, uint64_t seed,
                  const Engine::Options& options) {
  AFF_CHECK(!jobs.empty());
  Engine engine(machine, MakePolicy(policy_kind), seed, options);
  for (const AppProfile& profile : jobs) {
    engine.SubmitJob(profile, 0);
  }
  RunResult result;
  result.makespan = engine.Run();
  for (JobId id = 0; id < engine.job_count(); ++id) {
    result.jobs.push_back(JobResult{engine.job_name(id), engine.job_stats(id)});
  }
  return result;
}

ReplicatedResult RunReplicated(const MachineConfig& machine, PolicyKind policy_kind,
                               const std::vector<AppProfile>& jobs, uint64_t base_seed,
                               const ReplicationOptions& rep_options,
                               const Engine::Options& engine_options) {
  ReplicatedResult result;
  const size_t n = jobs.size();
  result.response.resize(n);
  result.mean_stats.resize(n);
  std::vector<JobStats> accum(n);

  size_t reps = 0;
  while (true) {
    const RunResult run = RunOnce(machine, policy_kind, jobs, base_seed + reps, engine_options);
    AFF_CHECK(run.jobs.size() == n);
    if (reps == 0) {
      for (size_t j = 0; j < n; ++j) {
        result.app.push_back(run.jobs[j].app);
      }
    }
    for (size_t j = 0; j < n; ++j) {
      result.response[j].Add(run.jobs[j].stats.ResponseSeconds());
      const JobStats& x = run.jobs[j].stats;
      JobStats& acc = accum[j];
      acc.useful_work_s += x.useful_work_s;
      acc.reload_stall_s += x.reload_stall_s;
      acc.steady_stall_s += x.steady_stall_s;
      acc.switch_s += x.switch_s;
      acc.waste_s += x.waste_s;
      acc.alloc_integral_s += x.alloc_integral_s;
      acc.reallocations += x.reallocations;
      acc.affinity_dispatches += x.affinity_dispatches;
      acc.completion += x.completion - x.arrival;
    }
    ++reps;

    if (reps >= rep_options.min_replications) {
      bool all_precise = true;
      for (size_t j = 0; j < n; ++j) {
        const Summary& s = result.response[j];
        if (s.ConfidenceHalfWidth(rep_options.confidence) >
            rep_options.relative_precision * s.mean()) {
          all_precise = false;
          break;
        }
      }
      if (all_precise || reps >= rep_options.max_replications) {
        break;
      }
    }
  }

  result.replications = reps;
  const double r = static_cast<double>(reps);
  for (size_t j = 0; j < n; ++j) {
    JobStats mean = accum[j];
    mean.useful_work_s /= r;
    mean.reload_stall_s /= r;
    mean.steady_stall_s /= r;
    mean.switch_s /= r;
    mean.waste_s /= r;
    mean.alloc_integral_s /= r;
    mean.reallocations = static_cast<uint64_t>(static_cast<double>(mean.reallocations) / r);
    mean.affinity_dispatches =
        static_cast<uint64_t>(static_cast<double>(mean.affinity_dispatches) / r);
    mean.arrival = 0;
    mean.completion = static_cast<SimTime>(static_cast<double>(accum[j].completion) / r);
    result.mean_stats[j] = mean;
  }
  return result;
}

}  // namespace affsched
