#include "src/measure/experiment.h"

#include <algorithm>

#include "src/common/check.h"

namespace affsched {

MachineConfig PaperMachineConfig() {
  MachineConfig config;
  config.num_processors = 16;
  return config;
}

RunResult RunOnce(const MachineConfig& machine, PolicyKind policy_kind,
                  const std::vector<AppProfile>& jobs, uint64_t seed,
                  const Engine::Options& options) {
  AFF_CHECK(!jobs.empty());
  Engine engine(machine, MakePolicy(policy_kind), seed, options);
  for (const AppProfile& profile : jobs) {
    engine.SubmitJob(profile, 0);
  }
  RunResult result;
  result.makespan = engine.Run();
  result.events = engine.event_queue_stats().run;
  for (JobId id = 0; id < engine.job_count(); ++id) {
    result.jobs.push_back(JobResult{engine.job_name(id), engine.job_stats(id)});
  }
  return result;
}

ReplicationFolder::ReplicationFolder(size_t num_jobs) : num_jobs_(num_jobs) {
  result_.response.resize(num_jobs_);
  result_.mean_stats.resize(num_jobs_);
  accum_.resize(num_jobs_);
}

void ReplicationFolder::Fold(const RunResult& run) {
  AFF_CHECK(run.jobs.size() == num_jobs_);
  if (reps_ == 0) {
    for (size_t j = 0; j < num_jobs_; ++j) {
      result_.app.push_back(run.jobs[j].app);
    }
  }
  for (size_t j = 0; j < num_jobs_; ++j) {
    result_.response[j].Add(run.jobs[j].stats.ResponseSeconds());
    const JobStats& x = run.jobs[j].stats;
    JobStats& acc = accum_[j];
    acc.useful_work_s += x.useful_work_s;
    acc.reload_stall_s += x.reload_stall_s;
    acc.steady_stall_s += x.steady_stall_s;
    acc.switch_s += x.switch_s;
    acc.waste_s += x.waste_s;
    acc.alloc_integral_s += x.alloc_integral_s;
    acc.reallocations += x.reallocations;
    acc.affinity_dispatches += x.affinity_dispatches;
    acc.migrations_same_core += x.migrations_same_core;
    acc.migrations_same_cluster += x.migrations_same_cluster;
    acc.migrations_same_node += x.migrations_same_node;
    acc.migrations_cross_node += x.migrations_cross_node;
    acc.reload_llc_s += x.reload_llc_s;
    acc.reload_remote_s += x.reload_remote_s;
    acc.steals_same_cluster += x.steals_same_cluster;
    acc.steals_same_node += x.steals_same_node;
    acc.steals_cross_node += x.steals_cross_node;
    acc.balance_migrations += x.balance_migrations;
    acc.deadline_misses += x.deadline_misses;
    acc.tardiness_s += x.tardiness_s;
    // Worst-case-observed, not an average: the replicated value answers
    // "what is the worst reload this job ever saw across replications".
    acc.worst_reload_s = std::max(acc.worst_reload_s, x.worst_reload_s);
    acc.completion += x.completion - x.arrival;
  }
  ++reps_;
}

bool ReplicationFolder::Precise(const ReplicationOptions& options) const {
  for (size_t j = 0; j < num_jobs_; ++j) {
    const Summary& s = result_.response[j];
    if (s.ConfidenceHalfWidth(options.confidence) > options.relative_precision * s.mean()) {
      return false;
    }
  }
  return true;
}

bool ReplicationFolder::Done(const ReplicationOptions& options) const {
  return reps_ >= options.min_replications &&
         (Precise(options) || reps_ >= options.max_replications);
}

ReplicatedResult ReplicationFolder::Finish() const {
  AFF_CHECK_MSG(reps_ > 0, "Finish() before any Fold()");
  ReplicatedResult result = result_;
  result.replications = reps_;
  const double r = static_cast<double>(reps_);
  for (size_t j = 0; j < num_jobs_; ++j) {
    JobStats mean = accum_[j];
    mean.useful_work_s /= r;
    mean.reload_stall_s /= r;
    mean.steady_stall_s /= r;
    mean.switch_s /= r;
    mean.waste_s /= r;
    mean.alloc_integral_s /= r;
    mean.reallocations = static_cast<uint64_t>(static_cast<double>(mean.reallocations) / r);
    mean.affinity_dispatches =
        static_cast<uint64_t>(static_cast<double>(mean.affinity_dispatches) / r);
    mean.migrations_same_core =
        static_cast<uint64_t>(static_cast<double>(mean.migrations_same_core) / r);
    mean.migrations_same_cluster =
        static_cast<uint64_t>(static_cast<double>(mean.migrations_same_cluster) / r);
    mean.migrations_same_node =
        static_cast<uint64_t>(static_cast<double>(mean.migrations_same_node) / r);
    mean.migrations_cross_node =
        static_cast<uint64_t>(static_cast<double>(mean.migrations_cross_node) / r);
    mean.reload_llc_s /= r;
    mean.reload_remote_s /= r;
    mean.steals_same_cluster =
        static_cast<uint64_t>(static_cast<double>(mean.steals_same_cluster) / r);
    mean.steals_same_node =
        static_cast<uint64_t>(static_cast<double>(mean.steals_same_node) / r);
    mean.steals_cross_node =
        static_cast<uint64_t>(static_cast<double>(mean.steals_cross_node) / r);
    mean.balance_migrations =
        static_cast<uint64_t>(static_cast<double>(mean.balance_migrations) / r);
    mean.deadline_misses =
        static_cast<uint64_t>(static_cast<double>(mean.deadline_misses) / r);
    mean.tardiness_s /= r;
    // worst_reload_s stays the max folded above.
    mean.arrival = 0;
    mean.completion = static_cast<SimTime>(static_cast<double>(accum_[j].completion) / r);
    result.mean_stats[j] = mean;
  }
  return result;
}

ReplicatedResult RunReplicated(const MachineConfig& machine, PolicyKind policy_kind,
                               const std::vector<AppProfile>& jobs, uint64_t base_seed,
                               const ReplicationOptions& rep_options,
                               const Engine::Options& engine_options) {
  ReplicationFolder folder(jobs.size());
  while (true) {
    folder.Fold(
        RunOnce(machine, policy_kind, jobs, base_seed + folder.replications(), engine_options));
    if (folder.Done(rep_options)) {
      break;
    }
  }
  return folder.Finish();
}

}  // namespace affsched
