// The Section 4 measurement harness: quantifies the per-switch cache
// penalties P^A and P^NA for an application (Table 1 of the paper).
//
// A program runs on a single processor under a special allocator that
// reschedules it every Q milliseconds of its own execution, taking one of
// three actions at each rescheduling point:
//   * stationary — the program is immediately replaced (baseline),
//   * migrating  — the cache is flushed first (captures P^NA: the program
//                  resumes with no affinity),
//   * multiprog  — another program runs for Q first (captures P^A: the
//                  program has affinity, but an intervening task has ejected
//                  part of its context).
// Response time counts only the measured program's own scheduled time (its
// computation, its stalls, and the switch path length), so the treatments
// differ exactly by the cache penalty:
//   P^NA = (RT_migrating - RT_stationary) / #switches
//   P^A  = (RT_multiprog - RT_stationary) / #switches

#ifndef SRC_MEASURE_SECTION4_H_
#define SRC_MEASURE_SECTION4_H_

#include <optional>

#include "src/machine/machine.h"
#include "src/workload/app_profile.h"

namespace affsched {

enum class Section4Treatment {
  kStationary,
  kMigrating,
  kMultiprog,
};

struct Section4Result {
  // The measured program's accumulated scheduled time, seconds.
  double response_s = 0.0;
  uint64_t switches = 0;
};

struct Section4Options {
  // Rescheduling interval (the paper uses 25, 100 and 400 ms).
  SimDuration q = Milliseconds(100);
  // Granularity of execution between rescheduling points.
  SimDuration chunk = Milliseconds(1);
};

// Runs `measured` to completion under the given treatment. For kMultiprog,
// `intervening` names the program run between dispatches (only its cache
// parameters matter).
Section4Result RunSection4(const MachineConfig& machine, const AppProfile& measured,
                           Section4Treatment treatment, const AppProfile* intervening,
                           const Section4Options& options, uint64_t seed);

struct CachePenalties {
  double pna_us = 0.0;  // penalty per switch without affinity
  double pa_us = 0.0;   // penalty per switch with affinity (intervening task)
};

// Convenience: runs all three treatments and forms the Table 1 entries.
CachePenalties MeasureCachePenalties(const MachineConfig& machine, const AppProfile& measured,
                                     const AppProfile& intervening, const Section4Options& options,
                                     uint64_t seed);

}  // namespace affsched

#endif  // SRC_MEASURE_SECTION4_H_
