// The six workload mixes of Table 2.
//
//            #1  #2  #3  #4  #5  #6
//   MVA       2   1   1   0   0   1
//   MATRIX    0   1   0   0   1   1
//   GRAVITY   0   0   1   2   1   1

#ifndef SRC_MEASURE_MIXES_H_
#define SRC_MEASURE_MIXES_H_

#include <array>
#include <string>
#include <vector>

#include "src/workload/app_profile.h"

namespace affsched {

struct WorkloadMix {
  int number = 0;  // 1..6 as in the paper
  size_t mva = 0;
  size_t matrix = 0;
  size_t gravity = 0;

  size_t TotalJobs() const { return mva + matrix + gravity; }
  std::string Label() const;

  // Expands the mix into job profiles using the given application set
  // ({MVA, MATRIX, GRAVITY} order, as DefaultProfiles() returns).
  std::vector<AppProfile> Expand(const std::vector<AppProfile>& apps) const;
};

// All six mixes of Table 2, in order.
std::array<WorkloadMix, 6> PaperMixes();

// True if every job in the mix is of the same application (mixes 1 and 4) —
// the only mixes for which a cross-job mean response time is meaningful
// (Table 4).
bool IsHomogeneous(const WorkloadMix& mix);

}  // namespace affsched

#endif  // SRC_MEASURE_MIXES_H_
