#include "src/measure/arrivals.h"

#include <numeric>

#include "src/common/check.h"

namespace affsched {

std::vector<ArrivalPlanEntry> PoissonArrivals(size_t count, SimDuration mean_interarrival,
                                              const std::vector<double>& app_weights,
                                              uint64_t seed) {
  AFF_CHECK(mean_interarrival > 0);
  AFF_CHECK(!app_weights.empty());
  const double total_weight = std::accumulate(app_weights.begin(), app_weights.end(), 0.0);
  AFF_CHECK(total_weight > 0.0);

  Rng rng(seed);
  std::vector<ArrivalPlanEntry> plan;
  plan.reserve(count);
  SimTime now = 0;
  for (size_t i = 0; i < count; ++i) {
    now += Seconds(rng.NextExponential(ToSeconds(mean_interarrival)));
    double pick = rng.NextDouble() * total_weight;
    size_t app = 0;
    for (size_t a = 0; a < app_weights.size(); ++a) {
      pick -= app_weights[a];
      if (pick <= 0.0) {
        app = a;
        break;
      }
      app = a;  // fall through to the last app on rounding
    }
    plan.push_back(ArrivalPlanEntry{app, now});
  }
  return plan;
}

}  // namespace affsched
