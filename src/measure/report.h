// Shared per-job reporting for benches and examples: renders an engine's (or
// a replicated run's) job statistics as the standard columns used throughout
// the experiment suite.

#ifndef SRC_MEASURE_REPORT_H_
#define SRC_MEASURE_REPORT_H_

#include <string>

#include "src/common/table.h"
#include "src/engine/engine.h"
#include "src/measure/experiment.h"

namespace affsched {

// Column layout shared by the report helpers:
//   policy | job | RT (s) | work (s) | waste (s) | #realloc | %affinity | avg alloc
std::vector<std::string> JobReportHeader();

// One row per job from a finished engine.
void AppendJobReport(TextTable& table, const std::string& policy_label, const Engine& engine);

// One row per job from a replicated result (means).
void AppendJobReport(TextTable& table, const std::string& policy_label,
                     const ReplicatedResult& result);

// Convenience: run `jobs` once under each policy and render the whole table.
std::string ComparePolicies(const MachineConfig& machine,
                            const std::vector<PolicyKind>& policies,
                            const std::vector<AppProfile>& jobs, uint64_t seed);

// Result of cross-checking a finished engine's metrics registry against its
// JobStats aggregates (simctl --metrics, telemetry tests).
struct MetricsReconciliation {
  bool ok = true;
  std::string report;  // one line per check, human-readable
};

// Verifies that the "engine.*" counter totals reconcile with the per-job
// accounting: dispatch/affinity counts match exactly; switch time matches
// the switch counter at nanosecond granularity; reload-stall and waste
// seconds agree to floating-point accumulation error.
MetricsReconciliation ReconcileEngineMetrics(const Engine& engine,
                                             const MetricsRegistry& registry);

}  // namespace affsched

#endif  // SRC_MEASURE_REPORT_H_
