#include "src/measure/mixes.h"

#include <sstream>

#include "src/common/check.h"

namespace affsched {

std::string WorkloadMix::Label() const {
  std::ostringstream out;
  out << "#" << number << " (";
  bool first = true;
  auto emit = [&](size_t count, const char* name) {
    if (count == 0) {
      return;
    }
    if (!first) {
      out << " + ";
    }
    out << count << " " << name;
    first = false;
  };
  emit(mva, "MVA");
  emit(matrix, "MATRIX");
  emit(gravity, "GRAVITY");
  out << ")";
  return out.str();
}

std::vector<AppProfile> WorkloadMix::Expand(const std::vector<AppProfile>& apps) const {
  AFF_CHECK(apps.size() == 3);
  std::vector<AppProfile> jobs;
  for (size_t i = 0; i < mva; ++i) {
    jobs.push_back(apps[0]);
  }
  for (size_t i = 0; i < matrix; ++i) {
    jobs.push_back(apps[1]);
  }
  for (size_t i = 0; i < gravity; ++i) {
    jobs.push_back(apps[2]);
  }
  return jobs;
}

std::array<WorkloadMix, 6> PaperMixes() {
  return {{
      {.number = 1, .mva = 2, .matrix = 0, .gravity = 0},
      {.number = 2, .mva = 1, .matrix = 1, .gravity = 0},
      {.number = 3, .mva = 1, .matrix = 0, .gravity = 1},
      {.number = 4, .mva = 0, .matrix = 0, .gravity = 2},
      {.number = 5, .mva = 0, .matrix = 1, .gravity = 1},
      {.number = 6, .mva = 1, .matrix = 1, .gravity = 1},
  }};
}

bool IsHomogeneous(const WorkloadMix& mix) {
  const size_t kinds = (mix.mva > 0 ? 1 : 0) + (mix.matrix > 0 ? 1 : 0) + (mix.gravity > 0 ? 1 : 0);
  return kinds == 1;
}

}  // namespace affsched
