// Arrival-process generation for open-system experiments.
//
// The paper's experiments start all jobs at t = 0; its policies, however, are
// designed around arrivals and departures (Equipartition repartitions on
// them; Dynamic's fair shares shift). These helpers generate randomized
// arrival plans for the open-system ablation.

#ifndef SRC_MEASURE_ARRIVALS_H_
#define SRC_MEASURE_ARRIVALS_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/workload/app_profile.h"

namespace affsched {

struct ArrivalPlanEntry {
  size_t app_index = 0;  // index into the application set
  SimTime when = 0;
};

// Poisson arrivals: exponential inter-arrival times with the given mean,
// each job drawn uniformly (by weight) from the application set.
// Returns `count` entries sorted by time.
std::vector<ArrivalPlanEntry> PoissonArrivals(size_t count, SimDuration mean_interarrival,
                                              const std::vector<double>& app_weights,
                                              uint64_t seed);

}  // namespace affsched

#endif  // SRC_MEASURE_ARRIVALS_H_
