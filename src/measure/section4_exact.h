// The Section 4 measurement harness, re-run against the exact
// set-associative cache with per-reference synthetic address streams.
//
// This is an independent implementation of the Table 1 experiment: instead
// of the footprint model's closed-form reload counts, every reference goes
// through ExactCache (real sets, ways, LRU, per-line tags), with the
// measured and intervening programs realised as ReferenceStreams whose
// statistics (working set, buildup time constant, steady miss rate, thread
// turnover) are derived from the same AppProfile the scheduling experiments
// use. Agreement between the two harnesses (bench_calibration_section4)
// validates the model end to end.

#ifndef SRC_MEASURE_SECTION4_EXACT_H_
#define SRC_MEASURE_SECTION4_EXACT_H_

#include "src/measure/section4.h"

namespace affsched {

struct Section4ExactOptions {
  // Rescheduling interval.
  SimDuration q = Milliseconds(100);
  // Virtual execution length of the measured program. Longer runs average
  // over more switches.
  SimDuration run_length = Seconds(4);
  // Approximate length of one user-level thread (triggers working-set
  // turnover with the profile's thread_overlap).
  SimDuration thread_length = Seconds(1);
};

// Derives the reference rate (references per second of useful execution)
// that makes the stream's working-set buildup match the profile's
// exponential time constant: uniform sampling of W blocks touches
// W(1 - e^(-n/W)) distinct blocks after n references, so rate = W / tau.
double DeriveReferenceRate(const AppProfile& profile);

// Runs the three treatments reference-by-reference through an ExactCache of
// the machine's geometry and returns the per-switch penalties, exactly as
// MeasureCachePenalties does for the footprint substrate.
CachePenalties MeasureCachePenaltiesExact(const MachineConfig& machine,
                                          const AppProfile& measured,
                                          const AppProfile& intervening,
                                          const Section4ExactOptions& options, uint64_t seed);

}  // namespace affsched

#endif  // SRC_MEASURE_SECTION4_EXACT_H_
