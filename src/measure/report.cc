#include "src/measure/report.h"

namespace affsched {

std::vector<std::string> JobReportHeader() {
  return {"policy", "job", "RT (s)", "work (s)", "waste (s)", "#realloc", "%affinity",
          "avg alloc"};
}

namespace {

std::vector<std::string> RowFor(const std::string& policy_label, const std::string& job_name,
                                const JobStats& s, double response_s) {
  return {policy_label,
          job_name,
          FormatDouble(response_s, 1),
          FormatDouble(s.useful_work_s + s.steady_stall_s, 1),
          FormatDouble(s.waste_s, 1),
          std::to_string(s.reallocations),
          FormatPercent(s.AffinityFraction()),
          FormatDouble(s.AverageAllocation(), 2)};
}

}  // namespace

void AppendJobReport(TextTable& table, const std::string& policy_label, const Engine& engine) {
  for (JobId id = 0; id < engine.job_count(); ++id) {
    const JobStats& s = engine.job_stats(id);
    table.AddRow(RowFor(policy_label, engine.job_name(id), s, s.ResponseSeconds()));
  }
}

void AppendJobReport(TextTable& table, const std::string& policy_label,
                     const ReplicatedResult& result) {
  for (size_t j = 0; j < result.app.size(); ++j) {
    const JobStats& s = result.mean_stats[j];
    // Mean stats carry (completion - arrival) accumulated into completion;
    // AverageAllocation still derives from the averaged integral and RT.
    table.AddRow(RowFor(policy_label, result.app[j], s, result.response[j].mean()));
  }
}

std::string ComparePolicies(const MachineConfig& machine,
                            const std::vector<PolicyKind>& policies,
                            const std::vector<AppProfile>& jobs, uint64_t seed) {
  TextTable table;
  table.SetHeader(JobReportHeader());
  for (PolicyKind kind : policies) {
    Engine engine(machine, MakePolicy(kind), seed);
    for (const AppProfile& job : jobs) {
      engine.SubmitJob(job);
    }
    engine.Run();
    AppendJobReport(table, PolicyKindName(kind), engine);
  }
  return table.Render();
}

}  // namespace affsched
