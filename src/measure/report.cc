#include "src/measure/report.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace affsched {

std::vector<std::string> JobReportHeader() {
  return {"policy", "job", "RT (s)", "work (s)", "waste (s)", "#realloc", "%affinity",
          "avg alloc"};
}

namespace {

std::vector<std::string> RowFor(const std::string& policy_label, const std::string& job_name,
                                const JobStats& s, double response_s) {
  return {policy_label,
          job_name,
          FormatDouble(response_s, 1),
          FormatDouble(s.useful_work_s + s.steady_stall_s, 1),
          FormatDouble(s.waste_s, 1),
          std::to_string(s.reallocations),
          FormatPercent(s.AffinityFraction()),
          FormatDouble(s.AverageAllocation(), 2)};
}

}  // namespace

void AppendJobReport(TextTable& table, const std::string& policy_label, const Engine& engine) {
  for (JobId id = 0; id < engine.job_count(); ++id) {
    const JobStats& s = engine.job_stats(id);
    table.AddRow(RowFor(policy_label, engine.job_name(id), s, s.ResponseSeconds()));
  }
}

void AppendJobReport(TextTable& table, const std::string& policy_label,
                     const ReplicatedResult& result) {
  for (size_t j = 0; j < result.app.size(); ++j) {
    const JobStats& s = result.mean_stats[j];
    // Mean stats carry (completion - arrival) accumulated into completion;
    // AverageAllocation still derives from the averaged integral and RT.
    table.AddRow(RowFor(policy_label, result.app[j], s, result.response[j].mean()));
  }
}

std::string ComparePolicies(const MachineConfig& machine,
                            const std::vector<PolicyKind>& policies,
                            const std::vector<AppProfile>& jobs, uint64_t seed) {
  TextTable table;
  table.SetHeader(JobReportHeader());
  for (PolicyKind kind : policies) {
    Engine engine(machine, MakePolicy(kind), seed);
    for (const AppProfile& job : jobs) {
      engine.SubmitJob(job);
    }
    engine.Run();
    AppendJobReport(table, PolicyKindName(kind), engine);
  }
  return table.Render();
}

MetricsReconciliation ReconcileEngineMetrics(const Engine& engine,
                                             const MetricsRegistry& registry) {
  MetricsReconciliation result;
  std::ostringstream out;

  auto counter = [&](const char* name) -> double {
    const Counter* c = registry.FindCounter(name);
    if (c == nullptr) {
      result.ok = false;
      out << name << ": MISSING from registry\n";
      return 0.0;
    }
    return c->value();
  };
  auto check_exact = [&](const char* label, double metric, double stats) {
    const bool match = metric == stats;
    result.ok = result.ok && match;
    char line[160];
    std::snprintf(line, sizeof(line), "%-24s metric=%.0f stats=%.0f %s\n", label, metric, stats,
                  match ? "OK" : "MISMATCH");
    out << line;
  };
  auto check_close = [&](const char* label, double metric_s, double stats_s) {
    // Both sides accumulate the same addends in different orders; allow only
    // last-ulp-scale drift.
    const double tol = 1e-9 * std::max(1.0, std::fabs(stats_s));
    const bool match = std::fabs(metric_s - stats_s) <= tol;
    result.ok = result.ok && match;
    char line[160];
    std::snprintf(line, sizeof(line), "%-24s metric=%.9f stats=%.9f %s\n", label, metric_s,
                  stats_s, match ? "OK" : "MISMATCH");
    out << line;
  };

  double reallocations = 0.0;
  double affine = 0.0;
  double switch_s = 0.0;
  double reload_stall_s = 0.0;
  double waste_s = 0.0;
  for (JobId id = 0; id < engine.job_count(); ++id) {
    const JobStats& s = engine.job_stats(id);
    reallocations += static_cast<double>(s.reallocations);
    affine += static_cast<double>(s.affinity_dispatches);
    switch_s += s.switch_s;
    reload_stall_s += s.reload_stall_s;
    waste_s += s.waste_s;
  }

  check_exact("reallocations", counter("engine.dispatches"), reallocations);
  check_exact("affinity dispatches", counter("engine.dispatches_affine"), affine);
  check_exact("job completions", counter("engine.job_completions"),
              static_cast<double>(engine.job_count()));
  // Switch time: the counter accumulates the constant per-switch cost in
  // integer nanoseconds, so it must equal switches * cost exactly.
  const double switch_cost_ns = static_cast<double>(engine.machine().config().SwitchCost());
  check_exact("switch time (ns)", counter("engine.switch_time_ns"),
              counter("engine.switches") * switch_cost_ns);
  check_close("switch time (s)", counter("engine.switch_time_ns") / 1e9, switch_s);
  check_close("reload stall (s)", counter("engine.reload_stall_ns") / 1e9, reload_stall_s);
  check_close("waste (s)", counter("engine.waste_ns") / 1e9, waste_s);

  result.report = out.str();
  return result;
}

}  // namespace affsched
