#include "src/opensys/driver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"
#include "src/runner/cell_seed.h"
#include "src/stats/histogram.h"

namespace affsched {

namespace {

// Coordinate tag separating per-arrival graph seeds from every other seed
// derivation of the same driver seed.
constexpr uint64_t kGraphSeedTag = 0x4A47;  // 'J' << 8 | 'G'

}  // namespace

// Event-queue callable for one planned arrival: pointer + index, trivially
// copyable as the pooled queue requires.
struct OpenArrivalTick {
  OpenSystemDriver* driver;
  uint32_t plan_index;
  void operator()() const { driver->OnArrival(plan_index); }
};

OpenSystemDriver::OpenSystemDriver(const MachineConfig& machine, PolicyKind policy,
                                   const std::vector<AppProfile>& apps,
                                   std::vector<ArrivalPlanEntry> plan,
                                   AdmissionController* admission, uint64_t seed,
                                   const OpenSystemOptions& options)
    : apps_(apps),
      plan_(std::move(plan)),
      admission_(admission),
      seed_(seed),
      options_(options) {
  AFF_CHECK(admission_ != nullptr);
  AFF_CHECK(!apps_.empty());
  AFF_CHECK(options_.warmup_fraction >= 0.0 && options_.warmup_fraction < 1.0);
  for (size_t i = 0; i < plan_.size(); ++i) {
    AFF_CHECK_MSG(plan_[i].app_index < apps_.size(), "plan entry references unknown app");
    AFF_CHECK_MSG(plan_[i].when >= 0, "arrival time must be non-negative");
    AFF_CHECK_MSG(i == 0 || plan_[i - 1].when <= plan_[i].when, "plan must be time-sorted");
  }
  engine_ = std::make_unique<Engine>(machine, MakePolicy(policy), seed, options.engine);
  records_.resize(plan_.size());
  for (size_t i = 0; i < plan_.size(); ++i) {
    records_[i].app_index = plan_[i].app_index;
    records_[i].arrival = plan_[i].when;
  }
}

OpenSystemDriver::~OpenSystemDriver() = default;

void OpenSystemDriver::SetSampler(Sampler* sampler) {
  if (sampler != nullptr) {
    sampler->AddProbe("open.queue_len",
                      [this] { return static_cast<double>(queue_len_); });
    sampler->AddProbe("open.in_service",
                      [this] { return static_cast<double>(in_service_); });
  }
  engine_->SetSampler(sampler);
}

void OpenSystemDriver::SetMetrics(MetricsRegistry* registry) { engine_->SetMetrics(registry); }

void OpenSystemDriver::SetTraceSink(TraceSink* sink) { engine_->SetTraceSink(sink); }

void OpenSystemDriver::SetDecisionSink(DecisionSink* sink) { engine_->SetDecisionSink(sink); }

void OpenSystemDriver::SetSpanCollector(JobSpanCollector* spans) {
  engine_->SetSpanCollector(spans);
}

uint64_t OpenSystemDriver::GraphSeed(size_t plan_index) const {
  return DeriveSeed(seed_, {kGraphSeedTag, static_cast<uint64_t>(plan_index)});
}

void OpenSystemDriver::RecordQueueChange(SimTime now, int delta) {
  queue_integral_job_s_ +=
      static_cast<double>(queue_len_) * ToSeconds(now - last_queue_change_);
  last_queue_change_ = now;
  if (delta < 0) {
    AFF_CHECK(queue_len_ >= static_cast<size_t>(-delta));
  }
  queue_len_ = static_cast<size_t>(static_cast<int64_t>(queue_len_) + delta);
}

void OpenSystemDriver::Admit(size_t plan_index) {
  const SimTime now = engine_->now();
  records_[plan_index].admitted = now;
  const JobId id =
      engine_->AdmitJob(apps_[plan_[plan_index].app_index], plan_[plan_index].when,
                        GraphSeed(plan_index));
  job_to_plan_[id] = plan_index;
  ++in_service_;
}

void OpenSystemDriver::OnArrival(uint32_t plan_index) {
  const SimTime now = engine_->now();
  switch (admission_->OnArrival(in_service_, queue_len_)) {
    case AdmissionVerdict::kAdmit:
      littles_.OnEnter(now);
      Admit(plan_index);
      break;
    case AdmissionVerdict::kQueue:
      littles_.OnEnter(now);
      RecordQueueChange(now, +1);
      fifo_.push_back(plan_index);
      break;
    case AdmissionVerdict::kReject:
      records_[plan_index].rejected = true;
      break;
  }
}

void OpenSystemDriver::OnCompletion(JobId id) {
  const SimTime now = engine_->now();
  const auto it = job_to_plan_.find(id);
  AFF_CHECK_MSG(it != job_to_plan_.end(), "completion for a job the driver never admitted");
  const size_t plan_index = it->second;
  OpenJobRecord& rec = records_[plan_index];
  const JobStats& stats = engine_->job_stats(id);
  rec.completion = stats.completion;
  rec.sojourn_s = stats.SojournSeconds();
  rec.queue_wait_s = stats.queue_wait_s;
  completion_order_.push_back(plan_index);
  AFF_CHECK(in_service_ > 0);
  --in_service_;
  littles_.OnLeave(now, rec.sojourn_s);
  // A departure may release several queued jobs (e.g. an MPL cap raised
  // between runs); admit FIFO until the controller declines.
  while (!fifo_.empty() && admission_->CanAdmitQueued(in_service_)) {
    const size_t next = fifo_.front();
    fifo_.pop_front();
    RecordQueueChange(now, -1);
    Admit(next);
  }
}

OpenSystemResult OpenSystemDriver::Run() {
  AFF_CHECK_MSG(!ran_, "OpenSystemDriver::Run may be called at most once");
  ran_ = true;
  engine_->SetCompletionHook([this](JobId id) { OnCompletion(id); });
  for (size_t i = 0; i < plan_.size(); ++i) {
    engine_->ScheduleExternal(plan_[i].when,
                              OpenArrivalTick{this, static_cast<uint32_t>(i)});
  }
  engine_->Run();
  const SimTime t_end = engine_->now();
  AFF_CHECK_MSG(fifo_.empty() && in_service_ == 0, "open system did not drain");

  OpenSystemResult result;
  result.arrivals = plan_.size();
  for (const OpenJobRecord& rec : records_) {
    result.rejected += rec.rejected ? 1 : 0;
  }
  result.admitted = result.arrivals - result.rejected;
  result.completed = completion_order_.size();
  AFF_CHECK(result.completed == result.admitted);
  result.reject_rate = result.arrivals > 0
                           ? static_cast<double>(result.rejected) /
                                 static_cast<double>(result.arrivals)
                           : 0.0;
  result.end_time = t_end;
  result.littles = littles_.Result(t_end, options_.littles_tolerance);
  result.mean_jobs_in_system = result.littles.mean_jobs_in_system;

  RecordQueueChange(t_end, 0);  // close the queue-length integral
  result.mean_queue_len =
      t_end > 0 ? queue_integral_job_s_ / ToSeconds(t_end) : 0.0;

  // Warmup trimming (latency statistics only; the Little's-law check above
  // always covers the full window).
  std::vector<double> sojourns;
  sojourns.reserve(completion_order_.size());
  for (size_t plan_index : completion_order_) {
    sojourns.push_back(records_[plan_index].sojourn_s);
  }
  size_t trim = 0;
  if (!sojourns.empty()) {
    trim = options_.warmup_rule == WarmupRule::kMser
               ? MserTruncationPoint(sojourns)
               : static_cast<size_t>(options_.warmup_fraction *
                                     static_cast<double>(sojourns.size()));
    trim = std::min(trim, sojourns.size() - 1);
  }
  result.warmup_trimmed = trim;
  if (!sojourns.empty()) {
    ValueHistogram hist(options_.histogram_bucket_s);
    double queue_wait_sum = 0.0;
    for (size_t k = trim; k < completion_order_.size(); ++k) {
      hist.Add(sojourns[k]);
      queue_wait_sum += records_[completion_order_[k]].queue_wait_s;
    }
    result.mean_sojourn_s = hist.Mean();
    result.p50_sojourn_s = hist.Quantile(0.50);
    result.p95_sojourn_s = hist.Quantile(0.95);
    result.p99_sojourn_s = hist.Quantile(0.99);
    result.max_sojourn_s = hist.Max();
    result.mean_queue_wait_s = queue_wait_sum / static_cast<double>(hist.Count());
  }

  uint64_t reallocations = 0;
  uint64_t affinity_dispatches = 0;
  for (size_t j = 0; j < engine_->job_count(); ++j) {
    const JobStats& stats = engine_->job_stats(static_cast<JobId>(j));
    reallocations += stats.reallocations;
    affinity_dispatches += stats.affinity_dispatches;
  }
  result.affinity_fraction =
      reallocations > 0 ? static_cast<double>(affinity_dispatches) /
                              static_cast<double>(reallocations)
                        : 0.0;
  result.throughput_per_s =
      t_end > 0 ? static_cast<double>(result.completed) / ToSeconds(t_end) : 0.0;
  result.jobs = records_;
  return result;
}

size_t MserTruncationPoint(const std::vector<double>& samples) {
  const size_t n = samples.size();
  if (n < 4) {
    return 0;
  }
  // Suffix sums make each candidate O(1); the tail must keep at least half
  // the samples so the estimator never deletes the data it is cleaning.
  std::vector<double> suffix_sum(n + 1, 0.0);
  std::vector<double> suffix_sumsq(n + 1, 0.0);
  for (size_t i = n; i-- > 0;) {
    suffix_sum[i] = suffix_sum[i + 1] + samples[i];
    suffix_sumsq[i] = suffix_sumsq[i + 1] + samples[i] * samples[i];
  }
  size_t best_d = 0;
  double best_se = std::numeric_limits<double>::infinity();
  for (size_t d = 0; d <= n / 2; ++d) {
    const double m = static_cast<double>(n - d);
    const double mean = suffix_sum[d] / m;
    const double var = std::max(0.0, suffix_sumsq[d] / m - mean * mean);
    const double se = std::sqrt(var / m);
    if (se < best_se) {
      best_se = se;
      best_d = d;
    }
  }
  return best_d;
}

}  // namespace affsched
