#include "src/opensys/arrival_process.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/check.h"

namespace affsched {

namespace {

// Picks an application index by weight; `pick` in [0, total).
size_t PickApp(const std::vector<double>& weights, double total, double pick) {
  size_t app = 0;
  for (size_t a = 0; a < weights.size(); ++a) {
    pick -= weights[a];
    if (pick <= 0.0) {
      return a;
    }
    app = a;  // fall through to the last app on rounding
  }
  return app;
}

}  // namespace

void CheckAppWeights(const std::vector<double>& app_weights) {
  AFF_CHECK_MSG(!app_weights.empty(), "application weight vector is empty");
  double total = 0.0;
  for (size_t i = 0; i < app_weights.size(); ++i) {
    AFF_CHECK_MSG(std::isfinite(app_weights[i]), "application weight is not finite");
    AFF_CHECK_MSG(app_weights[i] >= 0.0, "application weight is negative");
    total += app_weights[i];
  }
  AFF_CHECK_MSG(total > 0.0, "application weights sum to zero: every job class has weight 0");
}

PoissonProcess::PoissonProcess(SimDuration mean_interarrival, std::vector<double> app_weights)
    : mean_interarrival_(mean_interarrival), app_weights_(std::move(app_weights)) {
  AFF_CHECK_MSG(mean_interarrival_ > 0, "mean inter-arrival time must be positive");
  CheckAppWeights(app_weights_);
  total_weight_ = 0.0;
  for (double w : app_weights_) {
    total_weight_ += w;
  }
}

void PoissonProcess::Reset(uint64_t seed) {
  rng_ = Rng(seed);
  now_ = 0;
}

bool PoissonProcess::Next(ArrivalPlanEntry* out) {
  now_ += Seconds(rng_.NextExponential(ToSeconds(mean_interarrival_)));
  out->when = now_;
  out->app_index = PickApp(app_weights_, total_weight_, rng_.NextDouble() * total_weight_);
  return true;
}

OnOffProcess::OnOffProcess(const Params& params, std::vector<double> app_weights)
    : params_(params), app_weights_(std::move(app_weights)) {
  AFF_CHECK_MSG(params_.on_interarrival > 0, "on-phase inter-arrival time must be positive");
  AFF_CHECK_MSG(params_.mean_on > 0, "mean on-phase duration must be positive");
  AFF_CHECK_MSG(params_.mean_off > 0, "mean off-phase duration must be positive");
  CheckAppWeights(app_weights_);
  total_weight_ = 0.0;
  for (double w : app_weights_) {
    total_weight_ += w;
  }
}

void OnOffProcess::Reset(uint64_t seed) {
  rng_ = Rng(seed);
  now_ = 0;
  on_ = true;
  phase_end_ = Seconds(rng_.NextExponential(ToSeconds(params_.mean_on)));
}

bool OnOffProcess::Next(ArrivalPlanEntry* out) {
  for (;;) {
    if (!on_) {
      // Silence: jump to the end of the off phase and start a new burst.
      now_ = phase_end_;
      on_ = true;
      phase_end_ = now_ + Seconds(rng_.NextExponential(ToSeconds(params_.mean_on)));
      continue;
    }
    const SimDuration gap = Seconds(rng_.NextExponential(ToSeconds(params_.on_interarrival)));
    if (now_ + gap <= phase_end_) {
      now_ += gap;
      out->when = now_;
      out->app_index = PickApp(app_weights_, total_weight_, rng_.NextDouble() * total_weight_);
      return true;
    }
    // The draw crossed the burst boundary: the exponential is memoryless, so
    // discard it, enter the off phase, and re-draw there.
    now_ = phase_end_;
    on_ = false;
    phase_end_ = now_ + Seconds(rng_.NextExponential(ToSeconds(params_.mean_off)));
  }
}

TraceArrivalProcess::TraceArrivalProcess(std::vector<ArrivalPlanEntry> entries)
    : entries_(std::move(entries)) {
  for (size_t i = 1; i < entries_.size(); ++i) {
    AFF_CHECK_MSG(entries_[i - 1].when <= entries_[i].when, "trace entries must be time-sorted");
  }
}

void TraceArrivalProcess::Reset(uint64_t /*seed*/) { next_ = 0; }

bool TraceArrivalProcess::Next(ArrivalPlanEntry* out) {
  if (next_ >= entries_.size()) {
    return false;
  }
  *out = entries_[next_++];
  return true;
}

namespace {

bool Fail(std::string* error, size_t line_no, const std::string& message) {
  if (error != nullptr) {
    std::ostringstream o;
    o << "line " << line_no << ": " << message;
    *error = o.str();
  }
  return false;
}

bool ValidateAndAppend(double t_s, double app, size_t line_no,
                       std::vector<ArrivalPlanEntry>* out, std::string* error) {
  if (!std::isfinite(t_s) || t_s < 0.0) {
    return Fail(error, line_no, "arrival time must be a finite non-negative number");
  }
  if (!std::isfinite(app) || app < 0.0 || app != std::floor(app)) {
    return Fail(error, line_no, "app index must be a non-negative integer");
  }
  ArrivalPlanEntry entry;
  entry.when = Seconds(t_s);
  entry.app_index = static_cast<size_t>(app);
  if (!out->empty() && entry.when < out->back().when) {
    return Fail(error, line_no, "arrival times must be non-decreasing");
  }
  out->push_back(entry);
  return true;
}

// Parses a double at `s`, requiring the whole token be consumed.
bool ParseNumber(const std::string& s, double* value) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  *value = std::strtod(s.c_str(), &end);
  while (end != nullptr && *end != '\0' && std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  return end != nullptr && *end == '\0';
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) {
    --e;
  }
  return s.substr(b, e - b);
}

// Extracts the numeric value of `"key": <number>` from a single-line JSON
// object. This is a field scanner, not a JSON parser: enough for the flat
// trace schema, with malformed values rejected by the caller's validation.
bool ExtractJsonNumber(const std::string& line, const std::string& key, double* value) {
  const std::string quoted = "\"" + key + "\"";
  size_t pos = line.find(quoted);
  if (pos == std::string::npos) {
    return false;
  }
  pos += quoted.size();
  while (pos < line.size() && (std::isspace(static_cast<unsigned char>(line[pos])) || line[pos] == ':')) {
    ++pos;
  }
  size_t end = pos;
  while (end < line.size() && line[end] != ',' && line[end] != '}') {
    ++end;
  }
  return ParseNumber(Trim(line.substr(pos, end - pos)), value);
}

}  // namespace

bool ParseArrivalTraceCsv(const std::string& text, std::vector<ArrivalPlanEntry>* out,
                          std::string* error) {
  out->clear();
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_no;
    line = Trim(line);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t comma = line.find(',');
    if (comma == std::string::npos) {
      return Fail(error, line_no, "expected 't_seconds,app_index'");
    }
    double t_s = 0.0;
    double app = 0.0;
    const bool ok = ParseNumber(Trim(line.substr(0, comma)), &t_s) &&
                    ParseNumber(Trim(line.substr(comma + 1)), &app);
    if (!ok) {
      if (first_data_line) {
        // Tolerate one header line ("t_s,app").
        first_data_line = false;
        continue;
      }
      return Fail(error, line_no, "expected 't_seconds,app_index'");
    }
    first_data_line = false;
    if (!ValidateAndAppend(t_s, app, line_no, out, error)) {
      return false;
    }
  }
  return true;
}

bool ParseArrivalTraceJsonl(const std::string& text, std::vector<ArrivalPlanEntry>* out,
                            std::string* error) {
  out->clear();
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    double t_s = 0.0;
    double app = 0.0;
    if (!ExtractJsonNumber(line, "t_s", &t_s)) {
      return Fail(error, line_no, "missing or malformed \"t_s\" field");
    }
    if (!ExtractJsonNumber(line, "app", &app)) {
      return Fail(error, line_no, "missing or malformed \"app\" field");
    }
    if (!ValidateAndAppend(t_s, app, line_no, out, error)) {
      return false;
    }
  }
  return true;
}

std::unique_ptr<TraceArrivalProcess> LoadArrivalTraceFile(const std::string& path,
                                                          std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open trace file: " + path;
    }
    return nullptr;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const bool jsonl = path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
  std::vector<ArrivalPlanEntry> entries;
  std::string parse_error;
  const bool ok = jsonl ? ParseArrivalTraceJsonl(buffer.str(), &entries, &parse_error)
                        : ParseArrivalTraceCsv(buffer.str(), &entries, &parse_error);
  if (!ok) {
    if (error != nullptr) {
      *error = path + ": " + parse_error;
    }
    return nullptr;
  }
  return std::make_unique<TraceArrivalProcess>(std::move(entries));
}

std::vector<ArrivalPlanEntry> GenerateArrivals(ArrivalProcess& process, uint64_t seed,
                                               size_t max_count, SimTime t_end) {
  const bool finite = dynamic_cast<TraceArrivalProcess*>(&process) != nullptr;
  AFF_CHECK_MSG(max_count > 0 || t_end > 0 || finite,
                "unbounded generation: set max_count or t_end");
  process.Reset(seed);
  std::vector<ArrivalPlanEntry> plan;
  if (max_count > 0) {
    plan.reserve(max_count);
  }
  ArrivalPlanEntry entry;
  while ((max_count == 0 || plan.size() < max_count) && process.Next(&entry)) {
    if (t_end > 0 && entry.when >= t_end) {
      break;  // the first arrival past the horizon is discarded
    }
    plan.push_back(entry);
  }
  return plan;
}

std::vector<ArrivalPlanEntry> PoissonArrivals(size_t count, SimDuration mean_interarrival,
                                              const std::vector<double>& app_weights,
                                              uint64_t seed) {
  PoissonProcess process(mean_interarrival, app_weights);
  return GenerateArrivals(process, seed, count, /*t_end=*/0);
}

std::vector<ArrivalPlanEntry> PoissonArrivalsUntil(SimTime t_end, SimDuration mean_interarrival,
                                                   const std::vector<double>& app_weights,
                                                   uint64_t seed) {
  AFF_CHECK_MSG(t_end > 0, "horizon must be positive");
  PoissonProcess process(mean_interarrival, app_weights);
  return GenerateArrivals(process, seed, /*max_count=*/0, t_end);
}

}  // namespace affsched
