#include "src/opensys/open_sweep.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>

#include "src/apps/apps.h"
#include "src/common/check.h"
#include "src/measure/experiment.h"
#include "src/rt/deadline_mix.h"
#include "src/runner/cell_seed.h"
#include "src/runner/worker_pool.h"
#include "src/telemetry/json.h"

namespace affsched {

std::string ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kOnOff:
      return "onoff";
  }
  AFF_CHECK(false);
  return "";
}

bool ArrivalKindFromName(const std::string& name, ArrivalKind* kind) {
  if (name == "poisson") {
    *kind = ArrivalKind::kPoisson;
    return true;
  }
  if (name == "onoff") {
    *kind = ArrivalKind::kOnOff;
    return true;
  }
  return false;
}

int RhoPermille(double rho) {
  AFF_CHECK_MSG(rho > 0.0, "offered load must be positive");
  const int permille = static_cast<int>(std::lround(rho * 1000.0));
  AFF_CHECK(permille >= 1);
  return permille;
}

double MeanServiceDemandSeconds(const std::vector<AppProfile>& apps,
                                const std::vector<double>& app_weights) {
  AFF_CHECK(apps.size() == app_weights.size());
  CheckAppWeights(app_weights);
  // The probe seed is a fixed constant, NOT the sweep seed: the rho -> rate
  // mapping must mean the same thing across sweeps or cross-run comparisons
  // at "the same rho" would silently compare different loads.
  constexpr uint64_t kDemandProbeSeed = 0x6F70656E;  // "open"
  constexpr size_t kProbesPerApp = 8;
  double weighted = 0.0;
  double total_weight = 0.0;
  for (size_t a = 0; a < apps.size(); ++a) {
    double sum_s = 0.0;
    for (size_t k = 0; k < kProbesPerApp; ++k) {
      Rng rng(DeriveSeed(kDemandProbeSeed, {static_cast<uint64_t>(a), static_cast<uint64_t>(k)}));
      sum_s += ToSeconds(apps[a].build_graph(rng)->TotalWork());
    }
    weighted += app_weights[a] * (sum_s / static_cast<double>(kProbesPerApp));
    total_weight += app_weights[a];
  }
  return weighted / total_weight;
}

namespace {

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

OpenSweepSpec BaseOpenSpec() {
  OpenSweepSpec spec;
  spec.machine = PaperMachineConfig();
  spec.apps = {MakeSmallMvaProfile(), MakeSmallMatrixProfile(), MakeSmallGravityProfile()};
  spec.app_weights = {1.0, 1.0, 1.0};
  return spec;
}

}  // namespace

OpenSweepSpec OpenSysSpec() {
  OpenSweepSpec spec = BaseOpenSpec();
  spec.name = "opensys";
  spec.policies = {PolicyKind::kEquipartition, PolicyKind::kDynamic, PolicyKind::kDynAff};
  spec.arrivals = {ArrivalKind::kPoisson, ArrivalKind::kOnOff};
  spec.rhos = {0.3, 0.5, 0.7, 0.8, 0.9, 0.95};
  spec.jobs_per_cell = 80;
  spec.replications = 1;
  spec.root_seed = 2000;
  return spec;
}

OpenSweepSpec OpenSysSmokeSpec() {
  OpenSweepSpec spec = BaseOpenSpec();
  spec.name = "opensys-smoke";
  spec.policies = {PolicyKind::kEquipartition, PolicyKind::kDynAff};
  spec.arrivals = {ArrivalKind::kPoisson};
  spec.rhos = {0.5, 0.8};
  spec.jobs_per_cell = 30;
  spec.replications = 1;
  spec.root_seed = 2000;
  return spec;
}

bool ParseOpenSweepSpec(const std::string& text, OpenSweepSpec* spec, std::string* error) {
  if (text.empty()) {
    *error = "empty open sweep spec";
    return false;
  }
  const std::vector<std::string> tokens = SplitOn(text, ';');
  size_t first_override = 0;
  if (tokens[0].find('=') == std::string::npos) {
    const std::string& preset = tokens[0];
    if (preset == "opensys") {
      *spec = OpenSysSpec();
    } else if (preset == "opensys-smoke") {
      *spec = OpenSysSmokeSpec();
    } else {
      *error = "unknown open sweep preset '" + preset + "'";
      return false;
    }
    first_override = 1;
  } else {
    *spec = OpenSysSpec();  // custom specs start from the full grid
    spec->name = "custom";
  }
  if (first_override < tokens.size()) {
    spec->name = text;  // overrides applied: record full provenance
  }

  for (size_t i = first_override; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.empty()) {
      continue;
    }
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      *error = "expected key=value, got '" + token + "'";
      return false;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "policies") {
      spec->policies.clear();
      for (const std::string& name : SplitOn(value, ',')) {
        PolicyKind kind;
        if (!PolicyKindFromName(name, &kind)) {
          *error = "unknown policy '" + name + "'";
          return false;
        }
        spec->policies.push_back(kind);
      }
    } else if (key == "arrivals") {
      spec->arrivals.clear();
      for (const std::string& name : SplitOn(value, ',')) {
        ArrivalKind kind;
        if (!ArrivalKindFromName(name, &kind)) {
          *error = "unknown arrival process '" + name + "'";
          return false;
        }
        spec->arrivals.push_back(kind);
      }
    } else if (key == "rhos") {
      spec->rhos.clear();
      for (const std::string& number : SplitOn(value, ',')) {
        const double rho = std::atof(number.c_str());
        if (rho <= 0.0 || rho > 1.5) {
          *error = "rho '" + number + "' out of range (0, 1.5]";
          return false;
        }
        spec->rhos.push_back(rho);
      }
    } else if (key == "count") {
      const int n = std::atoi(value.c_str());
      if (n < 1) {
        *error = "count must be >= 1";
        return false;
      }
      spec->jobs_per_cell = static_cast<size_t>(n);
    } else if (key == "reps") {
      const int n = std::atoi(value.c_str());
      if (n < 1) {
        *error = "reps must be >= 1";
        return false;
      }
      spec->replications = static_cast<size_t>(n);
    } else if (key == "seed") {
      spec->root_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "procs") {
      const int n = std::atoi(value.c_str());
      if (n < 1) {
        *error = "procs must be >= 1";
        return false;
      }
      spec->machine.num_processors = static_cast<size_t>(n);
    } else if (key == "speed") {
      spec->machine.processor_speed = std::atof(value.c_str());
    } else if (key == "cache") {
      spec->machine.cache_size_factor = std::atof(value.c_str());
    } else if (key == "topology") {
      // topology=preset or topology=preset,key=value,... (comma-separated;
      // see src/topology). Cell seeds do not depend on the topology, so
      // hierarchical cells share common random numbers with flat ones.
      if (!ParseTopologySpec(value, &spec->machine.topology, error)) {
        return false;
      }
    } else if (key == "steal") {
      // steal=nosteal,cluster,... — sugar for the multi-queue policy family:
      // replaces the policy list with the mq-* kind for each steal radius.
      spec->policies.clear();
      for (const std::string& name : SplitOn(value, ',')) {
        PolicyKind kind;
        if (!PolicyKindFromStealName(name, &kind)) {
          *error = "unknown steal policy '" + name + "'";
          return false;
        }
        spec->policies.push_back(kind);
      }
    } else if (key == "mpl-cap") {
      const int n = std::atoi(value.c_str());
      if (n < 0) {
        *error = "mpl-cap must be >= 0 (0 = unbounded)";
        return false;
      }
      spec->mpl_cap = static_cast<size_t>(n);
    } else if (key == "max-queue") {
      spec->max_queue = std::atoll(value.c_str());
    } else if (key == "warmup") {
      if (value == "mser") {
        spec->open.warmup_rule = WarmupRule::kMser;
      } else {
        const double fraction = std::atof(value.c_str());
        if (fraction < 0.0 || fraction >= 1.0) {
          *error = "warmup must be 'mser' or a fraction in [0, 1)";
          return false;
        }
        spec->open.warmup_rule = WarmupRule::kFraction;
        spec->open.warmup_fraction = fraction;
      }
    } else if (key == "burst") {
      const double factor = std::atof(value.c_str());
      if (factor <= 1.0) {
        *error = "burst factor must be > 1";
        return false;
      }
      spec->onoff_burst_factor = factor;
    } else if (key == "colors") {
      const int n = std::atoi(value.c_str());
      if (n < 0 || n > 64) {
        *error = "colors must be in 0..64 (0 = footprint model)";
        return false;
      }
      spec->machine.num_colors = static_cast<size_t>(n);
      spec->machine.cache_model =
          n > 0 ? CacheModelKind::kPartitioned : CacheModelKind::kFootprint;
    } else if (key == "rt") {
      if (value == "1" || value == "true" || value == "on") {
        spec->rt = true;
      } else if (value == "0" || value == "false" || value == "off") {
        spec->rt = false;
      } else {
        *error = "rt must be 0 or 1, got '" + value + "'";
        return false;
      }
    } else if (key == "deadline-mix" || key == "deadline_mix") {
      if (!IsDeadlineMix(value)) {
        *error = "unknown deadline mix '" + value + "' (expected soft|hard|mixed|tight)";
        return false;
      }
      spec->deadline_mix = value;
    } else {
      *error = "unknown open sweep spec key '" + key + "'";
      return false;
    }
  }
  if (spec->policies.empty() || spec->arrivals.empty() || spec->rhos.empty()) {
    *error = "open sweep spec needs at least one policy, arrival process and rho";
    return false;
  }
  const std::string machine_problem = spec->machine.Validate();
  if (!machine_problem.empty()) {
    *error = machine_problem;
    return false;
  }
  return true;
}

namespace {

std::unique_ptr<ArrivalProcess> MakeArrivalProcess(const OpenSweepSpec& spec, ArrivalKind kind,
                                                   double interarrival_s) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return std::make_unique<PoissonProcess>(Seconds(interarrival_s), spec.app_weights);
    case ArrivalKind::kOnOff: {
      // Concentrate the target rate into bursts: during a burst arrivals are
      // burst_factor times faster, the burst holds burst_arrivals jobs on
      // average, and the off phase is sized so that the on fraction is
      // 1/burst_factor — the long-run rate then equals the Poisson cell's.
      OnOffProcess::Params params;
      const double on_interarrival_s = interarrival_s / spec.onoff_burst_factor;
      const double mean_on_s = spec.onoff_burst_arrivals * on_interarrival_s;
      params.on_interarrival = Seconds(on_interarrival_s);
      params.mean_on = Seconds(mean_on_s);
      params.mean_off = Seconds((spec.onoff_burst_factor - 1.0) * mean_on_s);
      return std::make_unique<OnOffProcess>(params, spec.app_weights);
    }
  }
  AFF_CHECK(false);
  return nullptr;
}

OpenSystemResult RunOpenCell(const OpenSweepSpec& spec, const std::vector<AppProfile>& apps,
                             PolicyKind policy, ArrivalKind kind, double rho, uint64_t seed,
                             double mean_demand_s) {
  const double capacity =
      static_cast<double>(spec.machine.num_processors) * spec.machine.processor_speed;
  AFF_CHECK(capacity > 0.0);
  const double interarrival_s = mean_demand_s / (rho * capacity);
  std::unique_ptr<ArrivalProcess> process = MakeArrivalProcess(spec, kind, interarrival_s);
  std::vector<ArrivalPlanEntry> plan =
      GenerateArrivals(*process, seed, spec.jobs_per_cell, /*t_end=*/0);
  std::unique_ptr<AdmissionController> admission =
      MakeAdmissionController(spec.mpl_cap, spec.max_queue);
  OpenSystemDriver driver(spec.machine, policy, apps, std::move(plan), admission.get(),
                          seed, spec.open);
  return driver.Run();
}

}  // namespace

OpenSweepRunner::OpenSweepRunner(const OpenSweepRunnerOptions& options) : options_(options) {}

OpenSweepResult OpenSweepRunner::Run(const OpenSweepSpec& spec) const {
  AFF_CHECK(spec.replications >= 1);
  const auto start = std::chrono::steady_clock::now();

  OpenSweepResult result;
  result.spec = spec;
  result.mean_demand_s = MeanServiceDemandSeconds(spec.apps, spec.app_weights);

  // In rt mode every cell draws from the deadline-stamped application set.
  // The stamping happens once, here, so the rho -> rate calibration above
  // (which only depends on work, not deadlines) is unaffected.
  std::vector<AppProfile> apps = spec.apps;
  if (spec.rt) {
    std::string mix_error;
    AFF_CHECK_MSG(ApplyDeadlineMix(spec.deadline_mix, spec.machine.num_processors, &apps,
                                   &mix_error),
                  mix_error.c_str());
  }

  // Expand the grid in serialization order; every cell folds into its
  // preallocated slot, so worker count and execution order cannot reorder
  // (or even reorder within float addition) anything.
  struct CellDesc {
    PolicyKind policy;
    ArrivalKind arrivals;
    double rho;
    size_t replication;
    uint64_t seed;
  };
  std::vector<CellDesc> descs;
  descs.reserve(spec.Cells());
  for (size_t a = 0; a < spec.arrivals.size(); ++a) {
    for (double rho : spec.rhos) {
      for (PolicyKind policy : spec.policies) {
        for (size_t rep = 0; rep < spec.replications; ++rep) {
          CellDesc d;
          d.policy = policy;
          d.arrivals = spec.arrivals[a];
          d.rho = rho;
          d.replication = rep;
          d.seed = DeriveOpenCellSeed(spec.root_seed, a, RhoPermille(rho), rep);
          descs.push_back(d);
        }
      }
    }
  }
  result.cells.resize(descs.size());

  WorkerPool pool(options_.jobs > 0 ? options_.jobs : WorkerPool::DefaultThreadCount());
  // Waves of one task per worker keep the progress callback on the
  // orchestration thread without perturbing results (slots are indexed).
  const size_t wave = pool.size();
  for (size_t begin = 0; begin < descs.size(); begin += wave) {
    const size_t count = std::min(wave, descs.size() - begin);
    pool.ParallelFor(count, [&, begin](size_t k) {
      const size_t i = begin + k;
      const CellDesc& d = descs[i];
      OpenCellResult& cell = result.cells[i];
      cell.policy = d.policy;
      cell.arrivals = d.arrivals;
      cell.rho = d.rho;
      cell.replication = d.replication;
      cell.seed = d.seed;
      cell.result =
          RunOpenCell(spec, apps, d.policy, d.arrivals, d.rho, d.seed, result.mean_demand_s);
      if (spec.rt) {
        // A completed job misses when queue wait + service exceeds its
        // relative deadline; rejected jobs appear in neither count.
        for (const OpenJobRecord& job : cell.result.jobs) {
          const double deadline_s = apps[job.app_index].rt.deadline_s;
          if (job.rejected || deadline_s <= 0.0) {
            continue;
          }
          ++cell.deadline_checked;
          if (job.sojourn_s > deadline_s) {
            ++cell.deadline_misses;
          }
        }
      }
    });
    if (options_.progress) {
      options_.progress(begin + count, descs.size());
    }
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

const OpenCellResult* OpenSweepResult::Find(PolicyKind policy, ArrivalKind arrivals,
                                            int rho_permille, size_t replication) const {
  for (const OpenCellResult& cell : cells) {
    if (cell.policy == policy && cell.arrivals == arrivals &&
        RhoPermille(cell.rho) == rho_permille && cell.replication == replication) {
      return &cell;
    }
  }
  return nullptr;
}

bool OpenSweepResult::AllLittlesLawOk() const {
  for (const OpenCellResult& cell : cells) {
    if (!cell.result.littles.ok) {
      return false;
    }
  }
  return true;
}

std::string OpenSweepResult::ToJson() const {
  std::ostringstream o;
  o << "{\"schema_version\":2,\"tool\":\"open_sweep_runner\",\"mode\":\"open\"";

  o << ",\"spec\":{\"name\":\"" << JsonEscape(spec.name) << "\""
    << ",\"root_seed\":" << spec.root_seed << ",\"machine\":{\"procs\":"
    << spec.machine.num_processors << ",\"speed\":" << JsonNumber(spec.machine.processor_speed)
    << ",\"cache\":" << JsonNumber(spec.machine.cache_size_factor);
  if (spec.machine.cache_model == CacheModelKind::kPartitioned) {
    o << ",\"colors\":" << spec.machine.num_colors;
  }
  if (!spec.machine.topology.IsFlat()) {
    o << ",\"topology\":\"" << JsonEscape(spec.machine.topology.ToSpecString()) << "\"";
  }
  o << "}";
  o << ",\"policies\":[";
  for (size_t i = 0; i < spec.policies.size(); ++i) {
    o << (i > 0 ? "," : "") << "\"" << PolicyKindCliName(spec.policies[i]) << "\"";
  }
  o << "],\"arrivals\":[";
  for (size_t i = 0; i < spec.arrivals.size(); ++i) {
    o << (i > 0 ? "," : "") << "\"" << ArrivalKindName(spec.arrivals[i]) << "\"";
  }
  o << "],\"rhos\":[";
  for (size_t i = 0; i < spec.rhos.size(); ++i) {
    o << (i > 0 ? "," : "") << JsonNumber(spec.rhos[i]);
  }
  o << "],\"jobs_per_cell\":" << spec.jobs_per_cell
    << ",\"replications\":" << spec.replications << ",\"admission\":{\"name\":\""
    << MakeAdmissionController(spec.mpl_cap, spec.max_queue)->Name()
    << "\",\"mpl_cap\":" << spec.mpl_cap << ",\"max_queue\":" << spec.max_queue << "}"
    << ",\"warmup\":{\"rule\":\""
    << (spec.open.warmup_rule == WarmupRule::kMser ? "mser" : "fraction")
    << "\",\"fraction\":" << JsonNumber(spec.open.warmup_fraction) << "}"
    << ",\"littles_tolerance\":" << JsonNumber(spec.open.littles_tolerance)
    << ",\"mean_demand_s\":" << JsonNumber(mean_demand_s);
  if (spec.rt) {
    o << ",\"rt\":true,\"deadline_mix\":\"" << JsonEscape(spec.deadline_mix) << "\"";
  }
  o << "}";

  o << ",\"cells\":[";
  for (size_t c = 0; c < cells.size(); ++c) {
    const OpenCellResult& cell = cells[c];
    const OpenSystemResult& r = cell.result;
    o << (c > 0 ? "," : "") << "{\"policy\":\"" << PolicyKindCliName(cell.policy) << "\""
      << ",\"arrivals\":\"" << ArrivalKindName(cell.arrivals) << "\""
      << ",\"rho\":" << JsonNumber(cell.rho) << ",\"rep\":" << cell.replication
      << ",\"seed\":" << SeedToDecimal(cell.seed) << ",\"n_arrivals\":" << r.arrivals
      << ",\"admitted\":" << r.admitted << ",\"rejected\":" << r.rejected
      << ",\"reject_rate\":" << JsonNumber(r.reject_rate)
      << ",\"warmup_trimmed\":" << r.warmup_trimmed
      << ",\"mean_sojourn_s\":" << JsonNumber(r.mean_sojourn_s)
      << ",\"p50_sojourn_s\":" << JsonNumber(r.p50_sojourn_s)
      << ",\"p95_sojourn_s\":" << JsonNumber(r.p95_sojourn_s)
      << ",\"p99_sojourn_s\":" << JsonNumber(r.p99_sojourn_s)
      << ",\"max_sojourn_s\":" << JsonNumber(r.max_sojourn_s)
      << ",\"mean_queue_wait_s\":" << JsonNumber(r.mean_queue_wait_s)
      << ",\"mean_queue_len\":" << JsonNumber(r.mean_queue_len)
      << ",\"mean_jobs_in_system\":" << JsonNumber(r.mean_jobs_in_system)
      << ",\"affinity_fraction\":" << JsonNumber(r.affinity_fraction);
    if (spec.rt) {
      o << ",\"deadline_checked\":" << cell.deadline_checked
        << ",\"deadline_misses\":" << cell.deadline_misses << ",\"deadline_miss_rate\":"
        << JsonNumber(cell.deadline_checked > 0
                          ? static_cast<double>(cell.deadline_misses) /
                                static_cast<double>(cell.deadline_checked)
                          : 0.0);
    }
    o << ",\"throughput_per_s\":" << JsonNumber(r.throughput_per_s)
      << ",\"end_s\":" << JsonNumber(ToSeconds(r.end_time))
      << ",\"littles_law\":{\"l\":" << JsonNumber(r.littles.mean_jobs_in_system)
      << ",\"lambda_per_s\":" << JsonNumber(r.littles.arrival_rate_per_s)
      << ",\"w_s\":" << JsonNumber(r.littles.mean_sojourn_s)
      << ",\"rel_err\":" << JsonNumber(r.littles.relative_error)
      << ",\"ok\":" << (r.littles.ok ? "true" : "false") << "}}";
  }
  o << "]}";
  return o.str();
}

bool OpenSweepResult::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << ToJson() << "\n";
  return out.good();
}

}  // namespace affsched
