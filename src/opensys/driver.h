// OpenSystemDriver: runs the engine as an open queueing system.
//
// The driver owns the open-system control loop around a single Engine run:
// it schedules each planned arrival as an external event, routes it through
// an AdmissionController (admit / FIFO-queue / reject), admits queued jobs
// as departures free capacity, and collects per-job sojourn times — queue
// wait plus in-service response — into quantile-capable histograms.
//
// Determinism: the arrival plan is materialized before the run, each job's
// thread graph is built from a seed derived from (driver seed, plan index),
// and admission order is FIFO. Policies therefore see identical workload
// draws for a given seed (common random numbers) even though their admission
// and completion dynamics differ.
//
// Self-validation: a LittlesLawChecker accumulates both sides of L = lambda*W
// over the full untrimmed window, where the law is an exact identity (every
// admitted job completes; rejected jobs appear on neither side). Warmup
// trimming — a fixed fraction of completions, or an MSER-style minimal
// standard-error rule — applies only to the reported mean/percentile
// statistics, never to the Little's-law accounting check.

#ifndef SRC_OPENSYS_DRIVER_H_
#define SRC_OPENSYS_DRIVER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/engine/engine.h"
#include "src/opensys/admission.h"
#include "src/opensys/arrival_process.h"
#include "src/opensys/littles_law.h"
#include "src/sched/factory.h"

namespace affsched {

enum class WarmupRule {
  kFraction,  // trim the first warmup_fraction of completions
  kMser,      // MSER truncation: minimize the standard error of the tail
};

struct OpenSystemOptions {
  EngineOptions engine;

  WarmupRule warmup_rule = WarmupRule::kFraction;
  // For kFraction: fraction of completions (in completion order) excluded
  // from the reported latency statistics. In [0, 1).
  double warmup_fraction = 0.2;

  // Tolerance for the Little's-law relative error (identity up to float
  // rounding, so violations at any visible tolerance indicate a bug).
  double littles_tolerance = 0.05;

  // Bucket width of the sojourn/queue-wait histograms, in seconds.
  double histogram_bucket_s = 0.05;
};

// Per-arrival outcome, indexed like the arrival plan.
struct OpenJobRecord {
  size_t app_index = 0;
  SimTime arrival = 0;     // planned arrival time
  SimTime admitted = -1;   // entered service (-1 if rejected)
  SimTime completion = -1;  // completed (-1 if rejected)
  bool rejected = false;
  double sojourn_s = 0.0;     // queue wait + in-service response
  double queue_wait_s = 0.0;  // admission-queue portion of the sojourn
};

struct OpenSystemResult {
  size_t arrivals = 0;
  size_t admitted = 0;
  size_t rejected = 0;
  size_t completed = 0;  // == admitted: every admitted job runs to completion
  double reject_rate = 0.0;

  // Latency statistics over post-warmup completions (completion order).
  size_t warmup_trimmed = 0;
  double mean_sojourn_s = 0.0;
  double p50_sojourn_s = 0.0;
  double p95_sojourn_s = 0.0;
  double p99_sojourn_s = 0.0;
  double max_sojourn_s = 0.0;
  double mean_queue_wait_s = 0.0;

  // Time-averaged over the full run: admission-queue length and jobs in
  // system (queued + in service).
  double mean_queue_len = 0.0;
  double mean_jobs_in_system = 0.0;

  // Affinity-dispatch fraction aggregated over all completed jobs.
  double affinity_fraction = 0.0;
  double throughput_per_s = 0.0;  // completions / end_time

  LittlesLawResult littles;  // over the full untrimmed window
  SimTime end_time = 0;      // when the system drained

  std::vector<OpenJobRecord> jobs;  // plan order
};

class OpenSystemDriver {
 public:
  // `apps` and `admission` must outlive Run(). Every plan entry's app_index
  // must be < apps.size().
  OpenSystemDriver(const MachineConfig& machine, PolicyKind policy,
                   const std::vector<AppProfile>& apps, std::vector<ArrivalPlanEntry> plan,
                   AdmissionController* admission, uint64_t seed,
                   const OpenSystemOptions& options = {});
  ~OpenSystemDriver();

  OpenSystemDriver(const OpenSystemDriver&) = delete;
  OpenSystemDriver& operator=(const OpenSystemDriver&) = delete;

  // Telemetry attachments, forwarded to the engine; call before Run().
  // SetSampler additionally registers open-system probes: the admission-queue
  // length and the in-service job count.
  void SetSampler(Sampler* sampler);
  void SetMetrics(MetricsRegistry* registry);
  void SetTraceSink(TraceSink* sink);
  void SetDecisionSink(DecisionSink* sink);
  void SetSpanCollector(JobSpanCollector* spans);

  // Runs the whole plan to completion. Call at most once.
  OpenSystemResult Run();

  const Engine& engine() const { return *engine_; }

 private:
  friend struct OpenArrivalTick;

  void OnArrival(uint32_t plan_index);
  void OnCompletion(JobId id);
  void Admit(size_t plan_index);
  void RecordQueueChange(SimTime now, int delta);
  uint64_t GraphSeed(size_t plan_index) const;

  std::vector<AppProfile> apps_;
  std::vector<ArrivalPlanEntry> plan_;
  AdmissionController* admission_;
  uint64_t seed_;
  OpenSystemOptions options_;

  std::unique_ptr<Engine> engine_;
  std::vector<OpenJobRecord> records_;
  std::unordered_map<JobId, size_t> job_to_plan_;
  std::deque<size_t> fifo_;  // queued plan indices, arrival order
  std::vector<size_t> completion_order_;  // plan indices in completion order

  size_t in_service_ = 0;
  size_t queue_len_ = 0;
  double queue_integral_job_s_ = 0.0;
  SimTime last_queue_change_ = 0;

  LittlesLawChecker littles_;
  bool ran_ = false;
};

// MSER truncation point for a completion-ordered sample sequence: the prefix
// length d (searched up to half the sample) minimizing the standard error of
// the tail mean, stddev(x[d..n)) / sqrt(n - d). Returns 0 for fewer than four
// samples. Deterministic; ties break toward the smaller d.
size_t MserTruncationPoint(const std::vector<double>& samples);

}  // namespace affsched

#endif  // SRC_OPENSYS_DRIVER_H_
