#include "src/opensys/littles_law.h"

#include <cmath>

#include "src/common/check.h"

namespace affsched {

void LittlesLawChecker::Advance(SimTime t) {
  AFF_CHECK_MSG(t >= last_change_, "Little's-law events must be time-ordered");
  integral_job_s_ += static_cast<double>(in_system_) * ToSeconds(t - last_change_);
  last_change_ = t;
}

void LittlesLawChecker::OnEnter(SimTime t) {
  Advance(t);
  ++in_system_;
}

void LittlesLawChecker::OnLeave(SimTime t, double sojourn_s) {
  AFF_CHECK_MSG(in_system_ > 0, "leave without a matching enter");
  AFF_CHECK(sojourn_s >= 0.0);
  Advance(t);
  --in_system_;
  ++completed_;
  sojourn_sum_s_ += sojourn_s;
}

LittlesLawResult LittlesLawChecker::Result(SimTime t_end, double tolerance) const {
  AFF_CHECK(tolerance >= 0.0);
  LittlesLawResult r;
  const double t_s = ToSeconds(t_end);
  if (t_s <= 0.0 || completed_ == 0) {
    // Degenerate window: nothing completed, both sides are vacuously equal.
    r.ok = true;
    return r;
  }
  AFF_CHECK_MSG(t_end >= last_change_, "t_end precedes the last recorded event");
  const double tail =
      static_cast<double>(in_system_) * ToSeconds(t_end - last_change_);
  r.mean_jobs_in_system = (integral_job_s_ + tail) / t_s;
  r.arrival_rate_per_s = static_cast<double>(completed_) / t_s;
  r.mean_sojourn_s = sojourn_sum_s_ / static_cast<double>(completed_);
  const double rhs = r.arrival_rate_per_s * r.mean_sojourn_s;
  r.relative_error = r.mean_jobs_in_system > 0.0
                         ? std::abs(r.mean_jobs_in_system - rhs) / r.mean_jobs_in_system
                         : std::abs(rhs);
  r.ok = r.relative_error <= tolerance;
  return r;
}

}  // namespace affsched
