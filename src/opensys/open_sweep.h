// Open-system load sweeps: policy x offered-load x arrival-process grids.
//
// The closed sweeps (src/runner/sweep.h) reproduce the paper's batch
// experiments: a fixed workload mix started at t = 0, response times compared
// across policies. The open sweep asks the question the paper's Section 6
// gestures at: how do the policies behave under a *stream* of arriving jobs
// as the offered load rho approaches saturation? Each cell runs the
// OpenSystemDriver at one (policy, arrival process, rho, replication)
// coordinate and reports latency percentiles, queue behaviour and the
// Little's-law self-check.
//
// Offered load calibration: rho = lambda * E[demand] / (P * speed), where
// E[demand] is the mean total work of a job (estimated by a deterministic
// probe over the application set, independent of the sweep seed) and
// P * speed is the machine's aggregate service capacity. The runner derives
// each cell's mean inter-arrival time from rho, so "rho=0.9" means the same
// thing on any machine shape.
//
// Determinism matches the closed runner: cell seeds come from
// DeriveOpenCellSeed (policy excluded — common random numbers), cells fold
// into preallocated slots, and the JSON is byte-identical at any worker
// count. Open sweeps serialize as schema_version 2 with "mode":"open";
// closed sweeps remain schema 1, and readers accept both.

#ifndef SRC_OPENSYS_OPEN_SWEEP_H_
#define SRC_OPENSYS_OPEN_SWEEP_H_

#include <functional>
#include <string>
#include <vector>

#include "src/opensys/driver.h"

namespace affsched {

enum class ArrivalKind {
  kPoisson,
  kOnOff,
};

// CLI/JSON identifier ("poisson", "onoff").
std::string ArrivalKindName(ArrivalKind kind);
bool ArrivalKindFromName(const std::string& name, ArrivalKind* kind);

struct OpenSweepSpec {
  std::string name = "opensys";
  MachineConfig machine;
  // Application set jobs are drawn from, with draw weights.
  std::vector<AppProfile> apps;
  std::vector<double> app_weights;

  // Grid axes.
  std::vector<PolicyKind> policies;
  std::vector<ArrivalKind> arrivals;
  std::vector<double> rhos;  // offered loads, each in (0, 1.5]
  size_t replications = 1;

  // Arrivals generated per cell (the run drains completely, so this bounds
  // the cell's length).
  size_t jobs_per_cell = 80;

  // Admission policy (see MakeAdmissionController): mpl_cap == 0 unbounded;
  // max_queue >= 0 enables load shedding.
  size_t mpl_cap = 0;
  int64_t max_queue = -1;

  // On/off burstiness: during a burst the arrival rate is burst_factor times
  // the cell's mean rate, and a burst contains burst_arrivals arrivals on
  // average. Off phases are sized so the long-run mean rate still matches rho.
  double onoff_burst_factor = 4.0;
  double onoff_burst_arrivals = 12.0;

  // Real-time mode: stamp the deadline mix onto the application set before
  // any cell runs, and report per-cell deadline-miss counts (a completed job
  // misses when its sojourn — queue wait plus service — exceeds its relative
  // deadline; rejected jobs are excluded). The document stays schema 2; the
  // extra fields only appear when rt is set, so non-rt documents are
  // byte-identical. Spec keys: rt=1, deadline-mix=soft|hard|mixed|tight,
  // colors=N (partitioned cache substrate).
  bool rt = false;
  std::string deadline_mix = "soft";

  uint64_t root_seed = 2000;
  OpenSystemOptions open;

  size_t Cells() const {
    return policies.size() * arrivals.size() * rhos.size() * replications;
  }
};

// rho as an exact per-mille integer (the seed coordinate): 0.7 -> 700.
int RhoPermille(double rho);

// Presets, both on PaperMachineConfig() + the small application profiles
// (seconds of work per job, so a full grid stays interactive).
OpenSweepSpec OpenSysSpec();       // 3 policies x 6 rhos x {poisson, onoff}
OpenSweepSpec OpenSysSmokeSpec();  // 2 policies x 2 rhos x poisson

// Parses an open sweep spec string: a preset name ("opensys",
// "opensys-smoke"), a "key=value;..." list, or a preset plus overrides.
// Keys: policies, rhos (comma-separated), arrivals (comma-separated kinds),
// count (arrivals per cell), reps, seed, procs, speed, cache, topology,
// steal (comma-separated steal radii — sugar for the mq-* policy family),
// mpl-cap, max-queue, warmup ("mser" or a fraction), burst (on/off burst
// factor), colors (partitioned cache model with N page colors; 0 restores
// footprint), rt (0/1 — deadline accounting), deadline-mix
// (soft|hard|mixed|tight).
bool ParseOpenSweepSpec(const std::string& text, OpenSweepSpec* spec, std::string* error);

// Deterministic mean job demand in seconds of base-machine work: a fixed
// probe (independent of the sweep seed) builds a few graphs per application
// and weight-averages their total work. Used to map rho to an arrival rate.
double MeanServiceDemandSeconds(const std::vector<AppProfile>& apps,
                                const std::vector<double>& app_weights);

struct OpenCellResult {
  PolicyKind policy = PolicyKind::kDynamic;
  ArrivalKind arrivals = ArrivalKind::kPoisson;
  double rho = 0.0;
  size_t replication = 0;
  uint64_t seed = 0;
  OpenSystemResult result;
  // Real-time accounting (populated only when the spec has rt set):
  // completed jobs carrying an active deadline, and how many missed it.
  size_t deadline_checked = 0;
  uint64_t deadline_misses = 0;
};

struct OpenSweepResult {
  OpenSweepSpec spec;
  double mean_demand_s = 0.0;
  std::vector<OpenCellResult> cells;  // arrival-major, rho, policy, replication
  // Wall-clock of the Run() call; informational, never serialized.
  double wall_seconds = 0.0;

  const OpenCellResult* Find(PolicyKind policy, ArrivalKind arrivals, int rho_permille,
                             size_t replication) const;

  // True if every cell's Little's-law check passed (the identity holds for
  // shedding cells too: rejected jobs appear on neither side).
  bool AllLittlesLawOk() const;

  // Schema version 2, "mode":"open". Deterministic bytes for a given spec.
  std::string ToJson() const;
  bool WriteJsonFile(const std::string& path) const;
};

struct OpenSweepRunnerOptions {
  // Worker threads; 0 means WorkerPool::DefaultThreadCount().
  size_t jobs = 0;
  // Called on the orchestration thread as cells complete.
  std::function<void(size_t completed, size_t total)> progress;
};

class OpenSweepRunner {
 public:
  explicit OpenSweepRunner(const OpenSweepRunnerOptions& options = {});

  // Executes the grid. Cell exceptions propagate after the pool quiesces
  // (lowest cell index wins, deterministically).
  OpenSweepResult Run(const OpenSweepSpec& spec) const;

 private:
  OpenSweepRunnerOptions options_;
};

}  // namespace affsched

#endif  // SRC_OPENSYS_OPEN_SWEEP_H_
