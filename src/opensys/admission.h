// Admission control for the open-system driver.
//
// An AdmissionController sits between the arrival stream and the allocator:
// each arrival is admitted into service, held in a FIFO admission queue, or
// rejected outright (load shedding). The driver accounts queue wait
// separately from in-service response time, so the admission policy's effect
// on sojourn decomposes cleanly.
//
// Three policies:
//   * UnboundedAdmission    — every arrival enters service immediately (the
//                             allocator itself multiplexes; MPL unbounded);
//   * FixedMplAdmission     — at most `cap` jobs in service; excess queues
//                             FIFO (the classic multiprogramming-level knob);
//   * LoadSheddingAdmission — FixedMpl plus a bounded queue: arrivals that
//                             find the queue full are rejected.

#ifndef SRC_OPENSYS_ADMISSION_H_
#define SRC_OPENSYS_ADMISSION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace affsched {

enum class AdmissionVerdict {
  kAdmit,   // enter service now
  kQueue,   // wait in the FIFO admission queue
  kReject,  // drop; the job never enters the system
};

class AdmissionController {
 public:
  virtual ~AdmissionController() = default;

  // Verdict for a new arrival, given current occupancy: `in_service` jobs
  // admitted and not yet complete, `queued` jobs waiting in the admission
  // queue. Called once per arrival.
  virtual AdmissionVerdict OnArrival(size_t in_service, size_t queued) = 0;

  // True if a queued job may enter service given `in_service` occupancy.
  // Consulted on each departure (repeatedly, until it declines or the queue
  // drains), so a single completion can release several queued jobs when the
  // controller allows it.
  virtual bool CanAdmitQueued(size_t in_service) = 0;

  // Short identifier for JSON and logs.
  virtual std::string Name() const = 0;
};

class UnboundedAdmission : public AdmissionController {
 public:
  AdmissionVerdict OnArrival(size_t in_service, size_t queued) override;
  bool CanAdmitQueued(size_t in_service) override;
  std::string Name() const override { return "unbounded"; }
};

class FixedMplAdmission : public AdmissionController {
 public:
  // `cap` > 0: the maximum multiprogramming level.
  explicit FixedMplAdmission(size_t cap);

  AdmissionVerdict OnArrival(size_t in_service, size_t queued) override;
  bool CanAdmitQueued(size_t in_service) override;
  std::string Name() const override;

  size_t cap() const { return cap_; }

 private:
  size_t cap_;
};

class LoadSheddingAdmission : public AdmissionController {
 public:
  // `cap` > 0 as for FixedMpl; arrivals finding `max_queue` jobs already
  // queued are rejected (max_queue == 0 rejects instead of ever queueing).
  LoadSheddingAdmission(size_t cap, size_t max_queue);

  AdmissionVerdict OnArrival(size_t in_service, size_t queued) override;
  bool CanAdmitQueued(size_t in_service) override;
  std::string Name() const override;

  size_t cap() const { return cap_; }
  size_t max_queue() const { return max_queue_; }

 private:
  size_t cap_;
  size_t max_queue_;
};

// CLI-level factory: mpl_cap == 0 selects Unbounded; mpl_cap > 0 with
// max_queue < 0 selects FixedMpl (unbounded queue); mpl_cap > 0 with
// max_queue >= 0 selects LoadShedding.
std::unique_ptr<AdmissionController> MakeAdmissionController(size_t mpl_cap, int64_t max_queue);

}  // namespace affsched

#endif  // SRC_OPENSYS_ADMISSION_H_
