// Arrival-process generation for open-system experiments.
//
// The paper's experiments start all jobs at t = 0; its policies, however, are
// designed around arrivals and departures (Equipartition repartitions on
// them; Dynamic's fair shares shift). This layer turns the simulator into an
// open queueing system's front half: a stream of (application, time) arrival
// events, drawn from a stochastic process or replayed from a trace, that the
// OpenSystemDriver feeds through admission control into the Engine.
//
// Three implementations:
//   * PoissonProcess       — memoryless arrivals at a fixed mean rate;
//   * OnOffProcess         — a two-state Markov-modulated Poisson process
//                            (bursts of arrivals separated by silences);
//   * TraceArrivalProcess  — deterministic replay of a recorded stream
//                            (CSV or JSONL).
//
// Every process is deterministic given its Reset() seed, so arrival plans are
// reproducible and shared across policies under common random numbers.

#ifndef SRC_OPENSYS_ARRIVAL_PROCESS_H_
#define SRC_OPENSYS_ARRIVAL_PROCESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace affsched {

struct ArrivalPlanEntry {
  size_t app_index = 0;  // index into the application set
  SimTime when = 0;
};

// Validates an application weight vector: non-empty, every entry finite and
// >= 0, total > 0. Dies with a message naming the offending entry otherwise.
// Every arrival process routes its weights through this guard, so a stray
// zero or negative weight fails fast instead of silently skewing the mix.
void CheckAppWeights(const std::vector<double>& app_weights);

// A stream of arrivals, strictly ordered by time. Implementations are
// deterministic functions of the Reset() seed.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  // Restarts the stream from t = 0 with the given seed. Must be called before
  // the first Next(); calling it again replays the stream from the start.
  virtual void Reset(uint64_t seed) = 0;

  // Produces the next arrival (times non-decreasing). Returns false when the
  // stream is exhausted; stochastic processes never exhaust, traces do.
  virtual bool Next(ArrivalPlanEntry* out) = 0;

  // Short identifier for sweep axes and JSON ("poisson", "onoff", "trace").
  virtual std::string Name() const = 0;
};

// Memoryless arrivals: exponential inter-arrival times with the given mean,
// each job drawn (by weight) from the application set.
class PoissonProcess : public ArrivalProcess {
 public:
  PoissonProcess(SimDuration mean_interarrival, std::vector<double> app_weights);

  void Reset(uint64_t seed) override;
  bool Next(ArrivalPlanEntry* out) override;
  std::string Name() const override { return "poisson"; }

 private:
  SimDuration mean_interarrival_;
  std::vector<double> app_weights_;
  double total_weight_;
  Rng rng_{0};
  SimTime now_ = 0;
};

// A two-state on/off modulated Poisson process (the simplest MMPP): during an
// "on" phase arrivals are Poisson with `on_interarrival`; during an "off"
// phase no arrivals occur. Phase durations are exponential with the given
// means, so the process is Markov and fully seed-deterministic. Burstiness
// comes from concentrating the same average rate into the on fraction of
// time: overall mean rate = on_fraction / on_interarrival where
// on_fraction = mean_on / (mean_on + mean_off).
class OnOffProcess : public ArrivalProcess {
 public:
  struct Params {
    SimDuration on_interarrival = 0;  // mean inter-arrival inside a burst (> 0)
    SimDuration mean_on = 0;          // mean burst duration (> 0)
    SimDuration mean_off = 0;         // mean silence duration (> 0)
  };

  OnOffProcess(const Params& params, std::vector<double> app_weights);

  void Reset(uint64_t seed) override;
  bool Next(ArrivalPlanEntry* out) override;
  std::string Name() const override { return "onoff"; }

 private:
  Params params_;
  std::vector<double> app_weights_;
  double total_weight_;
  Rng rng_{0};
  SimTime now_ = 0;
  SimTime phase_end_ = 0;
  bool on_ = true;
};

// Deterministic replay of a recorded arrival stream. Reset() ignores the
// seed (a trace is its own randomness) and rewinds to the first entry.
class TraceArrivalProcess : public ArrivalProcess {
 public:
  // `entries` must be sorted by time; dies otherwise.
  explicit TraceArrivalProcess(std::vector<ArrivalPlanEntry> entries);

  void Reset(uint64_t seed) override;
  bool Next(ArrivalPlanEntry* out) override;
  std::string Name() const override { return "trace"; }

  size_t size() const { return entries_.size(); }

 private:
  std::vector<ArrivalPlanEntry> entries_;
  size_t next_ = 0;
};

// Parses an arrival trace in CSV form: one "t_seconds,app_index" pair per
// line; blank lines and '#' comments skipped; an optional header line is
// tolerated. Returns false with a line-numbered message in `error` on
// malformed input (negative time, out-of-order times, bad number).
bool ParseArrivalTraceCsv(const std::string& text, std::vector<ArrivalPlanEntry>* out,
                          std::string* error);

// Parses an arrival trace in JSONL form: one {"t_s": <seconds>, "app": <idx>}
// object per line (extra keys ignored; blank lines skipped). Same validation
// as the CSV parser.
bool ParseArrivalTraceJsonl(const std::string& text, std::vector<ArrivalPlanEntry>* out,
                            std::string* error);

// Loads a trace file, dispatching on extension: ".jsonl" -> JSONL, anything
// else -> CSV. Returns nullptr with a message in `error` on failure.
std::unique_ptr<TraceArrivalProcess> LoadArrivalTraceFile(const std::string& path,
                                                          std::string* error);

// Materializes a plan from `process` (which is Reset with `seed` first).
// Generation stops at whichever bound hits first: `max_count` entries
// (0 = no count bound), or the first arrival at or after `t_end`, which is
// discarded (t_end <= 0 = no horizon). At least one bound must be set unless
// the process is finite (a trace). The result is sorted by time.
std::vector<ArrivalPlanEntry> GenerateArrivals(ArrivalProcess& process, uint64_t seed,
                                               size_t max_count, SimTime t_end);

// Legacy count-based helper (formerly src/measure/arrivals.h): `count`
// Poisson arrivals. Routes through PoissonProcess.
std::vector<ArrivalPlanEntry> PoissonArrivals(size_t count, SimDuration mean_interarrival,
                                              const std::vector<double>& app_weights,
                                              uint64_t seed);

// Horizon-based variant: Poisson arrivals up to (excluding) `t_end`.
std::vector<ArrivalPlanEntry> PoissonArrivalsUntil(SimTime t_end, SimDuration mean_interarrival,
                                                   const std::vector<double>& app_weights,
                                                   uint64_t seed);

}  // namespace affsched

#endif  // SRC_OPENSYS_ARRIVAL_PROCESS_H_
