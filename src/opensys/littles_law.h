// Built-in Little's-law self-check for open-system runs.
//
// Over an observation window in which every job that entered also left,
// Little's law L = lambda * W is an exact identity: the time integral of the
// number-in-system equals the sum of sojourn times. The checker maintains
// both sides independently — the integral from enter/leave edges, the sum
// from per-job sojourns the accounting layer reports — so any disagreement
// beyond float rounding indicates an accounting bug (double-counted queue
// wait, a lost completion, a job charged to the wrong window), not a
// statistical fluke. The driver runs it over the full untrimmed window and
// fails a run whose relative error exceeds the configured tolerance.

#ifndef SRC_OPENSYS_LITTLES_LAW_H_
#define SRC_OPENSYS_LITTLES_LAW_H_

#include <cstddef>

#include "src/common/time.h"

namespace affsched {

struct LittlesLawResult {
  double mean_jobs_in_system = 0.0;  // L: time-average number in system
  double arrival_rate_per_s = 0.0;   // lambda: completed jobs per second
  double mean_sojourn_s = 0.0;       // W: mean sojourn of completed jobs
  double relative_error = 0.0;       // |L - lambda*W| / L (0 when L == 0)
  bool ok = false;                   // relative_error <= tolerance
};

class LittlesLawChecker {
 public:
  // A job enters the system (admitted into service or queued) at `t`.
  // Rejected arrivals never enter and must not be recorded.
  void OnEnter(SimTime t);

  // A job leaves at `t` with end-to-end sojourn `sojourn_s` (queue wait plus
  // in-service response).
  void OnLeave(SimTime t, double sojourn_s);

  size_t in_system() const { return in_system_; }
  size_t completed() const { return completed_; }

  // Evaluates both sides over [0, t_end]. Jobs still in the system at t_end
  // contribute to L but not to lambda*W, so call this only after the run
  // drains (the driver's Run() guarantees it).
  LittlesLawResult Result(SimTime t_end, double tolerance) const;

 private:
  void Advance(SimTime t);

  size_t in_system_ = 0;
  size_t completed_ = 0;
  double integral_job_s_ = 0.0;  // integral of n(t) dt, in job-seconds
  double sojourn_sum_s_ = 0.0;
  SimTime last_change_ = 0;
};

}  // namespace affsched

#endif  // SRC_OPENSYS_LITTLES_LAW_H_
