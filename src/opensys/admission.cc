#include "src/opensys/admission.h"

#include <sstream>

#include "src/common/check.h"

namespace affsched {

AdmissionVerdict UnboundedAdmission::OnArrival(size_t /*in_service*/, size_t /*queued*/) {
  return AdmissionVerdict::kAdmit;
}

bool UnboundedAdmission::CanAdmitQueued(size_t /*in_service*/) { return true; }

FixedMplAdmission::FixedMplAdmission(size_t cap) : cap_(cap) {
  AFF_CHECK_MSG(cap_ > 0, "MPL cap must be positive (use UnboundedAdmission for no cap)");
}

AdmissionVerdict FixedMplAdmission::OnArrival(size_t in_service, size_t /*queued*/) {
  return in_service < cap_ ? AdmissionVerdict::kAdmit : AdmissionVerdict::kQueue;
}

bool FixedMplAdmission::CanAdmitQueued(size_t in_service) { return in_service < cap_; }

std::string FixedMplAdmission::Name() const {
  std::ostringstream o;
  o << "mpl-" << cap_;
  return o.str();
}

LoadSheddingAdmission::LoadSheddingAdmission(size_t cap, size_t max_queue)
    : cap_(cap), max_queue_(max_queue) {
  AFF_CHECK_MSG(cap_ > 0, "MPL cap must be positive");
}

AdmissionVerdict LoadSheddingAdmission::OnArrival(size_t in_service, size_t queued) {
  if (in_service < cap_) {
    return AdmissionVerdict::kAdmit;
  }
  return queued < max_queue_ ? AdmissionVerdict::kQueue : AdmissionVerdict::kReject;
}

bool LoadSheddingAdmission::CanAdmitQueued(size_t in_service) { return in_service < cap_; }

std::string LoadSheddingAdmission::Name() const {
  std::ostringstream o;
  o << "shed-" << cap_ << "-q" << max_queue_;
  return o.str();
}

std::unique_ptr<AdmissionController> MakeAdmissionController(size_t mpl_cap, int64_t max_queue) {
  if (mpl_cap == 0) {
    return std::make_unique<UnboundedAdmission>();
  }
  if (max_queue < 0) {
    return std::make_unique<FixedMplAdmission>(mpl_cap);
  }
  return std::make_unique<LoadSheddingAdmission>(mpl_cap, static_cast<size_t>(max_queue));
}

}  // namespace affsched
