#include "src/stats/histogram.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "src/common/check.h"

namespace affsched {

WeightedHistogram::WeightedHistogram(size_t max_value) : buckets_(max_value + 1, 0.0) {}

void WeightedHistogram::Add(size_t value, double weight) {
  AFF_CHECK(weight >= 0.0);
  const size_t idx = std::min(value, buckets_.size() - 1);
  buckets_[idx] += weight;
}

double WeightedHistogram::TotalWeight() const {
  return std::accumulate(buckets_.begin(), buckets_.end(), 0.0);
}

double WeightedHistogram::Fraction(size_t value) const {
  const double total = TotalWeight();
  if (total <= 0.0 || value >= buckets_.size()) {
    return 0.0;
  }
  return buckets_[value] / total;
}

double WeightedHistogram::Mean() const {
  const double total = TotalWeight();
  if (total <= 0.0) {
    return 0.0;
  }
  double acc = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    acc += static_cast<double>(i) * buckets_[i];
  }
  return acc / total;
}

std::string WeightedHistogram::Render(const std::string& label) const {
  std::ostringstream out;
  out << label << "\n";
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double frac = Fraction(i);
    if (frac <= 0.0) {
      continue;
    }
    char line[128];
    std::snprintf(line, sizeof(line), "  parallelism %2zu: %5.1f%%  ", i, frac * 100.0);
    out << line;
    const int bar = static_cast<int>(frac * 60.0 + 0.5);
    for (int b = 0; b < bar; ++b) {
      out << '#';
    }
    out << "\n";
  }
  char mean_line[64];
  std::snprintf(mean_line, sizeof(mean_line), "  mean parallelism: %.2f\n", Mean());
  out << mean_line;
  return out.str();
}

}  // namespace affsched
