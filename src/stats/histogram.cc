#include "src/stats/histogram.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

#include "src/common/check.h"

namespace affsched {

WeightedHistogram::WeightedHistogram(size_t max_value) : buckets_(max_value + 1, 0.0) {}

void WeightedHistogram::Add(size_t value, double weight) {
  AFF_CHECK(weight >= 0.0);
  const size_t idx = std::min(value, buckets_.size() - 1);
  buckets_[idx] += weight;
}

double WeightedHistogram::TotalWeight() const {
  return std::accumulate(buckets_.begin(), buckets_.end(), 0.0);
}

double WeightedHistogram::Fraction(size_t value) const {
  const double total = TotalWeight();
  if (total <= 0.0 || value >= buckets_.size()) {
    return 0.0;
  }
  return buckets_[value] / total;
}

double WeightedHistogram::Mean() const {
  const double total = TotalWeight();
  if (total <= 0.0) {
    return 0.0;
  }
  double acc = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    acc += static_cast<double>(i) * buckets_[i];
  }
  return acc / total;
}

size_t WeightedHistogram::Quantile(double q) const {
  AFF_CHECK(q >= 0.0 && q <= 1.0);
  const double total = TotalWeight();
  if (total <= 0.0) {
    return 0;
  }
  const double target = q * total;
  double cum = 0.0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target && buckets_[i] > 0.0) {
      return i;
    }
  }
  // q == 1 with trailing rounding: the topmost nonzero bucket.
  for (size_t i = buckets_.size(); i-- > 0;) {
    if (buckets_[i] > 0.0) {
      return i;
    }
  }
  return 0;
}

std::string WeightedHistogram::Render(const std::string& label) const {
  std::ostringstream out;
  out << label << "\n";
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const double frac = Fraction(i);
    if (frac <= 0.0) {
      continue;
    }
    char line[128];
    std::snprintf(line, sizeof(line), "  parallelism %2zu: %5.1f%%  ", i, frac * 100.0);
    out << line;
    const int bar = static_cast<int>(frac * 60.0 + 0.5);
    for (int b = 0; b < bar; ++b) {
      out << '#';
    }
    out << "\n";
  }
  char mean_line[64];
  std::snprintf(mean_line, sizeof(mean_line), "  mean parallelism: %.2f\n", Mean());
  out << mean_line;
  return out.str();
}

ValueHistogram::ValueHistogram(double bucket_width) : width_(bucket_width) {
  AFF_CHECK(bucket_width > 0.0);
}

void ValueHistogram::Add(double value) {
  AFF_CHECK(value >= 0.0);
  const size_t bucket = static_cast<size_t>(value / width_);
  if (bucket >= buckets_.size()) {
    buckets_.resize(bucket + 1, 0);
  }
  ++buckets_[bucket];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double ValueHistogram::Min() const { return count_ > 0 ? min_ : 0.0; }

double ValueHistogram::Max() const { return count_ > 0 ? max_ : 0.0; }

double ValueHistogram::Mean() const {
  return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
}

double ValueHistogram::Quantile(double q) const {
  AFF_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) {
    return 0.0;
  }
  if (q <= 0.0) {
    return min_;
  }
  if (q >= 1.0) {
    return max_;
  }
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) {
      continue;
    }
    const double next = cum + static_cast<double>(buckets_[b]);
    if (next >= target) {
      // Interpolate within the bucket, mass uniform over its value range.
      const double inside = (target - cum) / static_cast<double>(buckets_[b]);
      const double value = (static_cast<double>(b) + inside) * width_;
      return std::min(std::max(value, min_), max_);
    }
    cum = next;
  }
  return max_;
}

}  // namespace affsched
