// Fairness metrics over per-job outcomes.
//
// The paper rejects Dyn-Aff-NoPri because its response times relative to
// Equipartition are "extremely variable" across jobs (Figure 6). These
// metrics quantify that variability: Jain's fairness index and the max/min
// spread.

#ifndef SRC_STATS_FAIRNESS_H_
#define SRC_STATS_FAIRNESS_H_

#include <vector>

namespace affsched {

// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1.0 = perfectly equal;
// 1/n = one job gets everything. Inputs must be non-negative; returns 1.0
// for empty input.
double JainFairnessIndex(const std::vector<double>& values);

// max(values) / min(values); +inf if min is 0; 1.0 for empty input.
double MaxMinRatio(const std::vector<double>& values);

// Population coefficient of variation (stddev / mean); 0 for empty input.
double CoefficientOfVariation(const std::vector<double>& values);

}  // namespace affsched

#endif  // SRC_STATS_FAIRNESS_H_
