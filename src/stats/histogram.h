// Fixed-bucket histogram, used to record parallelism profiles (Figures 2-4
// show "% of time spent at each level of physical parallelism").

#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace affsched {

// Accumulates weight (e.g. simulated time) per integer bucket [0, max_value].
class WeightedHistogram {
 public:
  explicit WeightedHistogram(size_t max_value);

  // Adds `weight` to `value`'s bucket; values above max clamp to the top.
  void Add(size_t value, double weight);

  double TotalWeight() const;

  // Fraction of total weight in the given bucket (0 if no weight recorded).
  double Fraction(size_t value) const;

  // Weighted mean bucket value.
  double Mean() const;

  size_t max_value() const { return buckets_.size() - 1; }

  // Renders "level: percent" lines for nonzero buckets, plus the mean —
  // the textual equivalent of the per-application bar charts in Figs. 2-4.
  std::string Render(const std::string& label) const;

 private:
  std::vector<double> buckets_;
};

}  // namespace affsched

#endif  // SRC_STATS_HISTOGRAM_H_
