// Quantile-capable histograms.
//
// WeightedHistogram records parallelism profiles (Figures 2-4 show "% of time
// spent at each level of physical parallelism"): integer buckets, arbitrary
// weights. ValueHistogram records latency-style continuous samples (the
// open-system sojourn and queue-wait distributions) in fixed-width buckets
// that grow on demand, and estimates arbitrary quantiles by linear
// interpolation within a bucket.

#ifndef SRC_STATS_HISTOGRAM_H_
#define SRC_STATS_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace affsched {

// Accumulates weight (e.g. simulated time) per integer bucket [0, max_value].
class WeightedHistogram {
 public:
  explicit WeightedHistogram(size_t max_value);

  // Adds `weight` to `value`'s bucket; values above max clamp to the top.
  void Add(size_t value, double weight);

  double TotalWeight() const;

  // Fraction of total weight in the given bucket (0 if no weight recorded).
  double Fraction(size_t value) const;

  // Weighted mean bucket value.
  double Mean() const;

  // Weighted nearest-rank quantile: the smallest bucket value whose
  // cumulative weight reaches q (in [0, 1]) of the total. Bucket values are
  // discrete levels, so no interpolation happens here. 0 if empty.
  size_t Quantile(double q) const;
  // Quantile with q given in percent (Percentile(95) == Quantile(0.95)).
  size_t Percentile(double p) const { return Quantile(p / 100.0); }

  size_t max_value() const { return buckets_.size() - 1; }

  // Renders "level: percent" lines for nonzero buckets, plus the mean —
  // the textual equivalent of the per-application bar charts in Figs. 2-4.
  std::string Render(const std::string& label) const;

 private:
  std::vector<double> buckets_;
};

// Histogram over non-negative continuous values (seconds of sojourn time):
// counts per fixed-width bucket, the bucket array growing as samples demand.
// Quantiles treat each bucket's mass as uniformly spread across the bucket's
// value range and interpolate linearly, then clamp into [Min(), Max()] so
// small samples stay exact at the extremes. Deterministic: identical sample
// sequences produce identical estimates on any platform.
class ValueHistogram {
 public:
  // `bucket_width` > 0, in the sampled unit (e.g. seconds).
  explicit ValueHistogram(double bucket_width);

  // Records one sample (>= 0).
  void Add(double value);

  size_t Count() const { return count_; }
  double Min() const;
  double Max() const;
  double Sum() const { return sum_; }
  double Mean() const;

  // Quantile estimate for q in [0, 1]: mass-interpolated within the bucket
  // where the cumulative count crosses q * Count(). Quantile(0) == Min(),
  // Quantile(1) == Max(). 0 if no samples recorded.
  double Quantile(double q) const;
  // Quantile with q given in percent (Percentile(99) == Quantile(0.99)).
  double Percentile(double p) const { return Quantile(p / 100.0); }

  double bucket_width() const { return width_; }
  size_t num_buckets() const { return buckets_.size(); }

 private:
  double width_;
  std::vector<size_t> buckets_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace affsched

#endif  // SRC_STATS_HISTOGRAM_H_
