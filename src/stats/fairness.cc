#include "src/stats/fairness.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace affsched {

double JainFairnessIndex(const std::vector<double>& values) {
  if (values.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : values) {
    AFF_CHECK(x >= 0.0);
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) {
    return 1.0;
  }
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

double MaxMinRatio(const std::vector<double>& values) {
  if (values.empty()) {
    return 1.0;
  }
  const auto [min_it, max_it] = std::minmax_element(values.begin(), values.end());
  if (*min_it <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  return *max_it / *min_it;
}

double CoefficientOfVariation(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double x : values) {
    sum += x;
  }
  const double mean = sum / static_cast<double>(values.size());
  if (mean == 0.0) {
    return 0.0;
  }
  double var = 0.0;
  for (double x : values) {
    var += (x - mean) * (x - mean);
  }
  var /= static_cast<double>(values.size());
  return std::sqrt(var) / mean;
}

}  // namespace affsched
