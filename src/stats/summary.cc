#include "src/stats/summary.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace affsched {

void Summary::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::ConfidenceHalfWidth(double level) const {
  if (count_ < 2) {
    return std::numeric_limits<double>::infinity();
  }
  const double t = StudentTCritical(count_ - 1, level);
  return t * stddev() / std::sqrt(static_cast<double>(count_));
}

namespace {

// Acklam's rational approximation to the standard normal inverse CDF.
double NormalInverseCdf(double p) {
  AFF_CHECK(p > 0.0 && p < 1.0);
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q;
  double r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p > phigh) {
    q = std::sqrt(-2 * std::log(1 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  q = p - 0.5;
  r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
}

}  // namespace

double StudentTCritical(size_t degrees_of_freedom, double level) {
  AFF_CHECK(degrees_of_freedom >= 1);
  AFF_CHECK(level > 0.0 && level < 1.0);
  const double p = 1.0 - (1.0 - level) / 2.0;
  const double z = NormalInverseCdf(p);
  const double n = static_cast<double>(degrees_of_freedom);
  // Cornish-Fisher style expansion of the t quantile in terms of the normal
  // quantile; good to a few 1e-4 for n >= 3 and adequate even for n = 1..2
  // given how we use it (stopping rules, not hypothesis tests).
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  double t = z + (z3 + z) / (4.0 * n) + (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * n * n) +
             (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) / (384.0 * n * n * n);
  // Exact small-df corrections for the common 95% case.
  if (level > 0.94 && level < 0.96) {
    if (degrees_of_freedom == 1) {
      t = 12.706;
    } else if (degrees_of_freedom == 2) {
      t = 4.303;
    }
  }
  return t;
}

ReplicationController::ReplicationController(double relative_precision, double level,
                                             size_t min_replications, size_t max_replications)
    : relative_precision_(relative_precision),
      level_(level),
      min_replications_(min_replications),
      max_replications_(max_replications) {
  AFF_CHECK(relative_precision_ > 0.0);
  AFF_CHECK(min_replications_ >= 2);
  AFF_CHECK(max_replications_ >= min_replications_);
}

void ReplicationController::Add(double x) { summary_.Add(x); }

bool ReplicationController::Done() const {
  if (summary_.count() < min_replications_) {
    return false;
  }
  if (summary_.count() >= max_replications_) {
    return true;
  }
  const double mean = summary_.mean();
  if (mean == 0.0) {
    return true;
  }
  return summary_.ConfidenceHalfWidth(level_) <= relative_precision_ * std::abs(mean);
}

}  // namespace affsched
