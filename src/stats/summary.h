// Online summary statistics and Student-t confidence intervals.
//
// The paper replicates each scheduling experiment until the 95% confidence
// interval of mean response time is within 1% of the point estimate; the
// ReplicationController below implements the same stopping rule.

#ifndef SRC_STATS_SUMMARY_H_
#define SRC_STATS_SUMMARY_H_

#include <cstddef>
#include <limits>

namespace affsched {

// Welford online accumulator for mean and variance.
class Summary {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  // Half-width of the confidence interval on the mean at the given confidence
  // level (supported levels: 0.90, 0.95, 0.99). Returns +inf with fewer than
  // two samples.
  double ConfidenceHalfWidth(double level = 0.95) const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Two-sided Student-t critical value for the given degrees of freedom and
// confidence level, via a rational approximation of the inverse CDF accurate
// to ~1e-4 — ample for replication stopping rules.
double StudentTCritical(size_t degrees_of_freedom, double level);

// Implements "replicate until the CI half-width is within `relative_precision`
// of the mean, at `level` confidence", with configurable minimum and maximum
// replication counts.
class ReplicationController {
 public:
  ReplicationController(double relative_precision, double level, size_t min_replications,
                        size_t max_replications);

  // Records one replication's observation.
  void Add(double x);

  // True once enough replications have been taken.
  bool Done() const;

  const Summary& summary() const { return summary_; }

 private:
  Summary summary_;
  double relative_precision_;
  double level_;
  size_t min_replications_;
  size_t max_replications_;
};

}  // namespace affsched

#endif  // SRC_STATS_SUMMARY_H_
