#include "src/apps/apps.h"

#include <algorithm>
#include <memory>

#include "src/common/check.h"

namespace affsched {

namespace {

// Draws a thread's work: normal around `mean` with the given coefficient of
// variation, truncated to stay positive.
SimDuration JitteredWork(Rng& rng, SimDuration mean, double cv) {
  if (cv <= 0.0) {
    return mean;
  }
  const double m = static_cast<double>(mean);
  const double draw = rng.NextNormal(m, cv * m);
  return static_cast<SimDuration>(std::max(0.05 * m, draw));
}

}  // namespace

AppProfile MakeMvaProfile(const MvaParams& params) {
  AFF_CHECK(params.grid >= 1);
  AppProfile profile;
  profile.name = "MVA";
  // Calibrated to Table 1: P^NA of 914/1267/2330 us at Q = 25/100/400 ms
  // implies ~1219/1689/3107 unique blocks touched per interval.
  // Raw working set 4500 blocks; the 2-way occupancy cap keeps ~3150
  // resident, matching the Table 1 fit.
  profile.working_set = WorkingSetParams{
      .blocks = 4500.0,
      .buildup_tau_s = 0.052,
      .steady_miss_per_s = 12'000.0,
      // Wavefront cells are written once and read by two successors.
      .shared_write_per_s = 1'000.0,
  };
  // Wavefront threads consume their predecessors' outputs: high reuse.
  profile.thread_overlap = 0.70;
  profile.max_parallelism = params.grid;
  profile.expected_work_s =
      ToSeconds(params.node_work) * static_cast<double>(params.grid * params.grid);
  profile.build_graph = [params](Rng& rng) {
    auto graph = std::make_unique<ThreadGraph>();
    const size_t n = params.grid;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        const size_t node = graph->AddNode(JitteredWork(rng, params.node_work, params.work_cv));
        AFF_CHECK(node == i * n + j);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        if (i + 1 < n) {
          graph->AddEdge(i * n + j, (i + 1) * n + j);
        }
        if (j + 1 < n) {
          graph->AddEdge(i * n + j, i * n + j + 1);
        }
      }
    }
    return graph;
  };
  return profile;
}

AppProfile MakeMatrixProfile(const MatrixParams& params) {
  AFF_CHECK(params.threads >= 1);
  AppProfile profile;
  profile.name = "MATRIX";
  // Blocked multiply: block size chosen so the working blocks fit the cache;
  // hit rates are very high, so the steady miss rate is small. Table 1 P^NA:
  // 882/1076/1679 us -> ~1176/1435/2239 blocks per interval.
  // Raw working set 2650 blocks -> ~2250 resident under the occupancy cap.
  profile.working_set = WorkingSetParams{
      .blocks = 2650.0,
      .buildup_tau_s = 0.035,
      .steady_miss_per_s = 2'000.0,
      // Output blocks are private to their thread; negligible sharing.
      .shared_write_per_s = 100.0,
  };
  // Each thread works on a different output block: little reuse across
  // threads.
  profile.thread_overlap = 0.15;
  profile.max_parallelism = params.threads;
  profile.expected_work_s = ToSeconds(params.thread_work) * static_cast<double>(params.threads);
  profile.build_graph = [params](Rng& rng) {
    auto graph = std::make_unique<ThreadGraph>();
    for (size_t t = 0; t < params.threads; ++t) {
      graph->AddNode(JitteredWork(rng, params.thread_work, params.work_cv));
    }
    return graph;
  };
  return profile;
}

AppProfile MakeGravityProfile(const GravityParams& params) {
  AFF_CHECK(params.timesteps >= 1);
  AFF_CHECK(params.phase_threads.size() == params.phase_work.size());
  AFF_CHECK(params.phase_threads.size() == params.phase_cv.size());
  AppProfile profile;
  profile.name = "GRAVITY";
  // Table 1 P^NA: 364/1576/2349 us -> ~485/2101/3132 blocks per interval:
  // slow buildup (tree walks) to a large working set.
  // Raw working set 5600 blocks -> ~3450 resident under the occupancy cap.
  profile.working_set = WorkingSetParams{
      .blocks = 5600.0,
      .buildup_tau_s = 0.125,
      .steady_miss_per_s = 20'000.0,
      // Body updates and tree mutation invalidate sibling caches.
      .shared_write_per_s = 2'000.0,
  };
  profile.thread_overlap = 0.40;
  size_t widest = 1;
  for (size_t c : params.phase_threads) {
    widest = std::max(widest, c);
  }
  profile.max_parallelism = widest;
  SimDuration step_work = params.sequential_work;
  for (SimDuration w : params.phase_work) {
    step_work += w;
  }
  profile.expected_work_s = ToSeconds(step_work) * static_cast<double>(params.timesteps);
  profile.build_graph = [params](Rng& rng) {
    auto graph = std::make_unique<ThreadGraph>();
    std::vector<size_t> previous_phase;  // nodes the next phase must wait on
    for (size_t step = 0; step < params.timesteps; ++step) {
      // Sequential phase (tree construction).
      const size_t seq = graph->AddNode(JitteredWork(rng, params.sequential_work, 0.05));
      for (size_t p : previous_phase) {
        graph->AddEdge(p, seq);
      }
      previous_phase.assign(1, seq);
      // Four parallel phases, each a barrier apart.
      for (size_t phase = 0; phase < params.phase_threads.size(); ++phase) {
        const size_t count = params.phase_threads[phase];
        const SimDuration per_thread =
            static_cast<SimDuration>(params.phase_work[phase] / static_cast<SimDuration>(count));
        std::vector<size_t> nodes;
        nodes.reserve(count);
        for (size_t t = 0; t < count; ++t) {
          const size_t node =
              graph->AddNode(JitteredWork(rng, per_thread, params.phase_cv[phase]));
          for (size_t p : previous_phase) {
            graph->AddEdge(p, node);
          }
          nodes.push_back(node);
        }
        previous_phase = std::move(nodes);
      }
    }
    return graph;
  };
  return profile;
}

std::vector<AppProfile> DefaultProfiles() {
  return {MakeMvaProfile(), MakeMatrixProfile(), MakeGravityProfile()};
}

AppProfile MakeSmallMvaProfile() {
  MvaParams params;
  params.grid = 6;
  params.node_work = Milliseconds(20);
  return MakeMvaProfile(params);
}

AppProfile MakeSmallMatrixProfile() {
  MatrixParams params;
  params.threads = 12;
  params.thread_work = Milliseconds(120);
  return MakeMatrixProfile(params);
}

AppProfile MakeSmallGravityProfile() {
  GravityParams params;
  params.timesteps = 2;
  params.sequential_work = Milliseconds(10);
  params.phase_threads = {8, 4, 4, 2};
  params.phase_work = {Milliseconds(400), Milliseconds(120), Milliseconds(100), Milliseconds(50)};
  params.phase_cv = {0.2, 0.1, 0.1, 0.45};
  return MakeGravityProfile(params);
}

}  // namespace affsched
