// The paper's three applications, reproduced as synthetic workload generators.
//
// Structure (Figures 2-4):
//   MVA     — dynamic programming; a wavefront over an N x N grid whose
//             parallelism slowly grows to N and then slowly shrinks.
//   MATRIX  — cache-blocked parallel matrix multiply; a large set of
//             independent threads (massive, constant parallelism) with a very
//             high cache hit rate thanks to blocking.
//   GRAVITY — Barnes-Hut N-body; repeated time steps of five phases (one
//             sequential, four parallel) separated by barrier
//             synchronisations, with per-thread times that vary (within some
//             phases, due to critical-section delays).
//
// Cache behaviour is calibrated against Table 1 of the paper: the number of
// unique blocks an application touches in a rescheduling interval Q is
// P^NA(Q) / 0.75 us, giving working-set size W and buildup constant theta per
// application (see DESIGN.md section 6).

#ifndef SRC_APPS_APPS_H_
#define SRC_APPS_APPS_H_

#include <vector>

#include "src/workload/app_profile.h"

namespace affsched {

struct MvaParams {
  // Wavefront grid side; parallelism ramps 1..grid..1.
  size_t grid = 16;
  // Useful work per thread (base-machine processor time).
  SimDuration node_work = Milliseconds(400);
  // Coefficient of variation of thread work.
  double work_cv = 0.15;
};

struct MatrixParams {
  // Number of independent block-product threads.
  size_t threads = 320;
  SimDuration thread_work = Milliseconds(2370);
  double work_cv = 0.02;
};

struct GravityParams {
  size_t timesteps = 30;
  // Sequential phase (tree build) per time step.
  SimDuration sequential_work = Milliseconds(150);
  // Thread counts of the four parallel phases of each time step.
  std::vector<size_t> phase_threads = {32, 16, 16, 8};
  // Total useful work of each parallel phase (split across its threads).
  std::vector<SimDuration> phase_work = {Seconds(8.0), Seconds(2.0), Seconds(1.6), Seconds(0.667)};
  // Per-phase coefficient of variation of thread time ("thread times depend on
  // synchronization delays for critical sections" in some phases).
  std::vector<double> phase_cv = {0.20, 0.10, 0.10, 0.45};
};

AppProfile MakeMvaProfile(const MvaParams& params = {});
AppProfile MakeMatrixProfile(const MatrixParams& params = {});
AppProfile MakeGravityProfile(const GravityParams& params = {});

// The three applications with paper-calibrated defaults, in the order
// {MVA, MATRIX, GRAVITY} used by the workload-mix tables.
std::vector<AppProfile> DefaultProfiles();

// Small variants (seconds of total work instead of hundreds) for unit and
// integration tests.
AppProfile MakeSmallMvaProfile();
AppProfile MakeSmallMatrixProfile();
AppProfile MakeSmallGravityProfile();

}  // namespace affsched

#endif  // SRC_APPS_APPS_H_
