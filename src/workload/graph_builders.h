// Reusable thread-dependence-graph builders.
//
// The paper's applications are instances of classic parallel structures:
// MVA is a wavefront, MATRIX a flat fork, GRAVITY a sequence of fork-join
// phases. These helpers build such structures (and a few more: chains,
// pipelines, trees) so new application profiles can be assembled from parts;
// src/apps uses the same shapes inline.
//
// All builders append to an existing ThreadGraph and return the new nodes'
// indices so structures can be composed (e.g. a chain of fork-joins).

#ifndef SRC_WORKLOAD_GRAPH_BUILDERS_H_
#define SRC_WORKLOAD_GRAPH_BUILDERS_H_

#include <functional>
#include <vector>

#include "src/workload/thread_graph.h"

namespace affsched {

// Produces the work for the i-th node of a structure.
using WorkFn = std::function<SimDuration(size_t index)>;

// A WorkFn returning the same duration for every node.
WorkFn ConstantWork(SimDuration work);

// `count` independent nodes (MATRIX's shape). Returns their indices.
std::vector<size_t> AddFork(ThreadGraph& graph, size_t count, const WorkFn& work);

// A serial chain of `count` nodes. Returns their indices in order.
std::vector<size_t> AddChain(ThreadGraph& graph, size_t count, const WorkFn& work);

// A full barrier: every node of `from` precedes every node of `to_count` new
// nodes (GRAVITY's phase boundary). Returns the new nodes.
std::vector<size_t> AddBarrierPhase(ThreadGraph& graph, const std::vector<size_t>& from,
                                    size_t to_count, const WorkFn& work);

// An n x m wavefront grid (MVA's shape): node (i,j) depends on (i-1,j) and
// (i,j-1). Returns all nodes in row-major order; work(index) is called with
// i * m + j.
std::vector<size_t> AddWavefront(ThreadGraph& graph, size_t n, size_t m, const WorkFn& work);

// A software pipeline: `stages` x `items` nodes where node (s, k) depends on
// (s-1, k) (same item, previous stage) and (s, k-1) (previous item, same
// stage — stages process items in order). Steady-state parallelism ~stages.
// Returns nodes in stage-major order.
std::vector<size_t> AddPipeline(ThreadGraph& graph, size_t stages, size_t items,
                                const WorkFn& work);

// A (top-down) complete binary reduction tree with `leaves` leaf nodes:
// leaves are independent; each internal node depends on its two children.
// Parallelism halves level by level — the mirror image of a fork.
// Returns the root's index via the last element.
std::vector<size_t> AddReductionTree(ThreadGraph& graph, size_t leaves, const WorkFn& work);

}  // namespace affsched

#endif  // SRC_WORKLOAD_GRAPH_BUILDERS_H_
