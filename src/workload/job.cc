#include "src/workload/job.h"

namespace affsched {

Job::Job(JobId id, const AppProfile& profile, std::unique_ptr<ThreadGraph> graph, SimTime arrival)
    : id_(id), profile_(profile), graph_(std::move(graph)) {
  AFF_CHECK(graph_ != nullptr);
  graph_->Start();
  for (size_t node : graph_->initial_ready()) {
    ready_.push_back(ThreadRef{.node = node, .remaining = graph_->work(node)});
  }
  stats_.arrival = arrival;
}

ThreadRef Job::PopReadyThread() {
  AFF_CHECK(!ready_.empty());
  ThreadRef t = ready_.front();
  ready_.pop_front();
  return t;
}

void Job::PushPreemptedThread(ThreadRef t) {
  AFF_CHECK(t.remaining > 0);
  ready_.push_front(t);
}

size_t Job::CompleteThread(size_t node) {
  const std::vector<size_t> newly_ready = graph_->Complete(node);
  for (size_t n : newly_ready) {
    ready_.push_back(ThreadRef{.node = n, .remaining = graph_->work(n)});
  }
  return newly_ready.size();
}

}  // namespace affsched
