// Worker tasks: the kernel-schedulable threads of execution that implement a
// job. Workers are what the allocator places on processors; each carries its
// cache identity (CacheOwner) and its affinity history (the last processor it
// ran on — the P=1 history of Section 5.3).

#ifndef SRC_WORKLOAD_WORKER_H_
#define SRC_WORKLOAD_WORKER_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "src/cache/exact_cache.h"
#include "src/workload/job.h"

namespace affsched {

inline constexpr size_t kNoProcessor = SIZE_MAX;

struct Worker {
  enum class State {
    kIdle,       // not placed on any processor
    kRunning,    // executing a thread on `processor`
    kHolding,    // placed on `processor` but with no thread to run
  };

  CacheOwner id = kNoOwner;  // globally unique; tags cache lines
  JobId job = kInvalidJobId;
  State state = State::kIdle;
  size_t processor = kNoProcessor;   // current placement (if not idle)
  std::optional<ThreadRef> current;  // thread being executed

  // Affinity history: the last P distinct processors this task ran on,
  // most-recent-first (Section 5.3; the paper evaluates P = 1).
  std::deque<size_t> processor_history;
  size_t history_depth = 1;

  size_t last_processor() const {
    return processor_history.empty() ? kNoProcessor : processor_history.front();
  }

  void RecordPlacement(size_t proc) {
    for (auto it = processor_history.begin(); it != processor_history.end(); ++it) {
      if (*it == proc) {
        processor_history.erase(it);
        break;
      }
    }
    processor_history.push_front(proc);
    while (processor_history.size() > history_depth) {
      processor_history.pop_back();
    }
  }

  // True if `proc` is in this task's affinity history. Statistics
  // (%affinity) always use the strongest form — the most recent processor —
  // so deeper histories do not inflate the Table 3 metric.
  bool HasAffinityFor(size_t proc) const {
    for (size_t p : processor_history) {
      if (p == proc) {
        return true;
      }
    }
    return false;
  }

  bool MostRecentProcessorIs(size_t proc) const { return last_processor() == proc; }
};

}  // namespace affsched

#endif  // SRC_WORKLOAD_WORKER_H_
