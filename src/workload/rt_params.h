// Real-time parameters attached to an application profile: the classic
// (period, relative deadline, WCET) triple of hard/soft real-time task
// models. A profile with deadline_s == 0 is an ordinary best-effort job and
// the whole rt layer stays inert for it — deadline accounting, the rt JSON
// blocks and the rt policies all key off Active().

#ifndef SRC_WORKLOAD_RT_PARAMS_H_
#define SRC_WORKLOAD_RT_PARAMS_H_

namespace affsched {

struct RtParams {
  // Activation period, seconds. Informational for the closed sweeps (every
  // job arrives once); the open driver uses it as the nominal inter-arrival
  // scale of the deadline mix.
  double period_s = 0.0;

  // Relative deadline, seconds after arrival. 0 disables the rt layer for
  // this profile.
  double deadline_s = 0.0;

  // Worst-case execution time estimate, seconds of critical-path work on an
  // interference-free machine. Static rt policies budget colors against it.
  double wcet_s = 0.0;

  // Hard deadlines are misses the sweep reports as failures; soft deadlines
  // additionally accumulate tardiness.
  bool hard = false;

  bool Active() const { return deadline_s > 0.0; }
};

}  // namespace affsched

#endif  // SRC_WORKLOAD_RT_PARAMS_H_
