// Application profile: everything the simulator needs to know about one
// application class — its cache behaviour and how to generate its thread
// dependence graph.

#ifndef SRC_WORKLOAD_APP_PROFILE_H_
#define SRC_WORKLOAD_APP_PROFILE_H_

#include <functional>
#include <memory>
#include <string>

#include "src/cache/footprint.h"
#include "src/common/rng.h"
#include "src/workload/rt_params.h"
#include "src/workload/thread_graph.h"

namespace affsched {

struct AppProfile {
  std::string name;

  // Per-worker cache behaviour.
  WorkingSetParams working_set;

  // Fraction of a worker's cache footprint still useful when it switches to
  // the next user-level thread of the same job. High for wavefront codes that
  // consume their predecessors' outputs (MVA); low when successive threads
  // work on disjoint data (MATRIX blocks); moderate for GRAVITY.
  double thread_overlap = 0.5;

  // Maximum number of processors the job can ever use (drives Equipartition's
  // allocation-number computation).
  size_t max_parallelism = 0;

  // Expected total useful work (processor-seconds) of one job instance, the
  // mean over the graph generator's jitter. The rt deadline mixes derive
  // per-app deadlines and WCET estimates from it; 0 when uncalibrated.
  double expected_work_s = 0.0;

  // Real-time parameters; inactive (deadline_s == 0) for best-effort jobs.
  RtParams rt;

  // Builds a fresh (randomised) thread dependence graph for one job instance.
  std::function<std::unique_ptr<ThreadGraph>(Rng&)> build_graph;
};

}  // namespace affsched

#endif  // SRC_WORKLOAD_APP_PROFILE_H_
