#include "src/workload/thread_graph.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace affsched {

size_t ThreadGraph::AddNode(SimDuration work) {
  AFF_CHECK(!started_);
  AFF_CHECK(work >= 0);
  nodes_.push_back(Node{.work = work, .dependents = {}, .indegree = 0, .done = false});
  return nodes_.size() - 1;
}

void ThreadGraph::AddEdge(size_t from, size_t to) {
  AFF_CHECK(!started_);
  AFF_CHECK(from < nodes_.size() && to < nodes_.size());
  AFF_CHECK(from != to);
  nodes_[from].dependents.push_back(to);
  ++nodes_[to].indegree;
}

void ThreadGraph::Start() {
  AFF_CHECK(!started_);
  started_ = true;
  remaining_ = nodes_.size();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].indegree == 0) {
      initial_ready_.push_back(i);
    }
  }
}

std::vector<size_t> ThreadGraph::Complete(size_t node) {
  AFF_CHECK(started_);
  AFF_CHECK(node < nodes_.size());
  Node& n = nodes_[node];
  AFF_CHECK_MSG(!n.done, "thread completed twice");
  n.done = true;
  AFF_CHECK(remaining_ > 0);
  --remaining_;
  std::vector<size_t> ready;
  for (size_t dep : n.dependents) {
    AFF_CHECK(nodes_[dep].indegree > 0);
    if (--nodes_[dep].indegree == 0) {
      ready.push_back(dep);
    }
  }
  return ready;
}

SimDuration ThreadGraph::work(size_t node) const {
  AFF_CHECK(node < nodes_.size());
  return nodes_[node].work;
}

SimDuration ThreadGraph::TotalWork() const {
  SimDuration total = 0;
  for (const Node& n : nodes_) {
    total += n.work;
  }
  return total;
}

std::vector<size_t> ThreadGraph::LevelWidths() const {
  // BFS levelisation: level(n) = 1 + max(level of predecessors).
  std::vector<size_t> level(nodes_.size(), 0);
  std::vector<size_t> indeg(nodes_.size());
  std::vector<size_t> queue;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    indeg[i] = nodes_[i].indegree + (nodes_[i].done ? 1 : 0);
  }
  // Recompute indegrees from scratch so this works before or after Start().
  std::fill(indeg.begin(), indeg.end(), 0);
  for (const Node& n : nodes_) {
    for (size_t dep : n.dependents) {
      ++indeg[dep];
    }
  }
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (indeg[i] == 0) {
      queue.push_back(i);
    }
  }
  size_t max_level = 0;
  for (size_t head = 0; head < queue.size(); ++head) {
    const size_t u = queue[head];
    for (size_t v : nodes_[u].dependents) {
      level[v] = std::max(level[v], level[u] + 1);
      if (--indeg[v] == 0) {
        queue.push_back(v);
      }
    }
    max_level = std::max(max_level, level[u]);
  }
  AFF_CHECK_MSG(queue.size() == nodes_.size(), "dependence graph has a cycle");
  std::vector<size_t> widths(max_level + 1, 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    ++widths[level[i]];
  }
  return widths;
}

}  // namespace affsched
