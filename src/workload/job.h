// A job: one running instance of an application, with its thread dependence
// graph state, ready queue, and response-time accounting.

#ifndef SRC_WORKLOAD_JOB_H_
#define SRC_WORKLOAD_JOB_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "src/common/check.h"
#include "src/common/time.h"
#include "src/workload/app_profile.h"
#include "src/workload/thread_graph.h"

namespace affsched {

using JobId = uint32_t;
inline constexpr JobId kInvalidJobId = UINT32_MAX;

// A schedulable piece of a user-level thread: the graph node plus the work
// still to do (threads may be preempted part-way and resumed later, possibly
// by a different worker).
struct ThreadRef {
  size_t node = 0;
  SimDuration remaining = 0;
};

// The components of job response time tracked by the simulator — the terms of
// the paper's equation (1), plus the raw material for equation (2).
struct JobStats {
  SimTime arrival = 0;
  SimTime completion = -1;

  // Time spent in the admission queue before entering service (open-system
  // runs; always 0 for closed runs, where jobs enter service at arrival).
  // Queue wait is *not* part of ResponseSeconds(): response time measures the
  // in-service portion, sojourn = queue_wait_s + ResponseSeconds().
  double queue_wait_s = 0.0;

  // Processor-seconds of useful computation executed (base-machine units).
  double useful_work_s = 0.0;
  // Seconds stalled on reload (affinity) misses — the cache penalty of
  // reallocation.
  double reload_stall_s = 0.0;
  // Seconds stalled on the application's own steady-state misses (folded into
  // `work` in the paper's model, tracked separately here).
  double steady_stall_s = 0.0;
  // Seconds of kernel reallocation path length charged to this job.
  double switch_s = 0.0;
  // Processor-seconds held while the job had no thread to run there.
  double waste_s = 0.0;
  // Integral of (processors held) over time, in processor-seconds.
  double alloc_integral_s = 0.0;

  // Task dispatches onto a processor the task was not already running on.
  uint64_t reallocations = 0;
  // Of those, dispatches where the task's last processor matched.
  uint64_t affinity_dispatches = 0;

  // Reallocations by migration distance tier (src/topology): how far from
  // its previous processor each dispatch landed. First placements (no
  // previous processor) count in `reallocations` only. On a flat machine
  // every move is "same_cluster" — the tiers only differentiate costs on
  // hierarchical topologies.
  uint64_t migrations_same_core = 0;
  uint64_t migrations_same_cluster = 0;
  uint64_t migrations_same_node = 0;
  uint64_t migrations_cross_node = 0;

  // Reload-cost attribution on hierarchical topologies: the portion of
  // reload_stall_s served by the cluster LLC vs fetched across the node
  // interconnect (both zero on flat machines).
  double reload_llc_s = 0.0;
  double reload_remote_s = 0.0;

  // Multi-queue (MQMS) policies only: times this job was pulled off another
  // processor's queue, by the distance tier the steal crossed, plus periodic
  // load-balance migrations. All zero under the centralized policies.
  uint64_t steals_same_cluster = 0;
  uint64_t steals_same_node = 0;
  uint64_t steals_cross_node = 0;
  uint64_t balance_migrations = 0;

  // Real-time accounting (deadline-bearing profiles only; see RtParams).
  // deadline_misses is 0 or 1 per run — a job misses its own deadline at most
  // once — but aggregates to a miss *rate* across replications. tardiness_s
  // is completion minus deadline when positive. worst_reload_s is the largest
  // single-chunk reload stall the job ever observed: the quantity cache
  // partitioning exists to bound.
  uint64_t deadline_misses = 0;
  double tardiness_s = 0.0;
  double worst_reload_s = 0.0;

  uint64_t TotalMigrations() const {
    return migrations_same_core + migrations_same_cluster + migrations_same_node +
           migrations_cross_node;
  }

  uint64_t TotalSteals() const {
    return steals_same_cluster + steals_same_node + steals_cross_node;
  }

  double ResponseSeconds() const {
    AFF_CHECK_MSG(completion >= 0, "job has not completed");
    return ToSeconds(completion - arrival);
  }

  // Queue wait plus in-service response: the open-system end-to-end latency.
  double SojournSeconds() const { return queue_wait_s + ResponseSeconds(); }

  double AverageAllocation() const {
    const double rt = ResponseSeconds();
    return rt > 0.0 ? alloc_integral_s / rt : 0.0;
  }

  double AffinityFraction() const {
    return reallocations > 0
               ? static_cast<double>(affinity_dispatches) / static_cast<double>(reallocations)
               : 0.0;
  }

  // Mean time between reallocations as seen by one processor (Table 3's
  // "Realloc. interval"): held processor-seconds divided by #reallocations.
  double ReallocationIntervalSeconds() const {
    return reallocations > 0 ? alloc_integral_s / static_cast<double>(reallocations) : 0.0;
  }
};

class Job {
 public:
  Job(JobId id, const AppProfile& profile, std::unique_ptr<ThreadGraph> graph, SimTime arrival);

  JobId id() const { return id_; }
  const std::string& name() const { return profile_.name; }
  const AppProfile& profile() const { return profile_; }
  size_t max_parallelism() const { return profile_.max_parallelism; }

  // --- Thread lifecycle -----------------------------------------------------

  bool HasReadyThread() const { return !ready_.empty(); }
  size_t ReadyCount() const { return ready_.size(); }

  // Pops the next thread to run (FIFO among fresh threads; preempted threads
  // resume first).
  ThreadRef PopReadyThread();

  // Returns a preempted thread to the front of the queue so it resumes before
  // fresh work (it still holds application state).
  void PushPreemptedThread(ThreadRef t);

  // Marks a thread complete; newly-enabled threads join the ready queue.
  // Returns how many became ready.
  size_t CompleteThread(size_t node);

  bool Finished() const { return graph_->Finished(); }

  const ThreadGraph& graph() const { return *graph_; }

  // --- Accounting -----------------------------------------------------------

  JobStats& stats() { return stats_; }
  const JobStats& stats() const { return stats_; }

 private:
  JobId id_;
  const AppProfile& profile_;
  std::unique_ptr<ThreadGraph> graph_;
  std::deque<ThreadRef> ready_;
  JobStats stats_;
};

}  // namespace affsched

#endif  // SRC_WORKLOAD_JOB_H_
