#include "src/workload/graph_builders.h"

#include "src/common/check.h"

namespace affsched {

WorkFn ConstantWork(SimDuration work) {
  return [work](size_t) { return work; };
}

std::vector<size_t> AddFork(ThreadGraph& graph, size_t count, const WorkFn& work) {
  AFF_CHECK(count > 0);
  std::vector<size_t> nodes;
  nodes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    nodes.push_back(graph.AddNode(work(i)));
  }
  return nodes;
}

std::vector<size_t> AddChain(ThreadGraph& graph, size_t count, const WorkFn& work) {
  AFF_CHECK(count > 0);
  std::vector<size_t> nodes;
  nodes.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const size_t node = graph.AddNode(work(i));
    if (i > 0) {
      graph.AddEdge(nodes.back(), node);
    }
    nodes.push_back(node);
  }
  return nodes;
}

std::vector<size_t> AddBarrierPhase(ThreadGraph& graph, const std::vector<size_t>& from,
                                    size_t to_count, const WorkFn& work) {
  AFF_CHECK(to_count > 0);
  std::vector<size_t> nodes;
  nodes.reserve(to_count);
  for (size_t i = 0; i < to_count; ++i) {
    const size_t node = graph.AddNode(work(i));
    for (size_t p : from) {
      graph.AddEdge(p, node);
    }
    nodes.push_back(node);
  }
  return nodes;
}

std::vector<size_t> AddWavefront(ThreadGraph& graph, size_t n, size_t m, const WorkFn& work) {
  AFF_CHECK(n > 0 && m > 0);
  std::vector<size_t> nodes;
  nodes.reserve(n * m);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      nodes.push_back(graph.AddNode(work(i * m + j)));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      if (i + 1 < n) {
        graph.AddEdge(nodes[i * m + j], nodes[(i + 1) * m + j]);
      }
      if (j + 1 < m) {
        graph.AddEdge(nodes[i * m + j], nodes[i * m + j + 1]);
      }
    }
  }
  return nodes;
}

std::vector<size_t> AddPipeline(ThreadGraph& graph, size_t stages, size_t items,
                                const WorkFn& work) {
  AFF_CHECK(stages > 0 && items > 0);
  std::vector<size_t> nodes;
  nodes.reserve(stages * items);
  for (size_t s = 0; s < stages; ++s) {
    for (size_t k = 0; k < items; ++k) {
      nodes.push_back(graph.AddNode(work(s * items + k)));
    }
  }
  for (size_t s = 0; s < stages; ++s) {
    for (size_t k = 0; k < items; ++k) {
      if (s + 1 < stages) {
        graph.AddEdge(nodes[s * items + k], nodes[(s + 1) * items + k]);
      }
      if (k + 1 < items) {
        graph.AddEdge(nodes[s * items + k], nodes[s * items + k + 1]);
      }
    }
  }
  return nodes;
}

std::vector<size_t> AddReductionTree(ThreadGraph& graph, size_t leaves, const WorkFn& work) {
  AFF_CHECK(leaves > 0);
  // Build level by level: leaves first, then parents over pairs.
  std::vector<size_t> all;
  std::vector<size_t> level;
  size_t index = 0;
  for (size_t i = 0; i < leaves; ++i) {
    level.push_back(graph.AddNode(work(index++)));
  }
  all.insert(all.end(), level.begin(), level.end());
  while (level.size() > 1) {
    std::vector<size_t> next;
    for (size_t i = 0; i < level.size(); i += 2) {
      const size_t parent = graph.AddNode(work(index++));
      graph.AddEdge(level[i], parent);
      if (i + 1 < level.size()) {
        graph.AddEdge(level[i + 1], parent);
      }
      next.push_back(parent);
    }
    all.insert(all.end(), next.begin(), next.end());
    level = std::move(next);
  }
  return all;
}

}  // namespace affsched
