// User-level thread dependence graphs.
//
// The paper's applications are structured as many user-level threads with
// precedence constraints (Figures 2-4 show each application's thread
// dependence graph), executed by a smaller number of kernel-schedulable
// worker tasks. ThreadGraph is both the static DAG and its runtime state
// (which nodes are complete, which are ready).

#ifndef SRC_WORKLOAD_THREAD_GRAPH_H_
#define SRC_WORKLOAD_THREAD_GRAPH_H_

#include <cstddef>
#include <vector>

#include "src/common/time.h"

namespace affsched {

class ThreadGraph {
 public:
  // Adds a node (user-level thread) with the given useful work, expressed in
  // base-machine processor time. Returns its index.
  size_t AddNode(SimDuration work);

  // Adds a precedence edge: `to` cannot start until `from` completes.
  // Must be called before Start().
  void AddEdge(size_t from, size_t to);

  // Freezes the graph and computes the initial ready set.
  void Start();

  // Indices of nodes ready at Start() time.
  const std::vector<size_t>& initial_ready() const { return initial_ready_; }

  // Marks `node` complete; returns the nodes that became ready.
  std::vector<size_t> Complete(size_t node);

  bool Finished() const { return remaining_ == 0; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t remaining() const { return remaining_; }

  SimDuration work(size_t node) const;
  SimDuration TotalWork() const;

  // Width of the graph if executed greedily on unlimited processors: returns,
  // for each discrete "level", the number of concurrently-runnable nodes.
  // Used to characterise application parallelism structure in tests.
  std::vector<size_t> LevelWidths() const;

 private:
  struct Node {
    SimDuration work = 0;
    std::vector<size_t> dependents;
    size_t indegree = 0;
    bool done = false;
  };

  bool started_ = false;
  size_t remaining_ = 0;
  std::vector<Node> nodes_;
  std::vector<size_t> initial_ready_;
};

}  // namespace affsched

#endif  // SRC_WORKLOAD_THREAD_GRAPH_H_
