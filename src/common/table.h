// ASCII table rendering for benchmark output.
//
// The benchmark binaries print the same rows the paper's tables report; this
// helper keeps their formatting consistent and readable.

#ifndef SRC_COMMON_TABLE_H_
#define SRC_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace affsched {

class TextTable {
 public:
  // Sets the header row. Column count is fixed by the header.
  void SetHeader(std::vector<std::string> header);

  // Appends a data row; must match the header's column count.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats each cell with %g / %s as appropriate.
  void AddRow(std::initializer_list<std::string> row);

  // Renders the table with column alignment and a separator under the header.
  std::string Render() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given precision (fixed notation).
std::string FormatDouble(double value, int precision = 2);

// Formats a percentage, e.g. 0.83 -> "83%".
std::string FormatPercent(double fraction, int precision = 0);

}  // namespace affsched

#endif  // SRC_COMMON_TABLE_H_
