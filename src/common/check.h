// Always-on assertion macros for invariant checking.
//
// Simulation correctness depends on internal invariants (allocation tables
// consistent, footprints within cache capacity, event times monotone). These
// are cheap relative to the simulation work, so they stay enabled in release
// builds.

#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace affsched {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace affsched

#define AFF_CHECK(expr)                                   \
  do {                                                    \
    if (!(expr)) {                                        \
      ::affsched::CheckFailed(__FILE__, __LINE__, #expr); \
    }                                                     \
  } while (0)

#define AFF_CHECK_MSG(expr, msg)                         \
  do {                                                   \
    if (!(expr)) {                                       \
      ::affsched::CheckFailed(__FILE__, __LINE__, msg);  \
    }                                                    \
  } while (0)

#endif  // SRC_COMMON_CHECK_H_
