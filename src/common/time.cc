#include "src/common/time.h"

#include <cmath>
#include <cstdio>

namespace affsched {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  const double abs_d = std::abs(static_cast<double>(d));
  if (abs_d >= static_cast<double>(kSecond)) {
    std::snprintf(buf, sizeof(buf), "%.3f s", ToSeconds(d));
  } else if (abs_d >= static_cast<double>(kMillisecond)) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ToMilliseconds(d));
  } else if (abs_d >= static_cast<double>(kMicrosecond)) {
    std::snprintf(buf, sizeof(buf), "%.3f us", ToMicroseconds(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace affsched
