// A small leveled logger for diagnostics that should be switchable at run
// time rather than compile time.
//
// The level comes from the AFFSCHED_LOG_LEVEL environment variable ("error",
// "warn", "info", "debug", or 0-3), read once on first use; tests and tools
// may override it with SetGlobalLogLevel(). Output goes to stderr with a
// "[affsched <level>]" prefix so it never contaminates the stdout tables and
// CSV the benches emit. Default level is warn: pre-abort diagnostics (engine
// state dumps) stay visible out of the box, while per-decision debug chatter
// costs one integer compare unless enabled.
//
// The destination is likewise switchable: set AFFSCHED_LOG_FILE to a path to
// append log lines there instead of stderr (opened once on first log call;
// falls back to stderr, with a warning, if the file cannot be opened). Tests
// and embedders may redirect programmatically with SetGlobalLogStream().

#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <cstdio>

namespace affsched {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

// Current level: messages at a level numerically above it are dropped.
LogLevel GlobalLogLevel();
void SetGlobalLogLevel(LogLevel level);

// Current log destination: the AFFSCHED_LOG_FILE path (opened append-mode on
// first use) or stderr. Never nullptr.
FILE* GlobalLogStream();
// Redirects log output; nullptr restores the default (AFFSCHED_LOG_FILE or
// stderr). The stream must stay valid across subsequent Logf calls; the
// logger never closes a stream installed this way.
void SetGlobalLogStream(FILE* stream);

inline bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(GlobalLogLevel());
}

// printf-style message to stderr, prefixed with the level; a newline is
// appended. No-op when the level is disabled.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void Logf(LogLevel level, const char* fmt, ...);

}  // namespace affsched

#endif  // SRC_COMMON_LOG_H_
