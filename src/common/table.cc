#include "src/common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/check.h"

namespace affsched {

void TextTable::SetHeader(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::AddRow(std::vector<std::string> row) {
  AFF_CHECK(header_.empty() || row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::AddRow(std::initializer_list<std::string> row) {
  AddRow(std::vector<std::string>(row));
}

std::string TextTable::Render() const {
  const size_t cols = header_.empty() ? (rows_.empty() ? 0 : rows_[0].size()) : header_.size();
  std::vector<size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size() && c < cols; ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  if (!header_.empty()) {
    widen(header_);
  }
  for (const auto& row : rows_) {
    widen(row);
  }

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << cell;
      if (c + 1 < cols) {
        out << std::string(width[c] - cell.size() + 2, ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t c = 0; c < cols; ++c) {
      total += width[c] + (c + 1 < cols ? 2 : 0);
    }
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace affsched
