#include "src/common/flags.h"

#include <cstdlib>
#include <sstream>

#include "src/common/check.h"

namespace affsched {

FlagSet::FlagSet(std::string program_description) : description_(std::move(program_description)) {}

void FlagSet::AddInt(const std::string& name, int64_t default_value, const std::string& help) {
  const std::string text = std::to_string(default_value);
  flags_[name] = Flag{Type::kInt, help, text, text};
}

void FlagSet::AddDouble(const std::string& name, double default_value, const std::string& help) {
  std::ostringstream out;
  out << default_value;
  flags_[name] = Flag{Type::kDouble, help, out.str(), out.str()};
}

void FlagSet::AddBool(const std::string& name, bool default_value, const std::string& help) {
  const std::string text = default_value ? "true" : "false";
  flags_[name] = Flag{Type::kBool, help, text, text};
}

void FlagSet::AddString(const std::string& name, const std::string& default_value,
                        const std::string& help) {
  flags_[name] = Flag{Type::kString, help, default_value, default_value};
}

bool FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    error_ = "unknown flag --" + name;
    return false;
  }
  Flag& flag = it->second;
  char* end = nullptr;
  switch (flag.type) {
    case Type::kInt: {
      (void)std::strtoll(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0') {
        error_ = "flag --" + name + " expects an integer, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::kDouble: {
      (void)std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0') {
        error_ = "flag --" + name + " expects a number, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::kBool: {
      if (value != "true" && value != "false" && value != "1" && value != "0") {
        error_ = "flag --" + name + " expects true/false, got '" + value + "'";
        return false;
      }
      break;
    }
    case Type::kString:
      break;
  }
  flag.value = value;
  return true;
}

bool FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument '" + arg + "'";
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
    } else {
      auto it = flags_.find(arg);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        value = "true";  // bare boolean
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        error_ = "flag --" + arg + " is missing a value";
        return false;
      }
    }
    if (!SetValue(arg, value)) {
      return false;
    }
  }
  return true;
}

const FlagSet::Flag& FlagSet::Lookup(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  AFF_CHECK_MSG(it != flags_.end(), "flag was never registered");
  AFF_CHECK_MSG(it->second.type == type, "flag accessed with wrong type");
  return it->second;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return std::strtoll(Lookup(name, Type::kInt).value.c_str(), nullptr, 10);
}

double FlagSet::GetDouble(const std::string& name) const {
  return std::strtod(Lookup(name, Type::kDouble).value.c_str(), nullptr);
}

bool FlagSet::GetBool(const std::string& name) const {
  const std::string& v = Lookup(name, Type::kBool).value;
  return v == "true" || v == "1";
}

const std::string& FlagSet::GetString(const std::string& name) const {
  return Lookup(name, Type::kString).value;
}

std::string FlagSet::Help() const {
  std::ostringstream out;
  out << description_ << "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    out << "  --" << name << " (default: " << flag.default_value << ")\n      " << flag.help
        << "\n";
  }
  out << "  --help\n      show this message\n";
  return out.str();
}

}  // namespace affsched
