#include "src/common/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace affsched {

namespace {

LogLevel ParseLevel(const char* text, LogLevel fallback) {
  if (text == nullptr || *text == '\0') {
    return fallback;
  }
  if (std::strcmp(text, "error") == 0 || std::strcmp(text, "0") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(text, "warn") == 0 || std::strcmp(text, "1") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(text, "info") == 0 || std::strcmp(text, "2") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(text, "debug") == 0 || std::strcmp(text, "3") == 0) {
    return LogLevel::kDebug;
  }
  return fallback;
}

LogLevel& MutableLevel() {
  static LogLevel level = ParseLevel(std::getenv("AFFSCHED_LOG_LEVEL"), LogLevel::kWarn);
  return level;
}

// Default destination, resolved once: AFFSCHED_LOG_FILE (append) or stderr.
// The file handle lives for the process — logs may be written from atexit
// handlers, so it is deliberately never closed.
FILE* DefaultLogStream() {
  static FILE* stream = [] {
    const char* path = std::getenv("AFFSCHED_LOG_FILE");
    if (path == nullptr || *path == '\0') {
      return stderr;
    }
    FILE* f = std::fopen(path, "a");
    if (f == nullptr) {
      std::fprintf(stderr, "[affsched warn] cannot open AFFSCHED_LOG_FILE '%s'; using stderr\n",
                   path);
      return stderr;
    }
    return f;
  }();
  return stream;
}

FILE*& MutableStream() {
  static FILE* stream = nullptr;  // nullptr = use DefaultLogStream()
  return stream;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "?";
}

}  // namespace

LogLevel GlobalLogLevel() { return MutableLevel(); }

void SetGlobalLogLevel(LogLevel level) { MutableLevel() = level; }

FILE* GlobalLogStream() {
  FILE* stream = MutableStream();
  return stream != nullptr ? stream : DefaultLogStream();
}

void SetGlobalLogStream(FILE* stream) { MutableStream() = stream; }

void Logf(LogLevel level, const char* fmt, ...) {
  if (!LogEnabled(level)) {
    return;
  }
  FILE* out = GlobalLogStream();
  std::fprintf(out, "[affsched %s] ", LevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(out, fmt, args);
  va_end(args);
  std::fputc('\n', out);
  if (out != stderr) {
    std::fflush(out);  // file logs should be tail-able mid-run
  }
}

}  // namespace affsched
