#include "src/common/log.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace affsched {

namespace {

LogLevel ParseLevel(const char* text, LogLevel fallback) {
  if (text == nullptr || *text == '\0') {
    return fallback;
  }
  if (std::strcmp(text, "error") == 0 || std::strcmp(text, "0") == 0) {
    return LogLevel::kError;
  }
  if (std::strcmp(text, "warn") == 0 || std::strcmp(text, "1") == 0) {
    return LogLevel::kWarn;
  }
  if (std::strcmp(text, "info") == 0 || std::strcmp(text, "2") == 0) {
    return LogLevel::kInfo;
  }
  if (std::strcmp(text, "debug") == 0 || std::strcmp(text, "3") == 0) {
    return LogLevel::kDebug;
  }
  return fallback;
}

LogLevel& MutableLevel() {
  static LogLevel level = ParseLevel(std::getenv("AFFSCHED_LOG_LEVEL"), LogLevel::kWarn);
  return level;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "error";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kDebug:
      return "debug";
  }
  return "?";
}

}  // namespace

LogLevel GlobalLogLevel() { return MutableLevel(); }

void SetGlobalLogLevel(LogLevel level) { MutableLevel() = level; }

void Logf(LogLevel level, const char* fmt, ...) {
  if (!LogEnabled(level)) {
    return;
  }
  std::fprintf(stderr, "[affsched %s] ", LevelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace affsched
