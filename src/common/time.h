// Simulated-time types and conversions.
//
// All simulation time is kept in integer nanoseconds so that event ordering is
// exact and runs are bit-for-bit reproducible. Helpers convert to and from the
// units the paper uses (microseconds for cache penalties, milliseconds for
// quanta, seconds for response times).

#ifndef SRC_COMMON_TIME_H_
#define SRC_COMMON_TIME_H_

#include <cstdint>
#include <string>

namespace affsched {

// A point in simulated time, in nanoseconds since simulation start.
using SimTime = int64_t;

// A length of simulated time, in nanoseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

inline constexpr SimTime kTimeInfinite = INT64_MAX;

constexpr SimDuration Microseconds(double us) {
  return static_cast<SimDuration>(us * static_cast<double>(kMicrosecond));
}

constexpr SimDuration Milliseconds(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

constexpr SimDuration Seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

constexpr double ToMicroseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

constexpr double ToMilliseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

// Renders a duration with an adaptive unit, e.g. "750 us", "3.07 ms", "51.4 s".
std::string FormatDuration(SimDuration d);

}  // namespace affsched

#endif  // SRC_COMMON_TIME_H_
