#include "src/common/rng.h"

#include <cmath>

#include "src/common/check.h"

namespace affsched {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  AFF_CHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  // 53 random bits into [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::NextExponential(double mean) {
  AFF_CHECK(mean > 0.0);
  double u = NextDouble();
  // Avoid log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::NextNormal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u;
  double v;
  double s;
  do {
    u = NextUniform(-1.0, 1.0);
    v = NextUniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return mean + stddev * u * factor;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace affsched
