// Deterministic pseudo-random number generation for the simulator.
//
// We avoid <random> engines in the hot path both for speed and so that results
// are identical across standard library implementations. The generator is
// xoshiro256** seeded via SplitMix64; distributions are implemented directly.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace affsched {

// SplitMix64 step, used for seeding and for cheap stateless hashing.
uint64_t SplitMix64(uint64_t& state);

// xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm),
// reimplemented here. Passes BigCrush; period 2^256 - 1.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform on [0, 2^64).
  uint64_t NextU64();

  // Uniform on [0, bound) without modulo bias (Lemire's method).
  uint64_t NextBounded(uint64_t bound);

  // Uniform on [0, 1).
  double NextDouble();

  // Uniform on [lo, hi).
  double NextUniform(double lo, double hi);

  // Exponential with the given mean (> 0).
  double NextExponential(double mean);

  // Standard normal via Marsaglia polar method.
  double NextNormal(double mean, double stddev);

  // True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  // Creates an independent stream: useful for giving each job its own RNG so
  // that policy choice does not perturb the workload's random draws.
  Rng Split();

 private:
  uint64_t s_[4];
  // Cached second value from the polar method.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace affsched

#endif  // SRC_COMMON_RNG_H_
