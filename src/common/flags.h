// Minimal command-line flag parsing for the benchmark and example binaries.
//
// Supports "--name=value", "--name value", bare boolean "--name", and "--help"
// generation. Unknown flags are errors (typos should not silently run the
// wrong experiment).

#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace affsched {

class FlagSet {
 public:
  explicit FlagSet(std::string program_description);

  // Registers flags with defaults. `help` appears in --help output.
  void AddInt(const std::string& name, int64_t default_value, const std::string& help);
  void AddDouble(const std::string& name, double default_value, const std::string& help);
  void AddBool(const std::string& name, bool default_value, const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);

  // Parses argv. Returns false (after printing a message) on --help or on a
  // parse error; callers should exit(0) / exit(1) respectively via the
  // `help_requested` distinction.
  bool Parse(int argc, const char* const* argv);
  bool help_requested() const { return help_requested_; }
  const std::string& error() const { return error_; }

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  // Rendered --help text.
  std::string Help() const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    Type type;
    std::string help;
    std::string value;    // current (parsed or default), textual
    std::string default_value;
  };

  const Flag& Lookup(const std::string& name, Type type) const;
  bool SetValue(const std::string& name, const std::string& value);

  std::string description_;
  std::map<std::string, Flag> flags_;
  bool help_requested_ = false;
  std::string error_;
};

}  // namespace affsched

#endif  // SRC_COMMON_FLAGS_H_
