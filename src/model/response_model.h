// The paper's analytic response-time model.
//
// Equation (1) (Figure 1):
//   RT = [ work + waste + #reallocations x (reallocation-time + cache-penalty) ]
//        / average-allocation
// Equation (2):
//   cache-penalty = %affinity x P^A + %no-affinity x P^NA
//
// Extended for future machines (Figure 7): computation scales linearly with
// processor speed, miss service only as sqrt(speed); larger caches preserve
// more of a returning task's context (P^A / cache-size) but also let tasks
// dirty more of the cache (P^NA x sqrt(cache-size)):
//   RT = [ (work + waste)/speed
//          + #reallocations x ( realloc-time/speed + penalty_future/sqrt(speed) ) ]
//        / average-allocation
//   penalty_future = %affinity x P^A / cache-size
//                  + %no-affinity x P^NA x sqrt(cache-size)

#ifndef SRC_MODEL_RESPONSE_MODEL_H_
#define SRC_MODEL_RESPONSE_MODEL_H_

#include "src/common/time.h"
#include "src/workload/job.h"

namespace affsched {

struct ModelParams {
  // Processor-seconds of useful work, including contention effects (the
  // paper folds bus contention and synchronisation into `work`).
  double work_s = 0.0;
  // Processor-seconds spent holding processors with nothing to run.
  double waste_s = 0.0;
  // Number of processor reallocations the job experienced.
  double reallocations = 0.0;
  // Kernel path length per reallocation, seconds (750 us on the Symmetry).
  double realloc_time_s = 750e-6;
  // Fraction of reallocations that resumed a task where it has affinity.
  double pct_affinity = 0.0;
  // Per-switch cache penalties, seconds (Table 1 / Section 4 harness).
  double pa_s = 0.0;
  double pna_s = 0.0;
  // Average number of processors the policy provided over the job's life.
  double average_allocation = 1.0;
};

// Equation (2).
double CachePenaltySeconds(const ModelParams& p);

// Equation (1): predicted response time on the base (current) machine.
double ModelResponseTime(const ModelParams& p);

// Figure 7: predicted response time on a machine `processor_speed` times
// faster with `cache_size` times larger caches.
double FutureResponseTime(const ModelParams& p, double processor_speed, double cache_size);

// Builds model parameters from a simulated job's statistics plus externally
// measured per-switch penalties (microseconds, as Table 1 reports them).
ModelParams ExtractModelParams(const JobStats& stats, double pa_us, double pna_us,
                               SimDuration realloc_time = Microseconds(750));

}  // namespace affsched

#endif  // SRC_MODEL_RESPONSE_MODEL_H_
