#include "src/model/future_sweep.h"

#include <cmath>

#include "src/common/check.h"

namespace affsched {

PenaltyTable PaperPenaltyTable() {
  PenaltyTable table;
  // Table 1, Q = 400 ms. P^A uses the self-interference column (MAT vs MAT,
  // MVA vs MVA, GRAV vs GRAV).
  table.pna_us = {{"MATRIX", 1679.0}, {"MVA", 2330.0}, {"GRAVITY", 2349.0}};
  table.pa_us = {{"MATRIX", 737.0}, {"MVA", 1061.0}, {"GRAVITY", 1719.0}};
  return table;
}

namespace {

double LookupOrDie(const std::map<std::string, double>& table, const std::string& key) {
  auto it = table.find(key);
  AFF_CHECK_MSG(it != table.end(), "application missing from penalty table");
  return it->second;
}

}  // namespace

FutureSweepResult FutureSweepFromRuns(
    const ReplicatedResult& equi,
    const std::vector<std::pair<PolicyKind, const ReplicatedResult*>>& runs,
    const PenaltyTable& penalties, const FutureSweepOptions& options) {
  const size_t num_jobs = equi.app.size();
  AFF_CHECK(num_jobs > 0);
  std::vector<ModelParams> equi_params;
  for (size_t j = 0; j < num_jobs; ++j) {
    equi_params.push_back(ExtractModelParams(equi.mean_stats[j],
                                             LookupOrDie(penalties.pa_us, equi.app[j]),
                                             LookupOrDie(penalties.pna_us, equi.app[j])));
  }

  FutureSweepResult result;
  result.products = options.products;

  for (const auto& [policy, run_ptr] : runs) {
    const ReplicatedResult& run = *run_ptr;
    AFF_CHECK(run.app.size() == num_jobs);
    for (size_t j = 0; j < num_jobs; ++j) {
      const ModelParams params = ExtractModelParams(run.mean_stats[j],
                                                    LookupOrDie(penalties.pa_us, run.app[j]),
                                                    LookupOrDie(penalties.pna_us, run.app[j]));
      FutureCurve curve;
      curve.policy = policy;
      curve.app = run.app[j];
      curve.job_index = j;
      for (double product : options.products) {
        const double speed = std::pow(product, options.speed_exponent);
        const double cache = std::pow(product, 1.0 - options.speed_exponent);
        const double rt = FutureResponseTime(params, speed, cache);
        const double rt_equi = FutureResponseTime(equi_params[j], speed, cache);
        AFF_CHECK(rt_equi > 0.0);
        curve.relative_rt.push_back(rt / rt_equi);
      }
      result.curves.push_back(std::move(curve));
    }
  }
  return result;
}

FutureSweepResult SweepFutureMachines(const MachineConfig& machine, const WorkloadMix& mix,
                                      const std::vector<AppProfile>& apps,
                                      const PenaltyTable& penalties, uint64_t seed,
                                      const FutureSweepOptions& options) {
  const std::vector<AppProfile> jobs = mix.Expand(apps);
  AFF_CHECK(!jobs.empty());

  // Current-technology runs: Equipartition plus each candidate policy.
  const ReplicatedResult equi = RunReplicated(machine, PolicyKind::kEquipartition, jobs, seed,
                                              options.replication);
  std::vector<ReplicatedResult> policy_runs;
  policy_runs.reserve(options.policies.size());
  for (PolicyKind policy : options.policies) {
    policy_runs.push_back(RunReplicated(machine, policy, jobs, seed, options.replication));
  }
  std::vector<std::pair<PolicyKind, const ReplicatedResult*>> runs;
  for (size_t i = 0; i < options.policies.size(); ++i) {
    runs.emplace_back(options.policies[i], &policy_runs[i]);
  }
  return FutureSweepFromRuns(equi, runs, penalties, options);
}

}  // namespace affsched
