// The Section 7.2 side analysis: a two-level cache hierarchy over a single
// central memory.
//
// The paper: "To gauge the amount by which hit rates must be increased, we
// analyzed a simple model consisting of two levels of cache memory and a
// single central memory. We found that because multiprocessor hit rates may
// already be expected to be quite high, there was little room for
// improvement: hit rates could not be increased enough to obviate the need
// for faster miss resolution. For this reason, the model assumes that
// (effective) memory speed must increase as sqrt(processor-speed)."
//
// This module reproduces that analysis: given a hierarchy's hit rates and
// access times, it computes the effective access time, and — for a processor
// `speed` times faster — the factor by which the memory subsystem (L2 +
// central memory) must accelerate so the processor stays fully utilised,
// under an assumed bound on how much of the miss traffic better caching can
// remove.

#ifndef SRC_MODEL_MEMORY_HIERARCHY_H_
#define SRC_MODEL_MEMORY_HIERARCHY_H_

namespace affsched {

struct HierarchyParams {
  // Hit probability in the first-level cache.
  double l1_hit = 0.95;
  // Hit probability in the second-level cache, given an L1 miss.
  double l2_hit = 0.80;
  // Access times, seconds. Defaults model a 16 MHz-era hierarchy: 1-cycle L1,
  // ~200 ns L2, 750 ns central memory (the Symmetry's block fill).
  double l1_time_s = 62.5e-9;
  double l2_time_s = 200e-9;
  double memory_time_s = 750e-9;
};

// Mean time per reference through the hierarchy.
double EffectiveAccessTime(const HierarchyParams& params);

// The portion of the effective access time spent below L1 (the "miss
// resolution" component the memory subsystem controls).
double MissComponent(const HierarchyParams& params);

// Factor by which the below-L1 subsystem must speed up so that a processor
// `speed` times faster (L1 keeps pace with the core: l1_time/speed) achieves
// effective access time EAT/speed — i.e. the processor is not memory-bound —
// assuming better caching can remove at most `miss_reduction` (in [0,1)) of
// the L1 miss traffic. Returns +infinity if no finite speedup suffices.
double RequiredMemorySpeedup(const HierarchyParams& params, double speed, double miss_reduction);

// Miss-traffic reduction (fraction of L1 misses removed) that would be needed
// to avoid speeding memory up at all, i.e. solving
// RequiredMemorySpeedup(..., r) == 1. The paper's Section 7.2 finding is that
// this value is implausibly large for realistic hierarchies: already-high hit
// rates leave "little room for improvement" — e.g. a 16x processor needs
// ~95% of remaining misses removed, a 20x cut in miss rate.
double MissReductionToAvoidFasterMemory(const HierarchyParams& params, double speed);

}  // namespace affsched

#endif  // SRC_MODEL_MEMORY_HIERARCHY_H_
