// Crossover analysis for the future-machine model.
//
// Figures 8-13 show relative response-time curves; the paper's reading of
// them is that where a dynamic policy's curve crosses Equipartition's, "the
// crossover point is quite far in the future". This module computes that
// point exactly: the speed x cache product at which a policy's predicted
// response time first exceeds Equipartition's.

#ifndef SRC_MODEL_CROSSOVER_H_
#define SRC_MODEL_CROSSOVER_H_

#include "src/model/response_model.h"

namespace affsched {

// Relative response time (policy / equipartition) at the given speed x cache
// product, splitting the product evenly between the two factors (the paper
// observed results depend essentially only on the product).
double RelativeResponseAtProduct(const ModelParams& policy, const ModelParams& equipartition,
                                 double product);

// Smallest product in [1, max_product] at which the policy's predicted
// response time reaches Equipartition's (relative RT >= 1), found by
// bisection on the (monotone in practice) relative-RT curve. Returns a
// negative value if no crossover occurs up to max_product — the policy stays
// ahead for the whole horizon.
double CrossoverProduct(const ModelParams& policy, const ModelParams& equipartition,
                        double max_product = 1e9);

}  // namespace affsched

#endif  // SRC_MODEL_CROSSOVER_H_
