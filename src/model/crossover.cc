#include "src/model/crossover.h"

#include <cmath>

#include "src/common/check.h"

namespace affsched {

double RelativeResponseAtProduct(const ModelParams& policy, const ModelParams& equipartition,
                                 double product) {
  AFF_CHECK(product >= 1.0);
  const double factor = std::sqrt(product);
  const double rt = FutureResponseTime(policy, factor, factor);
  const double rt_equi = FutureResponseTime(equipartition, factor, factor);
  AFF_CHECK(rt_equi > 0.0);
  return rt / rt_equi;
}

double CrossoverProduct(const ModelParams& policy, const ModelParams& equipartition,
                        double max_product) {
  AFF_CHECK(max_product >= 1.0);
  if (RelativeResponseAtProduct(policy, equipartition, 1.0) >= 1.0) {
    return 1.0;  // already behind on current technology
  }
  if (RelativeResponseAtProduct(policy, equipartition, max_product) < 1.0) {
    return -1.0;  // no crossover within the horizon
  }
  double lo = 1.0;
  double hi = max_product;
  for (int iter = 0; iter < 80 && hi / lo > 1.0001; ++iter) {
    const double mid = std::sqrt(lo * hi);  // bisect in log space
    if (RelativeResponseAtProduct(policy, equipartition, mid) >= 1.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

}  // namespace affsched
