#include "src/model/memory_hierarchy.h"

#include <limits>

#include "src/common/check.h"

namespace affsched {

namespace {

void ValidateParams(const HierarchyParams& p) {
  AFF_CHECK(p.l1_hit >= 0.0 && p.l1_hit <= 1.0);
  AFF_CHECK(p.l2_hit >= 0.0 && p.l2_hit <= 1.0);
  AFF_CHECK(p.l1_time_s > 0.0);
  AFF_CHECK(p.l2_time_s >= 0.0);
  AFF_CHECK(p.memory_time_s >= 0.0);
}

}  // namespace

double MissComponent(const HierarchyParams& p) {
  ValidateParams(p);
  const double below_l1 = p.l2_hit * p.l2_time_s + (1.0 - p.l2_hit) * p.memory_time_s;
  return (1.0 - p.l1_hit) * below_l1;
}

double EffectiveAccessTime(const HierarchyParams& p) {
  ValidateParams(p);
  return p.l1_hit * p.l1_time_s + MissComponent(p);
}

double RequiredMemorySpeedup(const HierarchyParams& p, double speed, double miss_reduction) {
  ValidateParams(p);
  AFF_CHECK(speed >= 1.0);
  AFF_CHECK(miss_reduction >= 0.0 && miss_reduction < 1.0);
  // Target: the whole hierarchy must be `speed` times faster on average.
  const double target = EffectiveAccessTime(p) / speed;
  // L1 scales with the core. Hits stay hits; the improved cache removes
  // `miss_reduction` of the misses (they become L1-speed hits).
  const double l1_term =
      (p.l1_hit + (1.0 - p.l1_hit) * miss_reduction) * (p.l1_time_s / speed);
  const double miss_term = MissComponent(p) * (1.0 - miss_reduction);
  if (miss_term <= 0.0) {
    return 1.0;  // nothing left below L1 to speed up
  }
  const double budget = target - l1_term;
  if (budget <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double speedup = miss_term / budget;
  return speedup < 1.0 ? 1.0 : speedup;
}

double MissReductionToAvoidFasterMemory(const HierarchyParams& p, double speed) {
  ValidateParams(p);
  AFF_CHECK(speed >= 1.0);
  // Solve for r in: l1_term(r) + miss_term(r) = EAT / speed with memory
  // speed unchanged:
  //   (h1 + (1-h1) r) t1/s + M (1 - r) = EAT / s
  // => r [ (1-h1) t1/s - M ] = EAT/s - h1 t1/s - M
  const double t1_s = p.l1_time_s / speed;
  const double m = MissComponent(p);
  const double lhs_coeff = (1.0 - p.l1_hit) * t1_s - m;
  const double rhs = EffectiveAccessTime(p) / speed - p.l1_hit * t1_s - m;
  if (lhs_coeff == 0.0) {
    return rhs <= 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return rhs / lhs_coeff;
}

}  // namespace affsched
