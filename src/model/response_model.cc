#include "src/model/response_model.h"

#include <cmath>

#include "src/common/check.h"

namespace affsched {

double CachePenaltySeconds(const ModelParams& p) {
  return p.pct_affinity * p.pa_s + (1.0 - p.pct_affinity) * p.pna_s;
}

double ModelResponseTime(const ModelParams& p) {
  AFF_CHECK(p.average_allocation > 0.0);
  const double numerator =
      p.work_s + p.waste_s + p.reallocations * (p.realloc_time_s + CachePenaltySeconds(p));
  return numerator / p.average_allocation;
}

double FutureResponseTime(const ModelParams& p, double processor_speed, double cache_size) {
  AFF_CHECK(p.average_allocation > 0.0);
  AFF_CHECK(processor_speed > 0.0);
  AFF_CHECK(cache_size > 0.0);
  const double penalty_future = p.pct_affinity * p.pa_s / cache_size +
                                (1.0 - p.pct_affinity) * p.pna_s * std::sqrt(cache_size);
  const double numerator =
      (p.work_s + p.waste_s) / processor_speed +
      p.reallocations *
          (p.realloc_time_s / processor_speed + penalty_future / std::sqrt(processor_speed));
  return numerator / p.average_allocation;
}

ModelParams ExtractModelParams(const JobStats& stats, double pa_us, double pna_us,
                               SimDuration realloc_time) {
  ModelParams p;
  // Contention and the application's own steady-state misses fold into work,
  // exactly as the paper's work term does.
  p.work_s = stats.useful_work_s + stats.steady_stall_s;
  p.waste_s = stats.waste_s;
  p.reallocations = static_cast<double>(stats.reallocations);
  p.realloc_time_s = ToSeconds(realloc_time);
  p.pct_affinity = stats.AffinityFraction();
  p.pa_s = pa_us * 1e-6;
  p.pna_s = pna_us * 1e-6;
  p.average_allocation = stats.AverageAllocation();
  return p;
}

}  // namespace affsched
