// Driver for the Figures 8-13 extrapolation: runs a workload mix under each
// policy on the current-technology simulator, extracts model parameters per
// job, and sweeps (processor-speed x cache-size) to predict response times on
// future machines, relative to Equipartition.

#ifndef SRC_MODEL_FUTURE_SWEEP_H_
#define SRC_MODEL_FUTURE_SWEEP_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/measure/experiment.h"
#include "src/measure/mixes.h"
#include "src/model/response_model.h"
#include "src/sched/factory.h"

namespace affsched {

// Per-application per-switch penalties (microseconds) at the rescheduling
// interval relevant to space-sharing reallocation (~400 ms).
struct PenaltyTable {
  std::map<std::string, double> pa_us;   // keyed by application name
  std::map<std::string, double> pna_us;
};

// The paper's Table 1 values at Q = 400 ms (self-interference column for
// P^A), usable when re-measuring via the Section 4 harness is not desired.
PenaltyTable PaperPenaltyTable();

struct FutureCurve {
  PolicyKind policy = PolicyKind::kDynamic;
  std::string app;   // application name of the job this curve describes
  size_t job_index = 0;
  // Relative response time (policy / Equipartition) at each sweep point.
  std::vector<double> relative_rt;
};

struct FutureSweepResult {
  std::vector<double> products;  // processor-speed x cache-size sweep points
  std::vector<FutureCurve> curves;
};

struct FutureSweepOptions {
  // Sweep points for speed x cache product (log scale by default).
  std::vector<double> products = {1, 4, 16, 64, 256, 1024, 4096, 16384};
  // How the product splits between the two factors: speed = product^alpha,
  // cache = product^(1-alpha). The paper observed results depend (to three
  // digits) only on the product; 0.5 splits evenly.
  double speed_exponent = 0.5;
  std::vector<PolicyKind> policies = {PolicyKind::kDynamic, PolicyKind::kDynAff,
                                      PolicyKind::kDynAffDelay};
  ReplicationOptions replication;
};

// Runs `mix` under Equipartition and each policy in `options.policies` on the
// current-technology machine, then extrapolates.
FutureSweepResult SweepFutureMachines(const MachineConfig& machine, const WorkloadMix& mix,
                                      const std::vector<AppProfile>& apps,
                                      const PenaltyTable& penalties, uint64_t seed,
                                      const FutureSweepOptions& options = {});

// The extrapolation half of SweepFutureMachines: takes already-replicated
// current-technology results (e.g. produced in parallel by the sweep runner)
// and evaluates the Figure-7 model across `options.products`. `runs` pairs
// each policy with its replicated result for the same mix/seed as `equi`.
FutureSweepResult FutureSweepFromRuns(
    const ReplicatedResult& equi,
    const std::vector<std::pair<PolicyKind, const ReplicatedResult*>>& runs,
    const PenaltyTable& penalties, const FutureSweepOptions& options = {});

}  // namespace affsched

#endif  // SRC_MODEL_FUTURE_SWEEP_H_
