// The shard spool: filesystem-based cell distribution across processes.
//
// When a sweep runs sharded, the coordinator turns every cache-miss cell
// into a task file under `<spool>/todo/`, and any number of worker processes
// (affsched_served --worker) race to claim them. A claim is a rename(2) of
// `todo/<cellkey>.task` into `claimed/` — atomic on POSIX, so exactly one
// process wins each cell; the losers see ENOENT and move on. Workers publish
// results into the shared ResultCache (which has its own atomic-rename
// protocol), so "is this cell finished?" and "what is its result?" are the
// same question the cache already answers — the spool never carries results,
// only work.
//
// Crash-recovery invariants:
//   * A task file exists exactly from offer until claim; re-offering an
//     already-claimed or already-cached cell is a no-op.
//   * A claim file is an execution lease, not a lock: if its owner dies, the
//     coordinator's wait loop times out and re-simulates the cell locally.
//     Nothing ever blocks forever on a dead worker.
//   * The CRN seed scheme makes every execution of a cell byte-identical, so
//     duplicated execution (timeout races) is wasted work, never wrong
//     results.
//
// Because cell keys are content addresses that include the git revision,
// workers built from a different commit simply never see compatible keys —
// they idle rather than produce mismatched results.

#ifndef SRC_SERVE_SPOOL_H_
#define SRC_SERVE_SPOOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/runner/sweep.h"
#include "src/serve/result_cache.h"

namespace affsched {

// One unit of shard work: everything a worker needs to reproduce the cell's
// simulation. Carries exactly the spec-addressable machine/engine fields —
// the same set the cell key hashes — so a decoded task can never silently
// differ from the key it is named by.
struct SpoolTask {
  std::string key;     // 32-hex cell content address
  std::string policy;  // CLI name
  int mix = 0;         // Table 2 workload number
  std::size_t replication = 0;
  uint64_t seed = 0;
  std::size_t procs = 0;
  double speed = 1.0;
  double cache = 1.0;
  std::string topology;  // TopologySpec::ToSpecString(), or "flat"
  int64_t balance_ns = 0;
};

class Spool {
 public:
  explicit Spool(const std::string& dir);

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  const std::string& dir() const { return dir_; }

  // Publishes a task for workers (write temp + rename into todo/). A cell
  // already offered, claimed, or finished is left alone. Returns false only
  // on I/O failure.
  bool Offer(const SpoolTask& task);

  // Coordinator-side claim of one specific cell: true means this process
  // owns the cell and must execute it; false means some worker got there
  // first (or it was never offered) and the result will appear in the cache.
  bool TryClaimKey(const std::string& key);

  // Worker-side claim of any pending task, oldest first. Returns false when
  // the todo directory is empty or every claim raced to another process.
  bool ClaimNext(SpoolTask* task);

  // Releases this process's claim marker for `key` after the result has been
  // published to the cache.
  bool FinishKey(const std::string& key);

  // Cooperative shutdown: workers poll StopRequested() between claims.
  bool RequestStop();
  bool StopRequested() const;

  // Pending (unclaimed) task count — coordinator diagnostics.
  std::size_t PendingCount() const;

  static SpoolTask MakeTask(const std::string& key, const SweepSpec& spec, PolicyKind policy,
                            int mix_number, std::size_t replication, uint64_t seed);

  // Reconstructs the simulation inputs a task describes. Returns false (with
  // a message) on an undecodable topology or unknown policy/mix.
  static bool TaskInputs(const SpoolTask& task, MachineConfig* machine, EngineOptions* engine,
                         PolicyKind* policy, std::vector<AppProfile>* jobs, std::string* error);

  // Task file codec (strict JSON, like cache entries).
  static std::string EncodeTask(const SpoolTask& task);
  static bool DecodeTask(const std::string& text, SpoolTask* task);

 private:
  std::string dir_;
  std::string todo_dir_;
  std::string claimed_dir_;
  bool ok_ = false;
  std::string error_;
};

struct SpoolWorkerOptions {
  // Return after this long with no claimable work; 0 = only stop on
  // RequestStop(). Lets CI workers drain and exit instead of hanging.
  double idle_timeout_s = 0.0;
  // Fault-injection throttle: sleep this long before each simulation
  // (mirrors the daemon's --cell-delay-ms; used by kill/resume tests to
  // widen the mid-sweep window deterministically).
  double cell_delay_s = 0.0;
};

// The worker main loop: claim → simulate → store → release, until stopped
// or idle past the timeout. Returns the number of cells executed.
std::size_t RunSpoolWorker(Spool* spool, ResultCache* cache, const SpoolWorkerOptions& options);

}  // namespace affsched

#endif  // SRC_SERVE_SPOOL_H_
