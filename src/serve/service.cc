#include "src/serve/service.h"

#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <unordered_set>
#include <utility>

#include "src/measure/experiment.h"
#include "src/sched/factory.h"
#include "src/serve/spec_canon.h"
#include "src/serve/wire.h"
#include "src/telemetry/json.h"
#include "src/telemetry/manifest.h"

namespace affsched {

namespace {

std::string KeyFor(const SweepSpec& spec, const SweepCellRef& ref, const std::string& git_rev) {
  return CellKeyWithRev(spec, ref.policy, ref.mix_number, ref.replication, ref.seed, git_rev);
}

}  // namespace

SweepService::SweepService(const SweepServiceOptions& options) : options_(options) {
  git_rev_ = options_.git_rev.empty() ? RunManifest::GitSha() : options_.git_rev;
  ResultCacheOptions cache_options;
  cache_options.dir = options_.cache_dir;
  cache_options.max_bytes = options_.max_cache_bytes;
  cache_ = std::make_unique<ResultCache>(cache_options);
  if (!options_.spool_dir.empty()) {
    spool_ = std::make_unique<Spool>(options_.spool_dir);
  }
}

bool SweepService::ok() const {
  return cache_->ok() && (spool_ == nullptr || spool_->ok());
}

std::string SweepService::error() const {
  if (!cache_->ok()) {
    return cache_->error();
  }
  if (spool_ != nullptr && !spool_->ok()) {
    return spool_->error();
  }
  return "";
}

void SweepService::set_round_stats(std::function<void(const SweepRoundStats&)> hook) {
  round_stats_ = std::move(hook);
}

bool SweepService::Submit(const SweepSpec& spec,
                          const std::function<void(const std::string&)>& emit,
                          SubmitOutcome* outcome, std::string* error) {
  counters_.submits.fetch_add(1, std::memory_order_relaxed);
  SubmitOutcome local;
  local.sweep_key = SweepKey(spec);

  const size_t cells_min =
      spec.policies.size() * spec.mixes.size() * spec.replication.min_replications;
  if (emit) {
    emit("{\"event\":\"planned\",\"sweep\":\"" + local.sweep_key + "\",\"name\":\"" +
         JsonEscape(spec.name) + "\",\"cells_min\":" + std::to_string(cells_min) + "}");
  }

  // Cells a shard worker resolved (vs. simulated here). Written from worker
  // threads, read on the orchestration thread after each round's barrier.
  std::mutex remote_mu;
  std::unordered_set<std::string> remote_keys;

  SweepRunnerOptions runner_options;
  runner_options.jobs = options_.jobs;
  runner_options.round_stats = round_stats_;

  runner_options.probe_cell = [&](const SweepCellRef& ref, RunResult* out) {
    const std::string key = KeyFor(spec, ref, git_rev_);
    if (cache_->Probe(key, out)) {
      ++local.hits;
      counters_.cache_hits.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // Miss: when sharded, publish the cell so workers can start on it while
    // this round's other cells are still being probed.
    if (spool_ != nullptr) {
      spool_->Offer(Spool::MakeTask(key, spec, ref.policy, ref.mix_number, ref.replication,
                                    ref.seed));
    }
    return false;
  };

  runner_options.run_cell = [&](const SweepCellRef& ref, const MachineConfig& machine,
                                PolicyKind policy, const std::vector<AppProfile>& jobs,
                                uint64_t seed, const EngineOptions& engine) {
    const std::string key = KeyFor(spec, ref, git_rev_);
    if (spool_ != nullptr) {
      // Claim our own offered task back; losing the race means a worker owns
      // the cell and its result will appear in the shared cache.
      const bool ours = options_.shard_local_execution && spool_->TryClaimKey(key);
      if (!ours) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::duration<double>(options_.remote_wait_timeout_s);
        while (std::chrono::steady_clock::now() < deadline) {
          RunResult remote;
          if (cache_->Contains(key) && cache_->Probe(key, &remote)) {
            counters_.cells_remote.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(remote_mu);
            remote_keys.insert(key);
            return remote;
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        // The worker died (or never existed). Duplicate execution is safe —
        // the CRN seed makes the result identical — so fall through and
        // simulate locally rather than block the sweep.
      }
    }
    if (options_.cell_delay_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(options_.cell_delay_s));
    }
    counters_.inflight.fetch_add(1, std::memory_order_relaxed);
    RunResult result = RunOnce(machine, policy, jobs, seed, engine);
    counters_.inflight.fetch_sub(1, std::memory_order_relaxed);
    counters_.cells_executed.fetch_add(1, std::memory_order_relaxed);
    return result;
  };

  runner_options.store_cell = [&](const SweepCellRef& ref, const RunResult& result) {
    const std::string key = KeyFor(spec, ref, git_rev_);
    {
      std::lock_guard<std::mutex> lock(remote_mu);
      if (remote_keys.count(key) != 0) {
        return;  // a worker already published this entry
      }
    }
    CellEntryMeta meta;
    meta.policy = PolicyKindCliName(ref.policy);
    meta.mix = ref.mix_number;
    meta.replication = ref.replication;
    meta.seed = ref.seed;
    cache_->Store(key, meta, result);
    if (spool_ != nullptr) {
      spool_->FinishKey(key);
    }
  };

  runner_options.on_cell = [&](const SweepCellRef& ref, const RunResult& result,
                               bool from_cache) {
    (void)result;
    ++local.cells;
    const char* source = "sim";
    if (from_cache) {
      source = "cache";
    } else {
      const std::string key = KeyFor(spec, ref, git_rev_);
      std::lock_guard<std::mutex> lock(remote_mu);
      if (remote_keys.count(key) != 0) {
        source = "remote";
      } else {
        ++local.executed;
      }
    }
    if (options_.stream_cells && emit) {
      emit("{\"event\":\"cell\",\"sweep\":\"" + local.sweep_key + "\",\"policy\":\"" +
           PolicyKindCliName(ref.policy) + "\",\"mix\":" + std::to_string(ref.mix_number) +
           ",\"rep\":" + std::to_string(ref.replication) +
           ",\"seed\":" + std::to_string(ref.seed) + ",\"source\":\"" + source + "\"}");
    }
  };

  try {
    SweepRunner runner(runner_options);
    SweepResult result = runner.Run(spec);
    local.remote = remote_keys.size();
    counters_.cells_planned.fetch_add(local.cells, std::memory_order_relaxed);
    // The document ends in a newline, exactly as the batch runner's
    // WriteFile emits it, so saved responses diff clean against it.
    local.json = result.ToJson() + "\n";
  } catch (const std::exception& e) {
    counters_.errors.fetch_add(1, std::memory_order_relaxed);
    if (error != nullptr) {
      *error = e.what();
    }
    if (emit) {
      emit(WireErrorEvent(e.what()));
    }
    return false;
  }

  if (emit) {
    emit("{\"event\":\"result\",\"sweep\":\"" + local.sweep_key +
         "\",\"cells\":" + std::to_string(local.cells) +
         ",\"hits\":" + std::to_string(local.hits) +
         ",\"executed\":" + std::to_string(local.executed) +
         ",\"remote\":" + std::to_string(local.remote) + ",\"json\":\"" +
         JsonEscape(local.json) + "\"}");
    emit("{\"event\":\"done\",\"sweep\":\"" + local.sweep_key + "\"}");
  }
  if (outcome != nullptr) {
    *outcome = std::move(local);
  }
  return true;
}

std::string SweepService::StatsJson() const {
  const auto load = [](const std::atomic<uint64_t>& v) {
    return std::to_string(v.load(std::memory_order_relaxed));
  };
  std::string service = "{\"submits\":" + load(counters_.submits) +
                        ",\"cells_planned\":" + load(counters_.cells_planned) +
                        ",\"cache_hits\":" + load(counters_.cache_hits) +
                        ",\"cells_executed\":" + load(counters_.cells_executed) +
                        ",\"cells_remote\":" + load(counters_.cells_remote) +
                        ",\"inflight\":" + load(counters_.inflight) +
                        ",\"errors\":" + load(counters_.errors) + "}";
  return "{\"event\":\"stats\",\"git_rev\":\"" + JsonEscape(git_rev_) +
         "\",\"cache\":" + cache_->StatsJson() + ",\"service\":" + service + "}";
}

}  // namespace affsched
