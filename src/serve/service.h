// SweepService: the serving layer over the batch sweep runner.
//
// A service owns a content-addressed ResultCache (and optionally a shard
// Spool) and answers sweep submissions through three seams the runner
// exposes:
//
//   probe  — before a round executes, every cell is looked up in the cache;
//            hits skip simulation entirely.
//   store  — every freshly simulated cell persists to the cache the moment
//            its worker thread finishes it, so a killed process checkpoints
//            at cell granularity for free.
//   stream — as cells fold (deterministic order), a wire event is emitted,
//            giving clients incremental results long before the document.
//
// The final document is built by the unmodified SweepRunner fold, so a
// submission's JSON is byte-identical to `simctl --sweep` on the same spec —
// whether its cells came from simulation, the cache, a resumed half-finished
// run, or remote shard workers, in any mixture.
//
// Sharding: with a spool configured, cache-miss cells are offered as task
// files during the probe phase; worker processes claim them by atomic
// rename and publish results into the shared cache. The coordinator's cell
// execution then claims its own tasks back — whatever the workers already
// took, it simply waits for (with a timeout fallback that re-simulates
// locally, so dead workers cost time, not liveness).

#ifndef SRC_SERVE_SERVICE_H_
#define SRC_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/runner/heartbeat.h"
#include "src/runner/runner.h"
#include "src/serve/result_cache.h"
#include "src/serve/spool.h"

namespace affsched {

struct SweepServiceOptions {
  std::string cache_dir;
  uint64_t max_cache_bytes = 0;  // 0 = unbounded
  size_t jobs = 0;               // simulation threads (0 = hardware concurrency)
  // Sharding: non-empty enables the spool protocol for cache-miss cells.
  std::string spool_dir;
  // When sharded, whether the coordinator also executes cells itself (claim
  // races with workers). False = pure coordinator: every miss must be
  // executed by a worker (or by the timeout fallback) — used by tests to
  // make "remote" counts deterministic.
  bool shard_local_execution = true;
  // How long to wait for a worker-claimed cell before re-simulating it
  // locally. Generous: a false timeout only duplicates work.
  double remote_wait_timeout_s = 60.0;
  // Fault-injection throttle: sleep before each local simulation. Widens the
  // kill window for crash/resume tests; 0 in production.
  double cell_delay_s = 0.0;
  // Emit one "cell" wire event per folded cell (the incremental stream).
  bool stream_cells = true;
  // Cache-key git revision override; empty = RunManifest::GitSha(). Tests
  // pin it so prebuilt fixtures stay addressable.
  std::string git_rev;
};

// Counters over the service lifetime (all submissions), exposed by the
// daemon's stats op and heartbeat lines.
struct ServiceCounters {
  std::atomic<uint64_t> submits{0};
  std::atomic<uint64_t> cells_planned{0};
  std::atomic<uint64_t> cache_hits{0};
  std::atomic<uint64_t> cells_executed{0};  // simulated in this process
  std::atomic<uint64_t> cells_remote{0};    // resolved by shard workers
  std::atomic<uint64_t> inflight{0};        // simulations running right now
  std::atomic<uint64_t> errors{0};
};

// One submission's outcome. cells == hits + executed + remote.
struct SubmitOutcome {
  std::string sweep_key;
  size_t cells = 0;
  size_t hits = 0;
  size_t executed = 0;
  size_t remote = 0;
  std::string json;  // the schema-v1/v3 sweep document
};

class SweepService {
 public:
  explicit SweepService(const SweepServiceOptions& options);

  bool ok() const;
  std::string error() const;

  // Runs one submission, streaming wire events through `emit` (called only
  // from this thread; pass {} to disable). Returns false on error with
  // `error` set (an "error" event is also emitted). Safe to call repeatedly;
  // a resident daemon calls it once per submit request.
  bool Submit(const SweepSpec& spec, const std::function<void(const std::string&)>& emit,
              SubmitOutcome* outcome, std::string* error);

  // {"event":"stats","git_rev":...,"cache":{...},"service":{...}} — the
  // stats op's response and the heartbeat "cache" line's payload.
  std::string StatsJson() const;

  // Optional live-progress hook, forwarded to the runner's round_stats seam
  // (bind to HeartbeatWriter::OnRound for a JSONL stream).
  void set_round_stats(std::function<void(const SweepRoundStats&)> hook);

  ResultCache* cache() { return cache_.get(); }
  Spool* spool() { return spool_.get(); }
  const ServiceCounters& counters() const { return counters_; }
  const std::string& git_rev() const { return git_rev_; }

 private:
  SweepServiceOptions options_;
  std::string git_rev_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<Spool> spool_;  // null when not sharded
  std::function<void(const SweepRoundStats&)> round_stats_;
  ServiceCounters counters_;
};

}  // namespace affsched

#endif  // SRC_SERVE_SERVICE_H_
