// Content-addressed, crash-safe result cache for sweep cells.
//
// One entry per simulated cell, stored as `<dir>/<cellkey>.cell` — a single
// JSON object encoding the cell's RunResult exactly (SimTime as integer
// nanoseconds, doubles via ExactDouble, so a decoded result is bit-identical
// to the one simulated). The key (see spec_canon.h) covers the simulator git
// revision and the entry schema version, so a stale build's entries are
// simply unreachable, never misread.
//
// Crash safety is the point of this store: entries are written to a
// temporary file and published with rename(2), which is atomic on POSIX
// filesystems — a reader sees either no entry or a complete one. If a
// process is killed *between* cells, the completed cells' entries survive
// and the next submission of the same spec resumes from them. If an entry is
// somehow corrupt anyway (torn disk, manual truncation), the strict JSON
// decode fails, the probe reports a miss, the corrupt file is deleted, and
// the cell is re-simulated — corruption can cost work, never correctness.
//
// Capacity: with max_bytes set, each store may evict least-recently-used
// entries (probe hits refresh an entry's mtime) until the directory fits.
// The entry just written is exempt so one oversized store cannot evict
// itself into a permanent miss loop.
//
// Thread-safety: Probe/Store/Contains may be called concurrently (worker
// threads store, shard coordinators poll); stats are atomics and the
// eviction scan is serialized by a mutex.

#ifndef SRC_SERVE_RESULT_CACHE_H_
#define SRC_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "src/measure/experiment.h"

namespace affsched {

struct ResultCacheOptions {
  std::string dir;
  // Soft size budget in bytes; 0 = unbounded. Enforced after each store.
  uint64_t max_bytes = 0;
};

struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t corrupt = 0;  // entries present but undecodable (counted as misses too)
  uint64_t stores = 0;
  uint64_t store_errors = 0;
  uint64_t evictions = 0;
};

// Identity recorded inside an entry, for human inspection and for spool
// workers reporting what they executed. Not authoritative — the key is.
struct CellEntryMeta {
  std::string policy;  // CLI name
  int mix = 0;
  std::size_t replication = 0;
  uint64_t seed = 0;
};

class ResultCache {
 public:
  explicit ResultCache(const ResultCacheOptions& options);

  // False when the cache directory could not be created; every operation on
  // a bad cache is a no-op miss.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  const std::string& dir() const { return options_.dir; }

  // Looks up `key`. On a hit, decodes the entry into `out` (bit-identical to
  // the stored RunResult) and refreshes the entry's LRU clock. A present but
  // undecodable entry is deleted and reported as a miss.
  bool Probe(const std::string& key, RunResult* out);

  // Existence check without stats side effects (shard coordinators poll with
  // this while waiting for a remote worker).
  bool Contains(const std::string& key) const;

  // Atomically publishes an entry (write temp + rename), then enforces the
  // size budget. Returns false only on I/O failure.
  bool Store(const std::string& key, const CellEntryMeta& meta, const RunResult& result);

  // Directory scan: entries currently present / their total size.
  std::size_t EntryCount() const;
  uint64_t TotalBytes() const;

  ResultCacheStats stats() const;

  // Cache stats as one JSON object (entries/bytes from a directory scan,
  // counters from this process's lifetime).
  std::string StatsJson() const;

  // Entry codec, exposed for tests and the spool worker. Decode is strict:
  // any parse failure, schema mismatch, or missing field returns false.
  static std::string EncodeEntry(const std::string& key, const CellEntryMeta& meta,
                                 const RunResult& result);
  static bool DecodeEntry(const std::string& text, RunResult* out, CellEntryMeta* meta = nullptr);

  static std::string EntryFileName(const std::string& key) { return key + ".cell"; }

 private:
  void EvictOverBudget(const std::string& keep_key);

  ResultCacheOptions options_;
  bool ok_ = false;
  std::string error_;
  std::mutex evict_mu_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> corrupt_{0};
  std::atomic<uint64_t> stores_{0};
  std::atomic<uint64_t> store_errors_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace affsched

#endif  // SRC_SERVE_RESULT_CACHE_H_
