// A minimal JSON document parser for the serve layer.
//
// The telemetry layer's json.h is a writer's toolkit (escaping, number
// formatting, a validity checker); the serve layer additionally needs to
// *read* JSON: wire-protocol requests off the daemon socket, cached cell
// entries, and spool task files. This is a strict, dependency-free
// recursive-descent parser into a small DOM. Strictness matters for the
// cache: a truncated entry (the process was SIGKILLed mid-write, the disk
// filled up) must fail to parse so the probe treats it as a miss and the
// cell is re-simulated — never half-read.
//
// Numbers keep their raw source text alongside the converted double, so a
// value written with %.17g round-trips to the bit-identical double (the
// property the checkpoint/resume path depends on for byte-identical result
// documents).

#ifndef SRC_SERVE_JSONV_H_
#define SRC_SERVE_JSONV_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace affsched {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  // Numbers: the exact source token (e.g. "0.10000000000000001") — convert
  // on demand so 64-bit integers and bit-exact doubles both survive.
  std::string number;
  std::string string_value;
  std::vector<JsonValue> array;
  // Object members in source order (duplicates keep the last).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsBool() const { return kind == Kind::kBool; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Get(const std::string& key) const;

  // Typed accessors with defaults (never throw; wrong-kind reads return the
  // fallback so protocol handlers can validate with explicit checks).
  double AsDouble(double fallback = 0.0) const;
  int64_t AsInt64(int64_t fallback = 0) const;
  uint64_t AsUint64(uint64_t fallback = 0) const;
  const std::string& AsString(const std::string& fallback) const;
  bool AsBool(bool fallback = false) const;
};

// Parses exactly one JSON value spanning the whole of `text` (leading and
// trailing whitespace allowed, trailing garbage is an error). Returns false
// and sets `error` (with a byte offset) on malformed input.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

// Formats a double so that ParseJson + AsDouble returns the bit-identical
// value: shortest form for integral values, %.17g otherwise. Non-finite
// values (unrepresentable in JSON) become "null", which fails DecodeEntry-
// style strict readers — by design, a cell with NaN accounting is not
// cacheable.
std::string ExactDouble(double value);

}  // namespace affsched

#endif  // SRC_SERVE_JSONV_H_
