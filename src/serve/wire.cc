#include "src/serve/wire.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/serve/jsonv.h"
#include "src/telemetry/json.h"

namespace affsched {

bool ParseWireRequest(const std::string& line, WireRequest* request, std::string* error) {
  JsonValue doc;
  if (!ParseJson(line, &doc, error)) {
    return false;
  }
  if (!doc.IsObject()) {
    *error = "request must be a JSON object";
    return false;
  }
  const JsonValue* op = doc.Get("op");
  if (op == nullptr || !op->IsString() || op->string_value.empty()) {
    *error = "request needs a string \"op\" member";
    return false;
  }
  *request = WireRequest();
  request->op = op->string_value;
  const JsonValue* spec = doc.Get("spec");
  if (spec != nullptr && spec->IsString()) {
    request->spec = spec->string_value;
  }
  const JsonValue* jobs = doc.Get("jobs");
  if (jobs != nullptr && jobs->IsNumber()) {
    request->jobs = static_cast<std::size_t>(jobs->AsUint64());
  }
  return true;
}

std::string WireErrorEvent(const std::string& message) {
  return "{\"event\":\"error\",\"message\":\"" + JsonEscape(message) + "\"}";
}

namespace {

bool FillAddress(const std::string& path, sockaddr_un* addr, std::string* error) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    *error = "socket path empty or too long (max " +
             std::to_string(sizeof(addr->sun_path) - 1) + " bytes): " + path;
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size());
  return true;
}

}  // namespace

int ListenUnix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!FillAddress(path, &addr, error)) {
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  // A previous daemon instance may have left its socket file behind;
  // binding over it requires removing it first.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "bind " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, 16) != 0) {
    *error = "listen " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

int ConnectUnix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!FillAddress(path, &addr, error)) {
    return -1;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    *error = "connect " + path + ": " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

LineChannel::~LineChannel() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool LineChannel::ReadLine(std::string* line) {
  while (true) {
    const size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      *line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    // EOF (or error): surface any unterminated trailing line once.
    if (!buffer_.empty()) {
      *line = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    return false;
  }
}

bool LineChannel::WriteLine(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::write(fd_, framed.data() + sent, framed.size() - sent);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return false;
  }
  return true;
}

}  // namespace affsched
