#include "src/serve/spool.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>

#include "src/apps/apps.h"
#include "src/measure/mixes.h"
#include "src/runner/cell_seed.h"
#include "src/serve/jsonv.h"
#include "src/telemetry/json.h"

namespace fs = std::filesystem;

namespace affsched {

namespace {

std::string PidSuffix() { return std::to_string(static_cast<long>(::getpid())); }

bool ReadFileText(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return in.good() || in.eof();
}

}  // namespace

Spool::Spool(const std::string& dir) : dir_(dir) {
  if (dir_.empty()) {
    error_ = "empty spool directory";
    return;
  }
  todo_dir_ = (fs::path(dir_) / "todo").string();
  claimed_dir_ = (fs::path(dir_) / "claimed").string();
  std::error_code ec;
  fs::create_directories(todo_dir_, ec);
  if (!ec) {
    fs::create_directories(claimed_dir_, ec);
  }
  if (ec) {
    error_ = "cannot create spool dirs under " + dir_ + ": " + ec.message();
    return;
  }
  ok_ = true;
}

std::string Spool::EncodeTask(const SpoolTask& task) {
  std::ostringstream o;
  o << "{\"task_schema\":1,\"key\":\"" << JsonEscape(task.key) << "\",\"policy\":\""
    << JsonEscape(task.policy) << "\",\"mix\":" << task.mix << ",\"rep\":" << task.replication
    << ",\"seed\":" << SeedToDecimal(task.seed) << ",\"procs\":" << task.procs
    << ",\"speed\":" << ExactDouble(task.speed) << ",\"cache\":" << ExactDouble(task.cache)
    << ",\"topology\":\"" << JsonEscape(task.topology) << "\",\"balance_ns\":" << task.balance_ns
    << "}";
  return o.str();
}

bool Spool::DecodeTask(const std::string& text, SpoolTask* task) {
  JsonValue doc;
  std::string error;
  if (!ParseJson(text, &doc, &error) || !doc.IsObject()) {
    return false;
  }
  const JsonValue* schema = doc.Get("task_schema");
  if (schema == nullptr || schema->AsInt64(-1) != 1) {
    return false;
  }
  const JsonValue* key = doc.Get("key");
  const JsonValue* policy = doc.Get("policy");
  const JsonValue* mix = doc.Get("mix");
  const JsonValue* rep = doc.Get("rep");
  const JsonValue* seed = doc.Get("seed");
  const JsonValue* procs = doc.Get("procs");
  const JsonValue* speed = doc.Get("speed");
  const JsonValue* cache = doc.Get("cache");
  const JsonValue* topology = doc.Get("topology");
  const JsonValue* balance = doc.Get("balance_ns");
  if (key == nullptr || !key->IsString() || policy == nullptr || !policy->IsString() ||
      mix == nullptr || !mix->IsNumber() || rep == nullptr || !rep->IsNumber() ||
      seed == nullptr || !seed->IsNumber() || procs == nullptr || !procs->IsNumber() ||
      speed == nullptr || !speed->IsNumber() || cache == nullptr || !cache->IsNumber() ||
      topology == nullptr || !topology->IsString() || balance == nullptr ||
      !balance->IsNumber()) {
    return false;
  }
  task->key = key->string_value;
  task->policy = policy->string_value;
  task->mix = static_cast<int>(mix->AsInt64());
  task->replication = static_cast<std::size_t>(rep->AsUint64());
  task->seed = seed->AsUint64();
  task->procs = static_cast<std::size_t>(procs->AsUint64());
  task->speed = speed->AsDouble();
  task->cache = cache->AsDouble();
  task->topology = topology->string_value;
  task->balance_ns = balance->AsInt64();
  return true;
}

SpoolTask Spool::MakeTask(const std::string& key, const SweepSpec& spec, PolicyKind policy,
                          int mix_number, std::size_t replication, uint64_t seed) {
  SpoolTask task;
  task.key = key;
  task.policy = PolicyKindCliName(policy);
  task.mix = mix_number;
  task.replication = replication;
  task.seed = seed;
  task.procs = spec.machine.num_processors;
  task.speed = spec.machine.processor_speed;
  task.cache = spec.machine.cache_size_factor;
  task.topology =
      spec.machine.topology.IsFlat() ? "flat" : spec.machine.topology.ToSpecString();
  task.balance_ns = spec.engine.balance_interval;
  return task;
}

bool Spool::TaskInputs(const SpoolTask& task, MachineConfig* machine, EngineOptions* engine,
                       PolicyKind* policy, std::vector<AppProfile>* jobs, std::string* error) {
  if (!PolicyKindFromName(task.policy, policy)) {
    *error = "unknown policy '" + task.policy + "' in spool task";
    return false;
  }
  if (task.mix < 1 || task.mix > 6) {
    *error = "mix number " + std::to_string(task.mix) + " out of range in spool task";
    return false;
  }
  *machine = MachineConfig();
  machine->num_processors = task.procs;
  machine->processor_speed = task.speed;
  machine->cache_size_factor = task.cache;
  if (task.topology != "flat" &&
      !ParseTopologySpec(task.topology, &machine->topology, error)) {
    return false;
  }
  const std::string machine_problem = machine->Validate();
  if (!machine_problem.empty()) {
    *error = machine_problem;
    return false;
  }
  *engine = EngineOptions();
  engine->balance_interval = task.balance_ns;
  *jobs = PaperMixes()[static_cast<std::size_t>(task.mix - 1)].Expand(DefaultProfiles());
  return true;
}

bool Spool::Offer(const SpoolTask& task) {
  if (!ok_) {
    return false;
  }
  const fs::path todo = fs::path(todo_dir_) / (task.key + ".task");
  std::error_code ec;
  if (fs::exists(todo, ec)) {
    return true;  // already offered
  }
  const fs::path tmp = fs::path(dir_) / ("tmp-" + task.key + "-" + PidSuffix());
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc);
    if (!out.is_open()) {
      return false;
    }
    out << EncodeTask(task) << "\n";
    out.flush();
    if (!out.good()) {
      std::error_code rm_ec;
      fs::remove(tmp, rm_ec);
      return false;
    }
  }
  fs::rename(tmp, todo, ec);
  if (ec) {
    std::error_code rm_ec;
    fs::remove(tmp, rm_ec);
    return false;
  }
  return true;
}

bool Spool::TryClaimKey(const std::string& key) {
  if (!ok_) {
    // No spool: the caller owns every cell it asks about.
    return true;
  }
  const fs::path todo = fs::path(todo_dir_) / (key + ".task");
  const fs::path claim = fs::path(claimed_dir_) / (key + "." + PidSuffix());
  std::error_code ec;
  fs::rename(todo, claim, ec);
  return !ec;
}

bool Spool::ClaimNext(SpoolTask* task) {
  if (!ok_) {
    return false;
  }
  struct Pending {
    fs::path path;
    fs::file_time_type mtime;
  };
  std::vector<Pending> pending;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(todo_dir_, ec)) {
    if (ec) {
      return false;
    }
    std::error_code file_ec;
    if (item.is_regular_file(file_ec) && item.path().extension() == ".task") {
      pending.push_back(Pending{item.path(), item.last_write_time(file_ec)});
    }
  }
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) { return a.mtime < b.mtime; });
  for (const Pending& candidate : pending) {
    const std::string key = candidate.path.stem().string();
    const fs::path claim = fs::path(claimed_dir_) / (key + "." + PidSuffix());
    std::error_code rename_ec;
    fs::rename(candidate.path, claim, rename_ec);
    if (rename_ec) {
      continue;  // another process won this cell
    }
    std::string text;
    if (!ReadFileText(claim, &text) || !DecodeTask(text, task)) {
      // Undecodable task: drop the claim so the cell is not silently lost
      // (the coordinator's timeout fallback re-simulates it locally).
      std::error_code rm_ec;
      fs::remove(claim, rm_ec);
      continue;
    }
    return true;
  }
  return false;
}

bool Spool::FinishKey(const std::string& key) {
  if (!ok_) {
    return false;
  }
  std::error_code ec;
  return fs::remove(fs::path(claimed_dir_) / (key + "." + PidSuffix()), ec) && !ec;
}

bool Spool::RequestStop() {
  if (!ok_) {
    return false;
  }
  std::ofstream out(fs::path(dir_) / "stop", std::ios::out | std::ios::trunc);
  return out.good();
}

bool Spool::StopRequested() const {
  if (!ok_) {
    return true;
  }
  std::error_code ec;
  return fs::exists(fs::path(dir_) / "stop", ec);
}

std::size_t Spool::PendingCount() const {
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(todo_dir_, ec)) {
    if (ec) {
      return count;
    }
    std::error_code file_ec;
    if (item.is_regular_file(file_ec) && item.path().extension() == ".task") {
      ++count;
    }
  }
  return count;
}

std::size_t RunSpoolWorker(Spool* spool, ResultCache* cache, const SpoolWorkerOptions& options) {
  std::size_t executed = 0;
  auto idle_since = std::chrono::steady_clock::now();
  while (!spool->StopRequested()) {
    SpoolTask task;
    if (!spool->ClaimNext(&task)) {
      if (options.idle_timeout_s > 0.0) {
        const double idle_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - idle_since).count();
        if (idle_s >= options.idle_timeout_s) {
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    idle_since = std::chrono::steady_clock::now();
    MachineConfig machine;
    EngineOptions engine;
    PolicyKind policy;
    std::vector<AppProfile> jobs;
    std::string error;
    if (!Spool::TaskInputs(task, &machine, &engine, &policy, &jobs, &error)) {
      // Unrunnable task (version skew): abandon the claim; the coordinator's
      // timeout fallback covers the cell.
      spool->FinishKey(task.key);
      continue;
    }
    if (options.cell_delay_s > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(options.cell_delay_s));
    }
    const RunResult result = RunOnce(machine, policy, jobs, task.seed, engine);
    CellEntryMeta meta;
    meta.policy = task.policy;
    meta.mix = task.mix;
    meta.replication = task.replication;
    meta.seed = task.seed;
    cache->Store(task.key, meta, result);
    spool->FinishKey(task.key);
    ++executed;
  }
  return executed;
}

}  // namespace affsched
