// Canonical sweep-spec text and content-addressed cache keys.
//
// The result cache only works if equivalent requests collide: a client that
// submits "smoke;procs=8;seed=7" must hit the entries written for
// "smoke;seed=7;procs=8", and "speed=2.0" must mean the same spec as
// "speed=2". Raw spec strings guarantee neither (SweepSpec::name even
// records the override text verbatim for provenance), so hashing happens on
// a canonical rendering of the *parsed* SweepSpec: fixed field order,
// numbers normalized through the telemetry JSON formatter, topology via its
// round-trippable ToSpecString. Two spec strings that parse to the same grid
// always canonicalize — and therefore hash — identically.
//
// Two levels of key:
//
//   * The sweep key identifies a whole submitted grid (used as the stream id
//     in wire events and for spool namespacing). It covers everything that
//     shapes the result document, including policy order and the
//     observability flag.
//   * The cell key identifies one simulation: the spec-addressable machine
//     and engine fields, the policy, the (mix, replication) coordinates, the
//     derived seed — plus the cache entry schema version and the git
//     revision of the simulator build, because a cell result is a function
//     of the binary that produced it. Grid-shape fields (which other
//     policies ran, replication bounds, observability) are deliberately
//     excluded so different grids share cells: resubmitting a widened sweep
//     reuses every cell it has in common with earlier runs.

#ifndef SRC_SERVE_SPEC_CANON_H_
#define SRC_SERVE_SPEC_CANON_H_

#include <cstdint>
#include <string>

#include "src/runner/sweep.h"

namespace affsched {

// Bump when the cache entry encoding changes incompatibly; part of every
// cell key, so stale-format entries become unreachable instead of corrupt.
// v2: JobStats gained the real-time fields (deadline_misses, tardiness_s,
// worst_reload_s), which every entry now round-trips.
inline constexpr int kCellEntrySchemaVersion = 2;

// FNV-1a over `text`, with a caller-chosen basis so two independent 64-bit
// digests can be concatenated into one 128-bit key.
uint64_t Fnv1a64(const std::string& text, uint64_t basis = 14695981039346656037ull);

// Lower-case hex, zero-padded to 16 digits.
std::string HashHex(uint64_t value);

// The canonical rendering of a parsed spec (deterministic field order,
// normalized numbers, name/provenance excluded). Equivalent specs — same
// grid, different override spelling — produce identical text.
std::string CanonicalSpecText(const SweepSpec& spec);

// 16-hex-digit digest of CanonicalSpecText.
std::string SweepKey(const SweepSpec& spec);

// The canonical rendering of one cell's identity (see file comment for what
// is and is not included). `git_rev` defaults to the built-in commit via
// RunManifest::GitSha(); tests inject fixed values.
std::string CanonicalCellText(const SweepSpec& spec, PolicyKind policy, int mix_number,
                              std::size_t replication, uint64_t seed,
                              const std::string& git_rev);

// 32-hex-digit content address for one cell (two independent FNV-1a digests
// of CanonicalCellText), used as the cache file name and the spool task
// name. Collision probability is negligible at any plausible cache size.
std::string CellKey(const SweepSpec& spec, PolicyKind policy, int mix_number,
                    std::size_t replication, uint64_t seed);
std::string CellKeyWithRev(const SweepSpec& spec, PolicyKind policy, int mix_number,
                           std::size_t replication, uint64_t seed, const std::string& git_rev);

}  // namespace affsched

#endif  // SRC_SERVE_SPEC_CANON_H_
