#include "src/serve/jsonv.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace affsched {

const JsonValue* JsonValue::Get(const std::string& key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  // Last occurrence wins, matching how lenient parsers treat duplicates.
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) {
      found = &value;
    }
  }
  return found;
}

double JsonValue::AsDouble(double fallback) const {
  if (kind != Kind::kNumber) {
    return fallback;
  }
  return std::strtod(number.c_str(), nullptr);
}

int64_t JsonValue::AsInt64(int64_t fallback) const {
  if (kind != Kind::kNumber) {
    return fallback;
  }
  return std::strtoll(number.c_str(), nullptr, 10);
}

uint64_t JsonValue::AsUint64(uint64_t fallback) const {
  if (kind != Kind::kNumber || number.empty() || number[0] == '-') {
    return fallback;
  }
  return std::strtoull(number.c_str(), nullptr, 10);
}

const std::string& JsonValue::AsString(const std::string& fallback) const {
  return kind == Kind::kString ? string_value : fallback;
}

bool JsonValue::AsBool(bool fallback) const {
  return kind == Kind::kBool ? bool_value : fallback;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error) : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out, 0)) {
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail("trailing garbage after JSON value");
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  bool Fail(const char* message) {
    *error_ = std::string(message) + " at byte " + std::to_string(pos_);
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        return ParseLiteral("true", out, JsonValue::Kind::kBool, true);
      case 'f':
        return ParseLiteral("false", out, JsonValue::Kind::kBool, false);
      case 'n':
        return ParseLiteral("null", out, JsonValue::Kind::kNull, false);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(const char* literal, JsonValue* out, JsonValue::Kind kind, bool value) {
    for (const char* p = literal; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail("bad literal");
      }
    }
    out->kind = kind;
    out->bool_value = value;
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Fail("bad number");
    }
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("bad number fraction");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Fail("bad number exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = text_.substr(start, pos_ - start);
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) {
        return Fail("unterminated string");
      }
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) {
        return Fail("unterminated escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by any writer in this repo; reject them as malformed
          // rather than emitting broken UTF-8).
          if (code >= 0xD800 && code <= 0xDFFF) {
            return Fail("surrogate \\u escape unsupported");
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("unknown escape");
      }
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      SkipSpace();
      if (!ParseValue(&element, depth + 1)) {
        return false;
      }
      out->array.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':' after object key");
      }
      ++pos_;
      SkipSpace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  std::string scratch;
  Parser parser(text, error != nullptr ? error : &scratch);
  *out = JsonValue();
  return parser.Parse(out);
}

std::string ExactDouble(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  // Integral doubles inside int64 range print as plain integers — compact,
  // and strtod converts them back exactly.
  if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace affsched
