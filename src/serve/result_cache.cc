#include "src/serve/result_cache.h"

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "src/runner/cell_seed.h"
#include "src/serve/jsonv.h"
#include "src/telemetry/json.h"

namespace fs = std::filesystem;

namespace affsched {

namespace {

bool ReadFileText(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::in | std::ios::binary);
  if (!in.is_open()) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return in.good() || in.eof();
}

// JobStats fields in a fixed order. Every field the sweep JSON derives from
// must round-trip exactly, or a resumed sweep's document would drift from
// the uninterrupted one.
void AppendStats(const JobStats& stats, std::ostringstream& o) {
  o << "{\"arrival\":" << stats.arrival << ",\"completion\":" << stats.completion
    << ",\"queue_wait_s\":" << ExactDouble(stats.queue_wait_s)
    << ",\"useful_work_s\":" << ExactDouble(stats.useful_work_s)
    << ",\"reload_stall_s\":" << ExactDouble(stats.reload_stall_s)
    << ",\"steady_stall_s\":" << ExactDouble(stats.steady_stall_s)
    << ",\"switch_s\":" << ExactDouble(stats.switch_s)
    << ",\"waste_s\":" << ExactDouble(stats.waste_s)
    << ",\"alloc_integral_s\":" << ExactDouble(stats.alloc_integral_s)
    << ",\"reallocations\":" << stats.reallocations
    << ",\"affinity_dispatches\":" << stats.affinity_dispatches
    << ",\"mig_core\":" << stats.migrations_same_core
    << ",\"mig_cluster\":" << stats.migrations_same_cluster
    << ",\"mig_node\":" << stats.migrations_same_node
    << ",\"mig_cross\":" << stats.migrations_cross_node
    << ",\"reload_llc_s\":" << ExactDouble(stats.reload_llc_s)
    << ",\"reload_remote_s\":" << ExactDouble(stats.reload_remote_s)
    << ",\"steal_cluster\":" << stats.steals_same_cluster
    << ",\"steal_node\":" << stats.steals_same_node
    << ",\"steal_cross\":" << stats.steals_cross_node
    << ",\"balance_migrations\":" << stats.balance_migrations
    << ",\"deadline_misses\":" << stats.deadline_misses
    << ",\"tardiness_s\":" << ExactDouble(stats.tardiness_s)
    << ",\"worst_reload_s\":" << ExactDouble(stats.worst_reload_s) << "}";
}

// Reads one required numeric member; false when absent or non-numeric.
bool GetNum(const JsonValue& obj, const char* key, const JsonValue** out) {
  const JsonValue* v = obj.Get(key);
  if (v == nullptr || !v->IsNumber()) {
    return false;
  }
  *out = v;
  return true;
}

bool DecodeStats(const JsonValue& obj, JobStats* stats) {
  if (!obj.IsObject()) {
    return false;
  }
  const JsonValue* v = nullptr;
  if (!GetNum(obj, "arrival", &v)) return false;
  stats->arrival = v->AsInt64();
  if (!GetNum(obj, "completion", &v)) return false;
  stats->completion = v->AsInt64();
  if (!GetNum(obj, "queue_wait_s", &v)) return false;
  stats->queue_wait_s = v->AsDouble();
  if (!GetNum(obj, "useful_work_s", &v)) return false;
  stats->useful_work_s = v->AsDouble();
  if (!GetNum(obj, "reload_stall_s", &v)) return false;
  stats->reload_stall_s = v->AsDouble();
  if (!GetNum(obj, "steady_stall_s", &v)) return false;
  stats->steady_stall_s = v->AsDouble();
  if (!GetNum(obj, "switch_s", &v)) return false;
  stats->switch_s = v->AsDouble();
  if (!GetNum(obj, "waste_s", &v)) return false;
  stats->waste_s = v->AsDouble();
  if (!GetNum(obj, "alloc_integral_s", &v)) return false;
  stats->alloc_integral_s = v->AsDouble();
  if (!GetNum(obj, "reallocations", &v)) return false;
  stats->reallocations = v->AsUint64();
  if (!GetNum(obj, "affinity_dispatches", &v)) return false;
  stats->affinity_dispatches = v->AsUint64();
  if (!GetNum(obj, "mig_core", &v)) return false;
  stats->migrations_same_core = v->AsUint64();
  if (!GetNum(obj, "mig_cluster", &v)) return false;
  stats->migrations_same_cluster = v->AsUint64();
  if (!GetNum(obj, "mig_node", &v)) return false;
  stats->migrations_same_node = v->AsUint64();
  if (!GetNum(obj, "mig_cross", &v)) return false;
  stats->migrations_cross_node = v->AsUint64();
  if (!GetNum(obj, "reload_llc_s", &v)) return false;
  stats->reload_llc_s = v->AsDouble();
  if (!GetNum(obj, "reload_remote_s", &v)) return false;
  stats->reload_remote_s = v->AsDouble();
  if (!GetNum(obj, "steal_cluster", &v)) return false;
  stats->steals_same_cluster = v->AsUint64();
  if (!GetNum(obj, "steal_node", &v)) return false;
  stats->steals_same_node = v->AsUint64();
  if (!GetNum(obj, "steal_cross", &v)) return false;
  stats->steals_cross_node = v->AsUint64();
  if (!GetNum(obj, "balance_migrations", &v)) return false;
  stats->balance_migrations = v->AsUint64();
  if (!GetNum(obj, "deadline_misses", &v)) return false;
  stats->deadline_misses = v->AsUint64();
  if (!GetNum(obj, "tardiness_s", &v)) return false;
  stats->tardiness_s = v->AsDouble();
  if (!GetNum(obj, "worst_reload_s", &v)) return false;
  stats->worst_reload_s = v->AsDouble();
  return true;
}

}  // namespace

ResultCache::ResultCache(const ResultCacheOptions& options) : options_(options) {
  if (options_.dir.empty()) {
    error_ = "empty cache directory";
    return;
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    error_ = "cannot create cache dir " + options_.dir + ": " + ec.message();
    return;
  }
  ok_ = true;
}

std::string ResultCache::EncodeEntry(const std::string& key, const CellEntryMeta& meta,
                                     const RunResult& result) {
  std::ostringstream o;
  o << "{\"entry_schema\":2,\"key\":\"" << JsonEscape(key) << "\",\"policy\":\""
    << JsonEscape(meta.policy) << "\",\"mix\":" << meta.mix << ",\"rep\":" << meta.replication
    << ",\"seed\":" << SeedToDecimal(meta.seed) << ",\"makespan\":" << result.makespan
    << ",\"events\":" << result.events << ",\"jobs\":[";
  for (size_t j = 0; j < result.jobs.size(); ++j) {
    o << (j > 0 ? "," : "") << "{\"app\":\"" << JsonEscape(result.jobs[j].app) << "\",\"stats\":";
    AppendStats(result.jobs[j].stats, o);
    o << "}";
  }
  o << "]}";
  return o.str();
}

bool ResultCache::DecodeEntry(const std::string& text, RunResult* out, CellEntryMeta* meta) {
  JsonValue doc;
  std::string error;
  if (!ParseJson(text, &doc, &error) || !doc.IsObject()) {
    return false;
  }
  const JsonValue* schema = doc.Get("entry_schema");
  if (schema == nullptr || schema->AsInt64(-1) != 2) {
    return false;
  }
  const JsonValue* makespan = nullptr;
  const JsonValue* events = nullptr;
  if (!GetNum(doc, "makespan", &makespan) || !GetNum(doc, "events", &events)) {
    return false;
  }
  const JsonValue* jobs = doc.Get("jobs");
  if (jobs == nullptr || !jobs->IsArray()) {
    return false;
  }
  RunResult result;
  result.makespan = makespan->AsInt64();
  result.events = events->AsUint64();
  result.jobs.reserve(jobs->array.size());
  for (const JsonValue& job : jobs->array) {
    const JsonValue* app = job.Get("app");
    const JsonValue* stats = job.Get("stats");
    if (app == nullptr || !app->IsString() || stats == nullptr) {
      return false;
    }
    JobResult decoded;
    decoded.app = app->string_value;
    if (!DecodeStats(*stats, &decoded.stats)) {
      return false;
    }
    result.jobs.push_back(std::move(decoded));
  }
  if (meta != nullptr) {
    static const std::string kEmpty;
    const JsonValue* policy = doc.Get("policy");
    meta->policy = policy != nullptr ? policy->AsString(kEmpty) : kEmpty;
    const JsonValue* mix = doc.Get("mix");
    meta->mix = mix != nullptr ? static_cast<int>(mix->AsInt64()) : 0;
    const JsonValue* rep = doc.Get("rep");
    meta->replication = rep != nullptr ? static_cast<std::size_t>(rep->AsUint64()) : 0;
    const JsonValue* seed = doc.Get("seed");
    meta->seed = seed != nullptr ? seed->AsUint64() : 0;
  }
  *out = std::move(result);
  return true;
}

bool ResultCache::Probe(const std::string& key, RunResult* out) {
  if (!ok_) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const fs::path path = fs::path(options_.dir) / EntryFileName(key);
  std::string text;
  if (!ReadFileText(path, &text)) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (!DecodeEntry(text, out)) {
    // Torn or truncated entry: drop it so the slot can be rebuilt cleanly,
    // and report a miss so the caller re-simulates.
    corrupt_.fetch_add(1, std::memory_order_relaxed);
    misses_.fetch_add(1, std::memory_order_relaxed);
    std::error_code ec;
    fs::remove(path, ec);
    return false;
  }
  // LRU touch: probes keep hot entries alive under a size budget.
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ResultCache::Contains(const std::string& key) const {
  if (!ok_) {
    return false;
  }
  std::error_code ec;
  return fs::exists(fs::path(options_.dir) / EntryFileName(key), ec);
}

bool ResultCache::Store(const std::string& key, const CellEntryMeta& meta,
                        const RunResult& result) {
  if (!ok_) {
    return false;
  }
  const std::string text = EncodeEntry(key, meta, result);
  const fs::path dir(options_.dir);
  const fs::path tmp =
      dir / ("tmp-" + key + "-" + std::to_string(static_cast<long>(::getpid())));
  {
    std::ofstream out(tmp, std::ios::out | std::ios::trunc | std::ios::binary);
    if (!out.is_open()) {
      store_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    out << text << "\n";
    out.flush();
    if (!out.good()) {
      store_errors_.fetch_add(1, std::memory_order_relaxed);
      std::error_code ec;
      fs::remove(tmp, ec);
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, dir / EntryFileName(key), ec);
  if (ec) {
    store_errors_.fetch_add(1, std::memory_order_relaxed);
    std::error_code rm_ec;
    fs::remove(tmp, rm_ec);
    return false;
  }
  stores_.fetch_add(1, std::memory_order_relaxed);
  if (options_.max_bytes > 0) {
    EvictOverBudget(key);
  }
  return true;
}

void ResultCache::EvictOverBudget(const std::string& keep_key) {
  std::lock_guard<std::mutex> lock(evict_mu_);
  struct EntryInfo {
    fs::path path;
    uint64_t size = 0;
    fs::file_time_type mtime;
  };
  std::vector<EntryInfo> entries;
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(options_.dir, ec)) {
    if (ec) {
      return;
    }
    if (!item.is_regular_file(ec) || item.path().extension() != ".cell") {
      continue;
    }
    EntryInfo info;
    info.path = item.path();
    info.size = item.file_size(ec);
    info.mtime = item.last_write_time(ec);
    total += info.size;
    entries.push_back(std::move(info));
  }
  if (total <= options_.max_bytes) {
    return;
  }
  std::sort(entries.begin(), entries.end(),
            [](const EntryInfo& a, const EntryInfo& b) { return a.mtime < b.mtime; });
  const std::string keep_name = EntryFileName(keep_key);
  for (const EntryInfo& entry : entries) {
    if (total <= options_.max_bytes) {
      break;
    }
    if (entry.path.filename() == keep_name) {
      continue;
    }
    std::error_code rm_ec;
    if (fs::remove(entry.path, rm_ec) && !rm_ec) {
      total -= entry.size;
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::size_t ResultCache::EntryCount() const {
  std::size_t count = 0;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(options_.dir, ec)) {
    if (ec) {
      return count;
    }
    std::error_code file_ec;
    if (item.is_regular_file(file_ec) && item.path().extension() == ".cell") {
      ++count;
    }
  }
  return count;
}

uint64_t ResultCache::TotalBytes() const {
  uint64_t total = 0;
  std::error_code ec;
  for (const auto& item : fs::directory_iterator(options_.dir, ec)) {
    if (ec) {
      return total;
    }
    std::error_code file_ec;
    if (item.is_regular_file(file_ec) && item.path().extension() == ".cell") {
      total += item.file_size(file_ec);
    }
  }
  return total;
}

ResultCacheStats ResultCache::stats() const {
  ResultCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.corrupt = corrupt_.load(std::memory_order_relaxed);
  stats.stores = stores_.load(std::memory_order_relaxed);
  stats.store_errors = store_errors_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

std::string ResultCache::StatsJson() const {
  const ResultCacheStats s = stats();
  std::ostringstream o;
  o << "{\"entries\":" << EntryCount() << ",\"bytes\":" << TotalBytes() << ",\"hits\":" << s.hits
    << ",\"misses\":" << s.misses << ",\"corrupt\":" << s.corrupt << ",\"stores\":" << s.stores
    << ",\"store_errors\":" << s.store_errors << ",\"evictions\":" << s.evictions << "}";
  return o.str();
}

}  // namespace affsched
