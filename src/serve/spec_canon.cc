#include "src/serve/spec_canon.h"

#include <sstream>

#include "src/runner/cell_seed.h"
#include "src/telemetry/json.h"
#include "src/telemetry/manifest.h"

namespace affsched {

uint64_t Fnv1a64(const std::string& text, uint64_t basis) {
  uint64_t hash = basis;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string HashHex(uint64_t value) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[value & 0xF];
    value >>= 4;
  }
  return out;
}

namespace {

// The machine and engine fields a sweep spec can address (ParseSweepSpec's
// keys). Everything else in MachineConfig/EngineOptions is a build-time
// default, covered for cells by the git revision in the key.
void AppendMachineCanon(const SweepSpec& spec, std::ostringstream& o) {
  o << "procs=" << spec.machine.num_processors
    << ";speed=" << JsonNumber(spec.machine.processor_speed)
    << ";cache=" << JsonNumber(spec.machine.cache_size_factor)
    << ";topology=" << (spec.machine.topology.IsFlat() ? std::string("flat")
                                                       : spec.machine.topology.ToSpecString())
    << ";balance-ns=" << spec.engine.balance_interval
    // The partitioned substrate and the deadline stamp both change every
    // cell's simulated stats, so they are part of both key levels.
    << ";colors="
    << (spec.machine.cache_model == CacheModelKind::kPartitioned ? spec.machine.num_colors : 0)
    << ";rt=" << (spec.rt ? 1 : 0) << ";deadline-mix=" << (spec.rt ? spec.deadline_mix : "none");
}

}  // namespace

std::string CanonicalSpecText(const SweepSpec& spec) {
  std::ostringstream o;
  o << "sweep-v1;policies=";
  for (size_t i = 0; i < spec.policies.size(); ++i) {
    o << (i > 0 ? "," : "") << PolicyKindCliName(spec.policies[i]);
  }
  o << ";mixes=";
  for (size_t i = 0; i < spec.mixes.size(); ++i) {
    o << (i > 0 ? "," : "") << spec.mixes[i].number;
  }
  o << ";reps=" << spec.replication.min_replications << "-" << spec.replication.max_replications
    << ";precision=" << JsonNumber(spec.replication.relative_precision)
    << ";confidence=" << JsonNumber(spec.replication.confidence)
    << ";seed=" << SeedToDecimal(spec.root_seed) << ";";
  AppendMachineCanon(spec, o);
  o << ";observability=" << (spec.observability ? 1 : 0);
  return o.str();
}

std::string SweepKey(const SweepSpec& spec) {
  return HashHex(Fnv1a64(CanonicalSpecText(spec)));
}

std::string CanonicalCellText(const SweepSpec& spec, PolicyKind policy, int mix_number,
                              std::size_t replication, uint64_t seed,
                              const std::string& git_rev) {
  std::ostringstream o;
  o << "cell-v" << kCellEntrySchemaVersion << ";git=" << git_rev << ";";
  AppendMachineCanon(spec, o);
  o << ";policy=" << PolicyKindCliName(policy) << ";mix=" << mix_number
    << ";rep=" << replication << ";seed=" << SeedToDecimal(seed);
  return o.str();
}

std::string CellKeyWithRev(const SweepSpec& spec, PolicyKind policy, int mix_number,
                           std::size_t replication, uint64_t seed, const std::string& git_rev) {
  const std::string text = CanonicalCellText(spec, policy, mix_number, replication, seed, git_rev);
  // Two independent digests: the standard FNV-1a basis and a second basis
  // derived by hashing the text length, giving 128 key bits in total.
  const uint64_t lo = Fnv1a64(text);
  const uint64_t hi = Fnv1a64(text, 0x9e3779b97f4a7c15ull ^ (lo + text.size()));
  return HashHex(hi) + HashHex(lo);
}

std::string CellKey(const SweepSpec& spec, PolicyKind policy, int mix_number,
                    std::size_t replication, uint64_t seed) {
  return CellKeyWithRev(spec, policy, mix_number, replication, seed, RunManifest::GitSha());
}

}  // namespace affsched
