// The daemon's wire protocol and Unix-domain-socket plumbing.
//
// Transport: a stream Unix socket carrying line-delimited JSON in both
// directions. Every request is one JSON object on one line; every response
// line is one JSON object with an "event" discriminator. A submit streams
// many lines before its terminal event, so clients read until "done" (or
// "error") rather than counting responses:
//
//   -> {"op":"ping"}
//   <- {"event":"pong","git_rev":"abc123"}
//   -> {"op":"submit","spec":"smoke;reps=2","jobs":4}
//   <- {"event":"planned","sweep":"1f2e...","name":"smoke;reps=2","cells_min":12}
//   <- {"event":"cell","sweep":"1f2e...","policy":"equi","mix":1,"rep":0,
//       "seed":...,"source":"sim"}            (one per cell, fold order;
//                                              "source" is "cache"/"sim"/"remote")
//   <- {"event":"result","sweep":"1f2e...","cells":12,"hits":0,"executed":12,
//       "remote":0,"json":"<the full schema-v1/v3 sweep document, escaped>"}
//   <- {"event":"done","sweep":"1f2e..."}
//   -> {"op":"stats"}
//   <- {"event":"stats","git_rev":...,"cache":{...},"service":{...}}
//   -> {"op":"shutdown"}
//   <- {"event":"bye"}
//
// The embedded "json" document is byte-identical to what the batch runner
// (`simctl --sweep`) writes for the same spec — the serving layer adds
// caching and sharding around the simulation, never inside it.

#ifndef SRC_SERVE_WIRE_H_
#define SRC_SERVE_WIRE_H_

#include <cstddef>
#include <string>

namespace affsched {

struct WireRequest {
  std::string op;    // "submit", "stats", "ping", "shutdown"
  std::string spec;  // submit only: a ParseSweepSpec string
  std::size_t jobs = 0;  // submit only: worker threads (0 = server default)
};

// Parses one request line. Unknown ops parse fine (the daemon answers them
// with an error event); malformed JSON or a missing/non-string "op" fails.
bool ParseWireRequest(const std::string& line, WireRequest* request, std::string* error);

// {"event":"error","message":"<escaped>"} — the one response shape every
// client must handle.
std::string WireErrorEvent(const std::string& message);

// --- Unix-domain-socket helpers ------------------------------------------

// Binds and listens on `path` (an existing stale socket file is replaced).
// Returns the listening fd, or -1 with `error` set.
int ListenUnix(const std::string& path, std::string* error);

// Connects to a listening socket. Returns the fd, or -1 with `error` set.
int ConnectUnix(const std::string& path, std::string* error);

// Blocking line-based framing over an fd. Close-on-destroy.
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}
  ~LineChannel();
  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  // Reads up to the next '\n' (not included). False on EOF or error with no
  // buffered data; a final unterminated line is returned before EOF.
  bool ReadLine(std::string* line);

  // Writes `line` plus '\n', retrying short writes. False on error (EPIPE
  // when the peer hung up mid-stream).
  bool WriteLine(const std::string& line);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace affsched

#endif  // SRC_SERVE_WIRE_H_
